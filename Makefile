# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet race bench bench-smoke figures examples clean

all: build vet test

# Race-detector pass over everything, exercising the bench worker pool
# (the serial/parallel equivalence test runs with Parallelism: 8).
race:
	go test -race ./...

# One iteration of every Benchmark* family; results land in
# results/bench_smoke.json for trajectory tracking across PRs.
bench-smoke:
	mkdir -p results
	go test -run '^$$' -bench . -benchtime 1x -benchmem -json ./... > results/bench_smoke.json

build:
	go build ./...

# Static checks plus the telemetry overhead contract: with tracing and
# per-op capture off, the observability layer must add zero allocations
# to the simulation hot paths (internal/telemetry/overhead_test.go).
vet:
	go vet ./...
	go test -run 'Allocs|Amortized' -count=1 ./internal/telemetry

test:
	go test ./...

# Regenerate every table/figure of the paper's evaluation.
figures:
	go run ./cmd/fleetprofile
	go run ./cmd/ubench -fig all -ops -ablation all
	go run ./cmd/hyperbench -stats
	go run ./cmd/asicreport -sweep

bench:
	go test -bench=. -benchmem ./...

examples:
	go run ./examples/quickstart
	go run ./examples/rpcservice
	go run ./examples/storagelog
	go run ./examples/telemetry

clean:
	go clean ./...
