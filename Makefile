# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet bench figures examples clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Regenerate every table/figure of the paper's evaluation.
figures:
	go run ./cmd/fleetprofile
	go run ./cmd/ubench -fig all -ops -ablation all
	go run ./cmd/hyperbench -stats
	go run ./cmd/asicreport -sweep

bench:
	go test -bench=. -benchmem ./...

examples:
	go run ./examples/quickstart
	go run ./examples/rpcservice
	go run ./examples/storagelog
	go run ./examples/telemetry

clean:
	go clean ./...
