# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet race bench bench-smoke fuzz-smoke chaos-smoke serve-smoke serve-fast-smoke serve-report serve-tiles-smoke serve-tiles-report obs-smoke serve-obs-report elements-smoke serve-elements-report workloads-smoke workloads-report cluster-smoke serve-cluster-report figures examples clean

all: build vet test

# Race-detector pass over everything, exercising the bench worker pool
# (the serial/parallel equivalence test runs with Parallelism: 8).
race:
	go test -race ./...

# One iteration of every Benchmark* family; results land in
# results/bench_smoke.json for trajectory tracking across PRs.
bench-smoke:
	mkdir -p results
	go test -run '^$$' -bench . -benchtime 1x -benchmem -json ./... > results/bench_smoke.json

# Short live-fuzzing pass over the native targets (seed corpora alone run
# in `make test`): the deserializers and the serialize round trip, each
# differentially checked against the reference codec, including a System
# running under an injected-fault schedule.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzDeserialize -fuzztime 30s ./internal/core
	go test -run '^$$' -fuzz FuzzSerializeRoundTrip -fuzztime 30s ./internal/core

# The differential chaos harness under the race detector: faulted runs
# must produce byte-identical output to pure software, and fault-disabled
# runs must leave every measurement untouched.
chaos-smoke:
	go test -run TestChaos -race -count=1 ./internal/bench

# The serving layer under the race detector (batching, admission control,
# TCP transport, serial/parallel and pooled/fresh equivalence, chaos over
# the wire), then a short verified load-generation pass — every response
# checked byte-identical to its canonical payload — both fault-free and
# under an injected-fault schedule.
serve-smoke:
	go test -race -count=1 ./internal/serve
	go run ./cmd/loadgen -duration 500ms -concurrency 8 -schema varint -check
	go run ./cmd/loadgen -duration 500ms -concurrency 8 -schema mixed -check -faults 0.02 -fault-seed 7

# Both cycle modes under byte verification: an exact pass and a sampled
# pass (1-in-8 batches run the full cycle model, the rest serve
# functional bytes) must both answer byte-identical to the canonical
# codec, single- and multi-tile.
serve-fast-smoke:
	go run ./cmd/loadgen -duration 500ms -concurrency 8 -schema all -check -cycle-mode exact
	go run ./cmd/loadgen -duration 500ms -concurrency 8 -schema all -check -cycle-mode sampled -cycle-sample-n 8
	go run ./cmd/loadgen -tiles 4 -routing rr -duration 500ms -concurrency 8 -schema mixed -check -cycle-mode sampled

# Regenerate results/serve_throughput.md the way the checked-in artifact
# is measured: in-process server, 4 cores, closed loop, all schemas.
serve-report:
	mkdir -p results
	GOMAXPROCS=4 go run ./cmd/loadgen -duration 2s -concurrency 16 -schema all -check -out results/serve_throughput.md

# Short verified multi-tile passes: the p2c router with work stealing,
# then deterministic round-robin — every response checked byte-identical
# to its canonical payload — plus a faulted run where the schedule is
# quarantined to one tile.
serve-tiles-smoke:
	go run ./cmd/loadgen -tiles 4 -duration 500ms -concurrency 8 -schema varint -check
	go run ./cmd/loadgen -tiles 4 -routing rr -duration 500ms -concurrency 8 -schema mixed -check
	go run ./cmd/loadgen -tiles 4 -duration 500ms -concurrency 8 -schema string -check -faults 0.02 -fault-seed 7 -fault-tiles 1

# End-to-end observability smoke: a real daemon with the admin plane up,
# driven over TCP while loadgen scrapes /statusz + /metrics at ~10Hz
# (every tick re-validates the Prometheus exposition; the run fails on
# any exposition error or if no scrape landed). Exercises the SIGUSR1
# mid-run stats flush, then checks the scrape report carries a non-empty
# stage breakdown and the span trace is non-empty JSON.
obs-smoke:
	mkdir -p results
	go build -o /tmp/protoaccd-smoke ./cmd/protoaccd
	rm -f /tmp/obs_smoke_stats.json /tmp/obs_smoke.md /tmp/obs_smoke_spans.json
	/tmp/protoaccd-smoke -listen 127.0.0.1:7419 -admin 127.0.0.1:7420 \
	  -tiles 2 -span-sample-n 16 -stats-out /tmp/obs_smoke_stats.json & \
	pid=$$!; \
	ok=0; for i in $$(seq 50); do \
	  curl -sf http://127.0.0.1:7420/healthz >/dev/null && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "obs-smoke: admin endpoint never came up"; kill $$pid; exit 1; }; \
	go run ./cmd/loadgen -addr 127.0.0.1:7419 -admin-url http://127.0.0.1:7420 \
	  -duration 500ms -concurrency 8 -schema mixed -check \
	  -scrape /tmp/obs_smoke.md -trace-out /tmp/obs_smoke_spans.json \
	  || { kill $$pid; exit 1; }; \
	kill -USR1 $$pid; sleep 0.3; \
	[ -s /tmp/obs_smoke_stats.json ] || { echo "obs-smoke: SIGUSR1 flushed no stats"; kill $$pid; exit 1; }; \
	kill $$pid; wait $$pid
	grep -q '| execute |' /tmp/obs_smoke.md
	grep -q '| queue_wait |' /tmp/obs_smoke.md
	grep -q traceEvents /tmp/obs_smoke_spans.json

# End-to-end element-chain smoke: a real daemon with the full chain on
# and a fast breaker, driven with hot-key-skewed verified traffic, then a
# breaker drill over the admin plane — /faultz poisons tile 1, the trip
# is asserted from /metrics, injection stops, and a recovery pass must
# re-close the breaker (live state gauge back to 0). Also asserts the
# skewed pass produced nonzero cache hits.
elements-smoke:
	go build -o /tmp/protoaccd-elements ./cmd/protoaccd
	/tmp/protoaccd-elements -listen 127.0.0.1:7423 -admin 127.0.0.1:7424 \
	  -tiles 4 -elements all \
	  -breaker-window 200ms -breaker-trip-rate 0.3 -breaker-min-volume 8 \
	  -breaker-open-for 100ms -breaker-probes 4 & \
	pid=$$!; \
	ok=0; for i in $$(seq 50); do \
	  curl -sf http://127.0.0.1:7424/healthz >/dev/null && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "elements-smoke: admin endpoint never came up"; kill $$pid; exit 1; }; \
	go run ./cmd/loadgen -addr 127.0.0.1:7423 \
	  -duration 1s -concurrency 8 -schema varint -skew 1.2 -check \
	  || { kill $$pid; exit 1; }; \
	curl -s http://127.0.0.1:7424/metrics | \
	  awk '/^protoacc_serve_elements_cache_hits /{found=1; exit !($$2>0)} END{exit !found}' \
	  || { echo "elements-smoke: no cache hits under skewed traffic"; kill $$pid; exit 1; }; \
	curl -sf "http://127.0.0.1:7424/faultz?tile=1&faults=0.9" >/dev/null \
	  || { echo "elements-smoke: /faultz injection failed"; kill $$pid; exit 1; }; \
	go run ./cmd/loadgen -addr 127.0.0.1:7423 \
	  -duration 1s -concurrency 8 -schema varint -check \
	  || { kill $$pid; exit 1; }; \
	curl -s http://127.0.0.1:7424/metrics | \
	  awk '/^protoacc_serve_elements_breaker_trips /{found=1; exit !($$2>0)} END{exit !found}' \
	  || { echo "elements-smoke: breaker never tripped on the faulted tile"; kill $$pid; exit 1; }; \
	curl -sf "http://127.0.0.1:7424/faultz?tile=1&faults=off" >/dev/null \
	  || { echo "elements-smoke: /faultz clear failed"; kill $$pid; exit 1; }; \
	go run ./cmd/loadgen -addr 127.0.0.1:7423 \
	  -duration 1s -concurrency 8 -schema varint -check \
	  || { kill $$pid; exit 1; }; \
	curl -s http://127.0.0.1:7424/metrics | \
	  awk '/^protoacc_serve_elements_breaker_closes /{found=1; exit !($$2>0)} END{exit !found}' \
	  || { echo "elements-smoke: breaker never re-closed after injection stopped"; kill $$pid; exit 1; }; \
	curl -s http://127.0.0.1:7424/metrics | \
	  grep -q 'protoacc_serve_live_breaker_state{tile="1"} 0' \
	  || { echo "elements-smoke: tile 1 breaker not closed at end of drill"; kill $$pid; exit 1; }; \
	kill $$pid; wait $$pid 2>/dev/null; true

# End-to-end fleet-shaped workloads smoke: a real daemon, a short seeded
# trace replayed byte-verified, then a 2-hop service chain (frontend→kv,
# kv→backend) — every hop's serialize/deserialize on the accelerated
# serving path. Asserts the trace group and both hop groups recorded
# traffic and the run held -check throughout.
workloads-smoke:
	go build -o /tmp/protoaccd-workloads ./cmd/protoaccd
	/tmp/protoaccd-workloads -listen 127.0.0.1:7425 -admin 127.0.0.1:7426 -tiles 2 & \
	pid=$$!; \
	ok=0; for i in $$(seq 50); do \
	  curl -sf http://127.0.0.1:7426/healthz >/dev/null && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "workloads-smoke: admin endpoint never came up"; kill $$pid; exit 1; }; \
	go run ./cmd/loadgen -addr 127.0.0.1:7425 -workload all \
	  -trace-seed 1 -trace-len 512 -hops 2 -concurrency 4 -check \
	  > /tmp/workloads_smoke.out 2>&1 \
	  || { cat /tmp/workloads_smoke.out; kill $$pid; exit 1; }; \
	cat /tmp/workloads_smoke.out; \
	for g in trace hop0 hop1; do \
	  awk -v want="serve/workload/$$g/requests" \
	    '$$1==want {found=1; exit !($$2>0)} END{exit !found}' /tmp/workloads_smoke.out \
	    || { echo "workloads-smoke: no traffic recorded for $$g"; kill $$pid; exit 1; }; \
	done; \
	kill $$pid; wait $$pid 2>/dev/null; true

# Disaggregated-pool smoke: the cluster balancer under the race detector
# (routing, hedging, failover, health ejection, 1-vs-2-node determinism),
# then the sweep harness against real spawned daemons with short passes —
# the harness itself hard-fails unless the hedged pass records hedge wins
# and the /faultz drill produces one ejection, zero traffic to the
# ejected node, and a recovery, every response byte-verified. Finally the
# -cluster flag path: two live daemons driven through the balancer with
# hedging and health polling on, serve/cluster counters asserted nonzero.
cluster-smoke:
	go test -race -count=1 ./internal/serve/cluster
	go build -o /tmp/protoaccd-cluster ./cmd/protoaccd
	go run ./cmd/loadgen -cluster-sweep -protoaccd-bin /tmp/protoaccd-cluster \
	  -duration 500ms -concurrency 8 -schema varint -op deser -check
	/tmp/protoaccd-cluster -listen 127.0.0.1:7427 -admin 127.0.0.1:7428 & pid1=$$!; \
	/tmp/protoaccd-cluster -listen 127.0.0.1:7429 -admin 127.0.0.1:7430 & pid2=$$!; \
	ok=0; for i in $$(seq 50); do \
	  curl -sf http://127.0.0.1:7428/healthz >/dev/null && \
	  curl -sf http://127.0.0.1:7430/healthz >/dev/null && { ok=1; break; }; sleep 0.1; \
	done; \
	[ $$ok -eq 1 ] || { echo "cluster-smoke: daemons never came up"; kill $$pid1 $$pid2; exit 1; }; \
	go run ./cmd/loadgen -cluster 127.0.0.1:7427,127.0.0.1:7429 \
	  -cluster-admin 127.0.0.1:7428,127.0.0.1:7430 -hedge \
	  -duration 1s -concurrency 8 -schema varint -check \
	  > /tmp/cluster_smoke.out 2>&1 \
	  || { cat /tmp/cluster_smoke.out; kill $$pid1 $$pid2; exit 1; }; \
	cat /tmp/cluster_smoke.out; \
	grep -Eq 'cluster: 2 nodes  requests=[1-9]' /tmp/cluster_smoke.out \
	  || { echo "cluster-smoke: no serve/cluster accounting in output"; kill $$pid1 $$pid2; exit 1; }; \
	kill $$pid1 $$pid2; wait $$pid1 $$pid2 2>/dev/null; true

# Regenerate results/serve_cluster.md the way the checked-in artifact is
# measured: real spawned protoaccd children (2 executors each), the
# 1→2→4 aggregate-scaling sweep, the slow-node hedge drill, and the
# /faultz ejection/recovery drill, all byte-verified.
serve-cluster-report:
	mkdir -p results
	go build -o /tmp/protoaccd-cluster ./cmd/protoaccd
	go run ./cmd/loadgen -cluster-sweep -protoaccd-bin /tmp/protoaccd-cluster \
	  -out results/serve_cluster.md

# Regenerate results/serve_workloads.md the way the checked-in artifact
# is measured: the seeded fleet-shaped trace replay plus the 2-hop
# service chain against an in-process server, 4 cores, with per-hop
# latency and Xeon-calibrated accelerator-vs-software cycle savings.
workloads-report:
	GOMAXPROCS=4 go run ./cmd/loadgen -workload all -trace-seed 1 -trace-len 4096 \
	  -hops 2 -concurrency 16 -check -out results/serve_workloads.md

# Regenerate results/serve_elements.md the way the checked-in artifact is
# measured: the skewed-traffic chain-off/chain-on comparison plus the
# breaker trip/recovery drill, in-process servers, 4 cores.
serve-elements-report:
	mkdir -p results
	GOMAXPROCS=4 go run ./cmd/loadgen -elements-sweep -duration 2s -concurrency 16 -schema varint -check -out results/serve_elements.md

# Regenerate results/serve_observability.md and the checked-in span
# trace the way those artifacts are measured: the stage-breakdown report
# from the full 2s all-schema closed loop, and the span trace from a
# separate short pass with sparse (1-in-256) sampling so the checked-in
# artifact stays a few hundred KB instead of a full 4096-span ring.
serve-obs-report:
	mkdir -p results
	GOMAXPROCS=4 go run ./cmd/loadgen -duration 2s -concurrency 16 -schema all -check \
	  -span-sample-n 64 -scrape results/serve_observability.md
	GOMAXPROCS=4 go run ./cmd/loadgen -duration 300ms -concurrency 16 -schema mixed -check \
	  -span-sample-n 256 -trace-out results/serve_spans.perfetto.json

# Regenerate results/serve_tiles.md the way the checked-in artifact is
# measured: fresh in-process server per tile count, 4 cores, closed loop.
# Concurrency is high (256) so the offered load saturates every tile
# count — a tile-scaling sweep driven below saturation measures the load
# generator, not the server.
serve-tiles-report:
	mkdir -p results
	GOMAXPROCS=4 go run ./cmd/loadgen -tile-sweep 1,2,4 -duration 2s -concurrency 256 -schema all -check -out results/serve_tiles.md

build:
	go build ./...

# Static checks plus the telemetry overhead contract: with tracing and
# per-op capture off, the observability layer must add zero allocations
# to the simulation hot paths (internal/telemetry/overhead_test.go).
vet:
	go vet ./...
	go test -run 'Allocs|Amortized' -count=1 ./internal/telemetry

test:
	go test ./...

# Regenerate every table/figure of the paper's evaluation.
figures:
	go run ./cmd/fleetprofile
	go run ./cmd/ubench -fig all -ops -ablation all
	go run ./cmd/hyperbench -stats
	go run ./cmd/asicreport -sweep

bench:
	go test -bench=. -benchmem ./...

examples:
	go run ./examples/quickstart
	go run ./examples/rpcservice
	go run ./examples/storagelog
	go run ./examples/telemetry

clean:
	go clean ./...
