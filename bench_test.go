// Package protoacc's top-level benchmarks regenerate every table and
// figure of the paper's evaluation through `go test -bench`:
//
//	BenchmarkFig11a*  — deserialization microbenchmarks, non-alloc types
//	BenchmarkFig11b*  — serialization microbenchmarks, inline types
//	BenchmarkFig11c*  — deserialization microbenchmarks, alloc types
//	BenchmarkFig11d*  — serialization microbenchmarks, non-inline types
//	BenchmarkHyperDeser* / BenchmarkHyperSer* — Figures 12 and 13
//	BenchmarkAblation* — the DESIGN.md A1-A5 ablations
//
// Each benchmark drives the full simulated system (functional + timing)
// and reports the simulated throughput as the custom metric
// "Gbit/s(simulated)" — the figure's y-axis — alongside Go's wall-clock
// ns/op for the simulation itself.
package protoacc

import (
	"fmt"
	"sync"
	"testing"

	"protoacc/internal/bench"
	"protoacc/internal/core"
)

// runSim runs workload w on system k once per b.N iteration and reports
// the simulated throughput and cycle metrics. ReportAllocs makes
// host-side allocation regressions in the simulator hot path visible in
// every benchmark run alongside the simulated numbers.
func runSim(b *testing.B, k core.Kind, op bench.Op, w bench.Workload, opts bench.Options) {
	b.Helper()
	b.ReportAllocs()
	var m bench.Measurement
	var err error
	for i := 0; i < b.N; i++ {
		m, err = bench.Run(k, op, w, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.GbitsPS, "Gbit/s(simulated)")
	b.ReportMetric(m.Cycles, "cycles(simulated)")
	b.SetBytes(int64(w.Bytes))
}

// benchSet registers one sub-benchmark per (workload, system).
func benchSet(b *testing.B, op bench.Op, workloads []bench.Workload, opts bench.Options) {
	b.Helper()
	for _, w := range workloads {
		w := w
		for _, k := range []core.Kind{core.KindBOOM, core.KindXeon, core.KindAccel} {
			k := k
			b.Run(fmt.Sprintf("%s/%s", w.Name, k), func(b *testing.B) {
				runSim(b, k, op, w, opts)
			})
		}
	}
}

func BenchmarkFig11aDeserNonAlloc(b *testing.B) {
	benchSet(b, bench.Deserialize, bench.NonAllocWorkloads(), bench.DefaultOptions())
}

func BenchmarkFig11bSerInline(b *testing.B) {
	benchSet(b, bench.Serialize, bench.NonAllocWorkloads(), bench.DefaultOptions())
}

func BenchmarkFig11cDeserAlloc(b *testing.B) {
	benchSet(b, bench.Deserialize, bench.AllocWorkloads(), bench.DefaultOptions())
}

func BenchmarkFig11dSerNonInline(b *testing.B) {
	benchSet(b, bench.Serialize, bench.AllocWorkloads(), bench.DefaultOptions())
}

// hyperOnce caches the generated suites; regeneration is deterministic
// but not free.
var hyperOnce = sync.OnceValues(func() ([]bench.Workload, error) {
	return bench.HyperWorkloads()
})

func BenchmarkHyperDeser(b *testing.B) {
	ws, err := hyperOnce()
	if err != nil {
		b.Fatal(err)
	}
	benchSet(b, bench.Deserialize, ws, bench.HyperOptions())
}

func BenchmarkHyperSer(b *testing.B) {
	ws, err := hyperOnce()
	if err != nil {
		b.Fatal(err)
	}
	benchSet(b, bench.Serialize, ws, bench.HyperOptions())
}

func BenchmarkAblationFieldUnitCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblation(bench.AblFieldUnits, bench.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStackDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblation(bench.AblStackDepth, bench.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMemloaderWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunAblation(bench.AblMemloaderWidth, bench.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
