// Command asicreport prints the accelerator's 22 nm silicon cost model
// (§5.3 of the paper): per-block area and critical path for the
// deserializer and serializer units, plus scaling sweeps over the main
// design parameters.
//
// Usage:
//
//	asicreport [-sweep]
package main

import (
	"flag"
	"fmt"

	"protoacc/internal/accel/asic"
	"protoacc/internal/accel/deser"
	"protoacc/internal/accel/ser"
)

func main() {
	sweep := flag.Bool("sweep", false, "print parameter sweeps")
	flag.Parse()

	d := asic.Deserializer(deser.DefaultConfig())
	s := asic.Serializer(ser.DefaultConfig())
	fmt.Println(d)
	fmt.Println(s)
	area, freq := asic.Combined(deser.DefaultConfig(), ser.DefaultConfig())
	fmt.Printf("combined accelerator: %.3f mm^2, worst-unit clock %.2f GHz\n", area, freq)
	fmt.Println("paper (§5.3): deserializer 0.133 mm^2 @ 1.95 GHz, serializer 0.278 mm^2 @ 1.84 GHz")

	if !*sweep {
		return
	}
	fmt.Println("\nmemloader width sweep (deserializer):")
	fmt.Printf("  %-8s %12s %10s\n", "width", "area mm^2", "GHz")
	for _, w := range []uint64{8, 16, 32, 64} {
		cfg := deser.DefaultConfig()
		cfg.MemloaderWidth = w
		r := asic.Deserializer(cfg)
		fmt.Printf("  %-8d %12.4f %10.2f\n", w, r.TotalAreaMM2(), r.FrequencyGHz())
	}
	fmt.Println("\nfield serializer unit sweep (serializer):")
	fmt.Printf("  %-8s %12s %10s\n", "units", "area mm^2", "GHz")
	for _, n := range []int{1, 2, 4, 8, 16} {
		cfg := ser.DefaultConfig()
		cfg.NumFieldUnits = n
		r := asic.Serializer(cfg)
		fmt.Printf("  %-8d %12.4f %10.2f\n", n, r.TotalAreaMM2(), r.FrequencyGHz())
	}
	fmt.Println("\nmetadata stack depth sweep (deserializer):")
	fmt.Printf("  %-8s %12s\n", "depth", "area mm^2")
	for _, d := range []int{12, 25, 50, 100} {
		cfg := deser.DefaultConfig()
		cfg.OnChipStackDepth = d
		fmt.Printf("  %-8d %12.4f\n", d, asic.Deserializer(cfg).TotalAreaMM2())
	}
}
