// Command fleetprofile regenerates the paper's Section 3 profiling study:
// Table 1 and Figures 2 through 7, printed as data tables. Figures 5 and 6
// are re-derived the way the paper describes (§3.6.4): the 24-slice
// byte-share model is combined with per-byte costs measured by this
// project's own microbenchmarks on the BOOM baseline model.
//
// Usage:
//
//	fleetprofile [-section all|types|cycles|sizes|fields|density|depth|rpc|dstime|sertime]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"protoacc/internal/bench"
	"protoacc/internal/core"
	"protoacc/internal/fleet"
	"protoacc/internal/hyperbench"
	"protoacc/internal/pb/protoparse"
	"protoacc/internal/pb/registry"
	"protoacc/internal/pb/schema"
)

func main() {
	section := flag.String("section", "all", "which section to print")
	flag.Parse()
	sections := map[string]func() error{
		"types":   types,
		"cycles":  cycles,
		"sizes":   sizes,
		"fields":  fields,
		"density": density,
		"depth":   depth,
		"rpc":     rpc,
		"protodb": protodb,
		"dstime": func() error {
			return timeByType(bench.Deserialize, "Figure 5: Estimated deser. time by field type, fleet-wide")
		},
		"sertime": func() error {
			return timeByType(bench.Serialize, "Figure 6: Estimated ser. time by field type, fleet-wide")
		},
	}
	order := []string{"types", "cycles", "sizes", "fields", "density", "depth", "rpc", "protodb", "dstime", "sertime"}
	if *section != "all" {
		f, ok := sections[*section]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown section %q\n", *section)
			os.Exit(2)
		}
		if err := f(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, name := range order {
		if err := sections[name](); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func types() error {
	fmt.Println("Table 1: Classification of protobuf field types")
	fmt.Printf("%-16s %-40s %s\n", "class", "protobuf types", "sizes (bytes)")
	rows := []struct {
		class schema.PerfClass
		types string
		sizes string
	}{
		{schema.ClassBytesLike, "bytes, string", "see Figure 4c buckets"},
		{schema.ClassVarintLike, "{s,u}int{64,32}, int{64,32}, enum, bool", "1-10, by 1"},
		{schema.ClassFloatLike, "float", "4"},
		{schema.ClassDoubleLike, "double", "8"},
		{schema.ClassFixed32Like, "fixed32, sfixed32", "4"},
		{schema.ClassFixed64Like, "fixed64, sfixed64", "8"},
	}
	for _, r := range rows {
		fmt.Printf("%-16s %-40s %s\n", r.class, r.types, r.sizes)
	}
	return nil
}

func cycles() error {
	fmt.Println("Figure 2: Fleet-wide C++ protobuf cycles by operation")
	fmt.Printf("(protobufs: %.1f%% of fleet cycles; %.0f%% of protobuf cycles in C++)\n",
		fleet.FleetCyclesInProtobuf*100, fleet.ProtobufCyclesInCpp*100)
	for _, op := range fleet.CyclesByOperation() {
		fmt.Printf("  %-14s %5.1f%%\n", op.Op, op.Share*100)
	}
	fmt.Printf("accelerator opportunity (deser+ser): %.2f%% of fleet cycles\n",
		fleet.AccelerationOpportunity*100)
	return nil
}

func bucketLabel(lo, hi uint64) string {
	if hi == fleet.Unbounded {
		return fmt.Sprintf("[%d - inf]", lo)
	}
	return fmt.Sprintf("[%d - %d]", lo, hi)
}

func sizes() error {
	fmt.Println("Figure 3: Fleet-wide top-level message size distribution")
	cum := 0.0
	for _, b := range fleet.MessageSizes() {
		cum += b.Share
		fmt.Printf("  %-18s %7.2f%%   (cumulative %6.2f%%)\n",
			bucketLabel(b.Lo, b.Hi), b.Share*100, cum*100)
	}
	fmt.Println("(proto2 share of serialized bytes: 96%)")
	return nil
}

func fields() error {
	fmt.Println("Figure 4a: % of fields observed by type")
	for _, ft := range fleet.FieldsByType() {
		name := ft.Kind.String()
		if ft.Repeated {
			name = "repeated " + name
		}
		fmt.Printf("  %-20s %5.1f%%\n", name, ft.Share*100)
	}
	fmt.Println("\nFigure 4b: % of message bytes observed by type")
	for _, ft := range fleet.BytesByType() {
		name := ft.Kind.String()
		if ft.Repeated {
			name = "repeated " + name
		}
		fmt.Printf("  %-20s %5.1f%%\n", name, ft.Share*100)
	}
	fmt.Println("\nFigure 4c: % of bytes fields observed by field size")
	for _, b := range fleet.BytesFieldSizes() {
		fmt.Printf("  %-18s %7.2f%%\n", bucketLabel(b.Lo, b.Hi), b.Share*100)
	}
	return nil
}

func density() error {
	fmt.Println("Figure 7: Field number usage density distribution (weighted by observed msgs)")
	above := 0.0
	for _, b := range fleet.FieldDensity() {
		hi := b.Hi
		if hi > 1 {
			hi = 1
		}
		fmt.Printf("  [%.2f - %.2f)  %5.1f%%\n", b.Lo, hi, b.Share*100)
		if b.Lo >= 0.05 {
			above += b.Share
		}
	}
	fmt.Printf("density > 1/64 (favours per-type ADTs): %.1f%% of messages\n", above*100)
	return nil
}

func depth() error {
	d := fleet.MessageDepths()
	fmt.Println("Message depth quantiles (§3.8)")
	fmt.Printf("  99.9%%   of bytes at depth <= %d\n", d.P999)
	fmt.Printf("  99.999%% of bytes at depth <= %d\n", d.P99999)
	fmt.Printf("  max observed depth        <  %d\n", d.Max+1)
	return nil
}

func rpc() error {
	fmt.Println("Serialization/deserialization initiators (§3.4)")
	fmt.Printf("  deserialization cycles from RPC stack: %.1f%%\n", fleet.RPCDeserShare*100)
	fmt.Printf("  serialization cycles from RPC stack:   %.1f%%\n", fleet.RPCSerShare*100)
	fmt.Println("  => the majority of both are storage/other users: place the accelerator near the core")
	return nil
}

func timeByType(op bench.Op, title string) error {
	costFn, err := bench.SliceCosts(core.KindBOOM, op, bench.DefaultOptions())
	if err != nil {
		return err
	}
	ts := fleet.EstimateTimeShares(fleet.Slices(), costFn)
	sort.Slice(ts, func(i, j int) bool { return ts[i].TimeShare > ts[j].TimeShare })
	fmt.Println(title)
	fmt.Printf("  %-18s %10s %12s %12s\n", "slice", "bytes %", "ns/B", "time %")
	for _, x := range ts {
		fmt.Printf("  %-18s %9.2f%% %12.3f %11.1f%%\n",
			x.Slice.Name, x.Slice.ByteShare*100, x.CostPerB, x.TimeShare*100)
	}
	fmt.Printf("  time at > 1 GB/s: %.0f%%\n", fleet.FastShare(ts, 1.0)*100)
	return nil
}

// protodb runs the §3.1.3 static-schema analysis over the HyperProtoBench
// corpus: the registry ingests every generated .proto file and reports the
// aggregates protodb provides (packedness, field-number ranges, density,
// recursion, proto2 share).
func protodb() error {
	reg := registry.New()
	benches, err := hyperbench.GenerateAll()
	if err != nil {
		return err
	}
	for _, b := range benches {
		f, err := protoparse.Parse(b.File.Path, b.Source)
		if err != nil {
			return err
		}
		if err := reg.AddFile(f); err != nil {
			return err
		}
	}
	s := reg.Stats()
	fmt.Println("protodb: static schema analysis of the HyperProtoBench corpus (§3.1.3)")
	fmt.Printf("  files %d (proto2: %d), message types %d, fields %d\n",
		s.Files, s.Proto2Files, s.Messages, s.Fields)
	fmt.Printf("  repeated fields %d, packed scalars %d (%.0f%% of repeated scalars)\n",
		s.RepeatedFields, s.PackedFields, s.PackedShare*100)
	fmt.Printf("  max field number %d, max field-number range %d\n",
		s.MaxFieldNumber, s.MaxFieldRange)
	fmt.Printf("  mean definition density %.2f; types below the 1/64 ADT crossover: %.1f%%\n",
		s.MeanDensity, s.DensityBelow164*100)
	fmt.Printf("  max schema depth %d, recursive types %d\n", s.MaxSchemaDepth, s.RecursiveMessages)
	return nil
}
