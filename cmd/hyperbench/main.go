// Command hyperbench regenerates the paper's HyperProtoBench evaluation
// (Figures 12 and 13, §5.2): six fleet-shaped synthetic service suites
// (bench0…bench5) run on the three systems. It can also dump the
// generated .proto schemas and per-suite shape statistics collected by the
// protobufz-style sampler.
//
// Usage:
//
//	hyperbench [-op deser|ser|both] [-dump-proto dir] [-stats]
//	           [-parallel n] [-cpuprofile file] [-memprofile file]
//	           [-stats-out file] [-trace-op suite] [-trace-out file]
//	           [-faults rate[@site,...]] [-fault-seed n]
//
// -stats-out writes every run's telemetry counters (all units, all
// memory-hierarchy levels) as JSON (or Prometheus text with a .prom
// suffix). -trace-op enables cycle-level tracing of the named suite
// (bench0…bench5) on riscv-boom-accel; -trace-out (default trace.json)
// receives the Perfetto-loadable trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"protoacc/internal/bench"
	"protoacc/internal/core"
	"protoacc/internal/faults"
	"protoacc/internal/fleet"
	"protoacc/internal/hyperbench"
	"protoacc/internal/pb/schema"
)

func main() {
	op := flag.String("op", "both", "operation: deser, ser, or both")
	dump := flag.String("dump-proto", "", "directory to write the generated .proto files")
	stats := flag.Bool("stats", false, "print per-suite shape statistics")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	statsOut := flag.String("stats-out", "", "write aggregated telemetry counters to this file (JSON, or Prometheus text with a .prom suffix)")
	traceOp := flag.String("trace-op", "", "capture a cycle trace of this suite on riscv-boom-accel")
	traceOut := flag.String("trace-out", "trace.json", "write the captured Perfetto trace to this file")
	faultSpec := flag.String("faults", "", "fault injection: RATE or RATE@site,... (sites: "+strings.Join(faults.SiteNames(), ",")+"); empty or \"off\" disables")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule")
	flag.Parse()

	faultCfg, err := faults.ParseFlag(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *dump != "" {
		if err := dumpProtos(*dump); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *stats {
		if err := printStats(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	var figs []bench.Figure
	switch *op {
	case "deser":
		figs = []bench.Figure{bench.Fig12}
	case "ser":
		figs = []bench.Figure{bench.Fig13}
	case "both":
		figs = []bench.Figure{bench.Fig12, bench.Fig13}
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q\n", *op)
		os.Exit(2)
	}
	opts := bench.HyperOptions()
	opts.Parallelism = *parallel
	opts.Faults = faultCfg
	if *statsOut != "" {
		opts.Telemetry = &bench.TelemetrySink{}
	}
	if *traceOp != "" {
		opts.Trace = &bench.TraceCapture{Workload: *traceOp, System: core.KindAccel}
	}

	var vbs, vxs []float64
	for _, f := range figs {
		rows, err := bench.RunFigure(f, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatTable(bench.FigureTitle(f), rows))
		vb, vx := bench.Speedups(rows)
		fmt.Printf("summary: %.1fx vs riscv-boom, %.1fx vs Xeon\n\n", vb, vx)
		vbs = append(vbs, vb)
		vxs = append(vxs, vx)
	}
	if len(figs) == 2 {
		fmt.Printf("HyperProtoBench overall (§5.2): %.1fx vs riscv-boom (paper: 6.2x), %.1fx vs Xeon (paper: 3.8x)\n",
			bench.Geomean(vbs), bench.Geomean(vxs))
	}

	if opts.Telemetry != nil {
		m := bench.NewManifest("hyperbench "+strings.Join(os.Args[1:], " "), opts)
		if err := bench.WriteStatsFile(*statsOut, m, opts.Telemetry); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry counters written to %s\n", *statsOut)
	}
	if opts.Trace != nil {
		if err := bench.WriteTraceFile(*traceOut, opts.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace of %q written to %s (load in ui.perfetto.dev or chrome://tracing)\n", *traceOp, *traceOut)
	}
}

func dumpProtos(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	benches, err := hyperbench.GenerateAll()
	if err != nil {
		return err
	}
	for _, b := range benches {
		path := filepath.Join(dir, b.Profile.Name+".proto")
		if err := os.WriteFile(path, []byte(b.Source), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d message types)\n", path, countTypes(b))
	}
	return nil
}

func countTypes(b *hyperbench.Benchmark) int {
	n := 0
	b.Root.Walk(func(*schema.Message) { n++ })
	return n
}

func printStats() error {
	benches, err := hyperbench.GenerateAll()
	if err != nil {
		return err
	}
	for _, b := range benches {
		s := fleet.NewSampler()
		for _, m := range b.Messages {
			s.SampleTopLevel(m)
		}
		fmt.Printf("%s: %d msgs, %d wire bytes (avg %.0f B/msg), depth(p99.9)=%d\n",
			b.Profile.Name, len(b.Messages), b.TotalWireBytes,
			float64(b.TotalWireBytes)/float64(len(b.Messages)), s.DepthCoverage(0.999))
		var bytesLike float64
		for k, v := range s.FieldByteShares() {
			if k.Kind.Class() == 0 {
				bytesLike += v
			}
		}
		fmt.Printf("  bytes-like byte share: %.0f%%, size buckets: %v\n",
			bytesLike*100, percents(s.MessageSizeShares()))
	}
	fmt.Println()
	return nil
}

func percents(shares []float64) []string {
	out := make([]string, len(shares))
	for i, s := range shares {
		out[i] = fmt.Sprintf("%.0f%%", s*100)
	}
	return out
}
