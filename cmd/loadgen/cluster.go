// Cluster mode and the -cluster-sweep harness: loadgen as the client of
// a disaggregated accelerator pool. -cluster points the balancer at
// already-running daemons; -cluster-sweep spawns real protoaccd
// processes itself and runs the measurement behind
// results/serve_cluster.md — aggregate scaling over pool size, a hedge
// drill against a deliberately slow node, and a live-fault
// ejection/recovery drill driven through /faultz and /healthz.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"protoacc/internal/serve"
	"protoacc/internal/serve/cluster"
	"protoacc/internal/telemetry"
)

// parseAddrList splits a comma list of host:port entries.
func parseAddrList(flagName, s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("loadgen: empty address in %s %q (stray comma?)", flagName, s)
		}
		out = append(out, part)
	}
	return out, nil
}

// clusterOptions assembles the balancer configuration from the -cluster
// flag family. Health polling turns on iff -cluster-admin is given.
func clusterOptions(addrs, admins, routing string, hedge bool, quantile float64) (cluster.Options, error) {
	list, err := parseAddrList("-cluster", addrs)
	if err != nil {
		return cluster.Options{}, err
	}
	route, err := serve.ParseRouting(routing)
	if err != nil {
		return cluster.Options{}, err
	}
	opts := cluster.Options{
		Addrs:   list,
		Routing: route,
		// A bounded wait keeps a wedged daemon from pinning loadgen
		// workers forever; the balancer fails over on the timeout.
		Dial:  serve.DialOptions{Timeout: 10 * time.Second},
		Hedge: cluster.HedgeOptions{Enabled: hedge, Quantile: quantile},
	}
	if admins != "" {
		alist, err := parseAddrList("-cluster-admin", admins)
		if err != nil {
			return cluster.Options{}, err
		}
		if len(alist) != len(list) {
			return cluster.Options{}, fmt.Errorf("loadgen: -cluster-admin lists %d addresses for %d -cluster nodes", len(alist), len(list))
		}
		opts.AdminAddrs = alist
		opts.Health.Interval = 200 * time.Millisecond
	}
	return opts, nil
}

// printClusterStats prints the balancer's view of the run: pool-level
// hedging/ejection accounting, then each node's share.
func printClusterStats(w io.Writer, b *cluster.Balancer) {
	c := b.Counters()
	fmt.Fprintf(w, "cluster: %d nodes  requests=%.0f hedges=%.0f hedge-wins=%.0f hedge-losses=%.0f retries=%.0f ejections=%.0f recoveries=%.0f\n",
		b.Nodes(), c["serve/cluster/requests"], c["serve/cluster/hedges"], c["serve/cluster/hedge_wins"],
		c["serve/cluster/hedge_losses"], c["serve/cluster/retries"], c["serve/cluster/ejections"], c["serve/cluster/recoveries"])
	for i, n := range b.NodeStats() {
		state := ""
		if n.Ejected {
			state = "  [ejected]"
		}
		fmt.Fprintf(w, "  node%d %s: req=%d ok=%d err=%d fellback=%d hedges=%d hedge-wins=%d ejections=%d redials=%d%s\n",
			i, n.Addr, n.Requests, n.OKs, n.Errors, n.Fallbacks, n.Hedges, n.HedgeWins, n.Ejections, n.Redials, state)
	}
}

// daemon is one spawned protoaccd child process.
type daemon struct {
	cmd   *exec.Cmd
	addr  string // data plane
	admin string // admin plane (/healthz, /faultz)
}

// freeAddr reserves a loopback port by binding :0 and releasing it; the
// child rebinds it a moment later. The window is small and a collision
// fails the spawn loudly, which is fine for a local sweep.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// spawnDaemon starts one protoaccd and waits until its /healthz answers.
// Every sweep daemon gets 2 batch executors so multi-node points measure
// pool scaling, not GOMAXPROCS oversubscription across children.
func spawnDaemon(bin string, extra ...string) (*daemon, error) {
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	admin, err := freeAddr()
	if err != nil {
		return nil, err
	}
	args := append([]string{"-listen", addr, "-admin", admin, "-workers", "2"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("loadgen: spawn %s: %w", bin, err)
	}
	d := &daemon{cmd: cmd, addr: addr, admin: admin}
	if err := d.waitHealthy(10 * time.Second); err != nil {
		d.stop()
		return nil, err
	}
	return d, nil
}

func (d *daemon) waitHealthy(budget time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get("http://" + d.admin + "/healthz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: protoaccd %s not healthy after %v", d.addr, budget)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// stop drains the daemon (SIGTERM takes its clean-drain path) and
// escalates to SIGKILL if it does not exit.
func (d *daemon) stop() {
	d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { d.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		d.cmd.Process.Kill()
		<-done
	}
}

func stopAll(ds []*daemon) {
	for _, d := range ds {
		d.stop()
	}
}

// clusterPoint is one pool size's merged measurement across every
// (schema, op) pass.
type clusterPoint struct {
	nodes    int
	elapsed  time.Duration
	ok       uint64
	fellBack uint64
	failures uint64
	latency  telemetry.Histogram
}

func (p *clusterPoint) rps() float64 {
	if p.elapsed <= 0 {
		return 0
	}
	return float64(p.ok) / p.elapsed.Seconds()
}

// hedgeCell is one hedging-off/on pass of the hedge drill.
type hedgeCell struct {
	hedged    bool
	report    *serve.LoadgenReport
	hedges    float64
	hedgeWins float64
}

// ejectDrill is the ejection/recovery drill's observed timeline.
type ejectDrill struct {
	ejectAfter   time.Duration // fault injected → node ejected
	recoverAfter time.Duration // fault cleared → node restored
	frozen       uint64        // requests the ejected node got while out (want 0)
	requests     uint64
	checkFails   uint64
	counters     map[string]float64
}

// runClusterSweep spawns local protoaccd daemons and measures the
// disaggregated pool: aggregate throughput over 1→2→4 nodes, the hedge
// drill (one slow node; p999 with hedging off vs on), and the ejection
// drill (fault one node live via /faultz, watch /healthz polling eject
// and then restore it). Every response is byte-verified when -check is
// on (the default).
func runClusterSweep(bin string, runOpts serve.LoadgenOptions, schemas []string, ops []serve.Op, mode, out string) error {
	if bin == "" {
		path, err := exec.LookPath("protoaccd")
		if err != nil {
			return fmt.Errorf("loadgen: -cluster-sweep needs a protoaccd binary: %v (go build ./cmd/protoaccd and pass -protoaccd-bin)", err)
		}
		bin = path
	}

	var points []*clusterPoint
	for _, n := range []int{1, 2, 4} {
		pt, err := runScalingPoint(bin, n, runOpts, schemas, ops)
		if err != nil {
			return err
		}
		points = append(points, pt)
	}

	hedgeCells, err := runHedgeDrill(bin, runOpts, schemas[0], ops[0])
	if err != nil {
		return err
	}
	drill, err := runEjectionDrill(bin, runOpts.Catalog, schemas[0])
	if err != nil {
		return err
	}

	if out != "" {
		if err := writeClusterMarkdown(out, mode, runOpts, points, hedgeCells, drill); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}
	return nil
}

// runScalingPoint measures one pool size: n fresh daemons, p2c routing,
// hedging off, every (schema, op) pass merged into one point.
func runScalingPoint(bin string, n int, runOpts serve.LoadgenOptions, schemas []string, ops []serve.Op) (*clusterPoint, error) {
	var ds []*daemon
	for i := 0; i < n; i++ {
		d, err := spawnDaemon(bin)
		if err != nil {
			stopAll(ds)
			return nil, err
		}
		ds = append(ds, d)
	}
	defer stopAll(ds)
	addrs := make([]string, len(ds))
	for i, d := range ds {
		addrs[i] = d.addr
	}
	b, err := cluster.New(cluster.Options{Addrs: addrs, Dial: serve.DialOptions{Timeout: 10 * time.Second}})
	if err != nil {
		return nil, err
	}
	defer b.Close()

	pt := &clusterPoint{nodes: n}
	for _, name := range schemas {
		for _, op := range ops {
			ro := runOpts
			ro.Dial = func() (serve.Doer, error) { return b.Client(), nil }
			ro.Schema = name
			ro.Op = op
			rep, err := serve.RunLoadgen(ro)
			if err != nil {
				return nil, err
			}
			fmt.Printf("nodes=%d ", n)
			printReport(os.Stdout, rep)
			pt.elapsed += rep.Elapsed
			pt.ok += rep.OK
			pt.fellBack += rep.FellBack
			pt.failures += rep.CheckFailures + rep.Errors
			pt.latency.Merge(&rep.Latency)
		}
	}
	printClusterStats(os.Stdout, b)
	if pt.failures > 0 {
		return nil, fmt.Errorf("loadgen: FAILED (%d check failures or transport errors at %d nodes)", pt.failures, n)
	}
	return pt, nil
}

// runHedgeDrill measures hedging against a straggler: one healthy node
// and one slow one (a 60ms batch window pins every slow-node response
// behind the coalescing timer), round-robin routing so half the traffic
// lands on the straggler, hedging off vs on. With hedging on, requests
// outstanding past the adaptive delay re-issue on the other node and the
// first response wins — the p999 cut the pool exists for.
func runHedgeDrill(bin string, runOpts serve.LoadgenOptions, schema string, op serve.Op) ([2]hedgeCell, error) {
	var cells [2]hedgeCell
	fast, err := spawnDaemon(bin)
	if err != nil {
		return cells, err
	}
	defer fast.stop()
	slow, err := spawnDaemon(bin, "-batch-window", "60ms")
	if err != nil {
		return cells, err
	}
	defer slow.stop()

	for i, hedged := range []bool{false, true} {
		b, err := cluster.New(cluster.Options{
			Addrs:   []string{fast.addr, slow.addr},
			Routing: serve.RouteRoundRobin,
			Dial:    serve.DialOptions{Timeout: 10 * time.Second},
			Hedge: cluster.HedgeOptions{
				Enabled:    hedged,
				Quantile:   0.9,
				Min:        2 * time.Millisecond,
				Max:        20 * time.Millisecond,
				MinSamples: 32,
			},
			// The straggler answers correctly (just late); transport-error
			// ejection must not quietly remove it mid-drill.
			Health: cluster.HealthOptions{ErrorThreshold: -1},
		})
		if err != nil {
			return cells, err
		}
		ro := runOpts
		ro.Dial = func() (serve.Doer, error) { return b.Client(), nil }
		ro.Schema = schema
		ro.Op = op
		rep, err := serve.RunLoadgen(ro)
		if err != nil {
			b.Close()
			return cells, err
		}
		c := b.Counters()
		cells[i] = hedgeCell{hedged: hedged, report: rep, hedges: c["serve/cluster/hedges"], hedgeWins: c["serve/cluster/hedge_wins"]}
		fmt.Printf("hedge=%v ", hedged)
		printReport(os.Stdout, rep)
		printClusterStats(os.Stdout, b)
		b.Close()
		if rep.CheckFailures > 0 || rep.Errors > 0 {
			return cells, fmt.Errorf("loadgen: FAILED (hedge drill: check failures=%d errors=%d)", rep.CheckFailures, rep.Errors)
		}
	}
	if cells[1].hedges == 0 || cells[1].hedgeWins == 0 {
		return cells, fmt.Errorf("loadgen: hedge drill sent %.0f hedges with %.0f wins; expected hedging against the slow node", cells[1].hedges, cells[1].hedgeWins)
	}
	return cells, nil
}

// faultzSet swaps one tile's live fault schedule on a daemon via its
// /faultz admin control; spec "off" stops injection.
func faultzSet(admin string, tile int, spec string) error {
	client := &http.Client{Timeout: 2 * time.Second}
	url := fmt.Sprintf("http://%s/faultz?tile=%d&faults=%s", admin, tile, spec)
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("loadgen: /faultz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("loadgen: /faultz returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// runEjectionDrill faults one of two daemons live via /faultz and
// watches the balancer's /healthz polling take it out of rotation and —
// once the faults stop — put it back. EjectDwell is set far beyond the
// drill so data-path probing can't mask the poll path: only clean polls
// restore the node. Traffic runs through the whole timeline, every
// response byte-verified (faulted requests fall back to the software
// codec, which still answers canonical bytes).
func runEjectionDrill(bin string, catalog *serve.Catalog, schema string) (*ejectDrill, error) {
	healthy, err := spawnDaemon(bin)
	if err != nil {
		return nil, err
	}
	defer healthy.stop()
	victim, err := spawnDaemon(bin)
	if err != nil {
		return nil, err
	}
	defer victim.stop()

	b, err := cluster.New(cluster.Options{
		Addrs:      []string{healthy.addr, victim.addr},
		AdminAddrs: []string{healthy.admin, victim.admin},
		Routing:    serve.RouteRoundRobin,
		Dial:       serve.DialOptions{Timeout: 10 * time.Second},
		Health: cluster.HealthOptions{
			Interval:       25 * time.Millisecond,
			SickPolls:      2,
			HealthyPolls:   2,
			EjectDwell:     time.Hour,
			ErrorThreshold: -1,
		},
	})
	if err != nil {
		return nil, err
	}
	defer b.Close()

	entry := catalog.Lookup(schema)
	if entry == nil {
		return nil, fmt.Errorf("loadgen: unknown schema %q", schema)
	}
	var requests, checkFails atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			payload := entry.SamplePayload(i)
			resp, err := b.Do(serve.Request{Op: serve.OpDeserialize, Schema: schema, Payload: payload})
			requests.Add(1)
			if err != nil || resp.Status != serve.StatusOK || !bytes.Equal(resp.Payload, payload) {
				checkFails.Add(1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	var stopOnce sync.Once
	stopTraffic := func() {
		stopOnce.Do(func() {
			close(stop)
			wg.Wait()
		})
	}
	defer stopTraffic()

	const victimID = 1
	waitState := func(ejected bool, budget time.Duration) (time.Duration, error) {
		start := time.Now()
		for {
			if b.NodeStats()[victimID].Ejected == ejected {
				return time.Since(start), nil
			}
			if time.Since(start) > budget {
				return 0, fmt.Errorf("loadgen: ejection drill: victim never reached ejected=%v within %v", ejected, budget)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Let traffic reach both nodes first.
	time.Sleep(250 * time.Millisecond)

	// Fault the victim's tile 0: /healthz marks the tile degraded the
	// moment the schedule is live, no failing traffic needed.
	drill := &ejectDrill{}
	if err := faultzSet(victim.admin, 0, "0.9"); err != nil {
		return nil, err
	}
	if drill.ejectAfter, err = waitState(true, 10*time.Second); err != nil {
		return nil, err
	}
	fmt.Printf("ejection drill: victim ejected %v after fault injection\n", drill.ejectAfter.Round(time.Millisecond))

	// While ejected the victim must get no traffic at all.
	before := b.NodeStats()[victimID].Requests
	time.Sleep(300 * time.Millisecond)
	drill.frozen = b.NodeStats()[victimID].Requests - before

	if err := faultzSet(victim.admin, 0, "off"); err != nil {
		return nil, err
	}
	if drill.recoverAfter, err = waitState(false, 10*time.Second); err != nil {
		return nil, err
	}
	fmt.Printf("ejection drill: victim restored %v after fault clear\n", drill.recoverAfter.Round(time.Millisecond))

	// Traffic must return to the restored node.
	back := b.NodeStats()[victimID].Requests
	start := time.Now()
	for b.NodeStats()[victimID].Requests == back {
		if time.Since(start) > 5*time.Second {
			return nil, fmt.Errorf("loadgen: ejection drill: traffic never returned to the restored node")
		}
		time.Sleep(5 * time.Millisecond)
	}

	stopTraffic()
	drill.requests = requests.Load()
	drill.checkFails = checkFails.Load()
	drill.counters = b.Counters()
	printClusterStats(os.Stdout, b)
	if drill.checkFails > 0 {
		return nil, fmt.Errorf("loadgen: FAILED (ejection drill: %d of %d responses failed the byte check)", drill.checkFails, drill.requests)
	}
	if drill.frozen > 0 {
		return nil, fmt.Errorf("loadgen: FAILED (ejection drill: ejected node received %d requests)", drill.frozen)
	}
	return drill, nil
}

// writeClusterMarkdown writes the disaggregated-pool report (overwriting
// path): scaling table, hedge drill, ejection timeline.
func writeClusterMarkdown(path, mode string, runOpts serve.LoadgenOptions, points []*clusterPoint, hedge [2]hedgeCell, drill *ejectDrill) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Disaggregated accelerator pool (loadgen -cluster-sweep)\n\n")
	fmt.Fprintf(f, "Mode: %s, concurrency %d, %v per pass, GOMAXPROCS=%d, %s.\n",
		mode, runOpts.Concurrency, runOpts.Duration, runtime.GOMAXPROCS(0), runtime.Version())
	fmt.Fprintf(f, "Every daemon is a real protoaccd child process (2 batch executors each)\n")
	fmt.Fprintf(f, "on loopback; the client side is internal/serve/cluster's balancer. All\n")
	fmt.Fprintf(f, "responses were byte-verified against the canonical payloads.\n\n")

	fmt.Fprintf(f, "## Aggregate throughput vs pool size\n\n")
	fmt.Fprintf(f, "p2c routing over live in-flight × latency estimates, hedging off; req/s\n")
	fmt.Fprintf(f, "aggregates every (schema, op) pass, speedup is relative to one daemon.\n\n")
	fmt.Fprintf(f, "| nodes | req/s | speedup | ok | fellback | p50 | p99 | p999 |\n")
	fmt.Fprintf(f, "|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	base := 0.0
	if len(points) > 0 {
		base = points[0].rps()
	}
	for _, p := range points {
		speedup := 0.0
		if base > 0 {
			speedup = p.rps() / base
		}
		fmt.Fprintf(f, "| %d | %.0f | %.2fx | %d | %d | %v | %v | %v |\n",
			p.nodes, p.rps(), speedup, p.ok, p.fellBack,
			p.latency.Quantile(0.50), p.latency.Quantile(0.99), p.latency.Quantile(0.999))
	}

	offRep, onRep := hedge[0].report, hedge[1].report
	fmt.Fprintf(f, "\n## Hedge drill: straggler node, hedging off vs on\n\n")
	fmt.Fprintf(f, "Two daemons, one slowed by a 60ms batch window (every response waits out\n")
	fmt.Fprintf(f, "the coalescing timer), round-robin routing so half the traffic hits the\n")
	fmt.Fprintf(f, "straggler. With hedging on, a request outstanding past the adaptive delay\n")
	fmt.Fprintf(f, "(p90 of observed OK latency, clamped to [2ms, 20ms]) re-issues on the\n")
	fmt.Fprintf(f, "other node and the first response wins; the loser completes and is\n")
	fmt.Fprintf(f, "discarded.\n\n")
	fmt.Fprintf(f, "| hedging | req/s | p50 | p99 | p999 | hedges | hedge wins |\n")
	fmt.Fprintf(f, "|---|---:|---:|---:|---:|---:|---:|\n")
	for _, c := range hedge {
		fmt.Fprintf(f, "| %v | %.0f | %v | %v | %v | %.0f | %.0f |\n",
			c.hedged, c.report.RPS(),
			c.report.Latency.Quantile(0.50), c.report.Latency.Quantile(0.99), c.report.Latency.Quantile(0.999),
			c.hedges, c.hedgeWins)
	}
	offP999 := offRep.Latency.Quantile(0.999)
	onP999 := onRep.Latency.Quantile(0.999)
	if offP999 > 0 {
		fmt.Fprintf(f, "\np999 %v → %v (%.1f%% of the unhedged tail), p99 %v → %v.\n",
			offP999, onP999, float64(onP999)/float64(offP999)*100,
			offRep.Latency.Quantile(0.99), onRep.Latency.Quantile(0.99))
	}

	fmt.Fprintf(f, "\n## Ejection drill: live fault, /healthz-driven ejection and recovery\n\n")
	fmt.Fprintf(f, "Two daemons under steady byte-verified traffic, /healthz polled every\n")
	fmt.Fprintf(f, "25ms (2 sick polls eject, 2 clean polls restore; probe dwell parked so\n")
	fmt.Fprintf(f, "only polling can restore). Fault injection is switched on the victim's\n")
	fmt.Fprintf(f, "tile live via /faultz, which marks the tile degraded in /healthz.\n\n")
	fmt.Fprintf(f, "| event | observed |\n")
	fmt.Fprintf(f, "|---|---|\n")
	fmt.Fprintf(f, "| fault injected → node ejected | %v |\n", drill.ejectAfter.Round(time.Millisecond))
	fmt.Fprintf(f, "| requests to the node while ejected (over 300ms) | %d |\n", drill.frozen)
	fmt.Fprintf(f, "| fault cleared → node restored | %v |\n", drill.recoverAfter.Round(time.Millisecond))
	fmt.Fprintf(f, "| drill requests (all byte-verified) | %d |\n", drill.requests)
	fmt.Fprintf(f, "| check failures | %d |\n", drill.checkFails)
	fmt.Fprintf(f, "\nserve/cluster counters at drill end: ejections=%.0f recoveries=%.0f\n",
		drill.counters["serve/cluster/ejections"], drill.counters["serve/cluster/recoveries"])
	fmt.Fprintf(f, "requests=%.0f retries=%.0f.\n",
		drill.counters["serve/cluster/requests"], drill.counters["serve/cluster/retries"])
	return nil
}
