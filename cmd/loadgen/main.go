// Command loadgen drives a protoaccd with closed-loop (saturating) or
// open-loop (paced) load and reports request throughput and latency
// percentiles (p50/p99/p999 from log-linear histograms merged across
// workers).
//
// Usage:
//
//	loadgen [-addr host:port] [-schema name] [-op deser|ser|both]
//	        [-duration d] [-concurrency n] [-rate rps] [-timeout d]
//	        [-check] [-out file]
//	        [-workers n] [-max-batch n] [-batch-window d] [-queue-depth n]
//	        [-faults rate[@site,...]] [-fault-seed n] [-stats-out file]
//
// With -addr it dials an already-running daemon over TCP (one connection
// per worker). Without -addr it starts an in-process server and drives it
// through the direct client — the zero-network configuration the checked
// in results/serve_throughput.md is measured with; the -workers through
// -stats-out flags configure that in-process server and are rejected with
// -addr.
//
// -check verifies every OK response is byte-identical to its request
// payload (sample payloads are canonical, so the serving contract makes
// response == request for both operations, even under -faults).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"protoacc/internal/faults"
	"protoacc/internal/serve"
	"protoacc/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "", "protoaccd address; empty starts an in-process server")
	schema := flag.String("schema", "varint", "catalog schema to exercise, or \"all\"")
	op := flag.String("op", "both", "operation mix: deser, ser, or both (one pass per op)")
	duration := flag.Duration("duration", 2*time.Second, "length of each pass")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers (each owns one connection)")
	rate := flag.Float64("rate", 0, "open-loop aggregate requests/sec (0 = closed loop)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = server default)")
	check := flag.Bool("check", true, "verify each OK response is byte-identical to its payload")
	out := flag.String("out", "", "append a markdown report to this file (e.g. results/serve_throughput.md)")

	workers := flag.Int("workers", 0, "in-process server: batch executors (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 0, "in-process server: max requests per batch")
	batchWindow := flag.Duration("batch-window", 0, "in-process server: batch coalescing window")
	queueDepth := flag.Int("queue-depth", 0, "in-process server: admission queue bound")
	faultSpec := flag.String("faults", "", "in-process server fault injection: RATE or RATE@site,... (sites: "+strings.Join(faults.SiteNames(), ",")+")")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule")
	statsOut := flag.String("stats-out", "", "in-process server: write merged telemetry counters on exit")
	flag.Parse()

	serverFlags := *workers != 0 || *maxBatch != 0 || *batchWindow != 0 ||
		*queueDepth != 0 || *faultSpec != "" || *statsOut != ""
	if *addr != "" && serverFlags {
		fmt.Fprintln(os.Stderr, "loadgen: -workers/-max-batch/-batch-window/-queue-depth/-faults/-stats-out configure the in-process server and conflict with -addr")
		os.Exit(2)
	}
	faultCfg, err := faults.ParseFlag(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	catalog := serve.DefaultCatalog()
	var dial func() (serve.Doer, error)
	var srv *serve.Server
	target := *addr
	if *addr == "" {
		srv, err = serve.NewServer(serve.Options{
			Catalog:     catalog,
			Workers:     *workers,
			MaxBatch:    *maxBatch,
			BatchWindow: *batchWindow,
			QueueDepth:  *queueDepth,
			Faults:      faultCfg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dial = func() (serve.Doer, error) { return srv.InProc(), nil }
		target = fmt.Sprintf("in-process (server workers=%d)", srv.Workers())
	} else {
		dial = func() (serve.Doer, error) { return serve.Dial(*addr) }
	}

	var schemas []string
	if *schema == "all" {
		schemas = catalog.Names()
	} else {
		schemas = []string{*schema}
	}
	var ops []serve.Op
	switch *op {
	case "deser":
		ops = []serve.Op{serve.OpDeserialize}
	case "ser":
		ops = []serve.Op{serve.OpSerialize}
	case "both":
		ops = []serve.Op{serve.OpDeserialize, serve.OpSerialize}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -op %q\n", *op)
		os.Exit(2)
	}

	mode := "closed-loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f/s", *rate)
	}
	fmt.Printf("loadgen: target %s, %s, concurrency %d, %v per pass\n", target, mode, *concurrency, *duration)

	var reports []*serve.LoadgenReport
	failed := false
	for _, name := range schemas {
		for _, o := range ops {
			rep, err := serve.RunLoadgen(serve.LoadgenOptions{
				Dial:        dial,
				Catalog:     catalog,
				Schema:      name,
				Op:          o,
				Duration:    *duration,
				Concurrency: *concurrency,
				RatePerSec:  *rate,
				Timeout:     *timeout,
				Check:       *check,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			printReport(os.Stdout, rep)
			if rep.CheckFailures > 0 || rep.Errors > 0 {
				failed = true
			}
			reports = append(reports, rep)
		}
	}

	if *out != "" {
		if err := writeMarkdown(*out, mode, *concurrency, *duration, reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if srv != nil {
		srv.Close()
		if *statsOut != "" {
			if err := writeStats(*statsOut, srv); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("server telemetry written to %s\n", *statsOut)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "loadgen: FAILED (check failures or transport errors)")
		os.Exit(1)
	}
}

func printReport(w io.Writer, r *serve.LoadgenReport) {
	fmt.Fprintf(w, "%-8s %-5s  %7.0f req/s  %6.3f Gbit/s  ok=%d shed=%d deadline=%d fellback=%d",
		r.Schema, r.Op, r.RPS(), r.Gbps(), r.OK, r.Shed, r.Deadline, r.FellBack)
	if r.Errors > 0 || r.Bad > 0 {
		fmt.Fprintf(w, " errors=%d bad=%d", r.Errors, r.Bad)
	}
	if r.CheckFailures > 0 {
		fmt.Fprintf(w, " CHECK-FAILURES=%d", r.CheckFailures)
	}
	fmt.Fprintf(w, "\n  latency p50=%v p99=%v p999=%v mean=%v\n",
		r.Latency.Quantile(0.50), r.Latency.Quantile(0.99), r.Latency.Quantile(0.999), r.Latency.Mean())
}

// writeMarkdown writes the run's report table (overwriting path).
func writeMarkdown(path, mode string, concurrency int, duration time.Duration, reports []*serve.LoadgenReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Serving throughput (protoaccd + loadgen)\n\n")
	fmt.Fprintf(f, "Mode: %s, concurrency %d, %v per pass, GOMAXPROCS=%d, %s.\n",
		mode, concurrency, duration, runtime.GOMAXPROCS(0), runtime.Version())
	fmt.Fprintf(f, "Latency percentiles are per successful request, measured client-side.\n\n")
	fmt.Fprintf(f, "| schema | op | req/s | Gbit/s | ok | shed | deadline | fellback | p50 | p99 | p999 |\n")
	fmt.Fprintf(f, "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range reports {
		fmt.Fprintf(f, "| %s | %s | %.0f | %.3f | %d | %d | %d | %d | %v | %v | %v |\n",
			r.Schema, r.Op, r.RPS(), r.Gbps(), r.OK, r.Shed, r.Deadline, r.FellBack,
			r.Latency.Quantile(0.50), r.Latency.Quantile(0.99), r.Latency.Quantile(0.999))
	}
	return nil
}

func writeStats(path string, srv *serve.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := srv.TelemetrySnapshot()
	if strings.HasSuffix(path, ".prom") {
		return telemetry.WritePrometheus(f, snap)
	}
	m := &telemetry.Manifest{
		Command:           "loadgen " + strings.Join(os.Args[1:], " "),
		GoVersion:         runtime.Version(),
		ConfigFingerprint: srv.ConfigFingerprint(),
		Parallelism:       srv.Workers(),
	}
	return telemetry.WriteStatsJSON(f, m, snap)
}
