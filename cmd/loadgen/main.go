// Command loadgen drives a protoaccd with closed-loop (saturating) or
// open-loop (paced) load and reports request throughput and latency
// percentiles (p50/p99/p999 from log-linear histograms merged across
// workers). Open-loop latency is coordinated-omission-free: samples are
// measured from the scheduled send time, so queueing delay under
// overload lands in the tail percentiles instead of being silently
// dropped.
//
// Usage:
//
//	loadgen [-addr host:port] [-admin-url url] [-schema name]
//	        [-op deser|ser|both]
//	        [-duration d] [-concurrency n] [-rate rps] [-skew s] [-timeout d]
//	        [-check] [-out file] [-scrape file] [-trace-out file]
//	        [-tiles n] [-routing p2c|rr] [-tile-sweep 1,2,4]
//	        [-elements all|off|admission,breaker,cache] [-elements-sweep]
//	        [-workload trace|chain|all] [-trace-seed n] [-trace-len n] [-hops n]
//	        [-cluster host:port,host:port] [-cluster-admin host:port,...]
//	        [-cluster-routing p2c|rr] [-hedge] [-hedge-quantile q]
//	        [-cluster-sweep] [-protoaccd-bin path]
//	        [-workers n] [-max-batch n] [-batch-window d] [-queue-depth n]
//	        [-faults rate[@site,...]] [-fault-seed n] [-fault-tiles 0,2]
//	        [-stats-out file] [-span-sample-n n]
//
// -skew s draws payloads from a Zipf(s) distribution over the schema's
// sample set instead of walking it uniformly — hot-key traffic, the shape
// the daemon's response-cache element exists for (s must exceed 1; larger
// is more skewed).
//
// -elements-sweep measures the element chain's effect on skewed traffic
// (chain off vs on at several skew levels, fresh in-process server per
// cell) and runs a breaker trip/recovery drill against a part-faulted
// fleet — the measurement behind results/serve_elements.md.
//
// -workload replaces the per-(schema, op) passes with fleet-shaped
// workloads from internal/workloads: "trace" replays a seeded,
// deterministic key/size/op trace (schema mix and payload sizes shaped
// by the fleet study, Zipf-ranked key popularity), "chain" drives a
// 2–3 hop service chain (frontend → kv → backend [→ store]) where every
// hop's serialize and deserialize runs on the accelerated serving path,
// and "all" does both — the measurement behind results/serve_workloads.md.
// -trace-seed, -trace-len, and -hops tune it; both modes work against an
// in-process server or a live daemon via -addr.
//
// -cluster drives a pool of already-running protoaccd daemons through
// the client-side balancer (internal/serve/cluster): p2c or rr node
// placement over live in-flight/latency estimates, optional straggler
// hedging (-hedge), and — with -cluster-admin — /healthz-driven node
// ejection and recovery. -cluster-sweep instead spawns its own local
// daemons (binary named by -protoaccd-bin) and runs the
// disaggregated-pool measurement: aggregate throughput scaling over
// 1→2→4 daemons, a hedge drill against a deliberately slow node (p999
// with hedging off vs on), and a live-fault ejection/recovery drill via
// /faultz — the measurement behind results/serve_cluster.md.
//
// With -addr it dials an already-running daemon over TCP (one connection
// per worker). Without -addr it starts an in-process server and drives it
// through the direct client — the zero-network configuration the checked
// in results/serve_throughput.md is measured with; the -tiles through
// -stats-out flags configure that in-process server and are rejected with
// -addr.
//
// -scrape writes an observability report pairing the client-observed
// latency percentiles with the server-side stage breakdown (queue wait,
// coalesce wait, batch build, execute, respond write) — the measurement
// behind results/serve_observability.md. Against an in-process server the
// breakdown is read directly; with -addr it comes from the daemon's admin
// endpoint, named by -admin-url, which loadgen scrapes at ~10Hz for the
// whole run (each tick also validates the /metrics Prometheus exposition
// parses). -trace-out saves the sampled lifecycle spans as Perfetto trace
// JSON (in-process with -span-sample-n, or fetched from -admin-url).
//
// -tile-sweep runs the whole pass set once per listed tile count, each
// against a fresh in-process server, and reports throughput scaling over
// the first entry — the measurement behind results/serve_tiles.md.
//
// -check verifies every OK response is byte-identical to its request
// payload (sample payloads are canonical, so the serving contract makes
// response == request for both operations, even under -faults).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"protoacc/internal/faults"
	"protoacc/internal/serve"
	"protoacc/internal/serve/cluster"
	"protoacc/internal/serve/elements"
	"protoacc/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "", "protoaccd address; empty starts an in-process server")
	schema := flag.String("schema", "varint", "catalog schema to exercise, or \"all\"")
	op := flag.String("op", "both", "operation mix: deser, ser, or both (one pass per op)")
	duration := flag.Duration("duration", 2*time.Second, "length of each pass")
	concurrency := flag.Int("concurrency", 8, "closed-loop workers (each owns one connection)")
	rate := flag.Float64("rate", 0, "open-loop aggregate requests/sec (0 = closed loop)")
	skew := flag.Float64("skew", 0, "Zipf skew s over the schema's sample payloads (>1 = hot-key traffic; 0 = uniform walk)")
	timeout := flag.Duration("timeout", 0, "per-request deadline (0 = server default)")
	check := flag.Bool("check", true, "verify each OK response is byte-identical to its payload")
	out := flag.String("out", "", "write a markdown report to this file (e.g. results/serve_throughput.md)")
	scrape := flag.String("scrape", "", "write an observability report (client latency + server stage breakdown) to this markdown file; with -addr requires -admin-url")
	adminURL := flag.String("admin-url", "", "admin endpoint base URL of the -addr daemon (e.g. http://127.0.0.1:7412); scraped at ~10Hz during passes")
	traceOut := flag.String("trace-out", "", "write sampled lifecycle spans as Perfetto trace JSON to this file (in-process: enable -span-sample-n; with -addr: fetched from -admin-url /spans)")

	workload := flag.String("workload", "", "fleet-shaped workload mode: trace (replay a synthesized trace), chain (2–3 hop service chain), or all")
	traceSeed := flag.Int64("trace-seed", 1, "seed of the synthesized workload trace (same seed = same trace)")
	traceLen := flag.Int("trace-len", 0, "records in the synthesized workload trace (0 = default 4096)")
	hops := flag.Int("hops", 2, "service-chain length in edges for -workload chain (1..3: frontend→kv→backend→store)")

	clusterAddrs := flag.String("cluster", "", "comma-separated protoaccd data addresses; drives the pool through the client-side balancer")
	clusterAdmin := flag.String("cluster-admin", "", "comma-separated admin addresses parallel to -cluster; enables /healthz polling and node ejection")
	clusterRouting := flag.String("cluster-routing", "p2c", "balancer node placement: p2c (in-flight × latency scoring) or rr (deterministic round-robin)")
	hedge := flag.Bool("hedge", false, "hedge straggler requests against a second node after an adaptive quantile delay (needs ≥2 cluster nodes)")
	hedgeQuantile := flag.Float64("hedge-quantile", 0.95, "OK-latency quantile the hedge delay adapts to")
	clusterSweep := flag.Bool("cluster-sweep", false, "spawn local protoaccd daemons and run the disaggregated-pool measurement (1→2→4 scaling, hedge drill, ejection drill); writes -out")
	protoaccdBin := flag.String("protoaccd-bin", "", "protoaccd binary for -cluster-sweep (empty = find \"protoaccd\" in PATH)")

	tiles := flag.Int("tiles", 0, "in-process server: accelerator tiles behind the router (0 = default 1)")
	routing := flag.String("routing", "p2c", "in-process server: tile placement policy, p2c or rr")
	tileSweep := flag.String("tile-sweep", "", "run every pass once per tile count in this comma list (e.g. 1,2,4) and report scaling; implies in-process servers")
	elementsSpec := flag.String("elements", "", "in-process server: data-plane element chain (\"all\", \"off\", or comma list of admission,breaker,cache)")
	elementsSweep := flag.Bool("elements-sweep", false, "run the skewed-traffic element comparison (chain off vs on at several skew levels, plus a breaker trip/recovery drill) and report; implies in-process servers")
	workers := flag.Int("workers", 0, "in-process server: total batch executors (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 0, "in-process server: max requests per batch")
	batchWindow := flag.Duration("batch-window", 0, "in-process server: batch coalescing window")
	queueDepth := flag.Int("queue-depth", 0, "in-process server: per-tile admission queue bound")
	faultSpec := flag.String("faults", "", "in-process server fault injection: RATE or RATE@site,... (sites: "+strings.Join(faults.SiteNames(), ",")+")")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule")
	faultTiles := flag.String("fault-tiles", "", "comma-separated tile ids the fault schedule applies to (empty = every tile)")
	statsOut := flag.String("stats-out", "", "in-process server: write merged telemetry counters on exit")
	cycleMode := flag.String("cycle-mode", "exact", "in-process server cycle accounting: exact (every request) or sampled (1-in-N requests carry full attribution)")
	cycleSampleN := flag.Int("cycle-sample-n", 0, "in-process server: sampling period for -cycle-mode sampled (0 = default 8)")
	spanSampleN := flag.Int("span-sample-n", 0, "in-process server: sample every N'th admitted request with a lifecycle span (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run (loadgen + in-process server) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	serverFlags := *tiles != 0 || *routing != "p2c" || *tileSweep != "" ||
		*elementsSpec != "" || *elementsSweep ||
		*workers != 0 || *maxBatch != 0 || *batchWindow != 0 ||
		*queueDepth != 0 || *faultSpec != "" || *faultTiles != "" || *statsOut != "" ||
		*cycleMode != "exact" || *cycleSampleN != 0 || *spanSampleN != 0
	if *addr != "" && serverFlags {
		fmt.Fprintln(os.Stderr, "loadgen: -tiles/-routing/-tile-sweep/-elements/-elements-sweep/-workers/-max-batch/-batch-window/-queue-depth/-faults/-fault-tiles/-stats-out/-cycle-mode/-cycle-sample-n/-span-sample-n configure the in-process server and conflict with -addr")
		os.Exit(2)
	}
	clusterMode := *clusterAddrs != "" || *clusterSweep
	clusterFlags := *clusterAdmin != "" || *clusterRouting != "p2c" || *hedge || *hedgeQuantile != 0.95 || *protoaccdBin != ""
	if clusterFlags && !clusterMode {
		fmt.Fprintln(os.Stderr, "loadgen: -cluster-admin/-cluster-routing/-hedge/-hedge-quantile/-protoaccd-bin need -cluster or -cluster-sweep")
		os.Exit(2)
	}
	if *clusterAddrs != "" && *clusterSweep {
		fmt.Fprintln(os.Stderr, "loadgen: -cluster-sweep spawns its own daemons and conflicts with -cluster")
		os.Exit(2)
	}
	if clusterMode && (*addr != "" || serverFlags) {
		fmt.Fprintln(os.Stderr, "loadgen: -cluster/-cluster-sweep replace the single -addr target and do not combine with -addr or the in-process server flags")
		os.Exit(2)
	}
	if clusterMode && (*workload != "" || *scrape != "" || *traceOut != "" || *adminURL != "") {
		fmt.Fprintln(os.Stderr, "loadgen: -cluster/-cluster-sweep do not combine with -workload, -scrape, -trace-out, or -admin-url")
		os.Exit(2)
	}
	if *workload != "" && (*tileSweep != "" || *elementsSweep || *scrape != "") {
		fmt.Fprintln(os.Stderr, "loadgen: -workload does not combine with -tile-sweep, -elements-sweep, or -scrape")
		os.Exit(2)
	}
	if *elementsSweep && *tileSweep != "" {
		fmt.Fprintln(os.Stderr, "loadgen: -elements-sweep does not combine with -tile-sweep")
		os.Exit(2)
	}
	if *elementsSweep && *scrape != "" {
		fmt.Fprintln(os.Stderr, "loadgen: -scrape does not combine with -elements-sweep (one report per server)")
		os.Exit(2)
	}
	if *adminURL != "" && *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -admin-url names a remote daemon's admin endpoint and needs -addr (the in-process server is read directly)")
		os.Exit(2)
	}
	if *addr != "" && (*scrape != "" || *traceOut != "") && *adminURL == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -scrape/-trace-out against a remote daemon need -admin-url")
		os.Exit(2)
	}
	if *scrape != "" && *tileSweep != "" {
		fmt.Fprintln(os.Stderr, "loadgen: -scrape does not combine with -tile-sweep (one report per server)")
		os.Exit(2)
	}
	cycles, err := serve.ParseCycleMode(*cycleMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faultCfg, err := faults.ParseFlag(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faultTileIDs, err := parseTileList(*faultTiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	routePolicy, err := serve.ParseRouting(*routing)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	elemCfg, err := elements.ParseSpec(*elementsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	catalog := serve.DefaultCatalog()
	var schemas []string
	if *schema == "all" {
		schemas = catalog.Names()
	} else {
		schemas = []string{*schema}
	}
	var ops []serve.Op
	switch *op {
	case "deser":
		ops = []serve.Op{serve.OpDeserialize}
	case "ser":
		ops = []serve.Op{serve.OpSerialize}
	case "both":
		ops = []serve.Op{serve.OpDeserialize, serve.OpSerialize}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -op %q\n", *op)
		os.Exit(2)
	}

	mode := "closed-loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open-loop %.0f/s", *rate)
	}

	opts := serve.Options{
		Catalog:      catalog,
		Routing:      routePolicy,
		FaultTiles:   faultTileIDs,
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		BatchWindow:  *batchWindow,
		QueueDepth:   *queueDepth,
		CycleMode:    cycles,
		CycleSampleN: *cycleSampleN,
		SpanSampleN:  *spanSampleN,
		Elements:     elemCfg,
		Faults:       faultCfg,
	}
	runOpts := serve.LoadgenOptions{
		Catalog:     catalog,
		Duration:    *duration,
		Concurrency: *concurrency,
		RatePerSec:  *rate,
		ZipfS:       *skew,
		Timeout:     *timeout,
		Check:       *check,
	}

	if *workload != "" {
		if err := runWorkloads(workloadsRun{
			mode:     *workload,
			seed:     *traceSeed,
			records:  *traceLen,
			hops:     *hops,
			workers:  *concurrency,
			timeout:  *timeout,
			check:    *check,
			addr:     *addr,
			tiles:    *tiles,
			opts:     opts,
			out:      *out,
			statsOut: *statsOut,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *tileSweep != "" {
		counts, err := parseSweep(*tileSweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("loadgen: tile sweep %v, %s, concurrency %d, %v per pass\n", counts, mode, *concurrency, *duration)
		if err := runSweep(counts, opts, runOpts, schemas, ops, mode, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *elementsSweep {
		fmt.Printf("loadgen: elements sweep, %s, concurrency %d, %v per pass\n", mode, *concurrency, *duration)
		if err := runElementsSweep(opts, runOpts, schemas, ops, mode, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *clusterSweep {
		fmt.Printf("loadgen: cluster sweep, %s, concurrency %d, %v per pass\n", mode, *concurrency, *duration)
		if err := runClusterSweep(*protoaccdBin, runOpts, schemas, ops, mode, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var dial func() (serve.Doer, error)
	var srv *serve.Server
	var bal *cluster.Balancer
	target := *addr
	if *clusterAddrs != "" {
		copts, err := clusterOptions(*clusterAddrs, *clusterAdmin, *clusterRouting, *hedge, *hedgeQuantile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		bal, err = cluster.New(copts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dial = func() (serve.Doer, error) { return bal.Client(), nil }
		target = fmt.Sprintf("cluster of %d nodes (routing=%s hedge=%v)", bal.Nodes(), *clusterRouting, *hedge)
	} else if *addr == "" {
		opts.Tiles = *tiles
		srv, err = serve.NewServer(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dial = func() (serve.Doer, error) { return srv.InProc(), nil }
		target = fmt.Sprintf("in-process (tiles=%d routing=%s workers=%d)", srv.Tiles(), srv.Routing(), srv.Workers())
	} else {
		dial = func() (serve.Doer, error) { return serve.Dial(*addr) }
	}

	fmt.Printf("loadgen: target %s, %s, concurrency %d, %v per pass\n", target, mode, *concurrency, *duration)

	var sc *scraper
	if *adminURL != "" {
		sc = startScraper(*adminURL)
	}

	var reports []*serve.LoadgenReport
	failed := false
	for _, name := range schemas {
		for _, o := range ops {
			ro := runOpts
			ro.Dial = dial
			ro.Schema = name
			ro.Op = o
			rep, err := serve.RunLoadgen(ro)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			printReport(os.Stdout, rep)
			if rep.CheckFailures > 0 || rep.Errors > 0 {
				failed = true
			}
			reports = append(reports, rep)
		}
	}

	if sc != nil {
		sc.stop()
		fmt.Printf("loadgen: admin scrape: %d ticks, %d scrape errors, %d exposition errors\n",
			sc.scrapes, sc.failures, sc.invalid)
		if sc.invalid > 0 || sc.scrapes == 0 {
			failed = true
		}
	}

	if bal != nil {
		printClusterStats(os.Stdout, bal)
		bal.Close()
	}

	if *out != "" {
		if err := writeMarkdown(*out, mode, *concurrency, *duration, reports); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if srv != nil {
		srv.Close()
		if *statsOut != "" {
			if err := writeStats(*statsOut, srv); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("server telemetry written to %s\n", *statsOut)
		}
	}

	// Observability artifacts: the server-side view comes from the
	// in-process server directly, or from the admin scraper's last
	// /statusz capture against a remote daemon.
	var status *serve.Statusz
	if srv != nil {
		status = srv.StatuszSnapshot(nil)
	} else if sc != nil {
		status = sc.last
	}
	if *scrape != "" {
		if status == nil {
			fmt.Fprintln(os.Stderr, "loadgen: -scrape: no server-side snapshot captured (is -admin-url reachable?)")
			os.Exit(1)
		}
		if err := writeObsMarkdown(*scrape, mode, *concurrency, *duration, reports, status, sc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("observability report written to %s\n", *scrape)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, srv, *adminURL); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("span trace written to %s\n", *traceOut)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "loadgen: FAILED (check failures, transport errors, or admin scrape errors)")
		os.Exit(1)
	}
}

// scraper polls a daemon's admin endpoint at ~10Hz for the whole run:
// each tick fetches /statusz (keeping the last decoded snapshot) and
// validates the /metrics Prometheus exposition parses — exercising the
// scrape path concurrently with serving traffic is exactly the condition
// the observability plane's determinism guard covers.
type scraper struct {
	base   string
	stopCh chan struct{}
	doneCh chan struct{}

	last     *serve.Statusz
	scrapes  int // successful /statusz captures
	failures int // transport/decode errors
	invalid  int // /metrics expositions that failed validation
}

func startScraper(base string) *scraper {
	sc := &scraper{base: strings.TrimSuffix(base, "/"), stopCh: make(chan struct{}), doneCh: make(chan struct{})}
	client := &http.Client{Timeout: 2 * time.Second}
	go func() {
		defer close(sc.doneCh)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			sc.tick(client)
			select {
			case <-sc.stopCh:
				return
			case <-tick.C:
			}
		}
	}()
	return sc
}

func (sc *scraper) tick(client *http.Client) {
	resp, err := client.Get(sc.base + "/statusz")
	if err != nil {
		sc.failures++
		return
	}
	var doc serve.Statusz
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		sc.failures++
		return
	}
	sc.last = &doc
	sc.scrapes++

	mresp, err := client.Get(sc.base + "/metrics")
	if err != nil {
		sc.failures++
		return
	}
	err = telemetry.ValidatePrometheus(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: /metrics exposition invalid:", err)
		sc.invalid++
	}
}

// stop ends the polling loop and waits for the in-flight tick.
func (sc *scraper) stop() {
	close(sc.stopCh)
	<-sc.doneCh
}

// writeTrace saves the sampled lifecycle spans as Perfetto trace JSON,
// from the in-process server or the remote daemon's /spans endpoint.
func writeTrace(path string, srv *serve.Server, adminURL string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if srv != nil {
		return telemetry.WritePerfetto(f, srv.SpanEvents())
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(strings.TrimSuffix(adminURL, "/") + "/spans")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: /spans returned %s", resp.Status)
	}
	_, err = io.Copy(f, resp.Body)
	return err
}

// writeObsMarkdown writes the observability report: the client-observed
// latency of each pass next to the server's own stage breakdown, so time
// attributed inside the daemon (queue wait, coalescing, batch build,
// execute, respond) can be read against the end-to-end percentiles the
// client saw.
func writeObsMarkdown(path, mode string, concurrency int, duration time.Duration, reports []*serve.LoadgenReport, status *serve.Statusz, sc *scraper) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Serving observability (loadgen -scrape)\n\n")
	fmt.Fprintf(f, "Mode: %s, concurrency %d, %v per pass, GOMAXPROCS=%d, %s.\n",
		mode, concurrency, duration, runtime.GOMAXPROCS(0), runtime.Version())
	fmt.Fprintf(f, "Server: tiles=%d routing=%s workers=%d max-batch=%d cycle-mode=%s span-sample-n=%d.\n",
		status.Config.Tiles, status.Config.Routing, status.Config.Workers,
		status.Config.MaxBatch, status.Config.CycleMode, status.Config.SpanSampleN)
	if sc != nil {
		fmt.Fprintf(f, "Server-side view scraped from the admin endpoint at ~10Hz under load: %d ticks, %d scrape errors, %d exposition errors.\n",
			sc.scrapes, sc.failures, sc.invalid)
	} else {
		fmt.Fprintf(f, "Server-side view read from the in-process server after the passes.\n")
	}
	fmt.Fprintf(f, "\n## Client-observed latency\n\n")
	fmt.Fprintf(f, "| schema | op | req/s | ok | p50 | p99 | p999 | mean |\n")
	fmt.Fprintf(f, "|---|---|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range reports {
		fmt.Fprintf(f, "| %s | %s | %.0f | %d | %v | %v | %v | %v |\n",
			r.Schema, r.Op, r.RPS(), r.OK,
			r.Latency.Quantile(0.50), r.Latency.Quantile(0.99), r.Latency.Quantile(0.999), r.Latency.Mean())
	}
	fmt.Fprintf(f, "\n## Server-side stage breakdown (merged across tiles)\n\n")
	fmt.Fprintf(f, "batch_size is in requests per executed batch; every other row is time per\n")
	fmt.Fprintf(f, "request in that lifecycle stage. e2e spans admit to respond and is the\n")
	fmt.Fprintf(f, "server-side counterpart of the client percentiles above (minus transport).\n\n")
	fmt.Fprintf(f, "| stage | count | p50 | p99 | max | mean |\n")
	fmt.Fprintf(f, "|---|---:|---:|---:|---:|---:|\n")
	for _, st := range status.Stages {
		if st.Stage == "batch_size" {
			fmt.Fprintf(f, "| %s | %d | %d | %d | %d | %d |\n",
				st.Stage, st.Count, st.P50NS, st.P99NS, st.MaxNS, st.MeanNS)
			continue
		}
		fmt.Fprintf(f, "| %s | %d | %v | %v | %v | %v |\n",
			st.Stage, st.Count,
			time.Duration(st.P50NS), time.Duration(st.P99NS),
			time.Duration(st.MaxNS), time.Duration(st.MeanNS))
	}
	if status.Spans.SampleN > 0 {
		fmt.Fprintf(f, "\nSpans: 1-in-%d sampling, %d sampled, %d completed, %d overwritten, %d buffered.\n",
			status.Spans.SampleN, status.Spans.Sampled, status.Spans.Completed,
			status.Spans.Dropped, status.Spans.Buffered)
	}
	return nil
}

// parseTileList parses a comma-separated list of tile ids; empty means
// nil (every tile).
func parseTileList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("loadgen: empty tile id in -fault-tiles %q (stray comma?)", s)
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("loadgen: bad tile id %q in -fault-tiles: %v", part, err)
		}
		out = append(out, id)
	}
	return out, nil
}

// parseSweep parses the -tile-sweep comma list.
func parseSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("loadgen: bad tile count %q in -tile-sweep", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// sweepPoint is one tile count's merged measurement across every pass.
type sweepPoint struct {
	tiles    int
	elapsed  time.Duration
	ok       uint64
	shed     uint64
	fellBack uint64
	failures uint64
	latency  telemetry.Histogram
}

func (p *sweepPoint) rps() float64 {
	if p.elapsed <= 0 {
		return 0
	}
	return float64(p.ok) / p.elapsed.Seconds()
}

// runSweep measures each tile count against a fresh in-process server and
// writes the scaling report.
func runSweep(counts []int, opts serve.Options, runOpts serve.LoadgenOptions, schemas []string, ops []serve.Op, mode, out string) error {
	var points []*sweepPoint
	failed := false
	for _, n := range counts {
		o := opts
		o.Tiles = n
		srv, err := serve.NewServer(o)
		if err != nil {
			return err
		}
		pt := &sweepPoint{tiles: n}
		for _, name := range schemas {
			for _, op := range ops {
				ro := runOpts
				ro.Dial = func() (serve.Doer, error) { return srv.InProc(), nil }
				ro.Schema = name
				ro.Op = op
				rep, err := serve.RunLoadgen(ro)
				if err != nil {
					srv.Close()
					return err
				}
				fmt.Printf("tiles=%d ", n)
				printReport(os.Stdout, rep)
				pt.elapsed += rep.Elapsed
				pt.ok += rep.OK
				pt.shed += rep.Shed
				pt.fellBack += rep.FellBack
				pt.failures += rep.CheckFailures + rep.Errors
				pt.latency.Merge(&rep.Latency)
			}
		}
		srv.Close()
		if pt.failures > 0 {
			failed = true
		}
		points = append(points, pt)
	}
	if out != "" {
		if err := writeSweepMarkdown(out, mode, runOpts.Concurrency, runOpts.Duration, points); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}
	if failed {
		return fmt.Errorf("loadgen: FAILED (check failures or transport errors during sweep)")
	}
	return nil
}

// writeSweepMarkdown writes the tile-scaling table (overwriting path).
// Speedup is aggregate req/s relative to the sweep's first entry.
func writeSweepMarkdown(path, mode string, concurrency int, duration time.Duration, points []*sweepPoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Serving throughput vs tile count (loadgen -tile-sweep)\n\n")
	fmt.Fprintf(f, "Mode: %s, concurrency %d, %v per pass, GOMAXPROCS=%d, %s.\n",
		mode, concurrency, duration, runtime.GOMAXPROCS(0), runtime.Version())
	fmt.Fprintf(f, "Each row is a fresh in-process server; req/s aggregates every (schema, op)\n")
	fmt.Fprintf(f, "pass at that tile count, and speedup is relative to the first row — the\n")
	fmt.Fprintf(f, "single-pool baseline when the sweep starts at 1 tile. Latency percentiles\n")
	fmt.Fprintf(f, "are per successful request, measured client-side.\n\n")
	fmt.Fprintf(f, "| tiles | req/s | speedup | ok | shed | fellback | p50 | p99 | p999 |\n")
	fmt.Fprintf(f, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	base := 0.0
	if len(points) > 0 {
		base = points[0].rps()
	}
	for _, p := range points {
		speedup := 0.0
		if base > 0 {
			speedup = p.rps() / base
		}
		fmt.Fprintf(f, "| %d | %.0f | %.2fx | %d | %d | %d | %v | %v | %v |\n",
			p.tiles, p.rps(), speedup, p.ok, p.shed, p.fellBack,
			p.latency.Quantile(0.50), p.latency.Quantile(0.99), p.latency.Quantile(0.999))
	}
	return nil
}

// elemPoint is one (skew, chain on/off) cell of the elements sweep,
// merged across every (schema, op) pass.
type elemPoint struct {
	skew      float64
	elems     string // elements spec of the pass ("off" or the enabled list)
	elapsed   time.Duration
	ok        uint64
	shed      uint64
	throttled uint64
	fellBack  uint64
	failures  uint64
	hits      uint64 // cache hits (0 with the chain off)
	lookups   uint64 // cache lookups (0 with the chain off)
	latency   telemetry.Histogram
}

func (p *elemPoint) rps() float64 {
	if p.elapsed <= 0 {
		return 0
	}
	return float64(p.ok) / p.elapsed.Seconds()
}

func (p *elemPoint) hitRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.lookups)
}

// runElementsSweep measures the element chain's effect on skewed traffic
// (chain off vs on at several Zipf skew levels, fresh in-process server
// per cell), then runs a breaker drill — one faulted tile out of four,
// injection stopped mid-pass — and writes the combined report with the
// breaker's trip/recovery timeline from the server's own /statusz view.
func runElementsSweep(opts serve.Options, runOpts serve.LoadgenOptions, schemas []string, ops []serve.Op, mode, out string) error {
	// The chain-on cells run all three elements, with the admission fill
	// rate set high enough to be transparent: the cells compare the cache
	// (and the chain's overhead), not rate-limit policy, and a closed-loop
	// worker would blow through any realistic per-client budget.
	chainOn := elements.Config{
		Admission: true, Breaker: true, Cache: true,
		FillRate: 1e9,
	}
	var points []*elemPoint
	failed := false
	for _, skew := range []float64{0, 1.2, 2.0} {
		for _, on := range []bool{false, true} {
			o := opts
			if on {
				o.Elements = chainOn
			} else {
				o.Elements = elements.Config{}
			}
			srv, err := serve.NewServer(o)
			if err != nil {
				return err
			}
			pt := &elemPoint{skew: skew, elems: o.Elements.Spec()}
			for _, name := range schemas {
				for _, op := range ops {
					ro := runOpts
					ro.Dial = func() (serve.Doer, error) { return srv.InProc(), nil }
					ro.Schema = name
					ro.Op = op
					ro.ZipfS = skew
					rep, err := serve.RunLoadgen(ro)
					if err != nil {
						srv.Close()
						return err
					}
					fmt.Printf("skew=%.1f elements=%s ", skew, pt.elems)
					printReport(os.Stdout, rep)
					pt.elapsed += rep.Elapsed
					pt.ok += rep.OK
					pt.shed += rep.Shed
					pt.throttled += rep.Throttled
					pt.fellBack += rep.FellBack
					pt.failures += rep.CheckFailures + rep.Errors
					pt.latency.Merge(&rep.Latency)
				}
			}
			if c := srv.Elements(); c != nil && c.Cache != nil {
				lookups, hits, _, _, _, _ := c.Cache.Stats()
				pt.lookups, pt.hits = lookups, hits
			}
			srv.Close()
			if pt.failures > 0 {
				failed = true
			}
			points = append(points, pt)
		}
	}

	// Breaker drill: four tiles, a heavy fault schedule on tile 1 only,
	// breaker tuned to trip fast; injection stops halfway through the pass
	// so the half-open probes re-admit the tile within the run. The cache
	// stays off — a hit bypasses the tiles, and the drill needs the
	// faulted tile to keep seeing traffic.
	drill := opts
	drill.Tiles = 4
	drill.FaultTiles = []int{1}
	drillFaults, err := faults.ParseFlag("0.9", 1)
	if err != nil {
		return err
	}
	drill.Faults = drillFaults
	drill.Elements = elements.Config{
		Breaker: true,
		Window:  250 * time.Millisecond, TripRate: 0.3, MinVolume: 8,
		OpenFor: 200 * time.Millisecond, Probes: 4,
	}
	srv, err := serve.NewServer(drill)
	if err != nil {
		return err
	}
	clearAt := runOpts.Duration / 2
	timer := time.AfterFunc(clearAt, func() {
		if err := srv.SetTileFaults(1, faults.Config{}); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: breaker drill fault clear:", err)
		}
	})
	ro := runOpts
	ro.Dial = func() (serve.Doer, error) { return srv.InProc(), nil }
	ro.Schema = schemas[0]
	ro.Op = ops[0]
	drillRep, err := serve.RunLoadgen(ro)
	timer.Stop()
	if err != nil {
		srv.Close()
		return err
	}
	fmt.Printf("breaker drill ")
	printReport(os.Stdout, drillRep)
	drillStatus := srv.StatuszSnapshot(nil)
	srv.Close()
	if drillRep.CheckFailures > 0 || drillRep.Errors > 0 {
		failed = true
	}
	if drillStatus.Elements == nil || drillStatus.Elements.Breaker == nil {
		return fmt.Errorf("loadgen: breaker drill produced no breaker status")
	}

	if out != "" {
		if err := writeElementsMarkdown(out, mode, runOpts.Concurrency, runOpts.Duration, points, drillStatus, clearAt); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", out)
	}
	if failed {
		return fmt.Errorf("loadgen: FAILED (check failures or transport errors during elements sweep)")
	}
	return nil
}

// writeElementsMarkdown writes the element-chain report (overwriting
// path): the skew × chain-on/off comparison, then the breaker drill's
// transition timeline and final per-tile states.
func writeElementsMarkdown(path, mode string, concurrency int, duration time.Duration, points []*elemPoint, drill *serve.Statusz, clearAt time.Duration) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Data-plane element chain (loadgen -elements-sweep)\n\n")
	fmt.Fprintf(f, "Mode: %s, concurrency %d, %v per pass, GOMAXPROCS=%d, %s.\n\n",
		mode, concurrency, duration, runtime.GOMAXPROCS(0), runtime.Version())
	fmt.Fprintf(f, "## Hot-key skew: chain off vs on\n\n")
	fmt.Fprintf(f, "Each row pair is a fresh in-process server driven with the same traffic:\n")
	fmt.Fprintf(f, "skew 0 walks the sample payloads uniformly, skew s > 1 draws them from a\n")
	fmt.Fprintf(f, "Zipf(s) distribution (hot-key traffic). The chain-on rows run admission +\n")
	fmt.Fprintf(f, "breaker + cache, with the admission fill rate set high enough to be\n")
	fmt.Fprintf(f, "transparent — the comparison isolates the response cache and the chain's\n")
	fmt.Fprintf(f, "per-request overhead. -check held in every cell, so cached responses were\n")
	fmt.Fprintf(f, "byte-identical to served ones.\n\n")
	fmt.Fprintf(f, "| skew | elements | req/s | ok | cache hits | hit rate | p50 | p99 |\n")
	fmt.Fprintf(f, "|---:|---|---:|---:|---:|---:|---:|---:|\n")
	for _, p := range points {
		fmt.Fprintf(f, "| %.1f | %s | %.0f | %d | %d | %.1f%% | %v | %v |\n",
			p.skew, p.elems, p.rps(), p.ok, p.hits, p.hitRate()*100,
			p.latency.Quantile(0.50), p.latency.Quantile(0.99))
	}
	br := drill.Elements.Breaker
	fmt.Fprintf(f, "\n## Breaker drill: trip and recovery\n\n")
	fmt.Fprintf(f, "Four tiles, deterministic fault injection (rate 0.9) on tile 1 only,\n")
	fmt.Fprintf(f, "breaker window %v, trip rate %.2f over ≥%d requests, open dwell %v,\n",
		time.Duration(br.WindowNS), br.TripRate, br.MinVolume, time.Duration(br.OpenForNS))
	fmt.Fprintf(f, "%d probes to re-close. Injection was stopped at t=%v (half the pass) via\n", br.Probes, clearAt)
	fmt.Fprintf(f, "the live fault control, so the timeline shows the trip under faults and\n")
	fmt.Fprintf(f, "the half-open recovery after they stop.\n\n")
	fmt.Fprintf(f, "| t (s) | tile | transition |\n")
	fmt.Fprintf(f, "|---:|---:|---|\n")
	for _, ev := range br.Events {
		fmt.Fprintf(f, "| %.3f | %d | %s → %s |\n", ev.AtSeconds, ev.Tile, ev.From, ev.To)
	}
	fmt.Fprintf(f, "\n| tile | final state | trips | last trip (s) | window reqs | window fails |\n")
	fmt.Fprintf(f, "|---:|---|---:|---:|---:|---:|\n")
	for _, t := range br.Tiles {
		fmt.Fprintf(f, "| %d | %s | %d | %.3f | %d | %d |\n",
			t.Tile, t.State, t.Trips, t.LastTripS, t.WindowRequests, t.WindowFailures)
	}
	return nil
}

func printReport(w io.Writer, r *serve.LoadgenReport) {
	fmt.Fprintf(w, "%-8s %-5s  %7.0f req/s  %6.3f Gbit/s  ok=%d shed=%d deadline=%d fellback=%d",
		r.Schema, r.Op, r.RPS(), r.Gbps(), r.OK, r.Shed, r.Deadline, r.FellBack)
	if r.Throttled > 0 {
		fmt.Fprintf(w, " throttled=%d", r.Throttled)
	}
	if r.Errors > 0 || r.Bad > 0 {
		fmt.Fprintf(w, " errors=%d bad=%d", r.Errors, r.Bad)
	}
	if r.CheckFailures > 0 {
		fmt.Fprintf(w, " CHECK-FAILURES=%d", r.CheckFailures)
	}
	fmt.Fprintf(w, "\n  latency p50=%v p99=%v p999=%v mean=%v\n",
		r.Latency.Quantile(0.50), r.Latency.Quantile(0.99), r.Latency.Quantile(0.999), r.Latency.Mean())
}

// writeMarkdown writes the run's report table (overwriting path).
func writeMarkdown(path, mode string, concurrency int, duration time.Duration, reports []*serve.LoadgenReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Serving throughput (protoaccd + loadgen)\n\n")
	fmt.Fprintf(f, "Mode: %s, concurrency %d, %v per pass, GOMAXPROCS=%d, %s.\n",
		mode, concurrency, duration, runtime.GOMAXPROCS(0), runtime.Version())
	fmt.Fprintf(f, "Latency percentiles are per successful request, measured client-side.\n\n")
	fmt.Fprintf(f, "| schema | op | req/s | Gbit/s | ok | shed | deadline | fellback | p50 | p99 | p999 |\n")
	fmt.Fprintf(f, "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	for _, r := range reports {
		fmt.Fprintf(f, "| %s | %s | %.0f | %.3f | %d | %d | %d | %d | %v | %v | %v |\n",
			r.Schema, r.Op, r.RPS(), r.Gbps(), r.OK, r.Shed, r.Deadline, r.FellBack,
			r.Latency.Quantile(0.50), r.Latency.Quantile(0.99), r.Latency.Quantile(0.999))
	}
	return nil
}

func writeStats(path string, srv *serve.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := srv.TelemetrySnapshot()
	if strings.HasSuffix(path, ".prom") {
		return telemetry.WritePrometheus(f, snap)
	}
	m := &telemetry.Manifest{
		Command:           "loadgen " + strings.Join(os.Args[1:], " "),
		GoVersion:         runtime.Version(),
		ConfigFingerprint: srv.ConfigFingerprint(),
		Parallelism:       srv.Workers(),
	}
	return telemetry.WriteStatsJSON(f, m, snap)
}
