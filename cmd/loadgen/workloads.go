package main

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"protoacc/internal/serve"
	"protoacc/internal/telemetry"
	"protoacc/internal/workloads"
)

// workloadsRun bundles everything the -workload modes need from main's
// flag set.
type workloadsRun struct {
	mode     string // "trace", "chain", or "all"
	seed     int64
	records  int
	hops     int
	workers  int
	timeout  time.Duration
	check    bool
	addr     string // empty = in-process server
	tiles    int
	opts     serve.Options // in-process server options (addr == "")
	out      string
	statsOut string
}

// runWorkloads synthesizes the fleet-shaped trace, replays it and/or
// drives the service chain against the target, prints the
// serve/workload/... counter groups (the smoke target greps these
// lines), and writes the markdown report behind
// results/serve_workloads.md.
func runWorkloads(cfg workloadsRun) error {
	switch cfg.mode {
	case "trace", "chain", "all":
	default:
		return fmt.Errorf("loadgen: unknown -workload %q (want trace, chain, or all)", cfg.mode)
	}
	catalog := cfg.opts.Catalog
	if catalog == nil {
		catalog = serve.DefaultCatalog()
	}
	trace, err := workloads.Synthesize(workloads.SynthOptions{
		Seed:    cfg.seed,
		Records: cfg.records,
		Catalog: catalog,
	})
	if err != nil {
		return err
	}
	var deser, ser int
	for _, r := range trace.Records {
		if r.Op == serve.OpSerialize {
			ser++
		} else {
			deser++
		}
	}
	costs, err := workloads.CalibrateCosts(catalog)
	if err != nil {
		return err
	}

	var dial func() (serve.Doer, error)
	var srv *serve.Server
	target := cfg.addr
	if cfg.addr == "" {
		o := cfg.opts
		o.Tiles = cfg.tiles
		srv, err = serve.NewServer(o)
		if err != nil {
			return err
		}
		defer srv.Close()
		dial = func() (serve.Doer, error) { return srv.InProc(), nil }
		target = fmt.Sprintf("in-process (tiles=%d routing=%s workers=%d)", srv.Tiles(), srv.Routing(), srv.Workers())
	} else {
		dial = func() (serve.Doer, error) { return serve.Dial(cfg.addr) }
	}
	fmt.Printf("loadgen: workload %s, target %s, trace seed=%d records=%d (%d deser / %d ser), workers %d\n",
		cfg.mode, target, trace.Seed, len(trace.Records), deser, ser, cfg.workers)

	reg := &telemetry.Registry{}
	var rrep *workloads.ReplayReport
	var crep *workloads.ChainReport
	if cfg.mode == "trace" || cfg.mode == "all" {
		rrep, err = workloads.Replay(workloads.ReplayOptions{
			Dial:    dial,
			Trace:   trace,
			Catalog: catalog,
			Workers: cfg.workers,
			Timeout: cfg.timeout,
			Check:   cfg.check,
			Costs:   costs,
		})
		if err != nil {
			return err
		}
		printHop(os.Stdout, "replay", &rrep.Stats, rrep.Elapsed)
		reg.Register("serve/workload/trace", &rrep.Stats)
	}
	if cfg.mode == "chain" || cfg.mode == "all" {
		crep, err = workloads.RunChain(workloads.ChainOptions{
			Dial:    dial,
			Trace:   trace,
			Catalog: catalog,
			Hops:    cfg.hops,
			Workers: cfg.workers,
			Timeout: cfg.timeout,
			Check:   cfg.check,
			Costs:   costs,
		})
		if err != nil {
			return err
		}
		for _, h := range crep.Hops {
			printHop(os.Stdout, "chain", h, crep.Elapsed)
		}
		fmt.Printf("chain    e2e             %7.0f chains/s  completed=%d\n  latency p50=%v p99=%v p999=%v mean=%v\n",
			crep.RPS(), crep.Records,
			crep.E2E.Quantile(0.50), crep.E2E.Quantile(0.99), crep.E2E.Quantile(0.999), crep.E2E.Mean())
		crep.RegisterHops(reg)
	}

	// The counter groups, named exactly as server-side telemetry names
	// things — workloads-smoke asserts on these lines.
	for _, s := range reg.Snapshot().Samples() {
		fmt.Printf("%s %.0f\n", s.Name, s.Value)
	}

	if srv != nil && cfg.statsOut != "" {
		if err := writeStats(cfg.statsOut, srv); err != nil {
			return err
		}
		fmt.Printf("server telemetry written to %s\n", cfg.statsOut)
	}
	if cfg.out != "" {
		if err := writeWorkloadsMarkdown(cfg.out, cfg, target, len(trace.Records), deser, ser, rrep, crep); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", cfg.out)
	}

	failed := false
	scan := func(h *workloads.HopStats) {
		if h.Errors > 0 || h.CheckFail > 0 || h.OK == 0 {
			failed = true
		}
	}
	if rrep != nil {
		scan(&rrep.Stats)
	}
	if crep != nil {
		for _, h := range crep.Hops {
			scan(h)
		}
		if crep.Records == 0 {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("loadgen: workload FAILED (errors, check failures, or zero completions)")
	}
	return nil
}

// printHop prints one hop's (or the whole replay's) summary line pair.
func printHop(w io.Writer, kind string, h *workloads.HopStats, elapsed time.Duration) {
	rps := 0.0
	if elapsed > 0 {
		rps = float64(h.OK) / elapsed.Seconds()
	}
	fmt.Fprintf(w, "%-8s %-15s %7.0f req/s  ok=%d rejected=%d fellback=%d errors=%d",
		kind, h.Name, rps, h.OK, h.Rejected, h.FellBack, h.Errors)
	if h.CheckFail > 0 {
		fmt.Fprintf(w, " CHECK-FAILURES=%d", h.CheckFail)
	}
	if s := h.Savings(); s > 0 {
		fmt.Fprintf(w, "  savings=%.2fx", s)
	}
	fmt.Fprintf(w, "\n  latency p50=%v p99=%v p999=%v mean=%v\n",
		h.Latency.Quantile(0.50), h.Latency.Quantile(0.99), h.Latency.Quantile(0.999), h.Latency.Mean())
}

// writeWorkloadsMarkdown writes the fleet-shaped workloads report
// (overwriting path): the trace-replay summary and the per-hop +
// end-to-end service-chain tables, each with the calibrated
// accelerator-vs-software cycle savings.
func writeWorkloadsMarkdown(path string, cfg workloadsRun, target string, records, deser, ser int, rrep *workloads.ReplayReport, crep *workloads.ChainReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# Fleet-shaped workloads (loadgen -workload)\n\n")
	fmt.Fprintf(f, "Target: %s, workers %d, GOMAXPROCS=%d, %s.\n",
		target, cfg.workers, runtime.GOMAXPROCS(0), runtime.Version())
	fmt.Fprintf(f, "Trace: seed %d, %d records (%d deser / %d ser), schema mix weighted by\n",
		cfg.seed, records, deser, ser)
	fmt.Fprintf(f, "the fleet field-type distribution, payload sizes drawn from the fleet\n")
	fmt.Fprintf(f, "message-size distribution, Zipf-ranked key popularity. Savings compare\n")
	fmt.Fprintf(f, "calibrated Xeon software-codec cycles (normalized to the accelerator\n")
	fmt.Fprintf(f, "clock, so the ratio reads as wall-time) against the accelerator cycles\n")
	fmt.Fprintf(f, "the server attributed to the same requests; fallback-served responses are\n")
	fmt.Fprintf(f, "excluded from both sides.\n")
	hopRow := func(h *workloads.HopStats, rps float64) {
		fmt.Fprintf(f, "| %s | %.0f | %d | %d | %d | %v | %v | %.0f | %.0f | %.2fx |\n",
			h.Name, rps, h.OK, h.Rejected, h.FellBack,
			h.Latency.Quantile(0.50), h.Latency.Quantile(0.99),
			h.AccelCycles, h.SoftCycles, h.Savings())
	}
	header := func() {
		fmt.Fprintf(f, "| hop | req/s | ok | rejected | fellback | p50 | p99 | accel cycles | software cycles | savings |\n")
		fmt.Fprintf(f, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	}
	if rrep != nil {
		fmt.Fprintf(f, "\n## Trace replay\n\n")
		fmt.Fprintf(f, "The whole trace in record order across %d workers, every OK response\n", cfg.workers)
		fmt.Fprintf(f, "byte-verified against the canonical sample payload.\n\n")
		header()
		hopRow(&rrep.Stats, rrep.RPS())
	}
	if crep != nil {
		fmt.Fprintf(f, "\n## Service chain (%d hops)\n\n", len(crep.Hops))
		fmt.Fprintf(f, "Each record crosses every hop; a hop is one service-to-service edge\n")
		fmt.Fprintf(f, "whose sender serializes and receiver deserializes on the accelerated\n")
		fmt.Fprintf(f, "serving path, so per-hop latency covers the ser+deser pair.\n\n")
		header()
		for _, h := range crep.Hops {
			rps := 0.0
			if crep.Elapsed > 0 {
				rps = float64(h.OK) / crep.Elapsed.Seconds()
			}
			hopRow(h, rps)
		}
		fmt.Fprintf(f, "\nEnd-to-end: %d records completed every hop OK at %.0f chains/s;\n",
			crep.Records, crep.RPS())
		fmt.Fprintf(f, "latency p50=%v p99=%v p999=%v mean=%v.\n",
			crep.E2E.Quantile(0.50), crep.E2E.Quantile(0.99), crep.E2E.Quantile(0.999), crep.E2E.Mean())
	}
	return nil
}
