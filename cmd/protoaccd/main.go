// Command protoaccd is the accelerator serving daemon: it hosts the
// default schema catalog and answers serialize/deserialize requests over
// TCP (length-prefixed frames, see internal/serve), routing concurrent
// requests across sharded accelerator tiles — each with its own System
// pool, admission queue, and batch executors — with admission control,
// per-request deadlines, and software-codec graceful degradation.
//
// Usage:
//
//	protoaccd [-listen addr] [-admin addr] [-tiles n] [-routing p2c|rr]
//	          [-workers n] [-max-batch n] [-batch-window d] [-queue-depth n]
//	          [-max-payload n] [-deadline d]
//	          [-cycle-mode exact|sampled] [-cycle-sample-n n]
//	          [-span-sample-n n]
//	          [-elements all|off|admission,breaker,cache]
//	          [-admit-rate r] [-admit-burst b]
//	          [-breaker-window d] [-breaker-trip-rate r]
//	          [-breaker-min-volume n] [-breaker-open-for d] [-breaker-probes n]
//	          [-cache-bytes n]
//	          [-faults rate[@site,...]] [-fault-seed n] [-fault-tiles 0,2]
//	          [-stats-out file] [-cpuprofile file] [-memprofile file]
//
// -elements enables the composable data-plane element chain every request
// traverses before the tile router: per-client token-bucket admission
// control (over-rate clients get StatusThrottled), a per-tile circuit
// breaker the router treats like quarantine, and a canonical-bytes
// response cache with LRU eviction. Each element is independently
// selectable and byte-transparent: chain on or off, every response's
// bytes are identical. Telemetry lands under serve/elements/<name>/.
//
// -admin serves the live observability plane on a second listener:
// /metrics (Prometheus text: counters, gauges, per-tile stage
// histograms), /healthz (per-tile quarantine/breaker state), /statusz
// (JSON snapshot; ?write=1 flushes -stats-out mid-run), /spans (sampled
// lifecycle spans as Perfetto trace JSON), and /debug/pprof. All admin
// handlers are read-passive: scraping them perturbs neither responses
// nor exact-mode counters.
//
// -span-sample-n N samples every N'th admitted request with a lifecycle
// span (admit → queue → coalesce → execute → respond) for /spans.
//
// On SIGINT/SIGTERM — or a fatal listener accept error — the daemon
// drains in-flight work, then (with -stats-out) writes the merged
// telemetry counters — the serving group (queue, batching,
// shed/fallback, per-tile serve/tile<i>/ breakdowns) plus every
// accelerator unit's counters aggregated across batches — as JSON, or
// Prometheus text with a .prom suffix. SIGUSR1 writes the same artifact
// mid-run without draining.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"protoacc/internal/faults"
	"protoacc/internal/serve"
	"protoacc/internal/serve/elements"
	"protoacc/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7411", "TCP listen address")
	admin := flag.String("admin", "", "HTTP admin listen address (/metrics, /healthz, /statusz, /spans, /debug/pprof); empty disables")
	tiles := flag.Int("tiles", 0, "independent accelerator tiles behind the router (0 = default 1)")
	routing := flag.String("routing", "p2c", "tile placement policy: p2c (power-of-two-choices + work stealing) or rr (deterministic round-robin)")
	workers := flag.Int("workers", 0, "total batch executors, split across tiles (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 0, "max requests per accelerator batch (0 = default 16)")
	batchWindow := flag.Duration("batch-window", 0, "how long an under-full batch waits for partners (0 = default 200µs)")
	queueDepth := flag.Int("queue-depth", 0, "per-tile admission queue bound; requests routed to a full tile are shed (0 = default 1024)")
	maxPayload := flag.Int("max-payload", 0, "request payload size limit in bytes (0 = default 64KiB)")
	deadline := flag.Duration("deadline", 0, "default per-request budget (0 = default 1s)")
	elementsSpec := flag.String("elements", "", "data-plane element chain: \"all\", \"off\", or a comma list of admission,breaker,cache (empty = off)")
	admitRate := flag.Float64("admit-rate", 0, "admission element: token-bucket fill rate per client, req/s (0 = default 2000)")
	admitBurst := flag.Float64("admit-burst", 0, "admission element: token-bucket burst capacity (0 = default 2x fill rate)")
	breakerWindow := flag.Duration("breaker-window", 0, "breaker element: rolling failure-rate window (0 = default 1s)")
	breakerTripRate := flag.Float64("breaker-trip-rate", 0, "breaker element: failure-rate threshold that opens a tile's breaker (0 = default 0.5)")
	breakerMinVolume := flag.Int("breaker-min-volume", 0, "breaker element: minimum requests in the window before the trip rate is evaluated (0 = default 16)")
	breakerOpenFor := flag.Duration("breaker-open-for", 0, "breaker element: open-state dwell before half-open probing (0 = default 500ms)")
	breakerProbes := flag.Int("breaker-probes", 0, "breaker element: successful half-open probes required to re-close (0 = default 8)")
	cacheBytes := flag.Int64("cache-bytes", 0, "cache element: response-cache byte budget (0 = default 16MiB)")
	faultSpec := flag.String("faults", "", "fault injection: RATE or RATE@site,... (sites: "+strings.Join(faults.SiteNames(), ",")+"); empty or \"off\" disables")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule")
	faultTiles := flag.String("fault-tiles", "", "comma-separated tile ids the fault schedule applies to (empty = every tile)")
	statsOut := flag.String("stats-out", "", "write merged telemetry counters to this file on shutdown (JSON, or Prometheus text with a .prom suffix)")
	cycleMode := flag.String("cycle-mode", "exact", "cycle accounting: exact (every request runs the full cycle model) or sampled (1-in-N batches carry attribution, rest run functional-only)")
	cycleSampleN := flag.Int("cycle-sample-n", 0, "sampling period for -cycle-mode sampled (0 = default 8)")
	spanSampleN := flag.Int("span-sample-n", 0, "sample every N'th admitted request with a lifecycle span for the admin /spans endpoint (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the serving run to this file (stopped at drain)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after drain")
	flag.Parse()

	faultCfg, err := faults.ParseFlag(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	routePolicy, err := serve.ParseRouting(*routing)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cycles, err := serve.ParseCycleMode(*cycleMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faultTileIDs, err := parseTileList(*faultTiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	elemCfg, err := elements.ParseSpec(*elementsSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	elemCfg.FillRate = *admitRate
	elemCfg.Burst = *admitBurst
	elemCfg.Window = *breakerWindow
	elemCfg.TripRate = *breakerTripRate
	elemCfg.MinVolume = *breakerMinVolume
	elemCfg.OpenFor = *breakerOpenFor
	elemCfg.Probes = *breakerProbes
	elemCfg.CacheBytes = *cacheBytes

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	srv, err := serve.NewServer(serve.Options{
		Tiles:        *tiles,
		Routing:      routePolicy,
		FaultTiles:   faultTileIDs,
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		BatchWindow:  *batchWindow,
		QueueDepth:   *queueDepth,
		MaxPayload:   *maxPayload,
		Deadline:     *deadline,
		CycleMode:    cycles,
		CycleSampleN: *cycleSampleN,
		SpanSampleN:  *spanSampleN,
		Elements:     elemCfg,
		Faults:       faultCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("protoaccd listening on %s (schemas: %s; tiles=%d routing=%s workers=%d elements=%s)\n",
		ln.Addr(), strings.Join(srv.Catalog().Names(), ","), srv.Tiles(), srv.Routing(), srv.Workers(), elemCfg.Spec())

	// flushStats serializes mid-run stats writes (SIGUSR1 and
	// /statusz?write=1 may race) against the shutdown write.
	var statsMu sync.Mutex
	flushStats := func() (string, error) {
		statsMu.Lock()
		defer statsMu.Unlock()
		if err := writeStats(*statsOut, srv); err != nil {
			return "", err
		}
		return *statsOut, nil
	}

	var adminLn net.Listener
	if *admin != "" {
		adminLn, err = net.Listen("tcp", *admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		adminOpts := serve.AdminOptions{Manifest: buildManifest(srv)}
		if *statsOut != "" {
			adminOpts.FlushStats = flushStats
		}
		adminSrv := &http.Server{Handler: serve.NewAdminHandler(srv, adminOpts)}
		go adminSrv.Serve(adminLn)
		fmt.Printf("protoaccd admin on http://%s (/metrics /healthz /statusz /spans /debug/pprof)\n", adminLn.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
run:
	for {
		select {
		case s := <-sig:
			fmt.Printf("protoaccd: %v, draining\n", s)
			break run
		case <-usr1:
			if *statsOut == "" {
				fmt.Fprintln(os.Stderr, "protoaccd: SIGUSR1 ignored (no -stats-out)")
				continue
			}
			if path, err := flushStats(); err != nil {
				fmt.Fprintln(os.Stderr, "protoaccd: SIGUSR1 stats flush:", err)
			} else {
				fmt.Printf("telemetry counters written to %s (SIGUSR1)\n", path)
			}
		case err := <-done:
			// A fatal accept error ends serving; fall through to the same
			// drain + stats path a signal takes, so -stats-out still fires.
			if err != nil {
				fmt.Fprintln(os.Stderr, "protoaccd: listener failed, draining:", err)
			}
			break run
		}
	}
	start := time.Now()
	if adminLn != nil {
		adminLn.Close()
	}
	srv.Close()
	fmt.Printf("protoaccd: drained in %v\n", time.Since(start).Round(time.Millisecond))
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
		fmt.Printf("cpu profile written to %s\n", *cpuprofile)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("heap profile written to %s\n", *memprofile)
	}
	for i, pc := range srv.TilePoolCounters() {
		fmt.Printf("protoaccd: tile%d pool: gets=%d hits=%d puts=%d drops=%d evictions=%d\n",
			i, pc.Gets, pc.Hits, pc.Puts, pc.Drops, pc.Evictions)
	}

	if *statsOut != "" {
		if _, err := flushStats(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry counters written to %s\n", *statsOut)
	}
}

// parseTileList parses a comma-separated list of tile ids; empty means
// nil (every tile).
func parseTileList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("protoaccd: empty tile id in -fault-tiles %q (stray comma?)", s)
		}
		id, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("protoaccd: bad tile id %q in -fault-tiles: %v", part, err)
		}
		out = append(out, id)
	}
	return out, nil
}

// buildManifest assembles the provenance manifest stats artifacts and
// /statusz carry.
func buildManifest(srv *serve.Server) *telemetry.Manifest {
	m := &telemetry.Manifest{
		Command:           "protoaccd " + strings.Join(os.Args[1:], " "),
		GoVersion:         runtime.Version(),
		ConfigFingerprint: srv.ConfigFingerprint(),
		Parallelism:       srv.Workers(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}

// writeStats writes the server's merged telemetry snapshot with a
// provenance manifest.
func writeStats(path string, srv *serve.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := srv.TelemetrySnapshot()
	if strings.HasSuffix(path, ".prom") {
		return telemetry.WritePrometheus(f, snap)
	}
	return telemetry.WriteStatsJSON(f, buildManifest(srv), snap)
}
