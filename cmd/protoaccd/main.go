// Command protoaccd is the accelerator serving daemon: it hosts the
// default schema catalog and answers serialize/deserialize requests over
// TCP (length-prefixed frames, see internal/serve), batching concurrent
// requests per (schema, op) onto pooled accelerator Systems with admission
// control, per-request deadlines, and software-codec graceful degradation.
//
// Usage:
//
//	protoaccd [-listen addr] [-workers n] [-max-batch n]
//	          [-batch-window d] [-queue-depth n] [-max-payload n]
//	          [-deadline d] [-faults rate[@site,...]] [-fault-seed n]
//	          [-stats-out file]
//
// On SIGINT/SIGTERM the daemon drains in-flight work, then (with
// -stats-out) writes the merged telemetry counters — the serving group
// (queue, batching, shed/fallback) plus every accelerator unit's counters
// aggregated across batches — as JSON, or Prometheus text with a .prom
// suffix.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"protoacc/internal/faults"
	"protoacc/internal/serve"
	"protoacc/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7411", "TCP listen address")
	workers := flag.Int("workers", 0, "concurrent batch executors (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 0, "max requests per accelerator batch (0 = default 16)")
	batchWindow := flag.Duration("batch-window", 0, "how long an under-full batch waits for partners (0 = default 200µs)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue bound; requests beyond it are shed (0 = default 1024)")
	maxPayload := flag.Int("max-payload", 0, "request payload size limit in bytes (0 = default 64KiB)")
	deadline := flag.Duration("deadline", 0, "default per-request budget (0 = default 1s)")
	faultSpec := flag.String("faults", "", "fault injection: RATE or RATE@site,... (sites: "+strings.Join(faults.SiteNames(), ",")+"); empty or \"off\" disables")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule")
	statsOut := flag.String("stats-out", "", "write merged telemetry counters to this file on shutdown (JSON, or Prometheus text with a .prom suffix)")
	flag.Parse()

	faultCfg, err := faults.ParseFlag(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	srv, err := serve.NewServer(serve.Options{
		Workers:     *workers,
		MaxBatch:    *maxBatch,
		BatchWindow: *batchWindow,
		QueueDepth:  *queueDepth,
		MaxPayload:  *maxPayload,
		Deadline:    *deadline,
		Faults:      faultCfg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("protoaccd listening on %s (schemas: %s; workers=%d)\n",
		ln.Addr(), strings.Join(srv.Catalog().Names(), ","), srv.Workers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case s := <-sig:
		fmt.Printf("protoaccd: %v, draining\n", s)
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	start := time.Now()
	srv.Close()
	fmt.Printf("protoaccd: drained in %v\n", time.Since(start).Round(time.Millisecond))

	if *statsOut != "" {
		if err := writeStats(*statsOut, srv); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry counters written to %s\n", *statsOut)
	}
}

// writeStats writes the server's merged telemetry snapshot with a
// provenance manifest.
func writeStats(path string, srv *serve.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap := srv.TelemetrySnapshot()
	if strings.HasSuffix(path, ".prom") {
		return telemetry.WritePrometheus(f, snap)
	}
	m := &telemetry.Manifest{
		Command:           "protoaccd " + strings.Join(os.Args[1:], " "),
		GoVersion:         runtime.Version(),
		ConfigFingerprint: srv.ConfigFingerprint(),
		Parallelism:       srv.Workers(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return telemetry.WriteStatsJSON(f, m, snap)
}
