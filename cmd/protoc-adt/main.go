// Command protoc-adt is the project's protoc-like tool: it parses a
// proto2 file and prints, per message type, the generated C++-equivalent
// object layout (§2.1.3 with the §4.2 sparse-hasbits change) and the
// Accelerator Descriptor Table that the modified compiler would emit
// (§4.2): header contents, entry table, is_submessage bits, and total
// programming-table footprint.
//
// It can also act as a codec: -encode reads text-format input on stdin
// and writes wire-format bytes to stdout (hex with -hex); -decode reads
// wire bytes (or hex) on stdin and prints text format.
//
// Usage:
//
//	protoc-adt [-message name] file.proto
//	protoc-adt -message M -encode [-hex] file.proto < msg.txt > msg.bin
//	protoc-adt -message M -decode [-hex] file.proto < msg.bin
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"protoacc/internal/accel/adt"
	"protoacc/internal/accel/layout"
	"protoacc/internal/core"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/protoparse"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/textformat"
	"protoacc/internal/sim/mem"
)

func main() {
	msgName := flag.String("message", "", "only this top-level message (default: all)")
	encode := flag.Bool("encode", false, "read text format on stdin, write wire format to stdout")
	decode := flag.Bool("decode", false, "read wire format on stdin, print text format")
	useHex := flag.Bool("hex", false, "wire bytes on stdout/stdin are hex-encoded")
	trace := flag.Bool("trace", false, "with -decode: run the accelerator deserializer model and print its FSM trace to stderr")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: protoc-adt [-message name] file.proto")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	file, err := protoparse.Parse(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	msgs := file.Messages
	if *msgName != "" {
		m := file.MessageByName(*msgName)
		if m == nil {
			fmt.Fprintf(os.Stderr, "no message %q in %s\n", *msgName, path)
			os.Exit(1)
		}
		msgs = []*schema.Message{m}
	}

	if *encode || *decode {
		if *msgName == "" {
			fmt.Fprintln(os.Stderr, "-encode/-decode require -message")
			os.Exit(2)
		}
		if err := runCodec(msgs[0], *encode, *useHex, *trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	memory := mem.New()
	alloc := mem.NewAllocator(memory.Map("adt", 64<<20))
	reg := layout.NewRegistry()
	set, err := adt.Build(memory, alloc, reg, msgs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, m := range msgs {
		m.Walk(func(t *schema.Message) { printType(reg, set, t) })
	}
	fmt.Printf("total ADT footprint: %d bytes across all types (per-type, built at program load)\n",
		set.TotalBytes())
}

func printType(reg *layout.Registry, set *adt.Set, t *schema.Message) {
	l := reg.Layout(t)
	fmt.Printf("message %s\n", t.Name)
	fmt.Printf("  object size %d B, hasbits %d words (fields %d..%d, density %.2f)\n",
		l.Size, l.HasbitsWords, l.MinField, l.MaxField, t.DefinitionDensity())
	fmt.Printf("  %-6s %-20s %-12s %8s %6s\n", "num", "field", "kind", "offset", "slot")
	for _, fl := range l.Fields {
		kind := fl.Field.Kind.String()
		if fl.Field.Repeated() {
			kind = "repeated " + kind
		}
		fmt.Printf("  %-6d %-20s %-12s %8d %6d\n",
			fl.Field.Number, fl.Field.Name, kind, fl.Offset, fl.Slot)
	}
	tab := set.Table(t)
	fmt.Printf("  ADT @ 0x%x: %d B (header %d + %d entries x %d + is_submessage bits)\n\n",
		tab.Addr, tab.Size, adt.HeaderSize, t.FieldNumberRange(), adt.EntrySize)
}

// runCodec converts between text and wire formats on stdio.
func runCodec(t *schema.Message, encode, useHex, trace bool) error {
	in, err := io.ReadAll(os.Stdin)
	if err != nil {
		return err
	}
	if encode {
		m, err := textformat.Unmarshal(t, string(in))
		if err != nil {
			return err
		}
		b, err := codec.Marshal(m)
		if err != nil {
			return err
		}
		if useHex {
			fmt.Println(hex.EncodeToString(b))
			return nil
		}
		_, err = os.Stdout.Write(b)
		return err
	}
	b := in
	if useHex {
		if b, err = hex.DecodeString(strings.TrimSpace(string(in))); err != nil {
			return err
		}
	}
	if trace {
		return decodeTraced(t, b)
	}
	m, err := codec.Unmarshal(t, b)
	if err != nil {
		return err
	}
	fmt.Print(textformat.Marshal(m))
	return nil
}

// decodeTraced runs the accelerator deserializer model over the input,
// printing each field-handler state transition — the waveform-level view
// of §4.4 on your own message.
func decodeTraced(t *schema.Message, b []byte) error {
	sys := core.New(core.DefaultConfig(core.KindAccel))
	sys.Telemetry().Tracer.Enable()
	if err := sys.LoadSchema(t); err != nil {
		return err
	}
	bufAddr, err := sys.WriteWire(b)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "deserializer FSM trace (%d input bytes):\n", len(b))
	res, err := sys.Deserialize(t, bufAddr, uint64(len(b)))
	if err != nil {
		return err
	}
	for _, ev := range sys.Telemetry().Tracer.Events() {
		if ev.Unit != "deser" {
			continue
		}
		pos := ev.Pos
		if pos >= bufAddr {
			pos -= bufAddr
		}
		fmt.Fprintf(os.Stderr, "  [%-11s] depth=%d field=%-4d pos=%-5d %s\n",
			ev.Name, ev.Depth, ev.Field, pos, ev.Note)
	}
	fmt.Fprintf(os.Stderr, "completed in %.0f accelerator cycles (%.2f Gbit/s at 2 GHz)\n",
		res.Cycles, res.Throughput())
	m, err := sys.ReadMessage(t, res.ObjAddr)
	if err != nil {
		return err
	}
	fmt.Print(textformat.Marshal(m))
	return nil
}
