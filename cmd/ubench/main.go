// Command ubench regenerates the paper's microbenchmark evaluation
// (Figures 11a-11d and the §5.1 summary speedups) and the design-choice
// ablations, running every benchmark on the three systems: riscv-boom,
// Xeon, and riscv-boom-accel.
//
// Usage:
//
//	ubench [-fig 11a|11b|11c|11d|all] [-ablation name|all|none] [-ops]
//	       [-parallel n] [-cpuprofile file] [-memprofile file]
//	       [-stats-out file] [-trace-op workload] [-trace-out file]
//	       [-faults rate[@site,...]] [-fault-seed n]
//
// -stats-out writes the telemetry counters of every run (all units, all
// memory-hierarchy levels) as JSON (or Prometheus text with a .prom
// suffix), with an embedded provenance manifest. -trace-op enables
// cycle-level tracing of the named workload on riscv-boom-accel and
// -trace-out (default trace.json) receives the Perfetto-loadable trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"protoacc/internal/bench"
	"protoacc/internal/core"
	"protoacc/internal/faults"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 11a, 11b, 11c, 11d, or all")
	ablation := flag.String("ablation", "none", "ablation to run: adt-vs-per-instance, sparse-vs-dense-hasbits, field-unit-count, stack-depth, memloader-width, all, or none")
	ops := flag.Bool("ops", false, "benchmark the §7 extension operators (clear/copy/merge)")
	parallel := flag.Int("parallel", 0, "simulation worker count (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	statsOut := flag.String("stats-out", "", "write aggregated telemetry counters to this file (JSON, or Prometheus text with a .prom suffix)")
	traceOp := flag.String("trace-op", "", "capture a cycle trace of this workload on riscv-boom-accel")
	traceOut := flag.String("trace-out", "trace.json", "write the captured Perfetto trace to this file")
	faultSpec := flag.String("faults", "", "fault injection: RATE or RATE@site,... (sites: "+strings.Join(faults.SiteNames(), ",")+"); empty or \"off\" disables")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault schedule")
	flag.Parse()

	faultCfg, err := faults.ParseFlag(*faultSpec, *faultSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	opts := bench.DefaultOptions()
	opts.Parallelism = *parallel
	opts.Faults = faultCfg
	if *statsOut != "" {
		opts.Telemetry = &bench.TelemetrySink{}
	}
	if *traceOp != "" {
		opts.Trace = &bench.TraceCapture{Workload: *traceOp, System: core.KindAccel}
	}

	figs := []bench.Figure{bench.Fig11a, bench.Fig11b, bench.Fig11c, bench.Fig11d}
	if *fig != "all" && *fig != "none" {
		figs = []bench.Figure{bench.Figure(*fig)}
	}
	if *fig == "none" {
		figs = nil
	}
	var vbs, vxs []float64
	for _, f := range figs {
		rows, err := bench.RunFigure(f, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatTable(bench.FigureTitle(f), rows))
		vb, vx := bench.Speedups(rows)
		fmt.Printf("summary: %.1fx vs riscv-boom, %.1fx vs Xeon\n\n", vb, vx)
		vbs = append(vbs, vb)
		vxs = append(vxs, vx)
	}
	if len(figs) == 4 {
		fmt.Printf("overall microbenchmark speedup (geomean of the four classes, §5.1.3):\n")
		fmt.Printf("  %.1fx vs riscv-boom (paper: 11.2x), %.1fx vs Xeon (paper: 3.8x)\n\n",
			bench.Geomean(vbs), bench.Geomean(vxs))
	}

	if *ops {
		out, err := bench.RunOperators(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
	}

	if *ablation != "none" {
		abls := bench.Ablations()
		if *ablation != "all" {
			abls = []bench.Ablation{bench.Ablation(*ablation)}
		}
		for _, a := range abls {
			out, err := bench.RunAblation(a, opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(out)
		}
	}

	if opts.Telemetry != nil {
		m := bench.NewManifest("ubench "+strings.Join(os.Args[1:], " "), opts)
		if err := bench.WriteStatsFile(*statsOut, m, opts.Telemetry); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("telemetry counters written to %s\n", *statsOut)
	}
	if opts.Trace != nil {
		if err := bench.WriteTraceFile(*traceOut, opts.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace of %q written to %s (load in ui.perfetto.dev or chrome://tracing)\n", *traceOp, *traceOut)
	}
}
