// Package protoacc is a Go reproduction of "A Hardware Accelerator for
// Protocol Buffers" (Karandikar et al., MICRO 2021): a from-scratch proto2
// implementation, a simulated RISC-V SoC memory system, functional and
// cycle-level models of the paper's deserializer and serializer units,
// calibrated CPU baselines, the Section 3 fleet profiling study, and a
// HyperProtoBench-style benchmark generator.
//
// The library lives under internal/; the runnable surface is:
//
//   - go test -bench=. — regenerates every evaluation table and figure
//   - cmd/ubench, cmd/hyperbench, cmd/fleetprofile, cmd/asicreport,
//     cmd/protoc-adt — the evaluation and tooling binaries
//   - examples/ — quickstart, RPC-service, and storage-log examples
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package protoacc
