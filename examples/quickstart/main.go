// Quickstart: define a proto2 schema, populate a message, and run it
// through all three simulated systems of the paper — the BOOM-class
// RISC-V core, a Xeon-class core, and the RISC-V SoC with the ProtoAcc
// accelerator attached — verifying functional equivalence and printing
// the cycle counts and throughputs each system achieves.
package main

import (
	"bytes"
	"fmt"
	"log"

	"protoacc/internal/core"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/protoparse"
)

const protoSrc = `
syntax = "proto2";
package quickstart;

message Address {
  optional string street = 1;
  optional string city   = 2;
  optional int32  zip    = 3;
}

message Person {
  required string  name    = 1;
  optional int64   id      = 2;
  optional string  email   = 3;
  repeated string  phones  = 4;
  optional Address address = 5;
  repeated int32   scores  = 6 [packed=true];
}
`

func main() {
	// 1. Compile the schema (what protoc does).
	file, err := protoparse.Parse("quickstart.proto", protoSrc)
	if err != nil {
		log.Fatal(err)
	}
	person := file.MessageByName("Person")

	// 2. Populate a message with the dynamic API.
	msg := dynamic.New(person)
	msg.SetString(1, "Ada Lovelace")
	msg.SetInt64(2, 1815)
	msg.SetString(3, "ada@analytical.engine")
	msg.AddString(4, "+44 20 7946 0958")
	msg.AddString(4, "+44 20 7946 0959")
	addr := msg.MutableMessage(5)
	addr.SetString(1, "12 St James's Square")
	addr.SetString(2, "London")
	addr.SetInt32(3, 10001)
	for _, s := range []int32{97, 85, 92} {
		msg.AddScalarBits(6, uint64(int64(s)))
	}

	fmt.Println("systems under test: riscv-boom, Xeon, riscv-boom-accel")
	fmt.Println()

	var reference []byte
	for _, kind := range []core.Kind{core.KindBOOM, core.KindXeon, core.KindAccel} {
		sys := core.New(core.DefaultConfig(kind))
		if err := sys.LoadSchema(person); err != nil {
			log.Fatal(err)
		}

		// 3. Serialize: materialize the message as a C++-layout object in
		// simulated memory and run the timed serialization.
		objAddr, err := sys.MaterializeInput(msg)
		if err != nil {
			log.Fatal(err)
		}
		ser, err := sys.Serialize(person, objAddr)
		if err != nil {
			log.Fatal(err)
		}
		wire, err := sys.ReadWire(ser.WireAddr, ser.Bytes)
		if err != nil {
			log.Fatal(err)
		}
		if reference == nil {
			reference = wire
			fmt.Printf("wire format: %d bytes, first 16: % x ...\n\n", len(wire), wire[:16])
		} else if !bytes.Equal(wire, reference) {
			log.Fatalf("%s produced different bytes!", sys.Name())
		}

		// 4. Deserialize the wire bytes back and verify equality.
		bufAddr, err := sys.WriteWire(wire)
		if err != nil {
			log.Fatal(err)
		}
		des, err := sys.Deserialize(person, bufAddr, uint64(len(wire)))
		if err != nil {
			log.Fatal(err)
		}
		back, err := sys.ReadMessage(person, des.ObjAddr)
		if err != nil {
			log.Fatal(err)
		}
		if !msg.Equal(back) {
			log.Fatalf("%s: round trip mismatch", sys.Name())
		}

		fmt.Printf("%-18s serialize: %6.0f cycles (%6.2f Gbit/s)   deserialize: %6.0f cycles (%6.2f Gbit/s)\n",
			sys.Name(), ser.Cycles, ser.Throughput(), des.Cycles, des.Throughput())
		if kind == core.KindAccel {
			fmt.Printf("%-18s Person ADT at 0x%x; round trip verified on all systems\n",
				"", sys.ADTAddr(person))
		}
	}

	// 5. Read fields back through the typed accessors.
	fmt.Println()
	fmt.Printf("decoded: name=%q id=%d city=%q phones=%d scores=%d\n",
		msg.GetString(1), msg.GetInt64(2),
		msg.GetMessage(5).GetString(2), msg.Len(4), msg.Len(6))
}
