// RPC service example: the §3.4 "RPC stack" user of serialization. A
// client and a server exchange length-prefixed protobuf frames over a real
// TCP connection on localhost; the server's unmarshal/marshal work runs
// through the simulated systems, so each request reports what the protobuf
// tax of that RPC would cost on a plain BOOM core versus the accelerated
// SoC.
//
// The service is a small aggregator: the client streams SensorReport
// messages, the server deserializes each, folds the samples into a running
// summary, and replies with a SummaryResponse.
package main

import (
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"math"
	"net"

	"protoacc/internal/core"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/protoparse"
	"protoacc/internal/pb/schema"
)

const protoSrc = `
syntax = "proto2";
package sensors;

message Sample {
  optional fixed64 timestamp_us = 1;
  optional double  value        = 2;
  optional string  unit         = 3;
}

message SensorReport {
  required string station = 1;
  optional int32  seq     = 2;
  repeated Sample samples = 3;
}

message SummaryResponse {
  optional int32  seq        = 1;
  optional int64  samples    = 2;
  optional double mean       = 3;
  optional double max        = 4;
  optional string station    = 5;
}
`

// frame writes a length-prefixed protobuf frame.
func frame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// unframe reads one length-prefixed frame.
func unframe(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	payload := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
	_, err := io.ReadFull(r, payload)
	return payload, err
}

// server handles one connection, accounting protobuf work on both a plain
// BOOM system and the accelerated system.
type server struct {
	report, response *schema.Message
	boom, accel      *core.System

	count               int64
	sum, maxV           float64
	boomCycles, acCycle float64
}

func newServer(file *schema.File) (*server, error) {
	s := &server{
		report:   file.MessageByName("SensorReport"),
		response: file.MessageByName("SummaryResponse"),
		boom:     core.New(core.DefaultConfig(core.KindBOOM)),
		accel:    core.New(core.DefaultConfig(core.KindAccel)),
	}
	for _, sys := range []*core.System{s.boom, s.accel} {
		if err := sys.LoadSchema(s.report, s.response); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// handle processes one request frame and returns the response frame.
func (s *server) handle(reqBytes []byte) ([]byte, error) {
	// Deserialize the request on both systems (functionally identical;
	// the cycle counts differ).
	var req *dynamic.Message
	for _, sys := range []*core.System{s.boom, s.accel} {
		bufAddr, err := sys.WriteWire(reqBytes)
		if err != nil {
			return nil, err
		}
		res, err := sys.Deserialize(s.report, bufAddr, uint64(len(reqBytes)))
		if err != nil {
			return nil, err
		}
		m, err := sys.ReadMessage(s.report, res.ObjAddr)
		if err != nil {
			return nil, err
		}
		if sys == s.boom {
			s.boomCycles += res.Cycles
			req = m
		} else {
			s.acCycle += res.Cycles
			if !req.Equal(m) {
				return nil, fmt.Errorf("accelerated deserialization diverged")
			}
		}
	}

	// Application logic: fold the samples.
	for _, sm := range req.RepeatedMessages(3) {
		v := sm.GetDouble(2)
		s.count++
		s.sum += v
		s.maxV = math.Max(s.maxV, v)
	}

	// Build and serialize the response on both systems.
	resp := dynamic.New(s.response)
	resp.SetInt32(1, req.GetInt32(2))
	resp.SetInt64(2, s.count)
	if s.count > 0 {
		resp.SetDouble(3, s.sum/float64(s.count))
	}
	resp.SetDouble(4, s.maxV)
	resp.SetString(5, req.GetString(1))

	var out []byte
	for _, sys := range []*core.System{s.boom, s.accel} {
		objAddr, err := sys.MaterializeInput(resp)
		if err != nil {
			return nil, err
		}
		res, err := sys.Serialize(s.response, objAddr)
		if err != nil {
			return nil, err
		}
		b, err := sys.ReadWire(res.WireAddr, res.Bytes)
		if err != nil {
			return nil, err
		}
		if sys == s.boom {
			s.boomCycles += res.Cycles
			out = b
		} else {
			s.acCycle += res.Cycles
		}
	}
	return out, nil
}

func (s *server) serve(conn net.Conn, done chan<- struct{}) {
	defer conn.Close()
	defer close(done)
	for {
		req, err := unframe(conn)
		if err != nil {
			return // client closed
		}
		resp, err := s.handle(req)
		if err != nil {
			log.Printf("server: %v", err)
			return
		}
		if err := frame(conn, resp); err != nil {
			return
		}
	}
}

func main() {
	file, err := protoparse.Parse("sensors.proto", protoSrc)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := newServer(file)
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		srv.serve(conn, done)
	}()

	// Client: stream reports and print summaries.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	reportT := file.MessageByName("SensorReport")
	responseT := file.MessageByName("SummaryResponse")
	const requests = 20
	for seq := 0; seq < requests; seq++ {
		req := dynamic.New(reportT)
		req.SetString(1, "station-7")
		req.SetInt32(2, int32(seq))
		for i := 0; i < 16; i++ {
			sm := req.AddMessage(3)
			sm.SetUint64(1, uint64(1720000000000000+seq*1000+i))
			sm.SetDouble(2, 20+math.Sin(float64(seq*16+i))*5)
			sm.SetString(3, "celsius")
		}
		b, err := codec.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		if err := frame(conn, b); err != nil {
			log.Fatal(err)
		}
		respBytes, err := unframe(conn)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := codec.Unmarshal(responseT, respBytes)
		if err != nil {
			log.Fatal(err)
		}
		if seq == requests-1 {
			fmt.Printf("final summary: station=%q n=%d mean=%.2f max=%.2f\n",
				resp.GetString(5), resp.GetInt64(2), resp.GetDouble(3), resp.GetDouble(4))
		}
	}
	conn.Close()
	<-done

	fmt.Printf("\nserver-side protobuf tax over %d RPCs:\n", requests)
	fmt.Printf("  riscv-boom:        %8.0f cycles\n", srv.boomCycles)
	fmt.Printf("  riscv-boom-accel:  %8.0f cycles  (%.1fx less CPU in the protobuf tax)\n",
		srv.acCycle, srv.boomCycles/srv.acCycle)
	fmt.Println("\nnote (§3.4): only ~16-35% of fleet (de)serialization comes from RPC;")
	fmt.Println("see examples/storagelog for the storage-side majority user.")
}
