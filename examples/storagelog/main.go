// Storage log example: the majority user of serialization the paper's
// §3.4 identifies — persisting protobufs to durable storage rather than
// sending them over RPC. Records are appended to a length-prefixed log
// file on disk and scanned back; the protobuf encode/decode work runs
// through the simulated systems, and the example also demonstrates schema
// evolution (§2.1.1): the log is written with a v2 schema and scanned with
// a v1 reader that preserves the unknown fields.
package main

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"log"
	"os"

	"protoacc/internal/core"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/protoparse"
)

const protoV2 = `
syntax = "proto2";
package wal;

message Record {
  required int64  lsn       = 1;
  optional string key       = 2;
  optional bytes  value     = 3;
  optional fixed64 checksum = 4;
  optional int32  shard     = 5; // added in v2
  optional string origin    = 6; // added in v2
}
`

// The v1 reader's view of the same record (fields 5 and 6 unknown to it).
const protoV1 = `
syntax = "proto2";
package wal;

message Record {
  required int64  lsn       = 1;
  optional string key       = 2;
  optional bytes  value     = 3;
  optional fixed64 checksum = 4;
}
`

func main() {
	v2, err := protoparse.Parse("wal_v2.proto", protoV2)
	if err != nil {
		log.Fatal(err)
	}
	v1, err := protoparse.Parse("wal_v1.proto", protoV1)
	if err != nil {
		log.Fatal(err)
	}
	recordV2 := v2.MessageByName("Record")
	recordV1 := v1.MessageByName("Record")

	// Systems whose protobuf tax we account while writing/scanning.
	boom := core.New(core.DefaultConfig(core.KindBOOM))
	accel := core.New(core.DefaultConfig(core.KindAccel))
	for _, sys := range []*core.System{boom, accel} {
		if err := sys.LoadSchema(recordV2); err != nil {
			log.Fatal(err)
		}
	}

	logFile, err := os.CreateTemp("", "protoacc-wal-*.log")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(logFile.Name())

	// --- append path: serialize records and write them to the log ---
	const records = 200
	w := bufio.NewWriter(logFile)
	var appendBoom, appendAccel float64
	var logBytes int
	for lsn := 0; lsn < records; lsn++ {
		rec := dynamic.New(recordV2)
		rec.SetInt64(1, int64(lsn))
		rec.SetString(2, fmt.Sprintf("user/%04d/profile", lsn%37))
		rec.SetBytes(3, payload(lsn))
		rec.SetUint64(4, 0xfeedface00000000|uint64(lsn))
		rec.SetInt32(5, int32(lsn%8))
		rec.SetString(6, "us-east1-b")

		var wire []byte
		for _, sys := range []*core.System{boom, accel} {
			objAddr, err := sys.MaterializeInput(rec)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Serialize(recordV2, objAddr)
			if err != nil {
				log.Fatal(err)
			}
			if sys == boom {
				appendBoom += res.Cycles
				wire, err = sys.ReadWire(res.WireAddr, res.Bytes)
				if err != nil {
					log.Fatal(err)
				}
			} else {
				appendAccel += res.Cycles
			}
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(wire)))
		if _, err := w.Write(hdr[:]); err != nil {
			log.Fatal(err)
		}
		if _, err := w.Write(wire); err != nil {
			log.Fatal(err)
		}
		logBytes += 4 + len(wire)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended %d records (%d bytes) to %s\n", records, logBytes, logFile.Name())
	fmt.Printf("  serialize tax: riscv-boom %8.0f cycles | riscv-boom-accel %8.0f cycles (%.1fx)\n",
		appendBoom, appendAccel, appendBoom/appendAccel)

	// --- scan path: read the log back and deserialize every record ---
	if _, err := logFile.Seek(0, io.SeekStart); err != nil {
		log.Fatal(err)
	}
	r := bufio.NewReader(logFile)
	var scanBoom, scanAccel float64
	var maxLSN int64 = -1
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err == io.EOF {
			break
		} else if err != nil {
			log.Fatal(err)
		}
		wire := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(r, wire); err != nil {
			log.Fatal(err)
		}
		for _, sys := range []*core.System{boom, accel} {
			bufAddr, err := sys.WriteWire(wire)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sys.Deserialize(recordV2, bufAddr, uint64(len(wire)))
			if err != nil {
				log.Fatal(err)
			}
			if sys == boom {
				scanBoom += res.Cycles
				m, err := sys.ReadMessage(recordV2, res.ObjAddr)
				if err != nil {
					log.Fatal(err)
				}
				if m.GetInt64(1) > maxLSN {
					maxLSN = m.GetInt64(1)
				}
			} else {
				scanAccel += res.Cycles
			}
		}
	}
	fmt.Printf("scanned back to max LSN %d\n", maxLSN)
	fmt.Printf("  deserialize tax: riscv-boom %8.0f cycles | riscv-boom-accel %8.0f cycles (%.1fx)\n",
		scanBoom, scanAccel, scanBoom/scanAccel)

	// --- schema evolution: a v1 reader preserves unknown v2 fields ---
	sample := dynamic.New(recordV2)
	sample.SetInt64(1, 999)
	sample.SetString(2, "k")
	sample.SetInt32(5, 3)
	sample.SetString(6, "eu-west4-a")
	v2bytes, err := codec.Marshal(sample)
	if err != nil {
		log.Fatal(err)
	}
	old, err := codec.Unmarshal(recordV1, v2bytes)
	if err != nil {
		log.Fatal(err)
	}
	rewritten, err := codec.Marshal(old) // unknown fields ride along
	if err != nil {
		log.Fatal(err)
	}
	back, err := codec.Unmarshal(recordV2, rewritten)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschema evolution: v1 reader kept %d unknown bytes; v2 re-read sees shard=%d origin=%q\n",
		len(old.Unknown), back.GetInt32(5), back.GetString(6))
}

// payload synthesizes a value whose size follows the storage-service
// pattern: mostly mid-sized with occasional large blobs.
func payload(lsn int) []byte {
	n := 64 + (lsn*37)%384
	if lsn%50 == 0 {
		n = 4096
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + (lsn+i)%26)
	}
	return b
}
