// Telemetry aggregation example: exercises the §7 extension operators —
// copy, merge, clear — through the accelerated system, the pattern of a
// metrics pipeline that folds per-shard protobuf snapshots into a global
// view each tick, then exports it as JSON (the jsonformat package) and
// text format (the textformat package).
//
// Per tick:  global = copy(shard0); merge(global, shard1..N); export;
// then clear the shard snapshots for the next interval — the operator mix
// Figure 2 attributes 17.1% of fleet protobuf cycles to.
package main

import (
	"fmt"
	"log"

	"protoacc/internal/core"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/jsonformat"
	"protoacc/internal/pb/protoparse"
	"protoacc/internal/pb/textformat"
)

const protoSrc = `
syntax = "proto2";
package telemetry;

message Counter {
  required string name  = 1;
  optional int64  value = 2;
}

message Snapshot {
  optional int64   tick     = 1;
  optional string  source   = 2;
  repeated Counter counters = 3;
  repeated double  samples  = 4 [packed=true];
}
`

func main() {
	file, err := protoparse.Parse("telemetry.proto", protoSrc)
	if err != nil {
		log.Fatal(err)
	}
	snap := file.MessageByName("Snapshot")

	boom := core.New(core.DefaultConfig(core.KindBOOM))
	accel := core.New(core.DefaultConfig(core.KindAccel))
	for _, sys := range []*core.System{boom, accel} {
		if err := sys.LoadSchema(snap); err != nil {
			log.Fatal(err)
		}
	}

	// Per-shard snapshots for one tick.
	const shards = 4
	buildShard := func(shard, tick int) *dynamic.Message {
		m := dynamic.New(snap)
		m.SetInt64(1, int64(tick))
		m.SetString(2, fmt.Sprintf("shard-%d", shard))
		for c := 0; c < 3; c++ {
			ctr := m.AddMessage(3)
			ctr.SetString(1, fmt.Sprintf("rpc.latency.bucket%d", c))
			ctr.SetInt64(2, int64(100*shard+c))
		}
		for s := 0; s < 8; s++ {
			m.AddScalarBits(4, uint64(4607182418800017408+uint64(shard*8+s))) // ~1.0 + eps
		}
		return m
	}

	var boomCycles, accelCycles float64
	var exported []byte
	const ticks = 10
	for tick := 0; tick < ticks; tick++ {
		for _, sys := range []*core.System{boom, accel} {
			// Materialize this tick's shard snapshots.
			shardAddrs := make([]uint64, shards)
			for s := range shardAddrs {
				a, err := sys.MaterializeInput(buildShard(s, tick))
				if err != nil {
					log.Fatal(err)
				}
				shardAddrs[s] = a
			}
			var cycles float64
			// global = copy(shard0)
			cres, err := sys.Copy(snap, shardAddrs[0])
			if err != nil {
				log.Fatal(err)
			}
			cycles += cres.Cycles
			global := cres.ObjAddr
			// merge the rest
			for _, sa := range shardAddrs[1:] {
				mres, err := sys.Merge(snap, global, sa)
				if err != nil {
					log.Fatal(err)
				}
				cycles += mres.Cycles
			}
			// serialize the global view (export path)
			sres, err := sys.Serialize(snap, global)
			if err != nil {
				log.Fatal(err)
			}
			cycles += sres.Cycles
			// clear shard snapshots for the next interval
			for _, sa := range shardAddrs {
				clres, err := sys.Clear(snap, sa)
				if err != nil {
					log.Fatal(err)
				}
				cycles += clres.Cycles
			}
			if sys == boom {
				boomCycles += cycles
			} else {
				accelCycles += cycles
				if tick == ticks-1 {
					exported, err = sys.ReadWire(sres.WireAddr, sres.Bytes)
					if err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}

	fmt.Printf("telemetry pipeline over %d ticks x %d shards (copy+merge+serialize+clear):\n", ticks, shards)
	fmt.Printf("  riscv-boom:       %9.0f cycles\n", boomCycles)
	fmt.Printf("  riscv-boom-accel: %9.0f cycles  (%.1fx)\n", accelCycles, boomCycles/accelCycles)

	// Export the final global view in both human-readable formats.
	m, err := codec.Unmarshal(snap, exported)
	if err != nil {
		log.Fatal(err)
	}
	js, err := jsonformat.MarshalIndent(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal global snapshot as JSON (first 200 bytes):\n%.200s...\n", js)
	fmt.Printf("\nas text format (first 5 lines):\n")
	lines := 0
	for _, line := range splitLines(textformat.Marshal(m)) {
		fmt.Println(" ", line)
		lines++
		if lines == 5 {
			break
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
