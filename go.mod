module protoacc

go 1.22
