// Package adt implements Accelerator Descriptor Tables (§4.2 of the
// paper): the per-message-type programming tables the modified protoc
// generates. ADTs are written into simulated memory once, at "program
// load" time, and handed to the accelerator by address — no per-instance
// table construction ever happens on the critical path, which is the
// paper's key programming-interface difference from Optimus Prime.
//
// An ADT has three regions, laid out contiguously:
//
//	header (64 B):
//	  +0  vptr value of the type's default instance (our registry type id)
//	  +8  C++ object size in bytes
//	  +16 offset of the hasbits array within objects
//	  +24 min defined field number
//	  +32 max defined field number
//	  +40 reserved
//	entries (16 B per field number in [min, max]):
//	  +0  flags: kind (low byte), repeated/packed/valid bits (byte 1)
//	  +4  field slot offset within the object (uint32)
//	  +8  sub-message ADT pointer (uint64; 0 unless kind == message)
//	is_submessage bit field (one bit per field number in [min, max],
//	  packed into 64-bit words)
package adt

import (
	"errors"
	"fmt"

	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
)

// HeaderSize is the size of the ADT header region.
const HeaderSize = 64

// EntrySize is the size of one field entry (128 bits).
const EntrySize = 16

// Flag bits within entry byte 1.
const (
	flagRepeated = 1 << 0
	flagPacked   = 1 << 1
	flagValid    = 1 << 2
)

// ErrNoEntry is returned when a field number outside [min, max] is looked
// up, or the slot is a hole (no field defined at that number).
var ErrNoEntry = errors.New("adt: no entry for field number")

// TableSize returns the total ADT size for a type with the given field
// number range.
func TableSize(fieldRange int32) uint64 {
	words := uint64(fieldRange+63) / 64
	return HeaderSize + uint64(fieldRange)*EntrySize + words*8
}

// Table records where one type's ADT lives.
type Table struct {
	Type   *schema.Message
	Layout *layout.Layout
	Addr   uint64
	Size   uint64
}

// Set holds the ADTs for a family of message types, as built at program
// load.
type Set struct {
	Mem    *mem.Memory
	Reg    *layout.Registry
	tables map[*schema.Message]*Table
}

// Build allocates and populates ADTs for every type reachable from roots.
// Two passes: allocate all tables first so sub-message ADT pointers can be
// cross-linked, then fill them.
func Build(memory *mem.Memory, alloc *mem.Allocator, reg *layout.Registry, roots ...*schema.Message) (*Set, error) {
	s := &Set{Mem: memory, Reg: reg, tables: make(map[*schema.Message]*Table)}
	var all []*schema.Message
	for _, root := range roots {
		reg.Register(root)
		root.Walk(func(t *schema.Message) {
			if _, ok := s.tables[t]; ok {
				return
			}
			l := reg.Layout(t)
			size := TableSize(t.FieldNumberRange())
			addr, err := alloc.Alloc(size, 8)
			if err != nil {
				return // surfaced below via missing table
			}
			s.tables[t] = &Table{Type: t, Layout: l, Addr: addr, Size: size}
			all = append(all, t)
		})
	}
	// Detect allocation failures.
	for _, root := range roots {
		var failed error
		root.Walk(func(t *schema.Message) {
			if _, ok := s.tables[t]; !ok && failed == nil {
				failed = fmt.Errorf("adt: allocation failed for %s", t.Name)
			}
		})
		if failed != nil {
			return nil, failed
		}
	}
	for _, t := range all {
		if err := s.fill(t); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Set) fill(t *schema.Message) error {
	tab := s.tables[t]
	l := tab.Layout
	w := func(off, v uint64) error { return s.Mem.Write64(tab.Addr+off, v) }
	if err := w(0, s.Reg.TypeID(t)); err != nil {
		return err
	}
	if err := w(8, l.Size); err != nil {
		return err
	}
	if err := w(16, layout.HasbitsOffset); err != nil {
		return err
	}
	if err := w(24, uint64(l.MinField)); err != nil {
		return err
	}
	if err := w(32, uint64(l.MaxField)); err != nil {
		return err
	}
	rng := t.FieldNumberRange()
	subBitsBase := tab.Addr + HeaderSize + uint64(rng)*EntrySize
	for _, fl := range l.Fields {
		f := fl.Field
		idx := uint64(f.Number - l.MinField)
		entryAddr := tab.Addr + HeaderSize + idx*EntrySize
		flags := uint32(f.Kind) | uint32(flagValid)<<8
		if f.Repeated() {
			flags |= flagRepeated << 8
		}
		if f.Packed {
			flags |= flagPacked << 8
		}
		if err := s.Mem.Write32(entryAddr, flags); err != nil {
			return err
		}
		if err := s.Mem.Write32(entryAddr+4, uint32(fl.Offset)); err != nil {
			return err
		}
		var subADT uint64
		if f.Kind == schema.KindMessage {
			sub, ok := s.tables[f.Message]
			if !ok {
				return fmt.Errorf("adt: %s.%s: sub-message type %s not built", t.Name, f.Name, f.Message.Name)
			}
			subADT = sub.Addr
			// Set the is_submessage bit.
			wordAddr := subBitsBase + (idx/64)*8
			word, err := s.Mem.Read64(wordAddr)
			if err != nil {
				return err
			}
			if err := s.Mem.Write64(wordAddr, word|1<<(idx%64)); err != nil {
				return err
			}
		}
		if err := s.Mem.Write64(entryAddr+8, subADT); err != nil {
			return err
		}
	}
	return nil
}

// Table returns the ADT record for t, or nil.
func (s *Set) Table(t *schema.Message) *Table { return s.tables[t] }

// Addr returns the ADT address for t (0 if not built).
func (s *Set) Addr(t *schema.Message) uint64 {
	if tab := s.tables[t]; tab != nil {
		return tab.Addr
	}
	return 0
}

// TotalBytes returns the combined size of all built tables: the
// programming-table state footprint the paper contrasts with Optimus
// Prime's per-instance tables (§3.7).
func (s *Set) TotalBytes() uint64 {
	var n uint64
	for _, tab := range s.tables {
		n += tab.Size
	}
	return n
}

// --- accelerator-side raw readers ---
// These are what the accelerator models use: they read the ADT from
// simulated memory only, never from host-side descriptors, so the models
// exercise the same programming interface as the RTL.

// Header is a decoded ADT header region.
type Header struct {
	TypeID        uint64
	ObjectSize    uint64
	HasbitsOffset uint64
	MinField      int32
	MaxField      int32
}

// FieldRange returns the number of entry slots.
func (h Header) FieldRange() int32 {
	if h.MaxField < h.MinField {
		return 0
	}
	return h.MaxField - h.MinField + 1
}

// ReadHeader decodes the header of the ADT at addr.
func ReadHeader(m *mem.Memory, addr uint64) (Header, error) {
	var h Header
	var err error
	if h.TypeID, err = m.Read64(addr); err != nil {
		return h, err
	}
	if h.ObjectSize, err = m.Read64(addr + 8); err != nil {
		return h, err
	}
	if h.HasbitsOffset, err = m.Read64(addr + 16); err != nil {
		return h, err
	}
	minF, err := m.Read64(addr + 24)
	if err != nil {
		return h, err
	}
	maxF, err := m.Read64(addr + 32)
	if err != nil {
		return h, err
	}
	h.MinField, h.MaxField = int32(minF), int32(maxF)
	return h, nil
}

// Entry is a decoded ADT field entry.
type Entry struct {
	Kind     schema.Kind
	Repeated bool
	Packed   bool
	Offset   uint32
	SubADT   uint64
}

// ReadEntry decodes the entry for fieldNum from the ADT at adtAddr with
// header h. It returns ErrNoEntry for holes and out-of-range numbers.
func ReadEntry(m *mem.Memory, adtAddr uint64, h Header, fieldNum int32) (Entry, error) {
	var e Entry
	if fieldNum < h.MinField || fieldNum > h.MaxField {
		return e, fmt.Errorf("%w: %d outside [%d, %d]", ErrNoEntry, fieldNum, h.MinField, h.MaxField)
	}
	idx := uint64(fieldNum - h.MinField)
	entryAddr := adtAddr + HeaderSize + idx*EntrySize
	flags, err := m.Read32(entryAddr)
	if err != nil {
		return e, err
	}
	if flags>>8&flagValid == 0 {
		return e, fmt.Errorf("%w: %d is a hole", ErrNoEntry, fieldNum)
	}
	e.Kind = schema.Kind(flags & 0xff)
	e.Repeated = flags>>8&flagRepeated != 0
	e.Packed = flags>>8&flagPacked != 0
	if e.Offset, err = m.Read32(entryAddr + 4); err != nil {
		return e, err
	}
	if e.SubADT, err = m.Read64(entryAddr + 8); err != nil {
		return e, err
	}
	return e, nil
}

// IsSubmessage reads the is_submessage bit for fieldNum from the ADT at
// adtAddr (the serializer frontend's fast path, which avoids waiting for a
// full entry read — §4.2).
func IsSubmessage(m *mem.Memory, adtAddr uint64, h Header, fieldNum int32) (bool, error) {
	if fieldNum < h.MinField || fieldNum > h.MaxField {
		return false, fmt.Errorf("%w: %d outside [%d, %d]", ErrNoEntry, fieldNum, h.MinField, h.MaxField)
	}
	idx := uint64(fieldNum - h.MinField)
	base := adtAddr + HeaderSize + uint64(h.FieldRange())*EntrySize
	word, err := m.Read64(base + (idx/64)*8)
	if err != nil {
		return false, err
	}
	return word>>(idx%64)&1 == 1, nil
}
