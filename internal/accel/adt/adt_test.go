package adt

import (
	"errors"
	"testing"

	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
)

func buildSet(t *testing.T, roots ...*schema.Message) (*Set, *mem.Memory) {
	t.Helper()
	m := mem.New()
	alloc := mem.NewAllocator(m.Map("adt", 1<<20))
	reg := layout.NewRegistry()
	s, err := Build(m, alloc, reg, roots...)
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestTableSize(t *testing.T) {
	if got := TableSize(1); got != 64+16+8 {
		t.Errorf("TableSize(1) = %d", got)
	}
	if got := TableSize(64); got != 64+64*16+8 {
		t.Errorf("TableSize(64) = %d", got)
	}
	if got := TableSize(65); got != 64+65*16+16 {
		t.Errorf("TableSize(65) = %d", got)
	}
	if got := TableSize(0); got != 64 {
		t.Errorf("TableSize(0) = %d", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 5, Kind: schema.KindInt32},
		&schema.Field{Name: "b", Number: 12, Kind: schema.KindString},
	)
	s, m := buildSet(t, typ)
	h, err := ReadHeader(m, s.Addr(typ))
	if err != nil {
		t.Fatal(err)
	}
	l := s.Reg.Layout(typ)
	if h.TypeID != s.Reg.TypeID(typ) {
		t.Errorf("TypeID = %d", h.TypeID)
	}
	if h.ObjectSize != l.Size {
		t.Errorf("ObjectSize = %d, want %d", h.ObjectSize, l.Size)
	}
	if h.HasbitsOffset != layout.HasbitsOffset {
		t.Errorf("HasbitsOffset = %d", h.HasbitsOffset)
	}
	if h.MinField != 5 || h.MaxField != 12 || h.FieldRange() != 8 {
		t.Errorf("bounds = %d..%d", h.MinField, h.MaxField)
	}
}

func TestEntries(t *testing.T) {
	sub := mustMessage("Sub", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt64})
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 3, Kind: schema.KindSint32},
		&schema.Field{Name: "r", Number: 4, Kind: schema.KindDouble, Label: schema.LabelRepeated, Packed: true},
		&schema.Field{Name: "s", Number: 6, Kind: schema.KindMessage, Message: sub},
	)
	s, m := buildSet(t, typ)
	h, _ := ReadHeader(m, s.Addr(typ))
	l := s.Reg.Layout(typ)

	ea, err := ReadEntry(m, s.Addr(typ), h, 3)
	if err != nil || ea.Kind != schema.KindSint32 || ea.Repeated || ea.Packed {
		t.Errorf("entry 3 = %+v, %v", ea, err)
	}
	if uint64(ea.Offset) != l.FieldByNumber(3).Offset {
		t.Errorf("entry 3 offset = %d", ea.Offset)
	}

	er, err := ReadEntry(m, s.Addr(typ), h, 4)
	if err != nil || !er.Repeated || !er.Packed || er.Kind != schema.KindDouble {
		t.Errorf("entry 4 = %+v, %v", er, err)
	}

	es, err := ReadEntry(m, s.Addr(typ), h, 6)
	if err != nil || es.Kind != schema.KindMessage {
		t.Fatalf("entry 6 = %+v, %v", es, err)
	}
	if es.SubADT != s.Addr(sub) {
		t.Errorf("entry 6 SubADT = 0x%x, want 0x%x", es.SubADT, s.Addr(sub))
	}

	// Hole at field 5.
	if _, err := ReadEntry(m, s.Addr(typ), h, 5); !errors.Is(err, ErrNoEntry) {
		t.Errorf("hole err = %v", err)
	}
	// Out of range.
	if _, err := ReadEntry(m, s.Addr(typ), h, 100); !errors.Is(err, ErrNoEntry) {
		t.Errorf("oob err = %v", err)
	}
}

func TestIsSubmessageBits(t *testing.T) {
	sub := mustMessage("Sub", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt64})
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s", Number: 70, Kind: schema.KindMessage, Message: sub}, // second bit word
	)
	s, m := buildSet(t, typ)
	h, _ := ReadHeader(m, s.Addr(typ))
	b1, err := IsSubmessage(m, s.Addr(typ), h, 1)
	if err != nil || b1 {
		t.Errorf("field 1 is_submessage = %v, %v", b1, err)
	}
	b70, err := IsSubmessage(m, s.Addr(typ), h, 70)
	if err != nil || !b70 {
		t.Errorf("field 70 is_submessage = %v, %v", b70, err)
	}
	if _, err := IsSubmessage(m, s.Addr(typ), h, 99); !errors.Is(err, ErrNoEntry) {
		t.Errorf("oob err = %v", err)
	}
}

func TestRecursiveTypeSelfLink(t *testing.T) {
	rec := &schema.Message{Name: "R"}
	if err := rec.SetFields([]*schema.Field{
		{Name: "self", Number: 1, Kind: schema.KindMessage, Message: rec},
	}); err != nil {
		t.Fatal(err)
	}
	s, m := buildSet(t, rec)
	h, _ := ReadHeader(m, s.Addr(rec))
	e, err := ReadEntry(m, s.Addr(rec), h, 1)
	if err != nil || e.SubADT != s.Addr(rec) {
		t.Errorf("recursive SubADT = 0x%x, want self 0x%x (%v)", e.SubADT, s.Addr(rec), err)
	}
}

func TestSharedTypeSingleTable(t *testing.T) {
	shared := mustMessage("Shared", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	a := mustMessage("A", &schema.Field{Name: "s", Number: 1, Kind: schema.KindMessage, Message: shared})
	b := mustMessage("B", &schema.Field{Name: "s", Number: 1, Kind: schema.KindMessage, Message: shared})
	s, _ := buildSet(t, a, b)
	if s.Table(shared) == nil {
		t.Fatal("shared type missing")
	}
	// Three tables total: A, B, Shared.
	if s.TotalBytes() != s.Table(a).Size+s.Table(b).Size+s.Table(shared).Size {
		t.Error("TotalBytes mismatch")
	}
}

func TestBuildOutOfSpace(t *testing.T) {
	m := mem.New()
	alloc := mem.NewAllocator(m.Map("adt", 16)) // far too small
	typ := mustMessage("M", &schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})
	if _, err := Build(m, alloc, layout.NewRegistry(), typ); err == nil {
		t.Error("expected allocation failure")
	}
}

func TestAddrUnknownType(t *testing.T) {
	typ := mustMessage("M", &schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})
	other := mustMessage("O", &schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})
	s, _ := buildSet(t, typ)
	if s.Addr(other) != 0 || s.Table(other) != nil {
		t.Error("unknown type should have no table")
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
