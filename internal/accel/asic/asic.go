// Package asic models the accelerator's silicon cost (§5.3 of the paper):
// a component-level area and critical-path model for a commercial 22 nm
// FinFET process. The default configurations reproduce the published
// results — deserializer 0.133 mm² at 1.95 GHz, serializer 0.278 mm² at
// 1.84 GHz — and the per-block breakdown scales with the design parameters
// (memloader width, metadata stack depth, field serializer unit count) so
// the ablation benches can report silicon trade-offs alongside
// performance.
//
// Block areas are calibrated splits of the published totals; delays are
// assigned so the slowest block matches the published frequency. Scaling
// exponents are first-order (linear in buffer sizes and unit counts,
// logarithmic delay growth in decoder window width), which is the right
// fidelity for trend studies, not sign-off.
package asic

import (
	"fmt"
	"math"
	"strings"

	"protoacc/internal/accel/deser"
	"protoacc/internal/accel/ser"
)

// Block is one RTL component's silicon cost.
type Block struct {
	Name    string
	AreaMM2 float64
	DelayPS float64
}

// Report is a unit's synthesis summary.
type Report struct {
	Unit   string
	Blocks []Block
}

// TotalAreaMM2 sums block areas.
func (r Report) TotalAreaMM2() float64 {
	var a float64
	for _, b := range r.Blocks {
		a += b.AreaMM2
	}
	return a
}

// CriticalPathPS returns the slowest block's delay.
func (r Report) CriticalPathPS() float64 {
	var d float64
	for _, b := range r.Blocks {
		if b.DelayPS > d {
			d = b.DelayPS
		}
	}
	return d
}

// CriticalBlock returns the name of the slowest block.
func (r Report) CriticalBlock() string {
	var d float64
	name := ""
	for _, b := range r.Blocks {
		if b.DelayPS > d {
			d = b.DelayPS
			name = b.Name
		}
	}
	return name
}

// FrequencyGHz returns the achievable clock.
func (r Report) FrequencyGHz() float64 {
	cp := r.CriticalPathPS()
	if cp == 0 {
		return 0
	}
	return 1000 / cp
}

// String renders the report as a synthesis-summary table.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (22 nm FinFET)\n", r.Unit)
	fmt.Fprintf(&sb, "  %-28s %10s %10s\n", "block", "area mm^2", "delay ps")
	for _, b := range r.Blocks {
		fmt.Fprintf(&sb, "  %-28s %10.4f %10.1f\n", b.Name, b.AreaMM2, b.DelayPS)
	}
	fmt.Fprintf(&sb, "  %-28s %10.4f\n", "TOTAL", r.TotalAreaMM2())
	fmt.Fprintf(&sb, "  critical path: %.1f ps (%s) -> %.2f GHz\n",
		r.CriticalPathPS(), r.CriticalBlock(), r.FrequencyGHz())
	return sb.String()
}

// widthScale is a linear scaling relative to the 16-byte baseline width.
func widthScale(width uint64) float64 { return float64(width) / 16 }

// depthScale is linear in stack depth relative to the 25-entry baseline.
func depthScale(depth int) float64 { return float64(depth) / 25 }

// decoderDelayScale grows logarithmically with the decode window: wider
// combinational varint decoders need deeper priority logic.
func decoderDelayScale(width uint64) float64 {
	return 1 + 0.12*math.Log2(math.Max(1, float64(width)/16))
}

// Deserializer reports the deserializer unit's silicon cost for cfg.
// Defaults reproduce the paper: 0.133 mm² at 1.95 GHz.
func Deserializer(cfg deser.Config) Report {
	w := widthScale(cfg.MemloaderWidth)
	d := depthScale(cfg.OnChipStackDepth)
	dec := decoderDelayScale(cfg.MemloaderWidth)
	return Report{
		Unit: "protoacc deserializer",
		Blocks: []Block{
			{"memloader", 0.030 * w, 430},
			{"combinational varint decoder", 0.012 * w, 500 * dec},
			{"field handler FSM", 0.020, 512.8},
			{"hasbits writer", 0.008, 360},
			{"ADT loader", 0.010, 410},
			{"metadata stacks", 0.015 * d, 390},
			{"TLB + mem interface wrappers", 0.038, 470},
		},
	}
}

// Serializer reports the serializer unit's silicon cost for cfg.
// Defaults reproduce the paper: 0.278 mm² at 1.84 GHz.
func Serializer(cfg ser.Config) Report {
	w := widthScale(cfg.MemwriterWidth)
	d := depthScale(cfg.OnChipStackDepth)
	units := float64(cfg.NumFieldUnits)
	return Report{
		Unit: "protoacc serializer",
		Blocks: []Block{
			{"frontend (bit-field scanner)", 0.025, 470},
			{fmt.Sprintf("field serializer units (x%d)", cfg.NumFieldUnits), 0.040 * units, 520},
			{"RR dispatch + output sequencer", 0.020 * math.Sqrt(units/4), 543.5},
			{"memwriter", 0.030 * w, 480},
			{"context stacks", 0.015 * d, 390},
			{"TLB + mem interface wrappers", 0.028, 470},
		},
	}
}

// Combined returns both units' totals — the full accelerator as
// instantiated in the SoC (Figure 8).
func Combined(dcfg deser.Config, scfg ser.Config) (area float64, minFreqGHz float64) {
	d := Deserializer(dcfg)
	s := Serializer(scfg)
	area = d.TotalAreaMM2() + s.TotalAreaMM2()
	minFreqGHz = math.Min(d.FrequencyGHz(), s.FrequencyGHz())
	return area, minFreqGHz
}
