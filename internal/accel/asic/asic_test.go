package asic

import (
	"math"
	"strings"
	"testing"

	"protoacc/internal/accel/deser"
	"protoacc/internal/accel/ser"
)

func TestDeserializerMatchesPaper(t *testing.T) {
	r := Deserializer(deser.DefaultConfig())
	if got := r.TotalAreaMM2(); math.Abs(got-0.133) > 0.0005 {
		t.Errorf("deserializer area = %f mm^2, paper: 0.133", got)
	}
	if got := r.FrequencyGHz(); math.Abs(got-1.95) > 0.01 {
		t.Errorf("deserializer frequency = %f GHz, paper: 1.95", got)
	}
}

func TestSerializerMatchesPaper(t *testing.T) {
	r := Serializer(ser.DefaultConfig())
	if got := r.TotalAreaMM2(); math.Abs(got-0.278) > 0.0005 {
		t.Errorf("serializer area = %f mm^2, paper: 0.278", got)
	}
	if got := r.FrequencyGHz(); math.Abs(got-1.84) > 0.01 {
		t.Errorf("serializer frequency = %f GHz, paper: 1.84", got)
	}
}

func TestScalingTrends(t *testing.T) {
	base := deser.DefaultConfig()
	wide := base
	wide.MemloaderWidth = 32
	if Deserializer(wide).TotalAreaMM2() <= Deserializer(base).TotalAreaMM2() {
		t.Error("wider memloader should cost area")
	}
	if Deserializer(wide).FrequencyGHz() >= Deserializer(base).FrequencyGHz() {
		t.Error("wider decode window should slow the clock")
	}
	deepStack := base
	deepStack.OnChipStackDepth = 100
	if Deserializer(deepStack).TotalAreaMM2() <= Deserializer(base).TotalAreaMM2() {
		t.Error("deeper stacks should cost area")
	}

	sbase := ser.DefaultConfig()
	more := sbase
	more.NumFieldUnits = 8
	if Serializer(more).TotalAreaMM2() <= Serializer(sbase).TotalAreaMM2() {
		t.Error("more field units should cost area")
	}
}

func TestCombined(t *testing.T) {
	area, freq := Combined(deser.DefaultConfig(), ser.DefaultConfig())
	if math.Abs(area-(0.133+0.278)) > 0.001 {
		t.Errorf("combined area = %f", area)
	}
	if math.Abs(freq-1.84) > 0.01 {
		t.Errorf("combined freq = %f (min of the two units)", freq)
	}
}

func TestReportString(t *testing.T) {
	s := Deserializer(deser.DefaultConfig()).String()
	for _, want := range []string{"memloader", "field handler FSM", "TOTAL", "GHz"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestCriticalBlockNames(t *testing.T) {
	if got := Deserializer(deser.DefaultConfig()).CriticalBlock(); got != "field handler FSM" {
		t.Errorf("deser critical block = %q", got)
	}
	if got := Serializer(ser.DefaultConfig()).CriticalBlock(); got != "RR dispatch + output sequencer" {
		t.Errorf("ser critical block = %q", got)
	}
}
