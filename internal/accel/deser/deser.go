// Package deser models the ProtoAcc deserializer unit (§4.4 of the
// paper): the memloader, the combinational varint decoder, the
// field-handler state machine with its parseKey/typeInfo/write states, the
// hasbits writer, the ADT loader, the message-level metadata stacks, and
// accelerator-arena allocation.
//
// The model is functionally exact — it consumes real wire bytes from
// simulated memory and produces real C++-layout objects, driven only by
// the in-memory ADTs (never by host-side descriptors) — and cycle-counted:
// each state transition charges the costs the paper describes (single-cycle
// combinational varint decode, 16 B/cycle memloader beats, pointer-bump
// allocation), and memory accesses are charged through the accelerator's
// port into the shared L2/LLC.
//
// Cycle-accounting conventions: the field handler is an in-order FSM, so
// blocking loads (ADT entries, sub-message ADT headers) charge their full
// latency beyond the unit-buffer hit time; streaming input and
// fire-and-forget object writes go through the memory-interface wrappers,
// which support multiple outstanding requests, so they charge overlapped
// (divided) latencies. The final cycle count is the FSM total bounded
// below by the memloader's supply rate.
package deser

import (
	"errors"
	"fmt"
	"unicode/utf8"

	"protoacc/internal/accel/adt"
	"protoacc/internal/faults"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
	"protoacc/internal/telemetry"
)

// Errors surfaced by the unit.
var (
	ErrMalformed = errors.New("deser: malformed wire input")
	ErrTooDeep   = errors.New("deser: metadata stack exceeds architectural limit")
	ErrBadUTF8   = errors.New("deser: invalid UTF-8 in string field")
)

// Config holds the unit's microarchitectural parameters.
type Config struct {
	// MemloaderWidth is the bytes the memloader can supply per cycle
	// (§4.4.2: 16 B).
	MemloaderWidth uint64
	// OnChipStackDepth is the metadata stack depth held on-chip; deeper
	// nesting spills (§3.8: 25 entries covers 99.999% of fleet bytes).
	OnChipStackDepth int
	// SpillPenalty is the extra cycles per push/pop beyond the on-chip
	// depth (a round trip to the spill region in DRAM).
	SpillPenalty float64
	// MaxDepth is the architectural nesting limit (paper: max observed
	// depth < 100).
	MaxDepth int
	// HiddenLatency is the access latency absorbed by unit-internal
	// buffering (the ADT cache / memloader buffers).
	HiddenLatency uint64
	// ValidateUTF8 enables UTF-8 validation of string fields — the one
	// feature the paper lists as needed for proto3 support (§7).
	ValidateUTF8 bool
	// Trace, when non-nil, receives one event per field-handler state
	// transition.
	//
	// Deprecated: a Config carrying a Trace func cannot be pooled
	// (core.Pool refuses it — func values are incomparable), so traced
	// runs used to pay full System construction. Use the System-owned
	// telemetry buffer instead: enable the Unit's Tracer (wired to
	// core.System.Telemetry().Tracer), which buffers the same transitions
	// as cycle-timestamped telemetry.Events without touching the Config.
	Trace func(ev TraceEvent)
}

// TraceEvent describes one field-handler state transition.
//
// Deprecated: see Config.Trace; new code consumes telemetry.Event.
type TraceEvent struct {
	State string // parseKey, typeInfo, scalarWrite, string, packedRun, subPush, subPop, closeOut, skip
	Depth int
	Field int32
	Pos   uint64 // input stream position
	Note  string
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		MemloaderWidth:   16,
		OnChipStackDepth: 25,
		SpillPenalty:     12,
		MaxDepth:         100,
		HiddenLatency:    1,
	}
}

// Stats reports what a deserialization did. The cycle-attribution
// counters (SupplyBoundCycles, SpillCycles, ADTStallCycles) classify
// portions of Cycles by stall cause; the remainder is pure FSM work.
type Stats struct {
	Cycles        float64
	FSMCycles     float64
	SupplyCycles  float64
	BytesConsumed uint64
	FieldsParsed  uint64
	Allocs        uint64
	ArenaBytes    uint64
	StackSpills   uint64
	MaxDepthSeen  int

	// SupplyBoundCycles is how many cycles the supply bound added beyond
	// the FSM's own work — the deserializer was input-starved.
	SupplyBoundCycles float64
	// SpillCycles is the total metadata-stack spill penalty paid.
	SpillCycles float64
	// ADTStallCycles is the FSM time spent blocked on ADT header/entry
	// loads (the model's ADT-miss stall class).
	ADTStallCycles float64
}

// Unit is one deserializer unit instance.
type Unit struct {
	Mem   *mem.Memory
	Port  *memmodel.Port
	Arena *mem.Allocator
	Cfg   Config

	// Tracer, when enabled, buffers one telemetry.Event per field-handler
	// state transition on the System-owned trace stream. Assigned by
	// core.New; nil is valid (tracing off).
	Tracer *telemetry.Tracer

	// Inj, when non-nil and enabled, injects simulated faults at the
	// unit's named sites: memloader access faults in the varint window
	// fetch, memwriter faults on object-slot stores, metadata-stack spill
	// failures on sub-message pushes, arena exhaustion on allocation, and
	// wire-byte corruption per parsed key. Injected faults are phantom —
	// the access never happens, so memory holds only what the operation
	// legitimately wrote before the fault. Assigned by core.New; nil is
	// valid (injection off).
	Inj *faults.Injector

	stats Stats

	// openRegions buffers unpacked-repeated open-allocation regions
	// (§4.4.8) per (object, field) until close-out.
	openRegions map[regionKey]*openRegion
	// current open region key (hardware tracks exactly one open tag).
	open *regionKey
}

type regionKey struct {
	obj uint64
	num int32
}

type openRegion struct {
	elemSize uint64
	slot     uint64 // address of the repeated-field header in the parent
	// elems holds raw element images (scalars or string headers) or
	// sub-object addresses, written to the arena at close-out.
	elems []uint64
}

// New creates a deserializer unit.
func New(m *mem.Memory, port *memmodel.Port, arena *mem.Allocator, cfg Config) *Unit {
	return &Unit{Mem: m, Port: port, Arena: arena, Cfg: cfg}
}

// Stats returns cumulative statistics.
func (u *Unit) Stats() Stats { return u.stats }

// CollectTelemetry registers the unit's counters (telemetry.Collector).
func (u *Unit) CollectTelemetry(emit func(name string, value float64)) {
	emit("cycles", u.stats.Cycles)
	emit("fsm_cycles", u.stats.FSMCycles)
	emit("supply_cycles", u.stats.SupplyCycles)
	emit("supply_bound_cycles", u.stats.SupplyBoundCycles)
	emit("spill_cycles", u.stats.SpillCycles)
	emit("adt_stall_cycles", u.stats.ADTStallCycles)
	emit("bytes_consumed", float64(u.stats.BytesConsumed))
	emit("fields_parsed", float64(u.stats.FieldsParsed))
	emit("allocs", float64(u.stats.Allocs))
	emit("arena_bytes", float64(u.stats.ArenaBytes))
	emit("stack_spills", float64(u.stats.StackSpills))
	emit("max_depth_seen", float64(u.stats.MaxDepthSeen))
}

// ResetStats clears the accumulators and any residual parse state,
// returning the unit to its post-construction state.
func (u *Unit) ResetStats() {
	u.stats = Stats{}
	u.openRegions = nil
	u.open = nil
}

// Abort discards the in-progress operation's parse state after a fault
// and absorbs the aborted attempt's FSM cycles into the cumulative cycle
// counter (a successful Deserialize syncs Cycles to FSMCycles on
// completion, so the unsynced delta is exactly the attempt's work).
// Returns the attempt's cycles so the dispatch layer can charge them to
// the recovery episode. Arena rollback is the caller's job (the unit does
// not own allocator marks).
func (u *Unit) Abort() float64 {
	attempt := u.stats.FSMCycles - u.stats.Cycles
	u.stats.Cycles = u.stats.FSMCycles
	u.openRegions = nil
	u.open = nil
	return attempt
}

// fsm charges FSM cycles.
func (u *Unit) fsm(c float64) { u.stats.FSMCycles += c }

// tracing reports whether any trace consumer is attached; emit sites
// whose arguments allocate (formatted notes) check it first.
func (u *Unit) tracing() bool {
	return u.Cfg.Trace != nil || u.Tracer.Enabled()
}

// trace emits a state-transition event when tracing is enabled: to the
// deprecated Config.Trace hook and/or the System-owned telemetry stream,
// timestamped with the unit's cumulative FSM cycle counter.
func (u *Unit) trace(state string, depth int, field int32, pos uint64, note string) {
	if u.Cfg.Trace != nil {
		u.Cfg.Trace(TraceEvent{State: state, Depth: depth, Field: field, Pos: pos, Note: note})
	}
	if u.Tracer.Enabled() {
		u.Tracer.Emit(telemetry.Event{
			Unit: "deser", Name: state, Cycle: u.stats.FSMCycles,
			Depth: depth, Field: field, Pos: pos, Note: note,
		})
	}
}

// blockingLoad charges a load the FSM waits on (typeInfo state, ADT
// headers): full latency beyond the hidden buffer time. Every blocking
// load in this unit is an ADT header or entry fetch, so the charged
// cycles are also attributed to the ADT-stall class.
func (u *Unit) blockingLoad(addr, size uint64) {
	lat := u.Port.Access(addr, size)
	if lat > u.Cfg.HiddenLatency {
		stall := float64(lat - u.Cfg.HiddenLatency)
		u.stats.FSMCycles += stall
		u.stats.ADTStallCycles += stall
	}
}

// overlapped charges a streaming/fire-and-forget access through the memory
// interface wrappers (outstanding-request tracking): overlapped latency
// only.
func (u *Unit) overlapped(addr, size uint64) {
	lat := u.Port.StreamAccess(addr, size)
	if lat > u.Cfg.HiddenLatency {
		u.stats.FSMCycles += float64(lat-u.Cfg.HiddenLatency) / 4
	}
}

// Deserialize decodes bufLen wire bytes at bufAddr into the caller
// allocated object at objAddr, whose type is described by the ADT at
// adtAddr. It implements the do_proto_deser operation; the returned Stats
// delta reflects this call.
func (u *Unit) Deserialize(adtAddr, objAddr, bufAddr, bufLen uint64) (Stats, error) {
	before := u.stats
	u.openRegions = make(map[regionKey]*openRegion)
	u.open = nil

	// Command dispatch and frontend setup.
	u.fsm(8)
	supplyStart := u.stats.FSMCycles

	if err := u.parseMessage(adtAddr, objAddr, bufAddr, bufLen, 1); err != nil {
		return Stats{}, err
	}

	u.stats.BytesConsumed += bufLen
	// The memloader supplies at most MemloaderWidth bytes per cycle; the
	// FSM cannot run faster than its input arrives.
	supply := float64((bufLen + u.Cfg.MemloaderWidth - 1) / u.Cfg.MemloaderWidth)
	u.stats.SupplyCycles += supply
	if fsmDelta := u.stats.FSMCycles - supplyStart; fsmDelta < supply {
		u.stats.SupplyBoundCycles += supply - fsmDelta
		u.stats.FSMCycles = supplyStart + supply
	}
	u.stats.Cycles = u.stats.FSMCycles

	delta := u.stats
	delta.Cycles -= before.Cycles
	delta.FSMCycles -= before.FSMCycles
	delta.SupplyCycles -= before.SupplyCycles
	delta.SupplyBoundCycles -= before.SupplyBoundCycles
	delta.SpillCycles -= before.SpillCycles
	delta.ADTStallCycles -= before.ADTStallCycles
	delta.BytesConsumed -= before.BytesConsumed
	delta.FieldsParsed -= before.FieldsParsed
	delta.Allocs -= before.Allocs
	delta.ArenaBytes -= before.ArenaBytes
	delta.StackSpills -= before.StackSpills
	return delta, nil
}

// readVarint peeks the next 10 bytes of the stream (the combinational
// decoder's window) and decodes in a single cycle. The window is a
// zero-copy view of the memloader stream — decoding reads simulated
// memory in place, with no staging copy per access.
func (u *Unit) readVarint(pos, end uint64) (uint64, uint64, error) {
	if err := u.Inj.At(faults.SiteMemloader); err != nil {
		return 0, 0, err
	}
	window := end - pos
	if window > wire.MaxVarintLen {
		window = wire.MaxVarintLen
	}
	if window == 0 {
		return 0, 0, ErrMalformed
	}
	s, err := u.Mem.View(pos, window)
	if err != nil {
		return 0, 0, err
	}
	v, n, err := wire.ReadVarint(s)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	u.overlapped(pos, uint64(n))
	return v, uint64(n), nil
}

func (u *Unit) parseMessage(adtAddr, objAddr, bufAddr, bufLen uint64, depth int) error {
	if depth > u.Cfg.MaxDepth {
		return ErrTooDeep
	}
	if depth > u.stats.MaxDepthSeen {
		u.stats.MaxDepthSeen = depth
	}
	header, err := adt.ReadHeader(u.Mem, adtAddr)
	if err != nil {
		return err
	}
	u.blockingLoad(adtAddr, adt.HeaderSize)

	pos, end := bufAddr, bufAddr+bufLen
	lastNum := int32(-1)
	var lastEntry adt.Entry
	for pos < end {
		// Wire-corruption detection point: one trial per parsed key.
		if err := u.Inj.At(faults.SiteWireCorrupt); err != nil {
			return err
		}
		// parseKey state: single-cycle combinational varint decode of
		// the key.
		u.fsm(1)
		tag, n, err := u.readVarint(pos, end)
		if err != nil {
			return err
		}
		pos += n
		num, wt := wire.SplitTag(tag)
		if num <= 0 || num > wire.MaxFieldNumber || !wt.Valid() {
			return fmt.Errorf("%w: bad tag %d", ErrMalformed, tag)
		}
		u.trace("parseKey", depth, num, pos, wt.String())

		// typeInfo state: block on the ADT entry load (entry alignment
		// and decode). Consecutive occurrences of the same key — the
		// common shape of unpacked repeated fields — reuse the latched
		// entry and skip the state. The hasbits writer runs in parallel
		// (its write is fire-and-forget).
		var entry adt.Entry
		var entryErr error
		if num == lastNum {
			entry = lastEntry
		} else {
			u.trace("typeInfo", depth, num, pos, "")
			u.fsm(1.5)
			entryAddr := adtAddr + adt.HeaderSize + uint64(num-header.MinField)*adt.EntrySize
			entry, entryErr = adt.ReadEntry(u.Mem, adtAddr, header, num)
			if entryErr == nil {
				u.blockingLoad(entryAddr, adt.EntrySize)
				lastNum, lastEntry = num, entry
			} else {
				lastNum = -1
			}
		}
		if entryErr != nil || !wireTypeCompatible(entry, wt) {
			// Unknown field: skip its value.
			if !errors.Is(entryErr, adt.ErrNoEntry) && entryErr != nil {
				return entryErr
			}
			u.trace("skip", depth, num, pos, "unknown field")
			pos, err = u.skipValue(pos, end, wt)
			if err != nil {
				return err
			}
			continue
		}
		u.stats.FieldsParsed++

		// Hasbits writer (parallel unit): RMW of the sparse hasbits word.
		idx := uint64(num - header.MinField)
		hbAddr := objAddr + header.HasbitsOffset + (idx/64)*8
		w, err := u.Mem.Read64(hbAddr)
		if err != nil {
			return err
		}
		if err := u.Mem.Write64(hbAddr, w|1<<(idx%64)); err != nil {
			return err
		}
		u.overlapped(hbAddr, 8)

		// Close the open unpacked-repeated region if this field differs.
		if u.open != nil && (u.open.obj != objAddr || u.open.num != num) {
			if err := u.closeOpenRegion(); err != nil {
				return err
			}
		}

		pos, err = u.parseFieldValue(entry, num, wt, pos, end, objAddr, depth)
		if err != nil {
			return err
		}
	}
	if pos != end {
		return fmt.Errorf("%w: field overruns message bounds", ErrMalformed)
	}
	// End of message closes any open region (§4.4.8).
	if u.open != nil && u.open.obj == objAddr {
		if err := u.closeOpenRegion(); err != nil {
			return err
		}
	}
	return nil
}

func wireTypeCompatible(e adt.Entry, wt wire.Type) bool {
	natural := e.Kind.WireType()
	if wt == natural {
		return true
	}
	if e.Repeated && e.Kind != schema.KindMessage && e.Kind.Class() != schema.ClassBytesLike {
		return wt == wire.TypeBytes
	}
	return false
}

func (u *Unit) skipValue(pos, end uint64, wt wire.Type) (uint64, error) {
	u.fsm(1)
	switch wt {
	case wire.TypeVarint:
		_, n, err := u.readVarint(pos, end)
		return pos + n, err
	case wire.TypeFixed32:
		if pos+4 > end {
			return 0, ErrMalformed
		}
		return pos + 4, nil
	case wire.TypeFixed64:
		if pos+8 > end {
			return 0, ErrMalformed
		}
		return pos + 8, nil
	case wire.TypeBytes:
		n, vn, err := u.readVarint(pos, end)
		if err != nil {
			return 0, err
		}
		if pos+vn+n > end {
			return 0, ErrMalformed
		}
		u.fsm(float64((n + u.Cfg.MemloaderWidth - 1) / u.Cfg.MemloaderWidth))
		return pos + vn + n, nil
	default:
		return 0, fmt.Errorf("%w: deprecated group wire type", ErrMalformed)
	}
}

// decodeScalar decodes one scalar value at pos, returning the stored bit
// pattern (sign-extended where the layout requires).
func (u *Unit) decodeScalar(e adt.Entry, pos, end uint64) (uint64, uint64, error) {
	switch e.Kind.WireType() {
	case wire.TypeFixed32:
		if pos+4 > end {
			return 0, 0, ErrMalformed
		}
		v, err := u.Mem.Read32(pos)
		if err != nil {
			return 0, 0, err
		}
		u.overlapped(pos, 4)
		if e.Kind == schema.KindSfixed32 {
			return uint64(int64(int32(v))), 4, nil
		}
		return uint64(v), 4, nil
	case wire.TypeFixed64:
		if pos+8 > end {
			return 0, 0, ErrMalformed
		}
		v, err := u.Mem.Read64(pos)
		if err != nil {
			return 0, 0, err
		}
		u.overlapped(pos, 8)
		return v, 8, nil
	default:
		v, n, err := u.readVarint(pos, end)
		if err != nil {
			return 0, 0, err
		}
		// Zig-zag decode is an additional combinational stage (§4.4.6),
		// not an extra cycle.
		switch e.Kind {
		case schema.KindSint32:
			return uint64(int64(wire.DecodeZigZag32(v))), n, nil
		case schema.KindSint64:
			return uint64(wire.DecodeZigZag64(v)), n, nil
		case schema.KindInt32, schema.KindEnum:
			return uint64(int64(int32(v))), n, nil
		case schema.KindUint32:
			return uint64(uint32(v)), n, nil
		case schema.KindBool:
			if v != 0 {
				return 1, n, nil
			}
			return 0, n, nil
		default:
			return v, n, nil
		}
	}
}

func scalarSlotSize(k schema.Kind) uint64 {
	switch k {
	case schema.KindBool:
		return 1
	case schema.KindInt32, schema.KindUint32, schema.KindSint32,
		schema.KindFixed32, schema.KindSfixed32, schema.KindFloat, schema.KindEnum:
		return 4
	default:
		return 8
	}
}

// writeSlot is a fire-and-forget store by the field data writer.
func (u *Unit) writeSlot(addr, size, bits uint64) error {
	if err := u.Inj.At(faults.SiteMemwriter); err != nil {
		return err
	}
	u.overlapped(addr, size)
	switch size {
	case 1:
		return u.Mem.Write8(addr, byte(bits))
	case 4:
		return u.Mem.Write32(addr, uint32(bits))
	default:
		return u.Mem.Write64(addr, bits)
	}
}

// arenaAlloc is a single-cycle pointer bump (§4.3).
func (u *Unit) arenaAlloc(n uint64) (uint64, error) {
	if err := u.Inj.At(faults.SiteArena); err != nil {
		return 0, err
	}
	u.fsm(1)
	addr, err := u.Arena.Alloc(n, 8)
	if err != nil {
		return 0, fmt.Errorf("deser: accelerator arena exhausted: %w", err)
	}
	u.stats.Allocs++
	u.stats.ArenaBytes += n
	return addr, nil
}

// copyStream copies n payload bytes from the memloader stream into an
// arena buffer at width bytes/cycle.
func (u *Unit) copyStream(dst, src, n uint64) error {
	if err := u.Inj.At(faults.SiteMemwriter); err != nil {
		return err
	}
	u.fsm(float64((n + u.Cfg.MemloaderWidth - 1) / u.Cfg.MemloaderWidth))
	u.overlapped(src, n)
	u.overlapped(dst, n)
	if n == 0 {
		return nil
	}
	s, err := u.Mem.View(src, n)
	if err != nil {
		return err
	}
	return u.Mem.WriteBytes(dst, s)
}

func (u *Unit) parseFieldValue(e adt.Entry, num int32, wt wire.Type, pos, end, objAddr uint64, depth int) (uint64, error) {
	slotAddr := objAddr + uint64(e.Offset)
	switch {
	case e.Kind == schema.KindMessage:
		return u.parseSubMessage(e, num, pos, end, objAddr, slotAddr, depth)
	case e.Kind.Class() == schema.ClassBytesLike:
		return u.parseString(e, num, pos, end, objAddr, slotAddr)
	case e.Repeated && wt == wire.TypeBytes:
		return u.parsePackedRun(e, num, objAddr, pos, end, slotAddr)
	case e.Repeated:
		// Unpacked repeated element: append to the open region.
		bits, n, err := u.decodeScalar(e, pos, end)
		if err != nil {
			return 0, err
		}
		u.fsm(1)
		u.appendOpen(objAddr, num, slotAddr, scalarSlotSize(e.Kind), bits)
		return pos + n, nil
	default:
		// Final write state for scalars (§4.4.6): single cycle; the
		// write itself is handled by the field data writer.
		bits, n, err := u.decodeScalar(e, pos, end)
		if err != nil {
			return 0, err
		}
		u.trace("scalarWrite", depth, num, pos, e.Kind.String())
		u.fsm(1)
		if err := u.writeSlot(slotAddr, scalarSlotSize(e.Kind), bits); err != nil {
			return 0, err
		}
		return pos + n, nil
	}
}

// parseString implements the string allocation and copy states (§4.4.7).
func (u *Unit) parseString(e adt.Entry, num int32, pos, end, objAddr, slotAddr uint64) (uint64, error) {
	u.trace("string", 0, num, pos, e.Kind.String())
	u.fsm(1) // length decode
	n, vn, err := u.readVarint(pos, end)
	if err != nil {
		return 0, err
	}
	pos += vn
	if pos+n > end {
		return 0, ErrMalformed
	}
	var dataAddr uint64
	if n > 0 {
		dataAddr, err = u.arenaAlloc(n)
		if err != nil {
			return 0, err
		}
		if err := u.copyStream(dataAddr, pos, n); err != nil {
			return 0, err
		}
		if u.Cfg.ValidateUTF8 && e.Kind == schema.KindString {
			// Validation is inline with the copy datapath: no extra
			// cycles, but invalid sequences fault the operation.
			s, err := u.Mem.View(pos, n)
			if err != nil {
				return 0, err
			}
			if !utf8.Valid(s) {
				return 0, ErrBadUTF8
			}
		}
	}
	if e.Repeated {
		// Element is a 16-byte string header appended to the open region.
		u.fsm(1)
		u.appendOpen2(objAddr, num, slotAddr, dataAddr, n)
	} else {
		// Header write is fire-and-forget via the field data writer.
		if err := u.writeSlot(slotAddr, 8, dataAddr); err != nil {
			return 0, err
		}
		if err := u.writeSlot(slotAddr+8, 8, n); err != nil {
			return 0, err
		}
	}
	return pos + n, nil
}

// parsePackedRun handles a packed repeated scalar run (§4.4.8): the
// elements are decoded into the field's open allocation region, so
// multiple packed runs of the same field (legal proto2: runs concatenate)
// and mixed packed/unpacked encodings accumulate into one vector. The
// region closes out like any other (next differing field or end of
// message).
func (u *Unit) parsePackedRun(e adt.Entry, num int32, objAddr, pos, end, slotAddr uint64) (uint64, error) {
	u.trace("packedRun", 0, num, pos, e.Kind.String())
	u.fsm(1)
	n, vn, err := u.readVarint(pos, end)
	if err != nil {
		return 0, err
	}
	pos += vn
	if pos+n > end {
		return 0, ErrMalformed
	}
	runEnd := pos + n
	es := scalarSlotSize(e.Kind)
	for pos < runEnd {
		bits, sn, err := u.decodeScalar(e, pos, runEnd)
		if err != nil {
			return 0, err
		}
		pos += sn
		u.appendOpen(objAddr, num, slotAddr, es, bits)
		if e.Kind.IsVarint() {
			// One combinational varint decode per cycle.
			u.fsm(1)
		}
	}
	if !e.Kind.IsVarint() {
		// Fixed-width packed data is format-converted at stream rate.
		u.fsm(float64((n + u.Cfg.MemloaderWidth - 1) / u.Cfg.MemloaderWidth))
	}
	if n == 0 {
		// An empty packed run still marks the field present with an
		// empty vector; open the region so close-out writes the header.
		u.appendNone(objAddr, num, slotAddr, es)
	}
	return pos, nil
}

// appendNone opens (or re-marks) a region without adding elements, for
// empty packed runs.
func (u *Unit) appendNone(obj uint64, num int32, slot, elemSize uint64) {
	key := regionKey{obj, num}
	if _, ok := u.openRegions[key]; !ok {
		u.openRegions[key] = &openRegion{elemSize: elemSize, slot: slot}
	}
	u.open = &key
}

// parseSubMessage implements the sub-message handling states (§4.4.9).
func (u *Unit) parseSubMessage(e adt.Entry, num int32, pos, end, objAddr, slotAddr uint64, depth int) (uint64, error) {
	u.fsm(1) // header (length) decode
	n, vn, err := u.readVarint(pos, end)
	if err != nil {
		return 0, err
	}
	pos += vn
	if pos+n > end {
		return 0, ErrMalformed
	}
	// Fetch the sub-message type's ADT header for default instance info.
	// (The recursive parse charges the header load once on entry.)
	subHeader, err := adt.ReadHeader(u.Mem, e.SubADT)
	if err != nil {
		return 0, err
	}

	// Allocate and initialize the sub-object: pointer bump plus
	// streaming out the default-instance image.
	var subAddr uint64
	adopt := false
	if !e.Repeated {
		// Repeated occurrences of a singular sub-message merge: reuse an
		// already-allocated object.
		existing, err := u.Mem.Read64(slotAddr)
		if err != nil {
			return 0, err
		}
		if existing != 0 {
			subAddr = existing
			adopt = true
		}
	}
	if !adopt {
		subAddr, err = u.arenaAlloc(subHeader.ObjectSize)
		if err != nil {
			return 0, err
		}
		buf, err := u.Mem.Slice(subAddr, subHeader.ObjectSize)
		if err != nil {
			return 0, err
		}
		for i := range buf {
			buf[i] = 0
		}
		// Default-instance initialization streams out through the field
		// data writer in the background; the FSM only spends the setup
		// cycle charged by arenaAlloc plus the vptr store below.
		u.fsm(1)
		u.overlapped(subAddr, subHeader.ObjectSize)
		if err := u.Mem.Write64(subAddr, subHeader.TypeID); err != nil {
			return 0, err
		}
		// Write the pointer into the parent.
		if e.Repeated {
			u.fsm(1)
			u.appendOpen(objAddr, num, slotAddr, 8, subAddr)
		} else {
			if err := u.writeSlot(slotAddr, 8, subAddr); err != nil {
				return 0, err
			}
		}
	}

	// Push the metadata stack and switch parsing context: update stack
	// entries, rebase the length tracking (§4.4.9).
	if err := u.Inj.At(faults.SiteStackSpill); err != nil {
		return 0, err
	}
	u.trace("subPush", depth, num, pos, "")
	u.fsm(4)
	if depth+1 > u.Cfg.OnChipStackDepth {
		u.stats.StackSpills++
		u.stats.SpillCycles += u.Cfg.SpillPenalty
		u.fsm(u.Cfg.SpillPenalty)
	}
	// A sub-message parse must not leave the parent's open region
	// dangling across its own fields; hardware closes it on the next
	// differing field, which the recursive call's first field triggers.
	if err := u.parseMessage(e.SubADT, subAddr, pos, n, depth+1); err != nil {
		return 0, err
	}
	// Pop and restore the parent's context.
	u.trace("subPop", depth, num, pos, "")
	u.fsm(2)
	if depth+1 > u.Cfg.OnChipStackDepth {
		u.stats.SpillCycles += u.Cfg.SpillPenalty
		u.fsm(u.Cfg.SpillPenalty)
	}
	return pos + n, nil
}

// appendOpen appends a scalar or pointer element to the open region for
// (obj, num), opening it if needed. The region survives a close-out so a
// reopened field (interleaved encoding) re-emits the complete vector,
// preserving proto2 concatenation semantics at the cost of a dead arena
// buffer — the same trade hardware would make.
func (u *Unit) appendOpen(obj uint64, num int32, slot, elemSize, value uint64) {
	key := regionKey{obj, num}
	r, ok := u.openRegions[key]
	if !ok {
		r = &openRegion{elemSize: elemSize, slot: slot}
		u.openRegions[key] = r
	}
	r.elems = append(r.elems, value)
	u.open = &key
}

// appendOpen2 appends a two-word element (a string header).
func (u *Unit) appendOpen2(obj uint64, num int32, slot, w0, w1 uint64) {
	key := regionKey{obj, num}
	r, ok := u.openRegions[key]
	if !ok {
		r = &openRegion{elemSize: 16, slot: slot}
		u.openRegions[key] = r
	}
	r.elems = append(r.elems, w0, w1)
	u.open = &key
}

// closeOpenRegion writes out the current open allocation region: the
// element data into a fresh arena buffer and the final header into the
// repeated-field slot (§4.4.8).
func (u *Unit) closeOpenRegion() error {
	key := *u.open
	u.open = nil
	r := u.openRegions[key]
	if u.tracing() {
		u.trace("closeOut", 0, key.num, 0, fmt.Sprintf("%d elems", len(r.elems)))
	}

	words := uint64(len(r.elems))
	count := words
	if r.elemSize == 16 {
		count = words / 2
	}
	var bufAddr uint64
	var err error
	if count > 0 {
		bufAddr, err = u.arenaAlloc(count * r.elemSize)
		if err != nil {
			return err
		}
		switch r.elemSize {
		case 16:
			for i := uint64(0); i < count; i++ {
				if err := u.writeSlot(bufAddr+i*16, 8, r.elems[2*i]); err != nil {
					return err
				}
				if err := u.writeSlot(bufAddr+i*16+8, 8, r.elems[2*i+1]); err != nil {
					return err
				}
			}
		default:
			for i := uint64(0); i < count; i++ {
				if err := u.writeSlot(bufAddr+i*r.elemSize, r.elemSize, r.elems[i]); err != nil {
					return err
				}
			}
		}
	}
	// Close-out cycle: write the final header (§4.4.8).
	u.fsm(1)
	if err := u.writeSlot(r.slot, 8, bufAddr); err != nil {
		return err
	}
	if err := u.writeSlot(r.slot+8, 8, count); err != nil {
		return err
	}
	return u.writeSlot(r.slot+16, 8, count)
}
