package deser

import (
	"bytes"
	"math/rand"
	"testing"

	"protoacc/internal/accel/adt"
	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

// rig assembles the simulated SoC pieces a deserialization needs.
type rig struct {
	mem   *mem.Memory
	arena *mem.Allocator
	heap  *mem.Allocator
	reg   *layout.Registry
	mat   *layout.Materializer
	adts  *adt.Set
	unit  *Unit
}

func newRig(t *testing.T, cfg Config, roots ...*schema.Message) *rig {
	t.Helper()
	m := mem.New()
	adtAlloc := mem.NewAllocator(m.Map("adt", 1<<20))
	heap := mem.NewAllocator(m.Map("heap", 64<<20))
	arena := mem.NewAllocator(m.Map("accel-arena", 64<<20))
	reg := layout.NewRegistry()
	set, err := adt.Build(m, adtAlloc, reg, roots...)
	if err != nil {
		t.Fatal(err)
	}
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	// The accelerator's "L1" is its internal buffering (ADT cache +
	// memloader buffers); it shares L2/LLC with the core (Figure 8).
	acfg := memmodel.DefaultConfig()
	_ = acfg
	return &rig{
		mem:   m,
		arena: arena,
		heap:  heap,
		reg:   reg,
		mat:   layout.NewMaterializer(m, heap, reg),
		adts:  set,
		unit:  New(m, sys.NewPort("accel"), arena, cfg),
	}
}

// deserialize runs the unit on wire bytes and returns the decoded message
// (read back from simulated memory) and the run's stats.
func (r *rig) deserialize(t *testing.T, typ *schema.Message, b []byte) (*dynamic.Message, Stats) {
	t.Helper()
	got, st, err := r.tryDeserialize(typ, b)
	if err != nil {
		t.Fatal(err)
	}
	return got, st
}

func (r *rig) tryDeserialize(typ *schema.Message, b []byte) (*dynamic.Message, Stats, error) {
	region := r.mem.Map("in", uint64(len(b))+1)
	if err := r.mem.WriteBytes(region.Base, b); err != nil {
		return nil, Stats{}, err
	}
	// User code allocates the top-level object (§4.4).
	objAddr, err := r.mat.AllocObject(typ)
	if err != nil {
		return nil, Stats{}, err
	}
	st, err := r.unit.Deserialize(r.adts.Addr(typ), objAddr, region.Base, uint64(len(b)))
	if err != nil {
		return nil, Stats{}, err
	}
	got, err := r.mat.Read(typ, objAddr)
	if err != nil {
		return nil, Stats{}, err
	}
	return got, st, nil
}

func richType() *schema.Message {
	sub := mustMessage("Sub",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "name", Number: 2, Kind: schema.KindString})
	return mustMessage("Rich",
		&schema.Field{Name: "i32", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s64", Number: 2, Kind: schema.KindSint64},
		&schema.Field{Name: "f", Number: 3, Kind: schema.KindFloat},
		&schema.Field{Name: "d", Number: 4, Kind: schema.KindDouble},
		&schema.Field{Name: "b", Number: 5, Kind: schema.KindBool},
		&schema.Field{Name: "s", Number: 6, Kind: schema.KindString},
		&schema.Field{Name: "sub", Number: 7, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "ri", Number: 8, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "rp", Number: 9, Kind: schema.KindInt64, Label: schema.LabelRepeated, Packed: true},
		&schema.Field{Name: "rs", Number: 10, Kind: schema.KindString, Label: schema.LabelRepeated},
		&schema.Field{Name: "rm", Number: 11, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated},
		&schema.Field{Name: "sf", Number: 12, Kind: schema.KindSfixed32},
	)
}

func populateRich(typ *schema.Message) *dynamic.Message {
	m := dynamic.New(typ)
	m.SetInt32(1, -42)
	m.SetInt64(2, -123456789)
	m.SetFloat(3, 2.5)
	m.SetDouble(4, -0.125)
	m.SetBool(5, true)
	m.SetString(6, "hello accelerator")
	s := m.MutableMessage(7)
	s.SetInt64(1, 99)
	s.SetString(2, "inner")
	for i := int32(0); i < 5; i++ {
		m.AddScalarBits(8, uint64(int64(i-2)))
		m.AddScalarBits(9, uint64(int64(i*1000)))
	}
	m.AddString(10, "first")
	m.AddString(10, "")
	m.AddString(10, "third-element")
	m.AddMessage(11).SetInt64(1, 1)
	m.AddMessage(11).SetString(2, "two")
	m.SetInt32(12, -7)
	return m
}

func TestDeserializeRich(t *testing.T) {
	typ := richType()
	msg := populateRich(typ)
	b, err := codec.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, DefaultConfig(), typ)
	got, st := r.deserialize(t, typ, b)
	if !msg.Equal(got) {
		t.Error("accelerator deserialization differs from source")
	}
	if st.Cycles <= 0 || st.FieldsParsed == 0 || st.Allocs == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesConsumed != uint64(len(b)) {
		t.Errorf("BytesConsumed = %d, want %d", st.BytesConsumed, len(b))
	}
}

func TestDeserializeRandomMatchesCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 80; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		b, err := codec.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		r := newRig(t, DefaultConfig(), typ)
		got, _ := r.deserialize(t, typ, b)
		want, err := codec.Unmarshal(typ, b)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got) {
			t.Fatalf("trial %d: accelerator output differs from software codec", trial)
		}
	}
}

func TestSingularSubMessageMerge(t *testing.T) {
	sub := mustMessage("Sub",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "b", Number: 2, Kind: schema.KindInt32})
	typ := mustMessage("M",
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindMessage, Message: sub})
	m1 := dynamic.New(typ)
	m1.MutableMessage(1).SetInt32(1, 5)
	m2 := dynamic.New(typ)
	m2.MutableMessage(1).SetInt32(2, 7)
	b1, _ := codec.Marshal(m1)
	b2, _ := codec.Marshal(m2)
	r := newRig(t, DefaultConfig(), typ)
	got, _ := r.deserialize(t, typ, append(b1, b2...))
	s := got.GetMessage(1)
	if s.GetInt32(1) != 5 || s.GetInt32(2) != 7 {
		t.Errorf("merge: a=%d b=%d", s.GetInt32(1), s.GetInt32(2))
	}
}

func TestInterleavedRepeatedReopens(t *testing.T) {
	// r=1, s="x", r=2: the open region closes at s and must reopen for
	// the second r element without losing the first.
	typ := mustMessage("M",
		&schema.Field{Name: "r", Number: 1, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString})
	var b []byte
	b = append(b, 0x08, 0x01) // r: 1
	b = append(b, 0x12, 0x01, 'x')
	b = append(b, 0x08, 0x02) // r: 2
	r := newRig(t, DefaultConfig(), typ)
	got, _ := r.deserialize(t, typ, b)
	vals := got.RepeatedScalarBits(1)
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Errorf("reopened region lost elements: %v", vals)
	}
	if got.GetString(2) != "x" {
		t.Error("string lost")
	}
}

func TestUnknownFieldSkipped(t *testing.T) {
	rich := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "z", Number: 5, Kind: schema.KindString})
	narrow := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})
	src := dynamic.New(rich)
	src.SetInt32(1, 9)
	src.SetString(5, "skip me please")
	b, _ := codec.Marshal(src)
	r := newRig(t, DefaultConfig(), narrow)
	got, _ := r.deserialize(t, narrow, b)
	if got.GetInt32(1) != 9 {
		t.Error("known field lost while skipping unknown")
	}
}

func TestDeepNestingSpills(t *testing.T) {
	rec := &schema.Message{Name: "R"}
	if err := rec.SetFields([]*schema.Field{
		{Name: "self", Number: 1, Kind: schema.KindMessage, Message: rec},
		{Name: "v", Number: 2, Kind: schema.KindInt32},
	}); err != nil {
		t.Fatal(err)
	}
	build := func(depth int) []byte {
		m := dynamic.New(rec)
		cur := m
		for i := 0; i < depth; i++ {
			cur = cur.MutableMessage(1)
		}
		cur.SetInt32(2, 1)
		b, _ := codec.Marshal(m)
		return b
	}
	cfg := DefaultConfig()
	r := newRig(t, cfg, rec)
	_, shallow := r.deserialize(t, rec, build(10))
	if shallow.StackSpills != 0 {
		t.Errorf("depth 10 spilled %d times", shallow.StackSpills)
	}
	r2 := newRig(t, cfg, rec)
	_, deep := r2.deserialize(t, rec, build(40))
	if deep.StackSpills == 0 {
		t.Error("depth 40 should spill past the on-chip stack")
	}
	if deep.MaxDepthSeen != 41 {
		t.Errorf("MaxDepthSeen = %d", deep.MaxDepthSeen)
	}
	// Architectural limit.
	r3 := newRig(t, cfg, rec)
	if _, _, err := r3.tryDeserialize(rec, build(150)); err == nil {
		t.Error("expected depth-limit error")
	}
}

func TestMalformedInputs(t *testing.T) {
	typ := richType()
	cases := map[string][]byte{
		"truncated tag":    {0x80},
		"truncated varint": {0x08, 0x80},
		"bad length":       {0x32, 0x7f, 0x01},
		"group tag":        {0x0b},
		"field zero":       {0x00, 0x00},
		"truncated fixed":  {0x1d, 0x01, 0x02},
	}
	for name, b := range cases {
		r := newRig(t, DefaultConfig(), typ)
		if _, _, err := r.tryDeserialize(typ, b); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestUTF8Validation(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindString},
		&schema.Field{Name: "by", Number: 2, Kind: schema.KindBytes})
	bad := []byte{0x0a, 0x02, 0xff, 0xfe} // field 1, invalid UTF-8
	cfg := DefaultConfig()
	cfg.ValidateUTF8 = true
	r := newRig(t, cfg, typ)
	if _, _, err := r.tryDeserialize(typ, bad); err == nil {
		t.Error("expected UTF-8 validation failure")
	}
	// bytes fields are not validated.
	badBytes := []byte{0x12, 0x02, 0xff, 0xfe}
	r2 := newRig(t, cfg, typ)
	if _, _, err := r2.tryDeserialize(typ, badBytes); err != nil {
		t.Errorf("bytes field should not be validated: %v", err)
	}
	// Valid text passes.
	good := []byte{0x0a, 0x05, 'h', 'e', 'l', 'l', 'o'}
	r3 := newRig(t, cfg, typ)
	if _, _, err := r3.tryDeserialize(typ, good); err != nil {
		t.Errorf("valid UTF-8 rejected: %v", err)
	}
}

func TestArenaExhaustion(t *testing.T) {
	typ := mustMessage("M", &schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	m := mem.New()
	adtAlloc := mem.NewAllocator(m.Map("adt", 1<<16))
	heap := mem.NewAllocator(m.Map("heap", 1<<16))
	arena := mem.NewAllocator(m.Map("accel-arena", 32)) // tiny arena
	reg := layout.NewRegistry()
	set, err := adt.Build(m, adtAlloc, reg, typ)
	if err != nil {
		t.Fatal(err)
	}
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	unit := New(m, sys.NewPort("accel"), arena, DefaultConfig())
	mat := layout.NewMaterializer(m, heap, reg)

	msg := dynamic.New(typ)
	msg.SetBytes(1, bytes.Repeat([]byte{1}, 1000))
	b, _ := codec.Marshal(msg)
	region := m.Map("in", uint64(len(b))+1)
	if err := m.WriteBytes(region.Base, b); err != nil {
		t.Fatal(err)
	}
	obj, err := mat.AllocObject(typ)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := unit.Deserialize(set.Addr(typ), obj, region.Base, uint64(len(b))); err == nil {
		t.Error("expected arena exhaustion error")
	}
}

func TestVarintThroughputRisesWithSize(t *testing.T) {
	// The paper's Figure 11a shape: deser throughput of varint fields
	// increases with the varint's encoded size.
	gbps := func(varintBytes int) float64 {
		typ := mustMessage("M",
			&schema.Field{Name: "a", Number: 1, Kind: schema.KindUint64},
			&schema.Field{Name: "b", Number: 2, Kind: schema.KindUint64},
			&schema.Field{Name: "c", Number: 3, Kind: schema.KindUint64},
			&schema.Field{Name: "d", Number: 4, Kind: schema.KindUint64},
			&schema.Field{Name: "e", Number: 5, Kind: schema.KindUint64})
		msg := dynamic.New(typ)
		v := uint64(1) << uint(7*varintBytes-1) // encodes to varintBytes bytes
		for n := int32(1); n <= 5; n++ {
			msg.SetUint64(n, v)
		}
		b, _ := codec.Marshal(msg)
		r := newRig(t, DefaultConfig(), typ)
		_, st := r.deserialize(t, typ, b)
		const freqGHz = 2.0
		return float64(len(b)) * 8 / (st.Cycles / freqGHz) // Gbit/s
	}
	small, large := gbps(1), gbps(9)
	if large <= small {
		t.Errorf("throughput should rise with varint size: 1B=%f 9B=%f", small, large)
	}
}

func TestStringThroughputMemcpyRegime(t *testing.T) {
	gbps := func(n int) float64 {
		typ := mustMessage("M", &schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
		msg := dynamic.New(typ)
		msg.SetBytes(1, bytes.Repeat([]byte{'x'}, n))
		b, _ := codec.Marshal(msg)
		r := newRig(t, DefaultConfig(), typ)
		_, st := r.deserialize(t, typ, b)
		return float64(len(b)) * 8 / (st.Cycles / 2.0)
	}
	short, long := gbps(8), gbps(1<<20)
	if long < 10*short {
		t.Errorf("long strings should approach memcpy rates: short=%f long=%f Gbit/s", short, long)
	}
	// A 1 MiB copy is DRAM-bound, not datapath-bound; the paper's
	// Figure 11c shows the accelerated system in the ~20-25 Gbit/s range
	// for very long strings.
	if long < 15 {
		t.Errorf("long-string throughput = %f Gbit/s, implausibly low", long)
	}
}

func TestEmptyInput(t *testing.T) {
	typ := richType()
	r := newRig(t, DefaultConfig(), typ)
	got, st := r.deserialize(t, typ, nil)
	if len(got.PresentFieldNumbers()) != 0 {
		t.Error("empty input should produce empty message")
	}
	if st.Cycles <= 0 {
		t.Error("dispatch overhead should still be charged")
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
