// Package layout computes the C++-equivalent in-memory object layout of
// proto2 message types and materializes dynamic messages into (and out of)
// simulated memory. It models what protoc's generated C++ classes look like
// at the byte level (§2.1.3 of the paper), with the paper's accelerator
// modifications applied (§4.2):
//
//   - word 0 holds the vptr (modelled as a registry-assigned type id),
//   - the hasbits bit field is stored in the accelerator's sparse
//     representation — one bit per field number in [min, max], directly
//     indexable by (fieldNumber - min) — rather than protoc's dense packing,
//   - scalar fields occupy naturally-aligned slots of their C++ width,
//   - string/bytes fields are a 16-byte {data pointer, length} header
//     (std::string with its small-string optimization modelled in timing,
//     not layout),
//   - sub-message fields are 8-byte pointers,
//   - repeated fields are a 24-byte {data pointer, length, capacity} header
//     (RepeatedField/RepeatedPtrField).
//
// Repeated fields set their hasbit when non-empty so the accelerator's
// serializer frontend (which scans hasbits) can discover them; the C++
// library tracks repeated presence via size instead, a bookkeeping
// difference with no wire-format effect.
package layout

import (
	"fmt"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
)

// Slot and header sizes, in bytes.
const (
	PtrSize            = 8
	VptrOffset         = 0
	HasbitsOffset      = 8 // hasbits always follow the vptr
	StringHeaderSize   = 16
	RepeatedHeaderSize = 24
)

// FieldLayout describes one field's inline slot within the object.
type FieldLayout struct {
	Field  *schema.Field
	Offset uint64 // byte offset within the object
	Slot   uint64 // inline slot size in bytes
}

// Layout describes the complete object layout of one message type.
type Layout struct {
	Type         *schema.Message
	Size         uint64 // total object size, 8-byte aligned
	HasbitsWords int    // 64-bit words of sparse hasbits
	MinField     int32
	MaxField     int32
	Fields       []FieldLayout // in field-number order

	byNumber map[int32]*FieldLayout
}

// FieldByNumber returns the layout of field num, or nil.
func (l *Layout) FieldByNumber(num int32) *FieldLayout {
	return l.byNumber[num]
}

// HasbitsBytes returns the size of the hasbits array in bytes.
func (l *Layout) HasbitsBytes() uint64 { return uint64(l.HasbitsWords) * 8 }

// FieldsOffset returns the offset of the first field slot.
func (l *Layout) FieldsOffset() uint64 { return HasbitsOffset + l.HasbitsBytes() }

// slotFor returns (size, alignment) of a field's inline slot.
func slotFor(f *schema.Field) (uint64, uint64) {
	if f.Repeated() {
		return RepeatedHeaderSize, PtrSize
	}
	switch f.Kind {
	case schema.KindMessage:
		return PtrSize, PtrSize
	case schema.KindString, schema.KindBytes:
		return StringHeaderSize, PtrSize
	case schema.KindBool:
		return 1, 1
	case schema.KindInt32, schema.KindUint32, schema.KindSint32,
		schema.KindFixed32, schema.KindSfixed32, schema.KindFloat, schema.KindEnum:
		return 4, 4
	default:
		return 8, 8
	}
}

// elemSize returns the per-element size within a repeated field's buffer.
func elemSize(f *schema.Field) uint64 {
	switch f.Kind {
	case schema.KindMessage:
		return PtrSize
	case schema.KindString, schema.KindBytes:
		return StringHeaderSize
	case schema.KindBool:
		return 1
	case schema.KindInt32, schema.KindUint32, schema.KindSint32,
		schema.KindFixed32, schema.KindSfixed32, schema.KindFloat, schema.KindEnum:
		return 4
	default:
		return 8
	}
}

// Compute builds the layout for one message type.
func Compute(t *schema.Message) *Layout {
	l := &Layout{
		Type:     t,
		MinField: t.MinFieldNumber(),
		MaxField: t.MaxFieldNumber(),
		byNumber: make(map[int32]*FieldLayout, len(t.Fields)),
	}
	if r := t.FieldNumberRange(); r > 0 {
		l.HasbitsWords = int((r + 63) / 64)
	}
	off := l.FieldsOffset()
	for _, f := range t.Fields {
		size, align := slotFor(f)
		off = (off + align - 1) &^ (align - 1)
		l.Fields = append(l.Fields, FieldLayout{Field: f, Offset: off, Slot: size})
		off += size
	}
	l.Size = (off + 7) &^ 7
	for i := range l.Fields {
		l.byNumber[l.Fields[i].Field.Number] = &l.Fields[i]
	}
	return l
}

// Registry caches layouts and assigns type ids (the simulated vptr values)
// for every message type reachable from the registered roots.
type Registry struct {
	layouts map[*schema.Message]*Layout
	ids     map[*schema.Message]uint64
	byID    map[uint64]*schema.Message
	nextID  uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		layouts: make(map[*schema.Message]*Layout),
		ids:     make(map[*schema.Message]uint64),
		byID:    make(map[uint64]*schema.Message),
		nextID:  1,
	}
}

// Reset empties the registry and restarts type-id assignment from 1, as
// if freshly constructed. Used when recycling a System so a re-registered
// schema receives the same ids (and therefore identical simulated vptr
// values) as on a fresh System.
func (r *Registry) Reset() {
	clear(r.layouts)
	clear(r.ids)
	clear(r.byID)
	r.nextID = 1
}

// Register computes layouts for t and everything reachable from it.
func (r *Registry) Register(t *schema.Message) {
	t.Walk(func(m *schema.Message) {
		if _, ok := r.layouts[m]; ok {
			return
		}
		r.layouts[m] = Compute(m)
		id := r.nextID
		r.nextID++
		r.ids[m] = id
		r.byID[id] = m
	})
}

// Layout returns the layout for t, registering it if needed.
func (r *Registry) Layout(t *schema.Message) *Layout {
	if l, ok := r.layouts[t]; ok {
		return l
	}
	r.Register(t)
	return r.layouts[t]
}

// TypeID returns the simulated vptr value for t.
func (r *Registry) TypeID(t *schema.Message) uint64 {
	if id, ok := r.ids[t]; ok {
		return id
	}
	r.Register(t)
	return r.ids[t]
}

// TypeByID returns the type with the given id, or nil.
func (r *Registry) TypeByID(id uint64) *schema.Message { return r.byID[id] }

// Materializer writes dynamic messages into simulated memory using a
// registry's layouts and reads them back. The CPU baseline models and the
// accelerator models both operate on objects it produces.
type Materializer struct {
	Mem  *mem.Memory
	Heap *mem.Allocator
	Reg  *Registry
}

// NewMaterializer creates a materializer allocating from heap.
func NewMaterializer(m *mem.Memory, heap *mem.Allocator, reg *Registry) *Materializer {
	return &Materializer{Mem: m, Heap: heap, Reg: reg}
}

// AllocObject allocates a zeroed object of type t with its vptr set and
// returns its address: the simulated `new T()` against a default instance.
func (ma *Materializer) AllocObject(t *schema.Message) (uint64, error) {
	l := ma.Reg.Layout(t)
	addr, err := ma.Heap.Alloc(l.Size, 8)
	if err != nil {
		return 0, err
	}
	// Freshly mapped memory is zero, but the heap may recycle after
	// Reset; clear explicitly.
	buf, err := ma.Mem.Slice(addr, l.Size)
	if err != nil {
		return 0, err
	}
	for i := range buf {
		buf[i] = 0
	}
	if err := ma.Mem.Write64(addr+VptrOffset, ma.Reg.TypeID(t)); err != nil {
		return 0, err
	}
	return addr, nil
}

// setHasbit sets the sparse hasbit for field num in the object at addr.
func (ma *Materializer) setHasbit(addr uint64, l *Layout, num int32) error {
	idx := uint64(num - l.MinField)
	wordAddr := addr + HasbitsOffset + (idx/64)*8
	w, err := ma.Mem.Read64(wordAddr)
	if err != nil {
		return err
	}
	return ma.Mem.Write64(wordAddr, w|1<<(idx%64))
}

// Hasbit reads the sparse hasbit for field num of the object at addr.
func (ma *Materializer) Hasbit(addr uint64, l *Layout, num int32) (bool, error) {
	idx := uint64(num - l.MinField)
	w, err := ma.Mem.Read64(addr + HasbitsOffset + (idx/64)*8)
	if err != nil {
		return false, err
	}
	return w>>(idx%64)&1 == 1, nil
}

// Write materializes m into simulated memory and returns the object's
// address.
func (ma *Materializer) Write(m *dynamic.Message) (uint64, error) {
	addr, err := ma.AllocObject(m.Type())
	if err != nil {
		return 0, err
	}
	return addr, ma.WriteInto(m, addr)
}

// WriteInto materializes m into an already-allocated object at addr.
func (ma *Materializer) WriteInto(m *dynamic.Message, addr uint64) error {
	l := ma.Reg.Layout(m.Type())
	for _, fl := range l.Fields {
		f := fl.Field
		if !m.Has(f.Number) {
			continue
		}
		if err := ma.setHasbit(addr, l, f.Number); err != nil {
			return err
		}
		slotAddr := addr + fl.Offset
		var err error
		switch {
		case f.Repeated():
			err = ma.writeRepeated(m, f, slotAddr)
		case f.Kind == schema.KindMessage:
			sub := m.GetMessage(f.Number)
			var subAddr uint64
			if sub != nil {
				subAddr, err = ma.Write(sub)
				if err != nil {
					return err
				}
			}
			err = ma.Mem.Write64(slotAddr, subAddr)
		case f.Kind.Class() == schema.ClassBytesLike:
			err = ma.writeString(slotAddr, m.GetBytes(f.Number))
		default:
			err = ma.writeScalarSlot(slotAddr, fl.Slot, m.ScalarBits(f.Number))
		}
		if err != nil {
			return fmt.Errorf("layout: %s.%s: %w", m.Type().Name, f.Name, err)
		}
	}
	return nil
}

func (ma *Materializer) writeScalarSlot(addr, slot, bits uint64) error {
	switch slot {
	case 1:
		return ma.Mem.Write8(addr, byte(bits))
	case 4:
		return ma.Mem.Write32(addr, uint32(bits))
	default:
		return ma.Mem.Write64(addr, bits)
	}
}

func (ma *Materializer) readScalarSlot(addr, slot uint64, k schema.Kind) (uint64, error) {
	switch slot {
	case 1:
		b, err := ma.Mem.Read8(addr)
		return uint64(b), err
	case 4:
		v, err := ma.Mem.Read32(addr)
		if err != nil {
			return 0, err
		}
		// Signed 32-bit kinds are stored sign-extended in dynamic messages.
		switch k {
		case schema.KindInt32, schema.KindSint32, schema.KindSfixed32, schema.KindEnum:
			return uint64(int64(int32(v))), nil
		}
		return uint64(v), nil
	default:
		return ma.Mem.Read64(addr)
	}
}

// writeString allocates the payload and fills a {ptr, len} header.
func (ma *Materializer) writeString(headerAddr uint64, data []byte) error {
	var dataAddr uint64
	if len(data) > 0 {
		var err error
		dataAddr, err = ma.Heap.Alloc(uint64(len(data)), 8)
		if err != nil {
			return err
		}
		if err := ma.Mem.WriteBytes(dataAddr, data); err != nil {
			return err
		}
	}
	if err := ma.Mem.Write64(headerAddr, dataAddr); err != nil {
		return err
	}
	return ma.Mem.Write64(headerAddr+8, uint64(len(data)))
}

// readString reads a {ptr, len} header and its payload.
func (ma *Materializer) readString(headerAddr uint64) ([]byte, error) {
	ptr, err := ma.Mem.Read64(headerAddr)
	if err != nil {
		return nil, err
	}
	n, err := ma.Mem.Read64(headerAddr + 8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	data := make([]byte, n)
	return data, ma.Mem.ReadBytes(ptr, data)
}

func (ma *Materializer) writeRepeated(m *dynamic.Message, f *schema.Field, slotAddr uint64) error {
	n := uint64(m.Len(f.Number))
	es := elemSize(f)
	var bufAddr uint64
	if n > 0 {
		var err error
		bufAddr, err = ma.Heap.Alloc(n*es, 8)
		if err != nil {
			return err
		}
		switch {
		case f.Kind == schema.KindMessage:
			for i, sub := range m.RepeatedMessages(f.Number) {
				subAddr, err := ma.Write(sub)
				if err != nil {
					return err
				}
				if err := ma.Mem.Write64(bufAddr+uint64(i)*es, subAddr); err != nil {
					return err
				}
			}
		case f.Kind.Class() == schema.ClassBytesLike:
			for i, b := range m.RepeatedBytes(f.Number) {
				if err := ma.writeString(bufAddr+uint64(i)*es, b); err != nil {
					return err
				}
			}
		default:
			for i, bits := range m.RepeatedScalarBits(f.Number) {
				if err := ma.writeScalarSlot(bufAddr+uint64(i)*es, es, bits); err != nil {
					return err
				}
			}
		}
	}
	if err := ma.Mem.Write64(slotAddr, bufAddr); err != nil {
		return err
	}
	if err := ma.Mem.Write64(slotAddr+8, n); err != nil {
		return err
	}
	return ma.Mem.Write64(slotAddr+16, n) // capacity == length after materialization
}

// Read reconstructs a dynamic message of type t from the object at addr,
// validating the object's vptr against t.
func (ma *Materializer) Read(t *schema.Message, addr uint64) (*dynamic.Message, error) {
	l := ma.Reg.Layout(t)
	vptr, err := ma.Mem.Read64(addr + VptrOffset)
	if err != nil {
		return nil, err
	}
	if vptr != ma.Reg.TypeID(t) {
		return nil, fmt.Errorf("layout: object at 0x%x has vptr %d, want %d (%s)", addr, vptr, ma.Reg.TypeID(t), t.Name)
	}
	m := dynamic.New(t)
	for _, fl := range l.Fields {
		f := fl.Field
		present, err := ma.Hasbit(addr, l, f.Number)
		if err != nil {
			return nil, err
		}
		if !present {
			continue
		}
		slotAddr := addr + fl.Offset
		switch {
		case f.Repeated():
			if err := ma.readRepeated(m, f, slotAddr); err != nil {
				return nil, err
			}
		case f.Kind == schema.KindMessage:
			ptr, err := ma.Mem.Read64(slotAddr)
			if err != nil {
				return nil, err
			}
			if ptr == 0 {
				m.SetMessage(f.Number, nil)
				continue
			}
			sub, err := ma.Read(f.Message, ptr)
			if err != nil {
				return nil, err
			}
			m.SetMessage(f.Number, sub)
		case f.Kind.Class() == schema.ClassBytesLike:
			b, err := ma.readString(slotAddr)
			if err != nil {
				return nil, err
			}
			m.SetBytes(f.Number, b)
		default:
			bits, err := ma.readScalarSlot(slotAddr, fl.Slot, f.Kind)
			if err != nil {
				return nil, err
			}
			m.SetScalarBits(f.Number, bits)
		}
	}
	return m, nil
}

func (ma *Materializer) readRepeated(m *dynamic.Message, f *schema.Field, slotAddr uint64) error {
	bufAddr, err := ma.Mem.Read64(slotAddr)
	if err != nil {
		return err
	}
	n, err := ma.Mem.Read64(slotAddr + 8)
	if err != nil {
		return err
	}
	es := elemSize(f)
	for i := uint64(0); i < n; i++ {
		elemAddr := bufAddr + i*es
		switch {
		case f.Kind == schema.KindMessage:
			ptr, err := ma.Mem.Read64(elemAddr)
			if err != nil {
				return err
			}
			sub, err := ma.Read(f.Message, ptr)
			if err != nil {
				return err
			}
			m.AddMessage(f.Number).Merge(sub)
		case f.Kind.Class() == schema.ClassBytesLike:
			b, err := ma.readString(elemAddr)
			if err != nil {
				return err
			}
			m.AddBytes(f.Number, b)
		default:
			bits, err := ma.readScalarSlot(elemAddr, es, f.Kind)
			if err != nil {
				return err
			}
			m.AddScalarBits(f.Number, bits)
		}
	}
	return nil
}

// ElemSize exposes the repeated-element width for the accelerator and CPU
// models.
func ElemSize(f *schema.Field) uint64 { return elemSize(f) }
