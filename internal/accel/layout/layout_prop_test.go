package layout

import (
	"math/rand"
	"sort"
	"testing"

	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
)

// TestLayoutInvariants property-checks the layout generator over random
// schemas: slots are disjoint, aligned, inside the object, and past the
// hasbits region; the hasbits region covers the field-number range.
func TestLayoutInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 300; trial++ {
		cfg := pbtest.DefaultSchemaConfig()
		cfg.MaxFieldNum = 1 + rng.Int31n(300) // exercise wide/sparse ranges
		typ := pbtest.RandomSchema(rng, cfg)
		typ.Walk(func(m *schema.Message) { checkLayout(t, m) })
	}
}

func checkLayout(t *testing.T, m *schema.Message) {
	t.Helper()
	l := Compute(m)

	// Hasbits sizing covers the range.
	if r := m.FieldNumberRange(); r > 0 {
		if got, want := l.HasbitsWords, int((r+63)/64); got != want {
			t.Fatalf("%s: hasbits words = %d, want %d", m.Name, got, want)
		}
	}

	type span struct{ lo, hi uint64 }
	spans := []span{{0, 8}, {HasbitsOffset, l.FieldsOffset()}} // vptr + hasbits
	for _, fl := range l.Fields {
		// Alignment.
		_, align := slotFor(fl.Field)
		if fl.Offset%align != 0 {
			t.Fatalf("%s.%s: offset %d not %d-aligned", m.Name, fl.Field.Name, fl.Offset, align)
		}
		// Inside the object, after the hasbits.
		if fl.Offset < l.FieldsOffset() || fl.Offset+fl.Slot > l.Size {
			t.Fatalf("%s.%s: slot [%d,%d) outside fields region [%d,%d)",
				m.Name, fl.Field.Name, fl.Offset, fl.Offset+fl.Slot, l.FieldsOffset(), l.Size)
		}
		spans = append(spans, span{fl.Offset, fl.Offset + fl.Slot})
	}
	// Disjointness.
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	for i := 1; i < len(spans); i++ {
		if spans[i].lo < spans[i-1].hi {
			t.Fatalf("%s: overlapping slots [%d,%d) and [%d,%d)",
				m.Name, spans[i-1].lo, spans[i-1].hi, spans[i].lo, spans[i].hi)
		}
	}
	// 8-byte-aligned total size.
	if l.Size%8 != 0 {
		t.Fatalf("%s: size %d not 8-aligned", m.Name, l.Size)
	}
	// Lookup consistency.
	for _, fl := range l.Fields {
		if got := l.FieldByNumber(fl.Field.Number); got == nil || got.Offset != fl.Offset {
			t.Fatalf("%s: FieldByNumber(%d) inconsistent", m.Name, fl.Field.Number)
		}
	}
}

// TestLayoutDeterministic: the layout is a pure function of the type.
func TestLayoutDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
	a, b := Compute(typ), Compute(typ)
	if a.Size != b.Size || len(a.Fields) != len(b.Fields) {
		t.Fatal("layout not deterministic")
	}
	for i := range a.Fields {
		if a.Fields[i].Offset != b.Fields[i].Offset {
			t.Fatal("field offsets not deterministic")
		}
	}
}
