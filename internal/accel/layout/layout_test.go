package layout

import (
	"math/rand"
	"testing"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
)

func newMat(t *testing.T, heapSize uint64) *Materializer {
	t.Helper()
	m := mem.New()
	heap := mem.NewAllocator(m.Map("heap", heapSize))
	return NewMaterializer(m, heap, NewRegistry())
}

func TestComputeOffsets(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "b", Number: 3, Kind: schema.KindBool},
		&schema.Field{Name: "i", Number: 4, Kind: schema.KindInt32},
		&schema.Field{Name: "d", Number: 5, Kind: schema.KindDouble},
		&schema.Field{Name: "s", Number: 6, Kind: schema.KindString},
		&schema.Field{Name: "r", Number: 7, Kind: schema.KindInt64, Label: schema.LabelRepeated},
		&schema.Field{Name: "m", Number: 8, Kind: schema.KindMessage, Message: mustMessage("Sub")},
	)
	l := Compute(typ)
	// Range 3..8 = 6 bits -> 1 hasbits word; fields start at 16.
	if l.HasbitsWords != 1 || l.FieldsOffset() != 16 {
		t.Fatalf("hasbits words=%d fields offset=%d", l.HasbitsWords, l.FieldsOffset())
	}
	get := func(n int32) FieldLayout { return *l.FieldByNumber(n) }
	if get(3).Offset != 16 || get(3).Slot != 1 {
		t.Errorf("bool at %d/%d", get(3).Offset, get(3).Slot)
	}
	if get(4).Offset != 20 || get(4).Slot != 4 { // aligned to 4
		t.Errorf("int32 at %d", get(4).Offset)
	}
	if get(5).Offset != 24 || get(5).Slot != 8 {
		t.Errorf("double at %d", get(5).Offset)
	}
	if get(6).Offset != 32 || get(6).Slot != StringHeaderSize {
		t.Errorf("string at %d", get(6).Offset)
	}
	if get(7).Offset != 48 || get(7).Slot != RepeatedHeaderSize {
		t.Errorf("repeated at %d", get(7).Offset)
	}
	if get(8).Offset != 72 || get(8).Slot != PtrSize {
		t.Errorf("msg ptr at %d", get(8).Offset)
	}
	if l.Size != 80 {
		t.Errorf("Size = %d", l.Size)
	}
}

func TestSparseHasbitsSizing(t *testing.T) {
	// Fields 1000..1100: range 101 -> 2 words, regardless of how few
	// fields are defined (the sparse representation of §4.2).
	typ := mustMessage("W",
		&schema.Field{Name: "a", Number: 1000, Kind: schema.KindBool},
		&schema.Field{Name: "b", Number: 1100, Kind: schema.KindBool},
	)
	l := Compute(typ)
	if l.HasbitsWords != 2 {
		t.Errorf("HasbitsWords = %d, want 2", l.HasbitsWords)
	}
	if l.MinField != 1000 || l.MaxField != 1100 {
		t.Errorf("bounds = %d..%d", l.MinField, l.MaxField)
	}
}

func TestEmptyMessageLayout(t *testing.T) {
	l := Compute(mustMessage("E"))
	if l.HasbitsWords != 0 || l.Size != 8 {
		t.Errorf("empty layout words=%d size=%d", l.HasbitsWords, l.Size)
	}
}

func TestRegistryIDs(t *testing.T) {
	sub := mustMessage("Sub", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	top := mustMessage("Top",
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindMessage, Message: sub})
	r := NewRegistry()
	r.Register(top)
	if r.TypeID(top) == r.TypeID(sub) {
		t.Error("distinct types should have distinct ids")
	}
	if r.TypeByID(r.TypeID(sub)) != sub {
		t.Error("TypeByID round trip failed")
	}
	if r.Layout(sub) == nil {
		t.Error("sub should be registered transitively")
	}
}

func TestMaterializeRoundTripSimple(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "i", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "neg", Number: 2, Kind: schema.KindSfixed32},
		&schema.Field{Name: "s", Number: 3, Kind: schema.KindString},
		&schema.Field{Name: "b", Number: 4, Kind: schema.KindBool},
		&schema.Field{Name: "d", Number: 5, Kind: schema.KindDouble},
	)
	ma := newMat(t, 1<<20)
	m := dynamic.New(typ)
	m.SetInt32(1, 42)
	m.SetInt32(2, -9)
	m.SetString(3, "hello world")
	m.SetBool(4, true)
	m.SetDouble(5, 3.14)

	addr, err := ma.Write(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ma.Read(typ, addr)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Error("materialize round trip not equal")
	}
}

func TestMaterializePresenceOnly(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "b", Number: 2, Kind: schema.KindInt32},
	)
	ma := newMat(t, 1<<16)
	m := dynamic.New(typ)
	m.SetInt32(1, 0) // present with zero value
	addr, _ := ma.Write(m)
	got, err := ma.Read(typ, addr)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has(1) || got.Has(2) {
		t.Error("presence bits wrong after round trip")
	}
}

func TestMaterializeNested(t *testing.T) {
	leaf := mustMessage("Leaf", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt64})
	mid := mustMessage("Mid",
		&schema.Field{Name: "l", Number: 1, Kind: schema.KindMessage, Message: leaf},
		&schema.Field{Name: "tag", Number: 2, Kind: schema.KindString})
	top := mustMessage("Top",
		&schema.Field{Name: "m", Number: 1, Kind: schema.KindMessage, Message: mid},
		&schema.Field{Name: "ms", Number: 2, Kind: schema.KindMessage, Message: mid, Label: schema.LabelRepeated})
	ma := newMat(t, 1<<20)

	m := dynamic.New(top)
	m.MutableMessage(1).MutableMessage(1).SetInt64(1, 77)
	m.GetMessage(1).SetString(2, "mid")
	e1 := m.AddMessage(2)
	e1.SetString(2, "first")
	m.AddMessage(2).MutableMessage(1).SetInt64(1, -1)

	addr, err := ma.Write(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ma.Read(top, addr)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Error("nested round trip not equal")
	}
}

func TestMaterializeRepeatedKinds(t *testing.T) {
	typ := mustMessage("R",
		&schema.Field{Name: "i", Number: 1, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString, Label: schema.LabelRepeated},
		&schema.Field{Name: "bl", Number: 3, Kind: schema.KindBool, Label: schema.LabelRepeated},
		&schema.Field{Name: "d", Number: 4, Kind: schema.KindDouble, Label: schema.LabelRepeated, Packed: true},
	)
	ma := newMat(t, 1<<20)
	m := dynamic.New(typ)
	for i := int32(0); i < 7; i++ {
		m.AddScalarBits(1, uint64(int64(-i)))
		m.AddScalarBits(3, uint64(i%2))
	}
	m.AddString(2, "")
	m.AddString(2, "nonempty")
	m.AddScalarBits(4, 0x3ff0000000000000)

	addr, err := ma.Write(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ma.Read(typ, addr)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Error("repeated round trip not equal")
	}
}

func TestVptrValidation(t *testing.T) {
	a := mustMessage("A", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	b := mustMessage("B", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	ma := newMat(t, 1<<16)
	ma.Reg.Register(a)
	ma.Reg.Register(b)
	addr, err := ma.Write(dynamic.New(a))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ma.Read(b, addr); err == nil {
		t.Error("reading with wrong type should fail vptr check")
	}
}

func TestHeapExhaustion(t *testing.T) {
	typ := mustMessage("M", &schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	ma := newMat(t, 64)
	m := dynamic.New(typ)
	m.SetBytes(1, make([]byte, 1024))
	if _, err := ma.Write(m); err == nil {
		t.Error("expected out-of-space error")
	}
}

func TestMaterializeRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		ma := newMat(t, 1<<22)
		addr, err := ma.Write(msg)
		if err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ma.Read(typ, addr)
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if !msg.Equal(got) {
			t.Fatalf("trial %d: round trip not equal", trial)
		}
	}
}

func TestHasbitHelpers(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "lo", Number: 10, Kind: schema.KindBool},
		&schema.Field{Name: "hi", Number: 100, Kind: schema.KindBool},
	)
	ma := newMat(t, 1<<16)
	l := ma.Reg.Layout(typ)
	if l.HasbitsWords != 2 { // range 91 bits
		t.Fatalf("words = %d", l.HasbitsWords)
	}
	addr, _ := ma.AllocObject(typ)
	if err := ma.setHasbit(addr, l, 100); err != nil {
		t.Fatal(err)
	}
	hi, _ := ma.Hasbit(addr, l, 100)
	lo, _ := ma.Hasbit(addr, l, 10)
	if !hi || lo {
		t.Errorf("hasbits: hi=%v lo=%v", hi, lo)
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
