// Package mops models the message-operations extension the paper sketches
// in §7 ("Accelerating other protobuf operations"): re-using the
// serializer/deserializer building blocks — ADT walks, hasbits scanning,
// arena allocation, streaming copies — behind new custom instructions for
// the clear, copy, and merge operators, which together account for another
// 17.1% of fleet-wide C++ protobuf cycles (Figure 2).
//
// Like the other units, the model is functionally exact (it transforms
// real objects in simulated memory, driven only by ADTs) and
// cycle-counted with the same conventions: blocking ADT loads, streaming
// fire-and-forget writes, single-cycle pointer-bump allocation.
package mops

import (
	"errors"
	"fmt"

	"protoacc/internal/accel/adt"
	"protoacc/internal/accel/layout"
	"protoacc/internal/faults"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
	"protoacc/internal/telemetry"
)

// Errors surfaced by the unit.
var (
	ErrTooDeep = errors.New("mops: nesting exceeds architectural limit")
	// ErrArenaShort is returned by Merge's validation pre-pass when the
	// arena cannot hold the merge's allocations. Because the pre-pass runs
	// before any mutation, the destination object is untouched.
	ErrArenaShort = errors.New("mops: arena too small for merge")
	// ErrPoisoned is returned when an operation fails after it has begun
	// mutating the destination object in ways arena rollback cannot
	// revert. The destination's state is undefined; the owning System must
	// not be reused without a full reset.
	ErrPoisoned = errors.New("mops: operation aborted mid-mutation; destination state undefined")
)

// Config holds the unit's parameters (shared with the deserializer's
// conventions).
type Config struct {
	CopyWidth        uint64 // streaming copy bytes per cycle
	OnChipStackDepth int
	SpillPenalty     float64
	MaxDepth         int
	HiddenLatency    uint64
}

// DefaultConfig returns parameters matching the other units.
func DefaultConfig() Config {
	return Config{
		CopyWidth:        16,
		OnChipStackDepth: 25,
		SpillPenalty:     12,
		MaxDepth:         100,
		HiddenLatency:    1,
	}
}

// Stats reports the unit's work. SpillCycles and ADTStallCycles are
// attribution trackers: they classify cycles already included in Cycles
// (metadata-stack spill penalties and blocking ADT-load stalls) without
// changing the charged totals.
type Stats struct {
	Cycles         float64
	SpillCycles    float64
	ADTStallCycles float64
	Clears         uint64
	Copies         uint64
	Merges         uint64
	Allocs         uint64
	BytesCopied    uint64
}

// Unit is the message-operations unit.
type Unit struct {
	Mem   *mem.Memory
	Port  *memmodel.Port
	Arena *mem.Allocator
	Cfg   Config

	// Tracer, when set and enabled, receives one span event per
	// operation (clear/copy/merge) on the unit's cumulative-cycle
	// timeline. Nil is valid and means no tracing.
	Tracer *telemetry.Tracer

	// Inj, when non-nil and enabled, injects simulated faults at the
	// unit's named sites: memloader faults on hasbits-scan loads,
	// memwriter faults on streaming copies, and arena exhaustion on
	// allocation. Clear and Copy trial freely (Clear is idempotent; Copy
	// writes only fresh arena memory, so arena rollback reverts it).
	// Merge trials only during its read-only validation pre-pass —
	// injection is suspended during the mutating phase, which validation
	// has guaranteed cannot fail (see Merge). Assigned by core.New; nil
	// is valid (injection off).
	Inj *faults.Injector

	// suspendInj masks injection during Merge's mutating phase.
	suspendInj bool

	// opStart is the cumulative cycle count when the current (or most
	// recent) operation began; Abort uses it to charge a failed attempt.
	opStart float64

	stats Stats
}

// inject is the unit's injection trial, masked during Merge's mutating
// phase.
func (u *Unit) inject(site faults.Site) error {
	if u.suspendInj {
		return nil
	}
	return u.Inj.At(site)
}

// New creates a message-operations unit.
func New(m *mem.Memory, port *memmodel.Port, arena *mem.Allocator, cfg Config) *Unit {
	return &Unit{Mem: m, Port: port, Arena: arena, Cfg: cfg}
}

// Stats returns cumulative statistics.
func (u *Unit) Stats() Stats { return u.stats }

// ResetStats clears the accumulators.
func (u *Unit) ResetStats() {
	u.stats = Stats{}
	u.suspendInj = false
	u.opStart = 0
}

// Abort closes out a failed operation's cycle accounting: it returns the
// cycles the aborted attempt consumed (already included in the cumulative
// Stats) and resynchronizes the op-start marker, so a spurious Abort —
// one not paired with a failed operation — charges nothing.
func (u *Unit) Abort() float64 {
	d := u.stats.Cycles - u.opStart
	u.opStart = u.stats.Cycles
	return d
}

// CollectTelemetry implements telemetry.Collector.
func (u *Unit) CollectTelemetry(emit func(name string, value float64)) {
	emit("cycles", u.stats.Cycles)
	emit("spill_cycles", u.stats.SpillCycles)
	emit("adt_stall_cycles", u.stats.ADTStallCycles)
	emit("clears", float64(u.stats.Clears))
	emit("copies", float64(u.stats.Copies))
	emit("merges", float64(u.stats.Merges))
	emit("allocs", float64(u.stats.Allocs))
	emit("bytes_copied", float64(u.stats.BytesCopied))
}

// traceOp emits one span event covering a whole operation: start is the
// unit's cumulative cycle count when the op was issued, and the duration
// is the op's cycle delta.
func (u *Unit) traceOp(name string, start float64) {
	if u.Tracer.Enabled() {
		u.Tracer.Emit(telemetry.Event{
			Unit: "mops", Name: name, Cycle: start, Dur: u.stats.Cycles - start,
		})
	}
}

func (u *Unit) fsm(c float64) { u.stats.Cycles += c }

func (u *Unit) blockingLoad(addr, size uint64) {
	lat := u.Port.Access(addr, size)
	if lat > u.Cfg.HiddenLatency {
		u.stats.Cycles += float64(lat - u.Cfg.HiddenLatency)
	}
}

// adtLoad is a blockingLoad of ADT-resident metadata (headers, entries);
// the stall is additionally attributed to the ADT-miss class.
func (u *Unit) adtLoad(addr, size uint64) {
	lat := u.Port.Access(addr, size)
	if lat > u.Cfg.HiddenLatency {
		stall := float64(lat - u.Cfg.HiddenLatency)
		u.stats.Cycles += stall
		u.stats.ADTStallCycles += stall
	}
}

func (u *Unit) overlapped(addr, size uint64) {
	lat := u.Port.StreamAccess(addr, size)
	if lat > u.Cfg.HiddenLatency {
		u.stats.Cycles += float64(lat-u.Cfg.HiddenLatency) / 4
	}
}

func (u *Unit) arenaAlloc(n uint64) (uint64, error) {
	if err := u.inject(faults.SiteArena); err != nil {
		return 0, err
	}
	u.fsm(1)
	addr, err := u.Arena.Alloc(n, 8)
	if err != nil {
		return 0, fmt.Errorf("mops: accelerator arena exhausted: %w", err)
	}
	u.stats.Allocs++
	return addr, nil
}

// streamCopy copies n bytes at CopyWidth per cycle.
func (u *Unit) streamCopy(dst, src, n uint64) error {
	if n == 0 {
		return nil
	}
	if err := u.inject(faults.SiteMemwriter); err != nil {
		return err
	}
	u.fsm(float64((n + u.Cfg.CopyWidth - 1) / u.Cfg.CopyWidth))
	u.overlapped(src, n)
	u.overlapped(dst, n)
	s, err := u.Mem.View(src, n)
	if err != nil {
		return err
	}
	return u.Mem.WriteBytes(dst, s)
}

// Clear implements do_proto_clear: reset all presence state of the object
// at objAddr (type ADT at adtAddr). The C++ Clear also resets cached
// sizes and lengths; presence is the architecturally visible part — a
// cleared field reads as absent.
func (u *Unit) Clear(adtAddr, objAddr uint64) (Stats, error) {
	before := u.stats
	u.opStart = before.Cycles
	defer u.traceOp("clear", before.Cycles)
	u.fsm(4) // dispatch
	h, err := adt.ReadHeader(u.Mem, adtAddr)
	if err != nil {
		return Stats{}, err
	}
	u.adtLoad(adtAddr, adt.HeaderSize)
	words := (uint64(h.FieldRange()) + 63) / 64
	for w := uint64(0); w < words; w++ {
		a := objAddr + h.HasbitsOffset + w*8
		u.fsm(1)
		u.overlapped(a, 8)
		if err := u.Mem.Write64(a, 0); err != nil {
			return Stats{}, err
		}
	}
	u.stats.Clears++
	return u.delta(before), nil
}

// Copy implements do_proto_copy: allocate a deep copy of the object at
// srcObj in the accelerator arena and return its address. The object
// image is stream-copied, then pointer-bearing present fields are fixed
// up by recursing through the ADT — the §7 re-use of the deserializer's
// allocation path and the serializer's hasbits scan.
func (u *Unit) Copy(adtAddr, srcObj uint64) (uint64, Stats, error) {
	before := u.stats
	u.opStart = before.Cycles
	defer u.traceOp("copy", before.Cycles)
	u.fsm(4)
	dst, err := u.copyTree(adtAddr, srcObj, 1)
	if err != nil {
		return 0, Stats{}, err
	}
	u.stats.Copies++
	return dst, u.delta(before), nil
}

func (u *Unit) copyTree(adtAddr, srcObj uint64, depth int) (uint64, error) {
	if depth > u.Cfg.MaxDepth {
		return 0, ErrTooDeep
	}
	if depth > u.Cfg.OnChipStackDepth {
		u.stats.SpillCycles += u.Cfg.SpillPenalty
		u.fsm(u.Cfg.SpillPenalty)
	}
	h, err := adt.ReadHeader(u.Mem, adtAddr)
	if err != nil {
		return 0, err
	}
	u.adtLoad(adtAddr, adt.HeaderSize)
	dstObj, err := u.arenaAlloc(h.ObjectSize)
	if err != nil {
		return 0, err
	}
	if err := u.streamCopy(dstObj, srcObj, h.ObjectSize); err != nil {
		return 0, err
	}
	u.stats.BytesCopied += h.ObjectSize

	// Fix up pointer-bearing fields, scanning hasbits like the
	// serializer frontend.
	return dstObj, u.scanPresent(h, adtAddr, srcObj, func(num int32, e adt.Entry) error {
		return u.fixupField(h, e, srcObj, dstObj, depth)
	})
}

// scanPresent walks the sparse hasbits and invokes fn for each present
// field, charging frontend-style scan cycles.
func (u *Unit) scanPresent(h adt.Header, adtAddr, objAddr uint64, fn func(int32, adt.Entry) error) error {
	rng := h.FieldRange()
	if rng == 0 {
		return nil
	}
	words := (uint64(rng) + 63) / 64
	hbBase := objAddr + h.HasbitsOffset
	for w := uint64(0); w < words; w++ {
		if err := u.inject(faults.SiteMemloader); err != nil {
			return err
		}
		u.fsm(1)
		u.blockingLoad(hbBase+w*8, 8)
	}
	for num := h.MinField; num <= h.MaxField; num++ {
		idx := uint64(num - h.MinField)
		word, err := u.Mem.Read64(hbBase + (idx/64)*8)
		if err != nil {
			return err
		}
		if word>>(idx%64)&1 == 0 {
			continue
		}
		u.fsm(1)
		entry, err := adt.ReadEntry(u.Mem, adtAddr, h, num)
		if err != nil {
			return fmt.Errorf("mops: hasbit set for undefined field %d: %w", num, err)
		}
		u.adtLoad(adtAddr+adt.HeaderSize+idx*adt.EntrySize, adt.EntrySize)
		if err := fn(num, entry); err != nil {
			return err
		}
	}
	return nil
}

// fixupField deep-copies the payload behind a pointer-bearing field of
// dstObj (whose inline image was already copied from srcObj).
func (u *Unit) fixupField(h adt.Header, e adt.Entry, srcObj, dstObj uint64, depth int) error {
	srcSlot := srcObj + uint64(e.Offset)
	dstSlot := dstObj + uint64(e.Offset)
	switch {
	case e.Repeated:
		return u.fixupRepeated(e, srcSlot, dstSlot, depth)
	case e.Kind == schema.KindMessage:
		ptr, err := u.Mem.Read64(srcSlot)
		if err != nil {
			return err
		}
		if ptr == 0 {
			return nil
		}
		sub, err := u.copyTree(e.SubADT, ptr, depth+1)
		if err != nil {
			return err
		}
		u.overlapped(dstSlot, 8)
		return u.Mem.Write64(dstSlot, sub)
	case e.Kind.Class() == schema.ClassBytesLike:
		return u.copyString(srcSlot, dstSlot)
	default:
		return nil // scalar: the image copy already handled it
	}
}

// copyString duplicates a {ptr, len} header's payload into the arena.
func (u *Unit) copyString(srcHdr, dstHdr uint64) error {
	ptr, err := u.Mem.Read64(srcHdr)
	if err != nil {
		return err
	}
	n, err := u.Mem.Read64(srcHdr + 8)
	if err != nil {
		return err
	}
	var dataAddr uint64
	if n > 0 {
		dataAddr, err = u.arenaAlloc(n)
		if err != nil {
			return err
		}
		if err := u.streamCopy(dataAddr, ptr, n); err != nil {
			return err
		}
		u.stats.BytesCopied += n
	}
	u.overlapped(dstHdr, 16)
	if err := u.Mem.Write64(dstHdr, dataAddr); err != nil {
		return err
	}
	return u.Mem.Write64(dstHdr+8, n)
}

func elemSize(e adt.Entry) uint64 {
	switch {
	case e.Kind == schema.KindMessage:
		return 8
	case e.Kind.Class() == schema.ClassBytesLike:
		return layout.StringHeaderSize
	case e.Kind == schema.KindBool:
		return 1
	case e.Kind == schema.KindInt32 || e.Kind == schema.KindUint32 ||
		e.Kind == schema.KindSint32 || e.Kind == schema.KindFixed32 ||
		e.Kind == schema.KindSfixed32 || e.Kind == schema.KindFloat ||
		e.Kind == schema.KindEnum:
		return 4
	default:
		return 8
	}
}

// fixupRepeated duplicates a repeated field's buffer (and, for pointer
// element types, the elements behind it).
func (u *Unit) fixupRepeated(e adt.Entry, srcSlot, dstSlot uint64, depth int) error {
	buf, err := u.Mem.Read64(srcSlot)
	if err != nil {
		return err
	}
	n, err := u.Mem.Read64(srcSlot + 8)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	es := elemSize(e)
	newBuf, err := u.arenaAlloc(n * es)
	if err != nil {
		return err
	}
	if err := u.streamCopy(newBuf, buf, n*es); err != nil {
		return err
	}
	u.stats.BytesCopied += n * es
	switch {
	case e.Kind == schema.KindMessage:
		for i := uint64(0); i < n; i++ {
			ptr, err := u.Mem.Read64(buf + i*8)
			if err != nil {
				return err
			}
			sub, err := u.copyTree(e.SubADT, ptr, depth+1)
			if err != nil {
				return err
			}
			if err := u.Mem.Write64(newBuf+i*8, sub); err != nil {
				return err
			}
		}
	case e.Kind.Class() == schema.ClassBytesLike:
		for i := uint64(0); i < n; i++ {
			if err := u.copyString(buf+i*es, newBuf+i*es); err != nil {
				return err
			}
		}
	}
	u.overlapped(dstSlot, 24)
	if err := u.Mem.Write64(dstSlot, newBuf); err != nil {
		return err
	}
	if err := u.Mem.Write64(dstSlot+8, n); err != nil {
		return err
	}
	return u.Mem.Write64(dstSlot+16, n)
}

// Merge implements do_proto_merge: merge the object at srcObj into dstObj
// with proto2 semantics — singular scalars and strings overwrite,
// singular sub-messages merge recursively, repeated fields concatenate
// (source elements deep-copied into the arena).
//
// Merge mutates live destination state in place, which arena rollback
// cannot revert, so it validates the whole operation with a zero-cycle
// read-only dry walk first (see validate.go): nesting depth, arena
// capacity, and every fault-injection trial happen before the first
// mutating write. A merge that starts mutating is therefore guaranteed to
// finish; if it nevertheless fails (a model invariant violation), the
// error wraps ErrPoisoned and the destination's state is undefined.
func (u *Unit) Merge(adtAddr, dstObj, srcObj uint64) (Stats, error) {
	before := u.stats
	u.opStart = before.Cycles
	defer u.traceOp("merge", before.Cycles)
	need, err := u.validateMerge(adtAddr, dstObj, srcObj, 1)
	if err != nil {
		return Stats{}, err
	}
	// +8 covers worst-case misalignment of the arena's current offset.
	if rem := u.Arena.Remaining(); need+8 > rem {
		return Stats{}, fmt.Errorf("%w: need ≤%d bytes, %d remaining", ErrArenaShort, need+8, rem)
	}
	u.fsm(4)
	u.suspendInj = true
	err = u.mergeTree(adtAddr, dstObj, srcObj, 1)
	u.suspendInj = false
	if err != nil {
		return Stats{}, fmt.Errorf("%w: %v", ErrPoisoned, err)
	}
	u.stats.Merges++
	return u.delta(before), nil
}

func (u *Unit) mergeTree(adtAddr, dstObj, srcObj uint64, depth int) error {
	if depth > u.Cfg.MaxDepth {
		return ErrTooDeep
	}
	if depth > u.Cfg.OnChipStackDepth {
		u.stats.SpillCycles += u.Cfg.SpillPenalty
		u.fsm(u.Cfg.SpillPenalty)
	}
	h, err := adt.ReadHeader(u.Mem, adtAddr)
	if err != nil {
		return err
	}
	u.adtLoad(adtAddr, adt.HeaderSize)
	return u.scanPresent(h, adtAddr, srcObj, func(num int32, e adt.Entry) error {
		// Set the destination hasbit (the hasbits writer path).
		idx := uint64(num - h.MinField)
		hbAddr := dstObj + h.HasbitsOffset + (idx/64)*8
		w, err := u.Mem.Read64(hbAddr)
		if err != nil {
			return err
		}
		dstHad := w>>(idx%64)&1 == 1
		if err := u.Mem.Write64(hbAddr, w|1<<(idx%64)); err != nil {
			return err
		}
		u.overlapped(hbAddr, 8)

		srcSlot := srcObj + uint64(e.Offset)
		dstSlot := dstObj + uint64(e.Offset)
		switch {
		case e.Repeated:
			return u.mergeRepeated(e, dstSlot, srcSlot, dstHad, depth)
		case e.Kind == schema.KindMessage:
			srcPtr, err := u.Mem.Read64(srcSlot)
			if err != nil {
				return err
			}
			if srcPtr == 0 {
				return nil
			}
			dstPtr := uint64(0)
			if dstHad {
				if dstPtr, err = u.Mem.Read64(dstSlot); err != nil {
					return err
				}
			}
			if dstPtr == 0 {
				sub, err := u.copyTree(e.SubADT, srcPtr, depth+1)
				if err != nil {
					return err
				}
				u.overlapped(dstSlot, 8)
				return u.Mem.Write64(dstSlot, sub)
			}
			return u.mergeTree(e.SubADT, dstPtr, srcPtr, depth+1)
		case e.Kind.Class() == schema.ClassBytesLike:
			return u.copyString(srcSlot, dstSlot)
		default:
			// Scalar overwrite: copy the slot image.
			u.fsm(1)
			return u.streamCopy(dstSlot, srcSlot, scalarSlot(e.Kind))
		}
	})
}

func scalarSlot(k schema.Kind) uint64 {
	switch k {
	case schema.KindBool:
		return 1
	case schema.KindInt32, schema.KindUint32, schema.KindSint32,
		schema.KindFixed32, schema.KindSfixed32, schema.KindFloat, schema.KindEnum:
		return 4
	default:
		return 8
	}
}

// mergeRepeated concatenates src's elements after dst's.
func (u *Unit) mergeRepeated(e adt.Entry, dstSlot, srcSlot uint64, dstHad bool, depth int) error {
	srcBuf, err := u.Mem.Read64(srcSlot)
	if err != nil {
		return err
	}
	srcN, err := u.Mem.Read64(srcSlot + 8)
	if err != nil {
		return err
	}
	if srcN == 0 {
		return nil
	}
	var dstBuf, dstN uint64
	if dstHad {
		if dstBuf, err = u.Mem.Read64(dstSlot); err != nil {
			return err
		}
		if dstN, err = u.Mem.Read64(dstSlot + 8); err != nil {
			return err
		}
	}
	es := elemSize(e)
	newBuf, err := u.arenaAlloc((dstN + srcN) * es)
	if err != nil {
		return err
	}
	if err := u.streamCopy(newBuf, dstBuf, dstN*es); err != nil {
		return err
	}
	if err := u.streamCopy(newBuf+dstN*es, srcBuf, srcN*es); err != nil {
		return err
	}
	u.stats.BytesCopied += (dstN + srcN) * es
	// Deep-copy the appended pointer elements.
	switch {
	case e.Kind == schema.KindMessage:
		for i := uint64(0); i < srcN; i++ {
			ptr, err := u.Mem.Read64(srcBuf + i*8)
			if err != nil {
				return err
			}
			sub, err := u.copyTree(e.SubADT, ptr, depth+1)
			if err != nil {
				return err
			}
			if err := u.Mem.Write64(newBuf+(dstN+i)*8, sub); err != nil {
				return err
			}
		}
	case e.Kind.Class() == schema.ClassBytesLike:
		for i := uint64(0); i < srcN; i++ {
			if err := u.copyString(srcBuf+i*es, newBuf+(dstN+i)*es); err != nil {
				return err
			}
		}
	}
	u.overlapped(dstSlot, 24)
	if err := u.Mem.Write64(dstSlot, newBuf); err != nil {
		return err
	}
	if err := u.Mem.Write64(dstSlot+8, dstN+srcN); err != nil {
		return err
	}
	return u.Mem.Write64(dstSlot+16, dstN+srcN)
}

func (u *Unit) delta(before Stats) Stats {
	u.opStart = u.stats.Cycles // close the op window; a spurious Abort charges nothing
	d := u.stats
	d.Cycles -= before.Cycles
	d.SpillCycles -= before.SpillCycles
	d.ADTStallCycles -= before.ADTStallCycles
	d.Clears -= before.Clears
	d.Copies -= before.Copies
	d.Merges -= before.Merges
	d.Allocs -= before.Allocs
	d.BytesCopied -= before.BytesCopied
	return d
}
