package mops

import (
	"math/rand"
	"testing"

	"protoacc/internal/accel/adt"
	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

type rig struct {
	mem  *mem.Memory
	mat  *layout.Materializer
	adts *adt.Set
	unit *Unit
}

func newRig(t *testing.T, roots ...*schema.Message) *rig {
	t.Helper()
	m := mem.New()
	adtAlloc := mem.NewAllocator(m.Map("adt", 1<<20))
	heap := mem.NewAllocator(m.Map("heap", 32<<20))
	arena := mem.NewAllocator(m.Map("arena", 32<<20))
	reg := layout.NewRegistry()
	set, err := adt.Build(m, adtAlloc, reg, roots...)
	if err != nil {
		t.Fatal(err)
	}
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	return &rig{
		mem:  m,
		mat:  layout.NewMaterializer(m, heap, reg),
		adts: set,
		unit: New(m, sys.NewPort("accel"), arena, DefaultConfig()),
	}
}

func testType() *schema.Message {
	sub := mustMessage("Sub",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString})
	return mustMessage("M",
		&schema.Field{Name: "i", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString},
		&schema.Field{Name: "sub", Number: 3, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "r", Number: 4, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "rs", Number: 5, Kind: schema.KindString, Label: schema.LabelRepeated},
		&schema.Field{Name: "rm", Number: 6, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated},
		&schema.Field{Name: "d", Number: 7, Kind: schema.KindDouble},
	)
}

func populated(t *schema.Message) *dynamic.Message {
	m := dynamic.New(t)
	m.SetInt64(1, -77)
	m.SetString(2, "hello mops")
	s := m.MutableMessage(3)
	s.SetInt32(1, 5)
	s.SetString(2, "inner")
	for i := int32(0); i < 4; i++ {
		m.AddScalarBits(4, uint64(int64(i)))
	}
	m.AddString(5, "alpha")
	m.AddString(5, "")
	m.AddMessage(6).SetInt32(1, 9)
	m.SetDouble(7, 2.5)
	return m
}

func TestClear(t *testing.T) {
	typ := testType()
	r := newRig(t, typ)
	msg := populated(typ)
	addr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.unit.Clear(r.adts.Addr(typ), addr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= 0 || st.Clears != 1 {
		t.Errorf("stats = %+v", st)
	}
	got, err := r.mat.Read(typ, addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PresentFieldNumbers()) != 0 {
		t.Errorf("cleared object still has fields: %v", got.PresentFieldNumbers())
	}
}

func TestCopyDeep(t *testing.T) {
	typ := testType()
	r := newRig(t, typ)
	msg := populated(typ)
	srcAddr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	dstAddr, st, err := r.unit.Copy(r.adts.Addr(typ), srcAddr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copies != 1 || st.Allocs == 0 || st.BytesCopied == 0 {
		t.Errorf("stats = %+v", st)
	}
	got, err := r.mat.Read(typ, dstAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.Equal(got) {
		t.Error("copy differs from source")
	}
	// Deep: clearing the copy must not disturb the source.
	if _, err := r.unit.Clear(r.adts.Addr(typ), dstAddr); err != nil {
		t.Fatal(err)
	}
	src, err := r.mat.Read(typ, srcAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.Equal(src) {
		t.Error("clearing the copy disturbed the source")
	}
}

func TestMergeMatchesDynamicSemantics(t *testing.T) {
	typ := testType()
	r := newRig(t, typ)
	dst := populated(typ)
	src := dynamic.New(typ)
	src.SetInt64(1, 42)         // overwrites
	src.SetString(2, "updated") // overwrites
	src.MutableMessage(3).SetInt32(1, 100)
	src.AddScalarBits(4, 1000) // concatenates
	src.AddString(5, "gamma")
	src.AddMessage(6).SetString(2, "second")

	dstAddr, err := r.mat.Write(dst)
	if err != nil {
		t.Fatal(err)
	}
	srcAddr, err := r.mat.Write(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.unit.Merge(r.adts.Addr(typ), dstAddr, srcAddr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Merges != 1 || st.Cycles <= 0 {
		t.Errorf("stats = %+v", st)
	}

	got, err := r.mat.Read(typ, dstAddr)
	if err != nil {
		t.Fatal(err)
	}
	want := dst.Clone()
	want.Merge(src)
	if !want.Equal(got) {
		t.Error("accelerated merge differs from dynamic.Merge semantics")
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	typ := testType()
	r := newRig(t, typ)
	src := populated(typ)
	dstAddr, err := r.mat.Write(dynamic.New(typ))
	if err != nil {
		t.Fatal(err)
	}
	srcAddr, err := r.mat.Write(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.unit.Merge(r.adts.Addr(typ), dstAddr, srcAddr); err != nil {
		t.Fatal(err)
	}
	got, err := r.mat.Read(typ, dstAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Equal(got) {
		t.Error("merge into empty should equal source")
	}
}

func TestRandomizedCopyMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 40; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		a := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		b := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		r := newRig(t, typ)

		aAddr, err := r.mat.Write(a)
		if err != nil {
			t.Fatal(err)
		}
		copyAddr, _, err := r.unit.Copy(r.adts.Addr(typ), aAddr)
		if err != nil {
			t.Fatalf("trial %d: copy: %v", trial, err)
		}
		gotCopy, err := r.mat.Read(typ, copyAddr)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(gotCopy) {
			t.Fatalf("trial %d: copy mismatch", trial)
		}

		bAddr, err := r.mat.Write(b)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.unit.Merge(r.adts.Addr(typ), copyAddr, bAddr); err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		gotMerge, err := r.mat.Read(typ, copyAddr)
		if err != nil {
			t.Fatal(err)
		}
		want := a.Clone()
		want.Merge(b)
		if !want.Equal(gotMerge) {
			t.Fatalf("trial %d: merge mismatch", trial)
		}
	}
}

func TestDepthLimit(t *testing.T) {
	rec := &schema.Message{Name: "R"}
	if err := rec.SetFields([]*schema.Field{
		{Name: "self", Number: 1, Kind: schema.KindMessage, Message: rec},
	}); err != nil {
		t.Fatal(err)
	}
	m := dynamic.New(rec)
	cur := m
	for i := 0; i < 150; i++ {
		cur = cur.MutableMessage(1)
	}
	r := newRig(t, rec)
	addr, err := r.mat.Write(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.unit.Copy(r.adts.Addr(rec), addr); err == nil {
		t.Error("expected depth error")
	}
}

func TestCopyCheaperThanReserialize(t *testing.T) {
	// The §7 rationale: copy on the accelerator is a streaming operation;
	// its cycle count should scale with object bytes, not field count
	// heavy-parse costs. Sanity: copying a large-string message costs
	// about its payload beats.
	typ := mustMessage("M", &schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	r := newRig(t, typ)
	msg := dynamic.New(typ)
	msg.SetBytes(1, make([]byte, 64<<10))
	addr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := r.unit.Copy(r.adts.Addr(typ), addr)
	if err != nil {
		t.Fatal(err)
	}
	beats := float64(64<<10) / 16
	if st.Cycles < beats || st.Cycles > 12*beats {
		t.Errorf("copy cycles = %f, want ~%f (streaming)", st.Cycles, beats)
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
