package mops

import (
	"fmt"

	"protoacc/internal/accel/adt"
	"protoacc/internal/faults"
	"protoacc/internal/pb/schema"
)

// Merge's validation pre-pass.
//
// Unlike Clear (idempotent) and Copy (writes only fresh arena memory, so
// an arena rollback reverts it completely), Merge rewrites live
// destination state in place: hasbits are set before field payloads land
// and repeated-field slots are redirected to newly-allocated buffers. A
// mid-merge abort therefore cannot be undone by arena truncation alone —
// the destination would be left pointing into scrubbed memory. Instead of
// attempting an unwindable mutation log, the unit validates the whole
// merge up front with a zero-cycle, read-only dry walk that mirrors every
// read the mutating phase will perform: it checks the nesting limit,
// accumulates an upper bound on the arena bytes the merge will allocate,
// and hosts all fault-injection trials for the operation. Any fault —
// injected, too-deep, arena shortfall, unmapped access — surfaces here,
// before the destination is touched, so an aborted merge is always clean.
//
// The walk charges no cycles and issues no memory-system accesses, so a
// fault-free merge's timing is bit-identical with or without validation.

// align8 rounds n up to the arena's 8-byte allocation alignment.
func align8(n uint64) uint64 { return (n + 7) &^ 7 }

// validateMerge dry-walks mergeTree, returning the arena bytes the
// mutating phase will allocate (an upper bound, alignment included).
func (u *Unit) validateMerge(adtAddr, dstObj, srcObj uint64, depth int) (uint64, error) {
	if depth > u.Cfg.MaxDepth {
		return 0, ErrTooDeep
	}
	h, err := adt.ReadHeader(u.Mem, adtAddr)
	if err != nil {
		return 0, err
	}
	var need uint64
	err = u.validateScan(h, adtAddr, srcObj, func(num int32, e adt.Entry) error {
		idx := uint64(num - h.MinField)
		dhw, err := u.Mem.Read64(dstObj + h.HasbitsOffset + (idx/64)*8)
		if err != nil {
			return err
		}
		dstHad := dhw>>(idx%64)&1 == 1
		srcSlot := srcObj + uint64(e.Offset)
		dstSlot := dstObj + uint64(e.Offset)
		switch {
		case e.Repeated:
			n, err := u.validateMergeRepeated(e, dstSlot, srcSlot, dstHad, depth)
			if err != nil {
				return err
			}
			need += n
			return nil
		case e.Kind == schema.KindMessage:
			srcPtr, err := u.Mem.Read64(srcSlot)
			if err != nil {
				return err
			}
			if srcPtr == 0 {
				return nil
			}
			dstPtr := uint64(0)
			if dstHad {
				if dstPtr, err = u.Mem.Read64(dstSlot); err != nil {
					return err
				}
			}
			var n uint64
			if dstPtr == 0 {
				n, err = u.validateCopy(e.SubADT, srcPtr, depth+1)
			} else {
				n, err = u.validateMerge(e.SubADT, dstPtr, srcPtr, depth+1)
			}
			if err != nil {
				return err
			}
			need += n
			return nil
		case e.Kind.Class() == schema.ClassBytesLike:
			n, err := u.validateString(srcSlot)
			if err != nil {
				return err
			}
			need += n
			return nil
		default:
			// Scalar overwrite: one memwriter store, no allocation.
			return u.inject(faults.SiteMemwriter)
		}
	})
	return need, err
}

// validateScan mirrors scanPresent's reads (hasbits words, ADT entries)
// without charging cycles or touching the memory system.
func (u *Unit) validateScan(h adt.Header, adtAddr, objAddr uint64, fn func(int32, adt.Entry) error) error {
	rng := h.FieldRange()
	if rng == 0 {
		return nil
	}
	words := (uint64(rng) + 63) / 64
	hbBase := objAddr + h.HasbitsOffset
	for w := uint64(0); w < words; w++ {
		if err := u.inject(faults.SiteMemloader); err != nil {
			return err
		}
	}
	for num := h.MinField; num <= h.MaxField; num++ {
		idx := uint64(num - h.MinField)
		word, err := u.Mem.Read64(hbBase + (idx/64)*8)
		if err != nil {
			return err
		}
		if word>>(idx%64)&1 == 0 {
			continue
		}
		entry, err := adt.ReadEntry(u.Mem, adtAddr, h, num)
		if err != nil {
			return fmt.Errorf("mops: hasbit set for undefined field %d: %w", num, err)
		}
		if err := fn(num, entry); err != nil {
			return err
		}
	}
	return nil
}

// validateString mirrors copyString's allocation: one arena buffer when
// the source string is non-empty.
func (u *Unit) validateString(srcHdr uint64) (uint64, error) {
	n, err := u.Mem.Read64(srcHdr + 8)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	if err := u.inject(faults.SiteArena); err != nil {
		return 0, err
	}
	if err := u.inject(faults.SiteMemwriter); err != nil {
		return 0, err
	}
	return align8(n), nil
}

// validateCopy dry-walks copyTree, returning its arena consumption.
func (u *Unit) validateCopy(adtAddr, srcObj uint64, depth int) (uint64, error) {
	if depth > u.Cfg.MaxDepth {
		return 0, ErrTooDeep
	}
	h, err := adt.ReadHeader(u.Mem, adtAddr)
	if err != nil {
		return 0, err
	}
	if err := u.inject(faults.SiteArena); err != nil {
		return 0, err
	}
	if err := u.inject(faults.SiteMemwriter); err != nil {
		return 0, err
	}
	need := align8(h.ObjectSize)
	err = u.validateScan(h, adtAddr, srcObj, func(num int32, e adt.Entry) error {
		srcSlot := srcObj + uint64(e.Offset)
		switch {
		case e.Repeated:
			n, err := u.validateCopyRepeated(e, srcSlot, depth)
			if err != nil {
				return err
			}
			need += n
			return nil
		case e.Kind == schema.KindMessage:
			ptr, err := u.Mem.Read64(srcSlot)
			if err != nil {
				return err
			}
			if ptr == 0 {
				return nil
			}
			n, err := u.validateCopy(e.SubADT, ptr, depth+1)
			if err != nil {
				return err
			}
			need += n
			return nil
		case e.Kind.Class() == schema.ClassBytesLike:
			n, err := u.validateString(srcSlot)
			if err != nil {
				return err
			}
			need += n
			return nil
		default:
			return nil
		}
	})
	return need, err
}

// validateCopyRepeated mirrors fixupRepeated's allocations.
func (u *Unit) validateCopyRepeated(e adt.Entry, srcSlot uint64, depth int) (uint64, error) {
	buf, err := u.Mem.Read64(srcSlot)
	if err != nil {
		return 0, err
	}
	n, err := u.Mem.Read64(srcSlot + 8)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, nil
	}
	es := elemSize(e)
	if err := u.inject(faults.SiteArena); err != nil {
		return 0, err
	}
	if err := u.inject(faults.SiteMemwriter); err != nil {
		return 0, err
	}
	need := align8(n * es)
	switch {
	case e.Kind == schema.KindMessage:
		for i := uint64(0); i < n; i++ {
			ptr, err := u.Mem.Read64(buf + i*8)
			if err != nil {
				return 0, err
			}
			sub, err := u.validateCopy(e.SubADT, ptr, depth+1)
			if err != nil {
				return 0, err
			}
			need += sub
		}
	case e.Kind.Class() == schema.ClassBytesLike:
		for i := uint64(0); i < n; i++ {
			sub, err := u.validateString(buf + i*es)
			if err != nil {
				return 0, err
			}
			need += sub
		}
	}
	return need, nil
}

// validateMergeRepeated mirrors mergeRepeated's allocations.
func (u *Unit) validateMergeRepeated(e adt.Entry, dstSlot, srcSlot uint64, dstHad bool, depth int) (uint64, error) {
	srcBuf, err := u.Mem.Read64(srcSlot)
	if err != nil {
		return 0, err
	}
	srcN, err := u.Mem.Read64(srcSlot + 8)
	if err != nil {
		return 0, err
	}
	if srcN == 0 {
		return 0, nil
	}
	var dstN uint64
	if dstHad {
		if dstN, err = u.Mem.Read64(dstSlot + 8); err != nil {
			return 0, err
		}
	}
	es := elemSize(e)
	if err := u.inject(faults.SiteArena); err != nil {
		return 0, err
	}
	if err := u.inject(faults.SiteMemwriter); err != nil {
		return 0, err
	}
	need := align8((dstN + srcN) * es)
	switch {
	case e.Kind == schema.KindMessage:
		for i := uint64(0); i < srcN; i++ {
			ptr, err := u.Mem.Read64(srcBuf + i*8)
			if err != nil {
				return 0, err
			}
			sub, err := u.validateCopy(e.SubADT, ptr, depth+1)
			if err != nil {
				return 0, err
			}
			need += sub
		}
	case e.Kind.Class() == schema.ClassBytesLike:
		for i := uint64(0); i < srcN; i++ {
			sub, err := u.validateString(srcBuf + i*es)
			if err != nil {
				return 0, err
			}
			need += sub
		}
	}
	return need, nil
}
