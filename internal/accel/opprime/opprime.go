// Package opprime implements the prior-work baseline the paper compares
// against (§3.7, §6): an Optimus-Prime-style serialization accelerator
// programmed by per-message-instance tables. Where ProtoAcc uses one
// fixed Accelerator Descriptor Table per message *type* plus the object's
// own sparse hasbits, this design requires software to construct a fresh
// programming table for every message *instance* — one entry per present
// field, with sub-message fields pointing at recursively built
// sub-tables.
//
// The paper's quantitative framing: the per-instance design writes an
// extra 64 bits per present field (table construction, on the CPU's
// critical path), while the ADT design reads an extra bit per defined
// field number (the sparse hasbits scan). This package makes that
// trade-off empirical: BuildTable charges CPU cycles for construction,
// and Serializer.Serialize charges accelerator cycles for the table-driven
// walk, producing byte-identical wire output to the ProtoAcc serializer.
package opprime

import (
	"errors"
	"fmt"

	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
	"protoacc/internal/sim/cpu"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

// Entry layout: 24 bytes per present field.
//
//	+0  uint32: kind (low byte) | repeated<<8 | packed<<9
//	+4  uint32: field number
//	+8  uint64: slot address in the object
//	+16 uint64: sub-table pointer | count<<48 (message fields), else 0
const entrySize = 24

// Errors.
var (
	ErrTooDeep  = errors.New("opprime: nesting exceeds limit")
	ErrBadTable = errors.New("opprime: malformed instance table")
)

const maxDepth = 100

// Table locates one instance's programming table.
type Table struct {
	Addr  uint64
	Count uint64
}

// Builder constructs per-instance tables on the CPU, charging the
// software cost the paper's §3.7 identifies (the work Optimus Prime moves
// into setters and clear methods; charged here at serialization time,
// which is conservative in the baseline's favour since it skips absent
// setter overhead entirely).
type Builder struct {
	CPU   *cpu.CPU
	Mem   *mem.Memory
	Reg   *layout.Registry
	Alloc *mem.Allocator // table storage (software-managed)
}

// BuildTable walks the object at objAddr (type t) and writes its
// programming table, returning the table and charging CPU cycles.
func (b *Builder) BuildTable(t *schema.Message, objAddr uint64) (Table, error) {
	return b.build(t, objAddr, maxDepth)
}

func (b *Builder) build(t *schema.Message, objAddr uint64, depth int) (Table, error) {
	if depth <= 0 {
		return Table{}, ErrTooDeep
	}
	l := b.Reg.Layout(t)
	// Collect present fields (hasbits reads).
	type pending struct {
		fl  layout.FieldLayout
		sub Table
	}
	var entries []pending
	for _, fl := range l.Fields {
		present, err := b.hasbit(objAddr, l, fl.Field.Number)
		if err != nil {
			return Table{}, err
		}
		if !present {
			continue
		}
		p := pending{fl: fl}
		if fl.Field.Kind == schema.KindMessage && !fl.Field.Repeated() {
			ptr, err := b.Mem.Read64(objAddr + fl.Offset)
			if err != nil {
				return Table{}, err
			}
			if ptr == 0 {
				continue
			}
			p.sub, err = b.build(fl.Field.Message, ptr, depth-1)
			if err != nil {
				return Table{}, err
			}
		}
		entries = append(entries, p)
	}
	addr, err := b.Alloc.Alloc(uint64(len(entries))*entrySize, 8)
	if err != nil {
		return Table{}, err
	}
	// Charge construction: per-entry bookkeeping plus the stores.
	b.CPU.ChargeTableWrites(len(entries))
	b.CPU.ChargeAccess(addr, uint64(len(entries))*entrySize)
	for i, p := range entries {
		f := p.fl.Field
		ea := addr + uint64(i)*entrySize
		flags := uint32(f.Kind)
		if f.Repeated() {
			flags |= 1 << 8
		}
		if f.Packed {
			flags |= 1 << 9
		}
		if err := b.Mem.Write32(ea, flags); err != nil {
			return Table{}, err
		}
		if err := b.Mem.Write32(ea+4, uint32(f.Number)); err != nil {
			return Table{}, err
		}
		if err := b.Mem.Write64(ea+8, objAddr+p.fl.Offset); err != nil {
			return Table{}, err
		}
		var w2 uint64
		if f.Kind == schema.KindMessage && !f.Repeated() {
			w2 = p.sub.Addr | p.sub.Count<<48
		}
		if err := b.Mem.Write64(ea+16, w2); err != nil {
			return Table{}, err
		}
	}
	return Table{Addr: addr, Count: uint64(len(entries))}, nil
}

func (b *Builder) hasbit(objAddr uint64, l *layout.Layout, num int32) (bool, error) {
	idx := uint64(num - l.MinField)
	w, err := b.Mem.Read64(objAddr + layout.HasbitsOffset + (idx/64)*8)
	if err != nil {
		return false, err
	}
	return w>>(idx%64)&1 == 1, nil
}

// Serializer is the table-driven accelerator model. It shares the
// ProtoAcc serializer's output regime (reverse order, high-to-low) and
// cycle conventions, but is programmed by instance tables instead of ADTs
// and hasbits — so it spends no frontend bit-scanning cycles and no ADT
// entry loads, the advantage the per-instance design buys with its
// construction cost.
type Serializer struct {
	Mem  *mem.Memory
	Port *memmodel.Port

	// Output arena, high-to-low like the ProtoAcc serializer.
	outBase, outTop uint64

	Cycles float64
	hidden uint64
}

// NewSerializer creates the baseline serializer writing into out.
func NewSerializer(m *mem.Memory, port *memmodel.Port, out *mem.Region) *Serializer {
	return &Serializer{Mem: m, Port: port, outBase: out.Base, outTop: out.End(), hidden: 1}
}

func (s *Serializer) fsm(c float64) { s.Cycles += c }

func (s *Serializer) load(addr, size uint64) {
	lat := s.Port.Access(addr, size)
	if lat > s.hidden {
		s.Cycles += float64(lat - s.hidden)
	}
}

func (s *Serializer) streamOut(addr, size uint64) {
	lat := s.Port.StreamAccess(addr, size)
	if lat > s.hidden {
		s.Cycles += float64(lat-s.hidden) / 4
	}
}

// Serialize emits the message programmed by tab, returning the output's
// address and length.
func (s *Serializer) Serialize(tab Table) (uint64, uint64, error) {
	s.fsm(8) // dispatch
	start, err := s.serializeTable(tab, s.outTop, maxDepth)
	if err != nil {
		return 0, 0, err
	}
	length := s.outTop - start
	s.outTop = start
	// Memwriter drain.
	s.fsm(float64((length + 15) / 16))
	return start, length, nil
}

func (s *Serializer) writeBack(end uint64, b []byte) (uint64, error) {
	n := uint64(len(b))
	if end < s.outBase+n {
		return 0, fmt.Errorf("opprime: output arena exhausted")
	}
	pos := end - n
	if err := s.Mem.WriteBytes(pos, b); err != nil {
		return 0, err
	}
	s.streamOut(pos, n)
	return pos, nil
}

func (s *Serializer) serializeTable(tab Table, end uint64, depth int) (uint64, error) {
	if depth <= 0 {
		return 0, ErrTooDeep
	}
	pos := end
	for i := tab.Count; i > 0; i-- {
		ea := tab.Addr + (i-1)*entrySize
		s.fsm(1) // entry fetch + op issue (no bit scan, no ADT load)
		s.load(ea, entrySize)
		flags, err := s.Mem.Read32(ea)
		if err != nil {
			return 0, err
		}
		numWord, err := s.Mem.Read32(ea + 4)
		if err != nil {
			return 0, err
		}
		slotAddr, err := s.Mem.Read64(ea + 8)
		if err != nil {
			return 0, err
		}
		w2, err := s.Mem.Read64(ea + 16)
		if err != nil {
			return 0, err
		}
		kind := schema.Kind(flags & 0xff)
		repeated := flags>>8&1 == 1
		packed := flags>>9&1 == 1
		num := int32(numWord)
		if num <= 0 {
			return 0, ErrBadTable
		}
		pos, err = s.serializeField(kind, repeated, packed, num, slotAddr, w2, pos, depth)
		if err != nil {
			return 0, err
		}
	}
	return pos, nil
}

func scalarSlotSize(k schema.Kind) uint64 {
	switch k {
	case schema.KindBool:
		return 1
	case schema.KindInt32, schema.KindUint32, schema.KindSint32,
		schema.KindFixed32, schema.KindSfixed32, schema.KindFloat, schema.KindEnum:
		return 4
	default:
		return 8
	}
}

func encodeScalar(k schema.Kind, bits uint64) []byte {
	switch k {
	case schema.KindFloat, schema.KindFixed32, schema.KindSfixed32:
		return wire.AppendFixed32(nil, uint32(bits))
	case schema.KindDouble, schema.KindFixed64, schema.KindSfixed64:
		return wire.AppendFixed64(nil, bits)
	case schema.KindSint32:
		return wire.AppendVarint(nil, wire.EncodeZigZag32(int32(bits)))
	case schema.KindSint64:
		return wire.AppendVarint(nil, wire.EncodeZigZag64(int64(bits)))
	case schema.KindUint32:
		return wire.AppendVarint(nil, uint64(uint32(bits)))
	case schema.KindInt32, schema.KindEnum:
		return wire.AppendVarint(nil, uint64(int64(int32(bits))))
	case schema.KindBool:
		if bits != 0 {
			return []byte{1}
		}
		return []byte{0}
	default:
		return wire.AppendVarint(nil, bits)
	}
}

func sign32(k schema.Kind, v uint64) uint64 {
	switch k {
	case schema.KindInt32, schema.KindSint32, schema.KindSfixed32, schema.KindEnum:
		return uint64(int64(int32(v)))
	}
	return v
}

func (s *Serializer) readSlot(addr, size uint64) (uint64, error) {
	s.load(addr, size)
	switch size {
	case 1:
		b, err := s.Mem.Read8(addr)
		return uint64(b), err
	case 4:
		v, err := s.Mem.Read32(addr)
		return uint64(v), err
	default:
		return s.Mem.Read64(addr)
	}
}

func (s *Serializer) serializeField(kind schema.Kind, repeated, packed bool, num int32, slotAddr, w2, pos uint64, depth int) (uint64, error) {
	switch {
	case kind == schema.KindMessage && !repeated:
		subTab := Table{Addr: w2 & (1<<48 - 1), Count: w2 >> 48}
		bodyEnd := pos
		bodyStart, err := s.serializeTable(subTab, bodyEnd, depth-1)
		if err != nil {
			return 0, err
		}
		length := bodyEnd - bodyStart
		s.fsm(1)
		pos, err = s.writeBack(bodyStart, wire.AppendVarint(nil, length))
		if err != nil {
			return 0, err
		}
		return s.writeBack(pos, wire.AppendTag(nil, num, wire.TypeBytes))
	case repeated:
		return s.serializeRepeated(kind, packed, num, slotAddr, pos, depth)
	case kind.Class() == schema.ClassBytesLike:
		ptr, err := s.readSlot(slotAddr, 8)
		if err != nil {
			return 0, err
		}
		n, err := s.readSlot(slotAddr+8, 8)
		if err != nil {
			return 0, err
		}
		return s.emitString(num, ptr, n, pos)
	default:
		bits, err := s.readSlot(slotAddr, scalarSlotSize(kind))
		if err != nil {
			return 0, err
		}
		s.fsm(1)
		return s.emitKV(num, kind, sign32(kind, bits), pos)
	}
}

func (s *Serializer) emitKV(num int32, k schema.Kind, bits, pos uint64) (uint64, error) {
	pos, err := s.writeBack(pos, encodeScalar(k, bits))
	if err != nil {
		return 0, err
	}
	s.fsm(2) // key construction + output sequencing (same as ProtoAcc)
	return s.writeBack(pos, wire.AppendTag(nil, num, k.WireType()))
}

func (s *Serializer) emitString(num int32, ptr, n, pos uint64) (uint64, error) {
	if pos < s.outBase+n {
		return 0, fmt.Errorf("opprime: output arena exhausted")
	}
	payload := pos - n
	if n > 0 {
		src, err := s.Mem.View(ptr, n)
		if err != nil {
			return 0, err
		}
		if err := s.Mem.WriteBytes(payload, src); err != nil {
			return 0, err
		}
		s.load(ptr, n)
		s.streamOut(payload, n)
		s.fsm(float64((n + 15) / 16))
	}
	pos = payload
	s.fsm(2)
	pos, err := s.writeBack(pos, wire.AppendVarint(nil, n))
	if err != nil {
		return 0, err
	}
	return s.writeBack(pos, wire.AppendTag(nil, num, wire.TypeBytes))
}

func (s *Serializer) serializeRepeated(kind schema.Kind, packed bool, num int32, slotAddr, pos uint64, depth int) (uint64, error) {
	// Repeated message fields are not supported by this baseline model
	// (Optimus Prime's evaluation covers flat and singly-nested types);
	// the comparison workloads avoid them.
	if kind == schema.KindMessage {
		return 0, fmt.Errorf("opprime: repeated sub-message fields unsupported by the baseline")
	}
	buf, err := s.readSlot(slotAddr, 8)
	if err != nil {
		return 0, err
	}
	n, err := s.readSlot(slotAddr+8, 8)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return pos, nil
	}
	es := scalarSlotSize(kind)
	if kind.Class() == schema.ClassBytesLike {
		for i := n; i > 0; i-- {
			hdr := buf + (i-1)*layout.StringHeaderSize
			ptr, err := s.readSlot(hdr, 8)
			if err != nil {
				return 0, err
			}
			sl, err := s.readSlot(hdr+8, 8)
			if err != nil {
				return 0, err
			}
			pos, err = s.emitString(num, ptr, sl, pos)
			if err != nil {
				return 0, err
			}
		}
		return pos, nil
	}
	if packed {
		body := pos
		for i := n; i > 0; i-- {
			bits, err := s.readSlot(buf+(i-1)*es, es)
			if err != nil {
				return 0, err
			}
			s.fsm(1)
			pos, err = s.writeBack(pos, encodeScalar(kind, sign32(kind, bits)))
			if err != nil {
				return 0, err
			}
		}
		s.fsm(1)
		pos, err = s.writeBack(pos, wire.AppendVarint(nil, body-pos))
		if err != nil {
			return 0, err
		}
		return s.writeBack(pos, wire.AppendTag(nil, num, wire.TypeBytes))
	}
	for i := n; i > 0; i-- {
		bits, err := s.readSlot(buf+(i-1)*es, es)
		if err != nil {
			return 0, err
		}
		s.fsm(1)
		pos, err = s.emitKV(num, kind, sign32(kind, bits), pos)
		if err != nil {
			return 0, err
		}
	}
	return pos, nil
}
