package opprime

import (
	"bytes"
	"math/rand"
	"testing"

	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/cpu"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

type rig struct {
	mem     *mem.Memory
	mat     *layout.Materializer
	builder *Builder
	ser     *Serializer
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m := mem.New()
	heap := mem.NewAllocator(m.Map("heap", 32<<20))
	tables := mem.NewAllocator(m.Map("tables", 32<<20))
	out := m.Map("out", 32<<20)
	reg := layout.NewRegistry()
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	c := cpu.New(cpu.BOOMParams(), m, sys.NewPort("cpu"), heap, reg)
	return &rig{
		mem:     m,
		mat:     layout.NewMaterializer(m, heap, reg),
		builder: &Builder{CPU: c, Mem: m, Reg: reg, Alloc: tables},
		ser:     NewSerializer(m, sys.NewPort("accel"), out),
	}
}

// flatSchema generates schemas without repeated message fields (the
// baseline's supported subset).
func flatSchema(rng *rand.Rand) *schema.Message {
	cfg := pbtest.DefaultSchemaConfig()
	cfg.MessageProb = 0.15
	for {
		t := pbtest.RandomSchema(rng, cfg)
		ok := true
		t.Walk(func(m *schema.Message) {
			for _, f := range m.Fields {
				if f.Kind == schema.KindMessage && f.Repeated() {
					ok = false
				}
			}
		})
		if ok {
			return t
		}
	}
}

func TestByteIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		typ := flatSchema(rng)
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		want, err := codec.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		r := newRig(t)
		objAddr, err := r.mat.Write(msg)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := r.builder.BuildTable(typ, objAddr)
		if err != nil {
			t.Fatal(err)
		}
		addr, n, err := r.ser.Serialize(tab)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := make([]byte, n)
		if err := r.mem.ReadBytes(addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: baseline output differs (%d vs %d bytes)", trial, len(got), len(want))
		}
	}
}

func TestConstructionChargesCPU(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "b", Number: 2, Kind: schema.KindString})
	r := newRig(t)
	msg := dynamic.New(typ)
	msg.SetInt64(1, 5)
	msg.SetString(2, "x")
	objAddr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	before := r.builder.CPU.Cycles()
	tab, err := r.builder.BuildTable(typ, objAddr)
	if err != nil {
		t.Fatal(err)
	}
	if r.builder.CPU.Cycles() <= before {
		t.Error("table construction should cost CPU cycles")
	}
	if tab.Count != 2 {
		t.Errorf("table count = %d", tab.Count)
	}
}

func TestTableCountScalesWithPresence(t *testing.T) {
	// The §3.7 contrast: the per-instance table's size (and its
	// construction cost) scales with present fields; ProtoAcc's ADT is
	// per-type and constant.
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "b", Number: 2, Kind: schema.KindInt32},
		&schema.Field{Name: "c", Number: 3, Kind: schema.KindInt32})
	r := newRig(t)
	sparse := dynamic.New(typ)
	sparse.SetInt32(1, 1)
	full := dynamic.New(typ)
	full.SetInt32(1, 1)
	full.SetInt32(2, 2)
	full.SetInt32(3, 3)

	sAddr, err := r.mat.Write(sparse)
	if err != nil {
		t.Fatal(err)
	}
	fAddr, err := r.mat.Write(full)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.builder.BuildTable(typ, sAddr)
	if err != nil {
		t.Fatal(err)
	}
	ft, err := r.builder.BuildTable(typ, fAddr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Count != 1 || ft.Count != 3 {
		t.Errorf("counts = %d, %d", st.Count, ft.Count)
	}
}

func TestRepeatedMessageRejected(t *testing.T) {
	sub := mustMessage("S", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	typ := mustMessage("M",
		&schema.Field{Name: "rm", Number: 1, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated})
	r := newRig(t)
	msg := dynamic.New(typ)
	msg.AddMessage(1).SetInt32(1, 1)
	objAddr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := r.builder.BuildTable(typ, objAddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ser.Serialize(tab); err == nil {
		t.Error("repeated sub-message should be rejected by the baseline")
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
