// Package ser models the ProtoAcc serializer unit (§4.5 of the paper):
// the frontend that scans the sparse hasbits and is_submessage bit fields,
// the parallel field serializer units, and the memwriter that sequences
// output and injects sub-message keys.
//
// The critical design point is reproduced literally: fields are visited in
// reverse field-number order and the output buffer is written from high to
// low addresses, producing byte-identical output to a software serializer
// that works in increasing field order — while making sub-message lengths
// known by the time their key must be written (§4.5.1). Output therefore
// never needs a separate ByteSize pass, which is where a large share of
// the CPU's serialization cycles go (Figure 2).
//
// Cycle accounting: the frontend, the pool of field serializer units, and
// the memwriter are pipeline stages that run concurrently; the model
// accumulates per-stage cycle totals and takes their maximum as the
// operation's duration, then adds serial overheads (dispatch, sub-message
// context switches, stack spills).
package ser

import (
	"errors"
	"fmt"

	"protoacc/internal/accel/adt"
	"protoacc/internal/faults"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
	"protoacc/internal/telemetry"
)

// Errors surfaced by the unit.
var (
	ErrNoArena    = errors.New("ser: no output arena assigned")
	ErrArenaFull  = errors.New("ser: serializer output arena exhausted")
	ErrPtrBufFull = errors.New("ser: serialized-output pointer buffer full")
	ErrTooDeep    = errors.New("ser: context stack exceeds architectural limit")
)

// Config holds the unit's microarchitectural parameters.
type Config struct {
	// NumFieldUnits is the number of parallel field serializer units
	// (§4.5.4, parameterizable).
	NumFieldUnits int
	// MemwriterWidth is the output bytes the memwriter drains per cycle.
	MemwriterWidth uint64
	// OnChipStackDepth / SpillPenalty / MaxDepth: as in the deserializer.
	OnChipStackDepth int
	SpillPenalty     float64
	MaxDepth         int
	// HiddenLatency is absorbed by unit-internal buffering.
	HiddenLatency uint64
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		NumFieldUnits:    4,
		MemwriterWidth:   16,
		OnChipStackDepth: 25,
		SpillPenalty:     12,
		MaxDepth:         100,
		HiddenLatency:    1,
	}
}

// Stats reports what a serialization did. SpillCycles and ADTStallCycles
// classify portions of the frontend's cycles by stall cause for the
// telemetry layer's attribution breakdown.
type Stats struct {
	Cycles          float64
	FrontendCycles  float64
	FieldUnitCycles float64 // summed across units before dividing
	MemwriterCycles float64
	BytesProduced   uint64
	FieldsEmitted   uint64
	Messages        uint64
	StackSpills     uint64
	MaxDepthSeen    int

	// SpillCycles is the total context-stack spill penalty paid.
	SpillCycles float64
	// ADTStallCycles is frontend time blocked on ADT header/entry loads.
	ADTStallCycles float64
}

// Unit is one serializer unit instance.
type Unit struct {
	Mem  *mem.Memory
	Port *memmodel.Port
	Cfg  Config

	// Tracer, when enabled, buffers message/field events on the
	// System-owned trace stream. Assigned by core.New; nil is valid.
	Tracer *telemetry.Tracer

	// Inj, when non-nil and enabled, injects simulated faults at the
	// unit's named sites: memloader faults on field-slot loads, memwriter
	// faults on output stores, and context-stack spill failures on
	// sub-message pushes. Injected faults are phantom (the access never
	// happens). Assigned by core.New; nil is valid (injection off).
	Inj *faults.Injector

	// Output arena state (§4.5.1): a data buffer written high-to-low and
	// a pointer buffer recording each completed output.
	outBase, outTop uint64
	ptrBase         uint64
	ptrCap, ptrLen  uint64
	// lowWater is the lowest output-arena address written since the arena
	// was assigned. The memwriter's regime is strictly high-to-low, so an
	// aborted operation's writes occupy exactly [lowWater, pre-op outTop)
	// — the span Rewind scrubs.
	lowWater uint64

	stats Stats

	// Stage-cycle marks of the in-flight Serialize, for Abort's pipeline
	// duration computation when the op dies mid-flight.
	opFrontStart, opUnitStart, opWriterStart float64

	// Per-handle-field-op work tracking: one field serializer unit owns
	// one op, so parallelism is op-granular, not element-granular. The
	// makespan over ops bounds the field-unit stage. curOp indexes the
	// op currently charging into opWork (-1: none); index-based tracking
	// keeps the hot field loop free of per-field boxing and closures.
	opWork []float64
	curOp  int

	// traced caches Tracer.Enabled() for the duration of one Serialize so
	// the per-field trace hook is a single flag test, not an interface
	// indirection per field.
	traced bool

	// scratch is the wire-encoding staging buffer reused across fields;
	// writeBack copies it into the output arena before the next use.
	scratch []byte
}

// New creates a serializer unit.
func New(m *mem.Memory, port *memmodel.Port, cfg Config) *Unit {
	return &Unit{Mem: m, Port: port, Cfg: cfg, curOp: -1}
}

// AssignArena implements ser_assign_arena: dataRegion receives serialized
// bytes (written from its end toward its base) and ptrRegion records
// {address, length} pairs of completed outputs.
func (u *Unit) AssignArena(dataRegion, ptrRegion *mem.Region) {
	u.outBase = dataRegion.Base
	u.outTop = dataRegion.End()
	u.ptrBase = ptrRegion.Base
	u.ptrCap = ptrRegion.Size() / 16
	u.ptrLen = 0
	u.lowWater = dataRegion.End()
}

// Outputs returns how many serialized outputs the arena holds.
func (u *Unit) Outputs() uint64 { return u.ptrLen }

// Output returns the address and length of the i-th serialized output
// (the software-visible completion record, §4.5.2).
func (u *Unit) Output(i uint64) (addr, length uint64, err error) {
	if i >= u.ptrLen {
		return 0, 0, fmt.Errorf("ser: output %d of %d", i, u.ptrLen)
	}
	if addr, err = u.Mem.Read64(u.ptrBase + i*16); err != nil {
		return 0, 0, err
	}
	length, err = u.Mem.Read64(u.ptrBase + i*16 + 8)
	return addr, length, err
}

// Stats returns cumulative statistics.
func (u *Unit) Stats() Stats { return u.stats }

// CollectTelemetry registers the unit's counters (telemetry.Collector).
func (u *Unit) CollectTelemetry(emit func(name string, value float64)) {
	emit("cycles", u.stats.Cycles)
	emit("frontend_cycles", u.stats.FrontendCycles)
	emit("field_unit_cycles", u.stats.FieldUnitCycles)
	emit("memwriter_cycles", u.stats.MemwriterCycles)
	emit("spill_cycles", u.stats.SpillCycles)
	emit("adt_stall_cycles", u.stats.ADTStallCycles)
	emit("bytes_produced", float64(u.stats.BytesProduced))
	emit("fields_emitted", float64(u.stats.FieldsEmitted))
	emit("messages", float64(u.stats.Messages))
	emit("stack_spills", float64(u.stats.StackSpills))
	emit("max_depth_seen", float64(u.stats.MaxDepthSeen))
	emit("outputs", float64(u.ptrLen))
}

// trace emits one event on the System-owned stream, timestamped with the
// frontend's cumulative cycle counter.
func (u *Unit) trace(name string, depth int, field int32, note string) {
	if u.traced {
		u.Tracer.Emit(telemetry.Event{
			Unit: "ser", Name: name, Cycle: u.stats.FrontendCycles,
			Depth: depth, Field: field, Note: note,
		})
	}
}

// ResetStats clears the accumulators and per-op work tracking, returning
// the unit to its post-construction state (the output arena is
// re-assigned separately via AssignArena).
func (u *Unit) ResetStats() {
	u.stats = Stats{}
	u.opWork = u.opWork[:0]
	u.curOp = -1
	u.opFrontStart, u.opUnitStart, u.opWriterStart = 0, 0, 0
}

// OutMark captures the output-arena position (completed outputs, data
// top, low-water) for transactional rollback via Rewind.
type OutMark struct {
	outputs, top, low uint64
}

// Mark returns the current output-arena position. Take it before issuing
// an operation; pass it to Rewind to abort.
func (u *Unit) Mark() OutMark {
	return OutMark{outputs: u.ptrLen, top: u.outTop, low: u.lowWater}
}

// Rewind aborts everything emitted since the Mark was taken: the data
// span written below the marked top and any completion records (including
// a partially-written one) are scrubbed to zero, and the arena cursors
// are restored. After Rewind no partial output is observable — the
// serializer is positioned exactly where it was at Mark time.
func (u *Unit) Rewind(m OutMark) error {
	if u.lowWater < m.top {
		b, err := u.Mem.Slice(u.lowWater, m.top-u.lowWater)
		if err != nil {
			return err
		}
		for i := range b {
			b[i] = 0
		}
	}
	// One extra slot covers a completion record that faulted between its
	// two word writes.
	endSlot := u.ptrLen + 1
	if endSlot > u.ptrCap {
		endSlot = u.ptrCap
	}
	if m.outputs < endSlot {
		b, err := u.Mem.Slice(u.ptrBase+m.outputs*16, (endSlot-m.outputs)*16)
		if err != nil {
			return err
		}
		for i := range b {
			b[i] = 0
		}
	}
	u.ptrLen = m.outputs
	u.outTop = m.top
	u.lowWater = m.low
	return nil
}

// Abort accounts the in-flight operation's cycles after a fault: the
// pipeline-stage work accumulated since the op began is folded into the
// cumulative cycle counter (mirroring the duration computation of a
// successful Serialize) and returned so the dispatch layer can charge it
// to the recovery episode. Output rollback is separate (Mark/Rewind).
func (u *Unit) Abort() float64 {
	front := u.stats.FrontendCycles - u.opFrontStart
	units := (u.stats.FieldUnitCycles - u.opUnitStart) / float64(u.Cfg.NumFieldUnits)
	for _, w := range u.opWork {
		if w > units {
			units = w
		}
	}
	writer := u.stats.MemwriterCycles - u.opWriterStart
	dur := front
	if units > dur {
		dur = units
	}
	if writer > dur {
		dur = writer
	}
	u.stats.Cycles += dur
	u.opWork = u.opWork[:0]
	u.curOp = -1
	u.opFrontStart = u.stats.FrontendCycles
	u.opUnitStart = u.stats.FieldUnitCycles
	u.opWriterStart = u.stats.MemwriterCycles
	return dur
}

func (u *Unit) frontend(c float64) { u.stats.FrontendCycles += c }

// fieldUnit charges work to the current handle-field-op.
func (u *Unit) fieldUnit(c float64) {
	u.stats.FieldUnitCycles += c
	if u.curOp >= 0 {
		u.opWork[u.curOp] += c
	}
}

// blockingLoad charges a frontend-blocking load.
func (u *Unit) blockingLoad(addr, size uint64) {
	lat := u.Port.Access(addr, size)
	if lat > u.Cfg.HiddenLatency {
		u.stats.FrontendCycles += float64(lat - u.Cfg.HiddenLatency)
	}
}

// adtLoad is a blockingLoad of ADT-resident metadata (headers, entries,
// is_submessage bit words); the stall is additionally attributed to the
// ADT-miss class.
func (u *Unit) adtLoad(addr, size uint64) {
	lat := u.Port.Access(addr, size)
	if lat > u.Cfg.HiddenLatency {
		stall := float64(lat - u.Cfg.HiddenLatency)
		u.stats.FrontendCycles += stall
		u.stats.ADTStallCycles += stall
	}
}

// unitLoad charges a field-serializer-unit load (overlapped across units).
func (u *Unit) unitLoad(addr, size uint64) {
	lat := u.Port.StreamAccess(addr, size)
	if lat > u.Cfg.HiddenLatency {
		u.fieldUnit(float64(lat-u.Cfg.HiddenLatency) / 2)
	}
}

// outWrite tracks memwriter output traffic (streaming, high-to-low).
func (u *Unit) outWrite(addr, size uint64) {
	lat := u.Port.StreamAccess(addr, size)
	if lat > u.Cfg.HiddenLatency {
		u.stats.MemwriterCycles += float64(lat-u.Cfg.HiddenLatency) / 4
	}
}

// Serialize implements do_proto_ser for the object at objAddr whose type's
// ADT is at adtAddr. The serialized bytes land in the output arena and a
// completion record is appended to the pointer buffer.
func (u *Unit) Serialize(adtAddr, objAddr uint64) (Stats, error) {
	if u.outTop == 0 {
		return Stats{}, ErrNoArena
	}
	before := u.stats
	u.opWork = u.opWork[:0]
	u.curOp = -1
	u.traced = u.Tracer.Enabled()
	u.frontend(8) // RoCC dispatch + context stack init

	u.opFrontStart = u.stats.FrontendCycles
	u.opUnitStart = u.stats.FieldUnitCycles
	u.opWriterStart = u.stats.MemwriterCycles

	start, err := u.serializeMessage(adtAddr, objAddr, u.outTop, 1)
	if err != nil {
		return Stats{}, err
	}
	length := u.outTop - start
	u.outTop = start
	u.stats.BytesProduced += length
	u.stats.Messages++

	// Completion record.
	if u.ptrLen >= u.ptrCap {
		return Stats{}, ErrPtrBufFull
	}
	if err := u.Mem.Write64(u.ptrBase+u.ptrLen*16, start); err != nil {
		return Stats{}, err
	}
	if err := u.Mem.Write64(u.ptrBase+u.ptrLen*16+8, length); err != nil {
		return Stats{}, err
	}
	u.ptrLen++

	// The memwriter drains MemwriterWidth bytes per cycle.
	u.stats.MemwriterCycles += float64((length + u.Cfg.MemwriterWidth - 1) / u.Cfg.MemwriterWidth)

	// Pipeline duration: the slowest stage bounds the operation. The
	// field-unit stage is bounded below by its longest single op (one op
	// cannot be split across units) and by total work over the unit
	// count.
	front := u.stats.FrontendCycles - u.opFrontStart
	units := (u.stats.FieldUnitCycles - u.opUnitStart) / float64(u.Cfg.NumFieldUnits)
	for _, w := range u.opWork {
		if w > units {
			units = w
		}
	}
	writer := u.stats.MemwriterCycles - u.opWriterStart
	dur := front
	if units > dur {
		dur = units
	}
	if writer > dur {
		dur = writer
	}
	u.stats.Cycles += dur
	// Close the op's stage window so a spurious Abort charges nothing.
	u.opFrontStart = u.stats.FrontendCycles
	u.opUnitStart = u.stats.FieldUnitCycles
	u.opWriterStart = u.stats.MemwriterCycles

	delta := u.stats
	delta.Cycles -= before.Cycles
	delta.FrontendCycles -= before.FrontendCycles
	delta.FieldUnitCycles -= before.FieldUnitCycles
	delta.MemwriterCycles -= before.MemwriterCycles
	delta.SpillCycles -= before.SpillCycles
	delta.ADTStallCycles -= before.ADTStallCycles
	delta.BytesProduced -= before.BytesProduced
	delta.FieldsEmitted -= before.FieldsEmitted
	delta.Messages -= before.Messages
	delta.StackSpills -= before.StackSpills
	return delta, nil
}

// writeBack writes b so that its last byte lands at end-1, returning the
// new (lower) end. This is the memwriter's high-to-low regime.
func (u *Unit) writeBack(end uint64, b []byte) (uint64, error) {
	if err := u.Inj.At(faults.SiteMemwriter); err != nil {
		return 0, err
	}
	n := uint64(len(b))
	if end < u.outBase+n {
		return 0, ErrArenaFull
	}
	pos := end - n
	if err := u.Mem.WriteBytes(pos, b); err != nil {
		return 0, err
	}
	if pos < u.lowWater {
		u.lowWater = pos
	}
	u.outWrite(pos, n)
	return pos, nil
}

// serializeMessage emits the message at objAddr (type ADT at adtAddr)
// ending at `end`, returning the start address of its encoding.
func (u *Unit) serializeMessage(adtAddr, objAddr, end uint64, depth int) (uint64, error) {
	if depth > u.Cfg.MaxDepth {
		return 0, ErrTooDeep
	}
	if depth > u.stats.MaxDepthSeen {
		u.stats.MaxDepthSeen = depth
	}
	header, err := adt.ReadHeader(u.Mem, adtAddr)
	if err != nil {
		return 0, err
	}
	u.adtLoad(adtAddr, adt.HeaderSize)
	u.trace("message", depth, 0, "")

	rng := header.FieldRange()
	if rng == 0 {
		return end, nil // empty type: zero bytes (Figure 1)
	}
	words := (uint64(rng) + 63) / 64
	// Frontend loads hasbits and is_submessage bit fields in parallel
	// (§4.5.3): one pass of word loads each. The word values are kept in
	// a per-call buffer so the reverse field scan below tests bits without
	// re-reading simulated memory per field; the buffer is per call (not
	// unit-owned scratch) because sub-message recursion interleaves with
	// the parent's field loop.
	hbBase := objAddr + header.HasbitsOffset
	sbBase := adtAddr + adt.HeaderSize + uint64(rng)*adt.EntrySize
	var hbStack [4]uint64
	hbWords := hbStack[:0]
	if words > uint64(len(hbStack)) {
		hbWords = make([]uint64, 0, words)
	}
	for w := uint64(0); w < words; w++ {
		hw, err := u.Mem.Read64(hbBase + w*8)
		if err != nil {
			return 0, err
		}
		hbWords = append(hbWords, hw)
		u.blockingLoad(hbBase+w*8, 8)
		u.adtLoad(sbBase+w*8, 8)
		u.frontend(1) // per-word scan step
	}

	pos := end
	// Reverse field-number order (§4.5.1).
	for num := header.MaxField; num >= header.MinField; num-- {
		idx := uint64(num - header.MinField)
		if hbWords[idx/64]>>(idx%64)&1 == 0 {
			continue // absent: only the scanned bit was spent
		}
		u.frontend(2.5) // present field: issue ADT load, construct handle-field-op
		u.stats.FieldsEmitted++
		entryAddr := adtAddr + adt.HeaderSize + idx*adt.EntrySize
		entry, err := adt.ReadEntry(u.Mem, adtAddr, header, num)
		if err != nil {
			return 0, fmt.Errorf("ser: hasbit set for undefined field %d of ADT 0x%x: %w", num, adtAddr, err)
		}
		u.adtLoad(entryAddr, adt.EntrySize)
		u.trace("field", depth, num, entry.Kind.String())

		// Open a handle-field-op work window (see curOp); restore the
		// enclosing op's window when the field completes.
		prevOp := u.curOp
		u.curOp = len(u.opWork)
		u.opWork = append(u.opWork, 0)
		pos, err = u.serializeField(entry, num, objAddr, pos, depth)
		u.curOp = prevOp
		if err != nil {
			return 0, err
		}
	}
	return pos, nil
}

// readSlot loads a field slot via a field serializer unit.
func (u *Unit) readSlot(addr, size uint64) (uint64, error) {
	if err := u.Inj.At(faults.SiteMemloader); err != nil {
		return 0, err
	}
	u.unitLoad(addr, size)
	switch size {
	case 1:
		b, err := u.Mem.Read8(addr)
		return uint64(b), err
	case 4:
		v, err := u.Mem.Read32(addr)
		return uint64(v), err
	default:
		return u.Mem.Read64(addr)
	}
}

func scalarSlotSize(k schema.Kind) uint64 {
	switch k {
	case schema.KindBool:
		return 1
	case schema.KindInt32, schema.KindUint32, schema.KindSint32,
		schema.KindFixed32, schema.KindSfixed32, schema.KindFloat, schema.KindEnum:
		return 4
	default:
		return 8
	}
}

// encodeScalar appends one scalar's wire bytes (value only) to dst.
// Encoding is single-cycle in hardware regardless of varint width
// (§5.1.2). Appending into the unit's reusable scratch buffer keeps the
// per-field path allocation-free.
func encodeScalar(dst []byte, k schema.Kind, bits uint64) []byte {
	switch k {
	case schema.KindFloat, schema.KindFixed32, schema.KindSfixed32:
		return wire.AppendFixed32(dst, uint32(bits))
	case schema.KindDouble, schema.KindFixed64, schema.KindSfixed64:
		return wire.AppendFixed64(dst, bits)
	case schema.KindSint32:
		return wire.AppendVarint(dst, wire.EncodeZigZag32(int32(bits)))
	case schema.KindSint64:
		return wire.AppendVarint(dst, wire.EncodeZigZag64(int64(bits)))
	case schema.KindUint32:
		return wire.AppendVarint(dst, uint64(uint32(bits)))
	case schema.KindInt32, schema.KindEnum:
		return wire.AppendVarint(dst, uint64(int64(int32(bits))))
	case schema.KindBool:
		if bits != 0 {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		return wire.AppendVarint(dst, bits)
	}
}

// sign32 sign-extends 4-byte slots for kinds stored sign-extended.
func sign32(k schema.Kind, v uint64) uint64 {
	switch k {
	case schema.KindInt32, schema.KindSint32, schema.KindSfixed32, schema.KindEnum:
		return uint64(int64(int32(v)))
	}
	return v
}

func (u *Unit) serializeField(e adt.Entry, num int32, objAddr, pos uint64, depth int) (uint64, error) {
	slotAddr := objAddr + uint64(e.Offset)
	switch {
	case e.Repeated:
		return u.serializeRepeated(e, num, slotAddr, pos, depth)
	case e.Kind == schema.KindMessage:
		ptr, err := u.readSlot(slotAddr, 8)
		if err != nil {
			return 0, err
		}
		if ptr == 0 {
			return pos, nil // hasbit set but null pointer: nothing to emit
		}
		return u.serializeSubMessage(e.SubADT, ptr, num, pos, depth)
	case e.Kind.Class() == schema.ClassBytesLike:
		ptr, err := u.readSlot(slotAddr, 8)
		if err != nil {
			return 0, err
		}
		n, err := u.readSlot(slotAddr+8, 8)
		if err != nil {
			return 0, err
		}
		return u.emitString(num, ptr, n, pos)
	default:
		size := scalarSlotSize(e.Kind)
		bits, err := u.readSlot(slotAddr, size)
		if err != nil {
			return 0, err
		}
		u.fieldUnit(1) // single-cycle encode
		return u.emitKV(num, e.Kind, sign32(e.Kind, bits), pos)
	}
}

// emitKV writes one scalar key/value pair ending at pos. The key and
// value are staged together in the scratch buffer and retired by a single
// memwriter transaction — the hardware's output sequencer drains the
// whole chunk at once (§4.5.5), and charging the port once per chunk
// instead of once per component halves the hot path's port walks.
func (u *Unit) emitKV(num int32, k schema.Kind, bits uint64, pos uint64) (uint64, error) {
	u.scratch = wire.AppendTag(u.scratch[:0], num, k.WireType())
	u.scratch = encodeScalar(u.scratch, k, bits)
	u.fieldUnit(1) // key construction
	// Round-robin output sequencing of the chunk (§4.5.5): select + drain.
	u.stats.MemwriterCycles += 2
	return u.writeBack(pos, u.scratch)
}

// emitString writes tag + length + payload (payload copied from the
// object's string buffer at memwriter width).
func (u *Unit) emitString(num int32, ptr, n, pos uint64) (uint64, error) {
	if pos < u.outBase+n {
		return 0, ErrArenaFull
	}
	payloadPos := pos - n
	if n > 0 {
		if err := u.Inj.At(faults.SiteMemwriter); err != nil {
			return 0, err
		}
		src, err := u.Mem.View(ptr, n)
		if err != nil {
			return 0, err
		}
		if err := u.Mem.WriteBytes(payloadPos, src); err != nil {
			return 0, err
		}
		if payloadPos < u.lowWater {
			u.lowWater = payloadPos
		}
		u.unitLoad(ptr, n)
		u.outWrite(payloadPos, n)
		u.fieldUnit(float64((n + u.Cfg.MemwriterWidth - 1) / u.Cfg.MemwriterWidth))
	}
	pos = payloadPos
	u.fieldUnit(1) // length + key construction
	u.stats.MemwriterCycles += 2
	u.scratch = wire.AppendTag(u.scratch[:0], num, wire.TypeBytes)
	u.scratch = wire.AppendVarint(u.scratch, n)
	return u.writeBack(pos, u.scratch)
}

// serializeSubMessage recurses with a context-stack push/pop; the
// memwriter injects the key+length once the body is complete (§4.5.5).
func (u *Unit) serializeSubMessage(subADT, subObj uint64, num int32, pos uint64, depth int) (uint64, error) {
	if err := u.Inj.At(faults.SiteStackSpill); err != nil {
		return 0, err
	}
	u.trace("subPush", depth, num, "")
	u.frontend(5) // context save + sub-message pointer/ADT loads issued
	if depth+1 > u.Cfg.OnChipStackDepth {
		u.stats.StackSpills++
		u.stats.SpillCycles += u.Cfg.SpillPenalty
		u.frontend(u.Cfg.SpillPenalty)
	}
	bodyEnd := pos
	bodyStart, err := u.serializeMessage(subADT, subObj, bodyEnd, depth+1)
	if err != nil {
		return 0, err
	}
	length := bodyEnd - bodyStart
	// End-of-message op: the memwriter injects the key with the now-known
	// length, retiring both as one chunk.
	u.stats.MemwriterCycles++
	u.scratch = wire.AppendTag(u.scratch[:0], num, wire.TypeBytes)
	u.scratch = wire.AppendVarint(u.scratch, length)
	pos, err = u.writeBack(bodyStart, u.scratch)
	if err != nil {
		return 0, err
	}
	u.trace("subPop", depth, num, "")
	u.frontend(2) // context restore
	if depth+1 > u.Cfg.OnChipStackDepth {
		u.stats.SpillCycles += u.Cfg.SpillPenalty
		u.frontend(u.Cfg.SpillPenalty)
	}
	return pos, nil
}

func (u *Unit) serializeRepeated(e adt.Entry, num int32, slotAddr, pos uint64, depth int) (uint64, error) {
	buf, err := u.readSlot(slotAddr, 8)
	if err != nil {
		return 0, err
	}
	n, err := u.readSlot(slotAddr+8, 8)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return pos, nil
	}
	switch {
	case e.Kind == schema.KindMessage:
		// Elements in reverse so they land in forward order.
		for i := n; i > 0; i-- {
			ptr, err := u.readSlot(buf+(i-1)*8, 8)
			if err != nil {
				return 0, err
			}
			pos, err = u.serializeSubMessage(e.SubADT, ptr, num, pos, depth)
			if err != nil {
				return 0, err
			}
		}
		return pos, nil
	case e.Kind.Class() == schema.ClassBytesLike:
		for i := n; i > 0; i-- {
			hdr := buf + (i-1)*16
			ptr, err := u.readSlot(hdr, 8)
			if err != nil {
				return 0, err
			}
			sl, err := u.readSlot(hdr+8, 8)
			if err != nil {
				return 0, err
			}
			pos, err = u.emitString(num, ptr, sl, pos)
			if err != nil {
				return 0, err
			}
		}
		return pos, nil
	case e.Packed:
		es := scalarSlotSize(e.Kind)
		body := pos
		for i := n; i > 0; i-- {
			bits, err := u.readSlot(buf+(i-1)*es, es)
			if err != nil {
				return 0, err
			}
			u.fieldUnit(1)
			u.scratch = encodeScalar(u.scratch[:0], e.Kind, sign32(e.Kind, bits))
			pos, err = u.writeBack(pos, u.scratch)
			if err != nil {
				return 0, err
			}
		}
		length := body - pos
		u.fieldUnit(1)
		u.scratch = wire.AppendTag(u.scratch[:0], num, wire.TypeBytes)
		u.scratch = wire.AppendVarint(u.scratch, length)
		return u.writeBack(pos, u.scratch)
	default:
		es := scalarSlotSize(e.Kind)
		for i := n; i > 0; i-- {
			bits, err := u.readSlot(buf+(i-1)*es, es)
			if err != nil {
				return 0, err
			}
			u.fieldUnit(1)
			pos, err = u.emitKV(num, e.Kind, sign32(e.Kind, bits), pos)
			if err != nil {
				return 0, err
			}
		}
		return pos, nil
	}
}
