package ser

import (
	"bytes"
	"math/rand"
	"testing"

	"protoacc/internal/accel/adt"
	"protoacc/internal/accel/layout"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

type rig struct {
	mem  *mem.Memory
	mat  *layout.Materializer
	adts *adt.Set
	unit *Unit
}

func newRig(t *testing.T, cfg Config, roots ...*schema.Message) *rig {
	t.Helper()
	m := mem.New()
	adtAlloc := mem.NewAllocator(m.Map("adt", 1<<20))
	heap := mem.NewAllocator(m.Map("heap", 64<<20))
	out := m.Map("ser-out", 64<<20)
	ptrs := m.Map("ser-ptrs", 1<<16)
	reg := layout.NewRegistry()
	set, err := adt.Build(m, adtAlloc, reg, roots...)
	if err != nil {
		t.Fatal(err)
	}
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	u := New(m, sys.NewPort("accel"), cfg)
	u.AssignArena(out, ptrs)
	return &rig{mem: m, mat: layout.NewMaterializer(m, heap, reg), adts: set, unit: u}
}

// serialize materializes msg and serializes it with the accelerator,
// returning the produced wire bytes.
func (r *rig) serialize(t *testing.T, msg *dynamic.Message) ([]byte, Stats) {
	t.Helper()
	objAddr, err := r.mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := r.unit.Serialize(r.adts.Addr(msg.Type()), objAddr)
	if err != nil {
		t.Fatal(err)
	}
	addr, n, err := r.unit.Output(r.unit.Outputs() - 1)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, n)
	if err := r.mem.ReadBytes(addr, b); err != nil {
		t.Fatal(err)
	}
	return b, st
}

func richType() *schema.Message {
	sub := mustMessage("Sub",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "name", Number: 2, Kind: schema.KindString})
	return mustMessage("Rich",
		&schema.Field{Name: "i32", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s64", Number: 2, Kind: schema.KindSint64},
		&schema.Field{Name: "f", Number: 3, Kind: schema.KindFloat},
		&schema.Field{Name: "d", Number: 4, Kind: schema.KindDouble},
		&schema.Field{Name: "b", Number: 5, Kind: schema.KindBool},
		&schema.Field{Name: "s", Number: 6, Kind: schema.KindString},
		&schema.Field{Name: "sub", Number: 7, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "ri", Number: 8, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "rp", Number: 9, Kind: schema.KindInt64, Label: schema.LabelRepeated, Packed: true},
		&schema.Field{Name: "rs", Number: 10, Kind: schema.KindString, Label: schema.LabelRepeated},
		&schema.Field{Name: "rm", Number: 11, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated},
		&schema.Field{Name: "sf", Number: 12, Kind: schema.KindSfixed32},
	)
}

func populateRich(typ *schema.Message) *dynamic.Message {
	m := dynamic.New(typ)
	m.SetInt32(1, -42)
	m.SetInt64(2, -123456789)
	m.SetFloat(3, 2.5)
	m.SetDouble(4, -0.125)
	m.SetBool(5, true)
	m.SetString(6, "hello accelerator")
	s := m.MutableMessage(7)
	s.SetInt64(1, 99)
	s.SetString(2, "inner")
	for i := int32(0); i < 5; i++ {
		m.AddScalarBits(8, uint64(int64(i-2)))
		m.AddScalarBits(9, uint64(int64(i*1000)))
	}
	m.AddString(10, "first")
	m.AddString(10, "")
	m.AddMessage(11).SetInt64(1, 1)
	m.AddMessage(11).SetString(2, "two")
	m.SetInt32(12, -7)
	return m
}

func TestSerializeByteIdenticalToSoftware(t *testing.T) {
	typ := richType()
	msg := populateRich(typ)
	want, err := codec.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, DefaultConfig(), typ)
	got, st := r.serialize(t, msg)
	if !bytes.Equal(got, want) {
		t.Errorf("accelerator output differs from software serializer\n got %x\nwant %x", got, want)
	}
	if st.Cycles <= 0 || st.FieldsEmitted == 0 || st.BytesProduced != uint64(len(want)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestSerializeRandomByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 80; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		want, err := codec.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		r := newRig(t, DefaultConfig(), typ)
		got, _ := r.serialize(t, msg)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: output differs (%d vs %d bytes)", trial, len(got), len(want))
		}
	}
}

func TestMultipleOutputsDescend(t *testing.T) {
	typ := mustMessage("M", &schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})
	r := newRig(t, DefaultConfig(), typ)
	var addrs []uint64
	for i := int32(0); i < 3; i++ {
		msg := dynamic.New(typ)
		msg.SetInt32(1, i)
		objAddr, err := r.mat.Write(msg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.unit.Serialize(r.adts.Addr(typ), objAddr); err != nil {
			t.Fatal(err)
		}
		addr, _, err := r.unit.Output(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	if r.unit.Outputs() != 3 {
		t.Fatalf("Outputs = %d", r.unit.Outputs())
	}
	if !(addrs[0] > addrs[1] && addrs[1] > addrs[2]) {
		t.Errorf("outputs should descend in the arena: %v", addrs)
	}
	// Each output decodes to the right value.
	for i := uint64(0); i < 3; i++ {
		addr, n, _ := r.unit.Output(i)
		b := make([]byte, n)
		if err := r.mem.ReadBytes(addr, b); err != nil {
			t.Fatal(err)
		}
		got, err := codec.Unmarshal(typ, b)
		if err != nil || got.GetInt32(1) != int32(i) {
			t.Errorf("output %d decodes to %d (%v)", i, got.GetInt32(1), err)
		}
	}
}

func TestEmptyMessageZeroBytes(t *testing.T) {
	typ := mustMessage("E")
	r := newRig(t, DefaultConfig(), typ)
	got, _ := r.serialize(t, dynamic.New(typ))
	if len(got) != 0 {
		t.Errorf("empty message produced %d bytes", len(got))
	}
}

func TestNoArenaError(t *testing.T) {
	typ := mustMessage("M", &schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})
	m := mem.New()
	adtAlloc := mem.NewAllocator(m.Map("adt", 1<<16))
	reg := layout.NewRegistry()
	set, err := adt.Build(m, adtAlloc, reg, typ)
	if err != nil {
		t.Fatal(err)
	}
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	u := New(m, sys.NewPort("accel"), DefaultConfig())
	if _, err := u.Serialize(set.Addr(typ), 0x10000); err != ErrNoArena {
		t.Errorf("err = %v, want ErrNoArena", err)
	}
}

func TestArenaExhaustion(t *testing.T) {
	typ := mustMessage("M", &schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	m := mem.New()
	adtAlloc := mem.NewAllocator(m.Map("adt", 1<<16))
	heap := mem.NewAllocator(m.Map("heap", 1<<20))
	out := m.Map("ser-out", 64) // tiny output buffer
	ptrs := m.Map("ser-ptrs", 256)
	reg := layout.NewRegistry()
	set, err := adt.Build(m, adtAlloc, reg, typ)
	if err != nil {
		t.Fatal(err)
	}
	sys := memmodel.NewSystem(memmodel.DefaultConfig())
	u := New(m, sys.NewPort("accel"), DefaultConfig())
	u.AssignArena(out, ptrs)
	mat := layout.NewMaterializer(m, heap, reg)
	msg := dynamic.New(typ)
	msg.SetBytes(1, bytes.Repeat([]byte{1}, 1000))
	objAddr, err := mat.Write(msg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Serialize(set.Addr(typ), objAddr); err == nil {
		t.Error("expected arena exhaustion")
	}
}

func TestDeepNestingSpills(t *testing.T) {
	rec := &schema.Message{Name: "R"}
	if err := rec.SetFields([]*schema.Field{
		{Name: "self", Number: 1, Kind: schema.KindMessage, Message: rec},
		{Name: "v", Number: 2, Kind: schema.KindInt32},
	}); err != nil {
		t.Fatal(err)
	}
	build := func(depth int) *dynamic.Message {
		m := dynamic.New(rec)
		cur := m
		for i := 0; i < depth; i++ {
			cur = cur.MutableMessage(1)
		}
		cur.SetInt32(2, 1)
		return m
	}
	r := newRig(t, DefaultConfig(), rec)
	_, shallow := r.serialize(t, build(10))
	if shallow.StackSpills != 0 {
		t.Errorf("depth 10 spilled")
	}
	r2 := newRig(t, DefaultConfig(), rec)
	_, deep := r2.serialize(t, build(40))
	if deep.StackSpills == 0 {
		t.Error("depth 40 should spill")
	}
	// Architectural limit.
	r3 := newRig(t, DefaultConfig(), rec)
	objAddr, err := r3.mat.Write(build(150))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r3.unit.Serialize(r3.adts.Addr(rec), objAddr); err == nil {
		t.Error("expected depth error")
	}
}

func TestMoreFieldUnitsFaster(t *testing.T) {
	// The A3 ablation direction: a field-unit-bound workload speeds up
	// with more units.
	typ := richType()
	msg := populateRich(typ)
	cyclesWith := func(units int) float64 {
		cfg := DefaultConfig()
		cfg.NumFieldUnits = units
		r := newRig(t, cfg, typ)
		_, st := r.serialize(t, msg)
		return st.Cycles
	}
	one, eight := cyclesWith(1), cyclesWith(8)
	if eight > one {
		t.Errorf("8 units (%f) should not be slower than 1 (%f)", eight, one)
	}
}

func TestNoByteSizePass(t *testing.T) {
	// The high-to-low trick means output bytes are written exactly once:
	// cycles should scale ~linearly in output size for string payloads,
	// with no separate size-pass component. Serialize a large string and
	// check the cycle count is close to the memwriter bound.
	typ := mustMessage("M", &schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	msg := dynamic.New(typ)
	const n = 1 << 20
	msg.SetBytes(1, bytes.Repeat([]byte{7}, n))
	r := newRig(t, DefaultConfig(), typ)
	_, st := r.serialize(t, msg)
	beats := float64(n / 16)
	if st.Cycles < beats {
		t.Errorf("cycles %f below memwriter bound %f", st.Cycles, beats)
	}
	// Cold DRAM traffic for src+dst adds a memory-bound component, but a
	// hidden size pass would double the object traversal: stay within a
	// constant factor of the single-pass bound.
	if st.Cycles > 12*beats {
		t.Errorf("cycles %f far above memwriter bound %f — hidden size pass?", st.Cycles, beats)
	}
}

func TestSparseWideMessageFrontendCost(t *testing.T) {
	// §3.7: our design reads one bit per defined field number. A sparse
	// message with a huge field-number range pays frontend scan cycles.
	dense := mustMessage("Dense",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "b", Number: 2, Kind: schema.KindInt32})
	sparse := mustMessage("Sparse",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "b", Number: 4000, Kind: schema.KindInt32})
	run := func(typ *schema.Message) float64 {
		msg := dynamic.New(typ)
		msg.SetInt32(1, 5)
		msg.SetInt32(typ.MaxFieldNumber(), 6)
		r := newRig(t, DefaultConfig(), typ)
		_, st := r.serialize(t, msg)
		return st.FrontendCycles
	}
	if run(sparse) <= run(dense) {
		t.Error("sparse wide-range type should cost more frontend cycles")
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
