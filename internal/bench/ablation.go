package bench

import (
	"fmt"
	"strings"

	"protoacc/internal/accel/asic"
	"protoacc/internal/accel/layout"
	"protoacc/internal/accel/opprime"
	"protoacc/internal/core"
	"protoacc/internal/fleet"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/cpu"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
)

// Ablation identifiers (DESIGN.md A1-A5).
type Ablation string

// The ablations.
const (
	AblATDvsPerInstance Ablation = "adt-vs-per-instance"
	AblHasbits          Ablation = "sparse-vs-dense-hasbits"
	AblFieldUnits       Ablation = "field-unit-count"
	AblStackDepth       Ablation = "stack-depth"
	AblMemloaderWidth   Ablation = "memloader-width"
	AblInterference     Ablation = "shared-cache-interference"
	AblFrontend         Ablation = "frontend-pressure"
)

// Ablations lists all ablation ids.
func Ablations() []Ablation {
	return []Ablation{AblATDvsPerInstance, AblHasbits, AblFieldUnits, AblStackDepth, AblMemloaderWidth, AblInterference, AblFrontend}
}

// RunAblation executes one ablation and returns its report text.
func RunAblation(a Ablation, opts Options) (string, error) {
	switch a {
	case AblATDvsPerInstance:
		emp, err := ablationProgrammingTablesEmpirical(opts)
		if err != nil {
			return "", err
		}
		return ablationProgrammingTables() + "\n" + emp, nil
	case AblHasbits:
		return ablationHasbits(), nil
	case AblFieldUnits:
		return ablationFieldUnits(opts)
	case AblStackDepth:
		return ablationStackDepth(opts)
	case AblMemloaderWidth:
		return ablationMemloaderWidth(opts)
	case AblInterference:
		return ablationInterference(opts)
	case AblFrontend:
		return ablationFrontendPressure(opts)
	default:
		return "", fmt.Errorf("bench: unknown ablation %q", a)
	}
}

// ablationProgrammingTables reproduces the §3.7 trade-off analysis: our
// design reads one extra bit per field number in the defined range (the
// sparse hasbits), while per-message-instance programming tables (Optimus
// Prime) write an extra 64 bits per present field. A field-number usage
// density above 1/64 favours the ADT design; the Figure 7 distribution
// shows how much of the fleet that covers.
func ablationProgrammingTables() string {
	var sb strings.Builder
	sb.WriteString("A1: per-type ADTs + sparse hasbits vs per-instance programming tables (§3.7)\n")
	sb.WriteString("model: assume R defined field numbers, P = density*R present fields\n")
	sb.WriteString("  ADT design overhead      = R bits read per message\n")
	sb.WriteString("  per-instance table cost  = 64*P bits written per message\n\n")
	fmt.Fprintf(&sb, "%-14s %10s %14s %16s %10s\n",
		"density", "msgs %", "ADT bits/field", "table bits/field", "winner")
	const r = 64.0 // representative range; the ratio depends only on density
	var favoured float64
	for _, b := range fleet.FieldDensity() {
		d := (b.Lo + b.Hi) / 2
		if b.Hi > 1 {
			d = 1
		}
		if b.Lo == 0 {
			// The figure's "0.00" bucket: messages whose density rounds
			// to zero sit below the 1/64 crossover.
			d = 0.01
		}
		p := d * r
		adtBits := r
		tableBits := 64 * p
		winner := "ADT"
		if adtBits > tableBits {
			winner = "per-instance"
		} else {
			favoured += b.Share
		}
		perFieldADT := adtBits / maxF(p, 1)
		perFieldTable := tableBits / maxF(p, 1)
		fmt.Fprintf(&sb, "[%.2f, %.2f)  %9.1f%% %14.1f %16.1f %10s\n",
			b.Lo, minF(b.Hi, 1.0), b.Share*100, perFieldADT, perFieldTable, winner)
	}
	fmt.Fprintf(&sb, "\nADT design favoured for %.1f%% of observed messages (paper: at least 92%%)\n", favoured*100)
	return sb.String()
}

// ablationHasbits contrasts the accelerator's sparse hasbits (§4.2:
// directly indexable by field number) with protoc's dense packing, which
// would require a mapping table read per parsed field.
func ablationHasbits() string {
	var sb strings.Builder
	sb.WriteString("A2: sparse (accelerator) vs dense (protoc) hasbits representation (§4.2)\n")
	sb.WriteString("model: D defined fields in a range R = D/density\n")
	sb.WriteString("  sparse: R bits of object state, direct index, 0 extra reads\n")
	sb.WriteString("  dense:  D bits of object state, +1 32-bit mapping read per field handled\n\n")
	fmt.Fprintf(&sb, "%-10s %-10s %14s %14s %20s\n",
		"density", "defined", "sparse bits", "dense bits", "dense extra reads")
	for _, density := range []float64{1.0, 0.5, 0.25, 0.1, 0.05, 1.0 / 64} {
		const defined = 16.0
		r := defined / density
		fmt.Fprintf(&sb, "%-10.3f %-10.0f %14.0f %14.0f %20s\n",
			density, defined, r, defined, "1 per present field")
	}
	sb.WriteString("\nthe dense form saves object bytes only below density 1/64 —\n")
	sb.WriteString("the regime Figure 7 shows is rare — while costing a read per field\n")
	sb.WriteString("on every serialization; the accelerator therefore uses the sparse form.\n")
	return sb.String()
}

// ablationFieldUnits sweeps the serializer's field unit count (§4.5.4),
// reporting throughput on the Figure 11d workload set alongside silicon
// area from the ASIC model. The (unit count × workload) grid fans out
// over the worker pool; the report is assembled by grid index.
func ablationFieldUnits(opts Options) (string, error) {
	units := []int{1, 2, 4, 8}
	workloads := AllocWorkloads()
	vals := make([]float64, len(units)*len(workloads))
	err := forEachIndexed(len(vals), opts.parallelism(), func(i int) error {
		u := units[i/len(workloads)]
		o := opts
		o.Config = func(k core.Kind) core.Config {
			cfg := opts.Config(k)
			cfg.Ser.NumFieldUnits = u
			return cfg
		}
		m, err := Run(core.KindAccel, Serialize, workloads[i%len(workloads)], o)
		if err != nil {
			return err
		}
		vals[i] = m.GbitsPS
		return nil
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("A3: serializer field-unit count sweep (§4.5.4)\n")
	fmt.Fprintf(&sb, "%-8s %18s %14s\n", "units", "geomean Gbit/s", "area mm^2")
	for ui, u := range units {
		scfg := opts.Config(core.KindAccel).Ser
		scfg.NumFieldUnits = u
		area := asic.Serializer(scfg).TotalAreaMM2()
		fmt.Fprintf(&sb, "%-8d %18.2f %14.4f\n", u, Geomean(vals[ui*len(workloads):(ui+1)*len(workloads)]), area)
	}
	return sb.String(), nil
}

// deepWorkload builds a chain-nested workload of the given depth.
func deepWorkload(depth int) Workload {
	rec := &schema.Message{Name: "Deep"}
	if err := rec.SetFields([]*schema.Field{
		{Name: "next", Number: 1, Kind: schema.KindMessage, Message: rec},
		{Name: "v", Number: 2, Kind: schema.KindInt64},
	}); err != nil {
		panic(err)
	}
	return newWorkload(fmt.Sprintf("depth-%d", depth), rec, func(int) *dynamic.Message {
		m := dynamic.New(rec)
		cur := m
		for i := 0; i < depth; i++ {
			cur.SetInt64(2, int64(i))
			cur = cur.MutableMessage(1)
		}
		cur.SetInt64(2, int64(depth))
		return m
	}, 32)
}

// ablationStackDepth sweeps message depth against the on-chip metadata
// stack (§3.8): past the on-chip depth, pushes and pops spill.
func ablationStackDepth(opts Options) (string, error) {
	msgDepths := []int{8, 25, 50, 90}
	chipDepths := []int{12, 25, 100}
	ws := make([]Workload, len(msgDepths))
	for i, d := range msgDepths {
		ws[i] = deepWorkload(d)
	}
	vals := make([]float64, len(msgDepths)*len(chipDepths))
	err := forEachIndexed(len(vals), opts.parallelism(), func(i int) error {
		d := chipDepths[i%len(chipDepths)]
		o := opts
		o.Config = func(k core.Kind) core.Config {
			cfg := opts.Config(k)
			cfg.Deser.OnChipStackDepth = d
			return cfg
		}
		m, err := Run(core.KindAccel, Deserialize, ws[i/len(chipDepths)], o)
		if err != nil {
			return err
		}
		vals[i] = m.GbitsPS
		return nil
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("A4: metadata stack depth vs message nesting (§3.8)\n")
	fmt.Fprintf(&sb, "%-12s %-14s %16s\n", "msg depth", "on-chip depth", "deser Gbit/s")
	for mi, msgDepth := range msgDepths {
		for ci, chipDepth := range chipDepths {
			fmt.Fprintf(&sb, "%-12d %-14d %16.3f\n", msgDepth, chipDepth, vals[mi*len(chipDepths)+ci])
		}
	}
	sb.WriteString("\nfleet data (§3.8): 99.999% of bytes at depth <= 25, max < 100;\n")
	sb.WriteString("25 on-chip entries avoid spills for virtually all traffic.\n")
	return sb.String(), nil
}

// ablationMemloaderWidth sweeps the memloader width (§4.4.2) over the
// deserialization microbenchmarks.
func ablationMemloaderWidth(opts Options) (string, error) {
	widths := []uint64{8, 16, 32}
	nonAlloc := NonAllocWorkloads()
	workloads := append(append([]Workload{}, nonAlloc...), AllocWorkloads()...)
	vals := make([]float64, len(widths)*len(workloads))
	err := forEachIndexed(len(vals), opts.parallelism(), func(i int) error {
		wd := widths[i/len(workloads)]
		o := opts
		o.Config = func(k core.Kind) core.Config {
			cfg := opts.Config(k)
			cfg.Deser.MemloaderWidth = wd
			return cfg
		}
		m, err := Run(core.KindAccel, Deserialize, workloads[i%len(workloads)], o)
		if err != nil {
			return err
		}
		vals[i] = m.GbitsPS
		return nil
	})
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("A5: memloader width sweep (§4.4.2)\n")
	fmt.Fprintf(&sb, "%-8s %22s %22s %12s\n",
		"width", "non-alloc geomean Gb/s", "alloc geomean Gb/s", "area mm^2")
	for wi, width := range widths {
		row := vals[wi*len(workloads) : (wi+1)*len(workloads)]
		dcfg := opts.Config(core.KindAccel).Deser
		dcfg.MemloaderWidth = width
		area := asic.Deserializer(dcfg).TotalAreaMM2()
		fmt.Fprintf(&sb, "%-8d %22.2f %22.2f %12.4f\n",
			width, Geomean(row[:len(nonAlloc)]), Geomean(row[len(nonAlloc):]), area)
	}
	return sb.String(), nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ablationProgrammingTablesEmpirical runs the §3.7/§6 comparison end to
// end: serialization on ProtoAcc (per-type ADTs, direct dispatch) versus
// the Optimus-Prime-style baseline (CPU-built per-instance tables feeding
// a table-driven serializer), across field-presence densities. Both
// accelerators produce identical wire bytes; the difference is who pays
// for programming information and when.
func ablationProgrammingTablesEmpirical(opts Options) (string, error) {
	const definedFields = 64
	const batch = 64
	var fields []*schema.Field
	for i := 1; i <= definedFields; i++ {
		fields = append(fields, &schema.Field{
			Name: fmt.Sprintf("f%d", i), Number: int32(i), Kind: schema.KindInt64,
		})
	}
	typ := mustType("Density", fields...)

	var sb strings.Builder
	sb.WriteString("A1 (empirical): end-to-end serialization, ProtoAcc vs per-instance tables\n")
	sb.WriteString("64 defined int64 fields, 64-message batches; cycles per message at 2 GHz\n\n")
	fmt.Fprintf(&sb, "%-10s %14s %14s %14s %14s %10s\n",
		"density", "protoacc", "table build", "baseline ser", "baseline tot", "winner")

	for _, density := range []float64{1.0 / 64, 0.125, 0.25, 0.5, 1.0} {
		present := int(density * definedFields)
		if present < 1 {
			present = 1
		}
		msgs := make([]*dynamic.Message, batch)
		for i := range msgs {
			m := dynamic.New(typ)
			for f := 0; f < present; f++ {
				m.SetInt64(int32(1+f), int64(i*64+f)*2654435761)
			}
			msgs[i] = m
		}

		// ProtoAcc path via the standard harness.
		var wire [][]byte
		var bytesTotal uint64
		for _, m := range msgs {
			b, err := marshalRef(m)
			if err != nil {
				return "", err
			}
			wire = append(wire, b)
			bytesTotal += uint64(len(b))
		}
		w := Workload{Name: "density", Type: typ, Messages: msgs, Wire: wire, Bytes: bytesTotal}
		pm, err := Run(core.KindAccel, Serialize, w, opts)
		if err != nil {
			return "", err
		}
		protoaccPerMsg := pm.Cycles / batch

		// Baseline path: CPU table construction + table-driven serializer.
		m := mem.New()
		heap := mem.NewAllocator(m.Map("heap", 32<<20))
		tables := mem.NewAllocator(m.Map("tables", 32<<20))
		out := m.Map("out", 32<<20)
		reg := layout.NewRegistry()
		msys := memmodel.NewSystem(memmodel.DefaultConfig())
		c := cpu.New(cpu.BOOMParams(), m, msys.NewPort("cpu"), heap, reg)
		builder := &opprime.Builder{CPU: c, Mem: m, Reg: reg, Alloc: tables}
		ser := opprime.NewSerializer(m, msys.NewPort("accel"), out)
		mat := layout.NewMaterializer(m, heap, reg)

		var buildCycles, serCycles float64
		for _, msg := range msgs {
			objAddr, err := mat.Write(msg)
			if err != nil {
				return "", err
			}
			before := c.Cycles()
			tab, err := builder.BuildTable(typ, objAddr)
			if err != nil {
				return "", err
			}
			buildCycles += c.Cycles() - before
			sBefore := ser.Cycles
			if _, _, err := ser.Serialize(tab); err != nil {
				return "", err
			}
			serCycles += ser.Cycles - sBefore
		}
		buildPerMsg := buildCycles / batch
		serPerMsg := serCycles / batch
		baselineTotal := buildPerMsg + serPerMsg
		winner := "protoacc"
		if baselineTotal < protoaccPerMsg {
			winner = "per-instance"
		}
		fmt.Fprintf(&sb, "%-10.3f %14.0f %14.0f %14.0f %14.0f %10s\n",
			density, protoaccPerMsg, buildPerMsg, serPerMsg, baselineTotal, winner)
	}
	sb.WriteString("\ntable construction sits on the CPU critical path and grows with\n")
	sb.WriteString("present fields; ProtoAcc pays only the sparse-hasbits scan, fixed per type.\n")
	return sb.String(), nil
}

// ablationInterference measures the cost of sharing the L2/LLC with the
// application core (Figure 8): between accelerator operations, the CPU
// streams over a working set of the given size, evicting the shared cache
// levels. The paper places the accelerator behind the shared L2 precisely
// so hot ADTs and buffers stay close; this ablation shows the sensitivity.
func ablationInterference(opts Options) (string, error) {
	var sb strings.Builder
	sb.WriteString("A6: shared L2/LLC interference from a co-running core (Figure 8)\n")
	fmt.Fprintf(&sb, "%-16s %20s %20s\n", "CPU working set", "varint-5 deser Gb/s", "string_long deser Gb/s")
	workloads := map[string]Workload{}
	for _, w := range NonAllocWorkloads() {
		if w.Name == "varint-5" {
			workloads[w.Name] = w
		}
	}
	for _, w := range AllocWorkloads() {
		if w.Name == "string_long" {
			workloads[w.Name] = w
		}
	}
	for _, pollute := range []uint64{0, 256 << 10, 2 << 20, 16 << 20} {
		row := map[string]float64{}
		for name, w := range workloads {
			cfg := sizedConfig(opts.Config(core.KindAccel), w.Bytes+pollute, Deserialize)
			sys := core.New(cfg)
			if err := sys.LoadSchema(w.Type); err != nil {
				return "", err
			}
			refs := make([]core.WireRef, len(w.Wire))
			for i, b := range w.Wire {
				a, err := sys.WriteWire(b)
				if err != nil {
					return "", err
				}
				refs[i] = core.WireRef{Addr: a, Len: uint64(len(b))}
			}
			var polluter uint64
			if pollute > 0 {
				var err error
				polluter, err = sys.Static.Alloc(pollute, 64)
				if err != nil {
					return "", err
				}
			}
			var cycles float64
			var bytes uint64
			for batch := 0; batch < 2; batch++ { // warm-up + measured
				sys.ResetWork()
				cycles, bytes = 0, 0
				for _, ref := range refs {
					if pollute > 0 {
						// The co-running core sweeps its working set
						// through the shared hierarchy.
						sys.CPU.Port.StreamAccess(polluter, pollute)
					}
					res, err := sys.Deserialize(w.Type, ref.Addr, ref.Len)
					if err != nil {
						return "", err
					}
					cycles += res.Cycles
					bytes += res.Bytes
				}
			}
			seconds := cycles / (sys.Cfg.AccelFreqGHz * 1e9)
			row[name] = float64(bytes) * 8 / seconds / 1e9
		}
		label := "none"
		if pollute > 0 {
			label = fmt.Sprintf("%d KiB", pollute>>10)
		}
		fmt.Fprintf(&sb, "%-16s %20.2f %20.2f\n", label, row["varint-5"], row["string_long"])
	}
	sb.WriteString("\nworking sets past the shared L2 (512 KiB) evict the accelerator's ADTs\n")
	sb.WriteString("and stream buffers; past the LLC they force DRAM trips per operation.\n")
	return sb.String(), nil
}

// ablationFrontendPressure quantifies the §7 observation that protobuf
// offload also relieves I-cache and branch-predictor pressure: the CPU
// baselines are charged a per-call front-end refill cost (the generated
// parse/serialize code is large and branch-heavy), which the accelerator
// never pays. The headline calibration uses zero; this sweep shows how
// much additional speedup the front-end effect would contribute —
// "potentially as many cycles as accelerating protobufs itself".
func ablationFrontendPressure(opts Options) (string, error) {
	var sb strings.Builder
	sb.WriteString("A7: CPU front-end (I$/BTB) pressure per protobuf call (§7)\n")
	fmt.Fprintf(&sb, "%-18s %16s %16s %14s\n",
		"refill cy/call", "BOOM Gb/s", "accel Gb/s", "accel/BOOM")
	ws, err := HyperWorkloads()
	if err != nil {
		return "", err
	}
	w := ws[4] // bench4: small RPC messages — front-end costs dominate
	for _, pressure := range []float64{0, 250, 500, 1000} {
		p := pressure
		o := opts
		o.SoftwareArenas = true
		o.Config = func(k core.Kind) core.Config {
			cfg := opts.Config(k)
			cfg.CPU.FrontendPressure = p
			return cfg
		}
		bm, err := Run(core.KindBOOM, Deserialize, w, o)
		if err != nil {
			return "", err
		}
		am, err := Run(core.KindAccel, Deserialize, w, o)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%-18.0f %16.3f %16.3f %13.1fx\n",
			pressure, bm.GbitsPS, am.GbitsPS, am.GbitsPS/bm.GbitsPS)
	}
	sb.WriteString("\nworkload: bench4 (small RPC messages) deserialization; the accelerator\n")
	sb.WriteString("is insensitive while the CPU loses throughput to code-footprint refills.\n")
	return sb.String(), nil
}
