package bench

import (
	"strings"
	"testing"

	"protoacc/internal/core"
	"protoacc/internal/fleet"
)

func TestWorkloadSetsComplete(t *testing.T) {
	na := NonAllocWorkloads()
	if len(na) != 13 { // varint-0..10, double, float
		t.Fatalf("non-alloc set has %d workloads, want 13", len(na))
	}
	if na[0].Name != "varint-0" || na[10].Name != "varint-10" ||
		na[11].Name != "double" || na[12].Name != "float" {
		t.Error("non-alloc names wrong")
	}
	al := AllocWorkloads()
	if len(al) != 20 { // 11 varint-R + 4 strings + 2 fixed-R + 3 SUB
		t.Fatalf("alloc set has %d workloads, want 20", len(al))
	}
	names := map[string]bool{}
	for _, w := range al {
		names[w.Name] = true
		if len(w.Wire) == 0 || w.Bytes == 0 {
			t.Errorf("%s: empty workload", w.Name)
		}
	}
	for _, want := range []string{"varint-0-R", "varint-10-R", "string",
		"string_15", "string_long", "string_very_long", "double-R",
		"float-R", "bool-SUB", "double-SUB", "string-SUB"} {
		if !names[want] {
			t.Errorf("missing workload %s", want)
		}
	}
}

func TestVarintValueSizes(t *testing.T) {
	// varintValue(n) must encode to exactly max(1, n) bytes.
	sizes := []int{1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for n := 0; n <= 10; n++ {
		v := varintValue(n)
		enc := 1
		for x := v; x >= 0x80; x >>= 7 {
			enc++
		}
		if enc != sizes[n] {
			t.Errorf("varintValue(%d) encodes to %d bytes, want %d", n, enc, sizes[n])
		}
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
	if g := Geomean([]float64{2, 8}); g != 4 {
		t.Errorf("Geomean(2,8) = %f", g)
	}
	if Geomean([]float64{1, 0}) != 0 {
		t.Error("non-positive values")
	}
}

// runFig is a helper running a figure once (tests share results).
func runFig(t *testing.T, f Figure) []Series {
	t.Helper()
	rows, err := RunFigure(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestFigure11aShape(t *testing.T) {
	rows := runFig(t, Fig11a)
	if rows[len(rows)-1].Bench != "geomean" {
		t.Fatal("missing geomean row")
	}
	// Paper shape: throughput rises with varint size on all systems, and
	// the accelerated system wins every benchmark.
	for i := 2; i <= 10; i++ {
		if rows[i].Accel <= rows[i-1].Accel {
			t.Errorf("accel varint-%d (%f) should exceed varint-%d (%f)",
				i, rows[i].Accel, i-1, rows[i-1].Accel)
		}
	}
	for _, r := range rows[:len(rows)-1] {
		if r.Accel <= r.BOOM || r.Accel <= r.Xeon {
			t.Errorf("%s: accel should win (%f vs %f/%f)", r.Bench, r.Accel, r.BOOM, r.Xeon)
		}
		if r.Xeon <= r.BOOM {
			t.Errorf("%s: Xeon should beat BOOM", r.Bench)
		}
	}
	vb, vx := Speedups(rows)
	// Paper: 7.0x vs BOOM, 2.6x vs Xeon. Hold the shape within a band.
	if vb < 5 || vb > 10 {
		t.Errorf("11a speedup vs BOOM = %.1f, want ~7", vb)
	}
	if vx < 1.8 || vx > 4 {
		t.Errorf("11a speedup vs Xeon = %.1f, want ~2.6", vx)
	}
}

func TestFigure11bShape(t *testing.T) {
	rows := runFig(t, Fig11b)
	for _, r := range rows[:len(rows)-1] {
		if r.Accel <= r.BOOM || r.Accel <= r.Xeon {
			t.Errorf("%s: accel should win", r.Bench)
		}
	}
	vb, vx := Speedups(rows)
	// Paper: 15.5x vs BOOM, 4.5x vs Xeon.
	if vb < 10 || vb > 22 {
		t.Errorf("11b speedup vs BOOM = %.1f, want ~15.5", vb)
	}
	if vx < 3 || vx > 7 {
		t.Errorf("11b speedup vs Xeon = %.1f, want ~4.5", vx)
	}
}

func TestFigure11cShape(t *testing.T) {
	rows := runFig(t, Fig11c)
	byName := map[string]Series{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	// Long strings approach memcpy rates on every system.
	if byName["string_long"].Accel <= byName["string"].Accel {
		t.Error("accel long strings should beat short strings")
	}
	// Accelerator wins everywhere except possibly very-long strings vs
	// Xeon (the streaming-bandwidth regime where the Xeon's memory
	// system shines, per §5.1.2's observation).
	for _, r := range rows[:len(rows)-1] {
		if r.Accel <= r.BOOM {
			t.Errorf("%s: accel should beat BOOM", r.Bench)
		}
		if r.Accel <= r.Xeon && r.Bench != "string_very_long" {
			t.Errorf("%s: accel should beat Xeon", r.Bench)
		}
	}
	vb, vx := Speedups(rows)
	// Paper: 14.2x vs BOOM, 6.9x vs Xeon.
	if vb < 9 || vb > 20 {
		t.Errorf("11c speedup vs BOOM = %.1f, want ~14.2", vb)
	}
	if vx < 3.5 || vx > 9 {
		t.Errorf("11c speedup vs Xeon = %.1f, want ~6.9", vx)
	}
}

func TestFigure11dShape(t *testing.T) {
	rows := runFig(t, Fig11d)
	vb, vx := Speedups(rows)
	// Paper: 10.1x vs BOOM, 2.8x vs Xeon.
	if vb < 7 || vb > 15 {
		t.Errorf("11d speedup vs BOOM = %.1f, want ~10.1", vb)
	}
	if vx < 2 || vx > 5.5 {
		t.Errorf("11d speedup vs Xeon = %.1f, want ~2.8", vx)
	}
	for _, r := range rows[:len(rows)-1] {
		if r.Accel <= r.BOOM {
			t.Errorf("%s: accel should beat BOOM", r.Bench)
		}
	}
}

func TestOverallMicrobenchSummary(t *testing.T) {
	// Paper §5.1.3: geomean over the four benchmark classes is 11.2x vs
	// BOOM and 3.8x vs Xeon.
	var vbs, vxs []float64
	for _, f := range []Figure{Fig11a, Fig11b, Fig11c, Fig11d} {
		rows := runFig(t, f)
		vb, vx := Speedups(rows)
		vbs = append(vbs, vb)
		vxs = append(vxs, vx)
	}
	overallB, overallX := Geomean(vbs), Geomean(vxs)
	if overallB < 8 || overallB > 16 {
		t.Errorf("overall speedup vs BOOM = %.1f, paper: 11.2", overallB)
	}
	if overallX < 2.5 || overallX > 6 {
		t.Errorf("overall speedup vs Xeon = %.1f, paper: 3.8", overallX)
	}
}

func TestHyperProtoBenchShape(t *testing.T) {
	for _, f := range []Figure{Fig12, Fig13} {
		rows, err := RunFigure(f, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 7 { // bench0..5 + geomean
			t.Fatalf("%s: %d rows", f, len(rows))
		}
		for _, r := range rows[:6] {
			if r.Accel <= r.BOOM {
				t.Errorf("%s %s: accel (%f) should beat BOOM (%f)", f, r.Bench, r.Accel, r.BOOM)
			}
		}
		vb, vx := Speedups(rows)
		// Paper: 6.2x vs BOOM, 3.8x vs Xeon across the suite.
		if vb < 4 || vb > 13 {
			t.Errorf("%s speedup vs BOOM = %.1f, paper: 6.2", f, vb)
		}
		if vx < 1.5 || vx > 6 {
			t.Errorf("%s speedup vs Xeon = %.1f, paper: 3.8", f, vx)
		}
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Series{{Bench: "x", BOOM: 1, Xeon: 2, Accel: 4}}
	s := FormatTable("title", rows)
	for _, want := range []string{"title", "riscv-boom", "Xeon", "riscv-boom-accel", "4.0x", "2.0x"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestFigureTitlesAndErrors(t *testing.T) {
	for _, f := range []Figure{Fig11a, Fig11b, Fig11c, Fig11d, Fig12, Fig13} {
		if FigureTitle(f) == "" {
			t.Errorf("no title for %s", f)
		}
	}
	if _, err := RunFigure(Figure("nope"), DefaultOptions()); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestAblationProgrammingTables(t *testing.T) {
	out, err := RunAblation(AblATDvsPerInstance, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ADT design favoured") {
		t.Errorf("missing conclusion:\n%s", out)
	}
	// The §3.7 anchor: at least 92% of messages favour the ADT design.
	if !strings.Contains(out, "92.2%") {
		t.Errorf("expected 92.2%% favoured share:\n%s", out)
	}
}

func TestAblationHasbits(t *testing.T) {
	out, err := RunAblation(AblHasbits, DefaultOptions())
	if err != nil || !strings.Contains(out, "sparse") {
		t.Errorf("hasbits ablation: %v\n%s", err, out)
	}
}

func TestAblationFieldUnits(t *testing.T) {
	out, err := RunAblation(AblFieldUnits, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "units") || !strings.Contains(out, "area") {
		t.Errorf("bad output:\n%s", out)
	}
}

func TestAblationStackDepth(t *testing.T) {
	out, err := RunAblation(AblStackDepth, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "on-chip depth") {
		t.Errorf("bad output:\n%s", out)
	}
}

func TestAblationMemloaderWidth(t *testing.T) {
	out, err := RunAblation(AblMemloaderWidth, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "width") {
		t.Errorf("bad output:\n%s", out)
	}
}

func TestUnknownAblation(t *testing.T) {
	if _, err := RunAblation(Ablation("zzz"), DefaultOptions()); err == nil {
		t.Error("expected error")
	}
}

func TestRunSingleMeasurement(t *testing.T) {
	w := NonAllocWorkloads()[0]
	m, err := Run(core.KindBOOM, Deserialize, w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Workload != w.Name || m.System != core.KindBOOM || m.GbitsPS <= 0 || m.Bytes != w.Bytes {
		t.Errorf("measurement = %+v", m)
	}
}

func TestSliceCostsFigure5Insights(t *testing.T) {
	// Rebuild the Figure 5 analysis with our own measured costs and check
	// the paper's qualitative findings hold.
	costFn, err := SliceCosts(core.KindBOOM, Deserialize, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	slices := fleet.Slices()
	ts := fleet.EstimateTimeShares(slices, costFn)

	// "the large bytes-like field is 100-500x faster to handle per-byte"
	// than small varint/bytes fields (§3.6.4). Our BOOM model charges
	// first-touch costs on large fresh allocations (needed for the
	// Figure 11c calibration), which compresses the gap relative to the
	// paper's hot-cache microbenchmarks; require the order-of-magnitude
	// direction (>=15x).
	var smallVarintCost, bigBytesCost float64
	for _, x := range ts {
		if x.Slice.Name == "varint-1" {
			smallVarintCost = x.CostPerB
		}
		if x.Slice.Name == "bytes-32769-inf" {
			bigBytesCost = x.CostPerB
		}
	}
	if smallVarintCost == 0 || bigBytesCost == 0 {
		t.Fatal("missing slices")
	}
	if ratio := smallVarintCost / bigBytesCost; ratio < 15 {
		t.Errorf("small varint / big bytes cost ratio = %.0f, paper: 100-500x", ratio)
	}

	// "only 14% of time is spent deserializing protobuf data at higher
	// than 1GB/s": despite bytes-like fields dominating byte volume
	// (>92%, Figure 4b), the fast slices must hold a minority of time.
	// Our calibrated BOOM core is somewhat faster per byte on mid-size
	// strings than the fleet average the paper profiled, so the measured
	// share lands above the paper's 0.14; the qualitative finding — most
	// time is spent below memcpy speed — must hold.
	fast := fleet.FastShare(ts, 1.0)
	if fast > 0.45 {
		t.Errorf("fast share = %.2f, paper: 0.14 (must stay a minority)", fast)
	}
	// And there is no silver bullet: no single slice holds most time.
	for _, x := range ts {
		if x.TimeShare > 0.5 {
			t.Errorf("slice %s holds %.0f%% of time — no single silver bullet expected",
				x.Slice.Name, x.TimeShare*100)
		}
	}
}

func TestRunOperators(t *testing.T) {
	out, err := RunOperators(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"clear", "copy", "merge", "17.1%"} {
		if !strings.Contains(out, want) {
			t.Errorf("operators output missing %q:\n%s", want, out)
		}
	}
}

func TestAblationInterference(t *testing.T) {
	out, err := RunAblation(AblInterference, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "interference") {
		t.Errorf("bad output:\n%s", out)
	}
}

func TestAblationFrontendPressure(t *testing.T) {
	out, err := RunAblation(AblFrontend, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "front-end") {
		t.Errorf("bad output:\n%s", out)
	}
}
