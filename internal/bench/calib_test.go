package bench

import (
	"fmt"
	"testing"
)

// TestCalibrationPrint is a development aid: -run TestCalibrationPrint -v
// prints all four microbenchmark figures for calibration inspection.
func TestCalibrationPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration print skipped in -short")
	}
	for _, f := range []Figure{Fig11a, Fig11b, Fig11c, Fig11d} {
		rows, err := RunFigure(f, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Println(FormatTable(FigureTitle(f), rows))
		vb, vx := Speedups(rows)
		fmt.Printf("  summary speedup: %.1fx vs BOOM, %.1fx vs Xeon\n\n", vb, vx)
	}
}
