package bench

import (
	"bytes"
	"fmt"

	"protoacc/internal/core"
	"protoacc/internal/faults"
)

// The differential chaos harness: drive a workload through an accelerated
// System under a seeded fault schedule and assert, operation by
// operation, that the functional output is byte-identical to the
// pure-software reference the workload carries — whether the op completed
// fault-free, succeeded after cycle-charged retries, or finished on the
// software fallback path. Any divergence or leaked partial state is a bug
// in the transactional dispatch layer, not an acceptable outcome of a
// fault.

// ChaosReport summarizes one chaos run.
type ChaosReport struct {
	Ops       int    // operations checked (per-op and batch phases)
	Injected  uint64 // faults the injector fired across the run
	Faulted   int    // operations that observed at least one fault
	Retries   int    // accelerator re-attempts after transient faults
	Fallbacks int    // operations completed by the software codec
}

func (r *ChaosReport) note(res core.Result) {
	r.Ops++
	if res.Fault != nil {
		r.Faulted++
		r.Retries += res.Fault.Retries
		if res.Fault.FellBack {
			r.Fallbacks++
		}
	}
}

// chaosConfig sizes an accelerated System for both directions of a chaos
// run: wire inputs and materialized objects live in Static together, and
// heap, arena, and serializer output must each hold a full batch.
func chaosConfig(base core.Config, w Workload) core.Config {
	const floor = 16 << 20
	const quantum = 1 << 20
	qneed := (w.Bytes + quantum - 1) &^ (quantum - 1)
	base.StaticSize = qneed*5 + floor
	base.HeapSize = qneed*4 + floor
	base.ArenaSize = qneed*4 + floor
	base.OutSize = qneed + floor
	return base
}

// RunChaos runs workload w on a fresh accelerated System under the given
// fault schedule and differentially verifies every operation: each
// deserialization must reproduce w.Messages[i] exactly and each
// serialization must reproduce w.Wire[i] byte-for-byte. Both the per-op
// and the batch entry points are exercised (a fault inside a batch must
// roll back and recover the batch as a unit). Returns the recovery
// statistics; any divergence is an error.
func RunChaos(w Workload, fcfg faults.Config, opts Options) (ChaosReport, error) {
	var rep ChaosReport
	cfg := chaosConfig(opts.Config(core.KindAccel), w)
	cfg.Faults = fcfg
	sys := core.New(cfg)
	if err := sys.LoadSchema(w.Type); err != nil {
		return rep, err
	}
	refs := make([]core.WireRef, len(w.Wire))
	for i, b := range w.Wire {
		a, err := sys.WriteWire(b)
		if err != nil {
			return rep, err
		}
		refs[i] = core.WireRef{Addr: a, Len: uint64(len(b))}
	}
	objs := make([]uint64, len(w.Messages))
	for i, m := range w.Messages {
		a, err := sys.MaterializeInput(m)
		if err != nil {
			return rep, err
		}
		objs[i] = a
	}

	// Phase 1: per-op deserialization and serialization.
	for i, r := range refs {
		res, err := sys.Deserialize(w.Type, r.Addr, r.Len)
		if err != nil {
			return rep, fmt.Errorf("chaos %s: deser %d: %w", w.Name, i, err)
		}
		if err := checkObject(sys, w, res.ObjAddr, i, res); err != nil {
			return rep, err
		}
		rep.note(res)
	}
	for i, obj := range objs {
		res, err := sys.Serialize(w.Type, obj)
		if err != nil {
			return rep, fmt.Errorf("chaos %s: ser %d: %w", w.Name, i, err)
		}
		if err := checkWire(sys, w, res.WireAddr, res.Bytes, i, res); err != nil {
			return rep, err
		}
		rep.note(res)
	}

	// Phase 2: batch entry points (one completion barrier per batch).
	sys.ResetWork()
	bres, batchObjs, err := sys.DeserializeBatch(w.Type, refs)
	if err != nil {
		return rep, fmt.Errorf("chaos %s: deser batch: %w", w.Name, err)
	}
	for i, obj := range batchObjs {
		if err := checkObject(sys, w, obj, i, bres); err != nil {
			return rep, err
		}
	}
	rep.note(bres)
	sres, batchRefs, err := sys.SerializeBatch(w.Type, objs)
	if err != nil {
		return rep, fmt.Errorf("chaos %s: ser batch: %w", w.Name, err)
	}
	for i, r := range batchRefs {
		if err := checkWire(sys, w, r.Addr, r.Len, i, sres); err != nil {
			return rep, err
		}
	}
	rep.note(sres)

	rep.Injected = sys.Inj.TotalInjected()
	return rep, nil
}

func checkObject(sys *core.System, w Workload, objAddr uint64, i int, res core.Result) error {
	got, err := sys.ReadMessage(w.Type, objAddr)
	if err != nil {
		return fmt.Errorf("chaos %s: deser %d readback: %w", w.Name, i, err)
	}
	if !got.Equal(w.Messages[i]) {
		return fmt.Errorf("chaos %s: deser %d diverges from software reference (fault=%+v)",
			w.Name, i, res.Fault)
	}
	return nil
}

func checkWire(sys *core.System, w Workload, addr, n uint64, i int, res core.Result) error {
	out, err := sys.ReadWire(addr, n)
	if err != nil {
		return fmt.Errorf("chaos %s: ser %d readback: %w", w.Name, i, err)
	}
	if !bytes.Equal(out, w.Wire[i]) {
		return fmt.Errorf("chaos %s: ser %d diverges from reference wire (fault=%+v)",
			w.Name, i, res.Fault)
	}
	return nil
}
