package bench

import (
	"testing"

	"protoacc/internal/core"
	"protoacc/internal/faults"
	"protoacc/internal/pb/schema"
)

// chaosWorkloads is a small cross-section of the microbenchmark set:
// inline scalars, repeated fields, strings around the allocation
// boundaries, and nested sub-messages.
func chaosWorkloads() []Workload {
	return []Workload{
		varintWorkload(3),
		varintRepeatedWorkload(5),
		stringWorkload("string", stringShortLen, defaultBatch),
		stringWorkload("string_long", stringLongLen, 8),
		subWorkload("string-SUB", schema.KindString, 32),
	}
}

// TestChaosDifferential is the core chaos invariant: under seeded fault
// schedules across rates and seeds, every operation's output is
// byte-identical to the pure-software reference, whether it succeeded
// fault-free, after retries, or on the software fallback path.
func TestChaosDifferential(t *testing.T) {
	opts := DefaultOptions()
	var injected, faulted, fallbacks, retries int
	for _, w := range chaosWorkloads() {
		for _, seed := range []uint64{1, 42} {
			for _, rate := range []float64{0.005, 0.08} {
				fcfg := faults.Config{Enabled: true, Seed: seed, Rate: rate}
				rep, err := RunChaos(w, fcfg, opts)
				if err != nil {
					t.Fatalf("%s seed=%d rate=%v: %v", w.Name, seed, rate, err)
				}
				injected += int(rep.Injected)
				faulted += rep.Faulted
				fallbacks += rep.Fallbacks
				retries += rep.Retries
			}
		}
	}
	// The matrix must actually exercise the recovery machinery, not just
	// pass vacuously.
	if injected == 0 || faulted == 0 {
		t.Fatalf("chaos matrix injected no faults (injected=%d faulted=%d)", injected, faulted)
	}
	if fallbacks == 0 {
		t.Error("chaos matrix produced no software fallbacks")
	}
	if retries == 0 {
		t.Error("chaos matrix produced no retries")
	}
}

// TestChaosSiteFilter restricts injection to single sites, covering each
// site's abort/rollback path in isolation.
func TestChaosSiteFilter(t *testing.T) {
	opts := DefaultOptions()
	w := varintRepeatedWorkload(4)
	ws := stringWorkload("string", stringShortLen, defaultBatch)
	for _, site := range faults.SiteNames() {
		fcfg := faults.Config{Enabled: true, Seed: 9, Rate: 0.05, Sites: site}
		if _, err := RunChaos(w, fcfg, opts); err != nil {
			t.Errorf("site %s: %v", site, err)
		}
		if _, err := RunChaos(ws, fcfg, opts); err != nil {
			t.Errorf("site %s (strings): %v", site, err)
		}
	}
}

// TestChaosDeterminism: the same seed replays the identical fault
// schedule and recovery history.
func TestChaosDeterminism(t *testing.T) {
	opts := DefaultOptions()
	w := varintRepeatedWorkload(6)
	fcfg := faults.Config{Enabled: true, Seed: 123, Rate: 0.05}
	a, err := RunChaos(w, fcfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(w, fcfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("chaos runs with identical seeds diverged: %+v vs %+v", a, b)
	}
	if a.Injected == 0 {
		t.Error("determinism run injected no faults")
	}
}

// TestChaosDisabledIsFaultFree: a disabled fault config must not perturb
// the measurement at all — the recovery layer stays invisible.
func TestChaosDisabledIsFaultFree(t *testing.T) {
	opts := DefaultOptions()
	w := varintWorkload(5)
	rep, err := RunChaos(w, faults.Config{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected != 0 || rep.Faulted != 0 || rep.Fallbacks != 0 || rep.Retries != 0 {
		t.Errorf("disabled config produced recovery activity: %+v", rep)
	}
}

// TestChaosMeasurementUnperturbed: running the harness with injection
// disabled yields bit-identical throughput to the plain benchmark path,
// for both a disabled zero config and an enabled config at rate 0.
func TestChaosMeasurementUnperturbed(t *testing.T) {
	w := varintWorkload(2)
	base, err := Run(core.KindAccel, Deserialize, w, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, fcfg := range []faults.Config{
		{},
		{Enabled: true, Seed: 7, Rate: 0},
	} {
		opts := DefaultOptions()
		opts.Faults = fcfg
		got, err := Run(core.KindAccel, Deserialize, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != base.Cycles || got.GbitsPS != base.GbitsPS || got.Bytes != base.Bytes {
			t.Errorf("faults config %+v perturbed the measurement: %+v vs %+v", fcfg, got, base)
		}
	}
}
