package bench

import (
	"fmt"
	"strings"
)

// Figure identifiers mapped to their workload sets and operations.
// Figure 11a: deser, non-alloc. 11b: ser, inline (same type set as 11a).
// Figure 11c: deser, alloc. 11d: ser, non-inline (same set as 11c).
// Figures 12/13: HyperProtoBench deser/ser.
type Figure string

// The evaluated figures.
const (
	Fig11a Figure = "11a"
	Fig11b Figure = "11b"
	Fig11c Figure = "11c"
	Fig11d Figure = "11d"
	Fig12  Figure = "12"
	Fig13  Figure = "13"
)

// FigureTitle returns the paper's caption for a figure.
func FigureTitle(f Figure) string {
	switch f {
	case Fig11a:
		return "Figure 11a: Deser., field types that do not require in-accel. memory allocation"
	case Fig11b:
		return "Figure 11b: Ser., field types \"inline\" in top-level C++ message objects"
	case Fig11c:
		return "Figure 11c: Deser., field types that require in-accel. memory allocation"
	case Fig11d:
		return "Figure 11d: Ser., field types not \"inline\" in top-level C++ message objects"
	case Fig12:
		return "Figure 12: HyperProtoBench deserialization results"
	case Fig13:
		return "Figure 13: HyperProtoBench serialization results"
	default:
		return "Figure " + string(f)
	}
}

// RunFigure measures one figure's series.
func RunFigure(f Figure, opts Options) ([]Series, error) {
	switch f {
	case Fig11a:
		return RunSet(Deserialize, NonAllocWorkloads(), opts)
	case Fig11b:
		return RunSet(Serialize, NonAllocWorkloads(), opts)
	case Fig11c:
		return RunSet(Deserialize, AllocWorkloads(), opts)
	case Fig11d:
		return RunSet(Serialize, AllocWorkloads(), opts)
	case Fig12, Fig13:
		ws, err := HyperWorkloads()
		if err != nil {
			return nil, err
		}
		op := Deserialize
		if f == Fig13 {
			op = Serialize
		}
		opts.SoftwareArenas = true
		return RunSet(op, ws, opts)
	default:
		return nil, fmt.Errorf("bench: unknown figure %q", f)
	}
}

// FormatTable renders series rows as the figure's data table (Gbit/s per
// system), matching the bar groups of the paper's plots.
func FormatTable(title string, rows []Series) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	width := len("benchmark")
	for _, r := range rows {
		if len(r.Bench) > width {
			width = len(r.Bench)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %12s  %12s  %16s  %9s  %9s\n",
		width, "benchmark", "riscv-boom", "Xeon", "riscv-boom-accel", "vs-boom", "vs-xeon")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-*s  %12.3f  %12.3f  %16.3f  %8.1fx  %8.1fx\n",
			width, r.Bench, r.BOOM, r.Xeon, r.Accel, safeDiv(r.Accel, r.BOOM), safeDiv(r.Accel, r.Xeon))
	}
	return sb.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
