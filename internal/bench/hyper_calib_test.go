package bench

import (
	"fmt"
	"testing"
)

func TestHyperCalibrationPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration print skipped in -short")
	}
	for _, f := range []Figure{Fig12, Fig13} {
		rows, err := RunFigure(f, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Println(FormatTable(FigureTitle(f), rows))
		vb, vx := Speedups(rows)
		fmt.Printf("  summary speedup: %.1fx vs BOOM, %.1fx vs Xeon\n\n", vb, vx)
	}
}
