package bench

import (
	"fmt"
	"strings"

	"protoacc/internal/core"
	"protoacc/internal/fleet"
)

// RunOperators benchmarks the §7 extension operators — clear, copy, merge
// — on all three systems over a fleet-shaped message batch, reporting
// cycles per operation. These operators cover another 17.1% of fleet-wide
// C++ protobuf cycles (Figure 2: merge+copy+clear).
func RunOperators(opts Options) (string, error) {
	ws, err := HyperWorkloads()
	if err != nil {
		return "", err
	}
	// Use the configuration-service suite: nested messages exercise the
	// recursive paths of all three operators.
	w := ws[2]
	opts.SoftwareArenas = true

	type row struct {
		op     string
		cycles map[core.Kind]float64
	}
	rows := []row{
		{op: "clear", cycles: map[core.Kind]float64{}},
		{op: "copy", cycles: map[core.Kind]float64{}},
		{op: "merge", cycles: map[core.Kind]float64{}},
	}

	for _, k := range systems {
		// Deserialize-shaped sizing: materialized objects live in Static
		// and the operators allocate copies from Heap/Arena.
		cfg := sizedConfig(opts.Config(k), w.Bytes*8, Deserialize)
		cfg.SoftwareArenas = opts.SoftwareArenas
		sys := core.New(cfg)
		if err := sys.LoadSchema(w.Type); err != nil {
			return "", err
		}
		objs := make([]uint64, len(w.Messages))
		for i, m := range w.Messages {
			a, err := sys.MaterializeInput(m)
			if err != nil {
				return "", err
			}
			objs[i] = a
		}
		// copy: one deep copy per message.
		var copyCycles float64
		copies := make([]uint64, len(objs))
		for i, obj := range objs {
			res, err := sys.Copy(w.Type, obj)
			if err != nil {
				return "", err
			}
			copyCycles += res.Cycles
			copies[i] = res.ObjAddr
		}
		// merge: merge each original into its copy.
		var mergeCycles float64
		for i, obj := range objs {
			res, err := sys.Merge(w.Type, copies[i], obj)
			if err != nil {
				return "", err
			}
			mergeCycles += res.Cycles
		}
		// clear: clear the merged copies.
		var clearCycles float64
		for _, cp := range copies {
			res, err := sys.Clear(w.Type, cp)
			if err != nil {
				return "", err
			}
			clearCycles += res.Cycles
		}
		n := float64(len(objs))
		rows[0].cycles[k] = clearCycles / n
		rows[1].cycles[k] = copyCycles / n
		rows[2].cycles[k] = mergeCycles / n
	}

	var sb strings.Builder
	sb.WriteString("§7 extension: other protobuf operators (clear/copy/merge) on " + w.Name + "\n")
	fmt.Fprintf(&sb, "%-8s %14s %14s %18s %9s %9s\n",
		"op", "riscv-boom", "Xeon", "riscv-boom-accel", "vs-boom", "vs-xeon")
	for _, r := range rows {
		b, x, a := r.cycles[core.KindBOOM], r.cycles[core.KindXeon], r.cycles[core.KindAccel]
		fmt.Fprintf(&sb, "%-8s %11.0f cy %11.0f cy %15.0f cy %8.1fx %8.1fx\n",
			r.op, b, x, a, safeDiv(b*cpuRatio(core.KindBOOM), a), safeDiv(x*cpuRatio(core.KindXeon), a))
	}
	mcc := 0.0
	for _, op := range fleet.CyclesByOperation() {
		switch op.Op {
		case fleet.OpMerge, fleet.OpCopy, fleet.OpClear:
			mcc += op.Share
		}
	}
	fmt.Fprintf(&sb, "\nFigure 2: merge+copy+clear are %.1f%% of fleet C++ protobuf cycles —\n", mcc*100)
	sb.WriteString("the additional opportunity §7 identifies for these instructions.\n")
	return sb.String(), nil
}

// cpuRatio converts a system's cycles into accelerator-clock-equivalent
// cycles for a fair time ratio (the accelerator runs at 2 GHz; the Xeon
// at 2.7 GHz).
func cpuRatio(k core.Kind) float64 {
	cfg := core.DefaultConfig(k)
	if k == core.KindXeon {
		return 2.0 / cfg.CPU.FrequencyGHz
	}
	return 1
}
