package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel simulation engine. Every (workload, system, op) simulation
// behind RunSet, the ablation sweeps, and HyperProtoBench generation is
// independent: each owns a private core.System (memory, caches, layout
// registry), and the shared inputs — schemas, pre-populated messages,
// wire buffers — are read-only after construction. forEachIndexed fans
// those jobs out over a bounded worker pool and the callers gather
// results by job index, so output order (and therefore every figure and
// table) is identical to the serial path regardless of completion order.
//
// The determinism contract is strict: a parallel run must produce
// bitwise-identical Measurement/Series values to a serial run. Nothing
// about a simulation depends on wall-clock time or scheduling; the
// equivalence test in parallel_test.go enforces this.

// parallelism resolves Options.Parallelism: non-positive means
// GOMAXPROCS-sized.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEachIndexed runs fn(0), …, fn(n-1) on at most workers goroutines.
// Jobs are handed out in index order from a shared counter. All jobs run
// to completion; if any fail, the error of the lowest-indexed failing job
// is returned (matching which job a serial loop would have failed on).
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
