package bench

import (
	"errors"
	"sync/atomic"
	"testing"

	"protoacc/internal/core"
)

// TestSerialParallelEquivalence is the determinism gate for the parallel
// engine: RunSet over the Figure 11a workload set must produce
// bitwise-identical Series whether the grid runs on one worker or eight
// (which also exceeds GOMAXPROCS on small machines, forcing real
// interleaving through the shared System pool).
func TestSerialParallelEquivalence(t *testing.T) {
	ws := NonAllocWorkloads()
	serial := DefaultOptions()
	serial.Parallelism = 1
	parallel := DefaultOptions()
	parallel.Parallelism = 8
	for _, op := range []Op{Deserialize, Serialize} {
		want, err := RunSet(op, ws, serial)
		if err != nil {
			t.Fatalf("%v serial: %v", op, err)
		}
		got, err := RunSet(op, ws, parallel)
		if err != nil {
			t.Fatalf("%v parallel: %v", op, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d rows parallel vs %d serial", op, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v row %d: parallel %+v != serial %+v", op, i, got[i], want[i])
			}
		}
	}
}

// TestPooledRunDeterminism checks the System-pool contract directly:
// back-to-back identical runs — the second recycling the first's System
// via ResetAll — return bitwise-identical Measurements.
func TestPooledRunDeterminism(t *testing.T) {
	opts := DefaultOptions()
	var ws []Workload
	for _, w := range AllocWorkloads() {
		switch w.Name {
		case "varint-5-R", "string_long", "string-SUB":
			ws = append(ws, w)
		}
	}
	for _, w := range ws {
		for _, k := range []core.Kind{core.KindBOOM, core.KindXeon, core.KindAccel} {
			for _, op := range []Op{Deserialize, Serialize} {
				first, err := Run(k, op, w, opts)
				if err != nil {
					t.Fatalf("%s/%v/%v: %v", w.Name, k, op, err)
				}
				second, err := Run(k, op, w, opts)
				if err != nil {
					t.Fatalf("%s/%v/%v (pooled): %v", w.Name, k, op, err)
				}
				if first != second {
					t.Errorf("%s/%v/%v: pooled rerun %+v != fresh %+v", w.Name, k, op, second, first)
				}
			}
		}
	}
}

func TestForEachIndexedVisitsAllOnce(t *testing.T) {
	const n = 100
	var visits [n]atomic.Int32
	if err := forEachIndexed(n, 7, func(i int) error {
		visits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if v := visits[i].Load(); v != 1 {
			t.Errorf("index %d visited %d times", i, v)
		}
	}
}

// forEachIndexed reports the lowest-indexed failure — the job a serial
// loop would have failed on — regardless of completion order.
func TestForEachIndexedReturnsLowestError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	err := forEachIndexed(20, 5, func(i int) error {
		switch i {
		case 7:
			return errLow
		case 13:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Errorf("err = %v, want %v", err, errLow)
	}
}

func TestParallelismDefaults(t *testing.T) {
	if got := (Options{Parallelism: 3}).parallelism(); got != 3 {
		t.Errorf("explicit parallelism = %d", got)
	}
	if got := (Options{}).parallelism(); got < 1 {
		t.Errorf("default parallelism = %d", got)
	}
}
