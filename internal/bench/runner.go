package bench

import (
	"fmt"

	"protoacc/internal/core"
	"protoacc/internal/faults"
	"protoacc/internal/hyperbench"
	"protoacc/internal/pb/schema"
)

// Op selects serialization or deserialization.
type Op int

// Operations.
const (
	Deserialize Op = iota
	Serialize
)

func (o Op) String() string {
	if o == Serialize {
		return "ser"
	}
	return "deser"
}

// Measurement is one (workload, system) result.
type Measurement struct {
	Workload string
	System   core.Kind
	Op       Op
	GbitsPS  float64
	Cycles   float64
	Bytes    uint64
}

// Options tunes a run.
type Options struct {
	WarmupBatches  int // batches run before the measured one
	Config         func(core.Kind) core.Config
	SoftwareArenas bool // CPU baselines allocate from software arenas

	// Parallelism bounds the worker pool fanning out independent
	// simulations (RunSet, the ablation sweeps). 0 means GOMAXPROCS;
	// 1 forces serial execution. Results are bitwise-identical at any
	// setting — parallel runs gather by index, not completion order.
	Parallelism int

	// Telemetry, when non-nil, receives each run's end-of-run counter
	// snapshot. Counters are per-run (Systems are reset on pool reuse),
	// so recorded values are independent of pooling and parallelism.
	Telemetry *TelemetrySink

	// Trace, when non-nil, enables the matching runs' System tracers and
	// captures their event streams. Tracing is per-System state, not
	// Config state, so traced runs still pool.
	Trace *TraceCapture

	// Faults selects the deterministic fault-injection schedule
	// (internal/faults) for every System the run builds. The zero value —
	// the default — disables injection and leaves all measurements
	// bitwise-identical to a faultless build. Fault configuration is part
	// of core.Config, so faulted and fault-free runs pool separately.
	Faults faults.Config
}

// DefaultOptions returns the standard settings: one warm-up batch, paper
// configurations.
func DefaultOptions() Options {
	return Options{WarmupBatches: 1, Config: core.DefaultConfig}
}

// HyperOptions returns the HyperProtoBench settings: service workloads
// run their CPU baselines with software arena allocation, the common
// configuration for protobuf-heavy services at scale (§2.3, §7).
func HyperOptions() Options {
	o := DefaultOptions()
	o.SoftwareArenas = true
	return o
}

// sizedConfig scales the system's memory regions to the workload and
// operation, so huge workloads fit and small ones don't pay gigabyte
// mapping/zeroing costs. From need (the batch's total wire bytes,
// rounded up to 1 MiB so near-identical workloads share a region
// geometry and a System-pool key) two budgets derive, each padded by a
// 16 MiB floor for batch headers, alignment, and ADTs:
//
//	wireNeed = ceil1M(need)   + floor  // wire-resident data
//	objNeed  = ceil1M(need)*4 + floor  // materialized C++ objects:
//	                                   // hasbits, vptr, slot padding and
//	                                   // repeated/string headers expand
//	                                   // wire bytes by up to ~4x
//
// Deserialize reads wire from Static (wireNeed) and materializes into
// Heap and the accelerator Arena (objNeed); its Out space is unused.
// Serialize reads materialized objects from Static (objNeed) and writes
// wire to Out (wireNeed); its Heap/Arena are unused. Unused regions get
// the floor only.
func sizedConfig(base core.Config, need uint64, op Op) core.Config {
	const floor = 16 << 20
	const quantum = 1 << 20
	qneed := (need + quantum - 1) &^ (quantum - 1)
	wireNeed := qneed + floor
	objNeed := qneed*4 + floor
	if op == Serialize {
		base.StaticSize = objNeed
		base.OutSize = wireNeed
		base.HeapSize = floor
		base.ArenaSize = floor
	} else {
		base.StaticSize = wireNeed
		base.OutSize = floor
		base.HeapSize = objNeed
		base.ArenaSize = objNeed
	}
	return base
}

// Run measures one workload on one system for one operation: warm-up
// batches followed by a measured batch, returning batch throughput.
// Systems are recycled through core.DefaultPool: repeated runs with the
// same configuration (warm-ups, b.N benchmark iterations, sweep points)
// reuse memory regions instead of re-mapping and re-zeroing them, with
// results bitwise-identical to fresh construction (System.ResetAll).
func Run(k core.Kind, op Op, w Workload, opts Options) (Measurement, error) {
	cfg := sizedConfig(opts.Config(k), w.Bytes, op)
	cfg.SoftwareArenas = opts.SoftwareArenas
	cfg.Faults = opts.Faults
	sys := core.DefaultPool.Get(cfg)
	traced := opts.Trace.Matches(w.Name, k)
	if traced {
		sys.Telemetry().Tracer.Enable()
	}
	m, err := runOn(sys, op, w, opts)
	if err != nil {
		// A failed run may leave the System mid-operation; drop it.
		return Measurement{}, err
	}
	if opts.Telemetry != nil {
		opts.Telemetry.Record(w.Name, k, op, sys.Telemetry().Registry.Snapshot())
	}
	if traced {
		opts.Trace.Record(w.Name, k, op, sys.Telemetry().Tracer.TakeEvents())
		sys.Telemetry().Tracer.Reset()
	}
	core.DefaultPool.Put(sys)
	return m, nil
}

// runOn executes the measured batches of one run on a prepared System.
func runOn(sys *core.System, op Op, w Workload, opts Options) (Measurement, error) {
	k := sys.Cfg.Kind
	if err := sys.LoadSchema(w.Type); err != nil {
		return Measurement{}, err
	}

	switch op {
	case Deserialize:
		// Inputs: serialized buffers in static memory. Operations are
		// batched with one completion barrier per batch (§4.4.1).
		refs := make([]core.WireRef, len(w.Wire))
		for i, b := range w.Wire {
			a, err := sys.WriteWire(b)
			if err != nil {
				return Measurement{}, err
			}
			refs[i] = core.WireRef{Addr: a, Len: uint64(len(b))}
		}
		var res core.Result
		for b := 0; b <= opts.WarmupBatches; b++ {
			sys.ResetWork()
			var err error
			res, _, err = sys.DeserializeBatch(w.Type, refs)
			if err != nil {
				return Measurement{}, err
			}
		}
		return measurement(w, k, op, res.Cycles, res.Bytes, freqGHz(sys)), nil

	case Serialize:
		// Inputs: materialized C++ objects in static memory.
		objs := make([]uint64, len(w.Messages))
		for i, m := range w.Messages {
			a, err := sys.MaterializeInput(m)
			if err != nil {
				return Measurement{}, err
			}
			objs[i] = a
		}
		var res core.Result
		for b := 0; b <= opts.WarmupBatches; b++ {
			sys.ResetWork()
			var err error
			res, _, err = sys.SerializeBatch(w.Type, objs)
			if err != nil {
				return Measurement{}, err
			}
		}
		return measurement(w, k, op, res.Cycles, res.Bytes, freqGHz(sys)), nil
	}
	return Measurement{}, fmt.Errorf("bench: unknown op %d", op)
}

func freqGHz(sys *core.System) float64 {
	if sys.Accel != nil {
		return sys.Cfg.AccelFreqGHz
	}
	return sys.Cfg.CPU.FrequencyGHz
}

func measurement(w Workload, k core.Kind, op Op, cycles float64, bytes uint64, ghz float64) Measurement {
	seconds := cycles / (ghz * 1e9)
	gbps := 0.0
	if seconds > 0 {
		gbps = float64(bytes) * 8 / seconds / 1e9
	}
	return Measurement{
		Workload: w.Name, System: k, Op: op,
		GbitsPS: gbps, Cycles: cycles, Bytes: bytes,
	}
}

// Series is one benchmark's row across the three systems, the layout of
// the Figure 11-13 bar groups.
type Series struct {
	Bench string
	BOOM  float64 // Gbit/s
	Xeon  float64
	Accel float64
}

// Systems in figure order.
var systems = []core.Kind{core.KindBOOM, core.KindXeon, core.KindAccel}

// RunSet measures a full workload set on all three systems and appends a
// geomean row. The (workload, system) grid fans out over the worker pool
// (Options.Parallelism); measurements are gathered by grid index, so the
// returned Series are identical to a serial run's.
func RunSet(op Op, workloads []Workload, opts Options) ([]Series, error) {
	ms := make([]Measurement, len(workloads)*len(systems))
	err := forEachIndexed(len(ms), opts.parallelism(), func(i int) error {
		w, k := workloads[i/len(systems)], systems[i%len(systems)]
		m, err := Run(k, op, w, opts)
		if err != nil {
			return fmt.Errorf("%s on %v: %w", w.Name, k, err)
		}
		ms[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Series, 0, len(workloads)+1)
	for wi, w := range workloads {
		s := Series{Bench: w.Name}
		for ki, k := range systems {
			m := ms[wi*len(systems)+ki]
			switch k {
			case core.KindBOOM:
				s.BOOM = m.GbitsPS
			case core.KindXeon:
				s.Xeon = m.GbitsPS
			case core.KindAccel:
				s.Accel = m.GbitsPS
			}
		}
		out = append(out, s)
	}
	return append(out, GeomeanRow(out)), nil
}

// GeomeanRow computes the geomean series over rows.
func GeomeanRow(rows []Series) Series {
	var b, x, a []float64
	for _, r := range rows {
		b = append(b, r.BOOM)
		x = append(x, r.Xeon)
		a = append(a, r.Accel)
	}
	return Series{Bench: "geomean", BOOM: Geomean(b), Xeon: Geomean(x), Accel: Geomean(a)}
}

// Speedups returns the accelerated system's geomean speedups vs the two
// baselines over the given rows (excluding any "geomean" row).
func Speedups(rows []Series) (vsBOOM, vsXeon float64) {
	var sb, sx []float64
	for _, r := range rows {
		if r.Bench == "geomean" {
			continue
		}
		sb = append(sb, r.Accel/r.BOOM)
		sx = append(sx, r.Accel/r.Xeon)
	}
	return Geomean(sb), Geomean(sx)
}

// HyperWorkload converts a generated HyperProtoBench suite into a
// Workload.
func HyperWorkload(b *hyperbench.Benchmark) Workload {
	return Workload{
		Name:     b.Profile.Name,
		Type:     b.Root,
		Messages: b.Messages,
		Wire:     b.Wire,
		Bytes:    b.TotalWireBytes,
	}
}

// HyperWorkloads generates bench0…bench5 as workloads. Generation is
// deterministic per profile (each owns a seeded RNG), so the suites are
// generated in parallel and gathered by profile index.
func HyperWorkloads() ([]Workload, error) {
	profiles := hyperbench.Profiles()
	out := make([]Workload, len(profiles))
	err := forEachIndexed(len(profiles), Options{}.parallelism(), func(i int) error {
		b, err := hyperbench.Generate(profiles[i])
		if err != nil {
			return err
		}
		out[i] = HyperWorkload(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SchemaOf exposes a workload's root type (tooling convenience).
func (w Workload) SchemaOf() *schema.Message { return w.Type }
