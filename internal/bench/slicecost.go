package bench

import (
	"fmt"

	"protoacc/internal/core"
	"protoacc/internal/fleet"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
)

// sliceWorkload builds the microbenchmark behind one of the 24 §3.6.4
// model slices: messages containing only fields of the slice's
// performance class at the slice's representative size.
func sliceWorkload(s fleet.Slice) Workload {
	switch s.Class {
	case schema.ClassBytesLike:
		n := int(s.SizeBytes)
		if n < 0 {
			n = 0
		}
		return stringWorkload("slice-"+s.Name, n, 16)
	case schema.ClassVarintLike:
		t := scalarType("Slice"+s.Name, schema.KindUint64, false, false)
		v := varintValue(int(s.SizeBytes))
		return newWorkload("slice-"+s.Name, t, func(int) *dynamic.Message {
			m := dynamic.New(t)
			for i := int32(1); i <= fieldsPerScalarBench; i++ {
				m.SetUint64(i, v)
			}
			return m
		}, 32)
	case schema.ClassFloatLike:
		return fixedWorkload("slice-"+s.Name, schema.KindFloat, false)
	case schema.ClassDoubleLike:
		return fixedWorkload("slice-"+s.Name, schema.KindDouble, false)
	case schema.ClassFixed32Like:
		return fixedWorkload("slice-"+s.Name, schema.KindFixed32, false)
	default:
		return fixedWorkload("slice-"+s.Name, schema.KindFixed64, false)
	}
}

// SliceCosts measures the per-byte handling cost (ns/B) of every model
// slice on one system for one operation, using this project's own
// microbenchmarks — the measurement step of the paper's Figure 5/6
// methodology (§3.6.4). The returned function feeds
// fleet.EstimateTimeShares.
func SliceCosts(k core.Kind, op Op, opts Options) (func(fleet.Slice) float64, error) {
	costs := make(map[string]float64)
	for _, s := range fleet.Slices() {
		m, err := Run(k, op, sliceWorkload(s), opts)
		if err != nil {
			return nil, fmt.Errorf("slice %s: %w", s.Name, err)
		}
		if m.Bytes == 0 {
			return nil, fmt.Errorf("slice %s: empty workload", s.Name)
		}
		seconds := float64(m.Bytes) * 8 / (m.GbitsPS * 1e9)
		costs[s.Name] = seconds * 1e9 / float64(m.Bytes) // ns per byte
	}
	return func(s fleet.Slice) float64 { return costs[s.Name] }, nil
}
