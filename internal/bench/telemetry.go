package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"protoacc/internal/core"
	"protoacc/internal/telemetry"
)

// runKey names one run of the (workload, system, op) grid. Sinks key
// everything they record by it so aggregation can proceed in sorted key
// order — the float summation order is then independent of worker
// scheduling, keeping aggregated counters bitwise-identical between
// serial and parallel harness executions.
func runKey(workload string, k core.Kind, op Op) string {
	return workload + "/" + k.String() + "/" + op.String()
}

// TelemetrySink collects one counter snapshot per run. Safe for
// concurrent use by the harness worker pool.
type TelemetrySink struct {
	mu   sync.Mutex
	runs map[string]telemetry.Snapshot
}

// Record stores the snapshot for one run, replacing any earlier snapshot
// with the same key (re-runs of a grid cell observe identical counters,
// so replacement is idempotent).
func (t *TelemetrySink) Record(workload string, k core.Kind, op Op, s telemetry.Snapshot) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.runs == nil {
		t.runs = make(map[string]telemetry.Snapshot)
	}
	t.runs[runKey(workload, k, op)] = s
}

// Runs returns the recorded run keys, sorted.
func (t *TelemetrySink) Runs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.runs))
	for k := range t.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Run returns one run's snapshot.
func (t *TelemetrySink) Run(key string) (telemetry.Snapshot, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.runs[key]
	return s, ok
}

// Total aggregates every recorded run, summing in sorted key order.
func (t *TelemetrySink) Total() telemetry.Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.runs))
	for k := range t.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var agg telemetry.Aggregate
	for _, k := range keys {
		agg.Add(t.runs[k])
	}
	return agg.Snapshot()
}

// TraceCapture collects trace events from the runs matching a workload
// filter. System selects which simulated machine to trace (the
// accelerator is the interesting one). Safe for concurrent use.
type TraceCapture struct {
	Workload string    // workload name to trace ("" matches none)
	System   core.Kind // machine to trace (default KindBOOM=0; set explicitly)

	mu   sync.Mutex
	runs map[string][]telemetry.Event
}

// Matches reports whether a run should be traced.
func (c *TraceCapture) Matches(workload string, k core.Kind) bool {
	return c != nil && c.Workload == workload && c.System == k
}

// Record stores one traced run's events.
func (c *TraceCapture) Record(workload string, k core.Kind, op Op, events []telemetry.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runs == nil {
		c.runs = make(map[string][]telemetry.Event)
	}
	c.runs[runKey(workload, k, op)] = events
}

// Events returns every captured event, runs concatenated in sorted key
// order (deterministic under parallel execution).
func (c *TraceCapture) Events() []telemetry.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.runs))
	for k := range c.runs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []telemetry.Event
	for _, k := range keys {
		out = append(out, c.runs[k]...)
	}
	return out
}

// ConfigFingerprint hashes the three system configurations an Options
// produces (plus the arena switch), identifying the simulated-hardware
// parameter set a stats artifact was measured under.
func ConfigFingerprint(opts Options) string {
	h := sha256.New()
	for _, k := range systems {
		fmt.Fprintf(h, "%+v\n", opts.Config(k))
	}
	fmt.Fprintf(h, "arenas=%v\n", opts.SoftwareArenas)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// WriteStatsFile writes the sink's aggregated counters to path: a
// ".prom" suffix selects Prometheus text exposition, anything else the
// JSON snapshot schema (which embeds the manifest).
func WriteStatsFile(path string, m *telemetry.Manifest, sink *TelemetrySink) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	total := sink.Total()
	if strings.HasSuffix(path, ".prom") {
		return telemetry.WritePrometheus(f, total)
	}
	return telemetry.WriteStatsJSON(f, m, total)
}

// WriteTraceFile writes the captured events to path as Chrome
// trace-event / Perfetto JSON.
func WriteTraceFile(path string, capture *TraceCapture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return telemetry.WritePerfetto(f, capture.Events())
}

// NewManifest builds the provenance record embedded in -stats-out
// artifacts: command line, VCS revision from build info, Go version,
// configuration fingerprint, and harness parallelism.
func NewManifest(command string, opts Options) *telemetry.Manifest {
	m := &telemetry.Manifest{
		Command:           command,
		GoVersion:         runtime.Version(),
		ConfigFingerprint: ConfigFingerprint(opts),
		Parallelism:       opts.parallelism(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.GitRevision = s.Value
			case "vcs.modified":
				m.GitDirty = s.Value == "true"
			}
		}
	}
	return m
}
