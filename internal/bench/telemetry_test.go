package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"protoacc/internal/core"
	"protoacc/internal/telemetry"
)

// TestTelemetrySerialParallelEquivalence extends the determinism gate to
// the counter layer: every run's telemetry snapshot — and the aggregated
// total — must be bitwise-identical whether the grid runs on one worker
// or eight.
func TestTelemetrySerialParallelEquivalence(t *testing.T) {
	ws := NonAllocWorkloads()
	serial := DefaultOptions()
	serial.Parallelism = 1
	serial.Telemetry = &TelemetrySink{}
	parallel := DefaultOptions()
	parallel.Parallelism = 8
	parallel.Telemetry = &TelemetrySink{}
	for _, op := range []Op{Deserialize, Serialize} {
		if _, err := RunSet(op, ws, serial); err != nil {
			t.Fatalf("%v serial: %v", op, err)
		}
		if _, err := RunSet(op, ws, parallel); err != nil {
			t.Fatalf("%v parallel: %v", op, err)
		}
	}
	wantKeys := serial.Telemetry.Runs()
	gotKeys := parallel.Telemetry.Runs()
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Fatalf("run keys differ:\nparallel %v\nserial   %v", gotKeys, wantKeys)
	}
	if len(wantKeys) == 0 {
		t.Fatal("no runs recorded")
	}
	for _, key := range wantKeys {
		want, _ := serial.Telemetry.Run(key)
		got, _ := parallel.Telemetry.Run(key)
		if !reflect.DeepEqual(got.Samples(), want.Samples()) {
			t.Errorf("%s: parallel counters differ from serial", key)
		}
	}
	if !reflect.DeepEqual(parallel.Telemetry.Total().Samples(), serial.Telemetry.Total().Samples()) {
		t.Error("aggregated totals differ between serial and parallel runs")
	}
}

// TestTraceCaptureRun checks that tracing one grid cell captures events
// from exactly that cell and that a traced System recycles through the
// pool without leaking events into later runs.
func TestTraceCaptureRun(t *testing.T) {
	ws := NonAllocWorkloads()
	target := ws[0].Name
	opts := DefaultOptions()
	opts.Parallelism = 2
	opts.Trace = &TraceCapture{Workload: target, System: core.KindAccel}
	if _, err := RunSet(Deserialize, ws, opts); err != nil {
		t.Fatal(err)
	}
	events := opts.Trace.Events()
	if len(events) == 0 {
		t.Fatalf("no events captured for %q", target)
	}
	units := map[string]bool{}
	for _, ev := range events {
		units[ev.Unit] = true
	}
	for _, u := range []string{"rocc", "deser"} {
		if !units[u] {
			t.Errorf("trace has no %s events (units: %v)", u, units)
		}
	}
	keys := opts.Trace.runs
	if len(keys) != 1 {
		t.Errorf("traced %d runs, want 1: %v", len(keys), keys)
	}

	// Determinism of the capture itself: rerunning the same traced cell
	// must reproduce the identical event stream.
	again := DefaultOptions()
	again.Parallelism = 2
	again.Trace = &TraceCapture{Workload: target, System: core.KindAccel}
	if _, err := RunSet(Deserialize, ws, again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Trace.Events(), events) {
		t.Error("traced rerun produced a different event stream")
	}
}

func TestTraceCaptureMatches(t *testing.T) {
	var nilCap *TraceCapture
	if nilCap.Matches("x", core.KindAccel) {
		t.Error("nil capture matched")
	}
	c := &TraceCapture{Workload: "x", System: core.KindAccel}
	if !c.Matches("x", core.KindAccel) {
		t.Error("exact match missed")
	}
	if c.Matches("x", core.KindBOOM) || c.Matches("y", core.KindAccel) {
		t.Error("mismatch matched")
	}
}

func TestWriteStatsFileFormats(t *testing.T) {
	sink := &TelemetrySink{}
	var r telemetry.Registry
	r.RegisterFunc("deser", func(emit func(string, float64)) { emit("cycles", 42) })
	sink.Record("w", core.KindAccel, Deserialize, r.Snapshot())

	dir := t.TempDir()
	opts := DefaultOptions()
	m := NewManifest("test", opts)
	if m.GoVersion == "" || m.ConfigFingerprint == "" || m.Parallelism < 1 {
		t.Errorf("incomplete manifest: %+v", m)
	}

	jsonPath := filepath.Join(dir, "stats.json")
	if err := WriteStatsFile(jsonPath, m, sink); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gotM, counters, err := telemetry.ReadStatsJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if *gotM != *m {
		t.Errorf("manifest round trip: %+v != %+v", gotM, m)
	}
	if counters["deser/cycles"] != 42 {
		t.Errorf("counters = %v", counters)
	}

	promPath := filepath.Join(dir, "stats.prom")
	if err := WriteStatsFile(promPath, m, sink); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := "protoacc_deser_cycles 42"; !strings.Contains(string(b), want) {
		t.Errorf("prom output missing %q:\n%s", want, b)
	}
}
