// Package bench is the benchmark harness for the paper's evaluation
// (Section 5): it defines the §5.1 microbenchmark workloads, runs every
// workload on the three systems (riscv-boom, Xeon, riscv-boom-accel),
// and assembles the series behind Figures 11a-11d (microbenchmarks),
// Figures 12-13 (HyperProtoBench), and the summary speedups.
package bench

import (
	"fmt"
	"math"
	"math/rand"

	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
)

// Workload is one microbenchmark: a message type and a pre-populated
// batch of messages (§5.1: "a timed batch of deserializations and
// serializations, operating on a pre-populated set of serialized messages
// or C++ message objects").
type Workload struct {
	Name     string
	Type     *schema.Message
	Messages []*dynamic.Message
	Wire     [][]byte
	Bytes    uint64 // total wire bytes in the batch
}

// fieldsPerScalarBench is the §5.1 choice: five fields per message for
// varints, doubles, floats, and their repeated equivalents, placing the
// middle varint benchmark near the fleet's median message size.
const fieldsPerScalarBench = 5

// elemsPerRepeated is the element count per repeated field in -R
// benchmarks.
const elemsPerRepeated = 4

// defaultBatch is the number of messages per benchmark batch.
const defaultBatch = 64

// varintValue returns a value whose varint encoding is exactly n bytes
// (n=0 is the zero value, encoding to one byte).
func varintValue(n int) uint64 {
	if n <= 0 {
		return 0
	}
	if n >= 10 {
		return math.MaxUint64
	}
	return uint64(1) << uint(7*(n-1))
}

func newWorkload(name string, t *schema.Message, pop func(i int) *dynamic.Message, batch int) Workload {
	w := Workload{Name: name, Type: t}
	for i := 0; i < batch; i++ {
		m := pop(i)
		b, err := codec.Marshal(m)
		if err != nil {
			panic(fmt.Sprintf("bench: %s: %v", name, err))
		}
		w.Messages = append(w.Messages, m)
		w.Wire = append(w.Wire, b)
		w.Bytes += uint64(len(b))
	}
	return w
}

// scalarType builds a message with fieldsPerScalarBench fields of kind k.
func scalarType(name string, k schema.Kind, repeated, packed bool) *schema.Message {
	var fields []*schema.Field
	label := schema.LabelOptional
	if repeated {
		label = schema.LabelRepeated
	}
	for i := 1; i <= fieldsPerScalarBench; i++ {
		fields = append(fields, &schema.Field{
			Name: fmt.Sprintf("f%d", i), Number: int32(i), Kind: k,
			Label: label, Packed: packed,
		})
	}
	return mustType(name, fields...)
}

// varintWorkload builds the varint-N benchmark (5 uint64 fields whose
// values encode to N bytes).
func varintWorkload(n int) Workload {
	t := scalarType(fmt.Sprintf("Varint%d", n), schema.KindUint64, false, false)
	return newWorkload(fmt.Sprintf("varint-%d", n), t, func(int) *dynamic.Message {
		m := dynamic.New(t)
		for i := int32(1); i <= fieldsPerScalarBench; i++ {
			m.SetUint64(i, varintValue(n))
		}
		return m
	}, defaultBatch)
}

// varintRepeatedWorkload builds varint-N-R (5 repeated unpacked uint64
// fields of elemsPerRepeated elements each).
func varintRepeatedWorkload(n int) Workload {
	t := scalarType(fmt.Sprintf("VarintR%d", n), schema.KindUint64, true, false)
	return newWorkload(fmt.Sprintf("varint-%d-R", n), t, func(int) *dynamic.Message {
		m := dynamic.New(t)
		for i := int32(1); i <= fieldsPerScalarBench; i++ {
			for e := 0; e < elemsPerRepeated; e++ {
				m.AddScalarBits(i, varintValue(n))
			}
		}
		return m
	}, defaultBatch)
}

func fixedWorkload(name string, k schema.Kind, repeated bool) Workload {
	t := scalarType(name, k, repeated, false)
	rng := rand.New(rand.NewSource(7))
	return newWorkload(name, t, func(int) *dynamic.Message {
		m := dynamic.New(t)
		for i := int32(1); i <= fieldsPerScalarBench; i++ {
			bits := rng.Uint64()
			if k == schema.KindFloat {
				bits = uint64(uint32(bits))
			}
			if repeated {
				for e := 0; e < elemsPerRepeated; e++ {
					m.AddScalarBits(i, bits)
				}
			} else {
				m.SetScalarBits(i, bits)
			}
		}
		return m
	}, defaultBatch)
}

// String benchmark sizes (§5.1.1 breaks strings down by field size; the
// SSO boundary 15 and the long/very-long memcpy regimes).
const (
	stringShortLen    = 8
	stringSSOLen      = 15
	stringLongLen     = 4 << 10
	stringVeryLongLen = 512 << 10
)

func stringWorkload(name string, size int, batch int) Workload {
	t := mustType("Str"+name,
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	rng := rand.New(rand.NewSource(int64(size)))
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(' ' + rng.Intn(95))
	}
	return newWorkload(name, t, func(int) *dynamic.Message {
		m := dynamic.New(t)
		m.SetBytes(1, payload)
		return m
	}, batch)
}

// subWorkload builds the *-SUB benchmarks: one sub-message field whose
// type carries one field of kind k.
func subWorkload(name string, k schema.Kind, strLen int) Workload {
	inner := mustType("Inner"+name,
		&schema.Field{Name: "v", Number: 1, Kind: k})
	t := mustType("Sub"+name,
		&schema.Field{Name: "sub", Number: 1, Kind: schema.KindMessage, Message: inner})
	rng := rand.New(rand.NewSource(3))
	return newWorkload(name, t, func(int) *dynamic.Message {
		m := dynamic.New(t)
		s := m.MutableMessage(1)
		switch {
		case k == schema.KindString:
			b := make([]byte, strLen)
			for i := range b {
				b[i] = byte('a' + rng.Intn(26))
			}
			s.SetBytes(1, b)
		case k == schema.KindBool:
			s.SetBool(1, true)
		default:
			s.SetScalarBits(1, rng.Uint64())
		}
		return m
	}, defaultBatch)
}

// NonAllocWorkloads returns the Figure 11a/11b benchmark set: field types
// that need no in-accelerator allocation on deserialization (equivalently,
// are inline in the C++ object for serialization): varint-0..varint-10,
// double, float.
func NonAllocWorkloads() []Workload {
	var out []Workload
	for n := 0; n <= 10; n++ {
		out = append(out, varintWorkload(n))
	}
	out = append(out,
		fixedWorkload("double", schema.KindDouble, false),
		fixedWorkload("float", schema.KindFloat, false),
	)
	return out
}

// AllocWorkloads returns the Figure 11c/11d benchmark set: field types
// requiring in-accelerator allocation (repeated fields, strings,
// sub-messages): varint-0-R..varint-10-R, string, string_15, string_long,
// string_very_long, double-R, float-R, bool-SUB, double-SUB, string-SUB.
func AllocWorkloads() []Workload {
	var out []Workload
	for n := 0; n <= 10; n++ {
		out = append(out, varintRepeatedWorkload(n))
	}
	out = append(out,
		stringWorkload("string", stringShortLen, defaultBatch),
		stringWorkload("string_15", stringSSOLen, defaultBatch),
		stringWorkload("string_long", stringLongLen, defaultBatch),
		stringWorkload("string_very_long", stringVeryLongLen, 16),
		fixedWorkload("double-R", schema.KindDouble, true),
		fixedWorkload("float-R", schema.KindFloat, true),
		subWorkload("bool-SUB", schema.KindBool, 0),
		subWorkload("double-SUB", schema.KindDouble, 0),
		subWorkload("string-SUB", schema.KindString, 32),
	)
	return out
}

// Geomean returns the geometric mean of positive values (0 if empty).
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// marshalRef serializes a message with the reference codec (a helper for
// ad-hoc workloads built by the ablations).
func marshalRef(m *dynamic.Message) ([]byte, error) {
	return codec.Marshal(m)
}

// mustType builds a workload's message type from static literal fields.
// These inputs are compile-time constants — never wire or user data — so
// a failure is a programmer error surfaced at process start; dynamic
// schema construction goes through schema.NewMessage and returns errors.
func mustType(name string, fields ...*schema.Field) *schema.Message {
	t, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(fmt.Sprintf("bench: invalid static schema %s: %v", name, err))
	}
	return t
}
