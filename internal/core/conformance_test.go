package core

import (
	"bytes"
	"encoding/hex"
	"testing"

	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/protoparse"
	"protoacc/internal/pb/schema"
)

// The conformance schema exercises every wire type, the zig-zag kinds,
// packed and unpacked repeated fields, nesting, recursion, and wide field
// numbers (multi-byte tags).
const conformanceProto = `
syntax = "proto2";
package conformance;

message Inner {
  optional int32  a = 1;
  optional Inner  self = 2;
  optional string s = 3;
}

message All {
  optional int32    i32  = 1;
  optional int64    i64  = 2;
  optional uint32   u32  = 3;
  optional uint64   u64  = 4;
  optional sint32   s32  = 5;
  optional sint64   s64  = 6;
  optional fixed32  f32  = 7;
  optional fixed64  f64  = 8;
  optional sfixed32 sf32 = 9;
  optional sfixed64 sf64 = 10;
  optional float    flt  = 11;
  optional double   dbl  = 12;
  optional bool     b    = 13;
  optional string   str  = 14;
  optional bytes    byt  = 15;
  optional Inner    msg  = 16;
  repeated int32    ri   = 17;
  repeated int64    rp   = 18 [packed=true];
  repeated string   rs   = 19;
  repeated Inner    rm   = 20;
  optional int32    wide = 2000; // wide field number: 2-byte tag
}
`

// conformanceVectors are hex wire inputs that must decode identically on
// the reference codec, the CPU model, and the accelerator, and (where a
// message value is given) re-encode byte-identically.
var conformanceVectors = []struct {
	name string
	hex  string
}{
	{"empty", ""},
	{"int32 canonical", "0801"},
	{"int32 max", "08ffffffff07"},
	{"int32 negative ten-byte", "08ffffffffffffffffff01"},
	{"int64 min", "1080808080808080808001"},
	{"sint32 minus one", "2801"},
	{"sint64 min", "30ffffffffffffffffff01"},
	{"uint64 max", "20ffffffffffffffffff01"},
	{"fixed32", "3d78563412"},
	{"fixed64", "41efcdab9078563412"},
	{"sfixed32 negative", "4dffffffff"},
	{"float one", "5d0000803f"},
	{"double one", "61000000000000f03f"},
	{"bool noncanonical true", "6805"},
	{"empty string", "7200"},
	{"string", "720568656c6c6f"},
	{"empty sub-message", "8201" + "00"},
	{"nested twice", "8201" + "06" + "1204" + "120208" + "07"},
	{"unpacked repeated", "880101880102880103"},
	{"packed run", "9201" + "03" + "010203"},
	{"two packed runs concatenate", "9201" + "02" + "0102" + "9201" + "01" + "03"},
	{"packed then unpacked mix", "9201" + "01" + "2a" + "9001" + "2b"},
	{"repeated strings with empty", "9a0100" + "9a010161"},
	{"wide field number", "807d" + "2a"},
	{"interleaved repeated reopen", "880101" + "0802" + "880103"},
	{"overwrite scalar last wins", "08010802"},
	{"non-canonical varint field value", "088001"}, // 128 as 2 bytes is canonical; 0x80 0x01
}

func conformanceSystems(t *testing.T) (*schema.Message, *System, *System) {
	t.Helper()
	f, err := protoparse.Parse("conformance.proto", conformanceProto)
	if err != nil {
		t.Fatal(err)
	}
	typ := f.MessageByName("All")
	boom := New(smallConfig(KindBOOM))
	accel := New(smallConfig(KindAccel))
	for _, sys := range []*System{boom, accel} {
		if err := sys.LoadSchema(typ); err != nil {
			t.Fatal(err)
		}
	}
	return typ, boom, accel
}

func TestConformanceDecode(t *testing.T) {
	typ, boom, accel := conformanceSystems(t)
	for _, v := range conformanceVectors {
		input, err := hex.DecodeString(v.hex)
		if err != nil {
			t.Fatalf("%s: bad vector hex: %v", v.name, err)
		}
		ref, refErr := codec.Unmarshal(typ, input)
		if refErr != nil {
			t.Fatalf("%s: reference rejected vector: %v", v.name, refErr)
		}
		if hasUnknown(ref) {
			t.Fatalf("%s: vector has unknown fields; fix the vector", v.name)
		}
		for _, sys := range []*System{boom, accel} {
			sys.ResetWork()
			bufAddr, err := sys.WriteWire(input)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Deserialize(typ, bufAddr, uint64(len(input)))
			if err != nil {
				t.Fatalf("%s on %s: %v", v.name, sys.Name(), err)
			}
			got, err := sys.ReadMessage(typ, res.ObjAddr)
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Equal(got) {
				t.Errorf("%s: %s decoded differently from the reference", v.name, sys.Name())
			}
		}
	}
}

func TestConformanceReencode(t *testing.T) {
	// Decode each vector, then serialize the result on every system; all
	// outputs must agree with the reference serializer (canonical form).
	typ, boom, accel := conformanceSystems(t)
	for _, v := range conformanceVectors {
		input, _ := hex.DecodeString(v.hex)
		ref, err := codec.Unmarshal(typ, input)
		if err != nil {
			t.Fatal(err)
		}
		want, err := codec.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range []*System{boom, accel} {
			sys.ResetWork()
			objAddr, err := sys.MaterializeInput(ref)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Serialize(typ, objAddr)
			if err != nil {
				t.Fatalf("%s on %s: %v", v.name, sys.Name(), err)
			}
			got, err := sys.ReadWire(res.WireAddr, res.Bytes)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: %s re-encoded differently\n got %x\nwant %x", v.name, sys.Name(), got, want)
			}
		}
	}
}

func TestConformanceRejects(t *testing.T) {
	// Inputs every decode path must reject.
	typ, boom, accel := conformanceSystems(t)
	bad := []struct {
		name string
		hex  string
	}{
		{"truncated tag", "80"},
		{"truncated value", "08"},
		{"length past end", "72ff01"},
		{"field number zero", "0001"},
		{"submessage overruns", "8201ff"},
		{"eleven-byte varint", "08ffffffffffffffffffff01"},
	}
	for _, v := range bad {
		input, _ := hex.DecodeString(v.hex)
		if _, err := codec.Unmarshal(typ, input); err == nil {
			t.Errorf("%s: reference accepted bad input", v.name)
		}
		for _, sys := range []*System{boom, accel} {
			sys.ResetWork()
			bufAddr, err := sys.WriteWire(input)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Deserialize(typ, bufAddr, uint64(len(input))); err == nil {
				t.Errorf("%s: %s accepted bad input", v.name, sys.Name())
			}
		}
	}
}

func TestConformanceDeepRecursion(t *testing.T) {
	// A 30-deep Inner.self chain round trips on every system.
	f, err := protoparse.Parse("conformance.proto", conformanceProto)
	if err != nil {
		t.Fatal(err)
	}
	inner := f.MessageByName("Inner")
	m := dynamic.New(inner)
	cur := m
	for i := 0; i < 30; i++ {
		cur.SetInt32(1, int32(i))
		cur = cur.MutableMessage(2)
	}
	cur.SetString(3, "leaf")
	wire, err := codec.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{KindBOOM, KindXeon, KindAccel} {
		sys := New(smallConfig(kind))
		if err := sys.LoadSchema(inner); err != nil {
			t.Fatal(err)
		}
		bufAddr, _ := sys.WriteWire(wire)
		res, err := sys.Deserialize(inner, bufAddr, uint64(len(wire)))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got, err := sys.ReadMessage(inner, res.ObjAddr)
		if err != nil {
			t.Fatal(err)
		}
		if !m.Equal(got) {
			t.Errorf("%v: deep chain mismatch", kind)
		}
	}
}
