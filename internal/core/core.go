// Package core assembles the simulated systems the paper evaluates
// (Section 5): "riscv-boom" (a BOOM-class OoO core alone), "Xeon" (a
// server-class core), and "riscv-boom-accel" (the BOOM core with the
// protobuf accelerator attached over RoCC, sharing the L2/LLC — Figure 8).
//
// A System owns a simulated memory, a cache-hierarchy timing model, a
// layout registry, ADTs, and either a CPU software-codec model or the
// accelerator units. Workloads are loaded once (schemas, input wire
// buffers, pre-materialized objects) and then Serialize/Deserialize run
// the timed operations, returning functional results plus cycle counts
// convertible to seconds and throughput.
package core

import (
	"errors"
	"fmt"

	"protoacc/internal/accel/adt"
	"protoacc/internal/accel/deser"
	"protoacc/internal/accel/layout"
	"protoacc/internal/accel/mops"
	"protoacc/internal/accel/ser"
	"protoacc/internal/faults"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/cpu"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
	"protoacc/internal/sim/rocc"
	"protoacc/internal/telemetry"
)

// Kind selects which evaluated system a System models.
type Kind int

// The three systems of Section 5.
const (
	KindBOOM Kind = iota
	KindXeon
	KindAccel // riscv-boom-accel
)

func (k Kind) String() string {
	switch k {
	case KindBOOM:
		return "riscv-boom"
	case KindXeon:
		return "Xeon"
	case KindAccel:
		return "riscv-boom-accel"
	default:
		return fmt.Sprintf("core.Kind(%d)", int(k))
	}
}

// Config sizes and parameterizes a System.
type Config struct {
	Kind         Kind
	Mem          memmodel.Config
	CPU          cpu.Params
	Deser        deser.Config
	Ser          ser.Config
	AccelFreqGHz float64

	// SoftwareArenas makes the CPU baselines allocate from software
	// arenas (§2.3) instead of the heap during deserialization.
	SoftwareArenas bool

	// Faults selects the deterministic fault-injection schedule threaded
	// through the accelerator units (internal/faults). The zero value
	// disables injection, leaving every simulation path cycle-identical to
	// a build without the framework. All fields are comparable, so a
	// faulted Config pools like any other.
	Faults faults.Config

	StaticSize uint64 // inputs: wire buffers, materialized objects, ADTs
	HeapSize   uint64 // software allocations (reset between batches)
	ArenaSize  uint64 // accelerator arena (reset between batches)
	OutSize    uint64 // serializer output space (reset between batches)
}

// XeonMemConfig models the server part's memory system: larger caches,
// slightly longer L1, a big LLC.
func XeonMemConfig() memmodel.Config {
	return memmodel.Config{
		L1:            memmodel.CacheConfig{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, HitLatency: 4},
		L2:            memmodel.CacheConfig{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, HitLatency: 12},
		LLC:           memmodel.CacheConfig{Name: "LLC", SizeBytes: 16 << 20, Assoc: 16, HitLatency: 42},
		DRAMLatency:   230,
		TLBEntries:    128,
		PTWLatency:    60,
		StreamOverlap: 8, // aggressive hardware prefetchers
	}
}

// DefaultConfig returns the configuration for one of the three systems
// with paper-like parameters.
func DefaultConfig(k Kind) Config {
	cfg := Config{
		Kind:         k,
		Deser:        deser.DefaultConfig(),
		Ser:          ser.DefaultConfig(),
		AccelFreqGHz: 2.0,
		StaticSize:   256 << 20,
		HeapSize:     256 << 20,
		ArenaSize:    256 << 20,
		OutSize:      256 << 20,
	}
	switch k {
	case KindXeon:
		cfg.Mem = XeonMemConfig()
		cfg.CPU = cpu.XeonParams()
	default:
		cfg.Mem = memmodel.DefaultConfig()
		cfg.CPU = cpu.BOOMParams()
	}
	return cfg
}

// Result reports one timed operation.
type Result struct {
	Cycles  float64
	Seconds float64
	Bytes   uint64 // serialized bytes consumed (deser) or produced (ser)

	ObjAddr  uint64 // deserialization destination object
	WireAddr uint64 // serialization output

	// Telemetry carries the operation's counter delta and cycle
	// attribution when per-op telemetry is enabled on the System
	// (Telemetry().EnablePerOp(true)); nil otherwise.
	Telemetry *telemetry.OpTelemetry

	// Fault records the operation's fault-recovery history (aborted
	// attempts, retries, software fallback); nil when the operation
	// completed on the accelerator without any injected fault. When
	// Fault.FellBack is set, Cycles mixes the accelerator's and the host
	// core's clock domains and Seconds is the authoritative total.
	Fault *FaultReport
}

// Throughput returns the operation's Gbit/s over its serialized bytes,
// the metric of Figures 11-13.
func (r Result) Throughput() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Seconds / 1e9
}

// System is one simulated machine.
type System struct {
	Cfg    Config
	Mem    *mem.Memory
	MemSys *memmodel.System
	Reg    *layout.Registry

	Static *mem.Allocator // never reset
	Heap   *mem.Allocator // software allocations
	Arena  *mem.Allocator // accelerator arena
	Out    *mem.Allocator // CPU serializer output

	mat         *layout.Materializer // writes inputs into Static
	adts        *adt.Set
	schemaRoots []*schema.Message

	CPU   *cpu.CPU          // nil for KindAccel's accelerated path (still present for host work)
	Accel *rocc.Accelerator // non-nil only for KindAccel

	serData *mem.Region
	serPtrs *mem.Region

	adtAlloc *mem.Allocator

	// Inj is the System's fault injector, shared by every accelerator unit
	// (internal/faults). Always non-nil; disabled unless Cfg.Faults asks
	// for injection.
	Inj *faults.Injector

	// res counts the resilient-dispatch layer's recovery actions.
	res resilienceStats

	// poisoned marks a System whose simulated state an aborted
	// mid-mutation operation left undefined; see Poisoned.
	poisoned bool

	tel telemetry.Hub
}

// New builds a System. An invalid fault configuration panics: Config is
// assembled programmatically, and the command-line front ends validate
// user-supplied fault flags with faults.Config.Validate before building.
func New(cfg Config) *System {
	inj, err := faults.New(cfg.Faults)
	if err != nil {
		panic(fmt.Sprintf("core: invalid fault config: %v", err))
	}
	m := mem.New()
	s := &System{
		Cfg:    cfg,
		Mem:    m,
		MemSys: memmodel.NewSystem(cfg.Mem),
		Reg:    layout.NewRegistry(),
		Inj:    inj,
	}
	s.adtAlloc = mem.NewAllocator(m.Map("adt", 16<<20))
	s.Static = mem.NewAllocator(m.Map("static", cfg.StaticSize))
	s.Heap = mem.NewAllocator(m.Map("heap", cfg.HeapSize))
	s.Out = mem.NewAllocator(m.Map("out", cfg.OutSize))
	s.mat = layout.NewMaterializer(m, s.Static, s.Reg)
	s.CPU = cpu.New(cfg.CPU, m, s.MemSys.NewPort("cpu"), s.Heap, s.Reg)
	s.CPU.UseArena = cfg.SoftwareArenas
	if cfg.Kind == KindAccel {
		arenaRegion := m.Map("accel-arena", cfg.ArenaSize)
		s.Arena = mem.NewAllocator(arenaRegion)
		s.serData = m.Map("ser-out", cfg.OutSize)
		s.serPtrs = m.Map("ser-ptrs", 16<<20)
		port := s.MemSys.NewPort("accel")
		// The accelerator's memory interface wrappers track more
		// outstanding requests than the core's LSU exposes for
		// streaming (§4.1).
		port.SetStreamOverlap(8)
		s.Accel = &rocc.Accelerator{
			Deser: deser.New(m, port, s.Arena, cfg.Deser),
			Ser:   ser.New(m, port, cfg.Ser),
			Mops:  mops.New(m, port, s.Arena, mops.DefaultConfig()),
			Mem:   m,
		}
		s.Accel.AssignArenas(s.Arena, s.serData, s.serPtrs)
		s.Accel.Inj = inj
		s.Accel.Deser.Inj = inj
		s.Accel.Ser.Inj = inj
		s.Accel.Mops.Inj = inj
	}
	// Register every unit's counters and hand each tracing-capable unit
	// the System's trace buffer (disabled until somebody enables it).
	s.tel.Registry.Register("mem", s.MemSys)
	s.tel.Registry.Register("cpu", s.CPU)
	if s.Accel != nil {
		s.tel.Registry.Register("rocc", s.Accel)
		s.tel.Registry.Register("deser", s.Accel.Deser)
		s.tel.Registry.Register("ser", s.Accel.Ser)
		s.tel.Registry.Register("mops", s.Accel.Mops)
		s.Accel.Tracer = &s.tel.Tracer
		s.Accel.Deser.Tracer = &s.tel.Tracer
		s.Accel.Ser.Tracer = &s.tel.Tracer
		s.Accel.Mops.Tracer = &s.tel.Tracer
	}
	// Fault and resilience counters are registered on every kind so the
	// -stats-out shape stays uniform (zero for software-only systems).
	s.tel.Registry.Register("faults", s.Inj)
	s.tel.Registry.Register("resilience", &s.res)
	return s
}

// Telemetry returns the System's telemetry hub: the counter registry
// covering every unit, the shared trace buffer, and the per-op Result
// attachment switch. Tracing and per-op capture are System-local state,
// not Config state, so enabling them does not fragment the System pool.
func (s *System) Telemetry() *telemetry.Hub { return &s.tel }

// LoadSchema registers message types and builds their ADTs (program-load
// work, outside any timed region). Subsequent calls rebuild the table set
// over the union of all roots loaded so far.
func (s *System) LoadSchema(roots ...*schema.Message) error {
	s.schemaRoots = append(s.schemaRoots, roots...)
	for _, r := range s.schemaRoots {
		s.Reg.Register(r)
	}
	set, err := adt.Build(s.Mem, s.adtAlloc, s.Reg, s.schemaRoots...)
	if err != nil {
		return err
	}
	s.adts = set
	return nil
}

// ADTAddr exposes a type's ADT address (for tooling).
func (s *System) ADTAddr(t *schema.Message) uint64 {
	if s.adts == nil {
		return 0
	}
	return s.adts.Addr(t)
}

// WriteWire copies wire bytes into static input space.
func (s *System) WriteWire(b []byte) (uint64, error) {
	addr, err := s.Static.Alloc(uint64(len(b))+1, 8)
	if err != nil {
		return 0, err
	}
	return addr, s.Mem.WriteBytes(addr, b)
}

// ReadWire copies n bytes out of simulated memory.
func (s *System) ReadWire(addr, n uint64) ([]byte, error) {
	b := make([]byte, n)
	return b, s.Mem.ReadBytes(addr, b)
}

// MaterializeInput writes msg into static space as a C++-layout object
// (benchmark setup, untimed).
func (s *System) MaterializeInput(msg *dynamic.Message) (uint64, error) {
	return s.mat.Write(msg)
}

// ReadMessage reconstructs the object at addr as a dynamic message.
func (s *System) ReadMessage(t *schema.Message, addr uint64) (*dynamic.Message, error) {
	return s.mat.Read(t, addr)
}

// AllocTopLevel allocates a destination object from the (resettable) heap
// — the user-code allocation preceding a deserialization.
func (s *System) AllocTopLevel(t *schema.Message) (uint64, error) {
	heapMat := layout.NewMaterializer(s.Mem, s.Heap, s.Reg)
	return heapMat.AllocObject(t)
}

// deserializeSoftware runs one deserialization on the host core's
// software codec (the CPU path of software systems, and the fallback path
// of faulted accelerator systems).
func (s *System) deserializeSoftware(t *schema.Message, bufAddr, bufLen uint64) (Result, error) {
	objAddr, err := s.AllocTopLevel(t)
	if err != nil {
		return Result{}, err
	}
	start := s.CPU.Cycles()
	if err := s.CPU.Deserialize(t, bufAddr, bufLen, objAddr); err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	return Result{
		Cycles:  cy,
		Seconds: s.CPU.Seconds(cy),
		Bytes:   bufLen,
		ObjAddr: objAddr,
	}, nil
}

// Deserialize runs the timed deserialization of bufLen bytes at bufAddr
// into a fresh top-level object.
func (s *System) Deserialize(t *schema.Message, bufAddr, bufLen uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		if s.adts == nil || s.adts.Addr(t) == 0 {
			return Result{}, fmt.Errorf("core: type %s not loaded", t.Name)
		}
		adtAddr := s.adts.Addr(t)
		var st deser.Stats
		var heapMark, arenaMark mem.Mark
		res, err := s.resilient("deser", accelAttempt{
			attempt: func() (Result, error) {
				heapMark, arenaMark = s.Heap.Mark(), s.Arena.Mark()
				objAddr, err := s.AllocTopLevel(t)
				if err != nil {
					return Result{}, err
				}
				busy, stats, err := s.Accel.DeserializeOp(adtAddr, objAddr, bufAddr, bufLen)
				if err != nil {
					return Result{}, err
				}
				st = stats
				return Result{
					Cycles:  busy,
					Seconds: s.accelSeconds(busy),
					Bytes:   bufLen,
					ObjAddr: objAddr,
				}, nil
			},
			abort: func() (float64, error) {
				s.Heap.Truncate(heapMark)
				s.Arena.Truncate(arenaMark)
				return s.Accel.Deser.Abort(), nil
			},
			fallback: func() (Result, error) {
				return s.deserializeSoftware(t, bufAddr, bufLen)
			},
		})
		if err != nil {
			return Result{}, err
		}
		if began {
			if res.Fault != nil && res.Fault.FellBack {
				res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(res.Cycles, 0, 0, 0))
			} else {
				res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(
					res.Cycles, st.SupplyBoundCycles, st.SpillCycles, st.ADTStallCycles))
			}
		}
		return res, nil
	}
	res, err := s.deserializeSoftware(t, bufAddr, bufLen)
	if err != nil {
		return Result{}, err
	}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(res.Cycles, 0, 0, 0))
	}
	return res, nil
}

// serializeSoftware runs one serialization on the host core's software
// codec.
func (s *System) serializeSoftware(t *schema.Message, objAddr uint64) (Result, error) {
	start := s.CPU.Cycles()
	addr, n, err := s.CPU.Serialize(t, objAddr, s.Out)
	if err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	return Result{
		Cycles:   cy,
		Seconds:  s.CPU.Seconds(cy),
		Bytes:    n,
		WireAddr: addr,
	}, nil
}

// Serialize runs the timed serialization of the object at objAddr.
func (s *System) Serialize(t *schema.Message, objAddr uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		if s.adts == nil || s.adts.Addr(t) == 0 {
			return Result{}, fmt.Errorf("core: type %s not loaded", t.Name)
		}
		adtAddr := s.adts.Addr(t)
		var st ser.Stats
		var outMark ser.OutMark
		res, err := s.resilient("ser", accelAttempt{
			attempt: func() (Result, error) {
				outMark = s.Accel.Ser.Mark()
				busy, stats, err := s.Accel.SerializeOp(adtAddr, objAddr)
				if err != nil {
					return Result{}, err
				}
				addr, n, err := s.Accel.Ser.Output(s.Accel.Ser.Outputs() - 1)
				if err != nil {
					return Result{}, err
				}
				if n != stats.BytesProduced {
					return Result{}, errors.New("core: serializer length bookkeeping mismatch")
				}
				st = stats
				return Result{
					Cycles:   busy,
					Seconds:  s.accelSeconds(busy),
					Bytes:    n,
					WireAddr: addr,
				}, nil
			},
			abort: func() (float64, error) {
				cy := s.Accel.Ser.Abort()
				return cy, s.Accel.Ser.Rewind(outMark)
			},
			fallback: func() (Result, error) {
				return s.serializeSoftware(t, objAddr)
			},
		})
		if err != nil {
			return Result{}, err
		}
		if began {
			if res.Fault != nil && res.Fault.FellBack {
				res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(res.Cycles, 0, 0, 0))
			} else {
				res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(
					res.Cycles, 0, st.SpillCycles, st.ADTStallCycles))
			}
		}
		return res, nil
	}
	res, err := s.serializeSoftware(t, objAddr)
	if err != nil {
		return Result{}, err
	}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(res.Cycles, 0, 0, 0))
	}
	return res, nil
}

// WireRef locates one serialized buffer in simulated memory.
type WireRef struct {
	Addr, Len uint64
}

// DeserializeBatch deserializes a batch of inputs with one completion
// barrier at the end — the §4.4.1 batching pattern the paper's benchmarks
// use, amortizing dispatch and fence costs. Returns the batch Result
// (total cycles and bytes) and the destination object addresses.
func (s *System) DeserializeBatch(t *schema.Message, refs []WireRef) (Result, []uint64, error) {
	objs := make([]uint64, len(refs))
	var total Result
	// Batches snapshot the registry directly rather than via Hub.OpBegin:
	// the software path below re-enters Deserialize per item, and the
	// Hub's single scratch snapshot must stay owned by the innermost op.
	// Attribution-only mode (EnableAttribution) skips the snapshots and
	// derives the attribution from unit stat deltas alone.
	began := s.tel.PerOpEnabled()
	wantAttr := s.tel.AttributionEnabled()
	var prev telemetry.Snapshot
	if began {
		prev = s.tel.Registry.Snapshot()
	}
	if s.Accel == nil {
		for i, r := range refs {
			res, err := s.Deserialize(t, r.Addr, r.Len)
			if err != nil {
				return Result{}, nil, err
			}
			objs[i] = res.ObjAddr
			total.Cycles += res.Cycles
			total.Bytes += res.Bytes
		}
		total.Seconds = s.CPU.Seconds(total.Cycles)
		if wantAttr {
			total.Telemetry = &telemetry.OpTelemetry{
				Attribution: telemetry.NewAttribution(total.Cycles, 0, 0, 0),
			}
			if began {
				total.Telemetry.Counters = s.tel.Registry.Snapshot().Delta(prev)
			}
		}
		return total, objs, nil
	}
	if s.adts == nil || s.adts.Addr(t) == 0 {
		return Result{}, nil, fmt.Errorf("core: type %s not loaded", t.Name)
	}
	before := s.Accel.Deser.Stats()
	adtAddr := s.adts.Addr(t)
	// A fault anywhere in the batch aborts and rolls back the whole batch
	// (the completion barrier is what commits it), then the batch retries
	// or falls back as a unit.
	var heapMark, arenaMark mem.Mark
	total, err := s.resilient("deser_batch", accelAttempt{
		attempt: func() (Result, error) {
			heapMark, arenaMark = s.Heap.Mark(), s.Arena.Mark()
			var batch Result
			for i, r := range refs {
				obj, err := s.AllocTopLevel(t)
				if err != nil {
					return Result{}, err
				}
				objs[i] = obj
				if _, err := s.Accel.Issue(rocc.Command{Op: rocc.OpDeserInfo, RS1: adtAddr, RS2: obj}); err != nil {
					return Result{}, err
				}
				if _, err := s.Accel.Issue(rocc.Command{Op: rocc.OpDoProtoDeser, RS1: r.Addr, RS2: r.Len}); err != nil {
					return Result{}, err
				}
				batch.Bytes += r.Len
			}
			busy, err := s.Accel.Issue(rocc.Command{Op: rocc.OpBlockForDeserCompletion})
			if err != nil {
				return Result{}, err
			}
			batch.Cycles = busy
			batch.Seconds = s.accelSeconds(busy)
			return batch, nil
		},
		abort: func() (float64, error) {
			s.Heap.Truncate(heapMark)
			s.Arena.Truncate(arenaMark)
			return s.Accel.Deser.Abort(), nil
		},
		fallback: func() (Result, error) {
			var batch Result
			for i, r := range refs {
				res, err := s.deserializeSoftware(t, r.Addr, r.Len)
				if err != nil {
					return Result{}, err
				}
				objs[i] = res.ObjAddr
				batch.Cycles += res.Cycles
				batch.Bytes += res.Bytes
			}
			batch.Seconds = s.CPU.Seconds(batch.Cycles)
			return batch, nil
		},
	})
	if err != nil {
		return Result{}, nil, err
	}
	if wantAttr {
		attr := telemetry.NewAttribution(total.Cycles, 0, 0, 0)
		if total.Fault == nil || !total.Fault.FellBack {
			after := s.Accel.Deser.Stats()
			attr = telemetry.NewAttribution(total.Cycles,
				after.SupplyBoundCycles-before.SupplyBoundCycles,
				after.SpillCycles-before.SpillCycles,
				after.ADTStallCycles-before.ADTStallCycles)
		}
		total.Telemetry = &telemetry.OpTelemetry{Attribution: attr}
		if began {
			total.Telemetry.Counters = s.tel.Registry.Snapshot().Delta(prev)
		}
	}
	return total, objs, nil
}

// SerializeBatch serializes a batch of objects with one completion barrier
// at the end, returning the batch Result and per-object output locations.
func (s *System) SerializeBatch(t *schema.Message, objAddrs []uint64) (Result, []WireRef, error) {
	refs := make([]WireRef, len(objAddrs))
	var total Result
	began := s.tel.PerOpEnabled()
	wantAttr := s.tel.AttributionEnabled()
	var prev telemetry.Snapshot
	if began {
		prev = s.tel.Registry.Snapshot()
	}
	if s.Accel == nil {
		for i, obj := range objAddrs {
			res, err := s.Serialize(t, obj)
			if err != nil {
				return Result{}, nil, err
			}
			refs[i] = WireRef{Addr: res.WireAddr, Len: res.Bytes}
			total.Cycles += res.Cycles
			total.Bytes += res.Bytes
		}
		total.Seconds = s.CPU.Seconds(total.Cycles)
		if wantAttr {
			total.Telemetry = &telemetry.OpTelemetry{
				Attribution: telemetry.NewAttribution(total.Cycles, 0, 0, 0),
			}
			if began {
				total.Telemetry.Counters = s.tel.Registry.Snapshot().Delta(prev)
			}
		}
		return total, refs, nil
	}
	if s.adts == nil || s.adts.Addr(t) == 0 {
		return Result{}, nil, fmt.Errorf("core: type %s not loaded", t.Name)
	}
	before := s.Accel.Ser.Stats()
	adtAddr := s.adts.Addr(t)
	// As with DeserializeBatch, a fault anywhere rolls back and retries
	// (or falls back) the whole batch as a unit.
	var outMark ser.OutMark
	total, err := s.resilient("ser_batch", accelAttempt{
		attempt: func() (Result, error) {
			outMark = s.Accel.Ser.Mark()
			firstOut := s.Accel.Ser.Outputs()
			var batch Result
			for _, obj := range objAddrs {
				if _, err := s.Accel.Issue(rocc.Command{Op: rocc.OpSerInfo}); err != nil {
					return Result{}, err
				}
				if _, err := s.Accel.Issue(rocc.Command{Op: rocc.OpDoProtoSer, RS1: adtAddr, RS2: obj}); err != nil {
					return Result{}, err
				}
			}
			busy, err := s.Accel.Issue(rocc.Command{Op: rocc.OpBlockForSerCompletion})
			if err != nil {
				return Result{}, err
			}
			for i := range objAddrs {
				addr, n, err := s.Accel.Ser.Output(firstOut + uint64(i))
				if err != nil {
					return Result{}, err
				}
				refs[i] = WireRef{Addr: addr, Len: n}
				batch.Bytes += n
			}
			batch.Cycles = busy
			batch.Seconds = s.accelSeconds(busy)
			return batch, nil
		},
		abort: func() (float64, error) {
			cy := s.Accel.Ser.Abort()
			return cy, s.Accel.Ser.Rewind(outMark)
		},
		fallback: func() (Result, error) {
			var batch Result
			for i, obj := range objAddrs {
				res, err := s.serializeSoftware(t, obj)
				if err != nil {
					return Result{}, err
				}
				refs[i] = WireRef{Addr: res.WireAddr, Len: res.Bytes}
				batch.Cycles += res.Cycles
				batch.Bytes += res.Bytes
			}
			batch.Seconds = s.CPU.Seconds(batch.Cycles)
			return batch, nil
		},
	})
	if err != nil {
		return Result{}, nil, err
	}
	if wantAttr {
		attr := telemetry.NewAttribution(total.Cycles, 0, 0, 0)
		if total.Fault == nil || !total.Fault.FellBack {
			after := s.Accel.Ser.Stats()
			attr = telemetry.NewAttribution(total.Cycles, 0,
				after.SpillCycles-before.SpillCycles,
				after.ADTStallCycles-before.ADTStallCycles)
		}
		total.Telemetry = &telemetry.OpTelemetry{Attribution: attr}
		if began {
			total.Telemetry.Counters = s.tel.Registry.Snapshot().Delta(prev)
		}
	}
	return total, refs, nil
}

// Clear resets all presence state of the object at objAddr (the §7
// clear operator).
func (s *System) Clear(t *schema.Message, objAddr uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		adtAddr := s.adts.Addr(t)
		res, err := s.resilient("clear", accelAttempt{
			attempt: func() (Result, error) {
				busy, err := s.Accel.ClearOp(adtAddr, objAddr)
				if err != nil {
					return Result{}, err
				}
				return Result{Cycles: busy, Seconds: s.accelSeconds(busy), ObjAddr: objAddr}, nil
			},
			abort: func() (float64, error) {
				// Clear is idempotent: a partially-cleared object needs no
				// rollback — the retry or the software fallback re-clears
				// from the start and converges on the same result.
				return s.Accel.Mops.Abort(), nil
			},
			fallback: func() (Result, error) {
				start := s.CPU.Cycles()
				if err := s.CPU.ClearObject(t, objAddr); err != nil {
					return Result{}, err
				}
				cy := s.CPU.Cycles() - start
				return Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: objAddr}, nil
			},
		})
		if err != nil {
			return Result{}, err
		}
		if began {
			res.Telemetry = s.tel.OpEnd(s.opAttribution(res))
		}
		return res, nil
	}
	start := s.CPU.Cycles()
	if err := s.CPU.ClearObject(t, objAddr); err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	res := Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: objAddr}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(cy, 0, 0, 0))
	}
	return res, nil
}

// Copy deep-copies the object at srcObj, returning the new object (the §7
// copy operator).
func (s *System) Copy(t *schema.Message, srcObj uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		adtAddr := s.adts.Addr(t)
		var arenaMark mem.Mark
		res, err := s.resilient("copy", accelAttempt{
			attempt: func() (Result, error) {
				arenaMark = s.Arena.Mark()
				busy, dst, err := s.Accel.CopyOp(adtAddr, srcObj)
				if err != nil {
					return Result{}, err
				}
				return Result{Cycles: busy, Seconds: s.accelSeconds(busy), ObjAddr: dst}, nil
			},
			abort: func() (float64, error) {
				// Copy writes only freshly-allocated arena memory, so
				// truncating the arena reverts it completely.
				s.Arena.Truncate(arenaMark)
				return s.Accel.Mops.Abort(), nil
			},
			fallback: func() (Result, error) {
				start := s.CPU.Cycles()
				dst, err := s.CPU.CopyObject(t, srcObj)
				if err != nil {
					return Result{}, err
				}
				cy := s.CPU.Cycles() - start
				return Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: dst}, nil
			},
		})
		if err != nil {
			return Result{}, err
		}
		if began {
			res.Telemetry = s.tel.OpEnd(s.opAttribution(res))
		}
		return res, nil
	}
	start := s.CPU.Cycles()
	dst, err := s.CPU.CopyObject(t, srcObj)
	if err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	res := Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: dst}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(cy, 0, 0, 0))
	}
	return res, nil
}

// Merge merges srcObj into dstObj with proto2 semantics (the §7 merge
// operator).
func (s *System) Merge(t *schema.Message, dstObj, srcObj uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		adtAddr := s.adts.Addr(t)
		res, err := s.resilient("merge", accelAttempt{
			attempt: func() (Result, error) {
				busy, err := s.Accel.MergeOp(adtAddr, dstObj, srcObj)
				if err != nil {
					return Result{}, err
				}
				return Result{Cycles: busy, Seconds: s.accelSeconds(busy), ObjAddr: dstObj}, nil
			},
			abort: func() (float64, error) {
				// Merge's validation pre-pass hosts every fault trial before
				// the first mutating write (see mops.Merge), so an aborted
				// merge left the destination untouched — nothing to roll
				// back. A failure after mutation began wraps ErrPoisoned and
				// never reaches here.
				return s.Accel.Mops.Abort(), nil
			},
			fallback: func() (Result, error) {
				start := s.CPU.Cycles()
				if err := s.CPU.MergeObjects(t, dstObj, srcObj); err != nil {
					return Result{}, err
				}
				cy := s.CPU.Cycles() - start
				return Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: dstObj}, nil
			},
		})
		if err != nil {
			return Result{}, err
		}
		if began {
			res.Telemetry = s.tel.OpEnd(s.opAttribution(res))
		}
		return res, nil
	}
	start := s.CPU.Cycles()
	if err := s.CPU.MergeObjects(t, dstObj, srcObj); err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	res := Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: dstObj}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(cy, 0, 0, 0))
	}
	return res, nil
}

// opAttribution builds the cycle attribution for the message-operations
// op that just completed (its per-op stats are the last MopsOps entry).
// A fallen-back operation completed in software, where the accelerator's
// attribution classes do not apply.
func (s *System) opAttribution(res Result) telemetry.Attribution {
	if res.Fault == nil || !res.Fault.FellBack {
		if n := len(s.Accel.MopsOps); n > 0 {
			st := s.Accel.MopsOps[n-1]
			return telemetry.NewAttribution(res.Cycles, 0, st.SpillCycles, st.ADTStallCycles)
		}
	}
	return telemetry.NewAttribution(res.Cycles, 0, 0, 0)
}

// ResetWork rewinds the resettable allocators (heap, accelerator arena,
// serializer output) between benchmark batches, leaving static inputs and
// ADTs intact.
func (s *System) ResetWork() {
	s.Heap.Reset()
	s.Out.Reset()
	if s.Arena != nil {
		s.Arena.Reset()
	}
	if s.Accel != nil {
		s.Accel.Ser.AssignArena(s.serData, s.serPtrs)
	}
}

// ResetAll returns the System to the state New left it in, without
// remapping or re-zeroing whole regions: allocators rewind, only the
// dirty span of each region is zeroed (mem.Region's [lo, hi) tracking),
// the cache/TLB hierarchy and all cycle accumulators reset, and the
// layout registry restarts type-id assignment. After ResetAll the System
// is bitwise-indistinguishable — addresses, latencies, cycle counts —
// from a freshly constructed one with the same Config, which is what lets
// the Pool recycle Systems without perturbing measurements.
func (s *System) ResetAll() {
	s.adtAlloc.Reset()
	s.Static.Reset()
	s.Heap.Reset()
	s.Out.Reset()
	if s.Arena != nil {
		s.Arena.Reset()
	}
	s.Mem.ResetDirty()
	s.MemSys.Reset()
	s.Reg.Reset()
	s.schemaRoots = nil
	s.adts = nil
	if s.CPU != nil {
		s.CPU.ResetCycles()
	}
	if s.Accel != nil {
		s.Accel.Reset()
		s.Accel.Ser.AssignArena(s.serData, s.serPtrs)
	}
	s.Inj.Reset()
	s.res = resilienceStats{}
	s.poisoned = false
	s.tel.Reset()
}

// ResetBatch returns a System to the state a `ResetAll` followed by a
// `LoadSchema` of its already-loaded roots would produce, without paying
// for either: the schema registry, the built ADTs, and the ADT region
// contents are kept (adt.Build is deterministic, so rebuilding them would
// write back the exact same bytes at the exact same addresses), while
// everything a batch can touch is reset — work allocators rewind and
// their regions' dirty spans are zeroed, the cache/TLB hierarchy goes
// cold, the accelerator and CPU cycle accumulators clear, the fault
// schedule restarts, and the telemetry hub resets. The serving tiles use
// this to keep per-schema resident Systems across batches: a batch on a
// ResetBatch-recycled System is bitwise-indistinguishable from one on a
// freshly pooled-and-loaded System.
func (s *System) ResetBatch() {
	s.Static.Reset()
	s.Heap.Reset()
	s.Out.Reset()
	s.Static.Region().ResetDirty()
	s.Heap.Region().ResetDirty()
	s.Out.Region().ResetDirty()
	if s.Arena != nil {
		s.Arena.Reset()
		s.Arena.Region().ResetDirty()
	}
	if s.serData != nil {
		s.serData.ResetDirty()
		s.serPtrs.ResetDirty()
	}
	s.MemSys.Reset()
	if s.CPU != nil {
		s.CPU.ResetCycles()
	}
	if s.Accel != nil {
		s.Accel.Reset()
		s.Accel.Ser.AssignArena(s.serData, s.serPtrs)
	}
	s.Inj.Reset()
	s.res = resilienceStats{}
	s.poisoned = false
	s.tel.Reset()
}

// Name returns the system's display name ("riscv-boom", "Xeon",
// "riscv-boom-accel").
func (s *System) Name() string { return s.Cfg.Kind.String() }
