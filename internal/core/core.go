// Package core assembles the simulated systems the paper evaluates
// (Section 5): "riscv-boom" (a BOOM-class OoO core alone), "Xeon" (a
// server-class core), and "riscv-boom-accel" (the BOOM core with the
// protobuf accelerator attached over RoCC, sharing the L2/LLC — Figure 8).
//
// A System owns a simulated memory, a cache-hierarchy timing model, a
// layout registry, ADTs, and either a CPU software-codec model or the
// accelerator units. Workloads are loaded once (schemas, input wire
// buffers, pre-materialized objects) and then Serialize/Deserialize run
// the timed operations, returning functional results plus cycle counts
// convertible to seconds and throughput.
package core

import (
	"errors"
	"fmt"

	"protoacc/internal/accel/adt"
	"protoacc/internal/accel/deser"
	"protoacc/internal/accel/layout"
	"protoacc/internal/accel/mops"
	"protoacc/internal/accel/ser"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/sim/cpu"
	"protoacc/internal/sim/mem"
	"protoacc/internal/sim/memmodel"
	"protoacc/internal/sim/rocc"
	"protoacc/internal/telemetry"
)

// Kind selects which evaluated system a System models.
type Kind int

// The three systems of Section 5.
const (
	KindBOOM Kind = iota
	KindXeon
	KindAccel // riscv-boom-accel
)

func (k Kind) String() string {
	switch k {
	case KindBOOM:
		return "riscv-boom"
	case KindXeon:
		return "Xeon"
	case KindAccel:
		return "riscv-boom-accel"
	default:
		return fmt.Sprintf("core.Kind(%d)", int(k))
	}
}

// Config sizes and parameterizes a System.
type Config struct {
	Kind         Kind
	Mem          memmodel.Config
	CPU          cpu.Params
	Deser        deser.Config
	Ser          ser.Config
	AccelFreqGHz float64

	// SoftwareArenas makes the CPU baselines allocate from software
	// arenas (§2.3) instead of the heap during deserialization.
	SoftwareArenas bool

	StaticSize uint64 // inputs: wire buffers, materialized objects, ADTs
	HeapSize   uint64 // software allocations (reset between batches)
	ArenaSize  uint64 // accelerator arena (reset between batches)
	OutSize    uint64 // serializer output space (reset between batches)
}

// XeonMemConfig models the server part's memory system: larger caches,
// slightly longer L1, a big LLC.
func XeonMemConfig() memmodel.Config {
	return memmodel.Config{
		L1:            memmodel.CacheConfig{Name: "L1", SizeBytes: 32 << 10, Assoc: 8, HitLatency: 4},
		L2:            memmodel.CacheConfig{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, HitLatency: 12},
		LLC:           memmodel.CacheConfig{Name: "LLC", SizeBytes: 16 << 20, Assoc: 16, HitLatency: 42},
		DRAMLatency:   230,
		TLBEntries:    128,
		PTWLatency:    60,
		StreamOverlap: 8, // aggressive hardware prefetchers
	}
}

// DefaultConfig returns the configuration for one of the three systems
// with paper-like parameters.
func DefaultConfig(k Kind) Config {
	cfg := Config{
		Kind:         k,
		Deser:        deser.DefaultConfig(),
		Ser:          ser.DefaultConfig(),
		AccelFreqGHz: 2.0,
		StaticSize:   256 << 20,
		HeapSize:     256 << 20,
		ArenaSize:    256 << 20,
		OutSize:      256 << 20,
	}
	switch k {
	case KindXeon:
		cfg.Mem = XeonMemConfig()
		cfg.CPU = cpu.XeonParams()
	default:
		cfg.Mem = memmodel.DefaultConfig()
		cfg.CPU = cpu.BOOMParams()
	}
	return cfg
}

// Result reports one timed operation.
type Result struct {
	Cycles  float64
	Seconds float64
	Bytes   uint64 // serialized bytes consumed (deser) or produced (ser)

	ObjAddr  uint64 // deserialization destination object
	WireAddr uint64 // serialization output

	// Telemetry carries the operation's counter delta and cycle
	// attribution when per-op telemetry is enabled on the System
	// (Telemetry().EnablePerOp(true)); nil otherwise.
	Telemetry *telemetry.OpTelemetry
}

// Throughput returns the operation's Gbit/s over its serialized bytes,
// the metric of Figures 11-13.
func (r Result) Throughput() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / r.Seconds / 1e9
}

// System is one simulated machine.
type System struct {
	Cfg    Config
	Mem    *mem.Memory
	MemSys *memmodel.System
	Reg    *layout.Registry

	Static *mem.Allocator // never reset
	Heap   *mem.Allocator // software allocations
	Arena  *mem.Allocator // accelerator arena
	Out    *mem.Allocator // CPU serializer output

	mat         *layout.Materializer // writes inputs into Static
	adts        *adt.Set
	schemaRoots []*schema.Message

	CPU   *cpu.CPU          // nil for KindAccel's accelerated path (still present for host work)
	Accel *rocc.Accelerator // non-nil only for KindAccel

	serData *mem.Region
	serPtrs *mem.Region

	adtAlloc *mem.Allocator

	tel telemetry.Hub
}

// New builds a System.
func New(cfg Config) *System {
	m := mem.New()
	s := &System{
		Cfg:    cfg,
		Mem:    m,
		MemSys: memmodel.NewSystem(cfg.Mem),
		Reg:    layout.NewRegistry(),
	}
	s.adtAlloc = mem.NewAllocator(m.Map("adt", 16<<20))
	s.Static = mem.NewAllocator(m.Map("static", cfg.StaticSize))
	s.Heap = mem.NewAllocator(m.Map("heap", cfg.HeapSize))
	s.Out = mem.NewAllocator(m.Map("out", cfg.OutSize))
	s.mat = layout.NewMaterializer(m, s.Static, s.Reg)
	s.CPU = cpu.New(cfg.CPU, m, s.MemSys.NewPort("cpu"), s.Heap, s.Reg)
	s.CPU.UseArena = cfg.SoftwareArenas
	if cfg.Kind == KindAccel {
		arenaRegion := m.Map("accel-arena", cfg.ArenaSize)
		s.Arena = mem.NewAllocator(arenaRegion)
		s.serData = m.Map("ser-out", cfg.OutSize)
		s.serPtrs = m.Map("ser-ptrs", 16<<20)
		port := s.MemSys.NewPort("accel")
		// The accelerator's memory interface wrappers track more
		// outstanding requests than the core's LSU exposes for
		// streaming (§4.1).
		port.SetStreamOverlap(8)
		s.Accel = &rocc.Accelerator{
			Deser: deser.New(m, port, s.Arena, cfg.Deser),
			Ser:   ser.New(m, port, cfg.Ser),
			Mops:  mops.New(m, port, s.Arena, mops.DefaultConfig()),
			Mem:   m,
		}
		s.Accel.AssignArenas(s.Arena, s.serData, s.serPtrs)
	}
	// Register every unit's counters and hand each tracing-capable unit
	// the System's trace buffer (disabled until somebody enables it).
	s.tel.Registry.Register("mem", s.MemSys)
	s.tel.Registry.Register("cpu", s.CPU)
	if s.Accel != nil {
		s.tel.Registry.Register("rocc", s.Accel)
		s.tel.Registry.Register("deser", s.Accel.Deser)
		s.tel.Registry.Register("ser", s.Accel.Ser)
		s.tel.Registry.Register("mops", s.Accel.Mops)
		s.Accel.Tracer = &s.tel.Tracer
		s.Accel.Deser.Tracer = &s.tel.Tracer
		s.Accel.Ser.Tracer = &s.tel.Tracer
		s.Accel.Mops.Tracer = &s.tel.Tracer
	}
	return s
}

// Telemetry returns the System's telemetry hub: the counter registry
// covering every unit, the shared trace buffer, and the per-op Result
// attachment switch. Tracing and per-op capture are System-local state,
// not Config state, so enabling them does not fragment the System pool.
func (s *System) Telemetry() *telemetry.Hub { return &s.tel }

// LoadSchema registers message types and builds their ADTs (program-load
// work, outside any timed region). Subsequent calls rebuild the table set
// over the union of all roots loaded so far.
func (s *System) LoadSchema(roots ...*schema.Message) error {
	s.schemaRoots = append(s.schemaRoots, roots...)
	for _, r := range s.schemaRoots {
		s.Reg.Register(r)
	}
	set, err := adt.Build(s.Mem, s.adtAlloc, s.Reg, s.schemaRoots...)
	if err != nil {
		return err
	}
	s.adts = set
	return nil
}

// ADTAddr exposes a type's ADT address (for tooling).
func (s *System) ADTAddr(t *schema.Message) uint64 {
	if s.adts == nil {
		return 0
	}
	return s.adts.Addr(t)
}

// WriteWire copies wire bytes into static input space.
func (s *System) WriteWire(b []byte) (uint64, error) {
	addr, err := s.Static.Alloc(uint64(len(b))+1, 8)
	if err != nil {
		return 0, err
	}
	return addr, s.Mem.WriteBytes(addr, b)
}

// ReadWire copies n bytes out of simulated memory.
func (s *System) ReadWire(addr, n uint64) ([]byte, error) {
	b := make([]byte, n)
	return b, s.Mem.ReadBytes(addr, b)
}

// MaterializeInput writes msg into static space as a C++-layout object
// (benchmark setup, untimed).
func (s *System) MaterializeInput(msg *dynamic.Message) (uint64, error) {
	return s.mat.Write(msg)
}

// ReadMessage reconstructs the object at addr as a dynamic message.
func (s *System) ReadMessage(t *schema.Message, addr uint64) (*dynamic.Message, error) {
	return s.mat.Read(t, addr)
}

// AllocTopLevel allocates a destination object from the (resettable) heap
// — the user-code allocation preceding a deserialization.
func (s *System) AllocTopLevel(t *schema.Message) (uint64, error) {
	heapMat := layout.NewMaterializer(s.Mem, s.Heap, s.Reg)
	return heapMat.AllocObject(t)
}

// Deserialize runs the timed deserialization of bufLen bytes at bufAddr
// into a fresh top-level object.
func (s *System) Deserialize(t *schema.Message, bufAddr, bufLen uint64) (Result, error) {
	objAddr, err := s.AllocTopLevel(t)
	if err != nil {
		return Result{}, err
	}
	began := s.tel.OpBegin()
	if s.Accel != nil {
		if s.adts == nil || s.adts.Addr(t) == 0 {
			return Result{}, fmt.Errorf("core: type %s not loaded", t.Name)
		}
		busy, st, err := s.Accel.DeserializeOp(s.adts.Addr(t), objAddr, bufAddr, bufLen)
		if err != nil {
			return Result{}, err
		}
		res := Result{
			Cycles:  busy,
			Seconds: busy / (s.Cfg.AccelFreqGHz * 1e9),
			Bytes:   bufLen,
			ObjAddr: objAddr,
		}
		if began {
			res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(
				busy, st.SupplyBoundCycles, st.SpillCycles, st.ADTStallCycles))
		}
		return res, nil
	}
	start := s.CPU.Cycles()
	if err := s.CPU.Deserialize(t, bufAddr, bufLen, objAddr); err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	res := Result{
		Cycles:  cy,
		Seconds: s.CPU.Seconds(cy),
		Bytes:   bufLen,
		ObjAddr: objAddr,
	}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(cy, 0, 0, 0))
	}
	return res, nil
}

// Serialize runs the timed serialization of the object at objAddr.
func (s *System) Serialize(t *schema.Message, objAddr uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		if s.adts == nil || s.adts.Addr(t) == 0 {
			return Result{}, fmt.Errorf("core: type %s not loaded", t.Name)
		}
		busy, st, err := s.Accel.SerializeOp(s.adts.Addr(t), objAddr)
		if err != nil {
			return Result{}, err
		}
		addr, n, err := s.Accel.Ser.Output(s.Accel.Ser.Outputs() - 1)
		if err != nil {
			return Result{}, err
		}
		if n != st.BytesProduced {
			return Result{}, errors.New("core: serializer length bookkeeping mismatch")
		}
		res := Result{
			Cycles:   busy,
			Seconds:  busy / (s.Cfg.AccelFreqGHz * 1e9),
			Bytes:    n,
			WireAddr: addr,
		}
		if began {
			res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(
				busy, 0, st.SpillCycles, st.ADTStallCycles))
		}
		return res, nil
	}
	start := s.CPU.Cycles()
	addr, n, err := s.CPU.Serialize(t, objAddr, s.Out)
	if err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	res := Result{
		Cycles:   cy,
		Seconds:  s.CPU.Seconds(cy),
		Bytes:    n,
		WireAddr: addr,
	}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(cy, 0, 0, 0))
	}
	return res, nil
}

// WireRef locates one serialized buffer in simulated memory.
type WireRef struct {
	Addr, Len uint64
}

// DeserializeBatch deserializes a batch of inputs with one completion
// barrier at the end — the §4.4.1 batching pattern the paper's benchmarks
// use, amortizing dispatch and fence costs. Returns the batch Result
// (total cycles and bytes) and the destination object addresses.
func (s *System) DeserializeBatch(t *schema.Message, refs []WireRef) (Result, []uint64, error) {
	objs := make([]uint64, len(refs))
	var total Result
	// Batches snapshot the registry directly rather than via Hub.OpBegin:
	// the software path below re-enters Deserialize per item, and the
	// Hub's single scratch snapshot must stay owned by the innermost op.
	began := s.tel.PerOpEnabled()
	var prev telemetry.Snapshot
	if began {
		prev = s.tel.Registry.Snapshot()
	}
	if s.Accel == nil {
		for i, r := range refs {
			res, err := s.Deserialize(t, r.Addr, r.Len)
			if err != nil {
				return Result{}, nil, err
			}
			objs[i] = res.ObjAddr
			total.Cycles += res.Cycles
			total.Bytes += res.Bytes
		}
		total.Seconds = s.CPU.Seconds(total.Cycles)
		if began {
			total.Telemetry = &telemetry.OpTelemetry{
				Counters:    s.tel.Registry.Snapshot().Delta(prev),
				Attribution: telemetry.NewAttribution(total.Cycles, 0, 0, 0),
			}
		}
		return total, objs, nil
	}
	if s.adts == nil || s.adts.Addr(t) == 0 {
		return Result{}, nil, fmt.Errorf("core: type %s not loaded", t.Name)
	}
	before := s.Accel.Deser.Stats()
	adtAddr := s.adts.Addr(t)
	for i, r := range refs {
		obj, err := s.AllocTopLevel(t)
		if err != nil {
			return Result{}, nil, err
		}
		objs[i] = obj
		if _, err := s.Accel.Issue(rocc.Command{Op: rocc.OpDeserInfo, RS1: adtAddr, RS2: obj}); err != nil {
			return Result{}, nil, err
		}
		if _, err := s.Accel.Issue(rocc.Command{Op: rocc.OpDoProtoDeser, RS1: r.Addr, RS2: r.Len}); err != nil {
			return Result{}, nil, err
		}
		total.Bytes += r.Len
	}
	busy, err := s.Accel.Issue(rocc.Command{Op: rocc.OpBlockForDeserCompletion})
	if err != nil {
		return Result{}, nil, err
	}
	total.Cycles = busy
	total.Seconds = busy / (s.Cfg.AccelFreqGHz * 1e9)
	if began {
		after := s.Accel.Deser.Stats()
		total.Telemetry = &telemetry.OpTelemetry{
			Counters: s.tel.Registry.Snapshot().Delta(prev),
			Attribution: telemetry.NewAttribution(busy,
				after.SupplyBoundCycles-before.SupplyBoundCycles,
				after.SpillCycles-before.SpillCycles,
				after.ADTStallCycles-before.ADTStallCycles),
		}
	}
	return total, objs, nil
}

// SerializeBatch serializes a batch of objects with one completion barrier
// at the end, returning the batch Result and per-object output locations.
func (s *System) SerializeBatch(t *schema.Message, objAddrs []uint64) (Result, []WireRef, error) {
	refs := make([]WireRef, len(objAddrs))
	var total Result
	began := s.tel.PerOpEnabled()
	var prev telemetry.Snapshot
	if began {
		prev = s.tel.Registry.Snapshot()
	}
	if s.Accel == nil {
		for i, obj := range objAddrs {
			res, err := s.Serialize(t, obj)
			if err != nil {
				return Result{}, nil, err
			}
			refs[i] = WireRef{Addr: res.WireAddr, Len: res.Bytes}
			total.Cycles += res.Cycles
			total.Bytes += res.Bytes
		}
		total.Seconds = s.CPU.Seconds(total.Cycles)
		if began {
			total.Telemetry = &telemetry.OpTelemetry{
				Counters:    s.tel.Registry.Snapshot().Delta(prev),
				Attribution: telemetry.NewAttribution(total.Cycles, 0, 0, 0),
			}
		}
		return total, refs, nil
	}
	if s.adts == nil || s.adts.Addr(t) == 0 {
		return Result{}, nil, fmt.Errorf("core: type %s not loaded", t.Name)
	}
	before := s.Accel.Ser.Stats()
	adtAddr := s.adts.Addr(t)
	firstOut := s.Accel.Ser.Outputs()
	for _, obj := range objAddrs {
		if _, err := s.Accel.Issue(rocc.Command{Op: rocc.OpSerInfo}); err != nil {
			return Result{}, nil, err
		}
		if _, err := s.Accel.Issue(rocc.Command{Op: rocc.OpDoProtoSer, RS1: adtAddr, RS2: obj}); err != nil {
			return Result{}, nil, err
		}
	}
	busy, err := s.Accel.Issue(rocc.Command{Op: rocc.OpBlockForSerCompletion})
	if err != nil {
		return Result{}, nil, err
	}
	for i := range objAddrs {
		addr, n, err := s.Accel.Ser.Output(firstOut + uint64(i))
		if err != nil {
			return Result{}, nil, err
		}
		refs[i] = WireRef{Addr: addr, Len: n}
		total.Bytes += n
	}
	total.Cycles = busy
	total.Seconds = busy / (s.Cfg.AccelFreqGHz * 1e9)
	if began {
		after := s.Accel.Ser.Stats()
		total.Telemetry = &telemetry.OpTelemetry{
			Counters: s.tel.Registry.Snapshot().Delta(prev),
			Attribution: telemetry.NewAttribution(busy, 0,
				after.SpillCycles-before.SpillCycles,
				after.ADTStallCycles-before.ADTStallCycles),
		}
	}
	return total, refs, nil
}

// Clear resets all presence state of the object at objAddr (the §7
// clear operator).
func (s *System) Clear(t *schema.Message, objAddr uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		busy, err := s.Accel.ClearOp(s.adts.Addr(t), objAddr)
		if err != nil {
			return Result{}, err
		}
		res := Result{Cycles: busy, Seconds: busy / (s.Cfg.AccelFreqGHz * 1e9), ObjAddr: objAddr}
		if began {
			res.Telemetry = s.tel.OpEnd(s.mopsAttribution(busy))
		}
		return res, nil
	}
	start := s.CPU.Cycles()
	if err := s.CPU.ClearObject(t, objAddr); err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	res := Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: objAddr}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(cy, 0, 0, 0))
	}
	return res, nil
}

// Copy deep-copies the object at srcObj, returning the new object (the §7
// copy operator).
func (s *System) Copy(t *schema.Message, srcObj uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		busy, dst, err := s.Accel.CopyOp(s.adts.Addr(t), srcObj)
		if err != nil {
			return Result{}, err
		}
		res := Result{Cycles: busy, Seconds: busy / (s.Cfg.AccelFreqGHz * 1e9), ObjAddr: dst}
		if began {
			res.Telemetry = s.tel.OpEnd(s.mopsAttribution(busy))
		}
		return res, nil
	}
	start := s.CPU.Cycles()
	dst, err := s.CPU.CopyObject(t, srcObj)
	if err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	res := Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: dst}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(cy, 0, 0, 0))
	}
	return res, nil
}

// Merge merges srcObj into dstObj with proto2 semantics (the §7 merge
// operator).
func (s *System) Merge(t *schema.Message, dstObj, srcObj uint64) (Result, error) {
	began := s.tel.OpBegin()
	if s.Accel != nil {
		busy, err := s.Accel.MergeOp(s.adts.Addr(t), dstObj, srcObj)
		if err != nil {
			return Result{}, err
		}
		res := Result{Cycles: busy, Seconds: busy / (s.Cfg.AccelFreqGHz * 1e9), ObjAddr: dstObj}
		if began {
			res.Telemetry = s.tel.OpEnd(s.mopsAttribution(busy))
		}
		return res, nil
	}
	start := s.CPU.Cycles()
	if err := s.CPU.MergeObjects(t, dstObj, srcObj); err != nil {
		return Result{}, err
	}
	cy := s.CPU.Cycles() - start
	res := Result{Cycles: cy, Seconds: s.CPU.Seconds(cy), ObjAddr: dstObj}
	if began {
		res.Telemetry = s.tel.OpEnd(telemetry.NewAttribution(cy, 0, 0, 0))
	}
	return res, nil
}

// mopsAttribution builds the cycle attribution for the message-operations
// op that just completed (its per-op stats are the last MopsOps entry).
func (s *System) mopsAttribution(busy float64) telemetry.Attribution {
	if n := len(s.Accel.MopsOps); n > 0 {
		st := s.Accel.MopsOps[n-1]
		return telemetry.NewAttribution(busy, 0, st.SpillCycles, st.ADTStallCycles)
	}
	return telemetry.NewAttribution(busy, 0, 0, 0)
}

// ResetWork rewinds the resettable allocators (heap, accelerator arena,
// serializer output) between benchmark batches, leaving static inputs and
// ADTs intact.
func (s *System) ResetWork() {
	s.Heap.Reset()
	s.Out.Reset()
	if s.Arena != nil {
		s.Arena.Reset()
	}
	if s.Accel != nil {
		s.Accel.Ser.AssignArena(s.serData, s.serPtrs)
	}
}

// ResetAll returns the System to the state New left it in, without
// remapping or re-zeroing whole regions: allocators rewind, only the
// dirty prefix of each region is zeroed (mem.Region's high-water mark),
// the cache/TLB hierarchy and all cycle accumulators reset, and the
// layout registry restarts type-id assignment. After ResetAll the System
// is bitwise-indistinguishable — addresses, latencies, cycle counts —
// from a freshly constructed one with the same Config, which is what lets
// the Pool recycle Systems without perturbing measurements.
func (s *System) ResetAll() {
	s.adtAlloc.Reset()
	s.Static.Reset()
	s.Heap.Reset()
	s.Out.Reset()
	if s.Arena != nil {
		s.Arena.Reset()
	}
	s.Mem.ResetDirty()
	s.MemSys.Reset()
	s.Reg.Reset()
	s.schemaRoots = nil
	s.adts = nil
	if s.CPU != nil {
		s.CPU.ResetCycles()
	}
	if s.Accel != nil {
		s.Accel.Reset()
		s.Accel.Ser.AssignArena(s.serData, s.serPtrs)
	}
	s.tel.Reset()
}

// Name returns the system's display name ("riscv-boom", "Xeon",
// "riscv-boom-accel").
func (s *System) Name() string { return s.Cfg.Kind.String() }
