package core

import (
	"bytes"
	"math/rand"
	"testing"

	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
)

func testType() *schema.Message {
	sub := mustMessage("Sub",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "tag", Number: 2, Kind: schema.KindString})
	return mustMessage("T",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString},
		&schema.Field{Name: "r", Number: 3, Kind: schema.KindInt64, Label: schema.LabelRepeated, Packed: true},
		&schema.Field{Name: "sub", Number: 4, Kind: schema.KindMessage, Message: sub},
	)
}

func populate(t *schema.Message) *dynamic.Message {
	m := dynamic.New(t)
	m.SetInt32(1, -5)
	m.SetString(2, "payload string")
	for i := 0; i < 8; i++ {
		m.AddScalarBits(3, uint64(i*7))
	}
	s := m.MutableMessage(4)
	s.SetInt64(1, 42)
	s.SetString(2, "nested")
	return m
}

func allKinds() []Kind { return []Kind{KindBOOM, KindXeon, KindAccel} }

// smallConfig shrinks the memory regions so tests don't spend their time
// zeroing gigabytes of simulated DRAM.
func smallConfig(k Kind) Config {
	cfg := DefaultConfig(k)
	cfg.StaticSize = 8 << 20
	cfg.HeapSize = 8 << 20
	cfg.ArenaSize = 8 << 20
	cfg.OutSize = 8 << 20
	return cfg
}

func TestRoundTripAllSystems(t *testing.T) {
	typ := testType()
	msg := populate(typ)
	wire, err := codec.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range allKinds() {
		sys := New(smallConfig(k))
		if err := sys.LoadSchema(typ); err != nil {
			t.Fatal(err)
		}
		// Deserialize path.
		bufAddr, err := sys.WriteWire(wire)
		if err != nil {
			t.Fatal(err)
		}
		dres, err := sys.Deserialize(typ, bufAddr, uint64(len(wire)))
		if err != nil {
			t.Fatalf("%v: deserialize: %v", k, err)
		}
		got, err := sys.ReadMessage(typ, dres.ObjAddr)
		if err != nil {
			t.Fatal(err)
		}
		if !msg.Equal(got) {
			t.Errorf("%v: deserialized message differs", k)
		}
		if dres.Cycles <= 0 || dres.Throughput() <= 0 {
			t.Errorf("%v: bad result %+v", k, dres)
		}

		// Serialize path.
		objAddr, err := sys.MaterializeInput(msg)
		if err != nil {
			t.Fatal(err)
		}
		sres, err := sys.Serialize(typ, objAddr)
		if err != nil {
			t.Fatalf("%v: serialize: %v", k, err)
		}
		out, err := sys.ReadWire(sres.WireAddr, sres.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, wire) {
			t.Errorf("%v: serialized bytes differ from reference", k)
		}
	}
}

func TestCrossSystemWireCompatibility(t *testing.T) {
	// Bytes produced by the accelerated system must deserialize on the
	// software systems and vice versa (wire compatibility, §1).
	typ := testType()
	msg := populate(typ)

	accel := New(smallConfig(KindAccel))
	if err := accel.LoadSchema(typ); err != nil {
		t.Fatal(err)
	}
	objAddr, err := accel.MaterializeInput(msg)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := accel.Serialize(typ, objAddr)
	if err != nil {
		t.Fatal(err)
	}
	accelBytes, err := accel.ReadWire(sres.WireAddr, sres.Bytes)
	if err != nil {
		t.Fatal(err)
	}

	boom := New(smallConfig(KindBOOM))
	if err := boom.LoadSchema(typ); err != nil {
		t.Fatal(err)
	}
	bufAddr, err := boom.WriteWire(accelBytes)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := boom.Deserialize(typ, bufAddr, uint64(len(accelBytes)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := boom.ReadMessage(typ, dres.ObjAddr)
	if err != nil {
		t.Fatal(err)
	}
	if !msg.Equal(got) {
		t.Error("accelerator bytes did not round trip through software system")
	}
}

func TestAccelFasterThanCPUs(t *testing.T) {
	typ := testType()
	msg := populate(typ)
	wire, _ := codec.Marshal(msg)

	deserSeconds := func(k Kind) float64 {
		sys := New(smallConfig(k))
		if err := sys.LoadSchema(typ); err != nil {
			t.Fatal(err)
		}
		bufAddr, _ := sys.WriteWire(wire)
		// Warm caches with a few runs, then measure.
		var last Result
		for i := 0; i < 5; i++ {
			var err error
			last, err = sys.Deserialize(typ, bufAddr, uint64(len(wire)))
			if err != nil {
				t.Fatal(err)
			}
		}
		return last.Seconds
	}
	boom, xeon, accel := deserSeconds(KindBOOM), deserSeconds(KindXeon), deserSeconds(KindAccel)
	if accel >= boom || accel >= xeon {
		t.Errorf("accel (%g) should beat boom (%g) and xeon (%g)", accel, boom, xeon)
	}
	if xeon >= boom {
		t.Errorf("xeon (%g) should beat boom (%g)", xeon, boom)
	}
}

func TestResetWorkAllowsReuse(t *testing.T) {
	typ := testType()
	msg := populate(typ)
	wire, _ := codec.Marshal(msg)
	sys := New(smallConfig(KindAccel))
	if err := sys.LoadSchema(typ); err != nil {
		t.Fatal(err)
	}
	bufAddr, _ := sys.WriteWire(wire)
	for batch := 0; batch < 3; batch++ {
		for i := 0; i < 50; i++ {
			if _, err := sys.Deserialize(typ, bufAddr, uint64(len(wire))); err != nil {
				t.Fatalf("batch %d iter %d: %v", batch, i, err)
			}
		}
		used := sys.Heap.Used()
		sys.ResetWork()
		if sys.Heap.Used() != 0 || used == 0 {
			t.Fatal("ResetWork did not rewind heap")
		}
	}
}

func TestRandomizedCrossSystemEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 25; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		want, err := codec.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		var outputs [][]byte
		for _, k := range allKinds() {
			sys := New(smallConfig(k))
			if err := sys.LoadSchema(typ); err != nil {
				t.Fatal(err)
			}
			objAddr, err := sys.MaterializeInput(msg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Serialize(typ, objAddr)
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, k, err)
			}
			b, err := sys.ReadWire(res.WireAddr, res.Bytes)
			if err != nil {
				t.Fatal(err)
			}
			outputs = append(outputs, b)
		}
		for i, b := range outputs {
			if !bytes.Equal(b, want) {
				t.Fatalf("trial %d: system %v produced different bytes", trial, allKinds()[i])
			}
		}
	}
}

func TestUnloadedTypeError(t *testing.T) {
	typ := testType()
	sys := New(smallConfig(KindAccel))
	if _, err := sys.Deserialize(typ, 0x10000, 0); err == nil {
		t.Error("expected unloaded-type error")
	}
}

func TestThroughputMetric(t *testing.T) {
	r := Result{Bytes: 1000, Seconds: 1e-6}
	if got := r.Throughput(); got < 7.9 || got > 8.1 { // 8 Gbit/s
		t.Errorf("Throughput = %f", got)
	}
	if (Result{}).Throughput() != 0 {
		t.Error("zero result should have zero throughput")
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
