package core

import (
	"fmt"
	"math/rand"
	"testing"

	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/protoparse"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/textformat"
)

func dbg4Check(t *testing.T, typ *schema.Message, input []byte, boom, accel *System) bool {
	ref, refErr := codec.Unmarshal(typ, input)
	if refErr != nil || hasUnknown(ref) {
		return false
	}
	for _, sys := range []*System{boom, accel} {
		sys.ResetWork()
		bufAddr, _ := sys.WriteWire(input)
		res, err := sys.Deserialize(typ, bufAddr, uint64(len(input)))
		if err != nil {
			continue
		}
		got, _ := sys.ReadMessage(typ, res.ObjAddr)
		if !ref.Equal(got) {
			fmt.Printf("=== %s diverges, input %x\n", sys.Name(), input)
			fmt.Println("schema:\n" + protoparse.Format(&schema.File{Messages: []*schema.Message{typ}}))
			fmt.Println("--- ref:\n" + textformat.Marshal(ref))
			fmt.Println("--- got:\n" + textformat.Marshal(got))
			return true
		}
	}
	return false
}

func TestDbg4(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	for trial := 0; trial < 15; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		boom := New(smallConfig(KindBOOM))
		accel := New(smallConfig(KindAccel))
		for _, sys := range []*System{boom, accel} {
			if err := sys.LoadSchema(typ); err != nil {
				t.Fatal(err)
			}
		}
		var seeds [][]byte
		for i := 0; i < 4; i++ {
			m := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
			b, _ := codec.Marshal(m)
			seeds = append(seeds, b)
		}
		_ = dynamic.New
		for _, seed := range seeds {
			if dbg4Check(t, typ, seed, boom, accel) {
				return
			}
			for m := 0; m < 30; m++ {
				mut := append([]byte(nil), seed...)
				switch rng.Intn(4) {
				case 0:
					if len(mut) > 0 {
						mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
					}
				case 1:
					if len(mut) > 0 {
						mut = mut[:rng.Intn(len(mut))]
					}
				case 2:
					other := seeds[rng.Intn(len(seeds))]
					if len(other) > 0 && len(mut) > 0 {
						mut = append(mut[:rng.Intn(len(mut))], other[rng.Intn(len(other)):]...)
					}
				case 3:
					tail := make([]byte, rng.Intn(16))
					rng.Read(tail)
					mut = append(mut, tail...)
				}
				if dbg4Check(t, typ, mut, boom, accel) {
					return
				}
			}
		}
	}
	fmt.Println("no divergence")
}
