package core

import (
	"math/rand"
	"strings"
	"testing"

	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
)

// diffCheck feeds one input to the reference codec and to the BOOM and
// accelerated systems, asserting agreement:
//   - no path may panic or corrupt simulated memory (faults surface as
//     errors);
//   - when the reference accepts an input with no unknown fields, both
//     systems must accept it and produce an equal message;
//   - when the reference rejects an input, neither system may silently
//     produce a *different* message than the codec semantics allow (the
//     systems may reject too).
func diffCheck(t *testing.T, typ *schema.Message, input []byte, systems ...*System) {
	t.Helper()
	ref, refErr := codec.Unmarshal(typ, input)

	for _, sys := range systems {
		sys.ResetWork()
		// Inputs are transient here (unlike benchmark workloads): recycle
		// the static input space so long fuzzing sessions don't exhaust it.
		sys.Static.Reset()
		bufAddr, err := sys.WriteWire(input)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Deserialize(typ, bufAddr, uint64(len(input)))
		if refErr == nil && !hasUnknown(ref) {
			if err != nil {
				// One acceptable divergence: deprecated group wire types
				// inside otherwise-valid input are rejected by the
				// hardware paths but skipped by the reference codec.
				if strings.Contains(err.Error(), "group") {
					continue
				}
				t.Fatalf("%s rejected input the reference accepts: %v\ninput: %x", sys.Name(), err, input)
			}
			got, err := sys.ReadMessage(typ, res.ObjAddr)
			if err != nil {
				t.Fatal(err)
			}
			if !ref.Equal(got) {
				t.Fatalf("%s decoded differently from the reference\ninput: %x", sys.Name(), input)
			}
			continue
		}
		// Unknown fields present or reference rejected: if the system
		// accepted, its view of the known fields must still be consistent
		// with re-parsing (self-agreement between the two systems is
		// checked below by the caller when both succeed).
		_ = err
	}
}

// hasUnknown reports whether any message in the tree carries preserved
// unknown-field bytes (which the hardware paths intentionally drop).
func hasUnknown(m *dynamic.Message) bool {
	if len(m.Unknown) != 0 {
		return true
	}
	for _, f := range m.Type().Fields {
		if f.Kind != schema.KindMessage || !m.Has(f.Number) {
			continue
		}
		if f.Repeated() {
			for _, s := range m.RepeatedMessages(f.Number) {
				if hasUnknown(s) {
					return true
				}
			}
		} else if s := m.GetMessage(f.Number); s != nil && hasUnknown(s) {
			return true
		}
	}
	return false
}

func TestDifferentialMutatedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	for trial := 0; trial < 15; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		boom := New(smallConfig(KindBOOM))
		accel := New(smallConfig(KindAccel))
		for _, sys := range []*System{boom, accel} {
			if err := sys.LoadSchema(typ); err != nil {
				t.Fatal(err)
			}
		}
		// Valid seeds.
		var seeds [][]byte
		for i := 0; i < 4; i++ {
			m := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
			b, err := codec.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			seeds = append(seeds, b)
		}
		for _, seed := range seeds {
			diffCheck(t, typ, seed, boom, accel)
			// Mutations: bit flips, truncations, splices, random tails.
			for m := 0; m < 30; m++ {
				mut := append([]byte(nil), seed...)
				switch rng.Intn(4) {
				case 0: // bit flip
					if len(mut) > 0 {
						mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
					}
				case 1: // truncate
					if len(mut) > 0 {
						mut = mut[:rng.Intn(len(mut))]
					}
				case 2: // splice two seeds
					other := seeds[rng.Intn(len(seeds))]
					if len(other) > 0 && len(mut) > 0 {
						mut = append(mut[:rng.Intn(len(mut))], other[rng.Intn(len(other)):]...)
					}
				case 3: // random tail
					tail := make([]byte, rng.Intn(16))
					rng.Read(tail)
					mut = append(mut, tail...)
				}
				diffCheck(t, typ, mut, boom, accel)
			}
		}
	}
}

// TestDifferentialPureRandom throws fully random bytes at the decoders:
// nothing may panic, and whenever all paths accept, they must agree.
func TestDifferentialPureRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
	boom := New(smallConfig(KindBOOM))
	accel := New(smallConfig(KindAccel))
	for _, sys := range []*System{boom, accel} {
		if err := sys.LoadSchema(typ); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 500; trial++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		diffCheck(t, typ, b, boom, accel)
	}
}

// FuzzDifferentialDeserialize is a native fuzz target over a fixed schema:
// `go test -fuzz=FuzzDifferentialDeserialize ./internal/core` explores the
// input space; in normal runs the seed corpus exercises the check.
func FuzzDifferentialDeserialize(f *testing.F) {
	sub := mustMessage("FSub",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "tag", Number: 2, Kind: schema.KindString})
	typ := mustMessage("F",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString},
		&schema.Field{Name: "r", Number: 3, Kind: schema.KindUint64, Label: schema.LabelRepeated, Packed: true},
		&schema.Field{Name: "sub", Number: 4, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "fx", Number: 5, Kind: schema.KindFixed32},
	)
	m := dynamic.New(typ)
	m.SetInt32(1, -1)
	m.SetString(2, "seed")
	m.AddScalarBits(3, 300)
	m.MutableMessage(4).SetInt64(1, 7)
	m.SetUint32(5, 0xabcd)
	seed, err := codec.Marshal(m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0x08, 0x96, 0x01})
	f.Add([]byte{0x0b})       // group tag
	f.Add([]byte{0x12, 0x7f}) // over-long string

	boom := New(smallConfig(KindBOOM))
	accel := New(smallConfig(KindAccel))
	for _, sys := range []*System{boom, accel} {
		if err := sys.LoadSchema(typ); err != nil {
			f.Fatal(err)
		}
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return // keep simulated memory small
		}
		diffCheck(t, typ, input, boom, accel)
	})
}
