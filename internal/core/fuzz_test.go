package core

import (
	"bytes"
	"testing"

	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
)

// fuzzType is the fixed schema the native fuzz targets decode against:
// one field of each major wire shape, plus a nested message.
func fuzzType() *schema.Message {
	sub := mustMessage("FSub",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "tag", Number: 2, Kind: schema.KindString})
	return mustMessage("F",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString},
		&schema.Field{Name: "r", Number: 3, Kind: schema.KindUint64, Label: schema.LabelRepeated, Packed: true},
		&schema.Field{Name: "sub", Number: 4, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "fx", Number: 5, Kind: schema.KindFixed32},
	)
}

// fuzzSeeds returns wire-format seed inputs for the fuzz targets: a fully
// populated message plus boundary shapes (empty, lone varint, group tag,
// over-long string, truncated sub-message).
func fuzzSeeds(f *testing.F, typ *schema.Message) [][]byte {
	m := dynamic.New(typ)
	m.SetInt32(1, -1)
	m.SetString(2, "seed")
	m.AddScalarBits(3, 300)
	m.MutableMessage(4).SetInt64(1, 7)
	m.SetUint32(5, 0xabcd)
	full, err := codec.Marshal(m)
	if err != nil {
		f.Fatal(err)
	}
	return [][]byte{
		full,
		{},
		{0x08, 0x96, 0x01},
		{0x0b},                   // group tag
		{0x12, 0x7f},             // over-long string
		{0x22, 0x05, 0x08, 0x07}, // truncated sub-message
	}
}

// FuzzDeserialize fuzzes the deserialization path of both simulated
// systems — and a third System running under an injected-fault schedule —
// against the reference codec: no input may panic or corrupt simulated
// memory, accepted inputs must decode identically everywhere, and fault
// recovery (retry, software fallback) must be semantically invisible.
func FuzzDeserialize(f *testing.F) {
	typ := fuzzType()
	for _, seed := range fuzzSeeds(f, typ) {
		f.Add(seed)
	}
	boom := New(smallConfig(KindBOOM))
	accel := New(smallConfig(KindAccel))
	chaos := New(faultedConfig(0xC0FFEE, 0.02))
	for _, sys := range []*System{boom, accel, chaos} {
		if err := sys.LoadSchema(typ); err != nil {
			f.Fatal(err)
		}
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return // keep simulated memory small
		}
		diffCheck(t, typ, input, boom, accel, chaos)
	})
}

// FuzzSerializeRoundTrip fuzzes the serialization path: any input the
// reference codec accepts (with no unknown fields) is materialized as a
// simulated C++ object and serialized on every system — software,
// accelerated, and accelerated-under-faults — and each must reproduce the
// reference codec's canonical bytes exactly.
func FuzzSerializeRoundTrip(f *testing.F) {
	typ := fuzzType()
	for _, seed := range fuzzSeeds(f, typ) {
		f.Add(seed)
	}
	boom := New(smallConfig(KindBOOM))
	accel := New(smallConfig(KindAccel))
	chaos := New(faultedConfig(0xFA177, 0.02))
	systems := []*System{boom, accel, chaos}
	for _, sys := range systems {
		if err := sys.LoadSchema(typ); err != nil {
			f.Fatal(err)
		}
	}
	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<16 {
			return
		}
		ref, err := codec.Unmarshal(typ, input)
		if err != nil || hasUnknown(ref) {
			return
		}
		want, err := codec.Marshal(ref)
		if err != nil {
			t.Fatalf("reference re-marshal failed: %v", err)
		}
		for _, sys := range systems {
			sys.ResetWork()
			sys.Static.Reset()
			objAddr, err := sys.MaterializeInput(ref)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Serialize(typ, objAddr)
			if err != nil {
				t.Fatalf("%s rejected a valid object: %v\ninput: %x", sys.Name(), err, input)
			}
			out, err := sys.ReadWire(res.WireAddr, res.Bytes)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, want) {
				t.Fatalf("%s round trip diverged from the reference codec\ninput: %x\ngot:  %x\nwant: %x",
					sys.Name(), input, out, want)
			}
		}
	})
}
