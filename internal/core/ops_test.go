package core

import (
	"testing"

	"protoacc/internal/pb/dynamic"
)

// TestOperatorsAllSystems exercises the §7 clear/copy/merge operators
// through the System facade on all three systems, checking functional
// equivalence with the dynamic-message semantics.
func TestOperatorsAllSystems(t *testing.T) {
	typ := testType()
	base := populate(typ)
	patch := dynamic.New(typ)
	patch.SetInt32(1, 99)
	patch.AddScalarBits(3, 12345)
	patch.MutableMessage(4).SetString(2, "patched")

	for _, k := range allKinds() {
		sys := New(smallConfig(k))
		if err := sys.LoadSchema(typ); err != nil {
			t.Fatal(err)
		}
		baseAddr, err := sys.MaterializeInput(base)
		if err != nil {
			t.Fatal(err)
		}
		patchAddr, err := sys.MaterializeInput(patch)
		if err != nil {
			t.Fatal(err)
		}

		// Copy.
		cres, err := sys.Copy(typ, baseAddr)
		if err != nil {
			t.Fatalf("%v: copy: %v", k, err)
		}
		if cres.Cycles <= 0 {
			t.Errorf("%v: copy charged no cycles", k)
		}
		cp, err := sys.ReadMessage(typ, cres.ObjAddr)
		if err != nil {
			t.Fatal(err)
		}
		if !base.Equal(cp) {
			t.Errorf("%v: copy differs", k)
		}

		// Merge patch into the copy.
		mres, err := sys.Merge(typ, cres.ObjAddr, patchAddr)
		if err != nil {
			t.Fatalf("%v: merge: %v", k, err)
		}
		if mres.Cycles <= 0 {
			t.Errorf("%v: merge charged no cycles", k)
		}
		merged, err := sys.ReadMessage(typ, cres.ObjAddr)
		if err != nil {
			t.Fatal(err)
		}
		want := base.Clone()
		want.Merge(patch)
		if !want.Equal(merged) {
			t.Errorf("%v: merge semantics differ", k)
		}

		// Clear the copy; the original must be untouched (deep copy).
		if _, err := sys.Clear(typ, cres.ObjAddr); err != nil {
			t.Fatalf("%v: clear: %v", k, err)
		}
		cleared, err := sys.ReadMessage(typ, cres.ObjAddr)
		if err != nil {
			t.Fatal(err)
		}
		if len(cleared.PresentFieldNumbers()) != 0 {
			t.Errorf("%v: clear incomplete", k)
		}
		orig, err := sys.ReadMessage(typ, baseAddr)
		if err != nil {
			t.Fatal(err)
		}
		if !base.Equal(orig) {
			t.Errorf("%v: clear of the copy disturbed the original", k)
		}
	}
}

func TestBatchSerializeDeserialize(t *testing.T) {
	typ := testType()
	msgs := []*dynamic.Message{populate(typ), dynamic.New(typ), populate(typ)}
	msgs[1].SetInt32(1, 7)

	for _, k := range allKinds() {
		sys := New(smallConfig(k))
		if err := sys.LoadSchema(typ); err != nil {
			t.Fatal(err)
		}
		objs := make([]uint64, len(msgs))
		for i, m := range msgs {
			a, err := sys.MaterializeInput(m)
			if err != nil {
				t.Fatal(err)
			}
			objs[i] = a
		}
		sres, refs, err := sys.SerializeBatch(typ, objs)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(refs) != 3 || sres.Cycles <= 0 || sres.Bytes == 0 {
			t.Errorf("%v: batch ser result %+v", k, sres)
		}
		dres, outObjs, err := sys.DeserializeBatch(typ, refs)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if dres.Bytes != sres.Bytes {
			t.Errorf("%v: byte accounting %d vs %d", k, dres.Bytes, sres.Bytes)
		}
		for i, obj := range outObjs {
			got, err := sys.ReadMessage(typ, obj)
			if err != nil {
				t.Fatal(err)
			}
			if !msgs[i].Equal(got) {
				t.Errorf("%v: batch element %d differs", k, i)
			}
		}
	}
}

func TestBatchUnloadedType(t *testing.T) {
	typ := testType()
	sys := New(smallConfig(KindAccel))
	if _, _, err := sys.DeserializeBatch(typ, []WireRef{{Addr: 0x10000, Len: 0}}); err == nil {
		t.Error("expected unloaded-type error for deser batch")
	}
	if _, _, err := sys.SerializeBatch(typ, []uint64{0x10000}); err == nil {
		t.Error("expected unloaded-type error for ser batch")
	}
	if _, err := sys.Serialize(typ, 0x10000); err == nil {
		t.Error("expected unloaded-type error for serialize")
	}
}

func TestSystemNames(t *testing.T) {
	for _, k := range allKinds() {
		if New(smallConfig(k)).Name() != k.String() {
			t.Errorf("name mismatch for %v", k)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestADTAddrExposed(t *testing.T) {
	typ := testType()
	sys := New(smallConfig(KindAccel))
	if sys.ADTAddr(typ) != 0 {
		t.Error("unloaded type should report 0")
	}
	if err := sys.LoadSchema(typ); err != nil {
		t.Fatal(err)
	}
	if sys.ADTAddr(typ) == 0 {
		t.Error("loaded type should have an ADT address")
	}
}
