package core

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"

	"protoacc/internal/accel/deser"
	"protoacc/internal/accel/ser"
	"protoacc/internal/faults"
	"protoacc/internal/sim/cpu"
	"protoacc/internal/sim/memmodel"
)

// Pool recycles Systems across runs with identical configurations.
// Building a System maps (and the runtime zeroes) hundreds of megabytes of
// simulated memory; recycling one costs only a ResetAll, which zeroes the
// dirty span of each region — proportional to the bytes the previous
// run touched. Get returns a reset System that is bitwise-equivalent to a
// freshly constructed one (see System.ResetAll), so pooled execution
// produces identical measurements to the unpooled path.
//
// Pool is safe for concurrent use; the benchmark harness's worker pool
// and the serving layer's batch executors share one.
type Pool struct {
	mu    sync.Mutex
	max   int
	idle  map[poolKey][]idleEntry
	count int
	seq   uint64 // stamps idle entries so "oldest" is well defined
	ctrs  PoolCounters
}

// PoolCounters is the pool's recycling ledger: how often Get was served
// from an idle System (Hits) versus building a new one, and what happened
// to returned Systems (retained, dropped as poisoned/unpoolable, or
// evicted to make room). The serving layer's per-tile pools expose these
// in shutdown summaries; they are deliberately not part of telemetry
// snapshots because hit/miss counts depend on worker scheduling and would
// break the serial-vs-parallel bitwise-equivalence contract.
type PoolCounters struct {
	Gets      uint64 // Get calls
	Hits      uint64 // Gets served by recycling an idle System
	Puts      uint64 // Systems retained by Put
	Drops     uint64 // Puts discarded (poisoned or unpoolable config)
	Evictions uint64 // idle Systems evicted to make room
}

// Counters returns a snapshot of the pool's recycling ledger.
func (p *Pool) Counters() PoolCounters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ctrs
}

// idleEntry is one retained System plus its admission stamp.
type idleEntry struct {
	sys *System
	seq uint64
}

// NewPool creates a pool retaining at most max idle Systems (0 means a
// default scaled to GOMAXPROCS).
func NewPool(max int) *Pool {
	if max <= 0 {
		max = 4 * runtime.GOMAXPROCS(0)
		if max < 16 {
			max = 16
		}
	}
	return &Pool{max: max, idle: make(map[poolKey][]idleEntry)}
}

// DefaultPool is the process-wide pool used by the bench harness.
var DefaultPool = NewPool(0)

// poolKey is the typed, comparable fingerprint of a Config. It mirrors
// Config field for field (deser.Config through deserKey, which drops the
// deprecated incomparable Trace callback), so two Configs built
// independently from the same values always share a key and distinct
// configurations never collide. checkPoolKeyCoverage keeps the mirror
// honest: adding a Config field without extending the key fails at
// package init, not by silently never (or wrongly) recycling.
type poolKey struct {
	kind           Kind
	mem            memmodel.Config
	cpu            cpu.Params
	deser          deserKey
	ser            ser.Config
	accelFreqGHz   float64
	softwareArenas bool
	faults         faults.Config
	staticSize     uint64
	heapSize       uint64
	arenaSize      uint64
	outSize        uint64
}

// deserKey mirrors deser.Config's value fields, omitting the deprecated
// Trace callback (a Config carrying one is not poolable at all — func
// values cannot be compared).
type deserKey struct {
	memloaderWidth   uint64
	onChipStackDepth int
	spillPenalty     float64
	maxDepth         int
	hiddenLatency    uint64
	validateUTF8     bool
}

// Compile-time guard: poolKey must stay a valid map key. If any embedded
// type gains an incomparable field this stops compiling.
var _ = map[poolKey]struct{}{}

func init() {
	if err := checkPoolKeyCoverage(); err != nil {
		panic("core: " + err.Error())
	}
}

// checkPoolKeyCoverage fails loudly at init when the pool key falls out of
// sync with Config: every Config field must have a same-named (case
// folded) comparable counterpart in poolKey, and every deser.Config field
// except the deprecated Trace callback must be mirrored in deserKey. A
// panic here means a field was added to a config struct without teaching
// keyFor how to fingerprint it.
func checkPoolKeyCoverage() error {
	if err := mirrors(reflect.TypeOf(Config{}), reflect.TypeOf(poolKey{}), "core.Config", "poolKey", nil); err != nil {
		return err
	}
	return mirrors(reflect.TypeOf(deser.Config{}), reflect.TypeOf(deserKey{}), "deser.Config", "deserKey",
		map[string]bool{"Trace": true})
}

// mirrors checks that key has exactly one same-named field per src field
// (minus the skipped ones) and that every non-skipped src field is
// comparable (so the key can carry its value, not a lossy projection).
func mirrors(src, key reflect.Type, srcName, keyName string, skip map[string]bool) error {
	keyFields := make(map[string]bool, key.NumField())
	for i := 0; i < key.NumField(); i++ {
		keyFields[strings.ToLower(key.Field(i).Name)] = true
	}
	want := 0
	for i := 0; i < src.NumField(); i++ {
		f := src.Field(i)
		if skip[f.Name] {
			continue
		}
		want++
		if !keyFields[strings.ToLower(f.Name)] {
			return fmt.Errorf("pool key out of date: %s.%s has no %s counterpart — extend %s and keyFor", srcName, f.Name, keyName, keyName)
		}
		if f.Name != "Deser" && !f.Type.Comparable() {
			return fmt.Errorf("pool key cannot fingerprint %s.%s: type %s is not comparable — give keyFor an explicit comparable projection (as deserKey does for the Trace callback)", srcName, f.Name, f.Type)
		}
	}
	if len(keyFields) != want {
		return fmt.Errorf("pool key out of date: %s has %d fields but %s fingerprints %d — remove the stale key fields", srcName, want, keyName, len(keyFields))
	}
	return nil
}

// keyFor fingerprints a Config. Configs carrying the deprecated
// deser.Config.Trace callback are not poolable (func values cannot be
// compared); telemetry-based tracing does not have this problem — it is
// System state enabled after Get via Telemetry().Tracer.Enable(), so
// traced runs pool normally and ResetAll clears the buffer on recycle.
func keyFor(cfg Config) (poolKey, bool) {
	if cfg.Deser.Trace != nil {
		return poolKey{}, false
	}
	return poolKey{
		kind: cfg.Kind,
		mem:  cfg.Mem,
		cpu:  cfg.CPU,
		deser: deserKey{
			memloaderWidth:   cfg.Deser.MemloaderWidth,
			onChipStackDepth: cfg.Deser.OnChipStackDepth,
			spillPenalty:     cfg.Deser.SpillPenalty,
			maxDepth:         cfg.Deser.MaxDepth,
			hiddenLatency:    cfg.Deser.HiddenLatency,
			validateUTF8:     cfg.Deser.ValidateUTF8,
		},
		ser:            cfg.Ser,
		accelFreqGHz:   cfg.AccelFreqGHz,
		softwareArenas: cfg.SoftwareArenas,
		faults:         cfg.Faults,
		staticSize:     cfg.StaticSize,
		heapSize:       cfg.HeapSize,
		arenaSize:      cfg.ArenaSize,
		outSize:        cfg.OutSize,
	}, true
}

// Get returns a System for cfg: a recycled one when an idle System with
// an identical configuration is available, a new one otherwise.
func (p *Pool) Get(cfg Config) *System {
	key, ok := keyFor(cfg)
	if !ok {
		p.mu.Lock()
		p.ctrs.Gets++
		p.mu.Unlock()
		return New(cfg)
	}
	p.mu.Lock()
	p.ctrs.Gets++
	list := p.idle[key]
	if n := len(list); n > 0 {
		p.ctrs.Hits++
		s := list[n-1].sys
		list[n-1] = idleEntry{}
		p.idle[key] = list[:n-1]
		if n == 1 {
			delete(p.idle, key)
		}
		p.count--
		p.mu.Unlock()
		s.ResetAll()
		return s
	}
	p.mu.Unlock()
	return New(cfg)
}

// Put returns a System to the pool for future reuse. Systems whose
// configuration is not poolable are dropped (the GC reclaims them), as are
// poisoned Systems — ones an aborted mid-mutation operation left with
// undefined simulated state. Transactionally-aborted faults do not poison:
// a System that rode out injected faults via retry or software fallback
// pools normally.
//
// A full pool never drops the incoming System outright: doing so would
// let one hot configuration that already owns every idle slot starve all
// other keys of recycling (exactly the mixed-config shape the serving
// layer produces). Instead the oldest idle System of the most
// over-represented key is evicted to make room.
func (p *Pool) Put(s *System) {
	if s == nil {
		return
	}
	if s.Poisoned() {
		p.mu.Lock()
		p.ctrs.Drops++
		p.mu.Unlock()
		return
	}
	key, ok := keyFor(s.Cfg)
	if !ok {
		p.mu.Lock()
		p.ctrs.Drops++
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ctrs.Puts++
	if p.count >= p.max {
		p.evictLocked()
	}
	p.seq++
	p.idle[key] = append(p.idle[key], idleEntry{sys: s, seq: p.seq})
	p.count++
}

// evictLocked removes the oldest idle entry of the key holding the most
// idle Systems (ties broken toward the key with the oldest front entry,
// which makes the choice deterministic regardless of map iteration
// order). Called with p.mu held and p.count > 0.
func (p *Pool) evictLocked() {
	var victim poolKey
	best := 0
	var bestSeq uint64
	for k, list := range p.idle {
		n := len(list)
		if n == 0 {
			continue
		}
		if n > best || (n == best && list[0].seq < bestSeq) {
			best, bestSeq, victim = n, list[0].seq, k
		}
	}
	if best == 0 {
		return
	}
	list := p.idle[victim]
	copy(list, list[1:])
	list[len(list)-1] = idleEntry{}
	if len(list) == 1 {
		delete(p.idle, victim)
	} else {
		p.idle[victim] = list[:len(list)-1]
	}
	p.count--
	p.ctrs.Evictions++
}

// Idle returns the number of Systems currently retained (for tests).
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// IdleFor returns the number of idle Systems retained for cfg's key (for
// tests and pool introspection).
func (p *Pool) IdleFor(cfg Config) int {
	key, ok := keyFor(cfg)
	if !ok {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[key])
}
