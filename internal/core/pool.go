package core

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool recycles Systems across runs with identical configurations.
// Building a System maps (and the runtime zeroes) hundreds of megabytes of
// simulated memory; recycling one costs only a ResetAll, which zeroes the
// dirty prefix of each region — proportional to the bytes the previous
// run touched. Get returns a reset System that is bitwise-equivalent to a
// freshly constructed one (see System.ResetAll), so pooled execution
// produces identical measurements to the unpooled path.
//
// Pool is safe for concurrent use; the benchmark harness's worker pool
// shares one.
type Pool struct {
	mu    sync.Mutex
	max   int
	idle  map[string][]*System
	count int
}

// NewPool creates a pool retaining at most max idle Systems (0 means a
// default scaled to GOMAXPROCS).
func NewPool(max int) *Pool {
	if max <= 0 {
		max = 4 * runtime.GOMAXPROCS(0)
		if max < 16 {
			max = 16
		}
	}
	return &Pool{max: max, idle: make(map[string][]*System)}
}

// DefaultPool is the process-wide pool used by the bench harness.
var DefaultPool = NewPool(0)

// poolKey fingerprints a Config. Configs carrying the deprecated
// deser.Config.Trace callback are not poolable (func values cannot be
// compared); telemetry-based tracing does not have this problem — it is
// System state enabled after Get via Telemetry().Tracer.Enable(), so
// traced runs pool normally and ResetAll clears the buffer on recycle.
func poolKey(cfg Config) (string, bool) {
	if cfg.Deser.Trace != nil {
		return "", false
	}
	return fmt.Sprintf("%+v", cfg), true
}

// Get returns a System for cfg: a recycled one when an idle System with
// an identical configuration is available, a new one otherwise.
func (p *Pool) Get(cfg Config) *System {
	key, ok := poolKey(cfg)
	if !ok {
		return New(cfg)
	}
	p.mu.Lock()
	list := p.idle[key]
	if n := len(list); n > 0 {
		s := list[n-1]
		list[n-1] = nil
		p.idle[key] = list[:n-1]
		p.count--
		p.mu.Unlock()
		s.ResetAll()
		return s
	}
	p.mu.Unlock()
	return New(cfg)
}

// Put returns a System to the pool for future reuse. Systems whose
// configuration is not poolable, or that would exceed the pool's
// capacity, are dropped (the GC reclaims them), as are poisoned Systems —
// ones an aborted mid-mutation operation left with undefined simulated
// state. Transactionally-aborted faults do not poison: a System that rode
// out injected faults via retry or software fallback pools normally.
func (p *Pool) Put(s *System) {
	if s == nil || s.Poisoned() {
		return
	}
	key, ok := poolKey(s.Cfg)
	if !ok {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.count >= p.max {
		return
	}
	p.idle[key] = append(p.idle[key], s)
	p.count++
}

// Idle returns the number of Systems currently retained (for tests).
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}
