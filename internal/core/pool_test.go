package core

import (
	"testing"

	"protoacc/internal/accel/deser"
	"protoacc/internal/faults"
)

// Two Configs assembled independently from the same values must share a
// pool key — the typed key carries field values, never addresses — and
// any differing field must produce a distinct key.
func TestPoolKeyValueSemantics(t *testing.T) {
	a, ok := keyFor(DefaultConfig(KindAccel))
	if !ok {
		t.Fatal("default accel config should be poolable")
	}
	b, ok := keyFor(DefaultConfig(KindAccel))
	if !ok {
		t.Fatal("default accel config should be poolable")
	}
	if a != b {
		t.Fatal("independently built identical Configs produced different pool keys")
	}

	mutations := map[string]func(*Config){
		"Kind":       func(c *Config) { c.Kind = KindXeon },
		"Mem":        func(c *Config) { c.Mem.DRAMLatency++ },
		"CPU":        func(c *Config) { c.CPU.FieldDispatch++ },
		"Deser":      func(c *Config) { c.Deser.OnChipStackDepth++ },
		"Ser":        func(c *Config) { c.Ser.NumFieldUnits++ },
		"AccelFreq":  func(c *Config) { c.AccelFreqGHz *= 2 },
		"Arenas":     func(c *Config) { c.SoftwareArenas = true },
		"Faults":     func(c *Config) { c.Faults = faults.Config{Enabled: true, Seed: 9, Rate: 0.1} },
		"StaticSize": func(c *Config) { c.StaticSize++ },
		"HeapSize":   func(c *Config) { c.HeapSize++ },
		"ArenaSize":  func(c *Config) { c.ArenaSize++ },
		"OutSize":    func(c *Config) { c.OutSize++ },
	}
	for name, mutate := range mutations {
		cfg := DefaultConfig(KindAccel)
		mutate(&cfg)
		k, ok := keyFor(cfg)
		if !ok {
			t.Fatalf("%s: mutated config should still be poolable", name)
		}
		if k == a {
			t.Errorf("%s: mutated config collides with the default config's pool key", name)
		}
	}

	traced := DefaultConfig(KindAccel)
	traced.Deser.Trace = func(deser.TraceEvent) {}
	if _, ok := keyFor(traced); ok {
		t.Error("config carrying the deprecated Trace callback must not be poolable")
	}
}

// The init-time coverage guard must accept the current Config shape (a
// panic would have failed the test binary already); this pins the helper
// so refactors keep it callable.
func TestPoolKeyCoverageGuard(t *testing.T) {
	if err := checkPoolKeyCoverage(); err != nil {
		t.Fatalf("pool key coverage: %v", err)
	}
}

// taggedConfig returns a cheap-to-build config whose OutSize is distinct
// per tag, giving each tag its own pool key.
func taggedConfig(tag uint64) Config {
	cfg := DefaultConfig(KindBOOM)
	cfg.StaticSize = 1 << 20
	cfg.HeapSize = 1 << 20
	cfg.ArenaSize = 1 << 20
	cfg.OutSize = (1 + tag) << 20
	return cfg
}

// A recycled System must be handed back for an identical Config built
// independently (value-keyed, not address-keyed).
func TestPoolRecyclesAcrossIdenticalConfigs(t *testing.T) {
	p := NewPool(4)
	s := p.Get(taggedConfig(0))
	p.Put(s)
	if got := p.Get(taggedConfig(0)); got != s {
		t.Fatal("identical config built independently did not recycle the idle System")
	}
}

// A full pool must not starve minority keys: returning a System for a key
// with no idle entries evicts the oldest idle System of the
// over-represented key instead of dropping the incoming one.
func TestPoolPutEvictsOverRepresentedKey(t *testing.T) {
	const max = 4
	p := NewPool(max)

	// Fill the pool with the hot key.
	hot := make([]*System, max)
	for i := range hot {
		hot[i] = New(taggedConfig(0))
	}
	for _, s := range hot {
		p.Put(s)
	}
	if got := p.IdleFor(taggedConfig(0)); got != max {
		t.Fatalf("hot key idle = %d, want %d", got, max)
	}

	// A cold-key return must be retained, shrinking the hot key by one.
	cold := New(taggedConfig(1))
	p.Put(cold)
	if got := p.Idle(); got != max {
		t.Fatalf("pool count = %d, want %d (capacity must hold)", got, max)
	}
	if got := p.IdleFor(taggedConfig(1)); got != 1 {
		t.Fatalf("cold key idle = %d, want 1 — incoming System was dropped", got)
	}
	if got := p.IdleFor(taggedConfig(0)); got != max-1 {
		t.Fatalf("hot key idle = %d, want %d after eviction", got, max-1)
	}
	// The evicted System is the hot key's oldest (FIFO victim); Get pops
	// LIFO, so the first-Put System is gone and the rest remain.
	seen := make(map[*System]bool)
	for i := 0; i < max-1; i++ {
		seen[p.Get(taggedConfig(0))] = true
	}
	if seen[hot[0]] {
		t.Error("oldest idle System of the hot key should have been evicted")
	}
	for _, s := range hot[1:] {
		if !seen[s] {
			t.Error("a newer hot-key System was evicted instead of the oldest")
		}
	}
	if got := p.Get(taggedConfig(1)); got != cold {
		t.Error("cold-key System was not retained")
	}
}

// The recycling ledger must account for every Get and Put outcome: hits
// only on recycled Systems, drops for poisoned and unpoolable returns,
// evictions when a full pool makes room.
func TestPoolCounters(t *testing.T) {
	p := NewPool(2)
	miss := p.Get(taggedConfig(0)) // miss: empty pool
	p.Put(miss)
	hit := p.Get(taggedConfig(0)) // hit: recycles miss
	if hit != miss {
		t.Fatal("expected the idle System back")
	}
	p.Put(hit)

	poisoned := New(taggedConfig(0))
	poisoned.poisoned = true
	p.Put(poisoned) // drop: poisoned

	traced := New(taggedConfig(0))
	traced.Cfg.Deser.Trace = func(ev deser.TraceEvent) {}
	p.Put(traced) // drop: unpoolable config

	p.Put(New(taggedConfig(1)))
	p.Put(New(taggedConfig(1))) // pool full (max 2): evicts one idle

	got := p.Counters()
	want := PoolCounters{Gets: 2, Hits: 1, Puts: 4, Drops: 2, Evictions: 1}
	if got != want {
		t.Fatalf("pool counters = %+v, want %+v", got, want)
	}
}

// Under a mixed-config workload cycling through more keys than the pool
// holds per key, every key must keep recycling — the regression shape for
// the old Put behavior, which dropped every return for keys other than
// the one that filled the pool first.
func TestPoolMixedConfigNoStarvation(t *testing.T) {
	const keys = 3
	p := NewPool(keys) // tight: one retained System per key at fairness
	built := 0
	get := func(tag uint64) *System {
		cfg := taggedConfig(tag)
		if p.IdleFor(cfg) == 0 {
			built++
			return New(cfg)
		}
		return p.Get(cfg)
	}
	// Warm one System per key.
	for tag := uint64(0); tag < keys; tag++ {
		p.Put(get(tag))
	}
	built = 0
	// Round-robin across keys: with eviction-based Put every Get must be
	// satisfied from the pool (zero fresh builds after warm-up).
	for round := 0; round < 8; round++ {
		for tag := uint64(0); tag < keys; tag++ {
			s := get(tag)
			p.Put(s)
		}
	}
	if built != 0 {
		t.Fatalf("mixed-config workload rebuilt %d Systems; pool starved a key", built)
	}
}
