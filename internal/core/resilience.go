// Resilient dispatch: the transactional layer between the System's public
// operations and the accelerator.
//
// Every accelerator-backed operation runs as a transaction. When an
// injected fault (internal/faults) surfaces anywhere in the command path —
// RoCC queue, deserializer, serializer, message-operations unit — the
// dispatch layer aborts the attempt cleanly: the unit's partial writes are
// rolled back (arena and heap high-water-mark truncation with
// zero-scrubbing, serializer output rewind), its partial cycles are
// charged as abort penalty, and the RoCC router drains its in-flight
// state. Transient faults (access faults, spill failures, queue timeouts)
// are retried up to maxAttempts with bounded, cycle-charged exponential
// backoff; permanent faults (arena exhaustion, corrupted wire bytes) and
// exhausted retries fall back to the software codec on the host core. The
// caller observes a successful Result either way — augmented with a
// FaultReport and the penalty cycles — or the original error when the
// failure is a genuine model error rather than an injected fault.
package core

import (
	"errors"

	"protoacc/internal/accel/mops"
	"protoacc/internal/faults"
	"protoacc/internal/telemetry"
)

const (
	// maxAttempts bounds accelerator attempts per operation (first try
	// plus retries of transient faults).
	maxAttempts = 3
	// retryBackoffBase is the accelerator-clock cycle charge of the first
	// retry's backoff; each further retry doubles it.
	retryBackoffBase = 50.0
)

// FaultReport records the fault-recovery history of one operation. It is
// attached to the Result only when at least one injected fault occurred.
type FaultReport struct {
	Attempts int   // accelerator attempts made (including the first)
	Retries  int   // re-attempts after transient faults
	FellBack bool  // the operation completed on the software path
	Err      error // the last injected fault (even if a retry then succeeded)
}

// resilienceStats counts the dispatch layer's recovery actions; registered
// as the "resilience" telemetry group on every System so the -stats-out
// shape is uniform across system kinds.
type resilienceStats struct {
	aborts        uint64
	retries       uint64
	fallbacks     uint64
	transients    uint64
	permanents    uint64
	backoffCycles float64
}

// CollectTelemetry implements telemetry.Collector.
func (r *resilienceStats) CollectTelemetry(emit func(name string, value float64)) {
	emit("aborts", float64(r.aborts))
	emit("retries", float64(r.retries))
	emit("fallbacks", float64(r.fallbacks))
	emit("transients", float64(r.transients))
	emit("permanents", float64(r.permanents))
	emit("backoff_cycles", r.backoffCycles)
}

// accelAttempt describes one accelerator-backed operation to the resilient
// runner.
type accelAttempt struct {
	// attempt runs the operation once on the accelerator, capturing its
	// rollback marks before issuing any command.
	attempt func() (Result, error)
	// abort undoes the failed attempt's memory effects (allocator
	// truncation, output rewind) and returns the cycles the aborted
	// attempt consumed on its unit. The runner adds the RoCC router's own
	// drain cost separately.
	abort func() (float64, error)
	// fallback runs the operation on the host core's software codec.
	fallback func() (Result, error)
}

// accelSeconds converts accelerator-clock cycles to seconds.
func (s *System) accelSeconds(cy float64) float64 {
	return cy / (s.Cfg.AccelFreqGHz * 1e9)
}

// traceResilience emits one dispatch-layer recovery event ("abort",
// "retry", "fallback") on the RoCC router's timeline.
func (s *System) traceResilience(name, op string) {
	if s.tel.Tracer.Enabled() {
		s.tel.Tracer.Emit(telemetry.Event{
			Unit: "core", Name: name, Cycle: s.Accel.Timeline(), Note: op,
		})
	}
}

// resilient runs an accelerator operation transactionally. Fault-free
// operations pass through with no extra accounting. On an injected fault
// the attempt is aborted and rolled back; transients are retried with
// cycle-charged backoff, permanents (and exhausted retries) fall back to
// software. The penalty cycles of failed attempts and backoff are charged
// to the returned Result in the accelerator's clock domain — on fallback,
// Result.Cycles therefore mixes clock domains and Result.Seconds is the
// authoritative wall-clock total. Genuine (non-injected) errors propagate
// unchanged; an error wrapping mops.ErrPoisoned additionally poisons the
// System so the Pool refuses to recycle it.
func (s *System) resilient(op string, a accelAttempt) (Result, error) {
	var rep FaultReport
	var penalty float64 // accel-clock cycles consumed by failed attempts
	for n := 1; ; n++ {
		res, err := a.attempt()
		if err == nil {
			if rep.Attempts > 0 {
				rep.Attempts = n
				res.Cycles += penalty
				res.Seconds += s.accelSeconds(penalty)
				res.Fault = &rep
			}
			return res, nil
		}
		if errors.Is(err, mops.ErrPoisoned) {
			s.poisoned = true
			return Result{}, err
		}
		f := faults.AsFault(err)
		if f == nil {
			return Result{}, err
		}
		rep.Attempts = n
		rep.Err = f
		s.res.aborts++
		unitCycles, abortErr := a.abort()
		if abortErr != nil {
			return Result{}, abortErr
		}
		penalty += unitCycles + s.Accel.AbortInFlight()
		s.traceResilience("abort", op)
		if faults.Classify(f.Site) == faults.ClassTransient {
			s.res.transients++
			if n < maxAttempts {
				backoff := retryBackoffBase * float64(uint64(1)<<uint(n-1))
				penalty += backoff
				s.res.backoffCycles += backoff
				s.res.retries++
				rep.Retries++
				s.traceResilience("retry", op)
				continue
			}
		} else {
			s.res.permanents++
		}
		s.res.fallbacks++
		rep.FellBack = true
		s.traceResilience("fallback", op)
		res, ferr := a.fallback()
		if ferr != nil {
			return Result{}, ferr
		}
		res.Cycles += penalty
		res.Seconds += s.accelSeconds(penalty)
		res.Fault = &rep
		return res, nil
	}
}

// Poisoned reports whether an operation left this System's simulated state
// undefined (a merge aborted mid-mutation). A poisoned System must not be
// reused without ResetAll; the Pool refuses to recycle it.
func (s *System) Poisoned() bool { return s.poisoned }
