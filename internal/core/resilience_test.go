package core

import (
	"bytes"
	"reflect"
	"testing"

	"protoacc/internal/faults"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/telemetry"
)

// faultedConfig is an accelerated small config with deterministic fault
// injection enabled.
func faultedConfig(seed uint64, rate float64) Config {
	cfg := smallConfig(KindAccel)
	cfg.Faults = faults.Config{Enabled: true, Seed: seed, Rate: rate}
	return cfg
}

// TestResilientOpsRecover drives every accelerator-backed operation under
// a fault schedule dense enough to exercise retries and software
// fallbacks, asserting the transactional contract: each operation either
// succeeds with output identical to the fault-free reference or returns a
// typed error — never a partial object.
func TestResilientOpsRecover(t *testing.T) {
	typ := testType()
	msg := populate(typ)
	wire, err := codec.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(faultedConfig(11, 0.08))
	if err := sys.LoadSchema(typ); err != nil {
		t.Fatal(err)
	}
	bufAddr, err := sys.WriteWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	objAddr, err := sys.MaterializeInput(msg)
	if err != nil {
		t.Fatal(err)
	}

	var faulted, retries, fallbacks int
	note := func(res Result) {
		if res.Fault == nil {
			return
		}
		faulted++
		retries += res.Fault.Retries
		if res.Fault.FellBack {
			fallbacks++
		}
		if res.Fault.Attempts < 1 || res.Fault.Err == nil {
			t.Fatalf("malformed fault report %+v", res.Fault)
		}
	}

	for i := 0; i < 60; i++ {
		dres, err := sys.Deserialize(typ, bufAddr, uint64(len(wire)))
		if err != nil {
			t.Fatalf("iter %d deser: %v", i, err)
		}
		got, err := sys.ReadMessage(typ, dres.ObjAddr)
		if err != nil {
			t.Fatal(err)
		}
		if !msg.Equal(got) {
			t.Fatalf("iter %d: deserialized object diverged (fault=%+v)", i, dres.Fault)
		}
		note(dres)

		sres, err := sys.Serialize(typ, objAddr)
		if err != nil {
			t.Fatalf("iter %d ser: %v", i, err)
		}
		out, err := sys.ReadWire(sres.WireAddr, sres.Bytes)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, wire) {
			t.Fatalf("iter %d: serialized bytes diverged (fault=%+v)", i, sres.Fault)
		}
		note(sres)

		cres, err := sys.Copy(typ, objAddr)
		if err != nil {
			t.Fatalf("iter %d copy: %v", i, err)
		}
		cp, err := sys.ReadMessage(typ, cres.ObjAddr)
		if err != nil {
			t.Fatal(err)
		}
		if !msg.Equal(cp) {
			t.Fatalf("iter %d: copied object diverged (fault=%+v)", i, cres.Fault)
		}
		note(cres)

		dst, err := sys.MaterializeInput(dynamic.New(typ))
		if err != nil {
			t.Fatal(err)
		}
		mres, err := sys.Merge(typ, dst, objAddr)
		if err != nil {
			t.Fatalf("iter %d merge: %v", i, err)
		}
		merged, err := sys.ReadMessage(typ, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !msg.Equal(merged) {
			t.Fatalf("iter %d: merged object diverged (fault=%+v)", i, mres.Fault)
		}
		note(mres)

		clres, err := sys.Clear(typ, cres.ObjAddr)
		if err != nil {
			t.Fatalf("iter %d clear: %v", i, err)
		}
		cleared, err := sys.ReadMessage(typ, cres.ObjAddr)
		if err != nil {
			t.Fatal(err)
		}
		if len(cleared.PresentFieldNumbers()) != 0 {
			t.Fatalf("iter %d: cleared object retains fields (fault=%+v)", i, clres.Fault)
		}
		note(clres)
	}

	if sys.Poisoned() {
		t.Fatal("phantom faults must never poison the System")
	}
	if sys.Inj.TotalInjected() == 0 {
		t.Fatal("fault schedule injected nothing; the test is vacuous")
	}
	if faulted == 0 || retries == 0 || fallbacks == 0 {
		t.Fatalf("recovery machinery unexercised: faulted=%d retries=%d fallbacks=%d",
			faulted, retries, fallbacks)
	}

	// The episode must be visible in telemetry: dispatch-layer recovery
	// counters and per-site fault counters.
	snap := sys.Telemetry().Registry.Snapshot()
	for _, name := range []string{"resilience/aborts", "resilience/retries", "resilience/fallbacks"} {
		if v, ok := snap.Get(name); !ok || v <= 0 {
			t.Errorf("%s = %v (present=%v), want > 0", name, v, ok)
		}
	}
	var injected float64
	for _, site := range faults.SiteNames() {
		if _, ok := snap.Get("faults/" + site + "/trials"); !ok {
			t.Errorf("snapshot missing counter faults/%s/trials", site)
		}
		v, _ := snap.Get("faults/" + site + "/injected")
		injected += v
	}
	if injected != float64(sys.Inj.TotalInjected()) {
		t.Errorf("faults/*/injected sums to %v, injector reports %d",
			injected, sys.Inj.TotalInjected())
	}
}

// opTrace is the comparable footprint of one operation, used to check
// that recycled Systems replay fault episodes exactly.
type opTrace struct {
	Cycles   float64
	Seconds  float64
	Bytes    uint64
	Faulted  bool
	Retries  int
	FellBack bool
}

// runFaultedEpisode runs a fixed op sequence on sys, differentially
// verifying every output, and returns the per-op traces plus the final
// telemetry samples.
func runFaultedEpisode(t *testing.T, sys *System) ([]opTrace, []telemetry.Sample) {
	t.Helper()
	typ := testType()
	msg := populate(typ)
	wire, err := codec.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSchema(typ); err != nil {
		t.Fatal(err)
	}
	bufAddr, err := sys.WriteWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	objAddr, err := sys.MaterializeInput(msg)
	if err != nil {
		t.Fatal(err)
	}
	var traces []opTrace
	note := func(res Result) {
		tr := opTrace{Cycles: res.Cycles, Seconds: res.Seconds, Bytes: res.Bytes}
		if res.Fault != nil {
			tr.Faulted = true
			tr.Retries = res.Fault.Retries
			tr.FellBack = res.Fault.FellBack
		}
		traces = append(traces, tr)
	}
	for i := 0; i < 30; i++ {
		dres, err := sys.Deserialize(typ, bufAddr, uint64(len(wire)))
		if err != nil {
			t.Fatalf("iter %d deser: %v", i, err)
		}
		got, err := sys.ReadMessage(typ, dres.ObjAddr)
		if err != nil || !msg.Equal(got) {
			t.Fatalf("iter %d: deser diverged: %v", i, err)
		}
		note(dres)
		sres, err := sys.Serialize(typ, objAddr)
		if err != nil {
			t.Fatalf("iter %d ser: %v", i, err)
		}
		out, err := sys.ReadWire(sres.WireAddr, sres.Bytes)
		if err != nil || !bytes.Equal(out, wire) {
			t.Fatalf("iter %d: ser diverged: %v", i, err)
		}
		note(sres)
	}
	return traces, sys.Telemetry().Registry.Snapshot().Samples()
}

// TestFaultedSystemPoolsIndistinguishable is the error-path pooling
// contract: a System that rode out injected faults and returned to the
// pool must be indistinguishable from a freshly constructed one —
// ResetAll rewinds the injector stream and zeroes all recovery state, so
// the recycled System replays the identical fault episode.
func TestFaultedSystemPoolsIndistinguishable(t *testing.T) {
	cfg := faultedConfig(77, 0.06)
	pool := NewPool(4)

	first := pool.Get(cfg)
	refTraces, refSamples := runFaultedEpisode(t, first)
	if first.Inj.TotalInjected() == 0 {
		t.Fatal("episode injected no faults; the test is vacuous")
	}
	pool.Put(first)
	if pool.Idle() != 1 {
		t.Fatal("transactionally-recovered System was not pooled")
	}

	recycled := pool.Get(cfg)
	if recycled != first {
		t.Fatal("expected the faulted System to be recycled")
	}
	if recycled.Inj.TotalInjected() != 0 || recycled.Poisoned() {
		t.Fatal("recycle did not rewind injector/poison state")
	}
	if !recycled.Telemetry().Registry.Snapshot().Zero() {
		t.Fatal("recycled System came back with residual counters")
	}
	gotTraces, gotSamples := runFaultedEpisode(t, recycled)
	if !reflect.DeepEqual(gotTraces, refTraces) {
		t.Error("recycled System's fault episode diverged from its first run")
	}
	if !reflect.DeepEqual(gotSamples, refSamples) {
		t.Error("recycled System's telemetry diverged from its first run")
	}

	freshTraces, freshSamples := runFaultedEpisode(t, New(cfg))
	if !reflect.DeepEqual(freshTraces, refTraces) {
		t.Error("pooled episode diverged from a freshly constructed System's")
	}
	if !reflect.DeepEqual(freshSamples, refSamples) {
		t.Error("pooled telemetry diverged from a freshly constructed System's")
	}
}

// TestPoolRefusesPoisonedSystem: a System whose abort left simulated
// state undefined must not recycle; ResetAll rehabilitates it.
func TestPoolRefusesPoisonedSystem(t *testing.T) {
	pool := NewPool(4)
	sys := New(smallConfig(KindAccel))
	sys.poisoned = true
	pool.Put(sys)
	if pool.Idle() != 0 {
		t.Fatal("pool accepted a poisoned System")
	}
	sys.ResetAll()
	if sys.Poisoned() {
		t.Fatal("ResetAll did not clear poisoning")
	}
	pool.Put(sys)
	if pool.Idle() != 1 {
		t.Fatal("rehabilitated System should pool")
	}
}
