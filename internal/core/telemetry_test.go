package core

import (
	"reflect"
	"testing"

	"protoacc/internal/pb/codec"
)

// telemetrySetup builds a loaded system with one wire buffer and one
// materialized object ready for timed ops.
func telemetrySetup(t *testing.T, k Kind) (*System, uint64, uint64, uint64) {
	t.Helper()
	typ := testType()
	msg := populate(typ)
	wire, err := codec.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	sys := New(smallConfig(k))
	if err := sys.LoadSchema(typ); err != nil {
		t.Fatal(err)
	}
	bufAddr, err := sys.WriteWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	objAddr, err := sys.MaterializeInput(msg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, bufAddr, uint64(len(wire)), objAddr
}

// TestTelemetryCoverage checks the acceptance criterion that one snapshot
// of the accelerated system covers every unit and all four levels of the
// memory hierarchy (L1, L2, LLC, DRAM) plus the TLBs.
func TestTelemetryCoverage(t *testing.T) {
	sys, bufAddr, bufLen, objAddr := telemetrySetup(t, KindAccel)
	typ := sys.schemaRoots[0]
	if _, err := sys.Deserialize(typ, bufAddr, bufLen); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Serialize(typ, objAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Copy(typ, objAddr); err != nil {
		t.Fatal(err)
	}

	groups := sys.Telemetry().Registry.Groups()
	want := []string{"mem", "cpu", "rocc", "deser", "ser", "mops", "faults", "resilience"}
	if !reflect.DeepEqual(groups, want) {
		t.Errorf("groups = %v, want %v", groups, want)
	}

	snap := sys.Telemetry().Registry.Snapshot()
	mustHave := []string{
		// all four memory levels, per-port L1/TLB for both ports
		"mem/l1/cpu/hits", "mem/l1/accel/hits",
		"mem/tlb/cpu/hits", "mem/tlb/accel/hits",
		"mem/l2/hits", "mem/l2/misses",
		"mem/llc/hits", "mem/llc/misses",
		"mem/dram/accesses",
		// one representative counter per unit
		"cpu/cycles", "rocc/commands", "deser/cycles", "ser/cycles", "mops/cycles",
	}
	for _, name := range mustHave {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("snapshot missing counter %q", name)
		}
	}
	// The ops above must have left visible footprints in the right units.
	for _, name := range []string{
		"rocc/commands", "deser/cycles", "deser/bytes_consumed",
		"ser/cycles", "ser/bytes_produced", "mops/copies", "mem/l1/accel/hits",
	} {
		if v, _ := snap.Get(name); v <= 0 {
			t.Errorf("%s = %v after exercising all units, want > 0", name, v)
		}
	}
}

func TestPerOpResultTelemetry(t *testing.T) {
	for _, k := range allKinds() {
		sys, bufAddr, bufLen, objAddr := telemetrySetup(t, k)
		typ := sys.schemaRoots[0]

		// Off by default: results carry no telemetry.
		res, err := sys.Deserialize(typ, bufAddr, bufLen)
		if err != nil {
			t.Fatal(err)
		}
		if res.Telemetry != nil {
			t.Errorf("%v: Result.Telemetry attached with per-op capture off", k)
		}

		sys.Telemetry().EnablePerOp(true)
		for name, run := range map[string]func() (Result, error){
			"deser": func() (Result, error) { return sys.Deserialize(typ, bufAddr, bufLen) },
			"ser":   func() (Result, error) { return sys.Serialize(typ, objAddr) },
			"clear": func() (Result, error) { return sys.Clear(typ, objAddr) },
			"copy":  func() (Result, error) { return sys.Copy(typ, objAddr) },
		} {
			res, err := run()
			if err != nil {
				t.Fatalf("%v/%s: %v", k, name, err)
			}
			if res.Telemetry == nil {
				t.Fatalf("%v/%s: no telemetry attached", k, name)
			}
			at := res.Telemetry.Attribution
			if at.Total != res.Cycles {
				t.Errorf("%v/%s: attribution total %v != op cycles %v", k, name, at.Total, res.Cycles)
			}
			if sum := at.FSM + at.Supply + at.Spill + at.ADTMiss; sum != at.Total {
				t.Errorf("%v/%s: attribution classes sum to %v, total %v", k, name, sum, at.Total)
			}
			if res.Telemetry.Counters.Zero() {
				t.Errorf("%v/%s: empty counter delta for a timed op", k, name)
			}
		}
		// clear ran after ser/copy may reorder (map iteration); re-run a
		// known op to check a unit-attributed counter moved by exactly one.
		res, err = sys.Copy(typ, objAddr)
		if err != nil {
			t.Fatal(err)
		}
		counter := "cpu/copies"
		if k == KindAccel {
			counter = "mops/copies"
		}
		if v, _ := res.Telemetry.Counters.Get(counter); v != 1 {
			t.Errorf("%v: %s delta = %v, want 1", k, counter, v)
		}
	}
}

func TestBatchTelemetry(t *testing.T) {
	for _, k := range []Kind{KindBOOM, KindAccel} {
		sys, bufAddr, bufLen, _ := telemetrySetup(t, k)
		typ := sys.schemaRoots[0]
		sys.Telemetry().EnablePerOp(true)
		refs := []WireRef{{bufAddr, bufLen}, {bufAddr, bufLen}, {bufAddr, bufLen}}
		total, objs, err := sys.DeserializeBatch(typ, refs)
		if err != nil {
			t.Fatal(err)
		}
		if len(objs) != 3 {
			t.Fatalf("%v: %d objects", k, len(objs))
		}
		if total.Telemetry == nil {
			t.Fatalf("%v: batch result has no telemetry", k)
		}
		if total.Telemetry.Attribution.Total != total.Cycles {
			t.Errorf("%v: batch attribution total %v != cycles %v",
				k, total.Telemetry.Attribution.Total, total.Cycles)
		}
		if k == KindAccel {
			// Two commands per item plus the completion barrier.
			if v, _ := total.Telemetry.Counters.Get("rocc/commands"); v != 7 {
				t.Errorf("rocc/commands delta = %v, want 7", v)
			}
		} else if v, _ := total.Telemetry.Counters.Get("cpu/deserializes"); v != 3 {
			t.Errorf("cpu/deserializes delta = %v, want 3", v)
		}
	}
}

func TestResetAllZeroesTelemetry(t *testing.T) {
	sys, bufAddr, bufLen, _ := telemetrySetup(t, KindAccel)
	typ := sys.schemaRoots[0]
	hub := sys.Telemetry()
	hub.Tracer.Enable()
	hub.EnablePerOp(true)
	if _, err := sys.Deserialize(typ, bufAddr, bufLen); err != nil {
		t.Fatal(err)
	}
	if hub.Registry.Snapshot().Zero() {
		t.Fatal("expected non-zero counters after an op")
	}
	if len(hub.Tracer.Events()) == 0 {
		t.Fatal("expected trace events after a traced op")
	}

	sys.ResetAll()
	if !hub.Registry.Snapshot().Zero() {
		for _, sm := range hub.Registry.Snapshot().Samples() {
			if sm.Value != 0 {
				t.Errorf("counter %s = %v after ResetAll", sm.Name, sm.Value)
			}
		}
	}
	if hub.Tracer.Enabled() || len(hub.Tracer.Events()) != 0 {
		t.Error("ResetAll left the tracer enabled or non-empty")
	}
	if hub.PerOpEnabled() {
		t.Error("ResetAll left per-op capture enabled")
	}
	if len(hub.Registry.Groups()) != 8 {
		t.Errorf("ResetAll dropped registrations: groups = %v", hub.Registry.Groups())
	}
}

// TestTracedSystemPoolsCleanly covers the pooling fix: tracing is System
// state enabled after Pool.Get, so traced Systems recycle through the pool
// and come back with telemetry fully cleared.
func TestTracedSystemPoolsCleanly(t *testing.T) {
	pool := NewPool(4)
	cfg := smallConfig(KindAccel)
	sys := pool.Get(cfg)
	sys.Telemetry().Tracer.Enable()

	typ := testType()
	msg := populate(typ)
	wire, err := codec.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadSchema(typ); err != nil {
		t.Fatal(err)
	}
	bufAddr, err := sys.WriteWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Deserialize(typ, bufAddr, uint64(len(wire))); err != nil {
		t.Fatal(err)
	}
	if got := sys.Telemetry().Tracer.TakeEvents(); len(got) == 0 {
		t.Fatal("traced run produced no events")
	}
	sys.Telemetry().Tracer.Reset()
	pool.Put(sys)

	recycled := pool.Get(cfg)
	if recycled != sys {
		t.Fatal("expected the traced System to be recycled")
	}
	if recycled.Telemetry().Tracer.Enabled() {
		t.Error("recycled System came back with tracing on")
	}
	if !recycled.Telemetry().Registry.Snapshot().Zero() {
		t.Error("recycled System came back with non-zero counters")
	}
}
