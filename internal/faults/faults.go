// Package faults is the deterministic fault-injection framework of the
// simulator. It models the failure modes a shared-memory accelerator next
// to an OoO core is exposed to in deployment — memloader/memwriter access
// faults (the simulated analogue of page/TLB faults), metadata-stack spill
// failures, arena exhaustion, RoCC queue timeouts, and wire-byte
// corruption from untrusted peers — as named injection *sites* threaded
// through the simulated units.
//
// Design contract:
//
//   - Determinism. An Injector is a seeded splitmix64 stream; whether trial
//     N at site S faults depends only on (seed, site, N). Replaying the
//     same workload with the same seed reproduces the same fault schedule,
//     serial or parallel, which is what makes the differential chaos
//     harness in internal/bench possible.
//   - Zero cost when off. Units hold a *Injector pointer that is normally
//     nil; Injector.At is nil-receiver-safe and a disabled injector is a
//     single predictable branch. The fault-free simulation paths stay
//     cycle-identical and allocation-free (the telemetry overhead guards
//     cover this).
//   - Phantom faults. An injected fault fails the operation without
//     corrupting simulated memory — like a page fault, the access never
//     completes. Recovery (retry or software fallback) therefore operates
//     on pristine input, and the transactional abort in internal/core only
//     has to undo the unit's own partial writes.
package faults

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Site names one injection point threaded through the simulated units.
type Site int

const (
	// SiteMemloader: a load issued by an accelerator frontend (deserializer
	// field dispatch, serializer descriptor walk) faults — the simulated
	// analogue of a page/TLB fault on the memloader port.
	SiteMemloader Site = iota
	// SiteMemwriter: a store issued by an accelerator unit (object-slot
	// writeback, output-buffer write) faults.
	SiteMemwriter
	// SiteStackSpill: spilling the metadata stack of nested-message parse
	// state to memory fails.
	SiteStackSpill
	// SiteArena: an arena (or heap) allocation request cannot be satisfied.
	SiteArena
	// SiteRoCCTimeout: a RoCC command sits in the accelerator queue past
	// its deadline and the core gives up on it.
	SiteRoCCTimeout
	// SiteWireCorrupt: a wire byte is observed corrupted in flight — the
	// frontend detects the corruption (checksum analogue) and rejects the
	// operation.
	SiteWireCorrupt

	// NumSites is the number of injection sites.
	NumSites int = iota
)

var siteNames = [NumSites]string{
	"memloader",
	"memwriter",
	"stack_spill",
	"arena",
	"rocc_timeout",
	"wire_corrupt",
}

// String returns the stable lower_snake name of the site (used in
// telemetry counter names and the -faults site list).
func (s Site) String() string {
	if s < 0 || int(s) >= NumSites {
		return fmt.Sprintf("site(%d)", int(s))
	}
	return siteNames[s]
}

// ParseSite resolves a site name produced by Site.String.
func ParseSite(name string) (Site, error) {
	for i, n := range siteNames {
		if n == name {
			return Site(i), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown site %q", name)
}

// Class is the recovery taxonomy of a fault.
type Class int

const (
	// ClassTransient faults (access faults, spill failures, queue
	// timeouts) are expected to succeed on retry: the OS services the page
	// fault, the queue drains. The dispatch layer retries them with
	// bounded, cycle-charged backoff.
	ClassTransient Class = iota
	// ClassPermanent faults (arena exhaustion, corrupted wire bytes) will
	// fail the same way every time on the accelerator; the dispatch layer
	// goes straight to the software fallback path.
	ClassPermanent
)

// String returns "transient" or "permanent".
func (c Class) String() string {
	if c == ClassPermanent {
		return "permanent"
	}
	return "transient"
}

// Classify maps a site to its recovery class.
func Classify(s Site) Class {
	switch s {
	case SiteArena, SiteWireCorrupt:
		return ClassPermanent
	default:
		return ClassTransient
	}
}

// Fault is the typed error an injection site produces. It records which
// site fired and the per-site sequence number of the firing trial, so an
// episode is reproducible and debuggable from the error alone.
type Fault struct {
	Site Site
	Seq  uint64 // per-site trial index (1-based) at which the fault fired
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("injected %s fault at site %s (trial %d)", Classify(f.Site), f.Site, f.Seq)
}

// Class returns the recovery class of the fault.
func (f *Fault) Class() Class { return Classify(f.Site) }

// AsFault extracts a *Fault from an error chain, or returns nil.
func AsFault(err error) *Fault {
	var f *Fault
	if errors.As(err, &f) {
		return f
	}
	return nil
}

// Config selects a fault schedule. The zero value disables injection.
// All fields are plain comparable values so a Config can participate in
// the typed pool-key fingerprint of core.Config.
type Config struct {
	// Enabled turns injection on.
	Enabled bool
	// Seed selects the deterministic schedule.
	Seed uint64
	// Rate is the per-trial fault probability in [0, 1].
	Rate float64
	// Sites restricts injection to a comma-separated list of site names
	// (Site.String values). Empty means every site.
	Sites string
}

// mask returns the enabled-site bitmask of the config. An empty Sites
// string means every site; a non-empty list must name at least one site
// per element — empty elements (doubled or trailing commas) are rejected
// rather than skipped, so a typo cannot silently widen or narrow the
// schedule.
func (c Config) mask() (uint32, error) {
	if c.Sites == "" {
		return 1<<uint(NumSites) - 1, nil
	}
	var m uint32
	for _, name := range strings.Split(c.Sites, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return 0, fmt.Errorf("faults: empty site name in list %q (stray comma?)", c.Sites)
		}
		s, err := ParseSite(name)
		if err != nil {
			return 0, err
		}
		m |= 1 << uint(s)
	}
	return m, nil
}

// ParseFlag parses the -faults command-line spec into a Config:
//
//	""            injection disabled (the default)
//	"off"         injection disabled, explicitly
//	"0.01"        every site faults with probability 0.01
//	"0.01@arena,rocc_timeout"
//	              only the named sites fault (names from SiteNames)
//
// seed is the value of the companion -fault-seed flag; it is recorded even
// for a disabled config so the zero-rate schedule stays reproducible.
func ParseFlag(spec string, seed uint64) (Config, error) {
	cfg := Config{Seed: seed}
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return cfg, nil
	}
	rateStr, sites, hasSites := strings.Cut(spec, "@")
	rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
	if err != nil {
		return cfg, fmt.Errorf("faults: bad rate in spec %q: %v", spec, err)
	}
	cfg.Enabled = true
	cfg.Rate = rate
	if hasSites {
		cfg.Sites = strings.TrimSpace(sites)
		if cfg.Sites == "" {
			// "0.1@" would otherwise fall through to the empty-Sites
			// "every site" default — the opposite of what a trailing @
			// plausibly meant.
			return Config{Seed: seed}, fmt.Errorf("faults: empty site list in spec %q (drop the @ to fault every site)", spec)
		}
	}
	if err := cfg.Validate(); err != nil {
		return Config{Seed: seed}, err
	}
	return cfg, nil
}

// Validate checks the config without building an injector.
func (c Config) Validate() error {
	if !c.Enabled {
		return nil
	}
	if math.IsNaN(c.Rate) || c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("faults: rate %v outside [0, 1]", c.Rate)
	}
	_, err := c.mask()
	return err
}

// SiteNames returns every site name in site order (for -faults help text).
func SiteNames() []string {
	out := make([]string, NumSites)
	copy(out, siteNames[:])
	return out
}

// Injector draws per-site Bernoulli trials from a seeded splitmix64
// stream. A nil *Injector is valid and never fires — units check nothing,
// they just call At. Injector is not safe for concurrent use; each System
// owns its own (matching the one-goroutine-per-System simulation model).
type Injector struct {
	cfg       Config
	mask      uint32
	threshold uint64 // fault iff next draw < threshold
	state     uint64 // splitmix64 state
	trials    [NumSites]uint64
	injected  [NumSites]uint64
	faults    [NumSites]*Fault // preallocated; reused so At never allocates
}

// New builds an injector for the config. A disabled config returns a
// valid injector that never fires (callers that want the nil fast path
// should check Config.Enabled themselves).
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{cfg: cfg}
	if cfg.Enabled {
		m, err := cfg.mask()
		if err != nil {
			return nil, err
		}
		inj.mask = m
		inj.threshold = rateThreshold(cfg.Rate)
	}
	for i := range inj.faults {
		inj.faults[i] = &Fault{Site: Site(i)}
	}
	inj.state = seedState(cfg.Seed)
	return inj, nil
}

// rateThreshold converts a probability to a uint64 comparison threshold.
func rateThreshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return ^uint64(0)
	default:
		return uint64(rate * float64(1<<63) * 2)
	}
}

// seedState whitens the user seed so nearby seeds give unrelated streams.
func seedState(seed uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next is splitmix64.
func (inj *Injector) next() uint64 {
	inj.state += 0x9e3779b97f4a7c15
	z := inj.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Enabled reports whether the injector can ever fire.
func (inj *Injector) Enabled() bool {
	return inj != nil && inj.cfg.Enabled && inj.mask != 0 && inj.threshold != 0
}

// At records one trial at the site and returns a *Fault if the schedule
// says this trial faults, nil otherwise. Nil-receiver-safe; a disabled
// injector is a single branch. At never allocates.
func (inj *Injector) At(site Site) error {
	if inj == nil || !inj.cfg.Enabled {
		return nil
	}
	if site < 0 || int(site) >= NumSites || inj.mask&(1<<uint(site)) == 0 {
		return nil
	}
	inj.trials[site]++
	if inj.next() >= inj.threshold {
		return nil
	}
	inj.injected[site]++
	f := inj.faults[site]
	f.Seq = inj.trials[site]
	return f
}

// Trials returns the number of trials recorded at the site.
func (inj *Injector) Trials(site Site) uint64 {
	if inj == nil {
		return 0
	}
	return inj.trials[site]
}

// Injected returns the number of faults fired at the site.
func (inj *Injector) Injected(site Site) uint64 {
	if inj == nil {
		return 0
	}
	return inj.injected[site]
}

// TotalInjected returns the number of faults fired across all sites.
func (inj *Injector) TotalInjected() uint64 {
	if inj == nil {
		return 0
	}
	var n uint64
	for _, v := range inj.injected {
		n += v
	}
	return n
}

// Config returns the injector's configuration.
func (inj *Injector) Config() Config {
	if inj == nil {
		return Config{}
	}
	return inj.cfg
}

// Reset rewinds the injector to its post-construction state: the stream
// is reseeded and every trial/injected counter zeroed, so a pooled System
// replays the identical fault schedule a fresh one would.
func (inj *Injector) Reset() {
	if inj == nil {
		return
	}
	inj.state = seedState(inj.cfg.Seed)
	for i := range inj.trials {
		inj.trials[i] = 0
		inj.injected[i] = 0
	}
}

// CollectTelemetry implements telemetry.Collector: per-site trial and
// injected counts, in site order, with a stable shape whether or not the
// injector is enabled.
func (inj *Injector) CollectTelemetry(emit func(name string, value float64)) {
	for i := 0; i < NumSites; i++ {
		emit(siteNames[i]+"/trials", float64(inj.trials[i]))
		emit(siteNames[i]+"/injected", float64(inj.injected[i]))
	}
}
