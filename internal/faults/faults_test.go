package faults

import (
	"errors"
	"testing"
)

func TestSiteNamesRoundTrip(t *testing.T) {
	for i := 0; i < NumSites; i++ {
		s := Site(i)
		got, err := ParseSite(s.String())
		if err != nil {
			t.Fatalf("ParseSite(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseSite(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if _, err := ParseSite("bogus"); err == nil {
		t.Fatal("ParseSite accepted an unknown site")
	}
}

func TestClassify(t *testing.T) {
	permanent := map[Site]bool{SiteArena: true, SiteWireCorrupt: true}
	for i := 0; i < NumSites; i++ {
		s := Site(i)
		want := ClassTransient
		if permanent[s] {
			want = ClassPermanent
		}
		if got := Classify(s); got != want {
			t.Errorf("Classify(%v) = %v, want %v", s, got, want)
		}
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var inj *Injector
	for i := 0; i < NumSites; i++ {
		if err := inj.At(Site(i)); err != nil {
			t.Fatalf("nil injector fired at %v: %v", Site(i), err)
		}
	}
	if inj.Enabled() {
		t.Fatal("nil injector reports Enabled")
	}
	if inj.TotalInjected() != 0 || inj.Trials(SiteArena) != 0 {
		t.Fatal("nil injector has nonzero counters")
	}
	inj.Reset() // must not panic
}

func TestDisabledInjectorNeverFires(t *testing.T) {
	inj, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 1000; n++ {
		if err := inj.At(SiteMemloader); err != nil {
			t.Fatalf("disabled injector fired: %v", err)
		}
	}
	if inj.Trials(SiteMemloader) != 0 {
		t.Fatal("disabled injector recorded trials")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 42, Rate: 0.1}
	run := func() []bool {
		inj, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 0, 4*1000)
		for n := 0; n < 1000; n++ {
			for s := 0; s < NumSites; s++ {
				out = append(out, inj.At(Site(s)) != nil)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at trial %d", i)
		}
	}
}

func TestResetReplaysSchedule(t *testing.T) {
	inj, err := New(Config{Enabled: true, Seed: 7, Rate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var first []bool
	for n := 0; n < 500; n++ {
		first = append(first, inj.At(SiteMemwriter) != nil)
	}
	inj.Reset()
	if inj.TotalInjected() != 0 {
		t.Fatal("Reset did not zero injected counters")
	}
	for n := 0; n < 500; n++ {
		if (inj.At(SiteMemwriter) != nil) != first[n] {
			t.Fatalf("replay diverges at trial %d", n)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	schedule := func(seed uint64) []bool {
		inj, err := New(Config{Enabled: true, Seed: seed, Rate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 256)
		for i := range out {
			out[i] = inj.At(SiteArena) != nil
		}
		return out
	}
	a, b := schedule(1), schedule(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

func TestRateExtremes(t *testing.T) {
	always, err := New(Config{Enabled: true, Seed: 3, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 100; n++ {
		if always.At(SiteStackSpill) == nil {
			t.Fatal("rate-1 injector failed to fire")
		}
	}
	never, err := New(Config{Enabled: true, Seed: 3, Rate: 0})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 100; n++ {
		if never.At(SiteStackSpill) != nil {
			t.Fatal("rate-0 injector fired")
		}
	}
}

func TestRateApproximatelyHonored(t *testing.T) {
	inj, err := New(Config{Enabled: true, Seed: 99, Rate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	for n := 0; n < trials; n++ {
		inj.At(SiteMemloader)
	}
	got := float64(inj.Injected(SiteMemloader)) / trials
	if got < 0.17 || got > 0.23 {
		t.Fatalf("empirical rate %.3f too far from 0.2", got)
	}
}

func TestSiteFilter(t *testing.T) {
	inj, err := New(Config{Enabled: true, Seed: 5, Rate: 1, Sites: "arena, wire_corrupt"})
	if err != nil {
		t.Fatal(err)
	}
	if inj.At(SiteMemloader) != nil {
		t.Fatal("filtered-out site fired")
	}
	if inj.Trials(SiteMemloader) != 0 {
		t.Fatal("filtered-out site recorded a trial")
	}
	if inj.At(SiteArena) == nil {
		t.Fatal("enabled site did not fire at rate 1")
	}
	if _, err := New(Config{Enabled: true, Rate: 0.5, Sites: "nope"}); err == nil {
		t.Fatal("New accepted an unknown site filter")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Enabled: true, Rate: 1.5}).Validate(); err == nil {
		t.Fatal("Validate accepted rate > 1")
	}
	if err := (Config{Enabled: true, Rate: -0.1}).Validate(); err == nil {
		t.Fatal("Validate accepted rate < 0")
	}
	if err := (Config{Rate: 99}).Validate(); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
}

func TestFaultErrorShape(t *testing.T) {
	inj, err := New(Config{Enabled: true, Seed: 11, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := inj.At(SiteRoCCTimeout)
	if e == nil {
		t.Fatal("rate-1 injector did not fire")
	}
	f := AsFault(e)
	if f == nil {
		t.Fatalf("AsFault failed on %T", e)
	}
	if f.Site != SiteRoCCTimeout || f.Seq != 1 {
		t.Fatalf("fault = %+v, want site %v seq 1", f, SiteRoCCTimeout)
	}
	if f.Class() != ClassTransient {
		t.Fatalf("rocc_timeout classified %v", f.Class())
	}
	var target *Fault
	if !errors.As(e, &target) {
		t.Fatal("errors.As failed")
	}
	if AsFault(errors.New("plain")) != nil {
		t.Fatal("AsFault matched a plain error")
	}
}

func TestAtDoesNotAllocate(t *testing.T) {
	inj, err := New(Config{Enabled: true, Seed: 1, Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		inj.At(SiteMemloader)
		inj.At(SiteArena)
	})
	if allocs != 0 {
		t.Fatalf("At allocates: %.1f allocs/op", allocs)
	}
	var nilInj *Injector
	allocs = testing.AllocsPerRun(1000, func() { nilInj.At(SiteMemwriter) })
	if allocs != 0 {
		t.Fatalf("nil At allocates: %.1f allocs/op", allocs)
	}
}

func TestCollectTelemetryShape(t *testing.T) {
	inj, err := New(Config{Enabled: true, Seed: 2, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	inj.At(SiteMemloader)
	var names []string
	var values []float64
	inj.CollectTelemetry(func(name string, v float64) {
		names = append(names, name)
		values = append(values, v)
	})
	if len(names) != 2*NumSites {
		t.Fatalf("emitted %d counters, want %d", len(names), 2*NumSites)
	}
	if names[0] != "memloader/trials" || values[0] != 1 {
		t.Fatalf("first counter %s=%v, want memloader/trials=1", names[0], values[0])
	}
	if names[1] != "memloader/injected" || values[1] != 1 {
		t.Fatalf("second counter %s=%v, want memloader/injected=1", names[1], values[1])
	}
}

func TestParseFlag(t *testing.T) {
	cases := []struct {
		spec    string
		want    Config
		wantErr bool
	}{
		{spec: "", want: Config{Seed: 7}},
		{spec: "off", want: Config{Seed: 7}},
		{spec: " off ", want: Config{Seed: 7}},
		{spec: "0.01", want: Config{Enabled: true, Seed: 7, Rate: 0.01}},
		{spec: "0.5@arena", want: Config{Enabled: true, Seed: 7, Rate: 0.5, Sites: "arena"}},
		{spec: "0.1@arena,rocc_timeout", want: Config{Enabled: true, Seed: 7, Rate: 0.1, Sites: "arena,rocc_timeout"}},
		{spec: " 0.5 @ arena ", want: Config{Enabled: true, Seed: 7, Rate: 0.5, Sites: "arena"}},

		// Malformed specs must error, never be silently ignored or
		// partially applied.
		{spec: "bogus", wantErr: true},
		{spec: "1.5", wantErr: true},  // rate outside [0, 1]
		{spec: "-0.1", wantErr: true}, // negative rate
		{spec: "NaN", wantErr: true},  // parses as a float, still not a rate
		{spec: "0.1@nosuch", wantErr: true},
		{spec: "0.1@", wantErr: true},                 // empty site list ≠ "every site"
		{spec: "0.1@ ", wantErr: true},                // whitespace-only site list
		{spec: "0.1@arena,", wantErr: true},           // trailing comma
		{spec: "0.1@,arena", wantErr: true},           // leading comma
		{spec: "0.1@arena,,memwriter", wantErr: true}, // doubled comma
		{spec: "0.1@arena@memwriter", wantErr: true},  // second @ folds into the site name
		{spec: "@arena", wantErr: true},               // missing rate
	}
	for _, c := range cases {
		got, err := ParseFlag(c.spec, 7)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseFlag(%q): want error, got %+v", c.spec, got)
			}
			if got.Enabled {
				t.Errorf("ParseFlag(%q): rejected spec was partially applied: %+v", c.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseFlag(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseFlag(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}
