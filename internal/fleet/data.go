// Package fleet encodes the paper's fleet-wide profiling study (Section 3)
// as first-class data and models: the published aggregates behind Figures
// 2-7, a protobufz-style message-shape sampler that collects the same
// statistics from any workload, and the §3.6.4 24-slice model that
// converts field-type byte distributions into estimated serialization and
// deserialization time.
//
// Where the paper publishes exact numbers (9.6% of fleet cycles in
// protobufs, 24%/56%/93% message-size quantiles, the 13.7× and 7.2×
// byte-volume ratios, depth quantiles) those are encoded verbatim; bucket
// shapes not given numerically are interpolated to be consistent with
// every published constraint, and the tests check those constraints.
package fleet

import "protoacc/internal/pb/schema"

// Headline fractions from §3.2-§3.4.
const (
	// FleetCyclesInProtobuf is the fraction of fleet-wide CPU cycles
	// spent in protobuf operations.
	FleetCyclesInProtobuf = 0.096
	// ProtobufCyclesInCpp is the fraction of protobuf cycles spent in
	// C++ protobufs.
	ProtobufCyclesInCpp = 0.88
	// FleetCyclesInCppDeser / FleetCyclesInCppSer: fleet-wide cycle
	// fractions for C++ deserialization and serialization (§3.2).
	FleetCyclesInCppDeser = 0.022
	FleetCyclesInCppSer   = 0.0125
	// AccelerationOpportunity is the fleet-cycle fraction the paper's
	// accelerator targets (§3.2).
	AccelerationOpportunity = 0.0345
	// Proto2ByteShare is the fraction of serialized/deserialized bytes
	// defined in proto2 (§3.3).
	Proto2ByteShare = 0.96
	// RPCDeserShare / RPCSerShare: fraction of deserialization and
	// serialization cycles initiated by the RPC stack (§3.4).
	RPCDeserShare = 0.163
	RPCSerShare   = 0.352
)

// Operation labels one protobuf library operation (Figure 2).
type Operation string

// Figure 2 operations.
const (
	OpDeserialize  Operation = "deserialize"
	OpSerialize    Operation = "serialize"
	OpByteSize     Operation = "byte size"
	OpMerge        Operation = "merge"
	OpCopy         Operation = "copy"
	OpClear        Operation = "clear"
	OpConstructors Operation = "constructors"
	OpDestructors  Operation = "destructors"
	OpOther        Operation = "other"
)

// OperationShare is one slice of Figure 2.
type OperationShare struct {
	Op    Operation
	Share float64 // fraction of fleet-wide C++ protobuf cycles
}

// CyclesByOperation reproduces Figure 2: the classification of fleet-wide
// C++ protobuf cycles by operation. Anchors from the text: deserialization
// is 2.2% of fleet cycles (26% of C++ protobuf cycles), serialization 8.8%
// and byte-size 6.0% of protobuf cycles (§3.2 fn.4), merge+copy+clear
// 17.1%, constructors 6.4%, destructors 13.9% (§7). "Other" absorbs the
// remainder (glue code).
func CyclesByOperation() []OperationShare {
	return []OperationShare{
		{OpDeserialize, 0.260},
		{OpSerialize, 0.088},
		{OpByteSize, 0.060},
		{OpMerge, 0.066},
		{OpCopy, 0.060},
		{OpClear, 0.045},
		{OpConstructors, 0.064},
		{OpDestructors, 0.139},
		{OpOther, 0.218},
	}
}

// SizeBucket is one bucket of the Figure 3 / Figure 4c size histograms.
type SizeBucket struct {
	Lo, Hi uint64 // inclusive byte bounds; Hi = 1<<63 means unbounded
	Share  float64
}

// Unbounded marks the top bucket's Hi.
const Unbounded = uint64(1) << 63

// SizeBucketBounds are the paper's histogram bucket edges.
var SizeBucketBounds = [][2]uint64{
	{0, 8}, {9, 32}, {33, 128}, {129, 512}, {513, 2048},
	{2049, 8192}, {8193, 32768}, {32769, Unbounded},
}

// MessageSizes reproduces Figure 3: the distribution of top-level encoded
// message sizes. Published anchors: 24% ≤ 8 B, 56% ≤ 32 B, 93% ≤ 512 B,
// and the [32769, inf] bucket holds 0.08% of messages while containing at
// least 13.7× the bytes of the [0, 8] bucket.
func MessageSizes() []SizeBucket {
	return []SizeBucket{
		{0, 8, 0.240},
		{9, 32, 0.320},
		{33, 128, 0.220},
		{129, 512, 0.150},
		{513, 2048, 0.040},
		{2049, 8192, 0.019},
		{8193, 32768, 0.0102},
		{32769, Unbounded, 0.0008},
	}
}

// BytesFieldBucketBounds are the 10 bucket edges the profiling system
// collects for bytes-like field sizes (§3.6.4: "the profiling system
// collects 10 buckets with ranges shown in Figure 4c").
var BytesFieldBucketBounds = [][2]uint64{
	{0, 8}, {9, 16}, {17, 32}, {33, 64}, {65, 128},
	{129, 512}, {513, 2048}, {2049, 4096}, {4097, 32768}, {32769, Unbounded},
}

// BytesFieldSizes reproduces Figure 4c: the distribution of bytes/string
// field sizes by count across the 10 profiling buckets. Published
// anchors: the 4097-32768 and 32769-inf buckets hold 1.3% and 0.06% of
// fields, small fields dominate count, and the top bucket holds at least
// 7.2× the bytes of the [0, 8] bucket.
func BytesFieldSizes() []SizeBucket {
	return []SizeBucket{
		{0, 8, 0.300},
		{9, 16, 0.170},
		{17, 32, 0.120},
		{33, 64, 0.110},
		{65, 128, 0.090},
		{129, 512, 0.120},
		{513, 2048, 0.055},
		{2049, 4096, 0.0214},
		{4097, 32768, 0.013},
		{32769, Unbounded, 0.0006},
	}
}

// FieldTypeShare is one slice of Figure 4a/4b.
type FieldTypeShare struct {
	Kind     schema.Kind
	Repeated bool
	Share    float64
}

// FieldsByType reproduces Figure 4a: the proportion of observed fields by
// primitive type (sub-messages accounted via their contained fields).
// Anchor: varint-like kinds are over 56% of fields; strings and bytes are
// significant.
func FieldsByType() []FieldTypeShare {
	return []FieldTypeShare{
		{schema.KindInt32, false, 0.155},
		{schema.KindInt64, false, 0.130},
		{schema.KindEnum, false, 0.100},
		{schema.KindBool, false, 0.070},
		{schema.KindUint64, false, 0.065},
		{schema.KindUint32, false, 0.040},
		{schema.KindString, false, 0.140},
		{schema.KindBytes, false, 0.050},
		{schema.KindString, true, 0.030},
		{schema.KindBytes, true, 0.010},
		{schema.KindDouble, false, 0.070},
		{schema.KindFloat, false, 0.040},
		{schema.KindDouble, true, 0.010},
		{schema.KindFixed64, false, 0.015},
		{schema.KindFixed32, false, 0.010},
		{schema.KindSint64, false, 0.005},
		{schema.KindSint32, false, 0.005},
		{schema.KindInt64, true, 0.030},
		{schema.KindInt32, true, 0.025},
	}
}

// BytesByType reproduces Figure 4b: the proportion of message bytes by
// field type. Anchor: bytes, string, and their repeated forms constitute
// over 92% of protobuf message bytes.
func BytesByType() []FieldTypeShare {
	return []FieldTypeShare{
		{schema.KindString, false, 0.450},
		{schema.KindBytes, false, 0.300},
		{schema.KindString, true, 0.120},
		{schema.KindBytes, true, 0.055},
		{schema.KindInt64, false, 0.020},
		{schema.KindInt32, false, 0.012},
		{schema.KindDouble, false, 0.015},
		{schema.KindFloat, false, 0.005},
		{schema.KindUint64, false, 0.008},
		{schema.KindEnum, false, 0.005},
		{schema.KindFixed64, false, 0.005},
		{schema.KindBool, false, 0.003},
		{schema.KindFixed32, false, 0.002},
	}
}

// VarintSizeShares is the fleet histogram of encoded varint value sizes
// (1..10 bytes) by bytes of data, used by the 24-slice model (§3.6.4:
// "the fleet-wide protobufz histogram data provides exact labels on size
// bins"). Small varints dominate.
func VarintSizeShares() [10]float64 {
	return [10]float64{0.34, 0.22, 0.14, 0.09, 0.07, 0.05, 0.04, 0.02, 0.02, 0.01}
}

// DensityBucket is one bucket of the Figure 7 density histogram.
type DensityBucket struct {
	Lo, Hi float64 // density range [Lo, Hi)
	Share  float64
}

// FieldDensity reproduces Figure 7: field-number usage density (present
// fields / defined field-number range) weighted by observed messages.
// Anchor: at least 92% of messages have density > 1/64 (favouring the
// per-type ADT design over per-instance tables, §3.7).
func FieldDensity() []DensityBucket {
	return []DensityBucket{
		{0.00, 0.05, 0.078},
		{0.05, 0.15, 0.030},
		{0.15, 0.25, 0.040},
		{0.25, 0.35, 0.060},
		{0.35, 0.45, 0.070},
		{0.45, 0.55, 0.090},
		{0.55, 0.65, 0.090},
		{0.65, 0.75, 0.100},
		{0.75, 0.85, 0.110},
		{0.85, 0.95, 0.130},
		{0.95, 1.01, 0.202},
	}
}

// DepthQuantiles encodes §3.8: 99.9% of protobuf bytes are at depth ≤ 12,
// 99.999% at depth ≤ 25, and the maximum observed depth is below 100.
type DepthQuantiles struct {
	P999, P99999, Max int
}

// MessageDepths returns the published depth quantiles.
func MessageDepths() DepthQuantiles {
	return DepthQuantiles{P999: 12, P99999: 25, Max: 99}
}

// SparseFieldPresence encodes §3.9's sparsity observation: over 90% of
// messages populate fewer than 52% of their defined fields on average.
const SparseFieldPresence = 0.52

// BucketMidpoint returns the representative size for a bucket, using the
// paper's midpoint interpolation (§3.6.4); the unbounded bucket uses
// topMean, the calibrated mean chosen to make total byte volume match.
func BucketMidpoint(b SizeBucket, topMean float64) float64 {
	if b.Hi == Unbounded {
		return topMean
	}
	return float64(b.Lo+b.Hi) / 2
}

// TopBucketMeanBytes is the calibrated mean size of the unbounded bucket,
// chosen so the published byte-volume ratios (13.7× for Figure 3, 7.2×
// for Figure 4c) hold.
const TopBucketMeanBytes = 65536
