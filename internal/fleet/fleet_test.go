package fleet

import (
	"math"
	"math/rand"
	"testing"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
)

func sumShares(shares []float64) float64 {
	var s float64
	for _, v := range shares {
		s += v
	}
	return s
}

func TestFigure2SumsToOne(t *testing.T) {
	var sum float64
	for _, op := range CyclesByOperation() {
		sum += op.Share
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Figure 2 shares sum to %f", sum)
	}
}

func TestFigure2Anchors(t *testing.T) {
	m := map[Operation]float64{}
	for _, op := range CyclesByOperation() {
		m[op.Op] = op.Share
	}
	// §3.2 fn4: serialization 8.8%, byte size 6.0%.
	if m[OpSerialize] != 0.088 || m[OpByteSize] != 0.060 {
		t.Error("serialization/bytesize anchors wrong")
	}
	// §7: merge+copy+clear = 17.1%, constructors 6.4%, destructors 13.9%.
	if v := m[OpMerge] + m[OpCopy] + m[OpClear]; math.Abs(v-0.171) > 1e-9 {
		t.Errorf("merge+copy+clear = %f", v)
	}
	if m[OpConstructors] != 0.064 || m[OpDestructors] != 0.139 {
		t.Error("ctor/dtor anchors wrong")
	}
	// Deserialization ≈ 2.2% of fleet cycles.
	fleetDeser := m[OpDeserialize] * FleetCyclesInProtobuf * ProtobufCyclesInCpp
	if math.Abs(fleetDeser-FleetCyclesInCppDeser) > 0.002 {
		t.Errorf("implied fleet deser share = %f, want ~%f", fleetDeser, FleetCyclesInCppDeser)
	}
}

func TestFigure3Anchors(t *testing.T) {
	buckets := MessageSizes()
	if math.Abs(sumBuckets(buckets)-1) > 1e-9 {
		t.Errorf("Figure 3 sums to %f", sumBuckets(buckets))
	}
	// 24% ≤ 8 B, 56% ≤ 32 B, 93% ≤ 512 B.
	var cum float64
	for _, b := range buckets {
		cum += b.Share
		switch b.Hi {
		case 8:
			if math.Abs(cum-0.24) > 0.005 {
				t.Errorf("≤8B = %f, want 0.24", cum)
			}
		case 32:
			if math.Abs(cum-0.56) > 0.005 {
				t.Errorf("≤32B = %f, want 0.56", cum)
			}
		case 512:
			if math.Abs(cum-0.93) > 0.005 {
				t.Errorf("≤512B = %f, want 0.93", cum)
			}
		}
	}
	// Top bucket: 0.08% of messages, ≥13.7× the bytes of the [0-8] bucket.
	top := buckets[len(buckets)-1]
	if math.Abs(top.Share-0.0008) > 1e-9 {
		t.Errorf("top bucket share = %f", top.Share)
	}
	topBytes := top.Share * BucketMidpoint(top, TopBucketMeanBytes)
	smallBytes := buckets[0].Share * BucketMidpoint(buckets[0], TopBucketMeanBytes)
	if topBytes < 13.7*smallBytes {
		t.Errorf("top bucket bytes ratio = %f, want ≥13.7", topBytes/smallBytes)
	}
}

func TestFigure4Anchors(t *testing.T) {
	var fieldSum, varintLike float64
	for _, ft := range FieldsByType() {
		fieldSum += ft.Share
		if ft.Kind.Class() == schema.ClassVarintLike {
			varintLike += ft.Share
		}
	}
	if math.Abs(fieldSum-1) > 1e-9 {
		t.Errorf("Figure 4a sums to %f", fieldSum)
	}
	if varintLike < 0.56 {
		t.Errorf("varint-like fields = %f, want > 0.56", varintLike)
	}

	var byteSum, bytesLike float64
	for _, ft := range BytesByType() {
		byteSum += ft.Share
		if ft.Kind.Class() == schema.ClassBytesLike {
			bytesLike += ft.Share
		}
	}
	if math.Abs(byteSum-1) > 1e-9 {
		t.Errorf("Figure 4b sums to %f", byteSum)
	}
	if bytesLike < 0.92 {
		t.Errorf("bytes-like bytes = %f, want > 0.92", bytesLike)
	}

	fieldSizes := BytesFieldSizes()
	if math.Abs(sumBuckets(fieldSizes)-1) > 1e-9 {
		t.Errorf("Figure 4c sums to %f", sumBuckets(fieldSizes))
	}
	top := fieldSizes[len(fieldSizes)-1]
	if math.Abs(top.Share-0.0006) > 1e-9 {
		t.Errorf("4c top share = %f, want 0.0006", top.Share)
	}
	topBytes := top.Share * BucketMidpoint(top, TopBucketMeanBytes)
	smallBytes := fieldSizes[0].Share * BucketMidpoint(fieldSizes[0], TopBucketMeanBytes)
	if topBytes < 7.2*smallBytes {
		t.Errorf("4c byte ratio = %f, want ≥7.2", topBytes/smallBytes)
	}
}

func sumBuckets(bs []SizeBucket) float64 {
	var s float64
	for _, b := range bs {
		s += b.Share
	}
	return s
}

func TestFigure7Anchor(t *testing.T) {
	var sum, aboveSixtyFourth float64
	for _, b := range FieldDensity() {
		sum += b.Share
		if b.Lo >= 0.05 { // everything above the 0.00 bucket exceeds 1/64
			aboveSixtyFourth += b.Share
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Figure 7 sums to %f", sum)
	}
	if aboveSixtyFourth < 0.92 {
		t.Errorf("density > 1/64 share = %f, want ≥ 0.92", aboveSixtyFourth)
	}
}

func TestVarintSharesSumToOne(t *testing.T) {
	var s float64
	for _, v := range VarintSizeShares() {
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("varint shares sum to %f", s)
	}
}

func TestSlices24(t *testing.T) {
	slices := Slices()
	if len(slices) != 24 {
		t.Fatalf("got %d slices, want 24", len(slices))
	}
	var sum float64
	for _, s := range slices {
		sum += s.ByteShare
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("slice byte shares sum to %f", sum)
	}
}

func TestEstimateTimeShares(t *testing.T) {
	slices := Slices()
	// With uniform per-byte cost, time shares equal byte shares.
	ts := EstimateTimeShares(slices, func(Slice) float64 { return 1 })
	for i := range ts {
		if math.Abs(ts[i].TimeShare-slices[i].ByteShare) > 1e-12 {
			t.Fatalf("uniform cost should preserve shares")
		}
	}
	// Making small varints 100× pricier shifts time toward them even
	// though bytes-like dominates bytes — the Figure 4b vs Figure 5
	// contrast the paper highlights.
	ts2 := EstimateTimeShares(slices, func(s Slice) float64 {
		if s.Class == schema.ClassVarintLike {
			return 100
		}
		return 1
	})
	var varintTime float64
	for _, x := range ts2 {
		if x.Slice.Class == schema.ClassVarintLike {
			varintTime += x.TimeShare
		}
	}
	if varintTime < 0.3 {
		t.Errorf("expensive varints should dominate time: %f", varintTime)
	}
	// FastShare counts only cheap slices.
	fs := FastShare(ts2, 1)
	if fs <= 0 || fs >= 1 {
		t.Errorf("FastShare = %f", fs)
	}
}

func TestSamplerBasics(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "v", Number: 1, Kind: schema.KindUint64},
		&schema.Field{Name: "s", Number: 4, Kind: schema.KindString},
	)
	s := NewSampler()
	m := dynamic.New(typ)
	m.SetUint64(1, 300) // 2-byte varint
	m.SetString(4, "abcdefghij")
	s.SampleTopLevel(m)

	if s.Messages != 1 {
		t.Errorf("Messages = %d", s.Messages)
	}
	counts := s.FieldCountShares()
	if counts[TypeKey{schema.KindUint64, false}] != 0.5 ||
		counts[TypeKey{schema.KindString, false}] != 0.5 {
		t.Errorf("field counts = %v", counts)
	}
	if s.VarintSizeBytes[1] != 2 { // one 2-byte varint
		t.Errorf("varint size bytes = %v", s.VarintSizeBytes)
	}
	// The 10-byte string lands in the 9-32 bucket.
	if s.BytesFieldCounts[1] != 1 {
		t.Errorf("bytes field counts = %v", s.BytesFieldCounts)
	}
	// Density: 2 present / range 4 = 0.5.
	shares := s.DensityShares()
	if shares[densityIndex(0.5)] != 1 {
		t.Errorf("density shares = %v", shares)
	}
}

func TestSamplerDepth(t *testing.T) {
	leaf := mustMessage("Leaf", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	mid := mustMessage("Mid", &schema.Field{Name: "l", Number: 1, Kind: schema.KindMessage, Message: leaf})
	top := mustMessage("Top",
		&schema.Field{Name: "m", Number: 1, Kind: schema.KindMessage, Message: mid},
		&schema.Field{Name: "v", Number: 2, Kind: schema.KindInt32})
	m := dynamic.New(top)
	m.SetInt32(2, 1)
	m.MutableMessage(1).MutableMessage(1).SetInt32(1, 2)
	s := NewSampler()
	s.SampleTopLevel(m)
	if len(s.BytesAtDepth) != 3 {
		t.Fatalf("depths = %v", s.BytesAtDepth)
	}
	if s.DepthCoverage(1.0) != 3 {
		t.Errorf("DepthCoverage(1.0) = %d", s.DepthCoverage(1.0))
	}
	if s.DepthCoverage(0.3) != 1 {
		t.Errorf("DepthCoverage(0.3) = %d", s.DepthCoverage(0.3))
	}
}

func TestSamplerRandomizedTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSampler()
	for i := 0; i < 50; i++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		s.SampleTopLevel(msg)
	}
	if s.Messages != 50 {
		t.Errorf("Messages = %d", s.Messages)
	}
	if math.Abs(sumShares(s.MessageSizeShares())-1) > 1e-9 {
		t.Error("message size shares don't sum to 1")
	}
	var fieldShareSum float64
	for _, v := range s.FieldCountShares() {
		fieldShareSum += v
	}
	if math.Abs(fieldShareSum-1) > 1e-9 {
		t.Errorf("field count shares sum to %f", fieldShareSum)
	}
	var byteShareSum float64
	for _, v := range s.FieldByteShares() {
		byteShareSum += v
	}
	if math.Abs(byteShareSum-1) > 1e-9 {
		t.Errorf("field byte shares sum to %f", byteShareSum)
	}
}

func TestDepthQuantilesPublished(t *testing.T) {
	d := MessageDepths()
	if d.P999 != 12 || d.P99999 != 25 || d.Max != 99 {
		t.Errorf("depth quantiles = %+v", d)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := map[uint64]int{0: 0, 8: 0, 9: 1, 32: 1, 33: 2, 512: 3, 513: 4,
		8192: 5, 8193: 6, 32768: 6, 32769: 7, 1 << 40: 7}
	for n, want := range cases {
		if got := bucketIndex(n); got != want {
			t.Errorf("bucketIndex(%d) = %d, want %d", n, got, want)
		}
	}
}

// Regression: every share/quantile helper divides by an observed total.
// On an empty Sampler those totals are zero, and an unguarded division
// would return NaNs that flow straight into workload shaping
// (internal/workloads synthesizes traces from these shares and falls
// back to the published Figure 3/4a data exactly when they are all
// zero — a NaN would instead poison every weighted draw). Empty must
// mean zeros, never NaN.
func TestSamplerEmptyNoNaN(t *testing.T) {
	s := NewSampler()

	checkSlice := func(name string, shares []float64, wantLen int) {
		t.Helper()
		if len(shares) != wantLen {
			t.Errorf("%s: %d buckets, want %d", name, len(shares), wantLen)
		}
		for i, v := range shares {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s[%d] = %v on an empty sampler", name, i, v)
			}
			if v != 0 {
				t.Errorf("%s[%d] = %v on an empty sampler, want 0", name, i, v)
			}
		}
	}
	checkSlice("MessageSizeShares", s.MessageSizeShares(), len(SizeBucketBounds))
	checkSlice("BytesFieldShares", s.BytesFieldShares(), len(BytesFieldBucketBounds))
	checkSlice("DensityShares", s.DensityShares(), len(FieldDensity()))

	for name, m := range map[string]map[TypeKey]float64{
		"FieldCountShares": s.FieldCountShares(),
		"FieldByteShares":  s.FieldByteShares(),
	} {
		if len(m) != 0 {
			t.Errorf("%s on an empty sampler has %d entries, want 0", name, len(m))
		}
		for k, v := range m {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s[%v] = %v on an empty sampler", name, k, v)
			}
		}
	}

	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if d := s.DepthCoverage(q); d != 1 {
			t.Errorf("DepthCoverage(%v) = %d on an empty sampler, want 1 (top level)", q, d)
		}
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
