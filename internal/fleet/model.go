package fleet

import (
	"fmt"

	"protoacc/internal/pb/schema"
)

// Slice is one of the 24 [field-type-like, size] pairs of the §3.6.4
// model: 10 varint sizes, 10 bytes-like size buckets, float, double,
// fixed32, and fixed64.
type Slice struct {
	Name      string
	Class     schema.PerfClass
	SizeBytes float64 // representative size of one value
	ByteShare float64 // fraction of fleet protobuf bytes in this slice
}

// Slices derives the 24 slices from the published distributions: total
// bytes per performance class from Figure 4b, subdivided by the varint
// size histogram and the Figure 4c bucket distribution (midpoint
// interpolation, with the unbounded bucket's mean calibrated — §3.6.4).
func Slices() []Slice {
	classShare := map[schema.PerfClass]float64{}
	for _, ft := range BytesByType() {
		classShare[ft.Kind.Class()] += ft.Share
	}

	var out []Slice
	// Varint-like: split by encoded size.
	vs := VarintSizeShares()
	for size := 1; size <= 10; size++ {
		out = append(out, Slice{
			Name:      fmt.Sprintf("varint-%d", size),
			Class:     schema.ClassVarintLike,
			SizeBytes: float64(size),
			ByteShare: classShare[schema.ClassVarintLike] * vs[size-1],
		})
	}
	// Bytes-like: split by the Figure 4c buckets, weighting each bucket
	// by its byte volume (count share × representative size).
	buckets := BytesFieldSizes()
	var totalVolume float64
	volumes := make([]float64, len(buckets))
	for i, b := range buckets {
		volumes[i] = b.Share * BucketMidpoint(b, TopBucketMeanBytes)
		totalVolume += volumes[i]
	}
	for i, b := range buckets {
		hi := fmt.Sprintf("%d", b.Hi)
		if b.Hi == Unbounded {
			hi = "inf"
		}
		out = append(out, Slice{
			Name:      fmt.Sprintf("bytes-%d-%s", b.Lo, hi),
			Class:     schema.ClassBytesLike,
			SizeBytes: BucketMidpoint(b, TopBucketMeanBytes),
			ByteShare: classShare[schema.ClassBytesLike] * volumes[i] / totalVolume,
		})
	}
	out = append(out,
		Slice{Name: "float", Class: schema.ClassFloatLike, SizeBytes: 4,
			ByteShare: classShare[schema.ClassFloatLike]},
		Slice{Name: "double", Class: schema.ClassDoubleLike, SizeBytes: 8,
			ByteShare: classShare[schema.ClassDoubleLike]},
		Slice{Name: "fixed32", Class: schema.ClassFixed32Like, SizeBytes: 4,
			ByteShare: classShare[schema.ClassFixed32Like]},
		Slice{Name: "fixed64", Class: schema.ClassFixed64Like, SizeBytes: 8,
			ByteShare: classShare[schema.ClassFixed64Like]},
	)
	return out
}

// TimeShare is one slice of Figure 5 or 6: the estimated fraction of
// fleet-wide (de)serialization time spent on a slice.
type TimeShare struct {
	Slice     Slice
	CostPerB  float64 // measured cost per byte (arbitrary unit, e.g. ns/B)
	TimeShare float64
}

// EstimateTimeShares combines the slices' byte shares with measured
// per-byte costs (from the project's own microbenchmarks, as §3.6.4
// prescribes) into time shares. costPerByte must return the cost of
// handling one byte of a slice's data.
func EstimateTimeShares(slices []Slice, costPerByte func(Slice) float64) []TimeShare {
	out := make([]TimeShare, len(slices))
	var total float64
	for i, s := range slices {
		c := costPerByte(s)
		out[i] = TimeShare{Slice: s, CostPerB: c}
		total += s.ByteShare * c
	}
	if total == 0 {
		return out
	}
	for i := range out {
		out[i].TimeShare = out[i].Slice.ByteShare * out[i].CostPerB / total
	}
	return out
}

// FastShare returns the fraction of estimated time spent on slices whose
// measured throughput exceeds the given bytes-per-cost threshold — the
// paper's "only 14% of time is spent deserializing protobuf data at
// higher than 1 GB/s" style statistic.
func FastShare(ts []TimeShare, maxCostPerB float64) float64 {
	var fast float64
	for _, t := range ts {
		if t.CostPerB <= maxCostPerB {
			fast += t.TimeShare
		}
	}
	return fast
}
