package fleet

import (
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
)

// TypeKey identifies a field-type slice (kind + repeatedness), the
// granularity of Figures 4a and 4b.
type TypeKey struct {
	Kind     schema.Kind
	Repeated bool
}

// Sampler is the protobufz analogue (§3.1.2): it samples top-level
// messages and records the structure statistics the fleet study reports —
// message sizes, field counts and bytes by type, bytes-field sizes, varint
// sizes, field-number usage density, and depth. It is used both to verify
// that generated benchmarks match the fleet distributions and to let
// downstream users profile their own workloads.
type Sampler struct {
	Messages uint64

	MessageSizeCounts []uint64 // per SizeBucketBounds bucket
	MessageSizeBytes  []uint64

	FieldCounts map[TypeKey]uint64
	FieldBytes  map[TypeKey]uint64 // encoded bytes (tag + value)

	BytesFieldCounts []uint64 // per BytesFieldBucketBounds bucket
	BytesFieldBytes  []uint64

	VarintSizeBytes [10]uint64 // encoded bytes by varint value size

	// DensityCounts buckets per-message-instance field-number usage
	// density, weighted by observed messages (Figure 7 buckets).
	DensityCounts []uint64

	// BytesAtDepth records encoded bytes by nesting depth (§3.8), index
	// 0 = top level.
	BytesAtDepth []uint64
}

// NewSampler creates an empty sampler.
func NewSampler() *Sampler {
	return &Sampler{
		MessageSizeCounts: make([]uint64, len(SizeBucketBounds)),
		MessageSizeBytes:  make([]uint64, len(SizeBucketBounds)),
		FieldCounts:       make(map[TypeKey]uint64),
		FieldBytes:        make(map[TypeKey]uint64),
		BytesFieldCounts:  make([]uint64, len(BytesFieldBucketBounds)),
		BytesFieldBytes:   make([]uint64, len(BytesFieldBucketBounds)),
		DensityCounts:     make([]uint64, len(FieldDensity())),
	}
}

// bucketIndex returns the SizeBucketBounds bucket for size n.
func bucketIndex(n uint64) int {
	for i, b := range SizeBucketBounds {
		if n >= b[0] && (b[1] == Unbounded || n <= b[1]) {
			return i
		}
	}
	return len(SizeBucketBounds) - 1
}

// bytesFieldBucketIndex returns the BytesFieldBucketBounds bucket for a
// bytes-like field of size n.
func bytesFieldBucketIndex(n uint64) int {
	for i, b := range BytesFieldBucketBounds {
		if n >= b[0] && (b[1] == Unbounded || n <= b[1]) {
			return i
		}
	}
	return len(BytesFieldBucketBounds) - 1
}

// densityIndex returns the Figure 7 bucket for a density value.
func densityIndex(d float64) int {
	buckets := FieldDensity()
	for i, b := range buckets {
		if d >= b.Lo && d < b.Hi {
			return i
		}
	}
	return len(buckets) - 1
}

// SampleTopLevel records one top-level message and its complete sub-tree,
// as protobufz does when a message is selected.
func (s *Sampler) SampleTopLevel(m *dynamic.Message) {
	s.Messages++
	size := uint64(codec.Size(m))
	idx := bucketIndex(size)
	s.MessageSizeCounts[idx]++
	s.MessageSizeBytes[idx] += size
	s.sampleMessage(m, 0)
}

func (s *Sampler) sampleMessage(m *dynamic.Message, depth int) {
	for len(s.BytesAtDepth) <= depth {
		s.BytesAtDepth = append(s.BytesAtDepth, 0)
	}
	t := m.Type()
	present := 0
	for _, f := range t.Fields {
		if !m.Has(f.Number) {
			continue
		}
		present++
		key := TypeKey{f.Kind, f.Repeated()}
		tagSize := uint64(wire.SizeTag(f.Number))
		switch {
		case f.Kind == schema.KindMessage:
			// Sub-messages are accounted via their contained fields
			// (Figure 4a note); recurse.
			subs := []*dynamic.Message{}
			if f.Repeated() {
				subs = m.RepeatedMessages(f.Number)
			} else if sub := m.GetMessage(f.Number); sub != nil {
				subs = append(subs, sub)
			}
			for _, sub := range subs {
				s.sampleMessage(sub, depth+1)
			}
		case f.Kind.Class() == schema.ClassBytesLike:
			var blobs [][]byte
			if f.Repeated() {
				blobs = m.RepeatedBytes(f.Number)
			} else {
				blobs = [][]byte{m.GetBytes(f.Number)}
			}
			for _, b := range blobs {
				n := uint64(len(b))
				s.FieldCounts[key]++
				enc := tagSize + uint64(wire.SizeVarint(n)) + n
				s.FieldBytes[key] += enc
				bi := bytesFieldBucketIndex(n)
				s.BytesFieldCounts[bi]++
				s.BytesFieldBytes[bi] += n
				s.BytesAtDepth[depth] += enc
			}
		default:
			var vals []uint64
			if f.Repeated() {
				vals = m.RepeatedScalarBits(f.Number)
			} else {
				vals = []uint64{m.ScalarBits(f.Number)}
			}
			for _, bits := range vals {
				s.FieldCounts[key]++
				enc := tagSize + s.scalarEncSize(f, bits)
				s.FieldBytes[key] += enc
				s.BytesAtDepth[depth] += enc
			}
		}
	}
	if r := t.FieldNumberRange(); r > 0 {
		s.DensityCounts[densityIndex(float64(present)/float64(r))]++
	}
}

// scalarEncSize returns the encoded value size, recording varint sizes.
func (s *Sampler) scalarEncSize(f *schema.Field, bits uint64) uint64 {
	switch f.Kind {
	case schema.KindFloat, schema.KindFixed32, schema.KindSfixed32:
		return 4
	case schema.KindDouble, schema.KindFixed64, schema.KindSfixed64:
		return 8
	default:
		var v uint64
		switch f.Kind {
		case schema.KindSint32:
			v = wire.EncodeZigZag32(int32(bits))
		case schema.KindSint64:
			v = wire.EncodeZigZag64(int64(bits))
		case schema.KindInt32, schema.KindEnum:
			v = uint64(int64(int32(bits)))
		case schema.KindUint32:
			v = uint64(uint32(bits))
		case schema.KindBool:
			v = bits & 1
		default:
			v = bits
		}
		n := uint64(wire.SizeVarint(v))
		s.VarintSizeBytes[n-1] += n
		return n
	}
}

// MessageSizeShares returns the sampled Figure 3 distribution (by count).
func (s *Sampler) MessageSizeShares() []float64 {
	return shares(s.MessageSizeCounts)
}

// BytesFieldShares returns the sampled Figure 4c distribution (by count).
func (s *Sampler) BytesFieldShares() []float64 {
	return shares(s.BytesFieldCounts)
}

// DensityShares returns the sampled Figure 7 distribution.
func (s *Sampler) DensityShares() []float64 {
	return shares(s.DensityCounts)
}

// FieldCountShares returns the sampled Figure 4a distribution.
func (s *Sampler) FieldCountShares() map[TypeKey]float64 {
	var total uint64
	for _, c := range s.FieldCounts {
		total += c
	}
	out := make(map[TypeKey]float64, len(s.FieldCounts))
	if total == 0 {
		return out
	}
	for k, c := range s.FieldCounts {
		out[k] = float64(c) / float64(total)
	}
	return out
}

// FieldByteShares returns the sampled Figure 4b distribution.
func (s *Sampler) FieldByteShares() map[TypeKey]float64 {
	var total uint64
	for _, c := range s.FieldBytes {
		total += c
	}
	out := make(map[TypeKey]float64, len(s.FieldBytes))
	if total == 0 {
		return out
	}
	for k, c := range s.FieldBytes {
		out[k] = float64(c) / float64(total)
	}
	return out
}

// DepthCoverage returns the smallest depth d such that at least quantile
// of all sampled bytes lie at depth ≤ d (1-indexed like the paper: top
// level = depth 1).
func (s *Sampler) DepthCoverage(quantile float64) int {
	var total uint64
	for _, b := range s.BytesAtDepth {
		total += b
	}
	if total == 0 {
		return 1
	}
	var cum uint64
	for d, b := range s.BytesAtDepth {
		cum += b
		if float64(cum) >= quantile*float64(total) {
			return d + 1
		}
	}
	return len(s.BytesAtDepth)
}

func shares(counts []uint64) []float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	out := make([]float64, len(counts))
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(total)
	}
	return out
}
