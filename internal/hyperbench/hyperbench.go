// Package hyperbench generates HyperProtoBench-style benchmark suites
// (§5.2 of the paper): for each of six service profiles (bench0…bench5,
// the five heaviest deserialization users and five heaviest serialization
// users at Google, which overlap into six distinct services here), it fits
// a message-shape distribution and samples a .proto schema plus a batch of
// populated messages representative of that service.
//
// We cannot sample Google's production fleet; profiles are instead seeded
// from the published fleet distributions in package fleet, with per-service
// emphasis (string-heavy storage services, varint-heavy analytics events,
// deeply nested configuration trees, …) chosen to span the same diversity
// the paper's Figures 12-13 show across bench0-bench5.
package hyperbench

import (
	"fmt"
	"math/rand"

	"protoacc/internal/fleet"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/protoparse"
	"protoacc/internal/pb/schema"
)

// Profile describes one synthetic service's protobuf usage shape.
type Profile struct {
	Name string
	Seed int64

	// Schema shape.
	NumTypes      int     // message types in the service's schema tree
	FieldsPerType int     // mean fields per type
	MaxDepth      int     // nesting depth bound
	Density       float64 // defined fields / field-number range target
	SubMsgProb    float64 // probability a field is a sub-message
	RepeatedProb  float64
	PackedProb    float64

	// Value shape.
	StringWeight float64 // relative weight of bytes-like fields
	VarintWeight float64 // relative weight of varint-like fields
	FixedWeight  float64 // relative weight of float/double/fixed fields
	// StringSizes overrides the fleet bytes-field size distribution when
	// non-nil (services differ greatly here).
	StringSizes []fleet.SizeBucket
	// PresenceProb is per-field population probability (fleet: most
	// messages populate < 52% of defined fields, §3.9).
	PresenceProb float64
	// TargetSizes is the top-level encoded-size distribution to aim for.
	TargetSizes []fleet.SizeBucket

	// Messages is the number of messages in the generated batch.
	Messages int
}

// Profiles returns the six service profiles, bench0…bench5.
func Profiles() []Profile {
	base := Profile{
		NumTypes:      8,
		FieldsPerType: 9,
		MaxDepth:      4,
		Density:       0.65,
		SubMsgProb:    0.15,
		RepeatedProb:  0.2,
		PackedProb:    0.5,
		StringWeight:  0.3,
		VarintWeight:  0.5,
		FixedWeight:   0.2,
		PresenceProb:  0.5,
		TargetSizes:   fleet.MessageSizes(),
		Messages:      192,
	}
	mk := func(name string, seed int64, mut func(*Profile)) Profile {
		p := base
		p.Name = name
		p.Seed = seed
		mut(&p)
		return p
	}
	return []Profile{
		// bench0: storage/logging service — large string-heavy records.
		mk("bench0", 100, func(p *Profile) {
			p.StringWeight, p.VarintWeight, p.FixedWeight = 0.6, 0.3, 0.1
			p.StringSizes = []fleet.SizeBucket{
				{Lo: 65, Hi: 128, Share: 0.3}, {Lo: 129, Hi: 512, Share: 0.4},
				{Lo: 513, Hi: 2048, Share: 0.25}, {Lo: 2049, Hi: 4096, Share: 0.05},
			}
			p.TargetSizes = tailHeavySizes()
		}),
		// bench1: analytics/event service — many small varint fields with
		// a few mid-sized payload strings.
		mk("bench1", 101, func(p *Profile) {
			p.StringWeight, p.VarintWeight, p.FixedWeight = 0.15, 0.7, 0.15
			p.FieldsPerType = 14
			p.PresenceProb = 0.65
		}),
		// bench2: configuration service — deeply nested small messages
		// carrying path/name strings.
		mk("bench2", 102, func(p *Profile) {
			p.MaxDepth = 9
			p.SubMsgProb = 0.35
			p.NumTypes = 14
			p.FieldsPerType = 5
			p.StringSizes = []fleet.SizeBucket{
				{Lo: 9, Hi: 64, Share: 0.8}, {Lo: 65, Hi: 512, Share: 0.2},
			}
		}),
		// bench3: media metadata — mixed with large blobs.
		mk("bench3", 103, func(p *Profile) {
			p.StringWeight = 0.45
			p.StringSizes = []fleet.SizeBucket{
				{Lo: 9, Hi: 32, Share: 0.4}, {Lo: 513, Hi: 2048, Share: 0.3},
				{Lo: 8193, Hi: 32768, Share: 0.3},
			}
			p.TargetSizes = tailHeavySizes()
			p.Messages = 96
		}),
		// bench4: RPC front-end — tiny sparse request/response messages.
		mk("bench4", 104, func(p *Profile) {
			p.PresenceProb = 0.3
			p.Density = 0.4
			p.FieldsPerType = 7
			p.StringSizes = []fleet.SizeBucket{
				{Lo: 9, Hi: 32, Share: 0.5}, {Lo: 33, Hi: 128, Share: 0.5},
			}
			p.Messages = 384
		}),
		// bench5: ML feature store — repeated packed numeric vectors plus
		// feature-name strings.
		mk("bench5", 105, func(p *Profile) {
			p.RepeatedProb = 0.5
			p.PackedProb = 0.8
			p.FixedWeight, p.VarintWeight, p.StringWeight = 0.4, 0.45, 0.15
			p.StringSizes = []fleet.SizeBucket{
				{Lo: 129, Hi: 2048, Share: 1.0},
			}
		}),
	}
}

// tailHeavySizes shifts the fleet size distribution toward larger
// messages (storage-style services).
func tailHeavySizes() []fleet.SizeBucket {
	return []fleet.SizeBucket{
		{Lo: 129, Hi: 512, Share: 0.35},
		{Lo: 513, Hi: 2048, Share: 0.35},
		{Lo: 2049, Hi: 8192, Share: 0.22},
		{Lo: 8193, Hi: 32768, Share: 0.07},
		{Lo: 32769, Hi: fleet.Unbounded, Share: 0.01},
	}
}

// Benchmark is one generated suite: a schema, its .proto source, and a
// batch of populated messages with their wire encodings.
type Benchmark struct {
	Profile  Profile
	Root     *schema.Message
	File     *schema.File
	Source   string // .proto text
	Messages []*dynamic.Message
	Wire     [][]byte

	TotalWireBytes uint64
}

// Generate builds the benchmark for a profile. Generation is
// deterministic per profile seed.
func Generate(p Profile) (*Benchmark, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	g := &generator{p: p, rng: rng}
	root := g.genSchema()
	file := &schema.File{
		Path:     p.Name + ".proto",
		Package:  "hyperprotobench." + p.Name,
		Syntax:   "proto2",
		Messages: []*schema.Message{root},
	}
	src := protoparse.Format(file)
	// Validate the emitted schema parses back (the generated .proto is a
	// deliverable, not just documentation).
	if _, err := protoparse.Parse(file.Path, src); err != nil {
		return nil, fmt.Errorf("hyperbench: generated schema invalid: %w", err)
	}
	b := &Benchmark{Profile: p, Root: root, File: file, Source: src}
	for i := 0; i < p.Messages; i++ {
		m := g.genMessage(root)
		w, err := codec.Marshal(m)
		if err != nil {
			return nil, err
		}
		b.Messages = append(b.Messages, m)
		b.Wire = append(b.Wire, w)
		b.TotalWireBytes += uint64(len(w))
	}
	return b, nil
}

// GenerateAll builds all six benchmarks.
func GenerateAll() ([]*Benchmark, error) {
	var out []*Benchmark
	for _, p := range Profiles() {
		b, err := Generate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

type generator struct {
	p       p
	rng     *rand.Rand
	types   []*schema.Message
	counter int
}

// p aliases Profile to keep struct literal lines short.
type p = Profile

var varintKinds = []schema.Kind{
	schema.KindInt32, schema.KindInt64, schema.KindUint32,
	schema.KindUint64, schema.KindSint32, schema.KindSint64,
	schema.KindBool, schema.KindEnum,
}

var fixedKinds = []schema.Kind{
	schema.KindFloat, schema.KindDouble, schema.KindFixed32,
	schema.KindFixed64, schema.KindSfixed32, schema.KindSfixed64,
}

// pickKind draws a scalar kind per the profile's weights.
func (g *generator) pickKind() schema.Kind {
	total := g.p.StringWeight + g.p.VarintWeight + g.p.FixedWeight
	r := g.rng.Float64() * total
	switch {
	case r < g.p.StringWeight:
		if g.rng.Intn(3) == 0 {
			return schema.KindBytes
		}
		return schema.KindString
	case r < g.p.StringWeight+g.p.VarintWeight:
		return varintKinds[g.rng.Intn(len(varintKinds))]
	default:
		return fixedKinds[g.rng.Intn(len(fixedKinds))]
	}
}

// genSchema builds the service's type tree and returns the root type.
func (g *generator) genSchema() *schema.Message {
	// Create the pool of types first so sub-message fields can point
	// anywhere below themselves (acyclic; recursion is exercised by unit
	// tests, not by the fleet-shaped benches).
	n := g.p.NumTypes
	types := make([]*schema.Message, n)
	for i := range types {
		types[i] = &schema.Message{Name: fmt.Sprintf("%sT%d", titleName(g.p.Name), i)}
	}
	g.types = types
	for i, t := range types {
		depthLeft := g.p.MaxDepth - depthOf(i, n, g.p.MaxDepth)
		fields := g.genFields(i, depthLeft > 1)
		if err := t.SetFields(fields); err != nil {
			panic(fmt.Sprintf("hyperbench: internal schema error: %v", err))
		}
	}
	return types[0]
}

// depthOf spreads types across depth levels: type 0 is the root, later
// types sit deeper.
func depthOf(i, n, maxDepth int) int {
	if n <= 1 {
		return 0
	}
	return i * maxDepth / n
}

func titleName(s string) string {
	if s == "" {
		return "B"
	}
	return string(s[0]-'a'+'A') + s[1:]
}

// genFields draws the field set for type index ti.
func (g *generator) genFields(ti int, allowSub bool) []*schema.Field {
	nf := 1 + g.rng.Intn(2*g.p.FieldsPerType-1) // mean ≈ FieldsPerType
	// Choose a field-number range giving the target density.
	rangeSize := int32(float64(nf)/g.p.Density) + 1
	if rangeSize < int32(nf) {
		rangeSize = int32(nf)
	}
	used := map[int32]bool{}
	var fields []*schema.Field
	hasSub := false
	canSub := allowSub && ti+1 < len(g.types)
	for len(fields) < nf {
		num := 1 + g.rng.Int31n(rangeSize)
		if used[num] {
			continue
		}
		used[num] = true
		f := &schema.Field{Name: fmt.Sprintf("f%d", num), Number: num}
		if canSub && g.rng.Float64() < g.p.SubMsgProb {
			f.Kind = schema.KindMessage
			// Point at a strictly deeper type to stay acyclic.
			f.Message = g.types[ti+1+g.rng.Intn(len(g.types)-ti-1)]
			hasSub = true
		} else {
			f.Kind = g.pickKind()
		}
		if g.rng.Float64() < g.p.RepeatedProb {
			f.Label = schema.LabelRepeated
			if f.Kind != schema.KindMessage && f.Kind.Class() != schema.ClassBytesLike &&
				g.rng.Float64() < g.p.PackedProb {
				f.Packed = true
			}
		}
		fields = append(fields, f)
	}
	// Keep the type tree connected: every non-leaf type carries at least
	// one sub-message field, so the suite actually exercises nesting.
	if canSub && !hasSub {
		num := rangeSize + 1
		for used[num] {
			num++
		}
		fields = append(fields, &schema.Field{
			Name:    fmt.Sprintf("f%d", num),
			Number:  num,
			Kind:    schema.KindMessage,
			Message: g.types[ti+1+g.rng.Intn(len(g.types)-ti-1)],
		})
	}
	return fields
}

// sampleBucket draws a size from a bucket distribution.
func (g *generator) sampleBucket(buckets []fleet.SizeBucket) uint64 {
	var total float64
	for _, b := range buckets {
		total += b.Share
	}
	r := g.rng.Float64() * total
	for _, b := range buckets {
		if r < b.Share {
			hi := b.Hi
			if hi == fleet.Unbounded {
				hi = b.Lo * 4
			}
			if hi <= b.Lo {
				return b.Lo
			}
			return b.Lo + uint64(g.rng.Int63n(int64(hi-b.Lo+1)))
		}
		r -= b.Share
	}
	last := buckets[len(buckets)-1]
	return last.Lo
}

// stringSize draws a bytes-like field payload size.
func (g *generator) stringSize() uint64 {
	buckets := g.p.StringSizes
	if buckets == nil {
		buckets = fleet.BytesFieldSizes()
	}
	return g.sampleBucket(buckets)
}

// varintBits draws a value whose encoded size follows the fleet varint
// size histogram.
func (g *generator) varintBits(k schema.Kind) uint64 {
	shares := fleet.VarintSizeShares()
	r := g.rng.Float64()
	size := 1
	for i, s := range shares {
		if r < s {
			size = i + 1
			break
		}
		r -= s
	}
	if k == schema.KindBool {
		return uint64(g.rng.Intn(2))
	}
	// A value with encoded size `size`: top bit within that size range.
	bits := uint(7*size - 1)
	if bits > 62 {
		bits = 62
	}
	v := uint64(1)<<bits | g.rng.Uint64()&(1<<bits-1)
	switch k {
	case schema.KindInt32, schema.KindSint32, schema.KindEnum:
		return uint64(int64(int32(v)))
	case schema.KindUint32:
		return uint64(uint32(v))
	default:
		return v
	}
}

// genMessage populates one top-level message aiming for a size drawn from
// the profile's target distribution. Population is budget-driven: the
// target size is spent across fields and down the sub-message tree, so
// message sizes track the target distribution instead of fanning out
// exponentially with nesting.
func (g *generator) genMessage(root *schema.Message) *dynamic.Message {
	target := int64(g.sampleBucket(g.p.TargetSizes))
	budget := target
	m := g.populate(root, g.p.MaxDepth, &budget)
	// Top up if population stopped short of the target (sparse schemas).
	for i := 0; int64(codec.Size(m)) < target && i < 64; i++ {
		if !g.grow(m, target-int64(codec.Size(m))) {
			break
		}
	}
	return m
}

// populate fills fields with the profile's presence probability, spending
// from the shared size budget.
func (g *generator) populate(t *schema.Message, depthLeft int, budget *int64) *dynamic.Message {
	m := dynamic.New(t)
	for _, f := range t.Fields {
		if g.rng.Float64() >= g.p.PresenceProb {
			continue
		}
		count := 1
		if f.Repeated() {
			count = 1 + g.rng.Intn(6)
		}
		for i := 0; i < count; i++ {
			if *budget <= 0 && m.Has(f.Number) {
				break
			}
			g.addValue(m, f, depthLeft, budget)
		}
	}
	return m
}

func (g *generator) addValue(m *dynamic.Message, f *schema.Field, depthLeft int, budget *int64) {
	switch {
	case f.Kind == schema.KindMessage:
		if depthLeft <= 1 || *budget <= 0 {
			return
		}
		*budget -= 2 // key + length
		sub := g.populate(f.Message, depthLeft-1, budget)
		if f.Repeated() {
			m.AddMessage(f.Number).Merge(sub)
		} else {
			m.SetMessage(f.Number, sub)
		}
	case f.Kind.Class() == schema.ClassBytesLike:
		n := int64(g.stringSize())
		// Clamp payloads to the remaining budget; presence survives tiny
		// targets with a short payload.
		if rem := *budget; n > rem {
			if rem > 0 {
				n = rem
			} else {
				n = int64(g.rng.Intn(8))
			}
		}
		b := g.blob(uint64(n))
		*budget -= n + 2
		if f.Repeated() {
			m.AddBytes(f.Number, b)
		} else {
			m.SetBytes(f.Number, b)
		}
	default:
		var bits uint64
		if f.Kind.IsVarint() {
			bits = g.varintBits(f.Kind)
		} else {
			bits = g.rng.Uint64()
			switch f.Kind {
			case schema.KindFloat, schema.KindFixed32:
				bits = uint64(uint32(bits))
			case schema.KindSfixed32:
				// Signed 32-bit kinds are stored sign-extended.
				bits = uint64(int64(int32(bits)))
			}
		}
		*budget -= 6
		if f.Repeated() {
			m.AddScalarBits(f.Number, bits)
		} else {
			m.SetScalarBits(f.Number, bits)
		}
	}
}

// grow enlarges the message toward its size target by roughly `room`
// bytes; returns false when no growable field exists.
func (g *generator) grow(m *dynamic.Message, room int64) bool {
	t := m.Type()
	// Prefer appending to repeated fields or extending a bytes field.
	var candidates []*schema.Field
	for _, f := range t.Fields {
		if f.Repeated() || f.Kind.Class() == schema.ClassBytesLike {
			candidates = append(candidates, f)
		}
	}
	if len(candidates) == 0 {
		// Try growing through a sub-message.
		for _, f := range t.Fields {
			if f.Kind == schema.KindMessage && !f.Repeated() && m.GetMessage(f.Number) != nil {
				return g.grow(m.GetMessage(f.Number), room)
			}
		}
		return false
	}
	f := candidates[g.rng.Intn(len(candidates))]
	switch {
	case f.Kind.Class() == schema.ClassBytesLike && !f.Repeated():
		// Extend the existing payload.
		n := int64(g.stringSize())
		if n > room {
			n = room
		}
		if n <= 0 {
			n = 1
		}
		cur := m.GetBytes(f.Number)
		m.SetBytes(f.Number, append(append([]byte(nil), cur...), g.blob(uint64(n))...))
	default:
		budget := room
		g.addValue(m, f, 2, &budget)
	}
	return true
}

// blob produces n compressible-ish bytes (ASCII mix, like logged text).
func (g *generator) blob(n uint64) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + g.rng.Intn(95))
	}
	return b
}
