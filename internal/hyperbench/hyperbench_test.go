package hyperbench

import (
	"bytes"
	"testing"

	"protoacc/internal/fleet"
	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/protoparse"
)

func TestGenerateAllSixBenches(t *testing.T) {
	benches, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 6 {
		t.Fatalf("got %d benches, want 6 (bench0..bench5)", len(benches))
	}
	for i, b := range benches {
		wantName := "bench" + string(rune('0'+i))
		if b.Profile.Name != wantName {
			t.Errorf("bench %d name = %s", i, b.Profile.Name)
		}
		if len(b.Messages) != b.Profile.Messages || len(b.Wire) != len(b.Messages) {
			t.Errorf("%s: %d messages, %d wire", b.Profile.Name, len(b.Messages), len(b.Wire))
		}
		if b.TotalWireBytes == 0 {
			t.Errorf("%s: empty workload", b.Profile.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profiles()[0]
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source || len(a.Wire) != len(b.Wire) {
		t.Fatal("generation not deterministic")
	}
	for i := range a.Wire {
		if !bytes.Equal(a.Wire[i], b.Wire[i]) {
			t.Fatalf("message %d differs between runs", i)
		}
	}
}

func TestWireMatchesMessages(t *testing.T) {
	b, err := Generate(Profiles()[1])
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range b.Messages {
		w, err := codec.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w, b.Wire[i]) {
			t.Fatalf("message %d wire mismatch", i)
		}
		back, err := codec.Unmarshal(b.Root, b.Wire[i])
		if err != nil || !m.Equal(back) {
			t.Fatalf("message %d round trip failed: %v", i, err)
		}
	}
}

func TestEmittedProtoParses(t *testing.T) {
	for _, p := range Profiles() {
		b, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := protoparse.Parse(p.Name+".proto", b.Source)
		if err != nil {
			t.Fatalf("%s: emitted .proto unparseable: %v", p.Name, err)
		}
		if len(f.Messages) == 0 {
			t.Fatalf("%s: no messages in emitted schema", p.Name)
		}
	}
}

func TestProfilesSpanDiversity(t *testing.T) {
	benches, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	stats := make([]*fleet.Sampler, len(benches))
	for i, b := range benches {
		s := fleet.NewSampler()
		for _, m := range b.Messages {
			s.SampleTopLevel(m)
		}
		stats[i] = s
	}
	// bench0 (storage) should be more bytes-heavy than bench1 (events).
	bytesShare := func(s *fleet.Sampler) float64 {
		var sh float64
		for k, v := range s.FieldByteShares() {
			if k.Kind.Class() == 0 { // ClassBytesLike
				sh += v
			}
		}
		return sh
	}
	if bytesShare(stats[0]) <= bytesShare(stats[1]) {
		t.Errorf("bench0 bytes share (%f) should exceed bench1's (%f)",
			bytesShare(stats[0]), bytesShare(stats[1]))
	}
	// bench2 (config) should nest deeper than bench4 (RPC).
	if stats[2].DepthCoverage(0.999) <= stats[4].DepthCoverage(0.999) {
		t.Errorf("bench2 depth %d should exceed bench4 depth %d",
			stats[2].DepthCoverage(0.999), stats[4].DepthCoverage(0.999))
	}
	// bench4 (RPC) messages should be small: majority ≤ 512 B.
	sizeShares := stats[4].MessageSizeShares()
	small := sizeShares[0] + sizeShares[1] + sizeShares[2] + sizeShares[3]
	if small < 0.7 {
		t.Errorf("bench4 small-message share = %f", small)
	}
	// bench0 (storage) should carry more average bytes per message than
	// bench4.
	avg := func(b *Benchmark) float64 {
		return float64(b.TotalWireBytes) / float64(len(b.Messages))
	}
	if avg(benches[0]) <= avg(benches[4]) {
		t.Errorf("bench0 avg size (%f) should exceed bench4's (%f)",
			avg(benches[0]), avg(benches[4]))
	}
}

func TestDepthsWithinFleetBounds(t *testing.T) {
	benches, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	maxDepth := fleet.MessageDepths().Max
	for _, b := range benches {
		s := fleet.NewSampler()
		for _, m := range b.Messages {
			s.SampleTopLevel(m)
		}
		if d := s.DepthCoverage(1.0); d > maxDepth {
			t.Errorf("%s: depth %d exceeds fleet max %d", b.Profile.Name, d, maxDepth)
		}
	}
}

func TestDensityMostlyAboveSixtyFourth(t *testing.T) {
	// The generated schemas must preserve the §3.7 density property that
	// favours the ADT design.
	benches, err := GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range benches {
		s := fleet.NewSampler()
		for _, m := range b.Messages {
			s.SampleTopLevel(m)
		}
		shares := s.DensityShares()
		if shares[0] > 0.5 {
			t.Errorf("%s: %f of messages in the lowest density bucket", b.Profile.Name, shares[0])
		}
	}
}
