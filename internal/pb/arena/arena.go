// Package arena implements software arena allocation for protobuf message
// construction (§2.3 of the paper): a pre-allocated chunk of memory from
// which per-message allocations are a pointer increment, eliminating
// per-object construction/destruction overheads. The host library uses it
// for batch workloads, and its cycle-cost contrast with heap allocation is
// part of the CPU baseline model.
package arena

import (
	"errors"
	"fmt"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
)

// ErrInvalidAlloc reports an allocation request no arena can satisfy: a
// negative size, or one past MaxAlloc. Sizes can derive from
// length-prefixed wire data, so the arena returns the error instead of
// panicking the process on untrusted input.
var ErrInvalidAlloc = errors.New("arena: invalid allocation size")

// MaxAlloc bounds a single allocation (1 GiB). Wire-derived lengths past
// this are corrupt or hostile, not real messages.
const MaxAlloc = 1 << 30

// Arena is a region allocator for message construction. It is not
// goroutine-safe; like C++ protobuf arenas, each arena serves one
// construction context.
type Arena struct {
	blockSize int
	buf       []byte // current block
	off       int
	allocated int64 // total bytes handed out
	blocks    int   // blocks created
	messages  []*dynamic.Message
}

// DefaultBlockSize is the initial block size used by New.
const DefaultBlockSize = 64 << 10

// New creates an arena with the default block size.
func New() *Arena { return &Arena{blockSize: DefaultBlockSize} }

// NewWithBlockSize creates an arena whose blocks are blockSize bytes.
func NewWithBlockSize(blockSize int) (*Arena, error) {
	if blockSize <= 0 || blockSize > MaxAlloc {
		return nil, fmt.Errorf("%w: block size %d", ErrInvalidAlloc, blockSize)
	}
	return &Arena{blockSize: blockSize}, nil
}

// Alloc returns a fresh byte slice of length n from the arena, or
// ErrInvalidAlloc for a negative or oversized n.
func (a *Arena) Alloc(n int) ([]byte, error) {
	if n < 0 || n > MaxAlloc {
		return nil, fmt.Errorf("%w: %d bytes", ErrInvalidAlloc, n)
	}
	// Align to 8 to mirror the pointer-bump behaviour of the C++ arena.
	aligned := (n + 7) &^ 7
	if a.off+aligned > len(a.buf) {
		size := a.blockSize
		if aligned > size {
			size = aligned
		}
		a.buf = make([]byte, size)
		a.off = 0
		a.blocks++
	}
	b := a.buf[a.off : a.off+n : a.off+n]
	a.off += aligned
	a.allocated += int64(aligned)
	return b, nil
}

// NewMessage creates a message of type t owned by the arena. Owned
// messages are released together by Reset, amortizing destruction cost.
func (a *Arena) NewMessage(t *schema.Message) *dynamic.Message {
	m := dynamic.New(t)
	a.messages = append(a.messages, m)
	return m
}

// Bytes copies v into arena storage.
func (a *Arena) Bytes(v []byte) ([]byte, error) {
	b, err := a.Alloc(len(v))
	if err != nil {
		return nil, err
	}
	copy(b, v)
	return b, nil
}

// SpaceUsed returns the total bytes allocated from the arena so far.
func (a *Arena) SpaceUsed() int64 { return a.allocated }

// Blocks returns the number of blocks the arena has created.
func (a *Arena) Blocks() int { return a.blocks }

// OwnedMessages returns the number of messages constructed on the arena.
func (a *Arena) OwnedMessages() int { return len(a.messages) }

// Reset releases everything owned by the arena in one step — the
// constant-time destruction that motivates arena allocation.
func (a *Arena) Reset() {
	a.buf = nil
	a.off = 0
	a.allocated = 0
	a.blocks = 0
	a.messages = nil
}
