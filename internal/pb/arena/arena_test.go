package arena

import (
	"testing"

	"protoacc/internal/pb/schema"
)

func TestAllocBasic(t *testing.T) {
	a := New()
	b1 := a.Alloc(10)
	b2 := a.Alloc(20)
	if len(b1) != 10 || len(b2) != 20 {
		t.Fatal("wrong lengths")
	}
	for i := range b1 {
		b1[i] = 0xaa
	}
	for _, c := range b2 {
		if c != 0 {
			t.Fatal("allocations overlap")
		}
	}
	if a.SpaceUsed() != 16+24 { // 8-byte aligned
		t.Errorf("SpaceUsed = %d", a.SpaceUsed())
	}
	if a.Blocks() != 1 {
		t.Errorf("Blocks = %d", a.Blocks())
	}
}

func TestAllocNewBlock(t *testing.T) {
	a := NewWithBlockSize(64)
	a.Alloc(48)
	a.Alloc(48) // doesn't fit: new block
	if a.Blocks() != 2 {
		t.Errorf("Blocks = %d", a.Blocks())
	}
	// Oversized allocation gets its own block.
	big := a.Alloc(1000)
	if len(big) != 1000 || a.Blocks() != 3 {
		t.Errorf("big alloc: len=%d blocks=%d", len(big), a.Blocks())
	}
}

func TestAllocZero(t *testing.T) {
	a := New()
	if b := a.Alloc(0); len(b) != 0 {
		t.Error("Alloc(0) should be empty")
	}
}

func TestAllocCapClamped(t *testing.T) {
	a := New()
	b := a.Alloc(5)
	if cap(b) != 5 {
		t.Errorf("cap = %d, want 5 (appends must not scribble into the arena)", cap(b))
	}
}

func TestBytesCopies(t *testing.T) {
	a := New()
	src := []byte("hello")
	cp := a.Bytes(src)
	src[0] = 'X'
	if string(cp) != "hello" {
		t.Error("Bytes should copy")
	}
}

func TestMessagesAndReset(t *testing.T) {
	a := New()
	typ := schema.MustMessage("M", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	m := a.NewMessage(typ)
	m.SetInt32(1, 5)
	if a.OwnedMessages() != 1 {
		t.Errorf("OwnedMessages = %d", a.OwnedMessages())
	}
	a.Alloc(100)
	a.Reset()
	if a.OwnedMessages() != 0 || a.SpaceUsed() != 0 || a.Blocks() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative alloc": func() { New().Alloc(-1) },
		"bad block size": func() { NewWithBlockSize(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
