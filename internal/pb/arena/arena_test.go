package arena

import (
	"errors"
	"testing"

	"protoacc/internal/pb/schema"
)

// alloc is the test shorthand for allocations that must succeed.
func alloc(t *testing.T, a *Arena, n int) []byte {
	t.Helper()
	b, err := a.Alloc(n)
	if err != nil {
		t.Fatalf("Alloc(%d): %v", n, err)
	}
	return b
}

func TestAllocBasic(t *testing.T) {
	a := New()
	b1 := alloc(t, a, 10)
	b2 := alloc(t, a, 20)
	if len(b1) != 10 || len(b2) != 20 {
		t.Fatal("wrong lengths")
	}
	for i := range b1 {
		b1[i] = 0xaa
	}
	for _, c := range b2 {
		if c != 0 {
			t.Fatal("allocations overlap")
		}
	}
	if a.SpaceUsed() != 16+24 { // 8-byte aligned
		t.Errorf("SpaceUsed = %d", a.SpaceUsed())
	}
	if a.Blocks() != 1 {
		t.Errorf("Blocks = %d", a.Blocks())
	}
}

func TestAllocNewBlock(t *testing.T) {
	a, err := NewWithBlockSize(64)
	if err != nil {
		t.Fatal(err)
	}
	alloc(t, a, 48)
	alloc(t, a, 48) // doesn't fit: new block
	if a.Blocks() != 2 {
		t.Errorf("Blocks = %d", a.Blocks())
	}
	// Oversized-for-the-block allocation gets its own block.
	big := alloc(t, a, 1000)
	if len(big) != 1000 || a.Blocks() != 3 {
		t.Errorf("big alloc: len=%d blocks=%d", len(big), a.Blocks())
	}
}

func TestAllocZero(t *testing.T) {
	a := New()
	if b := alloc(t, a, 0); len(b) != 0 {
		t.Error("Alloc(0) should be empty")
	}
}

func TestAllocCapClamped(t *testing.T) {
	a := New()
	b := alloc(t, a, 5)
	if cap(b) != 5 {
		t.Errorf("cap = %d, want 5 (appends must not scribble into the arena)", cap(b))
	}
}

func TestBytesCopies(t *testing.T) {
	a := New()
	src := []byte("hello")
	cp, err := a.Bytes(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 'X'
	if string(cp) != "hello" {
		t.Error("Bytes should copy")
	}
}

func TestMessagesAndReset(t *testing.T) {
	a := New()
	typ, err := schema.NewMessage("M", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	if err != nil {
		t.Fatal(err)
	}
	m := a.NewMessage(typ)
	m.SetInt32(1, 5)
	if a.OwnedMessages() != 1 {
		t.Errorf("OwnedMessages = %d", a.OwnedMessages())
	}
	alloc(t, a, 100)
	a.Reset()
	if a.OwnedMessages() != 0 || a.SpaceUsed() != 0 || a.Blocks() != 0 {
		t.Error("Reset incomplete")
	}
}

// TestInvalidRequestsError: sizes that can derive from untrusted wire
// lengths must come back as errors, never panics.
func TestInvalidRequestsError(t *testing.T) {
	a := New()
	if _, err := a.Alloc(-1); !errors.Is(err, ErrInvalidAlloc) {
		t.Errorf("Alloc(-1) err = %v, want ErrInvalidAlloc", err)
	}
	if _, err := a.Alloc(MaxAlloc + 1); !errors.Is(err, ErrInvalidAlloc) {
		t.Errorf("Alloc(MaxAlloc+1) err = %v, want ErrInvalidAlloc", err)
	}
	if _, err := a.Bytes(nil); err != nil {
		t.Errorf("Bytes(nil) err = %v", err)
	}
	for _, size := range []int{0, -4, MaxAlloc + 1} {
		if _, err := NewWithBlockSize(size); !errors.Is(err, ErrInvalidAlloc) {
			t.Errorf("NewWithBlockSize(%d) err = %v, want ErrInvalidAlloc", size, err)
		}
	}
}
