// Package codec implements the software serializer and deserializer between
// dynamic messages and the protobuf wire format. It is the reference
// implementation: the accelerator model's output is cross-checked against it
// byte-for-byte (serialization) and value-for-value (deserialization).
//
// Proto2 semantics are implemented: ascending-field-number output, a
// separate byte-size pass before serialization (the C++ library's ByteSize,
// which Figure 2 of the paper attributes 6% of protobuf cycles to), packed
// and unpacked repeated encodings (decoders accept either form for scalar
// fields), last-one-wins for singular scalars, recursive merge for repeated
// occurrences of a singular sub-message field, and unknown-field
// preservation.
package codec

import (
	"errors"
	"fmt"
	"math"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
)

// Errors returned by Unmarshal.
var (
	ErrTooDeep   = errors.New("codec: message nesting exceeds limit")
	ErrTrailing  = errors.New("codec: trailing garbage after group")
	ErrBadPacked = errors.New("codec: malformed packed field")
)

// MaxNestingDepth bounds decoder recursion. The paper observes (§3.8) that
// the maximum message depth seen fleet-wide is below 100; we use the same
// bound.
const MaxNestingDepth = 100

// Size returns the serialized size of m in bytes (the ByteSize operation).
func Size(m *dynamic.Message) int {
	n := 0
	for _, f := range m.Type().Fields {
		if !m.Has(f.Number) {
			continue
		}
		n += fieldSize(m, f)
	}
	return n + len(m.Unknown)
}

func scalarValueSize(f *schema.Field, bits uint64) int {
	switch {
	case f.Kind.IsZigZag():
		if f.Kind == schema.KindSint32 {
			return wire.SizeVarint(wire.EncodeZigZag32(int32(bits)))
		}
		return wire.SizeVarint(wire.EncodeZigZag64(int64(bits)))
	case f.Kind == schema.KindFloat || f.Kind == schema.KindFixed32 || f.Kind == schema.KindSfixed32:
		return 4
	case f.Kind == schema.KindDouble || f.Kind == schema.KindFixed64 || f.Kind == schema.KindSfixed64:
		return 8
	case f.Kind == schema.KindUint32 || f.Kind == schema.KindFixed32:
		return wire.SizeVarint(uint64(uint32(bits)))
	case f.Kind == schema.KindInt32 || f.Kind == schema.KindEnum:
		// Negative int32 values are sign-extended to 10 bytes on the wire.
		return wire.SizeVarint(uint64(int64(int32(bits))))
	case f.Kind == schema.KindBool:
		return 1
	default:
		return wire.SizeVarint(bits)
	}
}

func fieldSize(m *dynamic.Message, f *schema.Field) int {
	tag := wire.SizeTag(f.Number)
	switch {
	case f.Kind == schema.KindMessage:
		if f.Repeated() {
			n := 0
			for _, s := range m.RepeatedMessages(f.Number) {
				n += tag + wire.SizeBytes(Size(s))
			}
			return n
		}
		sub := m.GetMessage(f.Number)
		if sub == nil {
			return 0
		}
		return tag + wire.SizeBytes(Size(sub))
	case f.Kind.Class() == schema.ClassBytesLike:
		if f.Repeated() {
			n := 0
			for _, b := range m.RepeatedBytes(f.Number) {
				n += tag + wire.SizeBytes(len(b))
			}
			return n
		}
		return tag + wire.SizeBytes(len(m.GetBytes(f.Number)))
	case f.Repeated():
		vals := m.RepeatedScalarBits(f.Number)
		body := 0
		for _, v := range vals {
			body += scalarValueSize(f, v)
		}
		if f.Packed {
			return tag + wire.SizeBytes(body)
		}
		return tag*len(vals) + body
	default:
		return tag + scalarValueSize(f, m.ScalarBits(f.Number))
	}
}

// Marshal serializes m to the wire format.
func Marshal(m *dynamic.Message) ([]byte, error) {
	return MarshalAppend(make([]byte, 0, Size(m)), m)
}

// MarshalAppend serializes m, appending to b.
func MarshalAppend(b []byte, m *dynamic.Message) ([]byte, error) {
	for _, f := range m.Type().Fields {
		if !m.Has(f.Number) {
			continue
		}
		var err error
		b, err = appendField(b, m, f)
		if err != nil {
			return nil, err
		}
	}
	return append(b, m.Unknown...), nil
}

func appendScalarValue(b []byte, f *schema.Field, bits uint64) []byte {
	switch f.Kind {
	case schema.KindSint32:
		return wire.AppendVarint(b, wire.EncodeZigZag32(int32(bits)))
	case schema.KindSint64:
		return wire.AppendVarint(b, wire.EncodeZigZag64(int64(bits)))
	case schema.KindFloat, schema.KindFixed32, schema.KindSfixed32:
		return wire.AppendFixed32(b, uint32(bits))
	case schema.KindDouble, schema.KindFixed64, schema.KindSfixed64:
		return wire.AppendFixed64(b, bits)
	case schema.KindUint32:
		return wire.AppendVarint(b, uint64(uint32(bits)))
	case schema.KindInt32, schema.KindEnum:
		return wire.AppendVarint(b, uint64(int64(int32(bits))))
	case schema.KindBool:
		if bits != 0 {
			return append(b, 1)
		}
		return append(b, 0)
	default: // int64, uint64
		return wire.AppendVarint(b, bits)
	}
}

func appendField(b []byte, m *dynamic.Message, f *schema.Field) ([]byte, error) {
	switch {
	case f.Kind == schema.KindMessage:
		var subs []*dynamic.Message
		if f.Repeated() {
			subs = m.RepeatedMessages(f.Number)
		} else {
			sub := m.GetMessage(f.Number)
			if sub == nil {
				return b, nil
			}
			subs = []*dynamic.Message{sub}
		}
		for _, s := range subs {
			b = wire.AppendTag(b, f.Number, wire.TypeBytes)
			b = wire.AppendVarint(b, uint64(Size(s)))
			var err error
			b, err = MarshalAppend(b, s)
			if err != nil {
				return nil, err
			}
		}
		return b, nil
	case f.Kind.Class() == schema.ClassBytesLike:
		var vals [][]byte
		if f.Repeated() {
			vals = m.RepeatedBytes(f.Number)
		} else {
			vals = [][]byte{m.GetBytes(f.Number)}
		}
		for _, v := range vals {
			b = wire.AppendTag(b, f.Number, wire.TypeBytes)
			b = wire.AppendBytes(b, v)
		}
		return b, nil
	case f.Repeated():
		vals := m.RepeatedScalarBits(f.Number)
		if f.Packed {
			body := 0
			for _, v := range vals {
				body += scalarValueSize(f, v)
			}
			b = wire.AppendTag(b, f.Number, wire.TypeBytes)
			b = wire.AppendVarint(b, uint64(body))
			for _, v := range vals {
				b = appendScalarValue(b, f, v)
			}
			return b, nil
		}
		for _, v := range vals {
			b = wire.AppendTag(b, f.Number, f.Kind.WireType())
			b = appendScalarValue(b, f, v)
		}
		return b, nil
	default:
		b = wire.AppendTag(b, f.Number, f.Kind.WireType())
		return appendScalarValue(b, f, m.ScalarBits(f.Number)), nil
	}
}

// Unmarshal deserializes wire bytes into a fresh message of type t.
func Unmarshal(t *schema.Message, b []byte) (*dynamic.Message, error) {
	m := dynamic.New(t)
	if err := UnmarshalInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// UnmarshalInto deserializes wire bytes into m, merging with any existing
// contents (proto2 MergeFromCodedStream semantics).
func UnmarshalInto(m *dynamic.Message, b []byte) error {
	return unmarshal(m, b, MaxNestingDepth)
}

func unmarshal(m *dynamic.Message, b []byte, depth int) error {
	if depth <= 0 {
		return ErrTooDeep
	}
	t := m.Type()
	for len(b) > 0 {
		num, wt, n, err := wire.ReadTag(b)
		if err != nil {
			return fmt.Errorf("codec: %s: %w", t.Name, err)
		}
		f := t.FieldByNumber(num)
		if f == nil || !compatibleWireType(f, wt) {
			// Unknown (or wire-type-mismatched) field: preserve raw bytes.
			vn, err := wire.SkipValue(b[n:], num, wt)
			if err != nil {
				return fmt.Errorf("codec: %s: field %d: %w", t.Name, num, err)
			}
			m.Unknown = append(m.Unknown, b[:n+vn]...)
			b = b[n+vn:]
			continue
		}
		b = b[n:]
		b, err = readField(m, f, wt, b, depth)
		if err != nil {
			return fmt.Errorf("codec: %s.%s: %w", t.Name, f.Name, err)
		}
	}
	return nil
}

// compatibleWireType reports whether wt is an acceptable encoding for f:
// the field's natural wire type, or the packed/unpacked alternative for
// repeated scalars.
func compatibleWireType(f *schema.Field, wt wire.Type) bool {
	natural := f.Kind.WireType()
	if wt == natural {
		return true
	}
	// Repeated scalar fields accept the length-delimited (packed) form
	// regardless of the packed option, and vice versa.
	if f.Repeated() && f.Kind != schema.KindMessage && f.Kind.Class() != schema.ClassBytesLike {
		return wt == wire.TypeBytes || wt == natural
	}
	return false
}

func decodeScalar(f *schema.Field, b []byte) (bits uint64, n int, err error) {
	switch f.Kind.WireType() {
	case wire.TypeFixed32:
		v, n, err := wire.ReadFixed32(b)
		if f.Kind == schema.KindSfixed32 {
			// Signed 32-bit kinds are stored sign-extended.
			return uint64(int64(int32(v))), n, err
		}
		return uint64(v), n, err
	case wire.TypeFixed64:
		return wire.ReadFixed64(b)
	default:
		v, n, err := wire.ReadVarint(b)
		if err != nil {
			return 0, 0, err
		}
		switch f.Kind {
		case schema.KindSint32:
			return uint64(int64(wire.DecodeZigZag32(v))), n, nil
		case schema.KindSint64:
			return uint64(wire.DecodeZigZag64(v)), n, nil
		case schema.KindInt32, schema.KindEnum:
			return uint64(int64(int32(v))), n, nil
		case schema.KindUint32:
			return uint64(uint32(v)), n, nil
		case schema.KindBool:
			if v != 0 {
				return 1, n, nil
			}
			return 0, n, nil
		default:
			return v, n, nil
		}
	}
}

func readField(m *dynamic.Message, f *schema.Field, wt wire.Type, b []byte, depth int) ([]byte, error) {
	switch {
	case f.Kind == schema.KindMessage:
		body, n, err := wire.ReadBytes(b)
		if err != nil {
			return nil, err
		}
		var sub *dynamic.Message
		if f.Repeated() {
			sub = m.AddMessage(f.Number)
		} else {
			// Repeated occurrences of a singular sub-message merge.
			sub = m.MutableMessage(f.Number)
		}
		if err := unmarshal(sub, body, depth-1); err != nil {
			return nil, err
		}
		return b[n:], nil
	case f.Kind.Class() == schema.ClassBytesLike:
		body, n, err := wire.ReadBytes(b)
		if err != nil {
			return nil, err
		}
		val := append([]byte(nil), body...)
		if f.Repeated() {
			m.AddBytes(f.Number, val)
		} else {
			m.SetBytes(f.Number, val)
		}
		return b[n:], nil
	case f.Repeated() && wt == wire.TypeBytes:
		// Packed encoding of a repeated scalar.
		body, n, err := wire.ReadBytes(b)
		if err != nil {
			return nil, err
		}
		for len(body) > 0 {
			bits, vn, err := decodeScalar(f, body)
			if err != nil {
				return nil, ErrBadPacked
			}
			m.AddScalarBits(f.Number, bits)
			body = body[vn:]
		}
		return b[n:], nil
	default:
		bits, n, err := decodeScalar(f, b)
		if err != nil {
			return nil, err
		}
		if f.Repeated() {
			m.AddScalarBits(f.Number, bits)
		} else {
			m.SetScalarBits(f.Number, bits)
		}
		return b[n:], nil
	}
}

// RoundTripEqual is a test/validation helper: it serializes m, deserializes
// the result, and reports whether the round trip preserves equality.
func RoundTripEqual(m *dynamic.Message) (bool, error) {
	b, err := Marshal(m)
	if err != nil {
		return false, err
	}
	got, err := Unmarshal(m.Type(), b)
	if err != nil {
		return false, err
	}
	return m.Equal(got), nil
}

// Float32Bits and Float64Bits re-export the IEEE conversions used when
// populating scalar bit patterns, so callers don't need package math.
func Float32Bits(v float32) uint64 { return uint64(math.Float32bits(v)) }

// Float64Bits returns the IEEE-754 bit pattern of v.
func Float64Bits(v float64) uint64 { return math.Float64bits(v) }
