package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
)

// test1Type mirrors the canonical protobuf docs Test1 message:
// message Test1 { optional int32 a = 1; }
func test1Type() *schema.Message {
	return mustMessage("Test1",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})
}

func TestGoldenWireBytes(t *testing.T) {
	// From the protobuf encoding documentation: a=150 encodes as 08 96 01.
	m := dynamic.New(test1Type())
	m.SetInt32(1, 150)
	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, []byte{0x08, 0x96, 0x01}) {
		t.Errorf("Marshal = %x, want 089601", b)
	}
	if Size(m) != 3 {
		t.Errorf("Size = %d", Size(m))
	}

	// Test2 { optional string b = 2; } with b="testing":
	// 12 07 74 65 73 74 69 6e 67
	t2 := mustMessage("Test2", &schema.Field{Name: "b", Number: 2, Kind: schema.KindString})
	m2 := dynamic.New(t2)
	m2.SetString(2, "testing")
	b2, _ := Marshal(m2)
	want2 := append([]byte{0x12, 0x07}, []byte("testing")...)
	if !bytes.Equal(b2, want2) {
		t.Errorf("Marshal = %x, want %x", b2, want2)
	}

	// Test3 { optional Test1 c = 3; } with c.a=150: 1a 03 08 96 01
	t3 := mustMessage("Test3",
		&schema.Field{Name: "c", Number: 3, Kind: schema.KindMessage, Message: test1Type()})
	m3 := dynamic.New(t3)
	m3.MutableMessage(3).SetInt32(1, 150)
	b3, _ := Marshal(m3)
	if !bytes.Equal(b3, []byte{0x1a, 0x03, 0x08, 0x96, 0x01}) {
		t.Errorf("Marshal = %x, want 1a03089601", b3)
	}

	// Test4 { repeated int32 d = 4 [packed=true]; } with d=[3,270,86942]:
	// 22 06 03 8e 02 9e a7 05
	t4 := mustMessage("Test4",
		&schema.Field{Name: "d", Number: 4, Kind: schema.KindInt32, Label: schema.LabelRepeated, Packed: true})
	m4 := dynamic.New(t4)
	for _, v := range []int32{3, 270, 86942} {
		m4.AddScalarBits(4, uint64(int64(v)))
	}
	b4, _ := Marshal(m4)
	if !bytes.Equal(b4, []byte{0x22, 0x06, 0x03, 0x8e, 0x02, 0x9e, 0xa7, 0x05}) {
		t.Errorf("Marshal = %x, want 2206038e029ea705", b4)
	}
}

func TestNegativeInt32TenBytes(t *testing.T) {
	// proto2 quirk: int32 -1 is sign-extended to a 10-byte varint.
	m := dynamic.New(test1Type())
	m.SetInt32(1, -1)
	b, _ := Marshal(m)
	if len(b) != 11 { // 1 tag + 10 varint
		t.Fatalf("len = %d, want 11", len(b))
	}
	got, err := Unmarshal(m.Type(), b)
	if err != nil || got.GetInt32(1) != -1 {
		t.Errorf("round trip = (%v, %v)", got.GetInt32(1), err)
	}
}

func TestSint32OneByte(t *testing.T) {
	typ := mustMessage("M", &schema.Field{Name: "a", Number: 1, Kind: schema.KindSint32})
	m := dynamic.New(typ)
	m.SetInt32(1, -1)
	b, _ := Marshal(m)
	if len(b) != 2 { // zig-zag: -1 → 1 → single byte
		t.Fatalf("len = %d, want 2", len(b))
	}
	got, _ := Unmarshal(typ, b)
	if got.GetInt32(1) != -1 {
		t.Error("sint32 round trip failed")
	}
}

func TestEmptyMessageZeroBytes(t *testing.T) {
	// Figure 1 of the paper: empty messages take no bytes in encoded form.
	typ := mustMessage("Empty")
	b, err := Marshal(dynamic.New(typ))
	if err != nil || len(b) != 0 {
		t.Errorf("empty message encoded to %d bytes", len(b))
	}
	// A sub-message field pointing at an empty message costs only
	// tag+len(0).
	outer := mustMessage("Outer",
		&schema.Field{Name: "e", Number: 1, Kind: schema.KindMessage, Message: typ})
	m := dynamic.New(outer)
	m.MutableMessage(1)
	b2, _ := Marshal(m)
	if !bytes.Equal(b2, []byte{0x0a, 0x00}) {
		t.Errorf("empty sub-message = %x, want 0a00", b2)
	}
}

func TestRecursiveType(t *testing.T) {
	// Figure 1's message B { optional B f0 = 1; }.
	b := &schema.Message{Name: "B"}
	if err := b.SetFields([]*schema.Field{
		{Name: "f0", Number: 1, Kind: schema.KindMessage, Message: b},
	}); err != nil {
		t.Fatal(err)
	}
	m := dynamic.New(b)
	cur := m
	for i := 0; i < 5; i++ {
		cur = cur.MutableMessage(1)
	}
	enc, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b, enc)
	if err != nil || !m.Equal(got) {
		t.Errorf("recursive round trip failed: %v", err)
	}
}

func TestDepthLimit(t *testing.T) {
	b := &schema.Message{Name: "B"}
	if err := b.SetFields([]*schema.Field{
		{Name: "f0", Number: 1, Kind: schema.KindMessage, Message: b},
	}); err != nil {
		t.Fatal(err)
	}
	m := dynamic.New(b)
	cur := m
	for i := 0; i < MaxNestingDepth+5; i++ {
		cur = cur.MutableMessage(1)
	}
	enc, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(b, enc); err == nil {
		t.Error("expected depth-limit error")
	}
}

func TestUnpackedRepeated(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "r", Number: 2, Kind: schema.KindUint64, Label: schema.LabelRepeated})
	m := dynamic.New(typ)
	m.AddScalarBits(2, 1)
	m.AddScalarBits(2, 300)
	b, _ := Marshal(m)
	// Two key/value pairs with the same key (§2.1.2).
	want := []byte{0x10, 0x01, 0x10, 0xac, 0x02}
	if !bytes.Equal(b, want) {
		t.Errorf("Marshal = %x, want %x", b, want)
	}
	got, err := Unmarshal(typ, b)
	if err != nil || got.Len(2) != 2 {
		t.Fatalf("unmarshal: %v", err)
	}
}

func TestPackedUnpackedInterchange(t *testing.T) {
	// A decoder must accept packed data for unpacked fields and vice versa.
	unpackedType := mustMessage("M",
		&schema.Field{Name: "r", Number: 1, Kind: schema.KindInt32, Label: schema.LabelRepeated})
	packedType := mustMessage("M",
		&schema.Field{Name: "r", Number: 1, Kind: schema.KindInt32, Label: schema.LabelRepeated, Packed: true})

	src := dynamic.New(packedType)
	for _, v := range []int32{1, 2, 300} {
		src.AddScalarBits(1, uint64(int64(v)))
	}
	packedBytes, _ := Marshal(src)

	got, err := Unmarshal(unpackedType, packedBytes)
	if err != nil || got.Len(1) != 3 || got.RepeatedScalarBits(1)[2] != 300 {
		t.Errorf("unpacked decoder rejected packed data: %v", err)
	}

	src2 := dynamic.New(unpackedType)
	for _, v := range []int32{1, 2, 300} {
		src2.AddScalarBits(1, uint64(int64(v)))
	}
	unpackedBytes, _ := Marshal(src2)
	got2, err := Unmarshal(packedType, unpackedBytes)
	if err != nil || got2.Len(1) != 3 {
		t.Errorf("packed decoder rejected unpacked data: %v", err)
	}
}

func TestPackedFixedWidth(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "r", Number: 1, Kind: schema.KindFixed32, Label: schema.LabelRepeated, Packed: true},
		&schema.Field{Name: "d", Number: 2, Kind: schema.KindDouble, Label: schema.LabelRepeated, Packed: true})
	m := dynamic.New(typ)
	m.AddScalarBits(1, 7)
	m.AddScalarBits(1, 8)
	m.AddScalarBits(2, Float64Bits(1.5))
	b, _ := Marshal(m)
	got, err := Unmarshal(typ, b)
	if err != nil || !m.Equal(got) {
		t.Errorf("packed fixed round trip: %v", err)
	}
	// Packed fixed32 ×2 = tag(1) + len(1) + 8 bytes.
	if Size(m) != 2+8+2+8 {
		t.Errorf("Size = %d", Size(m))
	}
}

func TestLastOneWins(t *testing.T) {
	typ := test1Type()
	var b []byte
	b = wire.AppendTag(b, 1, wire.TypeVarint)
	b = wire.AppendVarint(b, 5)
	b = wire.AppendTag(b, 1, wire.TypeVarint)
	b = wire.AppendVarint(b, 9)
	m, err := Unmarshal(typ, b)
	if err != nil || m.GetInt32(1) != 9 {
		t.Errorf("last-one-wins: got %d, %v", m.GetInt32(1), err)
	}
}

func TestSingularSubMessageMergesAcrossOccurrences(t *testing.T) {
	sub := mustMessage("Sub",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "b", Number: 2, Kind: schema.KindInt32})
	typ := mustMessage("M",
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindMessage, Message: sub})
	// Two occurrences of field 1, each setting a different sub-field.
	m1 := dynamic.New(typ)
	m1.MutableMessage(1).SetInt32(1, 5)
	m2 := dynamic.New(typ)
	m2.MutableMessage(1).SetInt32(2, 7)
	b1, _ := Marshal(m1)
	b2, _ := Marshal(m2)
	got, err := Unmarshal(typ, append(b1, b2...))
	if err != nil {
		t.Fatal(err)
	}
	s := got.GetMessage(1)
	if s.GetInt32(1) != 5 || s.GetInt32(2) != 7 {
		t.Errorf("merge across occurrences: a=%d b=%d", s.GetInt32(1), s.GetInt32(2))
	}
}

func TestUnknownFieldPreservation(t *testing.T) {
	// Serialize with a richer schema, deserialize with a narrower one
	// (schema evolution), reserialize, deserialize with the rich schema.
	rich := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "b", Number: 2, Kind: schema.KindString},
		&schema.Field{Name: "c", Number: 3, Kind: schema.KindFixed64})
	narrow := mustMessage("M", &schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32})

	m := dynamic.New(rich)
	m.SetInt32(1, 5)
	m.SetString(2, "keep me")
	m.SetUint64(3, 99)
	b, _ := Marshal(m)

	mid, err := Unmarshal(narrow, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Unknown) == 0 {
		t.Fatal("unknown fields not preserved")
	}
	b2, _ := Marshal(mid)
	back, err := Unmarshal(rich, b2)
	if err != nil {
		t.Fatal(err)
	}
	if back.GetString(2) != "keep me" || back.GetUint64(3) != 99 {
		t.Error("unknown fields lost through round trip")
	}
}

func TestWireTypeMismatchGoesToUnknown(t *testing.T) {
	typ := test1Type() // field 1 is int32 (varint)
	var b []byte
	b = wire.AppendTag(b, 1, wire.TypeFixed32)
	b = wire.AppendFixed32(b, 7)
	m, err := Unmarshal(typ, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Has(1) || len(m.Unknown) != 5 {
		t.Errorf("mismatched wire type should be unknown; has=%v unknown=%x", m.Has(1), m.Unknown)
	}
}

func TestTruncatedInputs(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindString},
		&schema.Field{Name: "v", Number: 2, Kind: schema.KindUint64})
	m := dynamic.New(typ)
	m.SetString(1, "hello world")
	m.SetUint64(2, 1<<40)
	b, _ := Marshal(m)
	for i := 1; i < len(b); i++ {
		if _, err := Unmarshal(typ, b[:i]); err == nil {
			// Truncation at a field boundary is a valid shorter message
			// only when it cuts exactly between fields.
			valid := false
			for _, cut := range []int{0, 13} { // after string field
				if i == cut {
					valid = true
				}
			}
			if !valid {
				t.Errorf("truncated at %d: expected error", i)
			}
		}
	}
}

func TestSizeMatchesMarshalRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		m := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		b, err := Marshal(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(b) != Size(m) {
			t.Fatalf("trial %d: Size=%d len=%d", trial, Size(m), len(b))
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		m := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		ok, err := RoundTripEqual(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !ok {
			t.Fatalf("trial %d: round trip not equal", trial)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
	m := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
	a, _ := Marshal(m)
	b, _ := Marshal(m)
	if !bytes.Equal(a, b) {
		t.Error("Marshal not deterministic")
	}
}

func TestFieldsSerializedInAscendingOrder(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "hi", Number: 200, Kind: schema.KindInt32},
		&schema.Field{Name: "lo", Number: 1, Kind: schema.KindInt32})
	m := dynamic.New(typ)
	m.SetInt32(200, 1)
	m.SetInt32(1, 2)
	b, _ := Marshal(m)
	fn, _, _, err := wire.ReadTag(b)
	if err != nil || fn != 1 {
		t.Errorf("first field on wire = %d, want 1", fn)
	}
}

func TestBoolCanonicalization(t *testing.T) {
	typ := mustMessage("M", &schema.Field{Name: "b", Number: 1, Kind: schema.KindBool})
	// Wire value 2 should decode as true (non-zero).
	var b []byte
	b = wire.AppendTag(b, 1, wire.TypeVarint)
	b = wire.AppendVarint(b, 2)
	m, err := Unmarshal(typ, b)
	if err != nil || !m.GetBool(1) {
		t.Error("bool 2 should decode true")
	}
	// And re-encode as 1.
	out, _ := Marshal(m)
	if !bytes.Equal(out, []byte{0x08, 0x01}) {
		t.Errorf("re-encode = %x", out)
	}
}

func BenchmarkMarshalSmall(b *testing.B) {
	m := dynamic.New(test1Type())
	m.SetInt32(1, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalSmall(b *testing.B) {
	m := dynamic.New(test1Type())
	m.SetInt32(1, 150)
	enc, _ := Marshal(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(m.Type(), enc); err != nil {
			b.Fatal(err)
		}
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
