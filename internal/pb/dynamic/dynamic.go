// Package dynamic provides the host-side in-memory representation of proto2
// messages: the Go analogue of the C++ objects protoc generates (§2.1.3 of
// the paper). A Message tracks per-field presence exactly as the C++
// library's hasbits do, stores scalars as fixed-width bit patterns, strings
// and bytes as byte slices, and sub-messages as pointers.
//
// Accessors panic on schema misuse (wrong kind, unknown field number): such
// errors are programming bugs, matching the behaviour of generated code.
//
// None of these panics is reachable from wire input. The only decoder that
// drives these accessors from untrusted bytes is codec.Unmarshal, which
// resolves each tag against the schema first (unknown or wire-type-
// mismatched fields are preserved as Unknown bytes, never dispatched) and
// then selects the accessor from the resolved field's own kind and label —
// so field(), checkKind, checkSingular/checkRepeated, and the scalar-kind
// guards hold by construction. SetMessage and Merge, whose type-identity
// panics a decoder could not guarantee, are not called by the codec: it
// builds sub-messages with AddMessage/MutableMessage, which derive the
// element type from the field descriptor. FuzzDeserialize in internal/core
// asserts this empirically on arbitrary inputs.
package dynamic

import (
	"bytes"
	"fmt"
	"math"

	"protoacc/internal/pb/schema"
)

// fieldValue holds the value(s) of one present field. Singular fields use
// index 0 of the relevant slice; repeated fields use the full slice.
type fieldValue struct {
	scalars []uint64   // numeric/bool/enum bit patterns
	blobs   [][]byte   // string/bytes payloads
	msgs    []*Message // sub-messages
}

// Message is a dynamically-typed proto2 message instance.
type Message struct {
	typ    *schema.Message
	fields map[int32]*fieldValue

	// Unknown holds wire-format bytes of fields that were not in the
	// schema when the message was deserialized; proto2 preserves them
	// across a deserialize/serialize round trip.
	Unknown []byte
}

// New creates an empty message of the given type.
func New(t *schema.Message) *Message {
	if t == nil {
		panic("dynamic: nil message type")
	}
	return &Message{typ: t, fields: make(map[int32]*fieldValue)}
}

// Type returns the message's descriptor.
func (m *Message) Type() *schema.Message { return m.typ }

// field returns the descriptor for num, panicking if undefined.
func (m *Message) field(num int32) *schema.Field {
	f := m.typ.FieldByNumber(num)
	if f == nil {
		panic(fmt.Sprintf("dynamic: %s has no field %d", m.typ.Name, num))
	}
	return f
}

func (m *Message) checkKind(f *schema.Field, want ...schema.Kind) {
	for _, k := range want {
		if f.Kind == k {
			return
		}
	}
	panic(fmt.Sprintf("dynamic: %s.%s is %v, not %v", m.typ.Name, f.Name, f.Kind, want))
}

func (m *Message) checkSingular(f *schema.Field) {
	if f.Repeated() {
		panic(fmt.Sprintf("dynamic: %s.%s is repeated; use Add/Index accessors", m.typ.Name, f.Name))
	}
}

func (m *Message) checkRepeated(f *schema.Field) {
	if !f.Repeated() {
		panic(fmt.Sprintf("dynamic: %s.%s is singular; use Set/Get accessors", m.typ.Name, f.Name))
	}
}

func (m *Message) val(num int32) *fieldValue {
	v, ok := m.fields[num]
	if !ok {
		v = &fieldValue{}
		m.fields[num] = v
	}
	return v
}

// Has reports whether the field is present (set). For repeated fields it
// reports whether at least one element exists.
func (m *Message) Has(num int32) bool {
	m.field(num)
	_, ok := m.fields[num]
	return ok
}

// Clear removes the field's value and presence bit.
func (m *Message) Clear(num int32) {
	m.field(num)
	delete(m.fields, num)
}

// ClearAll resets the message to empty (the protobuf Clear operation).
func (m *Message) ClearAll() {
	m.fields = make(map[int32]*fieldValue)
	m.Unknown = nil
}

// PresentFieldNumbers returns the numbers of all present fields in
// ascending order.
func (m *Message) PresentFieldNumbers() []int32 {
	var nums []int32
	for _, f := range m.typ.Fields {
		if _, ok := m.fields[f.Number]; ok {
			nums = append(nums, f.Number)
		}
	}
	return nums
}

// --- scalar accessors (bit-pattern level) ---

// SetScalarBits sets a singular numeric/bool/enum field from its raw
// 64-bit pattern (sign-extended two's complement for signed kinds,
// IEEE-754 bits for floats, 0/1 for bool).
func (m *Message) SetScalarBits(num int32, bits uint64) {
	f := m.field(num)
	m.checkSingular(f)
	if c := f.Kind.Class(); c == schema.ClassBytesLike || c == schema.ClassMessage {
		panic(fmt.Sprintf("dynamic: %s.%s is not scalar", m.typ.Name, f.Name))
	}
	v := m.val(num)
	v.scalars = append(v.scalars[:0], bits)
}

// ScalarBits returns the raw bit pattern of a singular scalar field, or its
// default if absent.
func (m *Message) ScalarBits(num int32) uint64 {
	f := m.field(num)
	m.checkSingular(f)
	if v, ok := m.fields[num]; ok {
		return v.scalars[0]
	}
	return f.Default
}

// AddScalarBits appends to a repeated numeric/bool/enum field.
func (m *Message) AddScalarBits(num int32, bits uint64) {
	f := m.field(num)
	m.checkRepeated(f)
	if c := f.Kind.Class(); c == schema.ClassBytesLike || c == schema.ClassMessage {
		panic(fmt.Sprintf("dynamic: %s.%s is not scalar", m.typ.Name, f.Name))
	}
	v := m.val(num)
	v.scalars = append(v.scalars, bits)
}

// RepeatedScalarBits returns the elements of a repeated scalar field. The
// slice aliases internal storage; treat it as read-only.
func (m *Message) RepeatedScalarBits(num int32) []uint64 {
	f := m.field(num)
	m.checkRepeated(f)
	if v, ok := m.fields[num]; ok {
		return v.scalars
	}
	return nil
}

// --- typed convenience accessors ---

// SetInt32 sets an int32/sint32/sfixed32/enum field.
func (m *Message) SetInt32(num int32, v int32) { m.SetScalarBits(num, uint64(int64(v))) }

// GetInt32 returns an int32-like field's value or default.
func (m *Message) GetInt32(num int32) int32 { return int32(m.ScalarBits(num)) }

// SetInt64 sets an int64/sint64/sfixed64 field.
func (m *Message) SetInt64(num int32, v int64) { m.SetScalarBits(num, uint64(v)) }

// GetInt64 returns an int64-like field's value or default.
func (m *Message) GetInt64(num int32) int64 { return int64(m.ScalarBits(num)) }

// SetUint32 sets a uint32/fixed32 field.
func (m *Message) SetUint32(num int32, v uint32) { m.SetScalarBits(num, uint64(v)) }

// GetUint32 returns a uint32-like field's value or default.
func (m *Message) GetUint32(num int32) uint32 { return uint32(m.ScalarBits(num)) }

// SetUint64 sets a uint64/fixed64 field.
func (m *Message) SetUint64(num int32, v uint64) { m.SetScalarBits(num, v) }

// GetUint64 returns a uint64-like field's value or default.
func (m *Message) GetUint64(num int32) uint64 { return m.ScalarBits(num) }

// SetBool sets a bool field.
func (m *Message) SetBool(num int32, v bool) {
	var b uint64
	if v {
		b = 1
	}
	m.SetScalarBits(num, b)
}

// GetBool returns a bool field's value or default.
func (m *Message) GetBool(num int32) bool { return m.ScalarBits(num) != 0 }

// SetFloat sets a float field.
func (m *Message) SetFloat(num int32, v float32) {
	m.SetScalarBits(num, uint64(math.Float32bits(v)))
}

// GetFloat returns a float field's value or default.
func (m *Message) GetFloat(num int32) float32 {
	return math.Float32frombits(uint32(m.ScalarBits(num)))
}

// SetDouble sets a double field.
func (m *Message) SetDouble(num int32, v float64) {
	m.SetScalarBits(num, math.Float64bits(v))
}

// GetDouble returns a double field's value or default.
func (m *Message) GetDouble(num int32) float64 {
	return math.Float64frombits(m.ScalarBits(num))
}

// --- string/bytes accessors ---

// SetBytes sets a singular string/bytes field. The slice is not copied.
func (m *Message) SetBytes(num int32, v []byte) {
	f := m.field(num)
	m.checkSingular(f)
	m.checkKind(f, schema.KindString, schema.KindBytes)
	fv := m.val(num)
	fv.blobs = append(fv.blobs[:0], v)
}

// GetBytes returns a singular string/bytes field's value or default.
func (m *Message) GetBytes(num int32) []byte {
	f := m.field(num)
	m.checkSingular(f)
	m.checkKind(f, schema.KindString, schema.KindBytes)
	if v, ok := m.fields[num]; ok {
		return v.blobs[0]
	}
	return f.DefaultBytes
}

// SetString sets a singular string field.
func (m *Message) SetString(num int32, v string) { m.SetBytes(num, []byte(v)) }

// GetString returns a singular string field's value or default.
func (m *Message) GetString(num int32) string { return string(m.GetBytes(num)) }

// AddBytes appends to a repeated string/bytes field.
func (m *Message) AddBytes(num int32, v []byte) {
	f := m.field(num)
	m.checkRepeated(f)
	m.checkKind(f, schema.KindString, schema.KindBytes)
	fv := m.val(num)
	fv.blobs = append(fv.blobs, v)
}

// AddString appends to a repeated string field.
func (m *Message) AddString(num int32, v string) { m.AddBytes(num, []byte(v)) }

// RepeatedBytes returns the elements of a repeated string/bytes field.
func (m *Message) RepeatedBytes(num int32) [][]byte {
	f := m.field(num)
	m.checkRepeated(f)
	m.checkKind(f, schema.KindString, schema.KindBytes)
	if v, ok := m.fields[num]; ok {
		return v.blobs
	}
	return nil
}

// --- sub-message accessors ---

// SetMessage sets a singular message field.
func (m *Message) SetMessage(num int32, v *Message) {
	f := m.field(num)
	m.checkSingular(f)
	m.checkKind(f, schema.KindMessage)
	if v != nil && v.typ != f.Message {
		panic(fmt.Sprintf("dynamic: %s.%s wants %s, got %s", m.typ.Name, f.Name, f.Message.Name, v.typ.Name))
	}
	fv := m.val(num)
	fv.msgs = append(fv.msgs[:0], v)
}

// GetMessage returns a singular message field's value, or nil if absent.
func (m *Message) GetMessage(num int32) *Message {
	f := m.field(num)
	m.checkSingular(f)
	m.checkKind(f, schema.KindMessage)
	if v, ok := m.fields[num]; ok {
		return v.msgs[0]
	}
	return nil
}

// MutableMessage returns the singular sub-message, allocating it if absent
// (the mutable_foo() accessor of C++ generated code).
func (m *Message) MutableMessage(num int32) *Message {
	f := m.field(num)
	m.checkSingular(f)
	m.checkKind(f, schema.KindMessage)
	fv := m.val(num)
	if len(fv.msgs) == 0 || fv.msgs[0] == nil {
		fv.msgs = append(fv.msgs[:0], New(f.Message))
	}
	return fv.msgs[0]
}

// AddMessage appends a new empty element to a repeated message field and
// returns it.
func (m *Message) AddMessage(num int32) *Message {
	f := m.field(num)
	m.checkRepeated(f)
	m.checkKind(f, schema.KindMessage)
	fv := m.val(num)
	sub := New(f.Message)
	fv.msgs = append(fv.msgs, sub)
	return sub
}

// RepeatedMessages returns the elements of a repeated message field.
func (m *Message) RepeatedMessages(num int32) []*Message {
	f := m.field(num)
	m.checkRepeated(f)
	m.checkKind(f, schema.KindMessage)
	if v, ok := m.fields[num]; ok {
		return v.msgs
	}
	return nil
}

// Len returns the number of elements in a repeated field (0 if absent).
func (m *Message) Len(num int32) int {
	f := m.field(num)
	m.checkRepeated(f)
	v, ok := m.fields[num]
	if !ok {
		return 0
	}
	switch {
	case f.Kind == schema.KindMessage:
		return len(v.msgs)
	case f.Kind.Class() == schema.ClassBytesLike:
		return len(v.blobs)
	default:
		return len(v.scalars)
	}
}

// --- message-level operations (the paper's Figure 2 "other" operators) ---

// Equal reports deep equality of two messages of the same type, comparing
// presence, values, element order, and unknown bytes.
func (m *Message) Equal(o *Message) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.typ != o.typ || len(m.fields) != len(o.fields) || !bytes.Equal(m.Unknown, o.Unknown) {
		return false
	}
	for num, v := range m.fields {
		ov, ok := o.fields[num]
		if !ok {
			return false
		}
		if len(v.scalars) != len(ov.scalars) || len(v.blobs) != len(ov.blobs) || len(v.msgs) != len(ov.msgs) {
			return false
		}
		for i := range v.scalars {
			if v.scalars[i] != ov.scalars[i] {
				return false
			}
		}
		for i := range v.blobs {
			if !bytes.Equal(v.blobs[i], ov.blobs[i]) {
				return false
			}
		}
		for i := range v.msgs {
			if !v.msgs[i].Equal(ov.msgs[i]) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of m.
func (m *Message) Clone() *Message {
	c := New(m.typ)
	c.Unknown = append([]byte(nil), m.Unknown...)
	if len(c.Unknown) == 0 {
		c.Unknown = nil
	}
	for num, v := range m.fields {
		cv := &fieldValue{}
		if v.scalars != nil {
			cv.scalars = append([]uint64(nil), v.scalars...)
		}
		for _, b := range v.blobs {
			cv.blobs = append(cv.blobs, append([]byte(nil), b...))
		}
		for _, s := range v.msgs {
			cv.msgs = append(cv.msgs, s.Clone())
		}
		c.fields[num] = cv
	}
	return c
}

// Merge merges src into m with proto2 semantics: singular scalars and
// strings are overwritten if present in src, singular sub-messages are
// merged recursively, repeated fields are concatenated.
func (m *Message) Merge(src *Message) {
	if src.typ != m.typ {
		panic(fmt.Sprintf("dynamic: cannot merge %s into %s", src.typ.Name, m.typ.Name))
	}
	for num, sv := range src.fields {
		f := m.field(num)
		dv := m.val(num)
		switch {
		case f.Repeated():
			dv.scalars = append(dv.scalars, sv.scalars...)
			for _, b := range sv.blobs {
				dv.blobs = append(dv.blobs, append([]byte(nil), b...))
			}
			for _, s := range sv.msgs {
				dv.msgs = append(dv.msgs, s.Clone())
			}
		case f.Kind == schema.KindMessage:
			if len(dv.msgs) == 0 || dv.msgs[0] == nil {
				dv.msgs = append(dv.msgs[:0], New(f.Message))
			}
			dv.msgs[0].Merge(sv.msgs[0])
		case f.Kind.Class() == schema.ClassBytesLike:
			dv.blobs = append(dv.blobs[:0], append([]byte(nil), sv.blobs[0]...))
		default:
			dv.scalars = append(dv.scalars[:0], sv.scalars[0])
		}
	}
	m.Unknown = append(m.Unknown, src.Unknown...)
}

// IsInitialized reports whether all required fields are present,
// recursively (proto2 required-field semantics).
func (m *Message) IsInitialized() bool {
	for _, f := range m.typ.Fields {
		if f.Label == schema.LabelRequired && !m.Has(f.Number) {
			return false
		}
		if f.Kind != schema.KindMessage {
			continue
		}
		if f.Repeated() {
			for _, s := range m.RepeatedMessages(f.Number) {
				if !s.IsInitialized() {
					return false
				}
			}
		} else if s := m.GetMessage(f.Number); s != nil && !s.IsInitialized() {
			return false
		}
	}
	return true
}
