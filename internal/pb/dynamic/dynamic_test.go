package dynamic

import (
	"testing"
	"testing/quick"

	"protoacc/internal/pb/schema"
)

func scalarType() *schema.Message {
	return mustMessage("S",
		&schema.Field{Name: "i32", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "i64", Number: 2, Kind: schema.KindInt64},
		&schema.Field{Name: "u32", Number: 3, Kind: schema.KindUint32},
		&schema.Field{Name: "u64", Number: 4, Kind: schema.KindUint64},
		&schema.Field{Name: "b", Number: 5, Kind: schema.KindBool},
		&schema.Field{Name: "f", Number: 6, Kind: schema.KindFloat},
		&schema.Field{Name: "d", Number: 7, Kind: schema.KindDouble},
		&schema.Field{Name: "s", Number: 8, Kind: schema.KindString},
		&schema.Field{Name: "by", Number: 9, Kind: schema.KindBytes},
	)
}

func TestScalarAccessors(t *testing.T) {
	m := New(scalarType())
	m.SetInt32(1, -5)
	m.SetInt64(2, -1e12)
	m.SetUint32(3, 4e9)
	m.SetUint64(4, 1<<63)
	m.SetBool(5, true)
	m.SetFloat(6, 1.5)
	m.SetDouble(7, -2.25)
	m.SetString(8, "hello")
	m.SetBytes(9, []byte{1, 2, 3})

	if m.GetInt32(1) != -5 || m.GetInt64(2) != -1e12 || m.GetUint32(3) != 4e9 ||
		m.GetUint64(4) != 1<<63 || !m.GetBool(5) || m.GetFloat(6) != 1.5 ||
		m.GetDouble(7) != -2.25 || m.GetString(8) != "hello" ||
		string(m.GetBytes(9)) != "\x01\x02\x03" {
		t.Error("scalar round trip failed")
	}
	for n := int32(1); n <= 9; n++ {
		if !m.Has(n) {
			t.Errorf("Has(%d) = false", n)
		}
	}
	if got := m.PresentFieldNumbers(); len(got) != 9 || got[0] != 1 || got[8] != 9 {
		t.Errorf("PresentFieldNumbers = %v", got)
	}
}

func TestDefaultsWhenAbsent(t *testing.T) {
	typ := mustMessage("D",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32, Default: ^uint64(0) - 6}, // -7 two's complement
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString, DefaultBytes: []byte("dflt")},
		&schema.Field{Name: "b", Number: 3, Kind: schema.KindBool, Default: 1},
	)
	m := New(typ)
	if m.Has(1) || m.GetInt32(1) != -7 {
		t.Error("int default wrong")
	}
	if m.GetString(2) != "dflt" {
		t.Error("string default wrong")
	}
	if !m.GetBool(3) {
		t.Error("bool default wrong")
	}
	m.SetInt32(1, 0)
	if !m.Has(1) || m.GetInt32(1) != 0 {
		t.Error("explicit zero should be present and override default")
	}
	m.Clear(1)
	if m.Has(1) || m.GetInt32(1) != -7 {
		t.Error("Clear should restore default")
	}
}

func TestRepeatedScalars(t *testing.T) {
	typ := mustMessage("R",
		&schema.Field{Name: "v", Number: 1, Kind: schema.KindInt64, Label: schema.LabelRepeated},
	)
	m := New(typ)
	if m.Len(1) != 0 || m.Has(1) {
		t.Error("empty repeated field should have len 0, absent")
	}
	for i := int64(0); i < 5; i++ {
		m.AddScalarBits(1, uint64(i*10))
	}
	if m.Len(1) != 5 || !m.Has(1) {
		t.Errorf("Len = %d", m.Len(1))
	}
	got := m.RepeatedScalarBits(1)
	if got[3] != 30 {
		t.Errorf("element 3 = %d", got[3])
	}
}

func TestRepeatedBytesAndMessages(t *testing.T) {
	sub := mustMessage("Sub", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	typ := mustMessage("R",
		&schema.Field{Name: "names", Number: 1, Kind: schema.KindString, Label: schema.LabelRepeated},
		&schema.Field{Name: "subs", Number: 2, Kind: schema.KindMessage, Label: schema.LabelRepeated, Message: sub},
	)
	m := New(typ)
	m.AddString(1, "a")
	m.AddString(1, "bb")
	if m.Len(1) != 2 || string(m.RepeatedBytes(1)[1]) != "bb" {
		t.Error("repeated string failed")
	}
	s1 := m.AddMessage(2)
	s1.SetInt32(1, 42)
	m.AddMessage(2)
	if m.Len(2) != 2 || m.RepeatedMessages(2)[0].GetInt32(1) != 42 {
		t.Error("repeated message failed")
	}
}

func TestSubMessageAccessors(t *testing.T) {
	sub := mustMessage("Sub", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	typ := mustMessage("M",
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindMessage, Message: sub},
	)
	m := New(typ)
	if m.GetMessage(1) != nil {
		t.Error("absent sub-message should be nil")
	}
	ms := m.MutableMessage(1)
	ms.SetInt32(1, 7)
	if m.GetMessage(1).GetInt32(1) != 7 {
		t.Error("MutableMessage did not persist")
	}
	if m.MutableMessage(1) != ms {
		t.Error("MutableMessage should return same instance")
	}
}

func TestAccessorPanics(t *testing.T) {
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "r", Number: 2, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "s", Number: 3, Kind: schema.KindString},
	)
	m := New(typ)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("unknown field", func() { m.SetInt32(99, 1) })
	expectPanic("singular on repeated", func() { m.SetInt32(2, 1) })
	expectPanic("repeated on singular", func() { m.AddScalarBits(1, 1) })
	expectPanic("scalar on string", func() { m.SetScalarBits(3, 1) })
	expectPanic("bytes on int", func() { m.SetBytes(1, nil) })
	expectPanic("message on int", func() { m.GetMessage(1) })
	expectPanic("len on singular", func() { m.Len(1) })
}

func TestSetMessageTypeCheck(t *testing.T) {
	subA := mustMessage("A", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	subB := mustMessage("B", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	typ := mustMessage("M", &schema.Field{Name: "s", Number: 1, Kind: schema.KindMessage, Message: subA})
	m := New(typ)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong sub-message type")
		}
	}()
	m.SetMessage(1, New(subB))
}

func TestEqualCloneMerge(t *testing.T) {
	sub := mustMessage("Sub", &schema.Field{Name: "v", Number: 1, Kind: schema.KindInt32})
	typ := mustMessage("M",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindInt32},
		&schema.Field{Name: "s", Number: 2, Kind: schema.KindString},
		&schema.Field{Name: "sub", Number: 3, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "r", Number: 4, Kind: schema.KindInt64, Label: schema.LabelRepeated},
	)
	m := New(typ)
	m.SetInt32(1, 5)
	m.SetString(2, "x")
	m.MutableMessage(3).SetInt32(1, 9)
	m.AddScalarBits(4, 1)
	m.AddScalarBits(4, 2)

	c := m.Clone()
	if !m.Equal(c) || !c.Equal(m) {
		t.Fatal("clone should be equal")
	}
	// Deep copy: mutating the clone must not affect the original.
	c.MutableMessage(3).SetInt32(1, 100)
	if m.GetMessage(3).GetInt32(1) != 9 {
		t.Error("clone shares sub-message storage")
	}
	if m.Equal(c) {
		t.Error("should differ after clone mutation")
	}

	// Merge semantics.
	dst := New(typ)
	dst.SetInt32(1, 1)
	dst.AddScalarBits(4, 100)
	dst.MutableMessage(3).SetInt32(1, 1)
	src := New(typ)
	src.SetInt32(1, 2)
	src.SetString(2, "from-src")
	src.AddScalarBits(4, 200)
	src.MutableMessage(3).SetInt32(1, 2)
	dst.Merge(src)
	if dst.GetInt32(1) != 2 {
		t.Error("merge should overwrite singular scalar")
	}
	if dst.GetString(2) != "from-src" {
		t.Error("merge should set absent string")
	}
	if dst.Len(4) != 2 || dst.RepeatedScalarBits(4)[1] != 200 {
		t.Error("merge should concatenate repeated")
	}
	if dst.GetMessage(3).GetInt32(1) != 2 {
		t.Error("merge should recurse into sub-message")
	}
}

func TestEqualEdgeCases(t *testing.T) {
	typ := scalarType()
	a, b := New(typ), New(typ)
	if !a.Equal(b) {
		t.Error("two empty messages should be equal")
	}
	a.SetInt32(1, 0)
	if a.Equal(b) {
		t.Error("present-with-zero vs absent should differ")
	}
	var nilMsg *Message
	if nilMsg.Equal(a) || a.Equal(nil) {
		t.Error("nil comparisons")
	}
	if !nilMsg.Equal(nil) {
		t.Error("nil == nil")
	}
	c, d := New(typ), New(typ)
	c.Unknown = []byte{1}
	if c.Equal(d) {
		t.Error("unknown bytes should affect equality")
	}
}

func TestClearAll(t *testing.T) {
	m := New(scalarType())
	m.SetInt32(1, 5)
	m.Unknown = []byte{1, 2}
	m.ClearAll()
	if m.Has(1) || m.Unknown != nil {
		t.Error("ClearAll incomplete")
	}
}

func TestIsInitialized(t *testing.T) {
	sub := mustMessage("Sub",
		&schema.Field{Name: "req", Number: 1, Kind: schema.KindInt32, Label: schema.LabelRequired})
	typ := mustMessage("M",
		&schema.Field{Name: "req", Number: 1, Kind: schema.KindInt32, Label: schema.LabelRequired},
		&schema.Field{Name: "sub", Number: 2, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "subs", Number: 3, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated},
	)
	m := New(typ)
	if m.IsInitialized() {
		t.Error("missing required field")
	}
	m.SetInt32(1, 1)
	if !m.IsInitialized() {
		t.Error("should be initialized (absent optional sub)")
	}
	m.MutableMessage(2)
	if m.IsInitialized() {
		t.Error("sub-message missing required field")
	}
	m.GetMessage(2).SetInt32(1, 1)
	if !m.IsInitialized() {
		t.Error("should be initialized")
	}
	m.AddMessage(3)
	if m.IsInitialized() {
		t.Error("repeated sub element missing required field")
	}
}

func TestMergeUnknown(t *testing.T) {
	typ := scalarType()
	a, b := New(typ), New(typ)
	a.Unknown = []byte{1}
	b.Unknown = []byte{2}
	a.Merge(b)
	if string(a.Unknown) != "\x01\x02" {
		t.Errorf("Unknown = %v", a.Unknown)
	}
}

func TestQuickScalarBitsRoundTrip(t *testing.T) {
	typ := scalarType()
	// Property: SetScalarBits/ScalarBits is the identity for any 64-bit
	// pattern on 64-bit kinds, and presence always follows a set.
	f := func(bits uint64) bool {
		m := New(typ)
		m.SetScalarBits(2, bits) // i64
		m.SetScalarBits(4, bits) // u64
		return m.ScalarBits(2) == bits && m.ScalarBits(4) == bits && m.Has(2) && m.Has(4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeIntoEmptyEqualsClone(t *testing.T) {
	// Property: merging any message into an empty one yields an equal
	// message (and equals its clone).
	typ := scalarType()
	f := func(i32 int32, u64 uint64, b bool, s []byte) bool {
		m := New(typ)
		m.SetInt32(1, i32)
		m.SetUint64(4, u64)
		m.SetBool(5, b)
		m.SetBytes(9, s)
		empty := New(typ)
		empty.Merge(m)
		return m.Equal(empty) && m.Equal(m.Clone())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickClearRestoresAbsence(t *testing.T) {
	typ := scalarType()
	f := func(bits uint64) bool {
		m := New(typ)
		m.SetScalarBits(2, bits)
		m.Clear(2)
		return !m.Has(2) && len(m.PresentFieldNumbers()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
