// Package jsonformat implements the protobuf JSON mapping for dynamic
// messages, following the canonical proto-JSON conventions adapted to
// proto2: objects for messages, arrays for repeated fields, 64-bit
// integers rendered as decimal strings, bytes as standard base64,
// non-finite floats as the strings "NaN"/"Infinity"/"-Infinity", and enum
// values by name when the descriptor carries one.
//
// Marshal emits deterministic output (fields in field-number order);
// Unmarshal accepts both the canonical forms and natural JSON variants
// (64-bit integers as numbers, enums by number).
package jsonformat

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
)

// ErrInvalidUTF8 is returned when a string field holds bytes that are not
// valid UTF-8: the canonical proto-JSON mapping rejects such messages
// (matching the §7 observation that proto3/JSON paths require UTF-8
// validation).
var ErrInvalidUTF8 = fmt.Errorf("jsonformat: string field contains invalid UTF-8")

// Marshal renders m as compact JSON.
func Marshal(m *dynamic.Message) ([]byte, error) {
	var buf bytes.Buffer
	if err := writeMessage(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// MarshalIndent renders m with two-space indentation.
func MarshalIndent(m *dynamic.Message) ([]byte, error) {
	compact, err := Marshal(m)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	if err := json.Indent(&out, compact, "", "  "); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

func writeMessage(buf *bytes.Buffer, m *dynamic.Message) error {
	buf.WriteByte('{')
	first := true
	for _, f := range m.Type().Fields {
		if !m.Has(f.Number) {
			continue
		}
		if !first {
			buf.WriteByte(',')
		}
		first = false
		name, _ := json.Marshal(f.Name)
		buf.Write(name)
		buf.WriteByte(':')
		if err := writeField(buf, m, f); err != nil {
			return err
		}
	}
	buf.WriteByte('}')
	return nil
}

func writeField(buf *bytes.Buffer, m *dynamic.Message, f *schema.Field) error {
	if f.Repeated() {
		buf.WriteByte('[')
		switch {
		case f.Kind == schema.KindMessage:
			for i, s := range m.RepeatedMessages(f.Number) {
				if i > 0 {
					buf.WriteByte(',')
				}
				if err := writeMessage(buf, s); err != nil {
					return err
				}
			}
		case f.Kind.Class() == schema.ClassBytesLike:
			for i, b := range m.RepeatedBytes(f.Number) {
				if i > 0 {
					buf.WriteByte(',')
				}
				if err := writeBlob(buf, f, b); err != nil {
					return err
				}
			}
		default:
			for i, bits := range m.RepeatedScalarBits(f.Number) {
				if i > 0 {
					buf.WriteByte(',')
				}
				if err := writeScalar(buf, f, bits); err != nil {
					return err
				}
			}
		}
		buf.WriteByte(']')
		return nil
	}
	switch {
	case f.Kind == schema.KindMessage:
		sub := m.GetMessage(f.Number)
		if sub == nil {
			buf.WriteString("null")
			return nil
		}
		return writeMessage(buf, sub)
	case f.Kind.Class() == schema.ClassBytesLike:
		return writeBlob(buf, f, m.GetBytes(f.Number))
	default:
		return writeScalar(buf, f, m.ScalarBits(f.Number))
	}
}

func writeBlob(buf *bytes.Buffer, f *schema.Field, b []byte) error {
	if f.Kind == schema.KindBytes {
		enc, _ := json.Marshal(base64.StdEncoding.EncodeToString(b))
		buf.Write(enc)
		return nil
	}
	if !utf8.Valid(b) {
		return fmt.Errorf("%w (field %s)", ErrInvalidUTF8, f.Name)
	}
	enc, _ := json.Marshal(string(b))
	buf.Write(enc)
	return nil
}

func writeScalar(buf *bytes.Buffer, f *schema.Field, bits uint64) error {
	switch f.Kind {
	case schema.KindBool:
		if bits != 0 {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case schema.KindFloat:
		writeFloat(buf, float64(math.Float32frombits(uint32(bits))), 32)
	case schema.KindDouble:
		writeFloat(buf, math.Float64frombits(bits), 64)
	case schema.KindInt32, schema.KindSint32, schema.KindSfixed32:
		buf.WriteString(strconv.FormatInt(int64(int32(bits)), 10))
	case schema.KindUint32, schema.KindFixed32:
		buf.WriteString(strconv.FormatUint(uint64(uint32(bits)), 10))
	case schema.KindEnum:
		v := int32(bits)
		if f.Enum != nil {
			for name, n := range f.Enum.Values {
				if n == v {
					enc, _ := json.Marshal(name)
					buf.Write(enc)
					return nil
				}
			}
		}
		buf.WriteString(strconv.FormatInt(int64(v), 10))
	case schema.KindInt64, schema.KindSint64, schema.KindSfixed64:
		// 64-bit integers are quoted per the proto-JSON mapping.
		fmt.Fprintf(buf, "%q", strconv.FormatInt(int64(bits), 10))
	default: // uint64, fixed64
		fmt.Fprintf(buf, "%q", strconv.FormatUint(bits, 10))
	}
	return nil
}

func writeFloat(buf *bytes.Buffer, v float64, bitsize int) {
	switch {
	case math.IsNaN(v):
		buf.WriteString(`"NaN"`)
	case math.IsInf(v, 1):
		buf.WriteString(`"Infinity"`)
	case math.IsInf(v, -1):
		buf.WriteString(`"-Infinity"`)
	default:
		buf.WriteString(strconv.FormatFloat(v, 'g', -1, bitsize))
	}
}

// Unmarshal parses JSON into a fresh message of type t.
func Unmarshal(t *schema.Message, data []byte) (*dynamic.Message, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("jsonformat: %w", err)
	}
	m := dynamic.New(t)
	if err := intoMessage(m, raw); err != nil {
		return nil, err
	}
	return m, nil
}

func intoMessage(m *dynamic.Message, raw any) error {
	obj, ok := raw.(map[string]any)
	if !ok {
		return fmt.Errorf("jsonformat: %s: expected object, got %T", m.Type().Name, raw)
	}
	for name, val := range obj {
		f := m.Type().FieldByName(name)
		if f == nil {
			return fmt.Errorf("jsonformat: unknown field %q in %s", name, m.Type().Name)
		}
		if err := intoField(m, f, val); err != nil {
			return fmt.Errorf("jsonformat: field %q: %w", name, err)
		}
	}
	return nil
}

func intoField(m *dynamic.Message, f *schema.Field, val any) error {
	if f.Repeated() {
		arr, ok := val.([]any)
		if !ok {
			return fmt.Errorf("expected array, got %T", val)
		}
		for _, elem := range arr {
			if err := addValue(m, f, elem); err != nil {
				return err
			}
		}
		return nil
	}
	switch {
	case f.Kind == schema.KindMessage:
		if val == nil {
			m.SetMessage(f.Number, nil)
			return nil
		}
		return intoMessage(m.MutableMessage(f.Number), val)
	case f.Kind.Class() == schema.ClassBytesLike:
		b, err := blobValue(f, val)
		if err != nil {
			return err
		}
		m.SetBytes(f.Number, b)
		return nil
	default:
		bits, err := scalarValue(f, val)
		if err != nil {
			return err
		}
		m.SetScalarBits(f.Number, bits)
		return nil
	}
}

func addValue(m *dynamic.Message, f *schema.Field, val any) error {
	switch {
	case f.Kind == schema.KindMessage:
		return intoMessage(m.AddMessage(f.Number), val)
	case f.Kind.Class() == schema.ClassBytesLike:
		b, err := blobValue(f, val)
		if err != nil {
			return err
		}
		m.AddBytes(f.Number, b)
		return nil
	default:
		bits, err := scalarValue(f, val)
		if err != nil {
			return err
		}
		m.AddScalarBits(f.Number, bits)
		return nil
	}
}

func blobValue(f *schema.Field, val any) ([]byte, error) {
	s, ok := val.(string)
	if !ok {
		return nil, fmt.Errorf("expected string, got %T", val)
	}
	if f.Kind == schema.KindBytes {
		return base64.StdEncoding.DecodeString(s)
	}
	return []byte(s), nil
}

func scalarValue(f *schema.Field, val any) (uint64, error) {
	switch f.Kind {
	case schema.KindBool:
		b, ok := val.(bool)
		if !ok {
			return 0, fmt.Errorf("expected bool, got %T", val)
		}
		if b {
			return 1, nil
		}
		return 0, nil
	case schema.KindFloat, schema.KindDouble:
		v, err := floatValue(val)
		if err != nil {
			return 0, err
		}
		if f.Kind == schema.KindFloat {
			return uint64(math.Float32bits(float32(v))), nil
		}
		return math.Float64bits(v), nil
	case schema.KindEnum:
		if s, ok := val.(string); ok {
			if f.Enum == nil {
				return 0, fmt.Errorf("enum name %q without enum descriptor", s)
			}
			v, ok := f.Enum.Values[s]
			if !ok {
				return 0, fmt.Errorf("unknown enum value %q", s)
			}
			return uint64(int64(v)), nil
		}
		v, err := intValue(val, 32)
		return uint64(v), err
	case schema.KindInt32, schema.KindSint32, schema.KindSfixed32:
		v, err := intValue(val, 32)
		return uint64(v), err
	case schema.KindUint32, schema.KindFixed32:
		v, err := uintValue(val, 32)
		return v, err
	case schema.KindUint64, schema.KindFixed64:
		return uintValue(val, 64)
	default: // int64, sint64, sfixed64
		v, err := intValue(val, 64)
		return uint64(v), err
	}
}

func floatValue(val any) (float64, error) {
	switch v := val.(type) {
	case json.Number:
		return v.Float64()
	case string:
		switch v {
		case "NaN":
			return math.NaN(), nil
		case "Infinity":
			return math.Inf(1), nil
		case "-Infinity":
			return math.Inf(-1), nil
		}
		return strconv.ParseFloat(v, 64)
	default:
		return 0, fmt.Errorf("expected number, got %T", val)
	}
}

func intValue(val any, bits int) (int64, error) {
	switch v := val.(type) {
	case json.Number:
		return strconv.ParseInt(v.String(), 10, bits)
	case string:
		return strconv.ParseInt(v, 10, bits)
	default:
		return 0, fmt.Errorf("expected integer, got %T", val)
	}
}

func uintValue(val any, bits int) (uint64, error) {
	switch v := val.(type) {
	case json.Number:
		return strconv.ParseUint(v.String(), 10, bits)
	case string:
		return strconv.ParseUint(v, 10, bits)
	default:
		return 0, fmt.Errorf("expected unsigned integer, got %T", val)
	}
}
