package jsonformat

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
)

func demoType() *schema.Message {
	sub := mustMessage("Sub",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "tag", Number: 2, Kind: schema.KindString})
	e := &schema.Enum{Name: "Color", Values: map[string]int32{"RED": 0, "BLUE": 2}}
	return mustMessage("Demo",
		&schema.Field{Name: "name", Number: 1, Kind: schema.KindString},
		&schema.Field{Name: "count", Number: 2, Kind: schema.KindInt32},
		&schema.Field{Name: "big", Number: 3, Kind: schema.KindInt64},
		&schema.Field{Name: "ubig", Number: 4, Kind: schema.KindUint64},
		&schema.Field{Name: "ratio", Number: 5, Kind: schema.KindDouble},
		&schema.Field{Name: "ok", Number: 6, Kind: schema.KindBool},
		&schema.Field{Name: "data", Number: 7, Kind: schema.KindBytes},
		&schema.Field{Name: "color", Number: 8, Kind: schema.KindEnum, Enum: e},
		&schema.Field{Name: "sub", Number: 9, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "vals", Number: 10, Kind: schema.KindInt32, Label: schema.LabelRepeated},
		&schema.Field{Name: "subs", Number: 11, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated},
	)
}

func TestMarshalCanonicalForms(t *testing.T) {
	typ := demoType()
	m := dynamic.New(typ)
	m.SetString(1, "ada")
	m.SetInt32(2, -5)
	m.SetInt64(3, -1234567890123456789)
	m.SetUint64(4, 18446744073709551615)
	m.SetDouble(5, 0.5)
	m.SetBool(6, true)
	m.SetBytes(7, []byte{0xde, 0xad})
	m.SetInt32(8, 2)
	m.MutableMessage(9).SetInt64(1, 7)
	m.AddScalarBits(10, 1)
	negTwo := int64(-2)
	m.AddScalarBits(10, uint64(negTwo))

	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, want := range []string{
		`"name":"ada"`,
		`"count":-5`,
		`"big":"-1234567890123456789"`, // 64-bit as string
		`"ubig":"18446744073709551615"`,
		`"ratio":0.5`,
		`"ok":true`,
		`"data":"3q0="`, // base64
		`"color":"BLUE"`,
		`"sub":{"id":"7"}`,
		`"vals":[1,-2]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s:\n%s", want, out)
		}
	}
	// Output must be valid JSON.
	var any1 any
	if err := json.Unmarshal(b, &any1); err != nil {
		t.Errorf("invalid JSON: %v", err)
	}
}

func TestNonFiniteFloats(t *testing.T) {
	typ := mustMessage("F",
		&schema.Field{Name: "f", Number: 1, Kind: schema.KindFloat},
		&schema.Field{Name: "d", Number: 2, Kind: schema.KindDouble})
	m := dynamic.New(typ)
	m.SetFloat(1, float32(math.Inf(-1)))
	m.SetDouble(2, math.NaN())
	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"-Infinity"`) || !strings.Contains(string(b), `"NaN"`) {
		t.Errorf("non-finite rendering wrong: %s", b)
	}
	got, err := Unmarshal(typ, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(got.GetFloat(1)), -1) || !math.IsNaN(got.GetDouble(2)) {
		t.Error("non-finite parse wrong")
	}
}

func TestRoundTrip(t *testing.T) {
	typ := demoType()
	m := dynamic.New(typ)
	m.SetString(1, "unicode ✓ and \"quotes\"")
	m.SetInt64(3, math.MinInt64)
	m.SetUint64(4, math.MaxUint64)
	m.SetDouble(5, -2.5e-100)
	m.SetBytes(7, []byte{0, 1, 2, 255})
	m.SetInt32(8, 0)
	s := m.AddMessage(11)
	s.SetInt64(1, 1)
	s.SetString(2, "x")
	m.AddMessage(11)

	b, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(typ, b)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Errorf("round trip not equal:\n%s", b)
	}
}

func TestRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 100; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		b, err := Marshal(msg)
		if err != nil {
			// Random binary blobs in string fields are rejected by the
			// strict UTF-8 rule; that's the specified behaviour.
			if strings.Contains(err.Error(), "UTF-8") {
				continue
			}
			t.Fatal(err)
		}
		got, err := Unmarshal(typ, b)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b)
		}
		// NaN payloads don't survive (canonicalized), like text format.
		if strings.Contains(string(b), `"NaN"`) {
			continue
		}
		if !msg.Equal(got) {
			t.Fatalf("trial %d: round trip not equal\n%s", trial, b)
		}
	}
}

func TestUnmarshalLenientForms(t *testing.T) {
	typ := demoType()
	// 64-bit as bare numbers, enum by number, float from string.
	src := `{"big": -7, "ubig": 7, "color": 2, "ratio": "0.25"}`
	m, err := Unmarshal(typ, []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.GetInt64(3) != -7 || m.GetUint64(4) != 7 || m.GetInt32(8) != 2 || m.GetDouble(5) != 0.25 {
		t.Error("lenient parse wrong")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	typ := demoType()
	cases := map[string]string{
		"not object":     `[1]`,
		"unknown field":  `{"bogus": 1}`,
		"bad bool":       `{"ok": "yes"}`,
		"bad array":      `{"vals": 5}`,
		"bad base64":     `{"data": "!!!"}`,
		"overflow int32": `{"count": 3000000000}`,
		"bad enum name":  `{"color": "GREEN"}`,
		"trailing junk":  `{"count": }`,
	}
	for name, src := range cases {
		if _, err := Unmarshal(typ, []byte(src)); err == nil {
			t.Errorf("%s: expected error for %s", name, src)
		}
	}
}

func TestMarshalIndent(t *testing.T) {
	m := dynamic.New(demoType())
	m.SetString(1, "x")
	b, err := MarshalIndent(m)
	if err != nil || !strings.Contains(string(b), "\n") {
		t.Errorf("indent failed: %v\n%s", err, b)
	}
}

func TestInvalidUTF8Rejected(t *testing.T) {
	typ := mustMessage("U", &schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	m := dynamic.New(typ)
	m.SetBytes(1, []byte{0xff, 0xfe})
	if _, err := Marshal(m); err == nil {
		t.Error("invalid UTF-8 in string field should be rejected")
	}
	// bytes fields are base64, so arbitrary data is fine.
	typ2 := mustMessage("U2", &schema.Field{Name: "b", Number: 1, Kind: schema.KindBytes})
	m2 := dynamic.New(typ2)
	m2.SetBytes(1, []byte{0xff, 0xfe})
	if _, err := Marshal(m2); err != nil {
		t.Errorf("bytes field should marshal: %v", err)
	}
}

func TestNullSubMessage(t *testing.T) {
	typ := demoType()
	m, err := Unmarshal(typ, []byte(`{"sub": null}`))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(9) || m.GetMessage(9) != nil {
		t.Error("null sub-message should be present-but-nil")
	}
	// And re-marshals as null.
	b, _ := Marshal(m)
	if !strings.Contains(string(b), `"sub":null`) {
		t.Errorf("re-marshal: %s", b)
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
