// Package pbtest provides randomized schema and message generators for
// property-based tests across the project: the software codec, the
// accelerator models, and the layout/ADT generators are all exercised
// against messages drawn from these generators.
package pbtest

import (
	"fmt"
	"math/rand"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
)

// SchemaConfig controls RandomSchema.
type SchemaConfig struct {
	MaxFields    int     // max fields per message (min 1)
	MaxDepth     int     // max nesting depth
	MaxFieldNum  int32   // field numbers drawn from [1, MaxFieldNum]
	RepeatedProb float64 // probability a field is repeated
	PackedProb   float64 // probability a repeated scalar is packed
	MessageProb  float64 // probability a field is a sub-message (if depth remains)
}

// DefaultSchemaConfig returns a config producing moderately complex types.
func DefaultSchemaConfig() SchemaConfig {
	return SchemaConfig{
		MaxFields:    12,
		MaxDepth:     4,
		MaxFieldNum:  40,
		RepeatedProb: 0.25,
		PackedProb:   0.5,
		MessageProb:  0.2,
	}
}

var scalarKinds = []schema.Kind{
	schema.KindDouble, schema.KindFloat, schema.KindInt32, schema.KindInt64,
	schema.KindUint32, schema.KindUint64, schema.KindSint32, schema.KindSint64,
	schema.KindFixed32, schema.KindFixed64, schema.KindSfixed32, schema.KindSfixed64,
	schema.KindBool, schema.KindString, schema.KindBytes,
}

// RandomSchema generates a random message type.
func RandomSchema(rng *rand.Rand, cfg SchemaConfig) *schema.Message {
	var counter int
	return randomMessage(rng, cfg, cfg.MaxDepth, &counter)
}

func randomMessage(rng *rand.Rand, cfg SchemaConfig, depth int, counter *int) *schema.Message {
	*counter++
	name := fmt.Sprintf("T%d", *counter)
	nf := 1 + rng.Intn(cfg.MaxFields)
	used := map[int32]bool{}
	var fields []*schema.Field
	for i := 0; i < nf; i++ {
		num := 1 + rng.Int31n(cfg.MaxFieldNum)
		if used[num] || (num >= wire.FirstReservedFieldNumber && num <= wire.LastReservedFieldNumber) {
			continue // duplicate or protobuf-reserved field number
		}
		used[num] = true
		f := &schema.Field{Name: fmt.Sprintf("f%d", num), Number: num}
		if depth > 1 && rng.Float64() < cfg.MessageProb {
			f.Kind = schema.KindMessage
			f.Message = randomMessage(rng, cfg, depth-1, counter)
		} else {
			f.Kind = scalarKinds[rng.Intn(len(scalarKinds))]
		}
		if rng.Float64() < cfg.RepeatedProb {
			f.Label = schema.LabelRepeated
			if f.Kind != schema.KindMessage && f.Kind.Class() != schema.ClassBytesLike &&
				rng.Float64() < cfg.PackedProb {
				f.Packed = true
			}
		}
		fields = append(fields, f)
	}
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		// The guards above keep every generated field valid (unique,
		// non-reserved numbers; scalar-only packing), so reaching here is a
		// bug in the generator itself — which only test code drives.
		panic(fmt.Sprintf("pbtest: generated invalid schema: %v", err))
	}
	return m
}

// MessageConfig controls RandomPopulated.
type MessageConfig struct {
	PresenceProb float64 // probability each field is populated
	MaxRepeat    int     // max elements in a repeated field
	MaxBlobLen   int     // max string/bytes length
}

// DefaultMessageConfig returns a config producing moderately full messages.
func DefaultMessageConfig() MessageConfig {
	return MessageConfig{PresenceProb: 0.7, MaxRepeat: 4, MaxBlobLen: 32}
}

// RandomPopulated creates a message of type t with randomly populated
// fields.
func RandomPopulated(rng *rand.Rand, t *schema.Message, cfg MessageConfig) *dynamic.Message {
	return randomPopulated(rng, t, cfg, 8)
}

func randomPopulated(rng *rand.Rand, t *schema.Message, cfg MessageConfig, depth int) *dynamic.Message {
	m := dynamic.New(t)
	for _, f := range t.Fields {
		if rng.Float64() >= cfg.PresenceProb {
			continue
		}
		count := 1
		if f.Repeated() {
			count = 1 + rng.Intn(cfg.MaxRepeat)
		}
		for i := 0; i < count; i++ {
			switch {
			case f.Kind == schema.KindMessage:
				if depth <= 0 {
					continue
				}
				sub := randomPopulated(rng, f.Message, cfg, depth-1)
				if f.Repeated() {
					// AddMessage returns an empty element; merge content in.
					m.AddMessage(f.Number).Merge(sub)
				} else {
					m.SetMessage(f.Number, sub)
				}
			case f.Kind.Class() == schema.ClassBytesLike:
				b := RandomBlob(rng, rng.Intn(cfg.MaxBlobLen+1))
				if f.Repeated() {
					m.AddBytes(f.Number, b)
				} else {
					m.SetBytes(f.Number, b)
				}
			default:
				bits := RandomScalarBits(rng, f.Kind)
				if f.Repeated() {
					m.AddScalarBits(f.Number, bits)
				} else {
					m.SetScalarBits(f.Number, bits)
				}
			}
		}
	}
	return m
}

// RandomScalarBits draws a random bit pattern valid for kind k, biased
// toward small magnitudes half the time (matching the paper's observation
// that small varints dominate).
func RandomScalarBits(rng *rand.Rand, k schema.Kind) uint64 {
	small := rng.Intn(2) == 0
	switch k {
	case schema.KindBool:
		return uint64(rng.Intn(2))
	case schema.KindInt32, schema.KindSint32, schema.KindSfixed32, schema.KindEnum:
		v := int32(rng.Uint64())
		if small {
			v = int32(rng.Intn(256)) - 128
		}
		return uint64(int64(v))
	case schema.KindUint32, schema.KindFixed32, schema.KindFloat:
		v := uint32(rng.Uint64())
		if small && k != schema.KindFloat {
			v = uint32(rng.Intn(256))
		}
		return uint64(v)
	default:
		v := rng.Uint64()
		if small {
			v = uint64(rng.Intn(256))
		}
		if k == schema.KindInt64 || k == schema.KindSint64 || k == schema.KindSfixed64 {
			return uint64(int64(v) >> uint(rng.Intn(64)))
		}
		return v
	}
}

// RandomBlob returns n random bytes.
func RandomBlob(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
