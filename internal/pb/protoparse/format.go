package protoparse

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"protoacc/internal/pb/schema"
)

// Format renders a schema.File back to proto2 source text. Nested message
// types (those named "Outer.Inner") are emitted inside their parents;
// enums referenced by fields are emitted at file scope. Format and Parse
// are inverses up to formatting: parsing the output reproduces the same
// descriptors, which the HyperProtoBench generator uses to validate its
// emitted schemas.
func Format(f *schema.File) string {
	var sb strings.Builder
	sb.WriteString("syntax = \"proto2\";\n")
	if f.Package != "" {
		fmt.Fprintf(&sb, "package %s;\n", f.Package)
	}
	sb.WriteString("\n")

	// Collect referenced enums (deduplicated, stable order).
	enumSet := map[*schema.Enum]bool{}
	var enums []*schema.Enum
	for _, m := range f.Messages {
		m.Walk(func(t *schema.Message) {
			for _, fd := range t.Fields {
				if fd.Kind == schema.KindEnum && fd.Enum != nil && !enumSet[fd.Enum] {
					enumSet[fd.Enum] = true
					enums = append(enums, fd.Enum)
				}
			}
		})
	}
	for _, e := range enums {
		formatEnum(&sb, e, "")
		sb.WriteString("\n")
	}

	// Group nested types under their parents by name prefix.
	children := map[string][]*schema.Message{}
	var tops []*schema.Message
	for _, m := range f.Messages {
		m.Walk(func(t *schema.Message) {
			if i := strings.LastIndex(t.Name, "."); i >= 0 {
				parent := t.Name[:i]
				children[parent] = append(children[parent], t)
			}
		})
	}
	seen := map[*schema.Message]bool{}
	for _, m := range f.Messages {
		if !seen[m] && !strings.Contains(m.Name, ".") {
			tops = append(tops, m)
			seen[m] = true
		}
	}
	// Messages reachable only as sub-message types still need emission.
	for _, m := range f.Messages {
		m.Walk(func(t *schema.Message) {
			if !seen[t] && !strings.Contains(t.Name, ".") {
				tops = append(tops, t)
				seen[t] = true
			}
		})
	}

	emitted := map[*schema.Message]bool{}
	for _, m := range tops {
		formatMessage(&sb, m, "", children, emitted)
		sb.WriteString("\n")
	}
	return sb.String()
}

func formatEnum(sb *strings.Builder, e *schema.Enum, indent string) {
	fmt.Fprintf(sb, "%senum %s {\n", indent, e.Name)
	names := make([]string, 0, len(e.Values))
	for n := range e.Values {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if e.Values[names[i]] != e.Values[names[j]] {
			return e.Values[names[i]] < e.Values[names[j]]
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		fmt.Fprintf(sb, "%s  %s = %d;\n", indent, n, e.Values[n])
	}
	fmt.Fprintf(sb, "%s}\n", indent)
}

func formatMessage(sb *strings.Builder, m *schema.Message, indent string, children map[string][]*schema.Message, emitted map[*schema.Message]bool) {
	if emitted[m] {
		return
	}
	emitted[m] = true
	short := m.Name
	if i := strings.LastIndex(short, "."); i >= 0 {
		short = short[i+1:]
	}
	fmt.Fprintf(sb, "%smessage %s {\n", indent, short)
	for _, c := range children[m.Name] {
		formatMessage(sb, c, indent+"  ", children, emitted)
	}
	for _, f := range m.Fields {
		var opts []string
		if f.Packed {
			opts = append(opts, "packed=true")
		}
		if def := formatDefault(f); def != "" {
			opts = append(opts, "default="+def)
		}
		optStr := ""
		if len(opts) > 0 {
			optStr = " [" + strings.Join(opts, ", ") + "]"
		}
		fmt.Fprintf(sb, "%s  %s %s %s = %d%s;\n",
			indent, f.Label, typeName(f), f.Name, f.Number, optStr)
	}
	fmt.Fprintf(sb, "%s}\n", indent)
}

func typeName(f *schema.Field) string {
	switch f.Kind {
	case schema.KindMessage:
		return f.Message.Name
	case schema.KindEnum:
		if f.Enum != nil {
			return f.Enum.Name
		}
		return "int32" // synthetic schemas may omit the enum descriptor
	default:
		return f.Kind.String()
	}
}

func formatDefault(f *schema.Field) string {
	switch f.Kind {
	case schema.KindString, schema.KindBytes:
		if f.DefaultBytes == nil {
			return ""
		}
		return fmt.Sprintf("%q", f.DefaultBytes)
	case schema.KindBool:
		if f.Default == 1 {
			return "true"
		}
		return ""
	case schema.KindEnum:
		if f.Default == 0 || f.Enum == nil {
			return ""
		}
		for n, v := range f.Enum.Values {
			if uint64(int64(v)) == f.Default {
				return n
			}
		}
		return ""
	case schema.KindMessage:
		return ""
	default:
		if f.Default == 0 {
			return ""
		}
		switch f.Kind {
		case schema.KindInt32, schema.KindInt64, schema.KindSint32,
			schema.KindSint64, schema.KindSfixed32, schema.KindSfixed64:
			return fmt.Sprintf("%d", int64(f.Default))
		case schema.KindFloat:
			return fmt.Sprintf("%g", math.Float32frombits(uint32(f.Default)))
		case schema.KindDouble:
			return fmt.Sprintf("%g", math.Float64frombits(f.Default))
		default:
			return fmt.Sprintf("%d", f.Default)
		}
	}
}
