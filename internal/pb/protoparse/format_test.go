package protoparse

import (
	"strings"
	"testing"

	"protoacc/internal/pb/schema"
)

// structurallyEqual compares two message descriptors field-by-field.
func structurallyEqual(a, b *schema.Message, seen map[*schema.Message]*schema.Message) bool {
	if prev, ok := seen[a]; ok {
		return prev == b
	}
	seen[a] = b
	if len(a.Fields) != len(b.Fields) {
		return false
	}
	for i, fa := range a.Fields {
		fb := b.Fields[i]
		if fa.Name != fb.Name || fa.Number != fb.Number || fa.Kind != fb.Kind ||
			fa.Label != fb.Label || fa.Packed != fb.Packed ||
			fa.Default != fb.Default || string(fa.DefaultBytes) != string(fb.DefaultBytes) {
			return false
		}
		if fa.Kind == schema.KindMessage && !structurallyEqual(fa.Message, fb.Message, seen) {
			return false
		}
	}
	return true
}

func TestFormatParseRoundTrip(t *testing.T) {
	src := `
		syntax = "proto2";
		package round.trip;
		enum Mode { SLOW = 0; FAST = 1; }
		message Outer {
			message Inner {
				optional string tag = 1;
				optional Outer back = 2;
			}
			required int64 id = 1;
			optional Inner inner = 2;
			repeated int32 packed_vals = 3 [packed=true];
			repeated string names = 4;
			optional bool flag = 5 [default=true];
			optional int32 answer = 6 [default=-42];
			optional double ratio = 7 [default=2.5];
			optional Mode mode = 8 [default=FAST];
			optional bytes blob = 9 [default="\x01\x02"];
		}
	`
	f1, err := Parse("a.proto", src)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f1)
	f2, err := Parse("b.proto", text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nsource:\n%s", err, text)
	}
	m1, m2 := f1.MessageByName("Outer"), f2.MessageByName("Outer")
	if m1 == nil || m2 == nil {
		t.Fatalf("Outer missing after round trip:\n%s", text)
	}
	if !structurallyEqual(m1, m2, map[*schema.Message]*schema.Message{}) {
		t.Errorf("round trip changed structure:\n%s", text)
	}
	if f2.Package != "round.trip" {
		t.Errorf("package lost: %q", f2.Package)
	}
}

func TestFormatRecursive(t *testing.T) {
	f1, err := Parse("r.proto", `message B { optional B f0 = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(f1)
	f2, err := Parse("r2.proto", text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	b := f2.MessageByName("B")
	if b.FieldByName("f0").Message != b {
		t.Error("recursion lost in round trip")
	}
}

func TestFormatSyntheticEnumlessField(t *testing.T) {
	// Synthetic schemas may have enum fields with no descriptor; Format
	// falls back to int32 (wire-compatible).
	typ := mustMessage("M", &schema.Field{Name: "e", Number: 1, Kind: schema.KindEnum})
	text := Format(&schema.File{Messages: []*schema.Message{typ}})
	if !strings.Contains(text, "int32 e = 1") {
		t.Errorf("fallback missing:\n%s", text)
	}
	if _, err := Parse("s.proto", text); err != nil {
		t.Errorf("fallback output unparseable: %v", err)
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
