package protoparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokSymbol // one of = ; { } [ ] , . -
)

type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes proto2 source. Comments (// and /* */) are skipped.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("proto:%d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return l.errorf("unterminated block comment")
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.src[start:l.pos], line}, nil
	case c >= '0' && c <= '9':
		kind := tokInt
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == '.' || c == 'e' || c == 'E' || c == '+' && kind == tokFloat {
				kind = tokFloat
				l.pos++
				continue
			}
			if c >= '0' && c <= '9' || c == 'x' || c == 'X' ||
				c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F' {
				l.pos++
				continue
			}
			break
		}
		return token{kind, l.src[start:l.pos], line}, nil
	case c == '"' || c == '\'':
		quote := c
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated string literal")
			}
			ch := l.src[l.pos]
			if ch == quote {
				l.pos++
				return token{tokString, sb.String(), line}, nil
			}
			if ch == '\n' {
				return token{}, l.errorf("newline in string literal")
			}
			if ch == '\\' {
				l.pos++
				if l.pos >= len(l.src) {
					return token{}, l.errorf("unterminated escape")
				}
				esc := l.src[l.pos]
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case 'r':
					sb.WriteByte('\r')
				case '\\', '"', '\'':
					sb.WriteByte(esc)
				case '0':
					sb.WriteByte(0)
				case 'x':
					if l.pos+2 >= len(l.src) {
						return token{}, l.errorf("truncated \\x escape")
					}
					hi, ok1 := hexVal(l.src[l.pos+1])
					lo, ok2 := hexVal(l.src[l.pos+2])
					if !ok1 || !ok2 {
						return token{}, l.errorf("invalid \\x escape")
					}
					sb.WriteByte(hi<<4 | lo)
					l.pos += 2
				default:
					return token{}, l.errorf("unknown escape \\%c", esc)
				}
				l.pos++
				continue
			}
			sb.WriteByte(ch)
			l.pos++
		}
	case strings.IndexByte("=;{}[],.-()<>", c) >= 0:
		l.pos++
		return token{tokSymbol, string(c), line}, nil
	default:
		return token{}, l.errorf("unexpected character %q", c)
	}
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
