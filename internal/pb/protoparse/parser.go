// Package protoparse parses the proto2 language subset used throughout this
// project into schema descriptors. It plays the role of the protoc
// front-end: HyperProtoBench-style generated .proto files, the example
// services' schemas, and the microbenchmark schemas all pass through it.
//
// Supported: syntax/package declarations, messages (arbitrarily nested and
// recursive), enums, optional/required/repeated labels, all proto2 scalar
// types, [packed=true], [default=...], [deprecated=...] (ignored), reserved
// statements, and option statements (ignored). Unsupported (rejected):
// imports, services, extensions, groups, oneof, and maps — matching the
// feature set the paper's accelerator handles.
package protoparse

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"protoacc/internal/pb/schema"
)

// Parse parses proto2 source text into a schema.File. path is used only
// for error messages and the resulting File.Path.
func Parse(path, src string) (*schema.File, error) {
	p := &parser{lex: newLexer(src), path: path}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f, err := p.parseFile()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.Path = path
	return f, nil
}

// astField is a field before type resolution.
type astField struct {
	label    schema.Label
	typeName string
	name     string
	number   int32
	packed   bool
	defText  string // raw default literal ("" if none)
	defIsStr bool
	line     int
}

// astMessage is a message before type resolution.
type astMessage struct {
	name     string
	fields   []*astField
	children []*astMessage
	enums    []*schema.Enum
	parent   *astMessage

	resolved *schema.Message
}

type parser struct {
	lex   *lexer
	tok   token
	path  string
	roots []*astMessage // set during resolve, for type lookup
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	if p.tok.kind != tokSymbol || p.tok.text != s {
		return p.errorf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected identifier, found %s", p.tok)
	}
	name := p.tok.text
	return name, p.advance()
}

func (p *parser) atIdent(name string) bool {
	return p.tok.kind == tokIdent && p.tok.text == name
}

func (p *parser) atSymbol(s string) bool {
	return p.tok.kind == tokSymbol && p.tok.text == s
}

// skipStatement consumes tokens through the next ';' at nesting level zero.
func (p *parser) skipStatement() error {
	depth := 0
	for {
		switch {
		case p.tok.kind == tokEOF:
			return p.errorf("unexpected end of input in statement")
		case p.atSymbol("{"):
			depth++
		case p.atSymbol("}"):
			depth--
			if depth == 0 {
				return p.advance()
			}
		case p.atSymbol(";") && depth == 0:
			return p.advance()
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *parser) parseFile() (*schema.File, error) {
	f := &schema.File{Syntax: "proto2"}
	var roots []*astMessage
	for p.tok.kind != tokEOF {
		switch {
		case p.atIdent("syntax"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("="); err != nil {
				return nil, err
			}
			if p.tok.kind != tokString {
				return nil, p.errorf("expected syntax string")
			}
			if p.tok.text != "proto2" {
				return nil, p.errorf("unsupported syntax %q (only proto2, per the paper's §3.3 finding)", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case p.atIdent("package"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			var parts []string
			for {
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				parts = append(parts, id)
				if !p.atSymbol(".") {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			f.Package = strings.Join(parts, ".")
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case p.atIdent("option"):
			if err := p.skipStatement(); err != nil {
				return nil, err
			}
		case p.atIdent("import"):
			return nil, p.errorf("import statements are not supported")
		case p.atIdent("service"), p.atIdent("extend"):
			return nil, p.errorf("%s declarations are not supported", p.tok.text)
		case p.atIdent("message"):
			m, err := p.parseMessage(nil)
			if err != nil {
				return nil, err
			}
			roots = append(roots, m)
		case p.atIdent("enum"):
			e, err := p.parseEnum()
			if err != nil {
				return nil, err
			}
			// File-level enums are visible to all messages; carry them in
			// an anonymous synthetic root scope (never matched as a
			// message type).
			roots = append(roots, &astMessage{enums: []*schema.Enum{e}})
		case p.atSymbol(";"):
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unexpected %s at file scope", p.tok)
		}
	}
	return f, p.resolve(f, roots)
}

func (p *parser) parseEnum() (*schema.Enum, error) {
	if err := p.advance(); err != nil { // consume "enum"
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	e := &schema.Enum{Name: name, Values: map[string]int32{}}
	for !p.atSymbol("}") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unterminated enum %s", name)
		}
		if p.atIdent("option") || p.atIdent("reserved") {
			if err := p.skipStatement(); err != nil {
				return nil, err
			}
			continue
		}
		vname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		neg := false
		if p.atSymbol("-") {
			neg = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind != tokInt {
			return nil, p.errorf("expected enum value number")
		}
		v, err := strconv.ParseInt(p.tok.text, 0, 32)
		if err != nil {
			return nil, p.errorf("bad enum value: %v", err)
		}
		if neg {
			v = -v
		}
		if _, dup := e.Values[vname]; dup {
			return nil, p.errorf("duplicate enum value name %s", vname)
		}
		e.Values[vname] = int32(v)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atSymbol("[") { // value options, e.g. [deprecated=true]
			for !p.atSymbol("]") {
				if p.tok.kind == tokEOF {
					return nil, p.errorf("unterminated option list")
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
	}
	return e, p.advance()
}

func (p *parser) parseMessage(parent *astMessage) (*astMessage, error) {
	if err := p.advance(); err != nil { // consume "message"
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	m := &astMessage{name: name, parent: parent}
	for !p.atSymbol("}") {
		switch {
		case p.tok.kind == tokEOF:
			return nil, p.errorf("unterminated message %s", name)
		case p.atIdent("message"):
			child, err := p.parseMessage(m)
			if err != nil {
				return nil, err
			}
			m.children = append(m.children, child)
		case p.atIdent("enum"):
			e, err := p.parseEnum()
			if err != nil {
				return nil, err
			}
			m.enums = append(m.enums, e)
		case p.atIdent("reserved"), p.atIdent("option"), p.atIdent("extensions"):
			if err := p.skipStatement(); err != nil {
				return nil, err
			}
		case p.atIdent("oneof"), p.atIdent("map"), p.atIdent("group"):
			return nil, p.errorf("%s is not supported", p.tok.text)
		case p.atSymbol(";"):
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			fld, err := p.parseField()
			if err != nil {
				return nil, err
			}
			m.fields = append(m.fields, fld)
		}
	}
	return m, p.advance()
}

func (p *parser) parseField() (*astField, error) {
	f := &astField{label: schema.LabelOptional, line: p.tok.line}
	switch {
	case p.atIdent("optional"):
		f.label = schema.LabelOptional
	case p.atIdent("required"):
		f.label = schema.LabelRequired
	case p.atIdent("repeated"):
		f.label = schema.LabelRepeated
	default:
		return nil, p.errorf("proto2 field must begin with optional/required/repeated, found %s", p.tok)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	// Type name: possibly dotted.
	var parts []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		parts = append(parts, id)
		if !p.atSymbol(".") {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	f.typeName = strings.Join(parts, ".")
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f.name = name
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	if p.tok.kind != tokInt {
		return nil, p.errorf("expected field number, found %s", p.tok)
	}
	n, err := strconv.ParseInt(p.tok.text, 0, 32)
	if err != nil {
		return nil, p.errorf("bad field number: %v", err)
	}
	f.number = int32(n)
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.atSymbol("[") {
		if err := p.parseFieldOptions(f); err != nil {
			return nil, err
		}
	}
	return f, p.expectSymbol(";")
}

func (p *parser) parseFieldOptions(f *astField) error {
	if err := p.advance(); err != nil { // consume "["
		return err
	}
	for {
		key, err := p.expectIdent()
		if err != nil {
			return err
		}
		if err := p.expectSymbol("="); err != nil {
			return err
		}
		// Option value: literal, identifier, or signed number.
		var val string
		isStr := false
		if p.atSymbol("-") {
			if err := p.advance(); err != nil {
				return err
			}
			val = "-"
		}
		switch p.tok.kind {
		case tokIdent, tokInt, tokFloat:
			val += p.tok.text
		case tokString:
			val += p.tok.text
			isStr = true
		default:
			return p.errorf("bad option value %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return err
		}
		switch key {
		case "packed":
			f.packed = val == "true"
		case "default":
			f.defText = val
			f.defIsStr = isStr
			if val == "" && isStr {
				f.defText = "\x00empty" // sentinel: explicit empty-string default
			}
		case "deprecated", "lazy", "ctype":
			// accepted and ignored
		default:
			return p.errorf("unknown field option %q", key)
		}
		if p.atSymbol("]") {
			return p.advance()
		}
		if err := p.expectSymbol(","); err != nil {
			return err
		}
	}
}

// resolve performs the second pass: create schema.Message objects for every
// AST message (so recursive references work), then resolve field types and
// defaults and install fields.
func (p *parser) resolve(f *schema.File, roots []*astMessage) error {
	p.roots = roots
	var all []*astMessage
	var collect func(*astMessage)
	collect = func(m *astMessage) {
		all = append(all, m)
		for _, c := range m.children {
			collect(c)
		}
	}
	for _, r := range roots {
		collect(r)
	}
	for _, m := range all {
		m.resolved = &schema.Message{Name: m.fullName()}
	}
	for _, m := range all {
		fields := make([]*schema.Field, 0, len(m.fields))
		for _, af := range m.fields {
			sf, err := p.resolveField(m, af)
			if err != nil {
				return err
			}
			fields = append(fields, sf)
		}
		if err := m.resolved.SetFields(fields); err != nil {
			return err
		}
	}
	for _, r := range roots {
		if r.name == "" {
			continue // synthetic scope for a file-level enum
		}
		f.Messages = append(f.Messages, r.resolved)
	}
	return nil
}

func (m *astMessage) fullName() string {
	if m.parent == nil {
		return m.name
	}
	return m.parent.fullName() + "." + m.name
}

// lookupType resolves name from the scope of m outward: first m's nested
// types, then each ancestor's, then file scope. Dotted names walk nested
// scopes explicitly.
func lookupType(scope *astMessage, roots []*astMessage, name string) (*astMessage, *schema.Enum) {
	parts := strings.Split(name, ".")
	for s := scope; s != nil; s = s.parent {
		if m, e := lookupIn(s, parts); m != nil || e != nil {
			return m, e
		}
	}
	// File scope: treat roots as children of an anonymous scope. Only
	// file-level enums (carried by anonymous synthetic roots) are visible
	// unqualified here; message-nested enums need a dotted path.
	top := &astMessage{}
	for _, r := range roots {
		if r.name == "" {
			top.enums = append(top.enums, r.enums...)
		} else {
			top.children = append(top.children, r)
		}
	}
	return lookupIn(top, parts)
}

// lookupIn resolves the dotted path parts within scope s (checking s's own
// name too, so `Foo.Bar` resolves from inside Foo).
func lookupIn(s *astMessage, parts []string) (*astMessage, *schema.Enum) {
	head, rest := parts[0], parts[1:]
	var cand *astMessage
	if s.name == head {
		cand = s
	}
	if cand == nil {
		for _, c := range s.children {
			if c.name == head {
				cand = c
				break
			}
		}
	}
	if cand == nil {
		if len(rest) == 0 {
			for _, e := range s.enums {
				if e.Name == head {
					return nil, e
				}
			}
		}
		return nil, nil
	}
	if len(rest) == 0 {
		return cand, nil
	}
	return lookupIn(cand, rest)
}

func (p *parser) resolveField(scope *astMessage, af *astField) (*schema.Field, error) {
	sf := &schema.Field{
		Name:   af.name,
		Number: af.number,
		Label:  af.label,
		Packed: af.packed,
	}
	if k, ok := schema.KindByName(af.typeName); ok {
		sf.Kind = k
	} else {
		msg, enum := lookupType(scope, p.roots, af.typeName)
		switch {
		case msg != nil:
			sf.Kind = schema.KindMessage
			sf.Message = msg.resolved
		case enum != nil:
			sf.Kind = schema.KindEnum
			sf.Enum = enum
		default:
			return nil, fmt.Errorf("line %d: unknown type %q for field %s", af.line, af.typeName, af.name)
		}
	}
	if af.packed && (sf.Kind.WireType() == 2 || sf.Kind == schema.KindMessage) {
		return nil, fmt.Errorf("line %d: field %s: packed is invalid for %v", af.line, af.name, sf.Kind)
	}
	if af.defText != "" {
		if err := applyDefault(sf, af); err != nil {
			return nil, fmt.Errorf("line %d: field %s: %w", af.line, af.name, err)
		}
	}
	return sf, nil
}

func applyDefault(sf *schema.Field, af *astField) error {
	text := af.defText
	if text == "\x00empty" {
		text = ""
	}
	switch sf.Kind {
	case schema.KindString, schema.KindBytes:
		if !af.defIsStr {
			return fmt.Errorf("default for %v must be a string literal", sf.Kind)
		}
		sf.DefaultBytes = []byte(text)
	case schema.KindBool:
		switch text {
		case "true":
			sf.Default = 1
		case "false":
			sf.Default = 0
		default:
			return fmt.Errorf("bad bool default %q", text)
		}
	case schema.KindEnum:
		if sf.Enum == nil {
			return fmt.Errorf("enum default on field without enum type")
		}
		v, ok := sf.Enum.Values[text]
		if !ok {
			return fmt.Errorf("unknown enum value %q", text)
		}
		sf.Default = uint64(int64(v))
	case schema.KindFloat:
		v, err := strconv.ParseFloat(text, 32)
		if err != nil {
			return fmt.Errorf("bad float default %q", text)
		}
		sf.Default = uint64(math.Float32bits(float32(v)))
	case schema.KindDouble:
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("bad double default %q", text)
		}
		sf.Default = math.Float64bits(v)
	case schema.KindUint32, schema.KindUint64, schema.KindFixed32, schema.KindFixed64:
		v, err := strconv.ParseUint(text, 0, 64)
		if err != nil {
			return fmt.Errorf("bad unsigned default %q", text)
		}
		sf.Default = v
	case schema.KindInt32, schema.KindInt64, schema.KindSint32, schema.KindSint64,
		schema.KindSfixed32, schema.KindSfixed64:
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return fmt.Errorf("bad integer default %q", text)
		}
		sf.Default = uint64(v)
	default:
		return fmt.Errorf("default not allowed on %v field", sf.Kind)
	}
	return nil
}
