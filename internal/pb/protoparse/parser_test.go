package protoparse

import (
	"math"
	"strings"
	"testing"

	"protoacc/internal/pb/schema"
)

func mustParse(t *testing.T, src string) *schema.File {
	t.Helper()
	f, err := Parse("test.proto", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseBasicMessage(t *testing.T) {
	f := mustParse(t, `
		syntax = "proto2";
		package bench.micro;

		// A message exercising every scalar kind.
		message Scalars {
			optional double   d   = 1;
			optional float    f   = 2;
			optional int32    i32 = 3;
			optional int64    i64 = 4;
			optional uint32   u32 = 5;
			optional uint64   u64 = 6;
			optional sint32   s32 = 7;
			optional sint64   s64 = 8;
			optional fixed32  x32 = 9;
			optional fixed64  x64 = 10;
			optional sfixed32 y32 = 11;
			optional sfixed64 y64 = 12;
			optional bool     b   = 13;
			optional string   s   = 14;
			optional bytes    by  = 15;
		}
	`)
	if f.Package != "bench.micro" {
		t.Errorf("Package = %q", f.Package)
	}
	m := f.MessageByName("Scalars")
	if m == nil {
		t.Fatal("Scalars not found")
	}
	if len(m.Fields) != 15 {
		t.Fatalf("got %d fields", len(m.Fields))
	}
	wantKinds := []schema.Kind{
		schema.KindDouble, schema.KindFloat, schema.KindInt32, schema.KindInt64,
		schema.KindUint32, schema.KindUint64, schema.KindSint32, schema.KindSint64,
		schema.KindFixed32, schema.KindFixed64, schema.KindSfixed32, schema.KindSfixed64,
		schema.KindBool, schema.KindString, schema.KindBytes,
	}
	for i, k := range wantKinds {
		if m.Fields[i].Kind != k {
			t.Errorf("field %d kind = %v, want %v", i+1, m.Fields[i].Kind, k)
		}
	}
}

func TestParseLabelsAndPacked(t *testing.T) {
	f := mustParse(t, `
		message M {
			required int32 a = 1;
			repeated int64 b = 2;
			repeated int32 c = 3 [packed=true];
			repeated string d = 4;
		}
	`)
	m := f.MessageByName("M")
	if m.FieldByName("a").Label != schema.LabelRequired {
		t.Error("a should be required")
	}
	if m.FieldByName("b").Label != schema.LabelRepeated || m.FieldByName("b").Packed {
		t.Error("b should be repeated, unpacked")
	}
	if !m.FieldByName("c").Packed {
		t.Error("c should be packed")
	}
}

func TestParseNestedAndRecursive(t *testing.T) {
	f := mustParse(t, `
		message Tree {
			optional int32 value = 1;
			repeated Tree children = 2;
			optional Inner inner = 3;
			message Inner {
				optional string name = 1;
				optional Tree back = 2; // refers to outer type
			}
		}
	`)
	tree := f.MessageByName("Tree")
	if tree == nil {
		t.Fatal("Tree not found")
	}
	ch := tree.FieldByName("children")
	if ch.Kind != schema.KindMessage || ch.Message != tree {
		t.Error("children should be recursive reference to Tree")
	}
	inner := tree.FieldByName("inner").Message
	if inner == nil || inner.Name != "Tree.Inner" {
		t.Fatalf("inner = %v", inner)
	}
	if inner.FieldByName("back").Message != tree {
		t.Error("Inner.back should refer to Tree")
	}
}

func TestParseDottedReference(t *testing.T) {
	f := mustParse(t, `
		message Outer {
			message Mid {
				message Leaf { optional int32 v = 1; }
			}
		}
		message User {
			optional Outer.Mid.Leaf leaf = 1;
		}
	`)
	u := f.MessageByName("User")
	if u.FieldByName("leaf").Message.Name != "Outer.Mid.Leaf" {
		t.Errorf("leaf type = %q", u.FieldByName("leaf").Message.Name)
	}
}

func TestParseEnum(t *testing.T) {
	f := mustParse(t, `
		enum Color { RED = 0; GREEN = 1; BLUE = 2; }
		message M {
			optional Color c = 1 [default=GREEN];
			repeated Status history = 2;
			enum Status { OK = 0; FAIL = -1; }
		}
	`)
	m := f.MessageByName("M")
	c := m.FieldByName("c")
	if c.Kind != schema.KindEnum || c.Enum.Name != "Color" {
		t.Fatalf("c = %v/%v", c.Kind, c.Enum)
	}
	if c.Default != 1 {
		t.Errorf("default = %d, want GREEN=1", c.Default)
	}
	h := m.FieldByName("history")
	if h.Kind != schema.KindEnum || h.Enum.Values["FAIL"] != -1 {
		t.Errorf("history enum wrong: %v", h.Enum)
	}
}

func TestParseDefaults(t *testing.T) {
	f := mustParse(t, `
		message M {
			optional int32  a = 1 [default=-42];
			optional uint64 b = 2 [default=0xff];
			optional double c = 3 [default=2.5];
			optional float  g = 7 [default=1.5];
			optional bool   d = 4 [default=true];
			optional string e = 5 [default="hi\n"];
			optional bytes  h = 8 [default=""];
			optional sint64 i = 9 [default=-1];
		}
	`)
	m := f.MessageByName("M")
	if got := int64(m.FieldByName("a").Default); got != -42 {
		t.Errorf("a default = %d", got)
	}
	if m.FieldByName("b").Default != 255 {
		t.Errorf("b default = %d", m.FieldByName("b").Default)
	}
	if math.Float64frombits(m.FieldByName("c").Default) != 2.5 {
		t.Error("c default wrong")
	}
	if math.Float32frombits(uint32(m.FieldByName("g").Default)) != 1.5 {
		t.Error("g default wrong")
	}
	if m.FieldByName("d").Default != 1 {
		t.Error("d default wrong")
	}
	if string(m.FieldByName("e").DefaultBytes) != "hi\n" {
		t.Errorf("e default = %q", m.FieldByName("e").DefaultBytes)
	}
	if m.FieldByName("h").DefaultBytes == nil {
		t.Error("h explicit empty default should be non-nil")
	}
	if got := int64(m.FieldByName("i").Default); got != -1 {
		t.Errorf("i default = %d", got)
	}
}

func TestParseReservedAndOptions(t *testing.T) {
	f := mustParse(t, `
		syntax = "proto2";
		option java_package = "com.example";
		message M {
			option deprecated = true;
			reserved 2, 15, 9 to 11;
			reserved "foo", "bar";
			optional int32 a = 1 [deprecated=true];
			extensions 100 to 199;
		}
	`)
	if f.MessageByName("M").FieldByName("a") == nil {
		t.Error("field a lost")
	}
}

func TestParseComments(t *testing.T) {
	f := mustParse(t, `
		// line comment
		/* block
		   comment */
		message M { optional int32 a = 1; /* trailing */ } // end
	`)
	if f.MessageByName("M") == nil {
		t.Error("M not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, errSub string
	}{
		{"proto3", `syntax = "proto3";`, "unsupported syntax"},
		{"import", `import "other.proto";`, "not supported"},
		{"nolabel", `message M { int32 a = 1; }`, "must begin with"},
		{"badtype", `message M { optional int16 a = 1; }`, "unknown type"},
		{"dupnum", `message M { optional int32 a = 1; optional int32 b = 1; }`, "duplicate"},
		{"oneof", `message M { oneof o { int32 a = 1; } }`, "not supported"},
		{"unterminated", `message M { optional int32 a = 1;`, "unterminated"},
		{"service", `service S {}`, "not supported"},
		{"packedstring", `message M { repeated string a = 1 [packed=true]; }`, "packed"},
		{"badenumdefault", `enum E { A = 0; } message M { optional E e = 1 [default=B]; }`, "unknown enum value"},
		{"badbool", `message M { optional bool b = 1 [default=yes]; }`, "bad bool"},
		{"unknownopt", `message M { optional int32 a = 1 [weird=1]; }`, "unknown field option"},
		{"badchar", `message M { optional int32 a = 1; } @`, "unexpected character"},
		{"msgdefault", `message S {} message M { optional S s = 1 [default=x]; }`, "default not allowed"},
	}
	for _, c := range cases {
		_, err := Parse("t.proto", c.src)
		if err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.errSub)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	f := mustParse(t, `message M { optional bytes b = 1 [default="\x01\x02\t\\\"\0"]; }`)
	got := f.MessageByName("M").FieldByName("b").DefaultBytes
	want := []byte{1, 2, '\t', '\\', '"', 0}
	if string(got) != string(want) {
		t.Errorf("escapes = %v, want %v", got, want)
	}
}

func TestFileLevelEnumNotAMessage(t *testing.T) {
	f := mustParse(t, `enum E { A = 0; } message M { optional E e = 1; }`)
	if len(f.Messages) != 1 || f.Messages[0].Name != "M" {
		names := make([]string, len(f.Messages))
		for i, m := range f.Messages {
			names[i] = m.Name
		}
		t.Errorf("Messages = %v, want [M]", names)
	}
}

func TestParsePaperFigure1Style(t *testing.T) {
	// The recursive/repeated example from Figure 1 of the paper.
	f := mustParse(t, `
		syntax = "proto2";
		message A {
			repeated int32 f0 = 1;
		}
		message B {
			optional B f0 = 1;
		}
	`)
	a := f.MessageByName("A")
	if !a.FieldByName("f0").Repeated() {
		t.Error("A.f0 should be repeated")
	}
	b := f.MessageByName("B")
	if b.FieldByName("f0").Message != b {
		t.Error("B.f0 should be recursive")
	}
}
