// Package registry is the protodb analogue (§3.1.3 of the paper): a
// static database of every .proto file and message type in a codebase,
// answering the questions the paper's study asks of protodb — which
// language version a type is defined against, whether repeated fields are
// packed, the range of field numbers defined in a message, definition
// density, and aggregate type statistics.
package registry

import (
	"fmt"
	"sort"

	"protoacc/internal/pb/schema"
)

// Registry indexes files and their message types by fully-qualified name
// (package.Message, nested types as package.Outer.Inner).
type Registry struct {
	files  []*schema.File
	byName map[string]*schema.Message
	file   map[*schema.Message]*schema.File
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		byName: make(map[string]*schema.Message),
		file:   make(map[*schema.Message]*schema.File),
	}
}

// qualified returns the fully-qualified name of t within f.
func qualified(f *schema.File, t *schema.Message) string {
	if f.Package == "" {
		return t.Name
	}
	return f.Package + "." + t.Name
}

// AddFile registers a parsed file and every message type reachable from
// its top-level messages. Duplicate fully-qualified names are rejected
// (protodb's one-definition rule).
func (r *Registry) AddFile(f *schema.File) error {
	var added []string
	rollback := func() {
		for _, n := range added {
			delete(r.file, r.byName[n])
			delete(r.byName, n)
		}
	}
	for _, top := range f.Messages {
		var err error
		top.Walk(func(t *schema.Message) {
			if err != nil {
				return
			}
			name := qualified(f, t)
			if prev, dup := r.byName[name]; dup {
				if prev == t {
					return // same type reachable from two roots
				}
				err = fmt.Errorf("registry: duplicate type %q (already in %s)", name, r.file[prev].Path)
				return
			}
			r.byName[name] = t
			r.file[t] = f
			added = append(added, name)
		})
		if err != nil {
			rollback()
			return err
		}
	}
	r.files = append(r.files, f)
	return nil
}

// Message resolves a fully-qualified type name, or nil.
func (r *Registry) Message(name string) *schema.Message { return r.byName[name] }

// FileOf returns the file a type was defined in, or nil.
func (r *Registry) FileOf(t *schema.Message) *schema.File { return r.file[t] }

// Files returns the registered files in registration order.
func (r *Registry) Files() []*schema.File { return r.files }

// TypeNames returns all fully-qualified names, sorted.
func (r *Registry) TypeNames() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Stats are the protodb-style static aggregates over the registered
// schema corpus.
type Stats struct {
	Files    int
	Messages int
	Fields   int

	RepeatedFields int
	PackedFields   int // repeated scalars with [packed=true]
	PackedShare    float64

	FieldsByKind map[schema.Kind]int

	MaxFieldNumber    int32
	MaxFieldRange     int32
	MeanDensity       float64 // mean static definition density
	DensityBelow164   float64 // share of types below the 1/64 ADT crossover
	Proto2Files       int
	MaxSchemaDepth    int
	RecursiveMessages int
}

// Stats computes the corpus aggregates.
func (r *Registry) Stats() Stats {
	s := Stats{
		Files:        len(r.files),
		FieldsByKind: make(map[schema.Kind]int),
	}
	var densitySum float64
	var repeatedScalar int
	for _, f := range r.files {
		if f.Syntax == "proto2" || f.Syntax == "" {
			s.Proto2Files++
		}
	}
	for _, name := range r.TypeNames() {
		t := r.byName[name]
		s.Messages++
		s.Fields += len(t.Fields)
		for _, fd := range t.Fields {
			s.FieldsByKind[fd.Kind]++
			if fd.Repeated() {
				s.RepeatedFields++
				if fd.Kind != schema.KindMessage && fd.Kind.Class() != schema.ClassBytesLike {
					repeatedScalar++
					if fd.Packed {
						s.PackedFields++
					}
				}
			}
			if fd.Number > s.MaxFieldNumber {
				s.MaxFieldNumber = fd.Number
			}
		}
		if rng := t.FieldNumberRange(); rng > s.MaxFieldRange {
			s.MaxFieldRange = rng
		}
		d := t.DefinitionDensity()
		densitySum += d
		if d > 0 && d < 1.0/64 {
			s.DensityBelow164++
		}
		if depth := t.MaxDepth(200); depth > s.MaxSchemaDepth {
			s.MaxSchemaDepth = depth
		}
		if isRecursive(t) {
			s.RecursiveMessages++
		}
	}
	if s.Messages > 0 {
		s.MeanDensity = densitySum / float64(s.Messages)
		s.DensityBelow164 /= float64(s.Messages)
	}
	if repeatedScalar > 0 {
		s.PackedShare = float64(s.PackedFields) / float64(repeatedScalar)
	}
	return s
}

// isRecursive reports whether t can reach itself through sub-message
// fields.
func isRecursive(t *schema.Message) bool {
	seen := map[*schema.Message]bool{}
	var walk func(m *schema.Message) bool
	walk = func(m *schema.Message) bool {
		for _, f := range m.Fields {
			if f.Kind != schema.KindMessage {
				continue
			}
			if f.Message == t {
				return true
			}
			if !seen[f.Message] {
				seen[f.Message] = true
				if walk(f.Message) {
					return true
				}
			}
		}
		return false
	}
	return walk(t)
}
