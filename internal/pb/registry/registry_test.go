package registry

import (
	"strings"
	"testing"

	"protoacc/internal/pb/protoparse"
	"protoacc/internal/pb/schema"
)

func parse(t *testing.T, path, src string) *schema.File {
	t.Helper()
	f, err := protoparse.Parse(path, src)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAddAndResolve(t *testing.T) {
	r := New()
	f := parse(t, "a.proto", `
		syntax = "proto2";
		package corp.storage;
		message Record {
			optional int64 id = 1;
			optional Meta meta = 2;
			message Meta { optional string owner = 1; }
		}
	`)
	if err := r.AddFile(f); err != nil {
		t.Fatal(err)
	}
	if r.Message("corp.storage.Record") == nil {
		t.Error("Record not resolvable")
	}
	if r.Message("corp.storage.Record.Meta") == nil {
		t.Error("nested Meta not resolvable")
	}
	if r.Message("corp.storage.Nope") != nil {
		t.Error("phantom type resolved")
	}
	if got := r.FileOf(r.Message("corp.storage.Record")); got != f {
		t.Error("FileOf wrong")
	}
	names := r.TypeNames()
	if len(names) != 2 || names[0] != "corp.storage.Record" {
		t.Errorf("TypeNames = %v", names)
	}
}

func TestDuplicateRejected(t *testing.T) {
	r := New()
	src := `syntax = "proto2"; package p; message M { optional int32 a = 1; }`
	if err := r.AddFile(parse(t, "a.proto", src)); err != nil {
		t.Fatal(err)
	}
	err := r.AddFile(parse(t, "b.proto", src))
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v", err)
	}
	// Rollback: the registry still has exactly one M and one file.
	if len(r.Files()) != 1 || len(r.TypeNames()) != 1 {
		t.Error("failed AddFile should not leave partial state")
	}
}

func TestStats(t *testing.T) {
	r := New()
	f := parse(t, "s.proto", `
		syntax = "proto2";
		package p;
		message Tree {
			optional int32 v = 1;
			repeated Tree kids = 2;
			repeated int32 packedv = 3 [packed=true];
			repeated int32 unpackedv = 4;
			optional string name = 10;
		}
		message Sparse {
			optional bool a = 1;
			optional bool b = 1000;
		}
	`)
	if err := r.AddFile(f); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Files != 1 || s.Messages != 2 || s.Fields != 7 {
		t.Errorf("counts = %+v", s)
	}
	if s.RepeatedFields != 3 || s.PackedFields != 1 {
		t.Errorf("repeated/packed = %d/%d", s.RepeatedFields, s.PackedFields)
	}
	if s.PackedShare != 0.5 { // 1 of 2 repeated scalars
		t.Errorf("PackedShare = %f", s.PackedShare)
	}
	if s.MaxFieldNumber != 1000 || s.MaxFieldRange != 1000 {
		t.Errorf("max num/range = %d/%d", s.MaxFieldNumber, s.MaxFieldRange)
	}
	if s.RecursiveMessages != 1 {
		t.Errorf("recursive = %d", s.RecursiveMessages)
	}
	if s.Proto2Files != 1 {
		t.Errorf("proto2 files = %d", s.Proto2Files)
	}
	if s.FieldsByKind[schema.KindInt32] != 3 {
		t.Errorf("int32 fields = %d", s.FieldsByKind[schema.KindInt32])
	}
	// Sparse has density 2/1000 < 1/64 -> half the corpus below crossover.
	if s.DensityBelow164 != 0.5 {
		t.Errorf("DensityBelow164 = %f", s.DensityBelow164)
	}
}

func TestSharedTypeAcrossRoots(t *testing.T) {
	r := New()
	f := parse(t, "x.proto", `
		syntax = "proto2";
		package p;
		message Common { optional int32 v = 1; }
		message A { optional Common c = 1; }
		message B { optional Common c = 1; }
	`)
	if err := r.AddFile(f); err != nil {
		t.Fatal(err)
	}
	if len(r.TypeNames()) != 3 {
		t.Errorf("TypeNames = %v", r.TypeNames())
	}
}
