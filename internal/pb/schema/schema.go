// Package schema defines proto2 message descriptors: the static description
// of message types, their fields, labels, and types that the rest of the
// system (software codec, layout generator, ADT generator, accelerator
// model, benchmark generators) is driven from.
//
// Descriptors correspond to what protoc derives from .proto files; package
// protoparse builds them from proto2 source and the benchmark generators
// build them programmatically.
package schema

import (
	"fmt"
	"sort"

	"protoacc/internal/pb/wire"
)

// Kind is a proto2 field type.
type Kind uint8

// Field kinds, mirroring the proto2 scalar types plus message-typed fields.
// Groups are deprecated and unsupported, matching the paper's scope.
const (
	KindInvalid Kind = iota
	KindDouble
	KindFloat
	KindInt32
	KindInt64
	KindUint32
	KindUint64
	KindSint32
	KindSint64
	KindFixed32
	KindFixed64
	KindSfixed32
	KindSfixed64
	KindBool
	KindEnum
	KindString
	KindBytes
	KindMessage
)

var kindNames = [...]string{
	KindInvalid:  "invalid",
	KindDouble:   "double",
	KindFloat:    "float",
	KindInt32:    "int32",
	KindInt64:    "int64",
	KindUint32:   "uint32",
	KindUint64:   "uint64",
	KindSint32:   "sint32",
	KindSint64:   "sint64",
	KindFixed32:  "fixed32",
	KindFixed64:  "fixed64",
	KindSfixed32: "sfixed32",
	KindSfixed64: "sfixed64",
	KindBool:     "bool",
	KindEnum:     "enum",
	KindString:   "string",
	KindBytes:    "bytes",
	KindMessage:  "message",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("schema.Kind(%d)", uint8(k))
}

// KindByName maps a proto2 scalar type name to its Kind. Message type names
// are resolved separately by the parser.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name && Kind(k) != KindInvalid && Kind(k) != KindMessage && Kind(k) != KindEnum {
			return Kind(k), true
		}
	}
	return KindInvalid, false
}

// WireType returns the wire type used for a single (non-packed) value of
// this kind.
func (k Kind) WireType() wire.Type {
	switch k {
	case KindDouble, KindFixed64, KindSfixed64:
		return wire.TypeFixed64
	case KindFloat, KindFixed32, KindSfixed32:
		return wire.TypeFixed32
	case KindString, KindBytes, KindMessage:
		return wire.TypeBytes
	default:
		return wire.TypeVarint
	}
}

// IsVarint reports whether values of this kind are varint-encoded on the
// wire.
func (k Kind) IsVarint() bool { return k.WireType() == wire.TypeVarint }

// IsZigZag reports whether values of this kind use zig-zag encoding.
func (k Kind) IsZigZag() bool { return k == KindSint32 || k == KindSint64 }

// FixedWireSize returns the on-wire size of a fixed-width value of this
// kind, or 0 for variable-width kinds.
func (k Kind) FixedWireSize() int {
	switch k.WireType() {
	case wire.TypeFixed32:
		return 4
	case wire.TypeFixed64:
		return 8
	default:
		return 0
	}
}

// PerfClass is the paper's Table 1 classification of field types into
// performance-similar groups.
type PerfClass uint8

// Table 1 performance classes.
const (
	ClassBytesLike   PerfClass = iota // bytes, string
	ClassVarintLike                   // {s,u}int{32,64}, int{32,64}, enum, bool
	ClassFloatLike                    // float
	ClassDoubleLike                   // double
	ClassFixed32Like                  // fixed32, sfixed32
	ClassFixed64Like                  // fixed64, sfixed64
	ClassMessage                      // sub-messages (not a Table 1 row; accounted via contained fields)
)

func (c PerfClass) String() string {
	switch c {
	case ClassBytesLike:
		return "bytes-like"
	case ClassVarintLike:
		return "varint-like"
	case ClassFloatLike:
		return "float-like"
	case ClassDoubleLike:
		return "double-like"
	case ClassFixed32Like:
		return "fixed32-like"
	case ClassFixed64Like:
		return "fixed64-like"
	case ClassMessage:
		return "message"
	default:
		return fmt.Sprintf("schema.PerfClass(%d)", uint8(c))
	}
}

// Class returns the Table 1 performance class for this kind.
func (k Kind) Class() PerfClass {
	switch k {
	case KindString, KindBytes:
		return ClassBytesLike
	case KindFloat:
		return ClassFloatLike
	case KindDouble:
		return ClassDoubleLike
	case KindFixed32, KindSfixed32:
		return ClassFixed32Like
	case KindFixed64, KindSfixed64:
		return ClassFixed64Like
	case KindMessage:
		return ClassMessage
	default:
		return ClassVarintLike
	}
}

// Label is a proto2 field cardinality qualifier.
type Label uint8

// proto2 labels.
const (
	LabelOptional Label = iota
	LabelRequired
	LabelRepeated
)

func (l Label) String() string {
	switch l {
	case LabelOptional:
		return "optional"
	case LabelRequired:
		return "required"
	case LabelRepeated:
		return "repeated"
	default:
		return fmt.Sprintf("schema.Label(%d)", uint8(l))
	}
}

// Enum describes a proto2 enum type. Enums behave as varint-like int32
// values everywhere in the system; the descriptor exists for name
// resolution and default-value parsing.
type Enum struct {
	Name   string
	Values map[string]int32
}

// Field describes one field of a message type.
type Field struct {
	Name    string
	Number  int32
	Kind    Kind
	Label   Label
	Packed  bool     // repeated scalar with [packed=true]
	Message *Message // element type for KindMessage fields
	Enum    *Enum    // type for KindEnum fields (may be nil for synthetic schemas)

	// Default is the proto2 default value for absent optional scalar
	// fields, stored as a raw 64-bit pattern: two's complement
	// (sign-extended) for signed integer kinds, IEEE-754 bits for
	// float/double, 0/1 for bool. String/bytes defaults live in
	// DefaultBytes.
	Default      uint64
	DefaultBytes []byte
}

// Repeated reports whether the field is a vector.
func (f *Field) Repeated() bool { return f.Label == LabelRepeated }

// WireType returns the wire type this field's values appear with on the
// wire: the packed encoding uses a single length-delimited value.
func (f *Field) WireType() wire.Type {
	if f.Packed {
		return wire.TypeBytes
	}
	return f.Kind.WireType()
}

// Validate checks field-level invariants.
func (f *Field) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("schema: field %d has no name", f.Number)
	}
	if f.Number <= 0 || f.Number > wire.MaxFieldNumber {
		return fmt.Errorf("schema: field %s: number %d out of range", f.Name, f.Number)
	}
	if f.Number >= wire.FirstReservedFieldNumber && f.Number <= wire.LastReservedFieldNumber {
		return fmt.Errorf("schema: field %s: number %d is reserved", f.Name, f.Number)
	}
	if f.Kind == KindInvalid || f.Kind > KindMessage {
		return fmt.Errorf("schema: field %s: invalid kind", f.Name)
	}
	if f.Kind == KindMessage && f.Message == nil {
		return fmt.Errorf("schema: field %s: message kind with nil type", f.Name)
	}
	if f.Packed {
		if !f.Repeated() {
			return fmt.Errorf("schema: field %s: packed on non-repeated field", f.Name)
		}
		if wt := f.Kind.WireType(); wt == wire.TypeBytes {
			return fmt.Errorf("schema: field %s: packed on length-delimited kind %v", f.Name, f.Kind)
		}
	}
	return nil
}

// Message describes a message type: an ordered collection of fields.
type Message struct {
	Name   string
	Fields []*Field // sorted by field number

	byNumber map[int32]*Field
}

// NewMessage constructs a message descriptor, sorting fields by number and
// validating invariants (unique numbers, valid fields).
func NewMessage(name string, fields ...*Field) (*Message, error) {
	m := &Message{Name: name}
	if err := m.SetFields(fields); err != nil {
		return nil, err
	}
	return m, nil
}

// SetFields replaces the message's field set. It exists so recursive types
// can be built: create the Message, then set fields that refer back to it.
func (m *Message) SetFields(fields []*Field) error {
	sorted := make([]*Field, len(fields))
	copy(sorted, fields)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Number < sorted[j].Number })
	byNum := make(map[int32]*Field, len(sorted))
	for _, f := range sorted {
		if err := f.Validate(); err != nil {
			return fmt.Errorf("%s: %w", m.Name, err)
		}
		if _, dup := byNum[f.Number]; dup {
			return fmt.Errorf("schema: %s: duplicate field number %d", m.Name, f.Number)
		}
		byNum[f.Number] = f
	}
	m.Fields = sorted
	m.byNumber = byNum
	return nil
}

// FieldByNumber returns the field with the given number, or nil.
func (m *Message) FieldByNumber(n int32) *Field {
	return m.byNumber[n]
}

// FieldByName returns the field with the given name, or nil.
func (m *Message) FieldByName(name string) *Field {
	for _, f := range m.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// MinFieldNumber returns the smallest defined field number (0 if empty).
// The accelerator indexes ADTs and sparse hasbits relative to this value
// (§4.2 of the paper).
func (m *Message) MinFieldNumber() int32 {
	if len(m.Fields) == 0 {
		return 0
	}
	return m.Fields[0].Number
}

// MaxFieldNumber returns the largest defined field number (0 if empty).
func (m *Message) MaxFieldNumber() int32 {
	if len(m.Fields) == 0 {
		return 0
	}
	return m.Fields[len(m.Fields)-1].Number
}

// FieldNumberRange returns max-min+1, the number of ADT entry slots and
// sparse hasbits bits the type requires (0 if empty).
func (m *Message) FieldNumberRange() int32 {
	if len(m.Fields) == 0 {
		return 0
	}
	return m.MaxFieldNumber() - m.MinFieldNumber() + 1
}

// DefinitionDensity is the static variant of the paper's §3.7 field-number
// usage density: defined fields divided by the field number range. The
// dynamic (per-instance) density is computed by the fleet sampler.
func (m *Message) DefinitionDensity() float64 {
	r := m.FieldNumberRange()
	if r == 0 {
		return 0
	}
	return float64(len(m.Fields)) / float64(r)
}

// MaxDepth returns the deepest nesting level reachable from m, counting m
// itself as depth 1. Recursive types return limit. The accelerator sizes
// its metadata stacks from this (§3.8).
func (m *Message) MaxDepth(limit int) int {
	return m.depth(limit, make(map[*Message]bool))
}

func (m *Message) depth(limit int, onPath map[*Message]bool) int {
	if limit <= 0 || onPath[m] {
		return limit
	}
	onPath[m] = true
	defer delete(onPath, m)
	d := 1
	for _, f := range m.Fields {
		if f.Kind == KindMessage {
			if sub := 1 + f.Message.depth(limit-1, onPath); sub > d {
				d = sub
			}
		}
	}
	return d
}

// Walk visits m and every message type reachable from it exactly once, in
// a deterministic (pre-order, field-number) order.
func (m *Message) Walk(visit func(*Message)) {
	seen := make(map[*Message]bool)
	var rec func(*Message)
	rec = func(msg *Message) {
		if seen[msg] {
			return
		}
		seen[msg] = true
		visit(msg)
		for _, f := range msg.Fields {
			if f.Kind == KindMessage {
				rec(f.Message)
			}
		}
	}
	rec(m)
}

// File is a parsed .proto file: a named set of top-level message types,
// what protodb records per file (§3.1.3).
type File struct {
	Path     string
	Package  string
	Syntax   string // "proto2"
	Messages []*Message
}

// MessageByName returns the top-level message with the given name, or nil.
func (f *File) MessageByName(name string) *Message {
	for _, m := range f.Messages {
		if m.Name == name {
			return m
		}
	}
	return nil
}
