package schema

import (
	"strings"
	"testing"

	"protoacc/internal/pb/wire"
)

func TestKindWireTypes(t *testing.T) {
	cases := []struct {
		k Kind
		w wire.Type
	}{
		{KindDouble, wire.TypeFixed64},
		{KindFloat, wire.TypeFixed32},
		{KindInt32, wire.TypeVarint},
		{KindInt64, wire.TypeVarint},
		{KindUint32, wire.TypeVarint},
		{KindUint64, wire.TypeVarint},
		{KindSint32, wire.TypeVarint},
		{KindSint64, wire.TypeVarint},
		{KindFixed32, wire.TypeFixed32},
		{KindFixed64, wire.TypeFixed64},
		{KindSfixed32, wire.TypeFixed32},
		{KindSfixed64, wire.TypeFixed64},
		{KindBool, wire.TypeVarint},
		{KindEnum, wire.TypeVarint},
		{KindString, wire.TypeBytes},
		{KindBytes, wire.TypeBytes},
		{KindMessage, wire.TypeBytes},
	}
	for _, c := range cases {
		if got := c.k.WireType(); got != c.w {
			t.Errorf("%v.WireType() = %v, want %v", c.k, got, c.w)
		}
	}
}

func TestTable1Classes(t *testing.T) {
	// Table 1 of the paper.
	want := map[Kind]PerfClass{
		KindBytes: ClassBytesLike, KindString: ClassBytesLike,
		KindSint64: ClassVarintLike, KindSint32: ClassVarintLike,
		KindUint64: ClassVarintLike, KindUint32: ClassVarintLike,
		KindInt64: ClassVarintLike, KindInt32: ClassVarintLike,
		KindEnum: ClassVarintLike, KindBool: ClassVarintLike,
		KindFloat:   ClassFloatLike,
		KindDouble:  ClassDoubleLike,
		KindFixed32: ClassFixed32Like, KindSfixed32: ClassFixed32Like,
		KindFixed64: ClassFixed64Like, KindSfixed64: ClassFixed64Like,
	}
	for k, c := range want {
		if got := k.Class(); got != c {
			t.Errorf("%v.Class() = %v, want %v", k, got, c)
		}
	}
}

func TestKindByName(t *testing.T) {
	for _, name := range []string{"double", "float", "int32", "int64", "uint32",
		"uint64", "sint32", "sint64", "fixed32", "fixed64", "sfixed32",
		"sfixed64", "bool", "string", "bytes"} {
		k, ok := KindByName(name)
		if !ok || k.String() != name {
			t.Errorf("KindByName(%q) = (%v,%v)", name, k, ok)
		}
	}
	if _, ok := KindByName("message"); ok {
		t.Error("KindByName should not resolve message")
	}
	if _, ok := KindByName("int16"); ok {
		t.Error("KindByName resolved nonexistent type")
	}
}

func TestFixedWireSize(t *testing.T) {
	if KindFloat.FixedWireSize() != 4 || KindSfixed32.FixedWireSize() != 4 {
		t.Error("32-bit kinds should report 4")
	}
	if KindDouble.FixedWireSize() != 8 || KindFixed64.FixedWireSize() != 8 {
		t.Error("64-bit kinds should report 8")
	}
	if KindInt64.FixedWireSize() != 0 || KindString.FixedWireSize() != 0 {
		t.Error("variable kinds should report 0")
	}
}

func TestMessageConstruction(t *testing.T) {
	m := mustMessage("M",
		&Field{Name: "c", Number: 9, Kind: KindInt64},
		&Field{Name: "a", Number: 3, Kind: KindString},
		&Field{Name: "b", Number: 5, Kind: KindBool},
	)
	if got := m.MinFieldNumber(); got != 3 {
		t.Errorf("MinFieldNumber = %d", got)
	}
	if got := m.MaxFieldNumber(); got != 9 {
		t.Errorf("MaxFieldNumber = %d", got)
	}
	if got := m.FieldNumberRange(); got != 7 {
		t.Errorf("FieldNumberRange = %d", got)
	}
	if d := m.DefinitionDensity(); d < 0.42 || d > 0.43 {
		t.Errorf("DefinitionDensity = %f, want 3/7", d)
	}
	if m.Fields[0].Name != "a" || m.Fields[2].Name != "c" {
		t.Error("fields not sorted by number")
	}
	if m.FieldByNumber(5).Name != "b" {
		t.Error("FieldByNumber failed")
	}
	if m.FieldByNumber(4) != nil {
		t.Error("FieldByNumber(4) should be nil")
	}
	if m.FieldByName("c").Number != 9 {
		t.Error("FieldByName failed")
	}
	if m.FieldByName("zz") != nil {
		t.Error("FieldByName(zz) should be nil")
	}
}

func TestMessageValidation(t *testing.T) {
	cases := []struct {
		name   string
		fields []*Field
		errSub string
	}{
		{"dup", []*Field{{Name: "a", Number: 1, Kind: KindBool}, {Name: "b", Number: 1, Kind: KindBool}}, "duplicate"},
		{"zero", []*Field{{Name: "a", Number: 0, Kind: KindBool}}, "out of range"},
		{"reserved", []*Field{{Name: "a", Number: 19000, Kind: KindBool}}, "reserved"},
		{"noname", []*Field{{Number: 1, Kind: KindBool}}, "no name"},
		{"badkind", []*Field{{Name: "a", Number: 1}}, "invalid kind"},
		{"nilmsg", []*Field{{Name: "a", Number: 1, Kind: KindMessage}}, "nil type"},
		{"packednonrep", []*Field{{Name: "a", Number: 1, Kind: KindInt32, Packed: true}}, "non-repeated"},
		{"packedstring", []*Field{{Name: "a", Number: 1, Kind: KindString, Label: LabelRepeated, Packed: true}}, "length-delimited"},
	}
	for _, c := range cases {
		if _, err := NewMessage("M", c.fields...); err == nil || !strings.Contains(err.Error(), c.errSub) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.errSub)
		}
	}
}

func TestPackedWireType(t *testing.T) {
	f := &Field{Name: "a", Number: 1, Kind: KindInt32, Label: LabelRepeated, Packed: true}
	if f.WireType() != wire.TypeBytes {
		t.Error("packed field should be length-delimited on the wire")
	}
	f2 := &Field{Name: "b", Number: 2, Kind: KindInt32, Label: LabelRepeated}
	if f2.WireType() != wire.TypeVarint {
		t.Error("unpacked repeated int32 should be varint on the wire")
	}
}

func makeChain(depth int) *Message {
	leaf := mustMessage("D0", &Field{Name: "v", Number: 1, Kind: KindInt32})
	cur := leaf
	for i := 1; i < depth; i++ {
		cur = mustMessage("D"+string(rune('0'+i)),
			&Field{Name: "sub", Number: 1, Kind: KindMessage, Message: cur})
	}
	return cur
}

func TestMaxDepth(t *testing.T) {
	if d := makeChain(1).MaxDepth(100); d != 1 {
		t.Errorf("depth(chain1) = %d", d)
	}
	if d := makeChain(5).MaxDepth(100); d != 5 {
		t.Errorf("depth(chain5) = %d", d)
	}
	// Recursive type: depth clamps at limit.
	rec := &Message{Name: "R"}
	if err := rec.SetFields([]*Field{
		{Name: "self", Number: 1, Kind: KindMessage, Message: rec},
		{Name: "v", Number: 2, Kind: KindInt32},
	}); err != nil {
		t.Fatal(err)
	}
	if d := rec.MaxDepth(25); d != 25 {
		t.Errorf("recursive depth = %d, want clamp 25", d)
	}
}

func TestWalkVisitsOnce(t *testing.T) {
	shared := mustMessage("Shared", &Field{Name: "v", Number: 1, Kind: KindInt32})
	top := mustMessage("Top",
		&Field{Name: "a", Number: 1, Kind: KindMessage, Message: shared},
		&Field{Name: "b", Number: 2, Kind: KindMessage, Message: shared},
	)
	var names []string
	top.Walk(func(m *Message) { names = append(names, m.Name) })
	if len(names) != 2 || names[0] != "Top" || names[1] != "Shared" {
		t.Errorf("Walk visited %v", names)
	}
	// Recursive walk terminates.
	rec := &Message{Name: "R"}
	if err := rec.SetFields([]*Field{{Name: "self", Number: 1, Kind: KindMessage, Message: rec}}); err != nil {
		t.Fatal(err)
	}
	count := 0
	rec.Walk(func(*Message) { count++ })
	if count != 1 {
		t.Errorf("recursive Walk visited %d", count)
	}
}

func TestEmptyMessage(t *testing.T) {
	m := mustMessage("Empty")
	if m.MinFieldNumber() != 0 || m.MaxFieldNumber() != 0 || m.FieldNumberRange() != 0 {
		t.Error("empty message bounds should be zero")
	}
	if m.DefinitionDensity() != 0 {
		t.Error("empty message density should be zero")
	}
	if m.MaxDepth(10) != 1 {
		t.Error("empty message depth should be 1")
	}
}

func TestFileMessageByName(t *testing.T) {
	f := &File{Path: "a.proto", Messages: []*Message{mustMessage("A"), mustMessage("B")}}
	if f.MessageByName("B") == nil || f.MessageByName("C") != nil {
		t.Error("MessageByName lookup failed")
	}
}

// mustMessage is the test-local stand-in for the removed MustMessage:
// build a type from known-good literal fields, panicking on error.
func mustMessage(name string, fields ...*Field) *Message {
	m, err := NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
