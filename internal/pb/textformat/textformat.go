// Package textformat implements the protobuf text format for dynamic
// messages: the human-readable rendering C++ protobuf exposes as
// DebugString/TextFormat. Marshal renders a message; Unmarshal parses the
// format back. The two are inverses, enabling golden-file fixtures,
// debugging output in the tools, and human-authored test messages.
//
// Supported syntax: `name: value` for scalars (strings quoted with Go
// escaping, bools as true/false, floats with %g), `name { ... }` for
// sub-messages, repeated fields as repeated entries, and `name: [v1, v2]`
// accepted on input for repeated scalars.
package textformat

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
)

// Marshal renders m in text format.
func Marshal(m *dynamic.Message) string {
	var sb strings.Builder
	marshal(&sb, m, "")
	return sb.String()
}

func marshal(sb *strings.Builder, m *dynamic.Message, indent string) {
	for _, f := range m.Type().Fields {
		if !m.Has(f.Number) {
			continue
		}
		switch {
		case f.Kind == schema.KindMessage:
			var subs []*dynamic.Message
			if f.Repeated() {
				subs = m.RepeatedMessages(f.Number)
			} else if s := m.GetMessage(f.Number); s != nil {
				subs = []*dynamic.Message{s}
			}
			for _, s := range subs {
				fmt.Fprintf(sb, "%s%s {\n", indent, f.Name)
				marshal(sb, s, indent+"  ")
				fmt.Fprintf(sb, "%s}\n", indent)
			}
		case f.Kind.Class() == schema.ClassBytesLike:
			var vals [][]byte
			if f.Repeated() {
				vals = m.RepeatedBytes(f.Number)
			} else {
				vals = [][]byte{m.GetBytes(f.Number)}
			}
			for _, v := range vals {
				fmt.Fprintf(sb, "%s%s: %q\n", indent, f.Name, v)
			}
		default:
			var vals []uint64
			if f.Repeated() {
				vals = m.RepeatedScalarBits(f.Number)
			} else {
				vals = []uint64{m.ScalarBits(f.Number)}
			}
			for _, bits := range vals {
				fmt.Fprintf(sb, "%s%s: %s\n", indent, f.Name, scalarText(f.Kind, bits))
			}
		}
	}
}

func scalarText(k schema.Kind, bits uint64) string {
	switch k {
	case schema.KindBool:
		if bits != 0 {
			return "true"
		}
		return "false"
	case schema.KindFloat:
		return strconv.FormatFloat(float64(math.Float32frombits(uint32(bits))), 'g', -1, 32)
	case schema.KindDouble:
		return strconv.FormatFloat(math.Float64frombits(bits), 'g', -1, 64)
	case schema.KindInt32, schema.KindSint32, schema.KindSfixed32, schema.KindEnum:
		return strconv.FormatInt(int64(int32(bits)), 10)
	case schema.KindInt64, schema.KindSint64, schema.KindSfixed64:
		return strconv.FormatInt(int64(bits), 10)
	case schema.KindUint32, schema.KindFixed32:
		return strconv.FormatUint(uint64(uint32(bits)), 10)
	default:
		return strconv.FormatUint(bits, 10)
	}
}

// Unmarshal parses text-format src into a fresh message of type t.
func Unmarshal(t *schema.Message, src string) (*dynamic.Message, error) {
	p := &parser{src: src, line: 1}
	m := dynamic.New(t)
	if err := p.parseFields(m, false); err != nil {
		return nil, err
	}
	return m, nil
}

type parser struct {
	src  string
	pos  int
	line int
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("textformat:%d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r' || c == ',' || c == ';':
			p.pos++
		case c == '#': // comment to end of line
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) ident() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errorf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

// parseFields parses `name: value` / `name { ... }` entries until end of
// input (or a closing brace when nested).
func (p *parser) parseFields(m *dynamic.Message, nested bool) error {
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			if nested {
				return p.errorf("unexpected end of input, want '}'")
			}
			return nil
		}
		if p.peek() == '}' {
			if !nested {
				return p.errorf("unexpected '}'")
			}
			p.pos++
			return nil
		}
		name, err := p.ident()
		if err != nil {
			return err
		}
		f := m.Type().FieldByName(name)
		if f == nil {
			return p.errorf("unknown field %q in %s", name, m.Type().Name)
		}
		p.skipSpace()
		switch {
		case p.peek() == '{':
			if f.Kind != schema.KindMessage {
				return p.errorf("field %q is not a message", name)
			}
			p.pos++
			var sub *dynamic.Message
			if f.Repeated() {
				sub = m.AddMessage(f.Number)
			} else {
				sub = m.MutableMessage(f.Number)
			}
			if err := p.parseFields(sub, true); err != nil {
				return err
			}
		case p.peek() == ':':
			p.pos++
			p.skipSpace()
			if f.Kind == schema.KindMessage {
				if p.peek() != '{' {
					return p.errorf("field %q requires a { ... } value", name)
				}
				p.pos++
				var sub *dynamic.Message
				if f.Repeated() {
					sub = m.AddMessage(f.Number)
				} else {
					sub = m.MutableMessage(f.Number)
				}
				if err := p.parseFields(sub, true); err != nil {
					return err
				}
				continue
			}
			if p.peek() == '[' {
				if !f.Repeated() {
					return p.errorf("field %q is not repeated", name)
				}
				p.pos++
				for {
					p.skipSpace()
					if p.peek() == ']' {
						p.pos++
						break
					}
					if err := p.parseValue(m, f); err != nil {
						return err
					}
				}
				continue
			}
			if err := p.parseValue(m, f); err != nil {
				return err
			}
		default:
			return p.errorf("expected ':' or '{' after %q", name)
		}
	}
}

func (p *parser) parseValue(m *dynamic.Message, f *schema.Field) error {
	p.skipSpace()
	if f.Kind.Class() == schema.ClassBytesLike {
		s, err := p.quoted()
		if err != nil {
			return err
		}
		if f.Repeated() {
			m.AddBytes(f.Number, []byte(s))
		} else {
			m.SetBytes(f.Number, []byte(s))
		}
		return nil
	}
	tok, err := p.token()
	if err != nil {
		return err
	}
	bits, err := scalarBits(f, tok)
	if err != nil {
		return p.errorf("field %q: %v", f.Name, err)
	}
	if f.Repeated() {
		m.AddScalarBits(f.Number, bits)
	} else {
		m.SetScalarBits(f.Number, bits)
	}
	return nil
}

// token reads a bare scalar token.
func (p *parser) token() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',' ||
			c == ';' || c == ']' || c == '}' || c == '#' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected value")
	}
	return p.src[start:p.pos], nil
}

// quoted reads a Go-style quoted string.
func (p *parser) quoted() (string, error) {
	if p.peek() != '"' {
		return "", p.errorf("expected quoted string")
	}
	start := p.pos
	p.pos++
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			p.pos += 2
		case '"':
			p.pos++
			s, err := strconv.Unquote(p.src[start:p.pos])
			if err != nil {
				return "", p.errorf("bad string literal: %v", err)
			}
			return s, nil
		case '\n':
			return "", p.errorf("newline in string literal")
		default:
			p.pos++
		}
	}
	return "", p.errorf("unterminated string literal")
}

func scalarBits(f *schema.Field, tok string) (uint64, error) {
	switch f.Kind {
	case schema.KindBool:
		switch tok {
		case "true":
			return 1, nil
		case "false":
			return 0, nil
		}
		return 0, fmt.Errorf("bad bool %q", tok)
	case schema.KindFloat:
		v, err := strconv.ParseFloat(tok, 32)
		if err != nil {
			return 0, err
		}
		return uint64(math.Float32bits(float32(v))), nil
	case schema.KindDouble:
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return 0, err
		}
		return math.Float64bits(v), nil
	case schema.KindUint32, schema.KindFixed32:
		v, err := strconv.ParseUint(tok, 0, 32)
		if err != nil {
			return 0, err
		}
		return v, nil
	case schema.KindUint64, schema.KindFixed64:
		v, err := strconv.ParseUint(tok, 0, 64)
		if err != nil {
			return 0, err
		}
		return v, nil
	case schema.KindInt32, schema.KindSint32, schema.KindSfixed32, schema.KindEnum:
		v, err := strconv.ParseInt(tok, 0, 32)
		if err != nil {
			return 0, err
		}
		return uint64(v), nil
	default:
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			return 0, err
		}
		return uint64(v), nil
	}
}
