package textformat

import (
	"math/rand"
	"strings"
	"testing"

	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/pbtest"
	"protoacc/internal/pb/schema"
)

func demoType() *schema.Message {
	sub := mustMessage("Sub",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindInt64},
		&schema.Field{Name: "tag", Number: 2, Kind: schema.KindString})
	return mustMessage("Demo",
		&schema.Field{Name: "name", Number: 1, Kind: schema.KindString},
		&schema.Field{Name: "count", Number: 2, Kind: schema.KindInt32},
		&schema.Field{Name: "ratio", Number: 3, Kind: schema.KindDouble},
		&schema.Field{Name: "ok", Number: 4, Kind: schema.KindBool},
		&schema.Field{Name: "sub", Number: 5, Kind: schema.KindMessage, Message: sub},
		&schema.Field{Name: "vals", Number: 6, Kind: schema.KindInt64, Label: schema.LabelRepeated},
		&schema.Field{Name: "subs", Number: 7, Kind: schema.KindMessage, Message: sub, Label: schema.LabelRepeated},
		&schema.Field{Name: "blob", Number: 8, Kind: schema.KindBytes},
	)
}

func TestMarshalRendering(t *testing.T) {
	m := dynamic.New(demoType())
	m.SetString(1, "hi \"there\"\n")
	m.SetInt32(2, -5)
	m.SetDouble(3, 0.25)
	m.SetBool(4, true)
	m.MutableMessage(5).SetInt64(1, 9)
	m.AddScalarBits(6, 1)
	m.AddScalarBits(6, 2)
	out := Marshal(m)
	for _, want := range []string{
		`name: "hi \"there\"\n"`,
		"count: -5",
		"ratio: 0.25",
		"ok: true",
		"sub {",
		"  id: 9",
		"vals: 1",
		"vals: 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	typ := demoType()
	m := dynamic.New(typ)
	m.SetString(1, "text \\ format")
	m.SetInt32(2, 42)
	m.SetDouble(3, -1.5e-9)
	m.SetBool(4, false)
	s := m.MutableMessage(5)
	s.SetInt64(1, -1)
	s.SetString(2, "nested")
	for i := 0; i < 3; i++ {
		m.AddScalarBits(6, uint64(i*100))
		m.AddMessage(7).SetInt64(1, int64(i))
	}
	m.SetBytes(8, []byte{0, 1, 0xff})

	text := Marshal(m)
	got, err := Unmarshal(typ, text)
	if err != nil {
		t.Fatalf("%v\ntext:\n%s", err, text)
	}
	if !m.Equal(got) {
		t.Errorf("round trip not equal:\n%s", text)
	}
}

func TestRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 100; trial++ {
		typ := pbtest.RandomSchema(rng, pbtest.DefaultSchemaConfig())
		msg := pbtest.RandomPopulated(rng, typ, pbtest.DefaultMessageConfig())
		text := Marshal(msg)
		got, err := Unmarshal(typ, text)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, text)
		}
		// NaN payload bits cannot survive a textual round trip (the same
		// limitation as C++ TextFormat), so the strong equality property
		// only applies to NaN-free messages; idempotence always holds.
		if !strings.Contains(text, "NaN") {
			if !msg.Equal(got) {
				t.Fatalf("trial %d: round trip not equal\n%s", trial, text)
			}
		}
		if again := Marshal(got); again != text {
			t.Fatalf("trial %d: marshal not idempotent\n--- first\n%s\n--- second\n%s", trial, text, again)
		}
	}
}

func TestUnmarshalSyntaxVariants(t *testing.T) {
	typ := demoType()
	// Bracketed repeated scalars, comments, commas, colon-before-brace.
	src := `
		# a comment
		count: 7
		vals: [1, 2, 3]
		sub: { id: 5 }
		subs { id: 1 } subs { id: 2 }
	`
	m, err := Unmarshal(typ, src)
	if err != nil {
		t.Fatal(err)
	}
	if m.GetInt32(2) != 7 || m.Len(6) != 3 || m.GetMessage(5).GetInt64(1) != 5 || m.Len(7) != 2 {
		t.Errorf("parsed wrong: %s", Marshal(m))
	}
}

func TestUnmarshalErrors(t *testing.T) {
	typ := demoType()
	cases := map[string]string{
		"unknown field":       `bogus: 1`,
		"bad bool":            `ok: maybe`,
		"unterminated string": `name: "abc`,
		"missing brace":       `sub { id: 1`,
		"stray brace":         `}`,
		"bracket non-rep":     `count: [1]`,
		"msg without brace":   `sub: 5`,
		"bad int":             `count: abc`,
		"newline in string":   "name: \"a\nb\"",
	}
	for name, src := range cases {
		if _, err := Unmarshal(typ, src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestSignedRendering(t *testing.T) {
	typ := mustMessage("S",
		&schema.Field{Name: "a", Number: 1, Kind: schema.KindSfixed32},
		&schema.Field{Name: "b", Number: 2, Kind: schema.KindUint64})
	m := dynamic.New(typ)
	m.SetInt32(1, -9)
	m.SetUint64(2, 1<<63)
	out := Marshal(m)
	if !strings.Contains(out, "a: -9") {
		t.Errorf("sfixed32 rendering wrong:\n%s", out)
	}
	if !strings.Contains(out, "b: 9223372036854775808") {
		t.Errorf("uint64 rendering wrong:\n%s", out)
	}
	got, err := Unmarshal(typ, out)
	if err != nil || !m.Equal(got) {
		t.Errorf("signed round trip failed: %v", err)
	}
}

// mustMessage is the test-local stand-in for the removed
// schema.MustMessage: build a type from known-good literal fields,
// panicking on error. Library code uses schema.NewMessage and returns
// the error.
func mustMessage(name string, fields ...*schema.Field) *schema.Message {
	m, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(err)
	}
	return m
}
