// Package wire implements the Protocol Buffers wire format primitives:
// base-128 varints, zig-zag encoding for signed integers, fixed-width
// little-endian 32/64-bit values, and field tags (field number + wire type).
//
// Two decoder styles are provided. The streaming functions (ReadVarint,
// ReadTag, ...) advance through a byte slice and are used by the software
// codec. The "combinational" decoder (DecodeVarint10) decodes a varint from
// a fixed 10-byte window in a single call with no data-dependent loop over
// input availability, mirroring the single-cycle combinational varint
// decoder in the ProtoAcc RTL (§4.4.4 of the paper).
package wire

import (
	"errors"
	"fmt"
	"math"
)

// Type is a protobuf wire type, the low three bits of a field tag.
type Type uint8

// Wire types defined by the protobuf encoding. StartGroup and EndGroup are
// deprecated in proto2 but still reserved on the wire.
const (
	TypeVarint     Type = 0
	TypeFixed64    Type = 1
	TypeBytes      Type = 2 // length-delimited
	TypeStartGroup Type = 3
	TypeEndGroup   Type = 4
	TypeFixed32    Type = 5
)

func (t Type) String() string {
	switch t {
	case TypeVarint:
		return "varint"
	case TypeFixed64:
		return "fixed64"
	case TypeBytes:
		return "length-delimited"
	case TypeStartGroup:
		return "start-group"
	case TypeEndGroup:
		return "end-group"
	case TypeFixed32:
		return "fixed32"
	default:
		return fmt.Sprintf("wire.Type(%d)", uint8(t))
	}
}

// Valid reports whether t is a wire type defined by the encoding.
func (t Type) Valid() bool { return t <= TypeFixed32 }

// MaxVarintLen is the maximum encoded size of a 64-bit varint.
const MaxVarintLen = 10

// MaxFieldNumber is the largest permitted protobuf field number (2^29 - 1).
const MaxFieldNumber = 1<<29 - 1

// FirstReservedFieldNumber and LastReservedFieldNumber bound the range
// reserved for the protobuf implementation (19000-19999).
const (
	FirstReservedFieldNumber = 19000
	LastReservedFieldNumber  = 19999
)

// Errors returned by the decoders.
var (
	ErrTruncated   = errors.New("wire: truncated input")
	ErrOverflow    = errors.New("wire: varint overflows 64 bits")
	ErrInvalidTag  = errors.New("wire: invalid tag")
	ErrInvalidType = errors.New("wire: invalid wire type")
)

// AppendVarint appends the base-128 varint encoding of v to b.
func AppendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// SizeVarint returns the encoded size of v as a varint, in bytes (1..10).
func SizeVarint(v uint64) int {
	// 1 + floor(bits/7): computed without a loop, as fixed-function
	// hardware would.
	switch {
	case v < 1<<7:
		return 1
	case v < 1<<14:
		return 2
	case v < 1<<21:
		return 3
	case v < 1<<28:
		return 4
	case v < 1<<35:
		return 5
	case v < 1<<42:
		return 6
	case v < 1<<49:
		return 7
	case v < 1<<56:
		return 8
	case v < 1<<63:
		return 9
	default:
		return 10
	}
}

// ReadVarint decodes a varint from the front of b, returning the value and
// the number of bytes consumed.
func ReadVarint(b []byte) (v uint64, n int, err error) {
	var shift uint
	for i := 0; i < len(b); i++ {
		if i == MaxVarintLen {
			return 0, 0, ErrOverflow
		}
		c := b[i]
		if i == MaxVarintLen-1 && c > 1 {
			// The 10th byte may only contribute the 64th bit.
			return 0, 0, ErrOverflow
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// DecodeVarint10 decodes a varint from a window of up to 10 bytes in one
// step. It mirrors the combinational decoder in the accelerator RTL: the
// hardware always peeks at the next 10 bytes of the memloader stream and
// produces (value, length) in a single cycle. avail is the number of valid
// bytes in win starting at index 0.
func DecodeVarint10(win *[MaxVarintLen]byte, avail int) (v uint64, n int, err error) {
	if avail > MaxVarintLen {
		avail = MaxVarintLen
	}
	var shift uint
	for i := 0; i < avail; i++ {
		c := win[i]
		if i == MaxVarintLen-1 && c > 1 {
			return 0, 0, ErrOverflow
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, i + 1, nil
		}
		shift += 7
	}
	return 0, 0, ErrTruncated
}

// EncodeZigZag32 maps a signed 32-bit integer onto an unsigned integer so
// that numbers with small absolute value have small varint encodings.
func EncodeZigZag32(v int32) uint64 {
	return uint64(uint32(v<<1) ^ uint32(v>>31))
}

// DecodeZigZag32 inverts EncodeZigZag32.
func DecodeZigZag32(v uint64) int32 {
	u := uint32(v)
	return int32(u>>1) ^ -int32(u&1)
}

// EncodeZigZag64 maps a signed 64-bit integer onto an unsigned integer.
func EncodeZigZag64(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

// DecodeZigZag64 inverts EncodeZigZag64.
func DecodeZigZag64(v uint64) int64 {
	return int64(v>>1) ^ -int64(v&1)
}

// AppendFixed32 appends v in little-endian order.
func AppendFixed32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// AppendFixed64 appends v in little-endian order.
func AppendFixed64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// ReadFixed32 decodes a little-endian 32-bit value from the front of b.
func ReadFixed32(b []byte) (uint32, int, error) {
	if len(b) < 4 {
		return 0, 0, ErrTruncated
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, 4, nil
}

// ReadFixed64 decodes a little-endian 64-bit value from the front of b.
func ReadFixed64(b []byte) (uint64, int, error) {
	if len(b) < 8 {
		return 0, 0, ErrTruncated
	}
	lo := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
	hi := uint64(b[4]) | uint64(b[5])<<8 | uint64(b[6])<<16 | uint64(b[7])<<24
	return lo | hi<<32, 8, nil
}

// AppendFloat32 appends the IEEE-754 bits of v little-endian.
func AppendFloat32(b []byte, v float32) []byte {
	return AppendFixed32(b, math.Float32bits(v))
}

// AppendFloat64 appends the IEEE-754 bits of v little-endian.
func AppendFloat64(b []byte, v float64) []byte {
	return AppendFixed64(b, math.Float64bits(v))
}

// MakeTag packs a field number and wire type into a tag value.
func MakeTag(fieldNum int32, t Type) uint64 {
	return uint64(fieldNum)<<3 | uint64(t)
}

// SplitTag unpacks a tag value into field number and wire type.
func SplitTag(tag uint64) (fieldNum int32, t Type) {
	return int32(tag >> 3), Type(tag & 7)
}

// AppendTag appends the varint-encoded tag for (fieldNum, t).
func AppendTag(b []byte, fieldNum int32, t Type) []byte {
	return AppendVarint(b, MakeTag(fieldNum, t))
}

// SizeTag returns the encoded size of the tag for fieldNum.
func SizeTag(fieldNum int32) int {
	return SizeVarint(MakeTag(fieldNum, TypeVarint))
}

// ReadTag decodes a tag from the front of b, validating the field number
// and wire type.
func ReadTag(b []byte) (fieldNum int32, t Type, n int, err error) {
	tag, n, err := ReadVarint(b)
	if err != nil {
		return 0, 0, 0, err
	}
	fieldNum, t = SplitTag(tag)
	if fieldNum <= 0 || fieldNum > MaxFieldNumber {
		return 0, 0, 0, ErrInvalidTag
	}
	if !t.Valid() {
		return 0, 0, 0, ErrInvalidType
	}
	return fieldNum, t, n, nil
}

// SizeBytes returns the encoded size of a length-delimited value of n bytes
// excluding its tag: the length varint plus the payload.
func SizeBytes(n int) int {
	return SizeVarint(uint64(n)) + n
}

// AppendBytes appends the length-delimited encoding of v (length varint
// followed by the raw bytes).
func AppendBytes(b, v []byte) []byte {
	b = AppendVarint(b, uint64(len(v)))
	return append(b, v...)
}

// ReadBytes decodes a length-delimited value from the front of b. The
// returned slice aliases b.
func ReadBytes(b []byte) (v []byte, n int, err error) {
	l, n, err := ReadVarint(b)
	if err != nil {
		return nil, 0, err
	}
	if l > uint64(len(b)-n) {
		return nil, 0, ErrTruncated
	}
	return b[n : n+int(l)], n + int(l), nil
}

// SkipValue returns the number of bytes occupied by a value of wire type t
// at the front of b, so unknown fields can be skipped. Group types are
// handled by scanning for the matching end-group tag.
func SkipValue(b []byte, fieldNum int32, t Type) (int, error) {
	switch t {
	case TypeVarint:
		_, n, err := ReadVarint(b)
		return n, err
	case TypeFixed64:
		if len(b) < 8 {
			return 0, ErrTruncated
		}
		return 8, nil
	case TypeFixed32:
		if len(b) < 4 {
			return 0, ErrTruncated
		}
		return 4, nil
	case TypeBytes:
		_, n, err := ReadBytes(b)
		return n, err
	case TypeStartGroup:
		n := 0
		for {
			fn, wt, tn, err := ReadTag(b[n:])
			if err != nil {
				return 0, err
			}
			n += tn
			if wt == TypeEndGroup {
				if fn != fieldNum {
					return 0, ErrInvalidTag
				}
				return n, nil
			}
			vn, err := SkipValue(b[n:], fn, wt)
			if err != nil {
				return 0, err
			}
			n += vn
		}
	case TypeEndGroup:
		return 0, ErrInvalidType
	default:
		return 0, ErrInvalidType
	}
}
