package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestVarintKnownValues(t *testing.T) {
	// Golden vectors from the protobuf encoding documentation.
	cases := []struct {
		v   uint64
		enc []byte
	}{
		{0, []byte{0x00}},
		{1, []byte{0x01}},
		{127, []byte{0x7f}},
		{128, []byte{0x80, 0x01}},
		{150, []byte{0x96, 0x01}},
		{300, []byte{0xac, 0x02}},
		{16383, []byte{0xff, 0x7f}},
		{16384, []byte{0x80, 0x80, 0x01}},
		{math.MaxUint64, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}},
	}
	for _, c := range cases {
		got := AppendVarint(nil, c.v)
		if !bytes.Equal(got, c.enc) {
			t.Errorf("AppendVarint(%d) = %x, want %x", c.v, got, c.enc)
		}
		if s := SizeVarint(c.v); s != len(c.enc) {
			t.Errorf("SizeVarint(%d) = %d, want %d", c.v, s, len(c.enc))
		}
		v, n, err := ReadVarint(c.enc)
		if err != nil || v != c.v || n != len(c.enc) {
			t.Errorf("ReadVarint(%x) = (%d,%d,%v), want (%d,%d,nil)", c.enc, v, n, err, c.v, len(c.enc))
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		enc := AppendVarint(nil, v)
		if len(enc) != SizeVarint(v) {
			return false
		}
		got, n, err := ReadVarint(enc)
		return err == nil && got == v && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintTruncated(t *testing.T) {
	enc := AppendVarint(nil, 1<<40)
	for i := 0; i < len(enc); i++ {
		if _, _, err := ReadVarint(enc[:i]); err != ErrTruncated {
			t.Errorf("ReadVarint(%x) err = %v, want ErrTruncated", enc[:i], err)
		}
	}
}

func TestVarintOverflow(t *testing.T) {
	// 11 continuation bytes: too long for 64 bits.
	long := bytes.Repeat([]byte{0x80}, 10)
	long = append(long, 0x01)
	if _, _, err := ReadVarint(long); err != ErrOverflow {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
	// 10 bytes but the last one carries more than the 64th bit.
	over := bytes.Repeat([]byte{0xff}, 9)
	over = append(over, 0x02)
	if _, _, err := ReadVarint(over); err != ErrOverflow {
		t.Errorf("err = %v, want ErrOverflow", err)
	}
}

func TestDecodeVarint10MatchesStreaming(t *testing.T) {
	f := func(v uint64) bool {
		enc := AppendVarint(nil, v)
		var win [MaxVarintLen]byte
		copy(win[:], enc)
		got, n, err := DecodeVarint10(&win, len(enc))
		return err == nil && got == v && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeVarint10Truncated(t *testing.T) {
	var win [MaxVarintLen]byte
	win[0] = 0x80
	if _, _, err := DecodeVarint10(&win, 1); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestZigZagKnownValues(t *testing.T) {
	cases32 := []struct {
		in  int32
		out uint64
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}, {2147483647, 4294967294}, {-2147483648, 4294967295}}
	for _, c := range cases32 {
		if got := EncodeZigZag32(c.in); got != c.out {
			t.Errorf("EncodeZigZag32(%d) = %d, want %d", c.in, got, c.out)
		}
		if got := DecodeZigZag32(c.out); got != c.in {
			t.Errorf("DecodeZigZag32(%d) = %d, want %d", c.out, got, c.in)
		}
	}
	if got := EncodeZigZag64(math.MinInt64); got != math.MaxUint64 {
		t.Errorf("EncodeZigZag64(MinInt64) = %d, want MaxUint64", got)
	}
}

func TestZigZagRoundTrip(t *testing.T) {
	f64 := func(v int64) bool { return DecodeZigZag64(EncodeZigZag64(v)) == v }
	f32 := func(v int32) bool { return DecodeZigZag32(EncodeZigZag32(v)) == v }
	if err := quick.Check(f64, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(f32, nil); err != nil {
		t.Error(err)
	}
}

func TestZigZagSmallMagnitudeSmallEncoding(t *testing.T) {
	// Invariant: |v| < 64 implies a 1-byte varint after zig-zag.
	for v := int64(-63); v < 64; v++ {
		if SizeVarint(EncodeZigZag64(v)) != 1 {
			t.Errorf("zigzag(%d) does not fit one byte", v)
		}
	}
}

func TestFixedRoundTrip(t *testing.T) {
	f32 := func(v uint32) bool {
		enc := AppendFixed32(nil, v)
		got, n, err := ReadFixed32(enc)
		return err == nil && got == v && n == 4
	}
	f64 := func(v uint64) bool {
		enc := AppendFixed64(nil, v)
		got, n, err := ReadFixed64(enc)
		return err == nil && got == v && n == 8
	}
	if err := quick.Check(f32, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(f64, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedLittleEndian(t *testing.T) {
	if got := AppendFixed32(nil, 0x01020304); !bytes.Equal(got, []byte{4, 3, 2, 1}) {
		t.Errorf("AppendFixed32 = %x", got)
	}
	if got := AppendFixed64(nil, 0x0102030405060708); !bytes.Equal(got, []byte{8, 7, 6, 5, 4, 3, 2, 1}) {
		t.Errorf("AppendFixed64 = %x", got)
	}
}

func TestFixedTruncated(t *testing.T) {
	if _, _, err := ReadFixed32([]byte{1, 2, 3}); err != ErrTruncated {
		t.Errorf("ReadFixed32 err = %v", err)
	}
	if _, _, err := ReadFixed64([]byte{1, 2, 3, 4, 5, 6, 7}); err != ErrTruncated {
		t.Errorf("ReadFixed64 err = %v", err)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	enc := AppendFloat64(nil, 3.5)
	bits, _, _ := ReadFixed64(enc)
	if math.Float64frombits(bits) != 3.5 {
		t.Error("float64 round trip failed")
	}
	enc32 := AppendFloat32(nil, -1.25)
	bits32, _, _ := ReadFixed32(enc32)
	if math.Float32frombits(bits32) != -1.25 {
		t.Error("float32 round trip failed")
	}
}

func TestTagRoundTrip(t *testing.T) {
	for _, fn := range []int32{1, 15, 16, 100, 19999, MaxFieldNumber} {
		for _, wt := range []Type{TypeVarint, TypeFixed64, TypeBytes, TypeFixed32} {
			enc := AppendTag(nil, fn, wt)
			gfn, gwt, n, err := ReadTag(enc)
			if err != nil || gfn != fn || gwt != wt || n != len(enc) {
				t.Errorf("tag(%d,%v) round trip = (%d,%v,%d,%v)", fn, wt, gfn, gwt, n, err)
			}
		}
	}
	// Field numbers 1-15 fit in a single tag byte: the boundary the paper's
	// density discussion relies on.
	if SizeTag(15) != 1 || SizeTag(16) != 2 {
		t.Errorf("SizeTag boundary wrong: %d %d", SizeTag(15), SizeTag(16))
	}
}

func TestReadTagRejectsInvalid(t *testing.T) {
	// Field number 0.
	if _, _, _, err := ReadTag(AppendVarint(nil, MakeTag(0, TypeVarint))); err != ErrInvalidTag {
		t.Errorf("field 0: err = %v", err)
	}
	// Wire type 6 (undefined).
	if _, _, _, err := ReadTag(AppendVarint(nil, 1<<3|6)); err != ErrInvalidType {
		t.Errorf("wiretype 6: err = %v", err)
	}
	if _, _, _, err := ReadTag(nil); err != ErrTruncated {
		t.Errorf("empty: err = %v", err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(v []byte) bool {
		enc := AppendBytes(nil, v)
		if len(enc) != SizeBytes(len(v)) {
			return false
		}
		got, n, err := ReadBytes(enc)
		return err == nil && bytes.Equal(got, v) && n == len(enc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadBytesTruncated(t *testing.T) {
	enc := AppendBytes(nil, []byte("hello"))
	if _, _, err := ReadBytes(enc[:3]); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestSkipValue(t *testing.T) {
	var b []byte
	b = AppendVarint(b, 300)
	if n, err := SkipValue(b, 1, TypeVarint); err != nil || n != 2 {
		t.Errorf("skip varint = (%d,%v)", n, err)
	}
	if n, err := SkipValue(AppendFixed64(nil, 7), 1, TypeFixed64); err != nil || n != 8 {
		t.Errorf("skip fixed64 = (%d,%v)", n, err)
	}
	if n, err := SkipValue(AppendFixed32(nil, 7), 1, TypeFixed32); err != nil || n != 4 {
		t.Errorf("skip fixed32 = (%d,%v)", n, err)
	}
	enc := AppendBytes(nil, []byte("abc"))
	if n, err := SkipValue(enc, 1, TypeBytes); err != nil || n != len(enc) {
		t.Errorf("skip bytes = (%d,%v)", n, err)
	}
}

func TestSkipGroup(t *testing.T) {
	// group 3 { field 1 varint 5; nested group 4 { field 2 fixed32 } }
	var b []byte
	b = AppendTag(b, 1, TypeVarint)
	b = AppendVarint(b, 5)
	b = AppendTag(b, 4, TypeStartGroup)
	b = AppendTag(b, 2, TypeFixed32)
	b = AppendFixed32(b, 9)
	b = AppendTag(b, 4, TypeEndGroup)
	b = AppendTag(b, 3, TypeEndGroup)
	n, err := SkipValue(b, 3, TypeStartGroup)
	if err != nil || n != len(b) {
		t.Errorf("skip group = (%d,%v), want (%d,nil)", n, err, len(b))
	}
	// Mismatched end-group field number must error.
	bad := AppendTag(nil, 9, TypeEndGroup)
	if _, err := SkipValue(bad, 3, TypeStartGroup); err != ErrInvalidTag {
		t.Errorf("mismatched group err = %v", err)
	}
}

func TestSizeVarintMatchesEncoding(t *testing.T) {
	// Exhaustive boundary check at every 7-bit threshold.
	for bits := 0; bits < 64; bits++ {
		v := uint64(1) << bits
		for _, u := range []uint64{v - 1, v, v + 1} {
			if SizeVarint(u) != len(AppendVarint(nil, u)) {
				t.Errorf("SizeVarint(%d) = %d, want %d", u, SizeVarint(u), len(AppendVarint(nil, u)))
			}
		}
	}
}

func BenchmarkAppendVarint(b *testing.B) {
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendVarint(buf[:0], uint64(i)*2654435761)
	}
}

func BenchmarkReadVarint(b *testing.B) {
	enc := AppendVarint(nil, 1<<45)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = ReadVarint(enc)
	}
}

func BenchmarkDecodeVarint10(b *testing.B) {
	var win [MaxVarintLen]byte
	copy(win[:], AppendVarint(nil, 1<<45))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = DecodeVarint10(&win, 10)
	}
}
