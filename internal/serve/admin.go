package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"protoacc/internal/faults"
	"protoacc/internal/serve/elements"
	"protoacc/internal/telemetry"
)

// Admin endpoint: a read-only HTTP plane for a running daemon. Every
// handler is a pure observer — it snapshots counters, evaluates gauges,
// and reads histogram shards, but never takes a lock the serving path
// holds across a batch and never writes serving state. The admin
// determinism test pins that contract: a scraper polling these handlers
// at 10Hz changes neither responses nor exact-mode counters.

// AdminOptions configures the admin handler.
type AdminOptions struct {
	// Manifest describes the build and invocation for /statusz (nil omits
	// the build section).
	Manifest *telemetry.Manifest

	// FlushStats, when non-nil, is invoked by /statusz?write=1 to write
	// the daemon's -stats-out artifact mid-run (the same writer the
	// shutdown path uses). It returns the path written.
	FlushStats func() (string, error)
}

// TileHealth is one tile's entry in the /healthz report. A tile is
// degraded when its configuration quarantines it behind a fault schedule,
// when its pool has dropped poisoned Systems, when its admission queue
// is saturated (the shed breaker: new arrivals routed here are shed), or
// when its circuit breaker is not closed.
type TileHealth struct {
	Tile            int    `json:"tile"`
	QueueDepth      int    `json:"queue_depth"`
	QueueCapacity   int    `json:"queue_capacity"`
	InflightBatches int64  `json:"inflight_batches"`
	Residents       int    `json:"residents"`
	FaultInjected   bool   `json:"fault_injected"`
	PoolDrops       uint64 `json:"pool_drops"`
	AccelFallbacks  uint64 `json:"accel_fallbacks"`
	ServerFallbacks uint64 `json:"server_fallbacks"`
	Retries         uint64 `json:"retries"`
	Degraded        bool   `json:"degraded"`

	// Circuit-breaker element state; Breaker is empty when the element is
	// off (the pre-chain /healthz document, field for field).
	Breaker          string  `json:"breaker,omitempty"` // closed / open / half-open
	BreakerTrips     uint64  `json:"breaker_trips,omitempty"`
	BreakerLastTripS float64 `json:"breaker_last_trip_s,omitempty"` // offset since server start; 0 = never
	WindowRequests   uint64  `json:"breaker_window_requests,omitempty"`
	WindowFailures   uint64  `json:"breaker_window_failures,omitempty"`
}

// Health reports per-tile quarantine/breaker state.
func (s *Server) Health() []TileHealth {
	var brStates []elements.TileBreaker
	if br := s.breaker(); br != nil {
		brStates = br.TileStates(time.Now())
	}
	out := make([]TileHealth, len(s.tiles))
	for i, t := range s.tiles {
		t.mu.Lock()
		st := t.stats
		t.mu.Unlock()
		t.resMu.Lock()
		residents := t.residentN
		t.resMu.Unlock()
		h := TileHealth{
			Tile:            t.id,
			QueueDepth:      len(t.queue),
			QueueCapacity:   s.opts.QueueDepth,
			InflightBatches: t.obs.inflight.Load(),
			Residents:       residents,
			FaultInjected:   t.faultsEnabled(),
			PoolDrops:       t.pool.Counters().Drops,
			AccelFallbacks:  st.accelFallbacks,
			ServerFallbacks: st.serverFallbacks,
			Retries:         st.retryEvents,
		}
		if brStates != nil {
			b := brStates[i]
			h.Breaker = b.State
			h.BreakerTrips = b.Trips
			h.BreakerLastTripS = b.LastTripS
			h.WindowRequests = b.WindowRequests
			h.WindowFailures = b.WindowFailures
		}
		h.Degraded = h.FaultInjected || h.PoolDrops > 0 || h.QueueDepth >= h.QueueCapacity ||
			(h.Breaker != "" && h.Breaker != elements.StateClosed.String())
		out[i] = h
	}
	return out
}

// Closed reports whether the server has begun shutting down (admission
// sheds everything).
func (s *Server) Closed() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.closed
}

// healthTotals carries the admission-side rejection totals in /healthz:
// how much traffic the server is turning away, and why.
type healthTotals struct {
	Shed      uint64 `json:"shed"`
	Throttled uint64 `json:"throttled"`
	Deadline  uint64 `json:"deadline"`
}

// healthzDoc is the /healthz response body.
type healthzDoc struct {
	Status string       `json:"status"` // "ok" or "closing"
	Totals healthTotals `json:"totals"`
	Tiles  []TileHealth `json:"tiles"`
}

// healthTotals snapshots the admission-side rejection counters.
func (s *Server) healthTotals() healthTotals {
	s.mu.Lock()
	defer s.mu.Unlock()
	return healthTotals{Shed: s.stats.shed, Throttled: s.stats.throttled, Deadline: s.stats.deadline}
}

// SpanStats summarizes the span sampler for /statusz.
type SpanStats struct {
	SampleN   int    `json:"sample_n"` // 0 = sampling off
	Sampled   uint64 `json:"sampled"`
	Completed uint64 `json:"completed"`
	Dropped   uint64 `json:"dropped"` // ring overwrites
	Buffered  int    `json:"buffered"`
}

// StatuszConfig echoes the serving configuration in /statusz.
type StatuszConfig struct {
	Tiles         int    `json:"tiles"`
	Routing       string `json:"routing"`
	Workers       int    `json:"workers"`
	MaxBatch      int    `json:"max_batch"`
	BatchWindowNS int64  `json:"batch_window_ns"`
	QueueDepth    int    `json:"queue_depth"`
	MaxPayload    int    `json:"max_payload"`
	CycleMode     string `json:"cycle_mode"`
	CycleSampleN  int    `json:"cycle_sample_n"`
	SpanSampleN   int    `json:"span_sample_n"`
	Fingerprint   string `json:"config_fingerprint"`
}

// AdmissionStatus summarizes the admission-control element for /statusz.
type AdmissionStatus struct {
	FillRate  float64 `json:"fill_rate"`
	Burst     float64 `json:"burst"`
	Clients   int     `json:"clients"`
	Allowed   uint64  `json:"allowed"`
	Throttled uint64  `json:"throttled"`
}

// BreakerStatus summarizes the circuit-breaker element for /statusz:
// config echo, per-tile state, and the transition-event timeline.
type BreakerStatus struct {
	WindowNS  int64                  `json:"window_ns"`
	TripRate  float64                `json:"trip_rate"`
	MinVolume int                    `json:"min_volume"`
	OpenForNS int64                  `json:"open_for_ns"`
	Probes    int                    `json:"probes"`
	Tiles     []elements.TileBreaker `json:"tiles"`
	Events    []elements.Event       `json:"events"`
}

// CacheStatus summarizes the response-cache element for /statusz.
type CacheStatus struct {
	MaxBytes   int64  `json:"max_bytes"`
	Bytes      int64  `json:"bytes"`
	Entries    int    `json:"entries"`
	Lookups    uint64 `json:"lookups"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Inserts    uint64 `json:"inserts"`
	Evictions  uint64 `json:"evictions"`
	Collisions uint64 `json:"collisions"`
}

// ElementsStatus is the /statusz section for the data-plane element
// chain; per-element blocks are present only when that element is on.
type ElementsStatus struct {
	Spec      string           `json:"spec"` // -elements flag echo
	Enabled   []string         `json:"enabled"`
	Admission *AdmissionStatus `json:"admission,omitempty"`
	Breaker   *BreakerStatus   `json:"breaker,omitempty"`
	Cache     *CacheStatus     `json:"cache,omitempty"`
}

// elementsStatus assembles the /statusz elements section; nil when the
// chain is off (the section is omitted, keeping the pre-chain document).
func (s *Server) elementsStatus() *ElementsStatus {
	if s.elems == nil {
		return nil
	}
	cfg := s.elems.Config()
	es := &ElementsStatus{Spec: cfg.Spec(), Enabled: cfg.Names()}
	if a := s.elems.Admission; a != nil {
		allowed, throttled := a.Totals()
		es.Admission = &AdmissionStatus{
			FillRate: a.FillRate(), Burst: a.Burst(),
			Clients: a.Clients(), Allowed: allowed, Throttled: throttled,
		}
	}
	if b := s.elems.Breaker; b != nil {
		es.Breaker = &BreakerStatus{
			WindowNS:  int64(cfg.Window),
			TripRate:  cfg.TripRate,
			MinVolume: cfg.MinVolume,
			OpenForNS: int64(cfg.OpenFor),
			Probes:    cfg.Probes,
			Tiles:     b.TileStates(time.Now()),
			Events:    b.Events(),
		}
	}
	if c := s.elems.Cache; c != nil {
		lookups, hits, misses, inserts, evictions, collisions := c.Stats()
		es.Cache = &CacheStatus{
			MaxBytes: c.MaxBytes(), Bytes: c.Bytes(), Entries: c.Len(),
			Lookups: lookups, Hits: hits, Misses: misses,
			Inserts: inserts, Evictions: evictions, Collisions: collisions,
		}
	}
	return es
}

// StatuszSchema identifies the /statusz JSON format.
const StatuszSchema = "protoacc-statusz/v1"

// Statusz is the /statusz JSON document: a point-in-time snapshot of
// everything the daemon knows about itself — build and config manifest,
// the exact counter snapshot, live gauges, merged stage summaries, span
// sampler state, and per-tile health.
type Statusz struct {
	Schema        string              `json:"schema"`
	Build         *telemetry.Manifest `json:"build,omitempty"`
	Config        StatuszConfig       `json:"config"`
	UptimeSeconds float64             `json:"uptime_seconds"`
	Counters      map[string]float64  `json:"counters"`
	Gauges        map[string]float64  `json:"gauges"`
	Stages        []StageSummary      `json:"stages"`
	Spans         SpanStats           `json:"spans"`
	Elements      *ElementsStatus     `json:"elements,omitempty"`
	Tiles         []TileHealth        `json:"tiles"`
	StatsWritten  string              `json:"stats_written,omitempty"`
}

// StatuszSnapshot assembles the /statusz document (also used directly by
// loadgen's in-process -scrape report).
func (s *Server) StatuszSnapshot(manifest *telemetry.Manifest) *Statusz {
	counters := make(map[string]float64)
	for _, sm := range s.TelemetrySnapshot().Samples() {
		counters[sm.Name] = sm.Value
	}
	gauges := make(map[string]float64)
	for _, g := range s.obs.reg.GaugeValues() {
		gauges[g.Name] = g.Value
	}
	sampled, completed, dropped := s.obs.spanCounters()
	s.obs.spanMu.Lock()
	buffered := len(s.obs.spans)
	s.obs.spanMu.Unlock()
	return &Statusz{
		Schema: StatuszSchema,
		Build:  manifest,
		Config: StatuszConfig{
			Tiles:         len(s.tiles),
			Routing:       s.opts.Routing.String(),
			Workers:       s.Workers(),
			MaxBatch:      s.opts.MaxBatch,
			BatchWindowNS: int64(s.opts.BatchWindow),
			QueueDepth:    s.opts.QueueDepth,
			MaxPayload:    s.opts.MaxPayload,
			CycleMode:     s.opts.CycleMode.String(),
			CycleSampleN:  s.opts.CycleSampleN,
			SpanSampleN:   s.opts.SpanSampleN,
			Fingerprint:   s.ConfigFingerprint(),
		},
		UptimeSeconds: time.Since(s.obs.start).Seconds(),
		Counters:      counters,
		Gauges:        gauges,
		Stages:        s.StageSummaries(),
		Spans: SpanStats{
			SampleN: s.opts.SpanSampleN, Sampled: sampled,
			Completed: completed, Dropped: dropped, Buffered: buffered,
		},
		Elements: s.elementsStatus(),
		Tiles:    s.Health(),
	}
}

// NewAdminHandler builds the admin HTTP mux for a Server:
//
//	/metrics      Prometheus text exposition: counters, live gauges, and
//	              per-tile stage histograms (tile-labeled families)
//	/healthz      per-tile quarantine/breaker state; 503 once closing
//	/statusz      JSON snapshot (build/config manifest, counters, gauges,
//	              stage summaries, span stats, tile health); ?write=1
//	              flushes the -stats-out artifact mid-run
//	/spans        buffered lifecycle spans as Perfetto trace JSON
//	/faultz       per-tile fault schedules; ?tile=N&faults=SPEC swaps one
//	              live (the chaos-drill control)
//	/debug/pprof  the standard Go profiling endpoints
func NewAdminHandler(s *Server, opts AdminOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		counters, gauges, hists := s.MetricsSnapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		telemetry.WritePrometheusMetrics(w, counters, gauges, hists)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		doc := healthzDoc{Status: "ok", Totals: s.healthTotals(), Tiles: s.Health()}
		code := http.StatusOK
		if s.Closed() {
			doc.Status = "closing"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		doc := s.StatuszSnapshot(opts.Manifest)
		if r.URL.Query().Get("write") == "1" {
			if opts.FlushStats == nil {
				http.Error(w, "statusz: no -stats-out configured", http.StatusBadRequest)
				return
			}
			path, err := opts.FlushStats()
			if err != nil {
				http.Error(w, fmt.Sprintf("statusz: stats flush: %v", err), http.StatusInternalServerError)
				return
			}
			doc.StatsWritten = path
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		telemetry.WritePerfetto(w, s.SpanEvents())
	})
	// /faultz is the chaos-drill control (like /statusz?write=1, it is a
	// documented mutator on an otherwise read-only plane): GET with no
	// parameters reports each tile's live fault schedule; with
	// ?tile=N&faults=SPEC[&seed=S] it swaps tile N's schedule — SPEC uses
	// the -faults flag grammar, "off" stops injection — so a drill can
	// fault a live tile, watch its breaker trip, stop injection, and watch
	// the half-open probes re-admit it.
	mux.HandleFunc("/faultz", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if spec := q.Get("faults"); spec != "" {
			tileID, err := strconv.Atoi(q.Get("tile"))
			if err != nil {
				http.Error(w, "faultz: ?faults= requires ?tile=N", http.StatusBadRequest)
				return
			}
			var seed uint64 = 1
			if v := q.Get("seed"); v != "" {
				if seed, err = strconv.ParseUint(v, 10, 64); err != nil {
					http.Error(w, "faultz: bad seed: "+err.Error(), http.StatusBadRequest)
					return
				}
			}
			cfg, err := faults.ParseFlag(spec, seed)
			if err != nil {
				http.Error(w, "faultz: "+err.Error(), http.StatusBadRequest)
				return
			}
			if err := s.SetTileFaults(tileID, cfg); err != nil {
				http.Error(w, "faultz: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		type tileFaults struct {
			Tile    int     `json:"tile"`
			Enabled bool    `json:"enabled"`
			Rate    float64 `json:"rate,omitempty"`
			Seed    uint64  `json:"seed,omitempty"`
		}
		doc := make([]tileFaults, s.Tiles())
		for i := range doc {
			cfg := s.TileFaults(i)
			doc[i] = tileFaults{Tile: i, Enabled: cfg.Enabled, Rate: cfg.Rate, Seed: cfg.Seed}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "protoaccd admin: /metrics /healthz /statusz /spans /faultz /debug/pprof\n")
	})
	return mux
}
