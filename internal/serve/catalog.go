package serve

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
)

// A Catalog is the set of message schemas a Server hosts. Requests name
// an entry; the server resolves it to the schema it loads into the
// accelerator's ADT. Entries also carry deterministic sample payloads so
// the load generator and the equivalence tests can exercise the serving
// path without inventing wire bytes of their own.
type Catalog struct {
	entries map[string]*Entry
	names   []string
}

// Entry is one hosted schema plus canonical sample payloads.
type Entry struct {
	Name string
	Type *schema.Message

	payloads [][]byte
}

// NewCatalog builds a catalog from entries; names must be unique.
func NewCatalog(entries ...*Entry) (*Catalog, error) {
	c := &Catalog{entries: make(map[string]*Entry, len(entries))}
	for _, e := range entries {
		if _, dup := c.entries[e.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate catalog entry %q", e.Name)
		}
		c.entries[e.Name] = e
		c.names = append(c.names, e.Name)
	}
	sort.Strings(c.names)
	return c, nil
}

// Lookup resolves a schema name; nil if absent.
func (c *Catalog) Lookup(name string) *Entry {
	if c == nil {
		return nil
	}
	return c.entries[name]
}

// Names lists hosted schema names, sorted.
func (c *Catalog) Names() []string {
	return append([]string(nil), c.names...)
}

// SamplePayload returns the i'th canonical sample payload (wrapping).
// Payloads are canonical codec.Marshal output, so a serving response for
// either op over a sample payload must equal the payload itself.
func (e *Entry) SamplePayload(i int) []byte {
	return e.payloads[i%len(e.payloads)]
}

// NumSamples reports how many distinct sample payloads the entry carries.
func (e *Entry) NumSamples() int { return len(e.payloads) }

// samplesPerEntry is the number of deterministic payloads generated per
// default-catalog entry; enough variety to spread message sizes without
// bloating server start-up.
const samplesPerEntry = 64

// sampleSeed derives the per-entry RNG seed from an FNV-1a hash of the
// full schema name. Seeding from the name's *length* (as this package
// originally did) collides for any two equal-length names — "varint" and
// "string" shared one seed, so their sample-payload streams drew the same
// random sequence and were correlated across schemas.
func sampleSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// newEntry builds an entry, populating sample payloads from pop.
func newEntry(name string, t *schema.Message, pop func(i int, rng *rand.Rand) *dynamic.Message) *Entry {
	e := &Entry{Name: name, Type: t}
	rng := rand.New(rand.NewSource(sampleSeed(name)))
	for i := 0; i < samplesPerEntry; i++ {
		m := pop(i, rng)
		b, err := codec.Marshal(m)
		if err != nil {
			panic(fmt.Sprintf("serve: %s sample %d: %v", name, i, err))
		}
		e.payloads = append(e.payloads, b)
	}
	return e
}

func mustType(name string, fields ...*schema.Field) *schema.Message {
	t, err := schema.NewMessage(name, fields...)
	if err != nil {
		panic(fmt.Sprintf("serve: invalid static schema %s: %v", name, err))
	}
	return t
}

// DefaultCatalog hosts three schemas spanning the accelerator's field
// regimes: pure varints (no in-accelerator allocation), a single string
// (allocation + memcpy), and a mixed message with a repeated field and a
// sub-message (pointer chasing + allocation).
func DefaultCatalog() *Catalog {
	varintT := mustType("ServeVarint",
		&schema.Field{Name: "f1", Number: 1, Kind: schema.KindUint64},
		&schema.Field{Name: "f2", Number: 2, Kind: schema.KindUint64},
		&schema.Field{Name: "f3", Number: 3, Kind: schema.KindUint64},
		&schema.Field{Name: "f4", Number: 4, Kind: schema.KindUint64},
		&schema.Field{Name: "f5", Number: 5, Kind: schema.KindUint64},
	)
	varint := newEntry("varint", varintT, func(i int, rng *rand.Rand) *dynamic.Message {
		m := dynamic.New(varintT)
		for f := int32(1); f <= 5; f++ {
			// Spread encoded widths 1..10 bytes deterministically.
			m.SetUint64(f, uint64(1)<<uint(rng.Intn(64)))
		}
		return m
	})

	stringT := mustType("ServeString",
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	str := newEntry("string", stringT, func(i int, rng *rand.Rand) *dynamic.Message {
		m := dynamic.New(stringT)
		n := 8 + rng.Intn(1<<10)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte(' ' + rng.Intn(95))
		}
		m.SetBytes(1, b)
		return m
	})

	innerT := mustType("ServeMixedInner",
		&schema.Field{Name: "v", Number: 1, Kind: schema.KindDouble})
	mixedT := mustType("ServeMixed",
		&schema.Field{Name: "id", Number: 1, Kind: schema.KindUint64},
		&schema.Field{Name: "name", Number: 2, Kind: schema.KindString},
		&schema.Field{Name: "vals", Number: 3, Kind: schema.KindUint64, Label: schema.LabelRepeated},
		&schema.Field{Name: "sub", Number: 4, Kind: schema.KindMessage, Message: innerT},
	)
	mixed := newEntry("mixed", mixedT, func(i int, rng *rand.Rand) *dynamic.Message {
		m := dynamic.New(mixedT)
		m.SetUint64(1, rng.Uint64())
		name := make([]byte, 4+rng.Intn(28))
		for j := range name {
			name[j] = byte('a' + rng.Intn(26))
		}
		m.SetBytes(2, name)
		for e := 0; e < 1+rng.Intn(6); e++ {
			m.AddScalarBits(3, uint64(rng.Intn(1<<20)))
		}
		m.MutableMessage(4).SetScalarBits(1, rng.Uint64())
		return m
	})

	c, err := NewCatalog(varint, str, mixed)
	if err != nil {
		panic(err) // static names, cannot collide
	}
	return c
}
