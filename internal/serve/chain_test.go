package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"protoacc/internal/faults"
	"protoacc/internal/serve/elements"
	"protoacc/internal/telemetry"
)

// allElements enables the full chain with admission made transparent:
// closed-loop test clients burst far past any realistic per-client rate,
// and these tests exercise the cache and breaker, not throttling.
func allElements() elements.Config {
	return elements.Config{Admission: true, Breaker: true, Cache: true, FillRate: 1e9}
}

// The chain must be byte-transparent: with a fault schedule poisoning one
// tile, a chain-off server and a chain-on server (breaker rerouting, cache
// answering repeats) must produce identical (status, payload) streams for
// the same requests — including the second round, which the chain-on
// server answers partly from cache. FellBack and Cycles may differ (a
// rerouted or cached request legitimately avoids the fault recovery the
// chain-off server went through); the bytes may not.
func TestServeElementsByteTransparency(t *testing.T) {
	reqs := sampleRequests(DefaultCatalog(), 12)
	base := testOptions()
	base.Tiles = 4
	base.Routing = RouteRoundRobin
	base.Workers = 4
	base.Faults = faults.Config{Enabled: true, Seed: 1234, Rate: 0.2}
	base.FaultTiles = []int{1}

	run := func(opts Options) ([]Response, *Server) {
		srv, err := NewServer(opts)
		if err != nil {
			t.Fatal(err)
		}
		client := srv.InProc()
		var all []Response
		for round := 0; round < 2; round++ {
			resps, err := client.DoBatch(append([]Request(nil), reqs...))
			if err != nil {
				srv.Close()
				t.Fatal(err)
			}
			all = append(all, resps...)
		}
		srv.Close()
		return all, srv
	}

	off := base
	ra, _ := run(off)

	on := base
	on.Elements = allElements()
	rb, srv := run(on)

	if len(ra) != len(rb) {
		t.Fatalf("response counts differ: off=%d on=%d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Status != rb[i].Status {
			t.Errorf("response %d: status off=%v on=%v", i, ra[i].Status, rb[i].Status)
		}
		if !bytes.Equal(ra[i].Payload, rb[i].Payload) {
			t.Errorf("response %d: payload bytes differ between chain-off and chain-on", i)
		}
	}
	_, hits, _, _, _, _ := srv.Elements().Cache.Stats()
	if hits == 0 {
		t.Error("repeated round produced no cache hits; transparency was not exercised through the cache path")
	}
}

// Per-client admission control: a client pushing past its bucket is
// answered StatusThrottled without the server doing work, the rejection
// shows up in both the serve/responses/ and serve/elements/admission/
// counters, and a second client's fresh bucket is unaffected.
func TestServeElementsAdmissionThrottle(t *testing.T) {
	opts := testOptions()
	opts.Elements = elements.Config{Admission: true, FillRate: 1} // burst = 2
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.InProc()
	entry := srv.Catalog().Lookup("varint")
	var ok, throttled int
	for i := 0; i < 8; i++ {
		resp, err := client.Do(Request{Op: OpDeserialize, Schema: "varint", Payload: entry.SamplePayload(i)})
		if err != nil {
			t.Fatal(err)
		}
		switch resp.Status {
		case StatusOK:
			ok++
		case StatusThrottled:
			throttled++
		default:
			t.Fatalf("request %d: status %v", i, resp.Status)
		}
	}
	if ok < 2 {
		t.Errorf("burst of 2 admitted only %d requests", ok)
	}
	if throttled == 0 {
		t.Error("8 rapid requests at fill rate 1/s were never throttled")
	}
	// A distinct client identity starts with its own full bucket.
	resp, err := srv.InProc().Do(Request{Op: OpDeserialize, Schema: "varint", Payload: entry.SamplePayload(0)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Errorf("fresh client throttled by another client's spend: %v", resp.Status)
	}

	srv.Close()
	snap := srv.TelemetrySnapshot()
	if v, _ := snap.Get("serve/responses/throttled"); v != float64(throttled) {
		t.Errorf("serve/responses/throttled = %v, want %d", v, throttled)
	}
	if v, _ := snap.Get("serve/elements/admission/throttled"); v != float64(throttled) {
		t.Errorf("serve/elements/admission/throttled = %v, want %d", v, throttled)
	}
	if v, _ := snap.Get("serve/elements/admission/allowed"); v != float64(ok+1) {
		t.Errorf("serve/elements/admission/allowed = %v, want %d", v, ok+1)
	}
}

// The breaker chaos drill, end to end over the admin plane: faults on one
// tile trip its breaker while the healthy tiles keep serving with zero
// fault recovery of their own; /healthz reports the tripped state;
// clearing the fault schedule through /faultz lets half-open probes
// re-admit the tile without operator action.
func TestServeElementsBreakerTripAndRecover(t *testing.T) {
	const faultTile = 1
	opts := testOptions()
	opts.Tiles = 4
	opts.Routing = RouteRoundRobin
	opts.Workers = 4
	opts.Faults = faults.Config{Enabled: true, Seed: 1234, Rate: 0.9}
	opts.FaultTiles = []int{faultTile}
	opts.Elements = elements.Config{
		Breaker: true,
		Window:  200 * time.Millisecond, TripRate: 0.3, MinVolume: 8,
		OpenFor: 100 * time.Millisecond, Probes: 4,
	}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(NewAdminHandler(srv, AdminOptions{}))
	defer ts.Close()
	br := srv.Elements().Breaker
	client := srv.InProc()
	reqs := sampleRequests(DefaultCatalog(), 8)

	drive := func(until func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !until() {
			if time.Now().After(deadline) {
				t.Fatalf("breaker never %s; states=%+v", what, br.TileStates(time.Now()))
			}
			if _, err := client.DoBatch(append([]Request(nil), reqs...)); err != nil {
				t.Fatal(err)
			}
		}
	}

	drive(func() bool { return br.StateOf(faultTile) != elements.StateClosed }, "tripped")

	// While the faulted tile is tripped, its neighbours must be clean:
	// faults are tile-confined and an open breaker cannot push work onto
	// them through fallback paths.
	for i, tile := range srv.tiles {
		if i == faultTile {
			continue
		}
		tile.mu.Lock()
		st := tile.stats
		tile.mu.Unlock()
		if st.accelFallbacks != 0 || st.serverFallbacks != 0 || st.retryEvents != 0 {
			t.Errorf("healthy tile %d shows fault recovery while tile %d is tripped: accelFB=%d serverFB=%d retries=%d",
				i, faultTile, st.accelFallbacks, st.serverFallbacks, st.retryEvents)
		}
	}

	// /healthz must expose the breaker state, trip count, and totals.
	var hdoc struct {
		Status string       `json:"status"`
		Totals healthTotals `json:"totals"`
		Tiles  []TileHealth `json:"tiles"`
	}
	body := adminGet(t, ts, "/healthz")
	if err := json.Unmarshal(body, &hdoc); err != nil {
		t.Fatalf("/healthz decode: %v\n%s", err, body)
	}
	th := hdoc.Tiles[faultTile]
	if th.Breaker != "open" && th.Breaker != "half-open" {
		t.Errorf("/healthz tile %d breaker = %q, want open or half-open", faultTile, th.Breaker)
	}
	if th.BreakerTrips == 0 {
		t.Errorf("/healthz tile %d breaker_trips = 0 after a trip", faultTile)
	}
	if !th.Degraded {
		t.Errorf("/healthz tile %d not degraded with a non-closed breaker", faultTile)
	}
	for i, h := range hdoc.Tiles {
		if i != faultTile && h.Breaker != "closed" {
			t.Errorf("/healthz healthy tile %d breaker = %q", i, h.Breaker)
		}
	}

	// Stop injection through the chaos-drill control, then keep routing
	// pressure on: the open dwell expires, half-open probes run clean, and
	// the breaker re-closes.
	body = adminGet(t, ts, fmt.Sprintf("/faultz?tile=%d&faults=off", faultTile))
	if srv.TileFaults(faultTile).Enabled {
		t.Fatalf("/faultz did not clear tile %d schedule: %s", faultTile, body)
	}
	drive(func() bool { return br.StateOf(faultTile) == elements.StateClosed }, "re-closed after faults cleared")

	evs := br.Events()
	if len(evs) == 0 {
		t.Fatal("no breaker transition events recorded")
	}
	if evs[0].Tile != faultTile || evs[0].From != "closed" || evs[0].To != "open" {
		t.Errorf("first transition = %+v, want tile %d closed→open", evs[0], faultTile)
	}
	last := evs[len(evs)-1]
	if last.Tile != faultTile || last.To != "closed" {
		t.Errorf("last transition = %+v, want tile %d re-closing", last, faultTile)
	}
	for _, ev := range evs {
		if ev.Tile != faultTile {
			t.Errorf("transition on healthy tile: %+v", ev)
		}
	}

	// /statusz carries the same lifecycle for operators.
	var sdoc Statusz
	body = adminGet(t, ts, "/statusz")
	if err := json.Unmarshal(body, &sdoc); err != nil {
		t.Fatalf("/statusz decode: %v", err)
	}
	if sdoc.Elements == nil || sdoc.Elements.Breaker == nil {
		t.Fatal("/statusz has no elements.breaker section with the breaker enabled")
	}
	if len(sdoc.Elements.Breaker.Events) == 0 {
		t.Error("/statusz breaker event timeline empty after a trip/recover cycle")
	}
	if got := sdoc.Elements.Breaker.Tiles[faultTile].Trips; got == 0 {
		t.Error("/statusz breaker trips = 0 after a trip")
	}

	srv.Close()
	snap := srv.TelemetrySnapshot()
	if v, _ := snap.Get("serve/elements/breaker/trips"); v == 0 {
		t.Error("serve/elements/breaker/trips = 0")
	}
	if v, _ := snap.Get("serve/elements/breaker/closes"); v == 0 {
		t.Error("serve/elements/breaker/closes = 0 after recovery")
	}
	if v, _ := snap.Get("serve/elements/breaker/reroutes"); v == 0 {
		t.Error("serve/elements/breaker/reroutes = 0: the router never steered around the open tile")
	}
}

func adminGet(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// elementCounterNames is the pinned serve/elements/ counter partition:
// these exact families must exist whenever the full chain is enabled, and
// like every aggregate counter they must be tile-count independent.
var elementCounterNames = []string{
	"serve/elements/admission/allowed",
	"serve/elements/admission/throttled",
	"serve/elements/breaker/trips",
	"serve/elements/breaker/reopens",
	"serve/elements/breaker/closes",
	"serve/elements/breaker/half_opens",
	"serve/elements/breaker/probes",
	"serve/elements/breaker/reroutes",
	"serve/elements/cache/lookups",
	"serve/elements/cache/hits",
	"serve/elements/cache/misses",
	"serve/elements/cache/inserts",
	"serve/elements/cache/evictions",
	"serve/elements/cache/collisions",
}

// Tile-count determinism must survive the element chain: a 1-tile and a
// 4-tile round-robin server with the full chain enabled produce bitwise
// identical responses and identical aggregated counters — including the
// serve/elements/ groups — for the same two-round workload (round one all
// cache misses, round two, the same requests again, all hits).
func TestServeTileDeterminismWithElements(t *testing.T) {
	reqs := sampleRequests(DefaultCatalog(), 8)
	run := func(tiles int) ([]Response, map[string]float64) {
		opts := testOptions()
		opts.Tiles = tiles
		opts.Routing = RouteRoundRobin
		opts.Workers = tiles
		opts.Elements = allElements()
		srv, err := NewServer(opts)
		if err != nil {
			t.Fatal(err)
		}
		client := srv.InProc()
		var all []Response
		for round := 0; round < 2; round++ {
			resps, err := client.DoBatch(append([]Request(nil), reqs...))
			if err != nil {
				srv.Close()
				t.Fatal(err)
			}
			all = append(all, resps...)
		}
		srv.Close()
		return all, srv.AggregatedCounters()
	}

	ra, ca := run(1)
	rb, cb := run(4)
	compareRuns(t, "1-tile", "4-tile", ra, rb, ca, cb)

	n := float64(len(reqs))
	for _, name := range elementCounterNames {
		if _, ok := ca[name]; !ok {
			t.Errorf("pinned element counter %s missing from aggregated counters", name)
		}
	}
	want := map[string]float64{
		"serve/elements/admission/allowed":   2 * n,
		"serve/elements/admission/throttled": 0,
		"serve/elements/cache/lookups":       2 * n,
		"serve/elements/cache/misses":        n,
		"serve/elements/cache/hits":          n,
		"serve/elements/cache/inserts":       n,
		"serve/elements/cache/evictions":     0,
		"serve/elements/cache/collisions":    0,
		"serve/elements/breaker/trips":       0,
	}
	for name, w := range want {
		if got := ca[name]; got != w {
			t.Errorf("%s = %v, want %v", name, got, w)
		}
	}
}

// The element telemetry must survive the Prometheus exporter: valid
// exposition, element counter families present, and the per-tile breaker
// state gauge labeled like every other per-tile series.
func TestServeElementsPrometheus(t *testing.T) {
	opts := testOptions()
	opts.Elements = allElements()
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := srv.InProc()
	entry := srv.Catalog().Lookup("varint")
	for i := 0; i < 2; i++ { // second pass hits the cache
		if _, err := client.Do(Request{Op: OpDeserialize, Schema: "varint", Payload: entry.SamplePayload(0)}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(NewAdminHandler(srv, AdminOptions{}))
	defer ts.Close()
	metrics := adminGet(t, ts, "/metrics")
	if err := telemetry.ValidatePrometheus(bytes.NewReader(metrics)); err != nil {
		t.Errorf("/metrics exposition invalid with elements on: %v\n%s", err, metrics)
	}
	for _, want := range []string{
		"# TYPE protoacc_serve_elements_admission_allowed counter",
		"# TYPE protoacc_serve_elements_breaker_trips counter",
		"# TYPE protoacc_serve_elements_cache_hits counter",
		"protoacc_serve_elements_cache_hits 1",
		`protoacc_serve_live_breaker_state{tile="0"} 0`,
		"protoacc_serve_elements_admission_live_clients 1",
		"protoacc_serve_elements_cache_live_entries 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
