package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Doer is the client surface shared by the TCP connection and the
// in-process client; the load generator drives either interchangeably.
type Doer interface {
	// Do submits one request and blocks for its response. The client owns
	// correlation-id assignment; Request.ID is overwritten.
	Do(req Request) (Response, error)
	// Close releases the client. In-flight Do calls fail.
	Close() error
}

// InProc is a direct in-process client of a Server — the zero-copy,
// zero-framing path the equivalence tests and in-process load generation
// use. Its Do goes through exactly the same admission, batching, and
// execution pipeline as a TCP request.
type InProc struct {
	srv    *Server
	client string // admission-control identity, unique per InProc
	mu     sync.Mutex
	id     uint64
}

// InProc returns an in-process client of this server. Each client gets
// its own admission-control identity, mirroring the per-connection
// identity TCP clients get from their remote address.
func (s *Server) InProc() *InProc {
	return &InProc{srv: s, client: fmt.Sprintf("inproc-%d", s.inprocSeq.Add(1))}
}

// Do implements Doer.
func (c *InProc) Do(req Request) (Response, error) {
	c.mu.Lock()
	c.id++
	req.ID = c.id
	c.mu.Unlock()
	return <-c.srv.submit(c.client, req), nil
}

// Close implements Doer (nothing to release in-process).
func (c *InProc) Close() error { return nil }

// DoBatch submits requests as preformed accelerator batches: consecutive
// requests sharing a (schema, op) run as one batch (split at MaxBatch),
// bypassing the time-window coalescer. Batch composition is therefore a
// pure function of the request list — independent of worker count and
// scheduling — which is what lets the equivalence tests demand bitwise
// identical responses and telemetry from serial and parallel servers.
// Responses are returned in request order.
func (c *InProc) DoBatch(reqs []Request) ([]Response, error) {
	chans := make([]<-chan Response, len(reqs))
	var group []*pending
	var key batchKey
	flush := func() {
		if len(group) > 0 {
			c.srv.submitPreformed(group, key)
			group = nil
		}
	}
	for i := range reqs {
		c.mu.Lock()
		c.id++
		reqs[i].ID = c.id
		c.mu.Unlock()
		p, ok := c.srv.admit(c.client, reqs[i])
		chans[i] = p.resp
		if !ok {
			continue
		}
		k := batchKey{schema: reqs[i].Schema, op: reqs[i].Op}
		if len(group) > 0 && (k != key || len(group) >= c.srv.opts.MaxBatch) {
			flush()
		}
		key = k
		group = append(group, p)
	}
	flush()
	out := make([]Response, len(reqs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out, nil
}

// Sentinel errors a Conn surfaces to callers. Both wrap into the errors
// returned from Do, so callers test with errors.Is.
var (
	// ErrTimeout reports a request whose per-request wait budget expired
	// with no response. The connection stays usable: the daemon may still
	// answer the abandoned id later, and the read loop drops it.
	ErrTimeout = errors.New("serve: request timed out")
	// ErrClosed reports a Conn used after Close, or one whose transport
	// died. A broken Conn never recovers — reconnecting is the caller's
	// (or the cluster balancer's) job, so redial policy stays explicit
	// rather than hidden inside a client that silently re-sends.
	ErrClosed = errors.New("serve: connection closed")
)

// DialOptions tunes a Conn. The zero value of any field selects the
// default noted on it.
type DialOptions struct {
	// Timeout bounds every Do call end to end. Zero defers to the
	// per-request budget: Request.Timeout (plus Grace for the round
	// trip) when set, otherwise the wait is unbounded — the legacy
	// behavior, for callers who manage their own deadlines.
	Timeout time.Duration

	// Grace is added to Request.Timeout when it (and not Timeout) bounds
	// the wait, covering queueing and the wire round trip beyond the
	// server-side budget (default 1s).
	Grace time.Duration

	// WriteTimeout bounds each request write on the socket (default 10s).
	// A stalled write — a SIGSTOPped daemon with full TCP buffers — would
	// otherwise hold the write lock forever and wedge every other Do on
	// the connection; on expiry the Conn is failed, waking all waiters.
	WriteTimeout time.Duration
}

func (o DialOptions) withDefaults() DialOptions {
	if o.Grace <= 0 {
		o.Grace = time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	return o
}

// Conn is a TCP client connection. It multiplexes: many goroutines may Do
// concurrently, and responses are matched to callers by correlation id as
// they complete (the server reorders freely across batches).
type Conn struct {
	conn net.Conn
	opts DialOptions

	writeMu sync.Mutex
	nextID  uint64

	mu       sync.Mutex
	pend     map[uint64]chan Response
	readErr  error
	closed   bool
	done     chan struct{} // closed when the read loop dies; waiters select on it
	readGone chan struct{} // closed when the read loop has returned

	closeOnce sync.Once
	closeErr  error
}

// Dial connects to a protoaccd at addr with default options.
func Dial(addr string) (*Conn, error) { return DialWith(addr, DialOptions{}) }

// DialWith connects to a protoaccd at addr.
func DialWith(addr string, opts DialOptions) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		conn:     nc,
		opts:     opts.withDefaults(),
		pend:     make(map[uint64]chan Response),
		done:     make(chan struct{}),
		readGone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop routes response messages to waiting callers until the
// connection dies, then fails everything still pending. Responses whose
// waiter already gave up (timeout) are dropped.
func (c *Conn) readLoop() {
	defer close(c.readGone)
	for {
		body, _, err := readMessage(c.conn, maxFrame)
		if err == nil {
			var resp Response
			resp, err = parseResponse(body)
			if err == nil {
				c.mu.Lock()
				ch := c.pend[resp.ID]
				delete(c.pend, resp.ID)
				c.mu.Unlock()
				if ch != nil {
					ch <- resp
				}
				continue
			}
		}
		c.mu.Lock()
		c.readErr = err
		c.pend = make(map[uint64]chan Response)
		c.mu.Unlock()
		// Waiters are buffered(1) channels; closing done (not their
		// channels) wakes them so they can distinguish "connection died"
		// from a zero-value response.
		close(c.done)
		return
	}
}

// Broken reports whether the connection is dead (transport error or
// closed) and can never carry another request. The cluster balancer polls
// this to decide when a node needs a redial.
func (c *Conn) Broken() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// brokenErr builds the caller-facing error for a dead connection.
func (c *Conn) brokenErr() error {
	c.mu.Lock()
	err := c.readErr
	closed := c.closed
	c.mu.Unlock()
	if closed || err == nil || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return fmt.Errorf("serve: connection broken: %w", err)
}

// waitBudget returns the wait bound for one request: the dial-time
// Timeout if set, else the request's own budget plus Grace, else zero
// (unbounded).
func (c *Conn) waitBudget(req *Request) time.Duration {
	if c.opts.Timeout > 0 {
		return c.opts.Timeout
	}
	if req.Timeout > 0 {
		return req.Timeout + c.opts.Grace
	}
	return 0
}

// Do implements Doer over the wire protocol. The wait is bounded by
// waitBudget; on expiry the caller gets ErrTimeout and the connection
// stays usable (a late response to the abandoned id is dropped by the
// read loop).
func (c *Conn) Do(req Request) (Response, error) {
	if c.Broken() {
		return Response{}, c.brokenErr()
	}
	ch := make(chan Response, 1)

	c.writeMu.Lock()
	if c.Broken() { // may have died while we queued for the lock
		c.writeMu.Unlock()
		return Response{}, c.brokenErr()
	}
	c.nextID++
	req.ID = c.nextID
	c.mu.Lock()
	c.pend[req.ID] = ch
	c.mu.Unlock()
	c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	_, err := writeMessage(c.conn, appendRequest(nil, &req))
	c.conn.SetWriteDeadline(time.Time{})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pend, req.ID)
		c.mu.Unlock()
		// A partial request frame desynchronizes the stream: nothing sent
		// after it can parse. Kill the connection so every other waiter
		// fails fast instead of hanging on responses that cannot arrive.
		c.conn.Close()
		return Response{}, fmt.Errorf("serve: request write failed: %w", err)
	}

	var timeout <-chan time.Time
	if d := c.waitBudget(&req); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-timeout:
		c.mu.Lock()
		delete(c.pend, req.ID)
		c.mu.Unlock()
		// The read loop may have routed the response between the timer
		// firing and the delete; prefer the real answer.
		select {
		case resp := <-ch:
			return resp, nil
		default:
		}
		return Response{}, fmt.Errorf("serve: request %d: %w", req.ID, ErrTimeout)
	case <-c.done:
		// Drain a response that raced with the shutdown.
		select {
		case resp := <-ch:
			return resp, nil
		default:
		}
		return Response{}, c.brokenErr()
	}
}

// Close implements Doer. It is idempotent and safe to call concurrently
// with Do: the transport closes, the read loop exits failing every
// pending waiter, and Close returns only after the read loop is gone —
// so when Close returns, no Do call is still blocked on this Conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
		c.closeErr = c.conn.Close()
		<-c.readGone
	})
	return c.closeErr
}
