package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Doer is the client surface shared by the TCP connection and the
// in-process client; the load generator drives either interchangeably.
type Doer interface {
	// Do submits one request and blocks for its response. The client owns
	// correlation-id assignment; Request.ID is overwritten.
	Do(req Request) (Response, error)
	// Close releases the client. In-flight Do calls fail.
	Close() error
}

// InProc is a direct in-process client of a Server — the zero-copy,
// zero-framing path the equivalence tests and in-process load generation
// use. Its Do goes through exactly the same admission, batching, and
// execution pipeline as a TCP request.
type InProc struct {
	srv    *Server
	client string // admission-control identity, unique per InProc
	mu     sync.Mutex
	id     uint64
}

// InProc returns an in-process client of this server. Each client gets
// its own admission-control identity, mirroring the per-connection
// identity TCP clients get from their remote address.
func (s *Server) InProc() *InProc {
	return &InProc{srv: s, client: fmt.Sprintf("inproc-%d", s.inprocSeq.Add(1))}
}

// Do implements Doer.
func (c *InProc) Do(req Request) (Response, error) {
	c.mu.Lock()
	c.id++
	req.ID = c.id
	c.mu.Unlock()
	return <-c.srv.submit(c.client, req), nil
}

// Close implements Doer (nothing to release in-process).
func (c *InProc) Close() error { return nil }

// DoBatch submits requests as preformed accelerator batches: consecutive
// requests sharing a (schema, op) run as one batch (split at MaxBatch),
// bypassing the time-window coalescer. Batch composition is therefore a
// pure function of the request list — independent of worker count and
// scheduling — which is what lets the equivalence tests demand bitwise
// identical responses and telemetry from serial and parallel servers.
// Responses are returned in request order.
func (c *InProc) DoBatch(reqs []Request) ([]Response, error) {
	chans := make([]<-chan Response, len(reqs))
	var group []*pending
	var key batchKey
	flush := func() {
		if len(group) > 0 {
			c.srv.submitPreformed(group, key)
			group = nil
		}
	}
	for i := range reqs {
		c.mu.Lock()
		c.id++
		reqs[i].ID = c.id
		c.mu.Unlock()
		p, ok := c.srv.admit(c.client, reqs[i])
		chans[i] = p.resp
		if !ok {
			continue
		}
		k := batchKey{schema: reqs[i].Schema, op: reqs[i].Op}
		if len(group) > 0 && (k != key || len(group) >= c.srv.opts.MaxBatch) {
			flush()
		}
		key = k
		group = append(group, p)
	}
	flush()
	out := make([]Response, len(reqs))
	for i, ch := range chans {
		out[i] = <-ch
	}
	return out, nil
}

// Conn is a TCP client connection. It multiplexes: many goroutines may Do
// concurrently, and responses are matched to callers by correlation id as
// they complete (the server reorders freely across batches).
type Conn struct {
	conn net.Conn

	writeMu sync.Mutex
	nextID  uint64

	mu      sync.Mutex
	pend    map[uint64]chan Response
	readErr error
	done    chan struct{}
}

// Dial connects to a protoaccd at addr.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		conn: nc,
		pend: make(map[uint64]chan Response),
		done: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop routes response frames to waiting callers until the connection
// dies, then fails everything still pending.
func (c *Conn) readLoop() {
	for {
		body, err := readFrame(c.conn)
		if err == nil {
			var resp Response
			resp, err = parseResponse(body)
			if err == nil {
				c.mu.Lock()
				ch := c.pend[resp.ID]
				delete(c.pend, resp.ID)
				c.mu.Unlock()
				if ch != nil {
					ch <- resp
				}
				continue
			}
		}
		c.mu.Lock()
		c.readErr = err
		c.pend = make(map[uint64]chan Response)
		c.mu.Unlock()
		// Waiters are buffered(1) channels; closing done (not their
		// channels) wakes them so they can distinguish "connection died"
		// from a zero-value response.
		close(c.done)
		return
	}
}

// Do implements Doer over the wire protocol.
func (c *Conn) Do(req Request) (Response, error) {
	ch := make(chan Response, 1)

	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return Response{}, fmt.Errorf("serve: connection broken: %w", err)
	}
	c.mu.Unlock()

	c.writeMu.Lock()
	c.nextID++
	req.ID = c.nextID
	c.mu.Lock()
	c.pend[req.ID] = ch
	c.mu.Unlock()
	err := writeFrame(c.conn, appendRequest(nil, &req))
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pend, req.ID)
		c.mu.Unlock()
		return Response{}, err
	}

	select {
	case resp := <-ch:
		return resp, nil
	case <-c.done:
		// Drain a response that raced with the shutdown.
		select {
		case resp := <-ch:
			return resp, nil
		default:
		}
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		if err == nil {
			err = errors.New("connection closed")
		}
		return Response{}, fmt.Errorf("serve: connection broken: %w", err)
	}
}

// Close implements Doer.
func (c *Conn) Close() error { return c.conn.Close() }
