package serve

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeDaemon listens on loopback and hands every accepted connection to
// handle; it stands in for a protoaccd that is hung, half-dead, or
// otherwise misbehaving in ways a real server won't reproduce on demand.
func fakeDaemon(t *testing.T, handle func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go handle(nc)
		}
	}()
	return ln.Addr().String()
}

// readAndHold consumes inbound messages forever without ever answering —
// a daemon that accepted the request and then hung.
func readAndHold(nc net.Conn) {
	for {
		if _, _, err := readMessage(nc, maxFrame); err != nil {
			nc.Close()
			return
		}
	}
}

// Regression: Conn.Do used to wait forever on a server that never
// responds. The dial-level Timeout must bound the wait, return ErrTimeout,
// and leave the connection usable for later requests.
func TestConnDoTimeoutSlowServer(t *testing.T) {
	addr := fakeDaemon(t, readAndHold)
	conn, err := DialWith(addr, DialOptions{Timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	_, err = conn.Do(Request{Op: OpDeserialize, Schema: "varint"})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Do against a hung server: err = %v, want ErrTimeout", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("timeout took %v, want ~150ms", waited)
	}
	if conn.Broken() {
		t.Error("a request timeout must not kill the connection")
	}
	// The abandoned id must no longer be registered: pend would otherwise
	// leak one channel per timed-out request.
	conn.mu.Lock()
	n := len(conn.pend)
	conn.mu.Unlock()
	if n != 0 {
		t.Errorf("%d pending waiters leaked after timeout", n)
	}
}

// The per-request budget (Request.Timeout + Grace) must bound the wait
// when no dial-level Timeout is set.
func TestConnDoTimeoutFromRequestBudget(t *testing.T) {
	addr := fakeDaemon(t, readAndHold)
	conn, err := DialWith(addr, DialOptions{Grace: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan error, 1)
	go func() {
		_, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint", Timeout: 50 * time.Millisecond})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do ignored the per-request budget")
	}
}

// Regression: a daemon dying mid-flight used to be survivable only
// because readLoop failed the pend map — but callers with no timeout
// depended entirely on that one path. The waiter must get an error
// promptly, and later Do calls must fail fast with ErrClosed semantics
// instead of touching the dead socket.
func TestConnDaemonDiesMidFlight(t *testing.T) {
	addr := fakeDaemon(t, func(nc net.Conn) {
		// Accept the request, then die without answering.
		readMessage(nc, maxFrame)
		nc.Close()
	})
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan error, 1)
	go func() {
		_, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint"})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Do returned success from a daemon that died mid-flight")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do blocked forever on a dead daemon")
	}
	if !conn.Broken() {
		t.Error("Broken() = false after the transport died")
	}
	if _, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint"}); err == nil {
		t.Error("Do on a broken connection returned success")
	}
}

// Regression: Close used to just close the socket; waiters blocked in Do
// with no timeout were freed only by the read loop's error path, and
// Close gave no guarantee it had happened. Now Close must fail every
// pending waiter before returning, and be idempotent.
func TestConnCloseFailsWaiters(t *testing.T) {
	addr := fakeDaemon(t, readAndHold)
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint"})
			errs <- err
		}()
	}
	// Wait until every waiter is registered before closing.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn.mu.Lock()
		pending := len(conn.pend)
		conn.mu.Unlock()
		if pending == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests registered", pending, n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := conn.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close returning means the read loop is gone — every Do must already
	// be unblocked, so the waitgroup cannot hang.
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("waiter err = %v, want ErrClosed", err)
		}
	}
	if err := conn.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint"}); !errors.Is(err, ErrClosed) {
		t.Errorf("Do after Close: err = %v, want ErrClosed", err)
	}
}

// Regression: a daemon that stops draining its socket (SIGSTOP) used to
// wedge the writer forever while it held writeMu — every other Do on the
// connection then deadlocked behind the lock, timeout or not. The write
// deadline must fail the stalled write and kill the connection so all
// callers escape.
func TestConnWriteStallFailsFast(t *testing.T) {
	accepted := make(chan net.Conn, 1)
	addr := fakeDaemon(t, func(nc net.Conn) {
		accepted <- nc // hold the conn open but never read from it
	})
	conn, err := DialWith(addr, DialOptions{WriteTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	defer func() {
		if nc := <-accepted; nc != nil {
			nc.Close()
		}
	}()
	// Large enough to overrun the kernel socket buffers so the write
	// genuinely stalls mid-message.
	payload := make([]byte, 16<<20)
	done := make(chan error, 1)
	go func() {
		_, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint", Payload: payload})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("stalled write reported success")
		}
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Errorf("err = %v, want a net timeout", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Do deadlocked on a stalled socket write")
	}
	// The partial frame desynchronized the stream; the Conn must be dead
	// and later calls must fail instead of queueing behind a wedged lock.
	if !conn.Broken() {
		t.Error("Broken() = false after a write timeout")
	}
	if _, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint"}); err == nil {
		t.Error("Do on a write-wedged connection returned success")
	}
}

// A broken read stream (garbage response bytes) must surface as a broken
// connection, not a hang or a misrouted response.
func TestConnGarbageResponse(t *testing.T) {
	addr := fakeDaemon(t, func(nc net.Conn) {
		if _, _, err := readMessage(nc, maxFrame); err != nil {
			nc.Close()
			return
		}
		nc.Write(frame([]byte("not a response")))
	})
	conn, err := DialWith(addr, DialOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint"}); err == nil {
		t.Fatal("garbage response bytes accepted")
	}
	if !conn.Broken() {
		t.Error("Broken() = false after a response parse failure")
	}
}

// Sanity: io.EOF from a clean peer shutdown maps to ErrClosed after the
// caller closes, and to a wrapped transport error otherwise. (Guards the
// brokenErr classification the cluster balancer keys off.)
func TestConnBrokenErrClassification(t *testing.T) {
	addr := fakeDaemon(t, func(nc net.Conn) { nc.Close() })
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the read loop to observe the hangup.
	deadline := time.Now().Add(10 * time.Second)
	for !conn.Broken() {
		if time.Now().After(deadline) {
			t.Fatal("read loop never observed the peer hangup")
		}
		time.Sleep(time.Millisecond)
	}
	if err := conn.brokenErr(); !errors.Is(err, io.EOF) {
		t.Errorf("peer hangup err = %v, want io.EOF wrap", err)
	}
	conn.Close()
	if err := conn.brokenErr(); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close err = %v, want ErrClosed", err)
	}
}
