// Package cluster is the client side of a disaggregated accelerator
// pool: a balancer holding one TCP connection per protoaccd daemon,
// routing each request with power-of-two-choices over live in-flight and
// latency estimates (the tile router's policy, lifted across the
// network), hedging stragglers against a second node after an adaptive
// quantile delay, and ejecting sick nodes based on transport errors and
// each daemon's /healthz admin surface — RPCAcc's "accelerator as a
// network-attached resource", built from the serving layer this repo
// already has.
//
// The balancer deliberately owns all recovery policy. A serve.Conn never
// reconnects on its own (see serve.ErrClosed): redial, failover, and
// hedging all happen here, where there is a second node to fail over to
// and counters to account the decision.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"protoacc/internal/serve"
	"protoacc/internal/telemetry"
)

// HedgeOptions tunes straggler hedging. Hedging sends a second copy of a
// request to a different node once the first has been outstanding longer
// than an adaptive delay — the observed Quantile of OK latency, clamped
// to [Min, Max] — and takes whichever response lands first. The loser is
// not cancelled (the wire protocol has no cancel); it completes and is
// discarded, which is the classic hedged-request trade: bounded duplicate
// work for a p999 cut.
type HedgeOptions struct {
	// Enabled turns hedging on. Off by default: hedging trades duplicate
	// work for tail latency, which is the caller's call to make.
	Enabled bool

	// Quantile of the observed OK-latency distribution to wait before
	// hedging (default 0.95): 5% of requests hedge at steady state.
	Quantile float64

	// Min and Max clamp the adaptive delay (defaults 1ms and 100ms). Max
	// also serves as the delay while fewer than MinSamples latencies have
	// been observed.
	Min, Max time.Duration

	// MinSamples is how many OK latencies must be observed before the
	// quantile is trusted (default 64).
	MinSamples int
}

func (o HedgeOptions) withDefaults() HedgeOptions {
	if o.Quantile <= 0 || o.Quantile >= 1 {
		o.Quantile = 0.95
	}
	if o.Min <= 0 {
		o.Min = time.Millisecond
	}
	if o.Max <= 0 {
		o.Max = 100 * time.Millisecond
	}
	if o.Max < o.Min {
		o.Max = o.Min
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 64
	}
	return o
}

// HealthOptions tunes node ejection and recovery. Two signals feed the
// state machine: transport errors observed on the data path (always on),
// and each daemon's /healthz admin document (on when Interval > 0 and
// the node has an admin address).
type HealthOptions struct {
	// Interval between /healthz polls; 0 (default) disables polling —
	// transport-error ejection still applies.
	Interval time.Duration

	// Timeout for one /healthz request (default 1s).
	Timeout time.Duration

	// ErrorThreshold ejects a node after this many consecutive transport
	// errors (default 3; < 0 disables error ejection).
	ErrorThreshold int

	// SickPolls ejects a node after this many consecutive sick /healthz
	// polls (default 2).
	SickPolls int

	// HealthyPolls restores an ejected node after this many consecutive
	// healthy polls (default 2).
	HealthyPolls int

	// DegradedTiles is the number of degraded tiles in a /healthz report
	// that marks the node sick (default 1: any degraded tile).
	DegradedTiles int

	// EjectDwell is how long an ejected node sits out before the router
	// sends it a probe request (default 2s).
	EjectDwell time.Duration
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.Timeout <= 0 {
		o.Timeout = time.Second
	}
	if o.ErrorThreshold == 0 {
		o.ErrorThreshold = 3
	}
	if o.SickPolls <= 0 {
		o.SickPolls = 2
	}
	if o.HealthyPolls <= 0 {
		o.HealthyPolls = 2
	}
	if o.DegradedTiles <= 0 {
		o.DegradedTiles = 1
	}
	if o.EjectDwell <= 0 {
		o.EjectDwell = 2 * time.Second
	}
	return o
}

// Options configures a Balancer.
type Options struct {
	// Addrs are the daemons' data-plane addresses (required, 1..N).
	Addrs []string

	// AdminAddrs are the daemons' admin-plane addresses for /healthz
	// polling, parallel to Addrs. Empty slice or empty entries disable
	// health polling for the whole pool or that node respectively.
	AdminAddrs []string

	// Routing picks nodes: serve.RoutePowerOfTwo (default) scores two
	// candidates by in-flight count × smoothed latency; RouteRoundRobin
	// is the deterministic mode — node choice is a pure function of the
	// request sequence, which is what the cluster equivalence tests pin.
	Routing serve.Routing

	// Dial tunes every per-node connection (deadlines; see
	// serve.DialOptions).
	Dial serve.DialOptions

	Hedge  HedgeOptions
	Health HealthOptions
}

// nodeState is the ejection state machine: healthy nodes route, ejected
// nodes sit out EjectDwell, then the first route that considers one flips
// it to probing and sends it a single real request — success restores it,
// failure re-ejects it. /healthz polling can also restore an ejected node
// without burning a request.
type nodeState int32

const (
	stateHealthy nodeState = iota
	stateEjected
	stateProbing
)

// node is one daemon: its connection, live routing estimates, health
// state, and counters.
type node struct {
	id        int
	addr      string
	adminAddr string
	b         *Balancer

	inflight atomic.Int64
	ewmaNs   atomic.Uint64 // smoothed OK latency; 0 = no data yet

	connMu sync.Mutex
	conn   *serve.Conn

	mu           sync.Mutex
	state        nodeState
	ejectedUntil time.Time
	consecErrs   int
	consecSick   int
	consecWell   int

	// Counters (atomic: the data path and the poller both write).
	requests  atomic.Uint64
	oks       atomic.Uint64
	errs      atomic.Uint64
	fallbacks atomic.Uint64
	hedges    atomic.Uint64
	hedgeWins atomic.Uint64
	ejections atomic.Uint64
	redials   atomic.Uint64
}

// Balancer fans a Doer interface out over a pool of protoaccd daemons.
// It is safe for concurrent use; one Balancer serves any number of
// workers.
type Balancer struct {
	opts  Options
	nodes []*node
	seq   atomic.Uint64 // routing sequence: rr cursor / p2c hash input

	okLatency telemetry.Histogram // all OK attempt latencies; feeds the hedge delay
	hedgeWin  telemetry.Histogram // winning hedge latencies (hedge send → response)

	requests    atomic.Uint64
	hedgesSent  atomic.Uint64
	hedgeWins   atomic.Uint64
	hedgeLosses atomic.Uint64
	retries     atomic.Uint64
	ejections   atomic.Uint64
	recoveries  atomic.Uint64

	closed atomic.Bool
	health *healthPoller
}

// New builds a Balancer and dials every node. Nodes that fail the
// initial dial are not fatal — they start life with a broken connection
// and the redial/ejection machinery takes it from there — but at least
// one node must be reachable.
func New(opts Options) (*Balancer, error) {
	if len(opts.Addrs) == 0 {
		return nil, errors.New("cluster: no node addresses")
	}
	if len(opts.AdminAddrs) != 0 && len(opts.AdminAddrs) != len(opts.Addrs) {
		return nil, fmt.Errorf("cluster: %d admin addresses for %d nodes", len(opts.AdminAddrs), len(opts.Addrs))
	}
	opts.Hedge = opts.Hedge.withDefaults()
	opts.Health = opts.Health.withDefaults()
	b := &Balancer{opts: opts}
	reachable := 0
	for i, addr := range opts.Addrs {
		n := &node{id: i, addr: addr, b: b}
		if len(opts.AdminAddrs) > 0 {
			n.adminAddr = opts.AdminAddrs[i]
		}
		conn, err := serve.DialWith(addr, opts.Dial)
		if err == nil {
			n.conn = conn
			reachable++
		}
		b.nodes = append(b.nodes, n)
	}
	if reachable == 0 {
		return nil, fmt.Errorf("cluster: no node reachable (tried %d)", len(opts.Addrs))
	}
	if opts.Health.Interval > 0 {
		b.health = startHealthPoller(b)
	}
	return b, nil
}

// Nodes returns the pool size.
func (b *Balancer) Nodes() int { return len(b.nodes) }

// Close stops the health poller and closes every node connection. Any
// in-flight Do calls fail.
func (b *Balancer) Close() error {
	if !b.closed.CompareAndSwap(false, true) {
		return nil
	}
	if b.health != nil {
		b.health.stop()
	}
	for _, n := range b.nodes {
		n.connMu.Lock()
		if n.conn != nil {
			n.conn.Close()
		}
		n.connMu.Unlock()
	}
	return nil
}

// client returns the node's live connection, redialing a broken one.
// Redial is single-flight per node under connMu.
func (n *node) client() (*serve.Conn, error) {
	n.connMu.Lock()
	defer n.connMu.Unlock()
	if n.b.closed.Load() {
		return nil, serve.ErrClosed
	}
	if n.conn != nil && !n.conn.Broken() {
		return n.conn, nil
	}
	if n.conn != nil {
		n.conn.Close()
		n.conn = nil
	}
	conn, err := serve.DialWith(n.addr, n.b.opts.Dial)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %d redial: %w", n.id, err)
	}
	n.redials.Add(1)
	n.conn = conn
	return conn, nil
}

// do runs one attempt on this node, maintaining the routing estimates
// and the health state machine.
func (n *node) do(req serve.Request) (serve.Response, time.Duration, error) {
	n.requests.Add(1)
	conn, err := n.client()
	if err != nil {
		n.finish(err)
		return serve.Response{}, 0, err
	}
	n.inflight.Add(1)
	start := time.Now()
	resp, err := conn.Do(req)
	lat := time.Since(start)
	n.inflight.Add(-1)
	if err == nil {
		n.noteOK(lat)
		if resp.FellBack {
			n.fallbacks.Add(1)
		}
	} else {
		n.finish(err)
	}
	return resp, lat, err
}

// ewmaAlpha is the smoothing weight for the per-node latency estimate.
const ewmaAlpha = 0.2

// noteOK folds a successful attempt into the routing estimate and
// restores a probing node.
func (n *node) noteOK(lat time.Duration) {
	n.oks.Add(1)
	n.b.okLatency.Record(lat)
	for {
		cur := n.ewmaNs.Load()
		next := uint64(float64(cur)*(1-ewmaAlpha) + float64(lat.Nanoseconds())*ewmaAlpha)
		if cur == 0 {
			next = uint64(lat.Nanoseconds())
		}
		if n.ewmaNs.CompareAndSwap(cur, next) {
			break
		}
	}
	n.mu.Lock()
	n.consecErrs = 0
	if n.state == stateProbing {
		n.state = stateHealthy
		n.b.recoveries.Add(1)
	}
	n.mu.Unlock()
}

// finish records a failed attempt: a probing node re-ejects immediately,
// a healthy one ejects after ErrorThreshold consecutive errors.
func (n *node) finish(err error) {
	n.errs.Add(1)
	th := n.b.opts.Health.ErrorThreshold
	n.mu.Lock()
	defer n.mu.Unlock()
	n.consecErrs++
	switch {
	case n.state == stateProbing:
		n.ejectLocked()
	case n.state == stateHealthy && th > 0 && n.consecErrs >= th:
		n.ejectLocked()
	}
}

// ejectLocked moves the node to ejected for EjectDwell. Callers hold mu.
func (n *node) ejectLocked() {
	n.state = stateEjected
	n.ejectedUntil = time.Now().Add(n.b.opts.Health.EjectDwell)
	n.consecWell = 0
	n.ejections.Add(1)
	n.b.ejections.Add(1)
}

// restoreLocked returns the node to service. Callers hold mu.
func (n *node) restoreLocked() {
	if n.state != stateHealthy {
		n.state = stateHealthy
		n.b.recoveries.Add(1)
	}
	n.consecErrs = 0
	n.consecSick = 0
}

// routable reports whether the router may send this node a request now.
// An ejected node whose dwell has elapsed converts to probing and gets
// exactly one request; further routes skip it until the probe resolves.
func (n *node) routable(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	switch n.state {
	case stateHealthy:
		return true
	case stateEjected:
		if now.After(n.ejectedUntil) {
			n.state = stateProbing
			return true
		}
	}
	return false
}

// score is the p2c routing metric: queue pressure times smoothed
// latency, so a slow node and a busy node both lose ties. An unmeasured
// node scores minimally and attracts traffic until it has an estimate.
func (n *node) score() uint64 {
	return uint64(n.inflight.Load()+1) * (n.ewmaNs.Load() + 1)
}

// splitmix64 is the route-sequence hash (same mixer as the tile router):
// consecutive sequence numbers map to well-spread candidate pairs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// route picks the next node, skipping exclude (the hedge's primary, or a
// just-failed node) and unroutable nodes. Round-robin walks the sequence
// deterministically; p2c hashes it into two candidates and takes the
// lower score. If nothing is routable the preferred node serves anyway —
// an all-ejected pool must degrade to "try", not "refuse".
func (b *Balancer) route(exclude *node) *node {
	nodes := b.nodes
	nn := uint64(len(nodes))
	if nn == 1 {
		return nodes[0]
	}
	seq := b.seq.Add(1)
	now := time.Now()
	if b.opts.Routing == serve.RouteRoundRobin {
		for off := uint64(0); off < nn; off++ {
			c := nodes[(seq-1+off)%nn]
			if c == exclude {
				continue
			}
			if c.routable(now) {
				return c
			}
		}
		if c := nodes[(seq-1)%nn]; c != exclude {
			return c
		}
		return nodes[seq%nn]
	}
	r := splitmix64(seq)
	a, c := nodes[r%nn], nodes[(r>>32)%nn]
	if a.id > c.id {
		a, c = c, a
	}
	ra := a != exclude && a.routable(now)
	rc := c != a && c != exclude && c.routable(now)
	switch {
	case ra && rc:
		if c.score() < a.score() {
			return c
		}
		return a
	case ra:
		return a
	case rc:
		return c
	}
	// Neither candidate usable: deterministic forward scan.
	for off := uint64(1); off <= nn; off++ {
		cand := nodes[(r+off)%nn]
		if cand != exclude && cand.routable(now) {
			return cand
		}
	}
	if a != exclude {
		return a
	}
	return c
}

// hedgeDelay is how long a request stays outstanding before a hedge
// fires: the configured quantile of observed OK latency, clamped to
// [Min, Max]; until MinSamples latencies exist the delay is Max (hedge
// conservatively while the estimate warms up).
func (b *Balancer) hedgeDelay() time.Duration {
	h := b.opts.Hedge
	if b.okLatency.Count() < uint64(h.MinSamples) {
		return h.Max
	}
	d := b.okLatency.Quantile(h.Quantile)
	if d < h.Min {
		return h.Min
	}
	if d > h.Max {
		return h.Max
	}
	return d
}

// attempt is one in-flight copy of a request.
type attempt struct {
	resp   serve.Response
	err    error
	node   *node
	lat    time.Duration
	hedged bool
}

// Do implements serve.Doer across the pool: route, optionally hedge,
// first response wins, transport errors fail over to another node (at
// most one attempt per node). Server-side statuses (shed, bad request,
// deadline) are responses, not errors — they win like any other.
func (b *Balancer) Do(req serve.Request) (serve.Response, error) {
	if b.closed.Load() {
		return serve.Response{}, serve.ErrClosed
	}
	b.requests.Add(1)
	primary := b.route(nil)
	ch := make(chan attempt, len(b.nodes)+1)
	launch := func(nd *node, hedged bool) {
		go func() {
			resp, lat, err := nd.do(req)
			ch <- attempt{resp: resp, err: err, node: nd, lat: lat, hedged: hedged}
		}()
	}
	launch(primary, false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if b.opts.Hedge.Enabled && len(b.nodes) > 1 {
		hedgeTimer = time.NewTimer(b.hedgeDelay())
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	outstanding := 1
	attempts := 1
	hedged := false
	lastFailed := primary
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			nd := b.route(primary)
			if nd == nil || nd == primary {
				continue
			}
			hedged = true
			b.hedgesSent.Add(1)
			nd.hedges.Add(1)
			launch(nd, true)
			outstanding++
			attempts++
		case res := <-ch:
			outstanding--
			if res.err == nil {
				if res.hedged {
					b.hedgeWins.Add(1)
					res.node.hedgeWins.Add(1)
					b.hedgeWin.Record(res.lat)
				} else if hedged {
					b.hedgeLosses.Add(1)
				}
				// A losing attempt still in flight completes on its own
				// goroutine and is discarded (the channel is buffered).
				return res.resp, nil
			}
			lastFailed = res.node
			if outstanding > 0 {
				continue // the other copy may still win
			}
			if attempts < len(b.nodes) {
				nd := b.route(lastFailed)
				if nd != nil && nd != lastFailed {
					b.retries.Add(1)
					attempts++
					outstanding++
					hedgeC = nil
					launch(nd, false)
					continue
				}
			}
			return serve.Response{}, fmt.Errorf("cluster: node %d (%s): %w", res.node.id, res.node.addr, res.err)
		}
	}
}

// Close is part of serve.Doer on the client handle, not the balancer
// itself; Client returns a non-owning handle whose Close is a no-op, so
// each loadgen worker can hold "its own" Doer over the shared pool.
type clientHandle struct{ b *Balancer }

func (h clientHandle) Do(req serve.Request) (serve.Response, error) { return h.b.Do(req) }
func (h clientHandle) Close() error                                 { return nil }

// Client returns a serve.Doer view of the pool that does not own it:
// Close is a no-op, the Balancer outlives all handles.
func (b *Balancer) Client() serve.Doer { return clientHandle{b} }

// NodeCounters is one node's counter snapshot.
type NodeCounters struct {
	Addr      string
	Requests  uint64
	OKs       uint64
	Errors    uint64
	Fallbacks uint64
	Hedges    uint64
	HedgeWins uint64
	Ejections uint64
	Redials   uint64
	Ejected   bool
}

// NodeStats snapshots every node's counters, indexed by node id.
func (b *Balancer) NodeStats() []NodeCounters {
	out := make([]NodeCounters, len(b.nodes))
	for i, n := range b.nodes {
		n.mu.Lock()
		ejected := n.state != stateHealthy
		n.mu.Unlock()
		out[i] = NodeCounters{
			Addr:      n.addr,
			Requests:  n.requests.Load(),
			OKs:       n.oks.Load(),
			Errors:    n.errs.Load(),
			Fallbacks: n.fallbacks.Load(),
			Hedges:    n.hedges.Load(),
			HedgeWins: n.hedgeWins.Load(),
			Ejections: n.ejections.Load(),
			Redials:   n.redials.Load(),
			Ejected:   ejected,
		}
	}
	return out
}

// HedgeWinHistogram returns the winning-hedge latency histogram.
func (b *Balancer) HedgeWinHistogram() *telemetry.Histogram { return &b.hedgeWin }

// CollectTelemetry implements telemetry.Collector: the serve/cluster/
// counter group. Shape is stable (fixed emission order, every node every
// time), per the Collector contract.
func (b *Balancer) CollectTelemetry(emit func(name string, value float64)) {
	emit("nodes", float64(len(b.nodes)))
	emit("requests", float64(b.requests.Load()))
	emit("hedges", float64(b.hedgesSent.Load()))
	emit("hedge_wins", float64(b.hedgeWins.Load()))
	emit("hedge_losses", float64(b.hedgeLosses.Load()))
	emit("retries", float64(b.retries.Load()))
	emit("ejections", float64(b.ejections.Load()))
	emit("recoveries", float64(b.recoveries.Load()))
	for i, n := range b.nodes {
		prefix := fmt.Sprintf("node%d/", i)
		emit(prefix+"requests", float64(n.requests.Load()))
		emit(prefix+"ok", float64(n.oks.Load()))
		emit(prefix+"errors", float64(n.errs.Load()))
		emit(prefix+"fallbacks", float64(n.fallbacks.Load()))
		emit(prefix+"hedges", float64(n.hedges.Load()))
		emit(prefix+"hedge_wins", float64(n.hedgeWins.Load()))
		emit(prefix+"ejections", float64(n.ejections.Load()))
		emit(prefix+"redials", float64(n.redials.Load()))
	}
}

// RegisterTelemetry registers the balancer's counter group and
// histograms into reg under serve/cluster/.
func (b *Balancer) RegisterTelemetry(reg *telemetry.Registry) {
	reg.Register("serve/cluster", b)
	reg.RegisterHistogram("serve/cluster/latency_ok_ns", &b.okLatency)
	reg.RegisterHistogram("serve/cluster/hedge/win_ns", &b.hedgeWin)
}

// Counters returns the serve/cluster/ counter group as a map (test and
// report convenience).
func (b *Balancer) Counters() map[string]float64 {
	var reg telemetry.Registry
	reg.Register("serve/cluster", b)
	snap := reg.Snapshot()
	out := make(map[string]float64, snap.Len())
	for _, sm := range snap.Samples() {
		out[sm.Name] = sm.Value
	}
	return out
}
