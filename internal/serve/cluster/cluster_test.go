package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"protoacc/internal/faults"
	"protoacc/internal/serve"
)

// serverOptions mirrors the serve package's test sizing: small batches
// and tight memory so a test cluster of 2–4 daemons stays cheap.
func serverOptions() serve.Options {
	return serve.Options{
		MaxBatch:    4,
		QueueDepth:  64,
		Workers:     2,
		MaxPayload:  8 << 10,
		BatchWindow: 100 * time.Microsecond,
		Deadline:    time.Minute,
	}
}

// startServer runs one in-process protoaccd equivalent on loopback.
func startServer(t *testing.T, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	srv, err := serve.NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

// startBlackhole listens and swallows every byte without ever answering —
// a daemon that accepts work and hangs (the hedging target scenario).
func startBlackhole(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, nc)
		}
	}()
	return ln.Addr().String()
}

// startRefuser accepts and immediately closes every connection — a
// daemon that is reachable but dead (the failover/ejection scenario).
func startRefuser(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			ln.Close()
		}
	}
	t.Cleanup(stop)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			nc.Close()
		}
	}()
	return ln.Addr().String(), stop
}

// sampleRequest builds the i'th canonical request over the default
// catalog's varint schema.
func sampleRequest(srv *serve.Server, i int) serve.Request {
	e := srv.Catalog().Lookup("varint")
	return serve.Request{Op: serve.OpDeserialize, Schema: "varint", Payload: e.SamplePayload(i)}
}

// A balanced pool must answer byte-verified through every node, spread
// load across the pool, and account every request in serve/cluster/.
func TestClusterRoundTrip(t *testing.T) {
	srvA, addrA := startServer(t, serverOptions())
	_, addrB := startServer(t, serverOptions())
	b, err := New(Options{Addrs: []string{addrA, addrB}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 64
	for i := 0; i < n; i++ {
		req := sampleRequest(srvA, i)
		resp, err := b.Do(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != serve.StatusOK {
			t.Fatalf("request %d: status %v: %s", i, resp.Status, resp.Payload)
		}
		if !bytes.Equal(resp.Payload, req.Payload) {
			t.Fatalf("request %d: response diverges from canonical payload", i)
		}
	}
	c := b.Counters()
	if got := c["serve/cluster/requests"]; got != n {
		t.Errorf("serve/cluster/requests = %v, want %d", got, n)
	}
	stats := b.NodeStats()
	var total uint64
	for i, ns := range stats {
		if ns.Requests == 0 {
			t.Errorf("node %d received no traffic", i)
		}
		total += ns.OKs
	}
	if total != n {
		t.Errorf("per-node OK sum = %d, want %d", total, n)
	}
}

// Hedging must rescue requests routed to a hung node: the second copy
// races ahead, wins, and is accounted in the hedge counters and win
// histogram — while the caller just sees a normal OK response.
func TestClusterHedgeRescuesStalledNode(t *testing.T) {
	stall := startBlackhole(t)
	srv, healthy := startServer(t, serverOptions())
	b, err := New(Options{
		Addrs:   []string{stall, healthy},
		Routing: serve.RouteRoundRobin, // force traffic onto the hung node
		Dial:    serve.DialOptions{Timeout: 5 * time.Second},
		Hedge: HedgeOptions{
			Enabled:    true,
			Min:        2 * time.Millisecond,
			Max:        10 * time.Millisecond,
			MinSamples: 1,
		},
		// Keep error ejection out of the way: the stalled node times out
		// slowly; this test is about hedging, not ejection.
		Health: HealthOptions{ErrorThreshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 10
	for i := 0; i < n; i++ {
		req := sampleRequest(srv, i)
		start := time.Now()
		resp, err := b.Do(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != serve.StatusOK || !bytes.Equal(resp.Payload, req.Payload) {
			t.Fatalf("request %d: bad response %v", i, resp.Status)
		}
		if waited := time.Since(start); waited > 3*time.Second {
			t.Fatalf("request %d took %v despite hedging", i, waited)
		}
	}
	c := b.Counters()
	if c["serve/cluster/hedges"] == 0 {
		t.Error("no hedges fired against a stalled node")
	}
	if c["serve/cluster/hedge_wins"] == 0 {
		t.Error("no hedge wins recorded")
	}
	if b.HedgeWinHistogram().Count() == 0 {
		t.Error("hedge-win histogram is empty")
	}
	stats := b.NodeStats()
	if stats[1].Hedges == 0 || stats[1].HedgeWins == 0 {
		t.Errorf("healthy node shows hedges=%d wins=%d, want both > 0", stats[1].Hedges, stats[1].HedgeWins)
	}
}

// Transport errors must fail over to a live node, eject the dead one
// after ErrorThreshold consecutive errors, and — once a real daemon
// comes back on the same address — recover it through a probe request.
func TestClusterFailoverEjectRecover(t *testing.T) {
	dead, stopDead := startRefuser(t)
	srv, healthy := startServer(t, serverOptions())
	b, err := New(Options{
		Addrs:   []string{dead, healthy},
		Routing: serve.RouteRoundRobin,
		Health: HealthOptions{
			ErrorThreshold: 2,
			EjectDwell:     300 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 12
	for i := 0; i < n; i++ {
		req := sampleRequest(srv, i)
		resp, err := b.Do(req)
		if err != nil {
			t.Fatalf("request %d: failover did not save it: %v", i, err)
		}
		if resp.Status != serve.StatusOK || !bytes.Equal(resp.Payload, req.Payload) {
			t.Fatalf("request %d: bad response %v", i, resp.Status)
		}
	}
	c := b.Counters()
	if c["serve/cluster/retries"] == 0 {
		t.Error("no failover retries recorded against a dead node")
	}
	if c["serve/cluster/ejections"] == 0 {
		t.Error("dead node was never ejected")
	}
	stats := b.NodeStats()
	if !stats[0].Ejected {
		t.Error("dead node not marked ejected")
	}
	if stats[1].OKs != n {
		t.Errorf("healthy node served %d OKs, want %d", stats[1].OKs, n)
	}

	// Resurrect the dead address with a real daemon; after the dwell the
	// router sends node 0 a probe, which succeeds and restores it.
	stopDead()
	ln, err := net.Listen("tcp", dead)
	if err != nil {
		t.Skipf("could not rebind %s: %v", dead, err)
	}
	srv2, err := serve.NewServer(serverOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	go srv2.Serve(ln)

	deadline := time.Now().Add(15 * time.Second)
	recovered := false
	for i := 0; time.Now().Before(deadline); i++ {
		req := sampleRequest(srv, i)
		if _, err := b.Do(req); err != nil {
			t.Fatalf("request during recovery: %v", err)
		}
		st := b.NodeStats()
		if !st[0].Ejected && st[0].OKs > 0 {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("ejected node never recovered after the daemon came back")
	}
	if b.Counters()["serve/cluster/recoveries"] == 0 {
		t.Error("no recovery accounted")
	}
}

// fakeAdmin serves a controllable /healthz document.
type fakeAdmin struct {
	sick atomic.Bool
	srv  *httptest.Server
}

func newFakeAdmin(t *testing.T) *fakeAdmin {
	t.Helper()
	a := &fakeAdmin{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if a.sick.Load() {
			fmt.Fprint(w, `{"status":"ok","tiles":[{"degraded":true},{"degraded":false}]}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok","tiles":[{"degraded":false},{"degraded":false}]}`)
	})
	a.srv = httptest.NewServer(mux)
	t.Cleanup(a.srv.Close)
	return a
}

func (a *fakeAdmin) addr() string { return strings.TrimPrefix(a.srv.URL, "http://") }

// /healthz-driven ejection: a node reporting degraded tiles must be
// ejected without any data-path error, drained of new traffic, and
// restored by clean polls once it reports healthy again.
func TestClusterHealthEjection(t *testing.T) {
	srvA, addrA := startServer(t, serverOptions())
	_, addrB := startServer(t, serverOptions())
	adminA, adminB := newFakeAdmin(t), newFakeAdmin(t)
	b, err := New(Options{
		Addrs:      []string{addrA, addrB},
		AdminAddrs: []string{adminA.addr(), adminB.addr()},
		Routing:    serve.RouteRoundRobin,
		Health: HealthOptions{
			Interval:     10 * time.Millisecond,
			SickPolls:    2,
			HealthyPolls: 2,
			EjectDwell:   time.Hour, // recovery must come from polling, not a probe
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	waitState := func(ejected bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for b.NodeStats()[0].Ejected != ejected {
			if time.Now().After(deadline) {
				t.Fatalf("node 0 never became %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	adminA.sick.Store(true)
	waitState(true, "ejected")
	if b.Counters()["serve/cluster/ejections"] == 0 {
		t.Error("health ejection not accounted")
	}

	// While ejected, traffic flows only to node 1.
	before := b.NodeStats()[0].Requests
	for i := 0; i < 8; i++ {
		req := sampleRequest(srvA, i)
		resp, err := b.Do(req)
		if err != nil || resp.Status != serve.StatusOK {
			t.Fatalf("request %d during ejection: %v %v", i, err, resp.Status)
		}
	}
	if after := b.NodeStats()[0].Requests; after != before {
		t.Errorf("ejected node received %d requests", after-before)
	}

	adminA.sick.Store(false)
	waitState(false, "restored")
	if b.Counters()["serve/cluster/recoveries"] == 0 {
		t.Error("health recovery not accounted")
	}
}

// chaos isolation: a fault-injected node degrades alone — its fallbacks
// never appear on the healthy node's counters, and every response from
// either node stays byte-identical to the canonical payload.
func TestClusterChaosIsolation(t *testing.T) {
	faulty := serverOptions()
	faulty.Faults = faults.Config{Enabled: true, Seed: 91, Rate: 0.9}
	srvFaulty, addrFaulty := startServer(t, faulty)
	srvClean, addrClean := startServer(t, serverOptions())

	b, err := New(Options{
		Addrs:   []string{addrFaulty, addrClean},
		Routing: serve.RouteRoundRobin, // deterministic split across both nodes
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 80
	var fellBack int
	for i := 0; i < n; i++ {
		req := sampleRequest(srvFaulty, i)
		resp, err := b.Do(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Status != serve.StatusOK {
			t.Fatalf("request %d: status %v: %s", i, resp.Status, resp.Payload)
		}
		if !bytes.Equal(resp.Payload, req.Payload) {
			t.Fatalf("request %d: chaos leaked through the wire", i)
		}
		if resp.FellBack {
			fellBack++
		}
	}
	if fellBack == 0 {
		t.Fatal("fault injection at rate 0.9 produced no fallbacks; test is vacuous")
	}
	stats := b.NodeStats()
	if stats[0].Fallbacks == 0 {
		t.Error("faulted node shows no fallbacks")
	}
	if stats[1].Fallbacks != 0 {
		t.Errorf("healthy node shows %d fallbacks — leakage across nodes", stats[1].Fallbacks)
	}
	// And server-side: the clean daemon's own counters must be fallback-free.
	if v := srvClean.AggregatedCounters()["serve/fallbacks/accel"]; v != 0 {
		t.Errorf("clean daemon counted %v accel fallbacks", v)
	}
	if v := srvFaulty.AggregatedCounters()["serve/fallbacks/accel"]; v == 0 {
		t.Error("faulty daemon counted no accel fallbacks")
	}
}
