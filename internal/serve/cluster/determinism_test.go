package cluster

import (
	"bytes"
	"testing"

	"protoacc/internal/serve"
	"protoacc/internal/workloads"
)

// observed is one response as seen by the replay hook.
type observed struct {
	status   serve.Status
	fellBack bool
	cycles   float64
	payload  []byte
}

// replayCluster replays the trace through a pool of the given size in
// the deterministic configuration — round-robin routing, hedging off,
// health off, one replay worker — and returns every response in record
// order.
func replayCluster(t *testing.T, nodes int, trace *workloads.Trace) []observed {
	t.Helper()
	addrs := make([]string, nodes)
	for i := range addrs {
		_, addrs[i] = startServer(t, serverOptions())
	}
	b, err := New(Options{Addrs: addrs, Routing: serve.RouteRoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	var got []observed
	_, err = workloads.Replay(workloads.ReplayOptions{
		Dial:    func() (serve.Doer, error) { return b.Client(), nil },
		Trace:   trace,
		Workers: 1,
		Check:   true,
		Observe: func(worker int, rec workloads.Record, resp serve.Response) {
			got = append(got, observed{
				status:   resp.Status,
				fellBack: resp.FellBack,
				cycles:   resp.Cycles,
				payload:  append([]byte(nil), resp.Payload...),
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := b.Counters()
	if c["serve/cluster/hedges"] != 0 || c["serve/cluster/retries"] != 0 || c["serve/cluster/ejections"] != 0 {
		t.Fatalf("deterministic replay was not clean: hedges=%v retries=%v ejections=%v",
			c["serve/cluster/hedges"], c["serve/cluster/retries"], c["serve/cluster/ejections"])
	}
	if c["serve/cluster/requests"] != float64(len(trace.Records)) {
		t.Fatalf("replayed %v cluster requests, want %d", c["serve/cluster/requests"], len(trace.Records))
	}
	return got
}

// The cluster determinism contract: with round-robin routing and hedging
// off, a 1-node and a 2-node pool replaying the identical trace produce
// byte-identical responses record for record — the multi-node analogue
// of the 1-tile-vs-N-tile equivalence the tile router pins.
func TestClusterDeterminism1v2(t *testing.T) {
	trace, err := workloads.Synthesize(workloads.SynthOptions{Seed: 1234, Records: 384})
	if err != nil {
		t.Fatal(err)
	}
	one := replayCluster(t, 1, trace)
	two := replayCluster(t, 2, trace)
	if len(one) != len(two) {
		t.Fatalf("response counts differ: 1-node=%d 2-node=%d", len(one), len(two))
	}
	for i := range one {
		a, b := one[i], two[i]
		if a.status != b.status || a.fellBack != b.fellBack {
			t.Errorf("record %d: status/fallback differ: 1-node=%v/%v 2-node=%v/%v",
				i, a.status, a.fellBack, b.status, b.fellBack)
		}
		if !bytes.Equal(a.payload, b.payload) {
			t.Errorf("record %d: payload bytes differ between 1-node and 2-node pools", i)
		}
		if a.cycles != b.cycles {
			t.Errorf("record %d: cycles differ: 1-node=%v 2-node=%v", i, a.cycles, b.cycles)
		}
	}
}

// Round-robin node placement is a pure function of the request sequence:
// the same trace through the same 2-node pool twice gives each node the
// identical request count, and a repeat replay reproduces the responses.
func TestClusterRRPlacementDeterministic(t *testing.T) {
	trace, err := workloads.Synthesize(workloads.SynthOptions{Seed: 99, Records: 128})
	if err != nil {
		t.Fatal(err)
	}
	first := replayCluster(t, 2, trace)
	second := replayCluster(t, 2, trace)
	for i := range first {
		if !bytes.Equal(first[i].payload, second[i].payload) || first[i].cycles != second[i].cycles {
			t.Fatalf("record %d: repeat replay diverged", i)
		}
	}
}
