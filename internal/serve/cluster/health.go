package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// healthDoc is the slice of a protoaccd /healthz document the balancer
// cares about: overall status and per-tile degradation. Decoding a local
// struct (rather than importing the daemon's) keeps the poller tolerant
// of daemon versions that add fields.
type healthDoc struct {
	Status string `json:"status"`
	Tiles  []struct {
		Degraded bool `json:"degraded"`
	} `json:"tiles"`
}

// healthPoller polls every node's /healthz on a fixed interval and
// drives the sick/healthy side of the ejection state machine. Transport
// errors on the data path drive the other side; both funnel into the
// same per-node state.
type healthPoller struct {
	b      *Balancer
	client *http.Client
	stopCh chan struct{}
	wg     sync.WaitGroup
}

func startHealthPoller(b *Balancer) *healthPoller {
	p := &healthPoller{
		b:      b,
		client: &http.Client{Timeout: b.opts.Health.Timeout},
		stopCh: make(chan struct{}),
	}
	p.wg.Add(1)
	go p.run()
	return p
}

func (p *healthPoller) stop() {
	close(p.stopCh)
	p.wg.Wait()
}

func (p *healthPoller) run() {
	defer p.wg.Done()
	ticker := time.NewTicker(p.b.opts.Health.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.stopCh:
			return
		case <-ticker.C:
			for _, n := range p.b.nodes {
				if n.adminAddr == "" {
					continue
				}
				p.poll(n)
			}
		}
	}
}

// poll fetches one node's /healthz and classifies it.
func (p *healthPoller) poll(n *node) {
	sick := true
	doc, err := p.fetch(n.adminAddr)
	if err == nil {
		degraded := 0
		for _, t := range doc.Tiles {
			if t.Degraded {
				degraded++
			}
		}
		sick = doc.Status != "ok" || degraded >= p.b.opts.Health.DegradedTiles
	}
	n.notePoll(sick)
}

func (p *healthPoller) fetch(adminAddr string) (*healthDoc, error) {
	resp, err := p.client.Get("http://" + adminAddr + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: healthz status %d", resp.StatusCode)
	}
	var doc healthDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// notePoll folds one /healthz classification into the node state:
// SickPolls consecutive sick reports eject a healthy node, HealthyPolls
// consecutive clean reports restore an ejected or probing one (without
// burning a probe request on it).
func (n *node) notePoll(sick bool) {
	h := n.b.opts.Health
	n.mu.Lock()
	defer n.mu.Unlock()
	if sick {
		n.consecSick++
		n.consecWell = 0
		if n.state == stateHealthy && n.consecSick >= h.SickPolls {
			n.ejectLocked()
		}
		return
	}
	n.consecSick = 0
	n.consecWell++
	if n.state != stateHealthy && n.consecWell >= h.HealthyPolls {
		n.restoreLocked()
	}
}
