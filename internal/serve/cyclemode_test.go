package serve

import (
	"bytes"
	"math"
	"testing"
)

// The fast functional mode (CycleSampled) must be invisible in the data
// plane: for the full serving catalog, both operations, round-robin
// routing, and both 1- and 4-tile servers, every response's status and
// payload bytes must be identical to the exact cycle mode's. Only cycle
// values (estimates vs. measurements) may differ.
func TestServeCycleModeBitwiseEquivalence(t *testing.T) {
	for _, tiles := range []int{1, 4} {
		reqs := sampleRequests(DefaultCatalog(), 16)

		exact := testOptions()
		exact.Tiles = tiles
		exact.Routing = RouteRoundRobin
		exact.QueueDepth = 1024

		sampled := exact
		sampled.CycleMode = CycleSampled
		sampled.CycleSampleN = 8

		ea, _ := runBatched(t, exact, reqs)
		sa, _ := runBatched(t, sampled, reqs)
		if len(ea) != len(sa) {
			t.Fatalf("tiles=%d: response counts differ: exact=%d sampled=%d", tiles, len(ea), len(sa))
		}
		for i := range ea {
			if ea[i].Status != sa[i].Status {
				t.Errorf("tiles=%d response %d: status exact=%v sampled=%v",
					tiles, i, ea[i].Status, sa[i].Status)
			}
			if !bytes.Equal(ea[i].Payload, sa[i].Payload) {
				t.Errorf("tiles=%d response %d (%s/%v): payload bytes differ between cycle modes",
					tiles, i, reqs[i].Schema, reqs[i].Op)
			}
			// Cycles is deliberately NOT compared: sampled-mode responses
			// carry per-request estimates (zero until the stream's first
			// sampled batch completes), exact-mode responses carry
			// measurements.
		}
	}
}

// Sampled-mode extrapolation must converge: driving identical request
// streams through an exact server and a 1-in-8 sampled server, the
// extrapolated serve/cycles/* counters must land within 10%% of the
// exact-mode measurements. Payloads rotate with period 5 — coprime to the
// sample cadence — so sampled batches are representative but not
// identical to the stream average, exercising the estimator rather than a
// degenerate constant workload.
func TestServeSampledCycleConvergence(t *testing.T) {
	const (
		sampleN = 8
		batches = 40
	)
	cat := DefaultCatalog()
	base := testOptions()
	base.Workers = 1
	base.Tiles = 1
	base.Routing = RouteRoundRobin
	base.QueueDepth = 1024 // 240 preformed batches are enqueued up front

	var reqs []Request
	for _, name := range cat.Names() {
		e := cat.Lookup(name)
		for _, op := range []Op{OpDeserialize, OpSerialize} {
			idx := 0
			for b := 0; b < batches; b++ {
				for j := 0; j < base.MaxBatch; j++ {
					reqs = append(reqs, Request{Op: op, Schema: name, Payload: e.SamplePayload(idx % 5)})
					idx++
				}
			}
		}
	}

	exactResps, exactC := runBatched(t, base, reqs)

	sampledOpts := base
	sampledOpts.CycleMode = CycleSampled
	sampledOpts.CycleSampleN = sampleN
	sampledResps, sampledC := runBatched(t, sampledOpts, reqs)

	for i := range exactResps {
		if exactResps[i].Status != StatusOK || sampledResps[i].Status != StatusOK {
			t.Fatalf("response %d: status exact=%v sampled=%v, want ok/ok",
				i, exactResps[i].Status, sampledResps[i].Status)
		}
		if !bytes.Equal(exactResps[i].Payload, sampledResps[i].Payload) {
			t.Fatalf("response %d: payload bytes differ between cycle modes", i)
		}
	}

	// Provenance counters: the sampled run must declare its rate and that
	// cycles/* are extrapolated; the exact run must not.
	if got := sampledC["serve/cycle_sample_rate"]; got != sampleN {
		t.Errorf("sampled serve/cycle_sample_rate = %v, want %d", got, sampleN)
	}
	if got := sampledC["serve/cycle_extrapolated"]; got != 1 {
		t.Errorf("sampled serve/cycle_extrapolated = %v, want 1", got)
	}
	if got := exactC["serve/cycle_extrapolated"]; got != 0 {
		t.Errorf("exact serve/cycle_extrapolated = %v, want 0", got)
	}
	sampledReqs := sampledC["serve/cycle_sampled_requests"]
	totalReqs := sampledC["serve/batch_requests"]
	if sampledReqs <= 0 || sampledReqs >= totalReqs {
		t.Fatalf("serve/cycle_sampled_requests = %v of %v total, want a proper subset",
			sampledReqs, totalReqs)
	}
	if exactC["serve/cycle_sampled_requests"] != exactC["serve/batch_requests"] {
		t.Errorf("exact mode: sampled_requests %v != batch_requests %v (every request is measured)",
			exactC["serve/cycle_sampled_requests"], exactC["serve/batch_requests"])
	}

	// Convergence: extrapolated totals within 10% of exact measurements.
	// accel and fsm must be nonzero for any workload; the stall classes
	// are checked only when the exact run saw them (this catalog's small
	// payloads produce no supply stalls).
	for _, name := range []string{"serve/cycles/accel", "serve/cycles/fsm"} {
		if exactC[name] <= 0 {
			t.Fatalf("exact %s = %v, want > 0", name, exactC[name])
		}
	}
	for _, name := range []string{
		"serve/cycles/accel", "serve/cycles/fsm", "serve/cycles/supply",
		"serve/cycles/spill", "serve/cycles/adt_stall",
	} {
		e, s := exactC[name], sampledC[name]
		if e == 0 {
			if s != 0 {
				t.Errorf("%s: sampled=%v but exact saw none", name, s)
			}
			continue
		}
		if rel := math.Abs(s-e) / e; rel > 0.10 {
			t.Errorf("%s: sampled=%v exact=%v (relative error %.3f > 0.10)", name, s, e, rel)
		}
	}
}

// AggregatedCounters strips the cycle-mode config echoes but keeps the
// sampled-request measurement.
func TestAggregatedCountersStripCycleModeEchoes(t *testing.T) {
	opts := testOptions()
	opts.CycleMode = CycleSampled
	opts.CycleSampleN = 4
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.InProc().DoBatch(sampleRequests(srv.Catalog(), 8)); err != nil {
		t.Fatal(err)
	}
	agg := srv.AggregatedCounters()
	for _, echo := range []string{"serve/cycle_sample_rate", "serve/cycle_extrapolated"} {
		if _, ok := agg[echo]; ok {
			t.Errorf("config echo %s present in AggregatedCounters", echo)
		}
	}
	if _, ok := agg["serve/cycle_sampled_requests"]; !ok {
		t.Error("measurement serve/cycle_sampled_requests missing from AggregatedCounters")
	}
}
