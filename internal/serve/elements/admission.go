package elements

import (
	"math"
	"sync"
	"time"
)

// maxClients bounds the per-client bucket map. Past it, inserting a new
// client first sweeps buckets that have been idle long enough to have
// refilled completely — a full bucket holds no information, so dropping
// it cannot admit traffic a retained bucket would have throttled.
const maxClients = 4096

// bucket is one client's token bucket.
type bucket struct {
	tokens   float64
	lastFill time.Time
}

// Admission is the per-client token-bucket element. Each client identity
// (a TCP connection's remote address, or one in-process client) earns
// fillRate tokens per second up to burst; a request spends one token,
// and a client with an empty bucket is throttled without the server
// spending a parse or a batch on it.
type Admission struct {
	fillRate float64
	burst    float64

	mu       sync.Mutex
	clients  map[string]*bucket
	allowed  uint64
	throttle uint64
}

func newAdmission(fillRate, burst float64) *Admission {
	// Clamp, NaN-safely, anything that would poison the refill
	// arithmetic: `x <= 0` comparisons are false for NaN, so the usual
	// defaulting idiom lets NaN through, and the sweep's
	// burst/fillRate*Second then converts Inf/NaN to time.Duration —
	// implementation-defined (minInt64 on amd64), making the idle sweep
	// either never fire or drop every bucket.
	if !(fillRate > 0) || math.IsInf(fillRate, 0) {
		fillRate = DefaultFillRate
	}
	if !(burst > 0) || math.IsInf(burst, 0) {
		burst = 2 * fillRate
	}
	return &Admission{
		fillRate: fillRate,
		burst:    burst,
		clients:  make(map[string]*bucket),
	}
}

// FillRate returns the per-client sustained rate (requests/sec).
func (a *Admission) FillRate() float64 { return a.fillRate }

// Burst returns the per-client bucket capacity.
func (a *Admission) Burst() float64 { return a.burst }

// Allow spends one token from client's bucket, reporting whether the
// request may proceed. New clients start with a full bucket.
func (a *Admission) Allow(client string, now time.Time) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.clients[client]
	if b == nil {
		if len(a.clients) >= maxClients {
			a.sweepLocked(now)
		}
		b = &bucket{tokens: a.burst, lastFill: now}
		a.clients[client] = b
	} else if dt := now.Sub(b.lastFill).Seconds(); dt > 0 {
		b.tokens += dt * a.fillRate
		if b.tokens > a.burst {
			b.tokens = a.burst
		}
		b.lastFill = now
	}
	if b.tokens < 1 {
		a.throttle++
		return false
	}
	b.tokens--
	a.allowed++
	return true
}

// sweepLocked drops buckets idle long enough to have refilled to burst.
func (a *Admission) sweepLocked(now time.Time) {
	// Construction clamps the rates, but guard the conversion anyway: a
	// non-finite or non-positive refill interval through
	// float64→time.Duration is implementation-defined, and a negative
	// result would silently drop every bucket. Fall back to a long idle
	// horizon instead of corrupting the sweep.
	refill := time.Hour
	if f := a.burst / a.fillRate * float64(time.Second); f > 0 && !math.IsInf(f, 0) && !math.IsNaN(f) {
		if f < float64(math.MaxInt64) {
			refill = time.Duration(f)
		}
	}
	for client, b := range a.clients {
		if now.Sub(b.lastFill) > refill {
			delete(a.clients, client)
		}
	}
}

// Clients returns the number of live client buckets (a gauge).
func (a *Admission) Clients() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.clients)
}

// Totals returns the allowed/throttled decision counters.
func (a *Admission) Totals() (allowed, throttled uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allowed, a.throttle
}

// CollectTelemetry emits the serve/elements/admission/ counter group
// (structurally a telemetry.Collector).
func (a *Admission) CollectTelemetry(emit func(name string, value float64)) {
	allowed, throttled := a.Totals()
	emit("allowed", float64(allowed))
	emit("throttled", float64(throttled))
}
