package elements

import (
	"sync"
	"time"
)

// State is one tile's breaker position.
type State uint8

// Breaker states, the classic three-state machine: closed (traffic
// flows, failures are watched), open (the router avoids the tile), and
// half-open (a bounded probe stream tests recovery).
const (
	StateClosed State = iota
	StateOpen
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// windowBuckets is the rolling window's resolution: failure rates are
// evaluated over the last Window seconds bucketed this finely, so a trip
// decision lags a failure burst by at most Window/windowBuckets.
const windowBuckets = 8

// eventRingCap bounds the transition-event timeline kept for /statusz;
// past it the ring overwrites oldest-first.
const eventRingCap = 128

// Event is one breaker state transition, kept for the /statusz timeline.
type Event struct {
	Tile      int     `json:"tile"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	AtSeconds float64 `json:"at_s"` // offset since server start
}

// brTile is one tile's breaker state.
type brTile struct {
	state State

	// Rolling failure window: slot i holds the counts of epoch epochs[i];
	// slots whose epoch has rotated out of the window are ignored (and
	// reset on reuse).
	reqs   [windowBuckets]uint64
	fails  [windowBuckets]uint64
	epochs [windowBuckets]int64

	openedAt     time.Time // last transition into StateOpen
	probesRouted int       // half-open: probe budget consumed by the router
	probeOK      int       // half-open: successful probe requests observed
	trips        uint64    // closed→open transitions (reopens excluded)
	lastTrip     time.Time
}

// Breaker is the per-tile circuit-breaker element. The router asks
// Routable before placing work and NoteRouted after; the tiles feed
// Observe with per-batch (requests, failures) outcomes — failures being
// fallback-completed requests, deadline misses, and fault retries, the
// same events the serve/tile<i>/ counters record.
type Breaker struct {
	cfg       Config
	start     time.Time
	bucketDur time.Duration

	mu     sync.Mutex
	tiles  []*brTile
	events []Event
	evNext int

	trips, reopens, closes, halfOpens uint64
	probes, reroutes                  uint64
}

func newBreaker(cfg Config, tiles int) *Breaker {
	if tiles < 1 {
		tiles = 1
	}
	b := &Breaker{
		cfg:       cfg,
		start:     time.Now(),
		bucketDur: cfg.Window / windowBuckets,
	}
	if b.bucketDur <= 0 {
		b.bucketDur = time.Millisecond
	}
	for i := 0; i < tiles; i++ {
		b.tiles = append(b.tiles, &brTile{})
	}
	return b
}

// epochAt maps a wall time onto the rolling window's bucket epoch.
func (b *Breaker) epochAt(now time.Time) int64 {
	return int64(now.Sub(b.start) / b.bucketDur)
}

// record appends a transition event to the bounded timeline ring.
// Callers hold b.mu.
func (b *Breaker) record(tile int, from, to State, now time.Time) {
	ev := Event{Tile: tile, From: from.String(), To: to.String(), AtSeconds: now.Sub(b.start).Seconds()}
	if len(b.events) < eventRingCap {
		b.events = append(b.events, ev)
	} else {
		b.events[b.evNext] = ev
	}
	b.evNext = (b.evNext + 1) % eventRingCap
}

// Routable reports whether the router may place new work on tile. An
// open breaker whose dwell has expired transitions to half-open here —
// routing pressure is what drives recovery probing — and then admits
// probes until the half-open budget is spent.
func (b *Breaker) Routable(tile int, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tiles[tile]
	switch t.state {
	case StateClosed:
		return true
	case StateOpen:
		if now.Sub(t.openedAt) < b.cfg.OpenFor {
			return false
		}
		t.state = StateHalfOpen
		t.probesRouted, t.probeOK = 0, 0
		b.halfOpens++
		b.record(tile, StateOpen, StateHalfOpen, now)
		return true
	default: // StateHalfOpen
		return t.probesRouted < b.cfg.Probes
	}
}

// NoteRouted records that n requests were just placed on tile; while
// half-open they consume the probe budget.
func (b *Breaker) NoteRouted(tile, n int, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tiles[tile]
	if t.state == StateHalfOpen {
		t.probesRouted += n
		b.probes += uint64(n)
	}
}

// NoteReroute counts requests the router steered away from their
// preferred tile because its breaker was not routable.
func (b *Breaker) NoteReroute(n int) {
	b.mu.Lock()
	b.reroutes += uint64(n)
	b.mu.Unlock()
}

// Observe feeds one batch outcome on tile into the breaker: reqs
// requests completed, fails of which were failure events. Closed
// breakers evaluate the trip condition; half-open breakers grade the
// probe stream (any failure re-opens, cfg.Probes successes re-close).
func (b *Breaker) Observe(tile int, reqs, fails uint64, now time.Time) {
	if reqs == 0 && fails == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.tiles[tile]
	epoch := b.epochAt(now)
	slot := int(epoch % windowBuckets)
	if t.epochs[slot] != epoch {
		t.epochs[slot] = epoch
		t.reqs[slot], t.fails[slot] = 0, 0
	}
	t.reqs[slot] += reqs
	t.fails[slot] += fails

	switch t.state {
	case StateClosed:
		var wr, wf uint64
		for i := 0; i < windowBuckets; i++ {
			if t.epochs[i] > epoch-windowBuckets {
				wr += t.reqs[i]
				wf += t.fails[i]
			}
		}
		if wr >= uint64(b.cfg.MinVolume) && float64(wf) >= b.cfg.TripRate*float64(wr) {
			t.state = StateOpen
			t.openedAt, t.lastTrip = now, now
			t.trips++
			b.trips++
			b.record(tile, StateClosed, StateOpen, now)
		}
	case StateHalfOpen:
		if fails > 0 {
			t.state = StateOpen
			t.openedAt = now
			b.reopens++
			b.record(tile, StateHalfOpen, StateOpen, now)
			return
		}
		t.probeOK += int(reqs)
		if t.probeOK >= b.cfg.Probes {
			t.state = StateClosed
			// A fresh closed window: the failures that tripped the breaker
			// predate recovery and must not re-trip it instantly.
			for i := 0; i < windowBuckets; i++ {
				t.reqs[i], t.fails[i], t.epochs[i] = 0, 0, -1
			}
			b.closes++
			b.record(tile, StateHalfOpen, StateClosed, now)
		}
	}
}

// StateOf returns tile's current state without transitioning it —
// the read-only view /healthz, /statusz, and the gauges use (an expired
// open dwell still reads "open" until routing pressure probes it).
func (b *Breaker) StateOf(tile int) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tiles[tile].state
}

// TileBreaker is one tile's breaker summary for /healthz and /statusz.
type TileBreaker struct {
	Tile           int     `json:"tile"`
	State          string  `json:"state"`
	Trips          uint64  `json:"trips"`
	LastTripS      float64 `json:"last_trip_s,omitempty"` // offset since server start; 0 = never tripped
	WindowRequests uint64  `json:"window_requests"`
	WindowFailures uint64  `json:"window_failures"`
}

// TileStates returns every tile's breaker summary, window counts
// evaluated at now.
func (b *Breaker) TileStates(now time.Time) []TileBreaker {
	b.mu.Lock()
	defer b.mu.Unlock()
	epoch := b.epochAt(now)
	out := make([]TileBreaker, len(b.tiles))
	for i, t := range b.tiles {
		s := TileBreaker{Tile: i, State: t.state.String(), Trips: t.trips}
		if !t.lastTrip.IsZero() {
			s.LastTripS = t.lastTrip.Sub(b.start).Seconds()
		}
		for j := 0; j < windowBuckets; j++ {
			if t.epochs[j] > epoch-windowBuckets {
				s.WindowRequests += t.reqs[j]
				s.WindowFailures += t.fails[j]
			}
		}
		out[i] = s
	}
	return out
}

// Events returns the transition timeline, oldest first.
func (b *Breaker) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, len(b.events))
	if len(b.events) == eventRingCap {
		out = append(out, b.events[b.evNext:]...)
		out = append(out, b.events[:b.evNext]...)
		return out
	}
	return append(out, b.events...)
}

// CollectTelemetry emits the serve/elements/breaker/ counter group
// (structurally a telemetry.Collector).
func (b *Breaker) CollectTelemetry(emit func(name string, value float64)) {
	b.mu.Lock()
	trips, reopens, closes, halfOpens := b.trips, b.reopens, b.closes, b.halfOpens
	probes, reroutes := b.probes, b.reroutes
	b.mu.Unlock()
	emit("trips", float64(trips))
	emit("reopens", float64(reopens))
	emit("closes", float64(closes))
	emit("half_opens", float64(halfOpens))
	emit("probes", float64(probes))
	emit("reroutes", float64(reroutes))
}
