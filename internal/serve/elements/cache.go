package elements

import (
	"bytes"
	"container/list"
	"sync"
)

// Key identifies one cacheable response: the schema, the operation, and
// the FNV-1a hash of the request payload. Hash collisions are handled by
// full-payload verification on lookup, never by trusting the hash.
type Key struct {
	Schema string
	Op     uint8
	Hash   uint64
}

// HashPayload is the cache's payload hash: 64-bit FNV-1a, inlined so the
// admission path pays no hash.Hash allocation.
func HashPayload(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// entryOverhead approximates the per-entry bookkeeping bytes (map slot,
// list element, header fields) charged against the byte budget on top of
// the stored payloads.
const entryOverhead = 96

// centry is one cached response.
type centry struct {
	key      Key
	request  []byte // full request payload, for collision verification
	response []byte
	cycles   float64
}

func (e *centry) size() int64 {
	return int64(len(e.request)) + int64(len(e.response)) + entryOverhead
}

// Cache is the canonical-bytes response cache element: bounded memory,
// LRU eviction, keyed on (schema, op, payload hash) with stored-payload
// verification. It is correct by construction — invalidation-free —
// because a response in this server is a pure function of the key
// material: every OK response is the canonical codec.Marshal of the
// parsed request payload, for both operations, on every path (accel,
// retried, functional). The cache only ever stores non-fallback OK
// responses, so a hit returns exactly the bytes a fresh execution would
// produce. There is no state a write could invalidate.
type Cache struct {
	maxBytes int64

	mu      sync.Mutex
	entries map[Key]*list.Element // -> *centry
	lru     list.List             // front = most recent
	bytes   int64

	lookups, hits, misses     uint64
	inserts, evicts, collides uint64
}

func newCache(maxBytes int64) *Cache {
	return &Cache{maxBytes: maxBytes, entries: make(map[Key]*list.Element)}
}

// MaxBytes returns the configured byte budget.
func (c *Cache) MaxBytes() int64 { return c.maxBytes }

// Get looks up the cached response for (schema, op, payload). A hash hit
// whose stored request payload differs byte-for-byte is a collision and
// reports a miss. The returned slice is shared — callers must not
// mutate it (the serving path only frames it onto the wire).
func (c *Cache) Get(schema string, op uint8, payload []byte) (resp []byte, cycles float64, ok bool) {
	k := Key{Schema: schema, Op: op, Hash: HashPayload(payload)}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	el := c.entries[k]
	if el == nil {
		c.misses++
		return nil, 0, false
	}
	e := el.Value.(*centry)
	if !bytes.Equal(e.request, payload) {
		c.collides++
		c.misses++
		return nil, 0, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return e.response, e.cycles, true
}

// Put stores a response for (schema, op, request). Both payloads are
// copied (the request buffer belongs to the connection reader, the
// response buffer to the executor). Entries larger than the whole
// budget are not cached.
func (c *Cache) Put(schema string, op uint8, request, response []byte, cycles float64) {
	e := &centry{
		key:      Key{Schema: schema, Op: op, Hash: HashPayload(request)},
		request:  append([]byte(nil), request...),
		response: append([]byte(nil), response...),
		cycles:   cycles,
	}
	if e.size() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.entries[e.key]; el != nil {
		// Same key already cached (two concurrent fills, or a collision
		// overwrite): replace the value, keep the LRU position fresh.
		old := el.Value.(*centry)
		c.bytes += e.size() - old.size()
		el.Value = e
		c.lru.MoveToFront(el)
	} else {
		c.entries[e.key] = c.lru.PushFront(e)
		c.bytes += e.size()
		c.inserts++
	}
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*centry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
		c.bytes -= old.size()
		c.evicts++
	}
}

// Len returns the number of cached entries (a gauge).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the charged byte footprint (a gauge).
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns the lookup/mutation counters.
func (c *Cache) Stats() (lookups, hits, misses, inserts, evictions, collisions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookups, c.hits, c.misses, c.inserts, c.evicts, c.collides
}

// CollectTelemetry emits the serve/elements/cache/ counter group
// (structurally a telemetry.Collector).
func (c *Cache) CollectTelemetry(emit func(name string, value float64)) {
	lookups, hits, misses, inserts, evictions, collisions := c.Stats()
	emit("lookups", float64(lookups))
	emit("hits", float64(hits))
	emit("misses", float64(misses))
	emit("inserts", float64(inserts))
	emit("evictions", float64(evictions))
	emit("collisions", float64(collisions))
}
