// Package elements is the daemon's composable data-plane element chain:
// per-request protections every request traverses before it reaches the
// tile router, modeled on the service-mesh element sets that front
// shared RPC accelerators (RPCAcc, PAPERS.md; the arpc echo elements in
// ROADMAP.md). Three elements ship:
//
//   - Admission: a token bucket per client connection. Clients pushing
//     past their fill rate are answered with a distinct throttled status
//     before the server spends a software parse or an accelerator batch
//     on them.
//   - Breaker: a circuit breaker per tile, driven by the same
//     fallback/retry/deadline events the serve/tile<i>/ counters record.
//     A tile whose recent failure rate crosses the trip threshold opens
//     (the router treats it like a quarantined tile), dwells, then
//     half-opens a bounded probe stream; probe success re-closes it
//     without operator action.
//   - Cache: a canonical-bytes response cache keyed on
//     (schema, op, payload FNV-1a) with bounded memory and LRU
//     eviction, so hot-key skewed traffic short-circuits the
//     accelerator entirely.
//
// Every element is byte-transparent by construction. Responses in this
// server are canonical codec.Marshal bytes — a pure function of
// (schema, op, payload) — so a cache hit returns exactly the bytes a
// fresh execution would produce, a breaker reroute lands on a tile that
// produces the same bytes, and admission only ever substitutes a
// throttled status for work not done. The chaos tests assert the chain
// on/off response streams are bitwise identical.
//
// The package deliberately depends on nothing in internal/serve (serve
// imports it): elements speak primitive types, and their
// CollectTelemetry methods structurally satisfy telemetry.Collector.
package elements

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Config selects and tunes the element chain. The zero value disables
// every element; zero tuning fields select the defaults noted on them.
type Config struct {
	// Admission enables per-client token-bucket admission control.
	Admission bool
	// Breaker enables the per-tile circuit breaker.
	Breaker bool
	// Cache enables the canonical-bytes response cache.
	Cache bool

	// FillRate is each client's sustained admission rate in requests per
	// second (default 2000).
	FillRate float64
	// Burst is each client's bucket capacity in requests; bursts up to
	// this size pass even at zero sustained budget (default 2×FillRate).
	Burst float64

	// Window is the breaker's rolling failure-rate window (default 1s).
	Window time.Duration
	// TripRate is the failure fraction over Window that opens a closed
	// breaker (default 0.5). Failure events are fallback-completed
	// requests, deadline misses, and fault retries, so the ratio can
	// exceed 1 on a badly faulted tile.
	TripRate float64
	// MinVolume is the minimum request volume in Window before TripRate
	// is evaluated — a floor against tripping on tiny samples (default 16).
	MinVolume int
	// OpenFor is how long an open breaker dwells before half-opening
	// (default 500ms).
	OpenFor time.Duration
	// Probes is the half-open probe budget: at most this many requests
	// route to the tile while half-open; any observed failure re-opens,
	// this many observed successes re-close (default 8).
	Probes int

	// CacheBytes bounds the cache's payload memory (request + response
	// bytes per entry); LRU entries evict past it (default 16MiB).
	CacheBytes int64
}

// Defaults, exported so flag help and /statusz can echo them.
const (
	DefaultFillRate   = 2000.0
	DefaultWindow     = time.Second
	DefaultTripRate   = 0.5
	DefaultMinVolume  = 16
	DefaultOpenFor    = 500 * time.Millisecond
	DefaultProbes     = 8
	DefaultCacheBytes = 16 << 20
)

func (c Config) withDefaults() Config {
	// `!(x > 0)` instead of `x <= 0`: the comparison must also catch NaN,
	// which `<= 0` lets through into the admission refill arithmetic.
	if !(c.FillRate > 0) || math.IsInf(c.FillRate, 0) {
		c.FillRate = DefaultFillRate
	}
	if !(c.Burst > 0) || math.IsInf(c.Burst, 0) {
		c.Burst = 2 * c.FillRate
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.TripRate <= 0 {
		c.TripRate = DefaultTripRate
	}
	if c.MinVolume <= 0 {
		c.MinVolume = DefaultMinVolume
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultOpenFor
	}
	if c.Probes <= 0 {
		c.Probes = DefaultProbes
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	return c
}

// Any reports whether at least one element is enabled.
func (c Config) Any() bool { return c.Admission || c.Breaker || c.Cache }

// Names returns the enabled element names in chain order.
func (c Config) Names() []string {
	var out []string
	if c.Admission {
		out = append(out, "admission")
	}
	if c.Breaker {
		out = append(out, "breaker")
	}
	if c.Cache {
		out = append(out, "cache")
	}
	return out
}

// Spec renders the enable set back into -elements flag form.
func (c Config) Spec() string {
	if !c.Any() {
		return "off"
	}
	if c.Admission && c.Breaker && c.Cache {
		return "all"
	}
	return strings.Join(c.Names(), ",")
}

// ParseSpec parses a -elements flag value: "" or "off" disables the
// chain, "all" enables every element, otherwise a comma-separated subset
// of admission, breaker, cache. Tuning fields stay zero (defaults).
func ParseSpec(spec string) (Config, error) {
	var c Config
	switch spec {
	case "", "off", "none":
		return c, nil
	case "all":
		c.Admission, c.Breaker, c.Cache = true, true, true
		return c, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if seen[name] {
			return c, fmt.Errorf("elements: duplicate element %q in spec %q", name, spec)
		}
		seen[name] = true
		switch name {
		case "admission":
			c.Admission = true
		case "breaker":
			c.Breaker = true
		case "cache":
			c.Cache = true
		default:
			return c, fmt.Errorf("elements: unknown element %q in spec %q (want admission, breaker, cache, all, or off)", name, spec)
		}
	}
	return c, nil
}

// Chain is a server's instantiated element set. Nil element pointers —
// and a nil Chain — mean that element is off; call sites guard on nil,
// so a chain-off server runs exactly the pre-chain code path.
type Chain struct {
	Admission *Admission
	Breaker   *Breaker
	Cache     *Cache

	cfg Config
}

// New builds the chain cfg selects for a server with the given tile
// count. Returns nil when no element is enabled.
func New(cfg Config, tiles int) *Chain {
	if !cfg.Any() {
		return nil
	}
	cfg = cfg.withDefaults()
	ch := &Chain{cfg: cfg}
	if cfg.Admission {
		ch.Admission = newAdmission(cfg.FillRate, cfg.Burst)
	}
	if cfg.Breaker {
		ch.Breaker = newBreaker(cfg, tiles)
	}
	if cfg.Cache {
		ch.Cache = newCache(cfg.CacheBytes)
	}
	return ch
}

// Config returns the (defaulted) configuration the chain was built with.
func (ch *Chain) Config() Config { return ch.cfg }

// Names returns the enabled element names in chain order; nil-safe.
func (ch *Chain) Names() []string {
	if ch == nil {
		return nil
	}
	return ch.cfg.Names()
}
