package elements

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    []string // enabled names; nil = chain off
		wantErr bool
	}{
		{spec: "", want: nil},
		{spec: "off", want: nil},
		{spec: "none", want: nil},
		{spec: "all", want: []string{"admission", "breaker", "cache"}},
		{spec: "admission", want: []string{"admission"}},
		{spec: "cache", want: []string{"cache"}},
		{spec: "breaker,cache", want: []string{"breaker", "cache"}},
		{spec: "cache,breaker", want: []string{"breaker", "cache"}}, // chain order, not flag order
		{spec: "admission, breaker", want: []string{"admission", "breaker"}},
		{spec: "cache,cache", wantErr: true},
		{spec: "turbo", wantErr: true},
		{spec: "admission,", wantErr: true},
	}
	for _, tc := range cases {
		cfg, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", tc.spec, cfg)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if got := cfg.Names(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseSpec(%q).Names() = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{"off", "all", "admission", "breaker", "cache", "admission,cache"} {
		cfg, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got := cfg.Spec(); got != spec {
			t.Errorf("ParseSpec(%q).Spec() = %q", spec, got)
		}
	}
}

func TestChainNilWhenOff(t *testing.T) {
	if ch := New(Config{}, 4); ch != nil {
		t.Fatalf("New with zero Config = %+v, want nil", ch)
	}
	var ch *Chain
	if names := ch.Names(); names != nil {
		t.Fatalf("nil Chain Names() = %v, want nil", names)
	}
}

func TestChainDefaults(t *testing.T) {
	ch := New(Config{Admission: true, Breaker: true, Cache: true}, 2)
	cfg := ch.Config()
	if cfg.FillRate != DefaultFillRate || cfg.Burst != 2*DefaultFillRate {
		t.Errorf("admission defaults: fill=%g burst=%g", cfg.FillRate, cfg.Burst)
	}
	if cfg.Window != DefaultWindow || cfg.TripRate != DefaultTripRate ||
		cfg.MinVolume != DefaultMinVolume || cfg.OpenFor != DefaultOpenFor || cfg.Probes != DefaultProbes {
		t.Errorf("breaker defaults: %+v", cfg)
	}
	if cfg.CacheBytes != DefaultCacheBytes {
		t.Errorf("cache default bytes = %d", cfg.CacheBytes)
	}
	if ch.Admission == nil || ch.Breaker == nil || ch.Cache == nil {
		t.Fatalf("all-on chain has nil element: %+v", ch)
	}
}

func TestAdmissionBurstThenThrottle(t *testing.T) {
	a := newAdmission(10, 3) // 10 tokens/s, burst 3
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		if !a.Allow("c", now) {
			t.Fatalf("request %d within burst throttled", i)
		}
	}
	if a.Allow("c", now) {
		t.Fatal("request past burst allowed")
	}
	allowed, throttled := a.Totals()
	if allowed != 3 || throttled != 1 {
		t.Fatalf("totals = (%d, %d), want (3, 1)", allowed, throttled)
	}
}

func TestAdmissionRefill(t *testing.T) {
	a := newAdmission(10, 3)
	now := time.Unix(1000, 0)
	for i := 0; i < 3; i++ {
		a.Allow("c", now)
	}
	if a.Allow("c", now) {
		t.Fatal("empty bucket allowed")
	}
	// 100ms refills one token at 10/s.
	now = now.Add(100 * time.Millisecond)
	if !a.Allow("c", now) {
		t.Fatal("refilled token not granted")
	}
	if a.Allow("c", now) {
		t.Fatal("second request on a single refilled token allowed")
	}
	// A long idle caps at burst, not unbounded credit.
	now = now.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if !a.Allow("c", now) {
			t.Fatalf("request %d within refilled burst throttled", i)
		}
	}
	if a.Allow("c", now) {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestAdmissionClientsIndependent(t *testing.T) {
	a := newAdmission(10, 2)
	now := time.Unix(1000, 0)
	a.Allow("a", now)
	a.Allow("a", now)
	if a.Allow("a", now) {
		t.Fatal("client a over burst allowed")
	}
	if !a.Allow("b", now) {
		t.Fatal("fresh client b throttled by client a's spend")
	}
	if a.Clients() != 2 {
		t.Fatalf("Clients() = %d, want 2", a.Clients())
	}
}

func TestAdmissionSweep(t *testing.T) {
	a := newAdmission(10, 2) // refill horizon = 200ms
	now := time.Unix(1000, 0)
	for i := 0; i < maxClients; i++ {
		a.Allow(fmt.Sprintf("c%d", i), now)
	}
	if a.Clients() != maxClients {
		t.Fatalf("Clients() = %d, want %d", a.Clients(), maxClients)
	}
	// All existing buckets have fully refilled; a new insert sweeps them.
	now = now.Add(time.Second)
	a.Allow("fresh", now)
	if n := a.Clients(); n != 1 {
		t.Fatalf("Clients() after sweep = %d, want 1", n)
	}
}

// Regression: sweepLocked computed the refill horizon as
// burst/fillRate*Second with no guard, so a zero, negative, or NaN fill
// rate produced an Inf/NaN float whose time.Duration conversion is
// implementation-defined (minInt64 on amd64 — a negative horizon that
// drops every bucket; a +Inf-as-maxInt64 horizon never sweeps any).
// Degenerate rates must be clamped at construction, and the sweep itself
// must stay sane even with a hand-corrupted rate.
func TestAdmissionSweepDegenerateRates(t *testing.T) {
	now := time.Unix(1000, 0)
	for _, tc := range []struct {
		name             string
		fillRate, burst  float64
		wantRate, wantBt float64
	}{
		{"zero", 0, 0, DefaultFillRate, 2 * DefaultFillRate},
		{"negative", -5, -10, DefaultFillRate, 2 * DefaultFillRate},
		{"nan", math.NaN(), math.NaN(), DefaultFillRate, 2 * DefaultFillRate},
		{"inf", math.Inf(1), math.Inf(1), DefaultFillRate, 2 * DefaultFillRate},
		{"zero-burst", 10, math.NaN(), 10, 20},
	} {
		a := newAdmission(tc.fillRate, tc.burst)
		if a.FillRate() != tc.wantRate || a.Burst() != tc.wantBt {
			t.Errorf("%s: clamped to (rate=%v, burst=%v), want (%v, %v)",
				tc.name, a.FillRate(), a.Burst(), tc.wantRate, tc.wantBt)
		}
		// The sweep must neither drop a just-filled bucket (negative
		// horizon) nor refuse to drop a long-idle one (infinite horizon).
		a.Allow("live", now)
		a.Allow("idle", now.Add(-48*time.Hour))
		a.sweepLocked(now)
		if a.Clients() != 1 {
			t.Errorf("%s: sweep kept %d clients, want 1 (idle dropped, live kept)", tc.name, a.Clients())
		}
	}

	// Even if a degenerate rate reaches the sweep directly (bypassing the
	// construction clamp), the horizon falls back instead of going
	// negative or non-finite.
	a := newAdmission(10, 20)
	a.Allow("live", now)
	a.fillRate = 0 // burst/0 → +Inf
	a.sweepLocked(now)
	if a.Clients() != 1 {
		t.Fatalf("inf horizon sweep dropped a just-filled bucket (%d clients left)", a.Clients())
	}
	a.fillRate = math.NaN()
	a.sweepLocked(now)
	if a.Clients() != 1 {
		t.Fatalf("NaN horizon sweep dropped a just-filled bucket (%d clients left)", a.Clients())
	}
}

// The chain's config defaulting must be equally NaN-safe: `<= 0` is
// false for NaN, so a NaN FillRate used to pass straight through
// withDefaults into the admission element.
func TestConfigWithDefaultsNaNSafe(t *testing.T) {
	cfg := Config{Admission: true, FillRate: math.NaN(), Burst: math.Inf(1)}.withDefaults()
	if cfg.FillRate != DefaultFillRate || cfg.Burst != 2*DefaultFillRate {
		t.Fatalf("withDefaults kept degenerate rates: fill=%v burst=%v", cfg.FillRate, cfg.Burst)
	}
	ch := New(Config{Admission: true, FillRate: math.NaN()}, 1)
	if ch.Admission.FillRate() != DefaultFillRate {
		t.Fatalf("chain admission built with NaN fill rate: %v", ch.Admission.FillRate())
	}
}

// drillBreaker builds a breaker with a fast test config: 80ms window
// (10ms buckets), trip at 50% over ≥4 requests, 50ms open dwell, 2
// probes.
func drillBreaker(tiles int) (*Breaker, time.Time) {
	b := newBreaker(Config{
		Window: 80 * time.Millisecond, TripRate: 0.5, MinVolume: 4,
		OpenFor: 50 * time.Millisecond, Probes: 2,
	}.withDefaults(), tiles)
	return b, b.start
}

func TestBreakerTripHalfOpenReclose(t *testing.T) {
	b, now := drillBreaker(2)

	// Healthy traffic keeps the breaker closed.
	b.Observe(0, 100, 0, now)
	if got := b.StateOf(0); got != StateClosed {
		t.Fatalf("healthy tile state = %v", got)
	}
	// A failure burst past MinVolume and TripRate trips tile 1 only.
	b.Observe(1, 8, 8, now)
	if got := b.StateOf(1); got != StateOpen {
		t.Fatalf("faulted tile state = %v, want open", got)
	}
	if got := b.StateOf(0); got != StateClosed {
		t.Fatalf("healthy tile tripped by tile 1: %v", got)
	}
	if !b.Routable(0, now) {
		t.Fatal("healthy tile not routable")
	}
	if b.Routable(1, now) {
		t.Fatal("open tile routable before dwell")
	}

	// Dwell expiry: the next Routable transitions to half-open and admits
	// probes up to the budget.
	now = now.Add(60 * time.Millisecond)
	if !b.Routable(1, now) {
		t.Fatal("expired open tile did not half-open")
	}
	if got := b.StateOf(1); got != StateHalfOpen {
		t.Fatalf("state after dwell = %v, want half-open", got)
	}
	b.NoteRouted(1, 1, now)
	if !b.Routable(1, now) {
		t.Fatal("second probe rejected within budget")
	}
	b.NoteRouted(1, 1, now)
	if b.Routable(1, now) {
		t.Fatal("probe budget (2) not enforced")
	}

	// Two clean probes re-close; the window starts fresh.
	b.Observe(1, 2, 0, now)
	if got := b.StateOf(1); got != StateClosed {
		t.Fatalf("state after clean probes = %v, want closed", got)
	}
	st := b.TileStates(now)[1]
	if st.WindowRequests != 0 || st.WindowFailures != 0 {
		t.Fatalf("window not reset on close: %+v", st)
	}
	if st.Trips != 1 {
		t.Fatalf("trips = %d, want 1", st.Trips)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, now := drillBreaker(1)
	b.Observe(0, 8, 8, now)
	now = now.Add(60 * time.Millisecond)
	if !b.Routable(0, now) {
		t.Fatal("did not half-open")
	}
	b.NoteRouted(0, 1, now)
	b.Observe(0, 1, 1, now) // failed probe
	if got := b.StateOf(0); got != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The re-open restarts the dwell from the probe failure.
	if b.Routable(0, now.Add(10*time.Millisecond)) {
		t.Fatal("re-opened breaker routable before a fresh dwell")
	}
	if !b.Routable(0, now.Add(60*time.Millisecond)) {
		t.Fatal("re-opened breaker did not half-open after a fresh dwell")
	}
}

func TestBreakerMinVolume(t *testing.T) {
	b, now := drillBreaker(1)
	// 3 failures out of 3 is a 100% failure rate but under MinVolume=4.
	b.Observe(0, 3, 3, now)
	if got := b.StateOf(0); got != StateClosed {
		t.Fatalf("tripped under MinVolume: %v", got)
	}
	b.Observe(0, 1, 1, now)
	if got := b.StateOf(0); got != StateOpen {
		t.Fatalf("did not trip at MinVolume: %v", got)
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	b, now := drillBreaker(1)
	// Failures older than the window must not count toward a trip.
	b.Observe(0, 3, 3, now)
	now = now.Add(200 * time.Millisecond) // well past the 80ms window
	b.Observe(0, 2, 1, now)               // 1/2 failures in-window: volume too low, rate met but stale failures gone
	if got := b.StateOf(0); got != StateClosed {
		t.Fatalf("stale failures tripped the breaker: %v", got)
	}
	st := b.TileStates(now)[0]
	if st.WindowRequests != 2 || st.WindowFailures != 1 {
		t.Fatalf("window = %d/%d, want 2/1", st.WindowFailures, st.WindowRequests)
	}
}

func TestBreakerEvents(t *testing.T) {
	b, now := drillBreaker(1)
	b.Observe(0, 8, 8, now)
	now = now.Add(60 * time.Millisecond)
	b.Routable(0, now)
	b.NoteRouted(0, 2, now)
	b.Observe(0, 2, 0, now)
	evs := b.Events()
	want := []string{"closed→open", "open→half-open", "half-open→closed"}
	if len(evs) != len(want) {
		t.Fatalf("events = %+v, want %d transitions", evs, len(want))
	}
	for i, ev := range evs {
		if got := ev.From + "→" + ev.To; got != want[i] {
			t.Errorf("event %d = %s, want %s", i, got, want[i])
		}
		if ev.Tile != 0 {
			t.Errorf("event %d tile = %d", i, ev.Tile)
		}
	}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	c := newCache(3 * (entryOverhead + 8)) // room for three 4+4-byte entries
	c.Put("s", 0, []byte("aaaa"), []byte("AAAA"), 1)
	c.Put("s", 0, []byte("bbbb"), []byte("BBBB"), 2)
	c.Put("s", 0, []byte("cccc"), []byte("CCCC"), 3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if resp, cycles, ok := c.Get("s", 0, []byte("aaaa")); !ok || string(resp) != "AAAA" || cycles != 1 {
		t.Fatalf("Get(aaaa) = (%q, %g, %v)", resp, cycles, ok)
	}
	// "aaaa" is now most recent; inserting a fourth entry evicts the LRU
	// entry "bbbb".
	c.Put("s", 0, []byte("dddd"), []byte("DDDD"), 4)
	if _, _, ok := c.Get("s", 0, []byte("bbbb")); ok {
		t.Fatal("LRU entry bbbb survived eviction")
	}
	for _, k := range []string{"aaaa", "cccc", "dddd"} {
		if _, _, ok := c.Get("s", 0, []byte(k)); !ok {
			t.Fatalf("entry %s evicted out of LRU order", k)
		}
	}
	lookups, hits, misses, inserts, evictions, _ := c.Stats()
	if inserts != 4 || evictions != 1 {
		t.Fatalf("inserts=%d evictions=%d, want 4/1", inserts, evictions)
	}
	if lookups != hits+misses {
		t.Fatalf("lookups=%d hits=%d misses=%d", lookups, hits, misses)
	}
}

func TestCacheKeyIncludesSchemaAndOp(t *testing.T) {
	c := newCache(1 << 20)
	c.Put("a", 0, []byte("pp"), []byte("deser-a"), 0)
	if _, _, ok := c.Get("b", 0, []byte("pp")); ok {
		t.Fatal("hit across schemas")
	}
	if _, _, ok := c.Get("a", 1, []byte("pp")); ok {
		t.Fatal("hit across ops")
	}
	if resp, _, ok := c.Get("a", 0, []byte("pp")); !ok || string(resp) != "deser-a" {
		t.Fatalf("exact-key lookup = (%q, %v)", resp, ok)
	}
}

func TestCacheCollisionVerification(t *testing.T) {
	c := newCache(1 << 20)
	c.Put("s", 0, []byte("real"), []byte("RESP"), 0)
	// FNV-1a collisions are impractical to fabricate, so exercise the
	// verification path white-box: plant an entry under the hash of a
	// *different* payload, then look that payload up. The hash matches,
	// the stored request bytes do not — the lookup must miss and count a
	// collision, never return the planted response.
	k := Key{Schema: "s", Op: 0, Hash: HashPayload([]byte("victim"))}
	c.entries[k] = c.lru.PushFront(&centry{key: k, request: []byte("real"), response: []byte("WRONG")})
	if resp, _, ok := c.Get("s", 0, []byte("victim")); ok {
		t.Fatalf("colliding lookup returned %q", resp)
	}
	_, _, _, _, _, collisions := c.Stats()
	if collisions != 1 {
		t.Fatalf("collisions = %d, want 1", collisions)
	}
}

func TestCacheOversizedEntryNotStored(t *testing.T) {
	c := newCache(64)
	big := make([]byte, 256)
	c.Put("s", 0, big, big, 0)
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversized entry cached: len=%d bytes=%d", c.Len(), c.Bytes())
	}
}

func TestCacheSameKeyReplace(t *testing.T) {
	c := newCache(1 << 20)
	c.Put("s", 0, []byte("k"), []byte("v1"), 1)
	c.Put("s", 0, []byte("k"), []byte("v2"), 2)
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if resp, cycles, ok := c.Get("s", 0, []byte("k")); !ok || string(resp) != "v2" || cycles != 2 {
		t.Fatalf("Get after replace = (%q, %g, %v)", resp, cycles, ok)
	}
	_, _, _, inserts, _, _ := c.Stats()
	if inserts != 1 {
		t.Fatalf("inserts = %d, want 1 (replace is not an insert)", inserts)
	}
}

func TestHashPayloadMatchesFNV1a(t *testing.T) {
	// Pinned reference values of 64-bit FNV-1a.
	cases := map[string]uint64{
		"":    14695981039346656037,
		"a":   0xaf63dc4c8601ec8c,
		"foo": 0xdcb27518fed9d577,
	}
	for in, want := range cases {
		if got := HashPayload([]byte(in)); got != want {
			t.Errorf("HashPayload(%q) = %#x, want %#x", in, got, want)
		}
	}
}
