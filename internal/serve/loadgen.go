package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"protoacc/internal/telemetry"
)

// LoadgenOptions configures one load-generation run.
type LoadgenOptions struct {
	// Dial builds one client per worker (TCP Conn or in-process client).
	Dial func() (Doer, error)

	// Catalog supplies sample payloads; nil selects DefaultCatalog. It must
	// match the server's catalog for -check to hold.
	Catalog *Catalog

	// Schema names the catalog entry to exercise (default "varint").
	Schema string

	// Op is the operation to issue.
	Op Op

	// Duration bounds the run (default 2s).
	Duration time.Duration

	// Concurrency is the number of closed-loop workers (default 8).
	Concurrency int

	// RatePerSec switches to open-loop: workers pace submissions to this
	// aggregate rate instead of saturating. 0 means closed-loop.
	RatePerSec float64

	// ZipfS > 1 switches payload selection from the uniform sample walk to
	// a Zipf(s)-skewed draw over the schema's sample payloads — hot-key
	// traffic, where a handful of payloads dominate (the distribution the
	// response cache exists for). Larger s is more skewed; 0 keeps the
	// uniform walk. Values in (0, 1] are invalid (Zipf needs s > 1).
	ZipfS float64

	// Timeout is the per-request deadline passed to the server (0 inherits
	// the server default).
	Timeout time.Duration

	// Check verifies every OK response is byte-identical to its request
	// payload (sample payloads are canonical, so the serving contract makes
	// the two equal for both ops).
	Check bool
}

// LoadgenReport summarizes a run.
type LoadgenReport struct {
	Schema string
	Op     Op

	Elapsed   time.Duration
	Requests  uint64
	OK        uint64
	Shed      uint64
	Throttled uint64 // rejected by the admission-control element
	Deadline  uint64
	Bad       uint64
	Errors    uint64 // transport errors and StatusError responses
	FellBack  uint64 // OK responses served by a software path

	BytesIn  uint64 // payload bytes sent
	BytesOut uint64 // payload bytes received on OK responses

	CheckFailures uint64

	// Latency is the client-observed end-to-end latency distribution,
	// merged across workers (telemetry.Histogram records are atomic, so a
	// per-worker shard plus a final Merge stays contention-free).
	Latency telemetry.Histogram
}

// RPS returns completed (OK) requests per second.
func (r *LoadgenReport) RPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// Gbps returns the OK-response payload throughput in Gbit/s.
func (r *LoadgenReport) Gbps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesOut) * 8 / r.Elapsed.Seconds() / 1e9
}

// RunLoadgen drives a server with opts.Concurrency workers and returns the
// merged report. Each worker owns one client connection and walks the
// schema's sample payloads; closed-loop workers issue back-to-back,
// open-loop workers pace to RatePerSec/Concurrency each.
func RunLoadgen(opts LoadgenOptions) (*LoadgenReport, error) {
	if opts.Dial == nil {
		return nil, fmt.Errorf("serve: loadgen needs a Dial function")
	}
	if opts.Catalog == nil {
		opts.Catalog = DefaultCatalog()
	}
	if opts.Schema == "" {
		opts.Schema = "varint"
	}
	entry := opts.Catalog.Lookup(opts.Schema)
	if entry == nil {
		return nil, fmt.Errorf("serve: loadgen: unknown schema %q", opts.Schema)
	}
	if opts.Duration <= 0 {
		opts.Duration = 2 * time.Second
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 8
	}
	if opts.ZipfS > 0 && opts.ZipfS <= 1 {
		return nil, fmt.Errorf("serve: loadgen: -skew %g invalid (Zipf needs s > 1, or 0 for uniform)", opts.ZipfS)
	}
	// Entry.SamplePayload indexes modulo the sample count, so an entry
	// with no payloads cannot be driven at all (i%0 panics), and skewed
	// mode additionally needs NumSamples-1 ≥ 1 as its Zipf imax: at one
	// sample the subtraction still works (imax 0 — every draw is sample
	// 0), but at zero it wraps to 2^64-1. Reject the empty entry up front
	// instead of panicking in a worker.
	if entry.NumSamples() == 0 {
		return nil, fmt.Errorf("serve: loadgen: schema %q has no sample payloads", opts.Schema)
	}

	reports := make([]LoadgenReport, opts.Concurrency)
	errs := make([]error, opts.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(opts.Duration)
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := opts.Dial()
			if err != nil {
				errs[w] = err
				return
			}
			defer client.Close()
			rep := &reports[w]
			// Skewed mode draws sample indices from a per-worker Zipf
			// source (seeded by worker id, so runs are reproducible for a
			// given concurrency); rank 0 — the hottest key — maps to sample
			// 0 on every worker, so the fleet-wide hot set overlaps.
			// A single-sample schema degenerates to the uniform walk (every
			// draw would be sample 0 anyway), and a nil return from
			// rand.NewZipf — its signal for parameters it rejects — becomes
			// a worker error instead of a nil-dereference panic in the loop.
			var zipf *rand.Zipf
			if opts.ZipfS > 1 && entry.NumSamples() > 1 {
				src := rand.New(rand.NewSource(int64(w) + 1))
				zipf = rand.NewZipf(src, opts.ZipfS, 1, uint64(entry.NumSamples()-1))
				if zipf == nil {
					errs[w] = fmt.Errorf("serve: loadgen: rand.NewZipf rejected s=%g imax=%d", opts.ZipfS, entry.NumSamples()-1)
					return
				}
			}
			var interval time.Duration
			next := time.Now()
			if opts.RatePerSec > 0 {
				interval = time.Duration(float64(opts.Concurrency) / opts.RatePerSec * float64(time.Second))
				next = start.Add(time.Duration(w) * interval / time.Duration(opts.Concurrency))
			}
			for i := 0; ; i++ {
				now := time.Now()
				if !now.Before(stop) {
					return
				}
				// Open-loop latency is measured from the *scheduled* send
				// time, not from when the pacing sleep returned: under
				// overload the schedule falls behind, and measuring from
				// the post-sleep instant would silently drop exactly the
				// queueing delay the open-loop mode exists to expose
				// (coordinated omission, underreporting p99/p999).
				var sendAt time.Time
				if interval > 0 {
					sendAt = next
					if d := next.Sub(now); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				idx := w*7919 + i
				if zipf != nil {
					idx = int(zipf.Uint64())
				}
				payload := entry.SamplePayload(idx)
				t0 := time.Now()
				if !sendAt.IsZero() {
					t0 = sendAt
				}
				resp, err := client.Do(Request{
					Op:      opts.Op,
					Schema:  opts.Schema,
					Timeout: opts.Timeout,
					Payload: payload,
				})
				lat := time.Since(t0)
				rep.Requests++
				rep.BytesIn += uint64(len(payload))
				if err != nil {
					rep.Errors++
					continue
				}
				switch resp.Status {
				case StatusOK:
					rep.OK++
					rep.BytesOut += uint64(len(resp.Payload))
					rep.Latency.Record(lat)
					if resp.FellBack {
						rep.FellBack++
					}
					if opts.Check && !bytes.Equal(resp.Payload, payload) {
						rep.CheckFailures++
					}
				case StatusShed:
					rep.Shed++
				case StatusThrottled:
					rep.Throttled++
				case StatusDeadline:
					rep.Deadline++
				case StatusBadRequest:
					rep.Bad++
				default:
					rep.Errors++
				}
			}
		}(w)
	}
	wg.Wait()
	out := &LoadgenReport{Schema: opts.Schema, Op: opts.Op, Elapsed: time.Since(start)}
	for w := range reports {
		if errs[w] != nil {
			return nil, errs[w]
		}
		r := &reports[w]
		out.Requests += r.Requests
		out.OK += r.OK
		out.Shed += r.Shed
		out.Throttled += r.Throttled
		out.Deadline += r.Deadline
		out.Bad += r.Bad
		out.Errors += r.Errors
		out.FellBack += r.FellBack
		out.BytesIn += r.BytesIn
		out.BytesOut += r.BytesOut
		out.CheckFailures += r.CheckFailures
		out.Latency.Merge(&r.Latency)
	}
	return out, nil
}
