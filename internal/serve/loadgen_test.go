package serve

import (
	"testing"
	"time"
)

// slowDoer answers every request correctly but takes a fixed service
// time — a deliberately overloaded "server" for the coordinated-omission
// regression test.
type slowDoer struct {
	delay time.Duration
}

func (d slowDoer) Do(req Request) (Response, error) {
	time.Sleep(d.delay)
	return Response{ID: req.ID, Status: StatusOK, Payload: req.Payload}, nil
}

func (d slowDoer) Close() error { return nil }

// Open-loop (paced) latency must be recorded from the scheduled send
// time, not from when the pacing sleep returned. Against a server whose
// service time exceeds the pacing interval, the schedule falls further
// behind with every request, so the tail latency must grow far beyond the
// per-request service time; measuring from the post-sleep instant
// (coordinated omission) would clamp every sample to roughly the service
// time and underreport p99/p999.
func TestLoadgenOpenLoopCoordinatedOmission(t *testing.T) {
	const serviceTime = 5 * time.Millisecond
	rep, err := RunLoadgen(LoadgenOptions{
		Dial:        func() (Doer, error) { return slowDoer{delay: serviceTime}, nil },
		Schema:      "varint",
		Op:          OpDeserialize,
		Duration:    250 * time.Millisecond,
		Concurrency: 1,
		RatePerSec:  1000, // 1ms interval << 5ms service time: permanent overload
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK < 10 {
		t.Fatalf("only %d requests completed; test cannot observe queueing delay", rep.OK)
	}
	// After k requests the schedule is behind by k*(serviceTime-interval);
	// with ~40+ completions the worst sample must far exceed the service
	// time. 4x is a conservative floor that the coordinated-omission bug
	// could never reach (it reported ≈ serviceTime regardless of backlog).
	if got := rep.Latency.Quantile(1.0); got < 4*serviceTime {
		t.Errorf("open-loop max latency %v under permanent overload; want >= %v (queueing delay from the schedule, not the send instant)",
			got, 4*serviceTime)
	}
	// The mean must also reflect the backlog, not just the tail.
	if got := rep.Latency.Mean(); got < 2*serviceTime {
		t.Errorf("open-loop mean latency %v under permanent overload; want >= %v", got, 2*serviceTime)
	}
}

// Skewed (and uniform) mode over sample-count edge cases. A zero-sample
// entry used to reach the worker loop, where SamplePayload's modulo
// panicked (uniform) or NumSamples-1 wrapped to 2^64-1 as the Zipf imax
// (skewed); a single-sample entry spent a Zipf source on a distribution
// with one outcome. Zero samples must be rejected up front, one and many
// must run clean in both modes.
func TestLoadgenSampleCountEdgeCases(t *testing.T) {
	payloadsOf := func(e *Entry, n int) [][]byte {
		var out [][]byte
		for i := 0; i < n; i++ {
			out = append(out, e.SamplePayload(i))
		}
		return out
	}
	full := DefaultCatalog().Lookup("varint")
	cases := []struct {
		name    string
		samples int
		skew    float64
		wantErr bool
	}{
		{"zero-uniform", 0, 0, true},
		{"zero-skewed", 0, 1.2, true},
		{"one-uniform", 1, 0, false},
		{"one-skewed", 1, 1.2, false},
		{"many-uniform", 8, 0, false},
		{"many-skewed", 8, 1.2, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat, err := NewCatalog(&Entry{
				Name:     "varint",
				Type:     full.Type,
				payloads: payloadsOf(full, tc.samples),
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunLoadgen(LoadgenOptions{
				Dial:        func() (Doer, error) { return slowDoer{}, nil },
				Catalog:     cat,
				Schema:      "varint",
				Op:          OpDeserialize,
				Duration:    30 * time.Millisecond,
				Concurrency: 2,
				ZipfS:       tc.skew,
				Check:       true,
			})
			if tc.wantErr {
				if err == nil {
					t.Fatalf("%d samples accepted; want an error, not a worker panic", tc.samples)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK == 0 || rep.OK != rep.Requests || rep.CheckFailures != 0 {
				t.Fatalf("ok=%d requests=%d checkFailures=%d", rep.OK, rep.Requests, rep.CheckFailures)
			}
		})
	}
}

// Closed-loop latency is still measured from the send instant: against
// the same slow server it must stay near the service time (no pacing, no
// schedule to fall behind).
func TestLoadgenClosedLoopLatencyUnchanged(t *testing.T) {
	const serviceTime = 2 * time.Millisecond
	rep, err := RunLoadgen(LoadgenOptions{
		Dial:        func() (Doer, error) { return slowDoer{delay: serviceTime}, nil },
		Schema:      "varint",
		Op:          OpDeserialize,
		Duration:    100 * time.Millisecond,
		Concurrency: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK == 0 {
		t.Fatal("no requests completed")
	}
	if got := rep.Latency.Quantile(0.50); got > 10*serviceTime {
		t.Errorf("closed-loop p50 %v is far above the %v service time", got, serviceTime)
	}
}
