package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"protoacc/internal/telemetry"
)

// Live observability plane: while the counter registry answers "how much
// happened", this layer answers "where does a request's time go while
// the daemon runs" — per-tile stage histograms over the full request
// lifecycle, sampled gauges for live occupancy, and sampled per-request
// spans exported on the Perfetto timeline. Everything here is
// read-passive: recording is lock-free (atomic histogram adds), gauges
// are evaluated only when a scraper asks, and nothing in this file feeds
// back into admission, routing, batching, or the exact-mode counters —
// the admin determinism test pins that an active scraper perturbs
// neither responses nor serve/ counters.

// stageID indexes the per-tile lifecycle stage histograms.
type stageID int

// Lifecycle stages. A request's server-side life partitions into: the
// wait on the tile's admission queue, the coalescing window (waiting for
// batch partners and an executor), batch build (System checkout plus
// input materialization), the accelerator batch operation itself, and
// result readback + response delivery.
const (
	stageQueueWait stageID = iota
	stageCoalesceWait
	stageBatchBuild
	stageExecute
	stageRespondWrite
	numStages
)

var stageNames = [numStages]string{
	"queue_wait", "coalesce_wait", "batch_build", "execute", "respond_write",
}

// StageNames returns the lifecycle stage names in pipeline order.
func StageNames() []string {
	return append([]string(nil), stageNames[:]...)
}

// tileObs is one tile's shard of the observability plane. Histograms are
// per-tile so recording never contends across tiles; scrapers read each
// shard (exported with a tile label) or merge them.
type tileObs struct {
	stages    [numStages]telemetry.Histogram // nanoseconds per stage
	batchSize telemetry.Histogram            // requests per executed batch
	inflight  atomic.Int64                   // batches executing right now
}

func (o *tileObs) record(st stageID, d time.Duration) {
	o.stages[st].Record(d)
}

// Span is one sampled request's lifecycle record: monotonic offsets
// (since server start) of every stage boundary the request crossed, plus
// the placement and resilience annotations that explain them. Zero
// offsets mean the request never reached that boundary (shed or
// bad-request spans end early).
type Span struct {
	ID        uint64 `json:"id"`
	Schema    string `json:"schema"`
	Op        Op     `json:"op"`
	Status    Status `json:"status"`
	Tile      int    `json:"tile"` // executing tile (differs from routed tile when stolen)
	BatchSize int    `json:"batch_size"`
	Stolen    bool   `json:"stolen,omitempty"`
	Retries   uint64 `json:"retries,omitempty"`
	FellBack  bool   `json:"fell_back,omitempty"`

	AdmitAt     time.Duration `json:"admit_ns"`
	EnqueueAt   time.Duration `json:"enqueue_ns,omitempty"`
	DequeueAt   time.Duration `json:"dequeue_ns,omitempty"`
	BatchAt     time.Duration `json:"batch_ns,omitempty"`
	ExecStartAt time.Duration `json:"exec_start_ns,omitempty"`
	ExecEndAt   time.Duration `json:"exec_end_ns,omitempty"`
	DoneAt      time.Duration `json:"done_ns,omitempty"`
}

// spanRingCap bounds the completed-span buffer; past it the ring
// overwrites the oldest spans so a long run keeps its most recent
// history (overwrites are counted in serve/spans/dropped).
const spanRingCap = 4096

// serverObs is the server-wide observability state: the per-tile shards,
// the cross-tile end-to-end histogram, the span sampler, and the
// registry the admin endpoint scrapes histograms and gauges from.
type serverObs struct {
	start time.Time
	e2e   telemetry.Histogram // admit → respond, every admitted request
	tiles []*tileObs
	reg   telemetry.Registry

	spanEvery    uint64 // sample every N'th admitted request; 0 = off
	spanSeq      atomic.Uint64
	spansSampled atomic.Uint64

	spanMu         sync.Mutex
	spans          []*Span // ring, completed spans
	spanNext       int     // ring write cursor
	spansCompleted uint64
	spansDropped   uint64 // ring overwrites
}

func newServerObs(opts Options) *serverObs {
	o := &serverObs{start: time.Now()}
	if opts.SpanSampleN > 0 {
		o.spanEvery = uint64(opts.SpanSampleN)
	}
	for i := 0; i < opts.Tiles; i++ {
		o.tiles = append(o.tiles, &tileObs{})
	}
	o.reg.RegisterHistogram("serve/stage/e2e_ns", &o.e2e)
	for i, to := range o.tiles {
		for st := stageID(0); st < numStages; st++ {
			o.reg.RegisterHistogram(fmt.Sprintf("serve/tile%d/stage/%s_ns", i, stageNames[st]), &to.stages[st])
		}
		o.reg.RegisterHistogram(fmt.Sprintf("serve/tile%d/batch_size", i), &to.batchSize)
	}
	return o
}

// registerGauges wires the live-occupancy gauges once the tiles exist.
// Gauges are callbacks sampled at scrape time; between scrapes they cost
// nothing.
func (o *serverObs) registerGauges(s *Server) {
	for _, t := range s.tiles {
		t := t
		o.reg.RegisterGauge(fmt.Sprintf("serve/tile%d/live/queue_depth", t.id), func() float64 {
			return float64(len(t.queue))
		})
		o.reg.RegisterGauge(fmt.Sprintf("serve/tile%d/live/residents", t.id), func() float64 {
			t.resMu.Lock()
			n := t.residentN
			t.resMu.Unlock()
			return float64(n)
		})
		o.reg.RegisterGauge(fmt.Sprintf("serve/tile%d/live/inflight_batches", t.id), func() float64 {
			return float64(t.obs.inflight.Load())
		})
	}
	o.reg.RegisterGauge("serve/live/uptime_seconds", func() float64 {
		return time.Since(o.start).Seconds()
	})
	// Element-chain gauges register only when their element is on, so a
	// chain-off scrape is shaped exactly like the pre-chain server's.
	if s.elems != nil {
		if a := s.elems.Admission; a != nil {
			o.reg.RegisterGauge("serve/elements/admission/live/clients", func() float64 {
				return float64(a.Clients())
			})
		}
		if b := s.elems.Breaker; b != nil {
			for _, t := range s.tiles {
				id := t.id
				o.reg.RegisterGauge(fmt.Sprintf("serve/tile%d/live/breaker_state", id), func() float64 {
					return float64(b.StateOf(id)) // 0 closed, 1 open, 2 half-open
				})
			}
		}
		if c := s.elems.Cache; c != nil {
			o.reg.RegisterGauge("serve/elements/cache/live/bytes", func() float64 {
				return float64(c.Bytes())
			})
			o.reg.RegisterGauge("serve/elements/cache/live/entries", func() float64 {
				return float64(c.Len())
			})
		}
	}
}

// since returns the monotonic offset used for span timestamps.
func (o *serverObs) since() time.Duration { return time.Since(o.start) }

// maybeSpan returns a fresh span for every spanEvery'th admitted request
// (the first admitted request always starts one, so short runs still
// produce spans), nil otherwise.
func (o *serverObs) maybeSpan() *Span {
	if o.spanEvery == 0 {
		return nil
	}
	seq := o.spanSeq.Add(1)
	if (seq-1)%o.spanEvery != 0 {
		return nil
	}
	o.spansSampled.Add(1)
	return &Span{ID: seq, Tile: -1, AdmitAt: o.since()}
}

// finish retires a completed span into the ring.
func (o *serverObs) finish(sp *Span) {
	o.spanMu.Lock()
	if len(o.spans) < spanRingCap {
		o.spans = append(o.spans, sp)
	} else {
		o.spans[o.spanNext] = sp
		o.spansDropped++
	}
	o.spanNext = (o.spanNext + 1) % spanRingCap
	o.spansCompleted++
	o.spanMu.Unlock()
}

// spanCounters reports the sampling provenance counters.
func (o *serverObs) spanCounters() (sampled, completed, dropped uint64) {
	sampled = o.spansSampled.Load()
	o.spanMu.Lock()
	completed, dropped = o.spansCompleted, o.spansDropped
	o.spanMu.Unlock()
	return
}

// Spans returns the buffered completed spans, oldest first.
func (o *serverObs) Spans() []*Span {
	o.spanMu.Lock()
	defer o.spanMu.Unlock()
	out := make([]*Span, 0, len(o.spans))
	if len(o.spans) == spanRingCap {
		out = append(out, o.spans[o.spanNext:]...)
		out = append(out, o.spans[:o.spanNext]...)
		return out
	}
	return append(out, o.spans...)
}

// spanEvents converts spans to trace events on the existing Perfetto
// writer's schema: each tile is one timeline lane, every span becomes an
// enclosing X event plus one X event per stage it crossed, so a batch's
// whole life — and the lifecycle of every sampled request coalesced into
// it — reads off one timeline. Timestamps map 1 µs of trace time to 1 µs
// of wall time since server start.
func spanEvents(spans []*Span) []telemetry.Event {
	var out []telemetry.Event
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, sp := range spans {
		unit := "admit"
		if sp.Tile >= 0 {
			unit = fmt.Sprintf("tile%d", sp.Tile)
		}
		note := fmt.Sprintf("id=%d status=%s batch=%d", sp.ID, sp.Status, sp.BatchSize)
		if sp.Stolen {
			note += " stolen"
		}
		if sp.Retries > 0 {
			note += fmt.Sprintf(" retries=%d", sp.Retries)
		}
		if sp.FellBack {
			note += " fellback"
		}
		out = append(out, telemetry.Event{
			Unit: unit, Name: fmt.Sprintf("req %s/%s", sp.Schema, sp.Op),
			Cycle: us(sp.AdmitAt), Dur: us(sp.DoneAt - sp.AdmitAt), Note: note,
		})
		stage := func(name string, from, to time.Duration) {
			if from == 0 || to == 0 || to < from {
				return
			}
			out = append(out, telemetry.Event{
				Unit: unit, Name: name, Cycle: us(from), Dur: us(to - from),
			})
		}
		stage("queue_wait", sp.EnqueueAt, sp.DequeueAt)
		stage("coalesce_wait", sp.DequeueAt, sp.BatchAt)
		stage("batch_build", sp.BatchAt, sp.ExecStartAt)
		stage("execute", sp.ExecStartAt, sp.ExecEndAt)
		if sp.ExecEndAt != 0 {
			stage("respond_write", sp.ExecEndAt, sp.DoneAt)
		} else if sp.BatchAt != 0 {
			stage("respond_write", sp.BatchAt, sp.DoneAt) // functional / degraded batch
		}
	}
	return out
}

// SpanEvents returns the buffered spans as Perfetto trace events (see
// telemetry.WritePerfetto).
func (s *Server) SpanEvents() []telemetry.Event { return spanEvents(s.obs.Spans()) }

// Spans returns the buffered completed spans, oldest first.
func (s *Server) Spans() []*Span { return s.obs.Spans() }

// StageSummary is the scrape-friendly digest of one lifecycle stage,
// merged across tiles.
type StageSummary struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	P50NS  uint64  `json:"p50_ns"`
	P99NS  uint64  `json:"p99_ns"`
	MaxNS  uint64  `json:"max_ns"`
	MeanNS uint64  `json:"mean_ns"`
	SumNS  float64 `json:"sum_ns"`
}

func summarize(name string, h *telemetry.Histogram) StageSummary {
	return StageSummary{
		Stage:  name,
		Count:  h.Count(),
		P50NS:  uint64(h.Quantile(0.50)),
		P99NS:  uint64(h.Quantile(0.99)),
		MaxNS:  h.Max(),
		MeanNS: uint64(h.Mean()),
		SumNS:  float64(h.Sum()),
	}
}

// StageSummaries merges every tile's stage histograms and returns one
// digest per lifecycle stage (plus the end-to-end and batch-size rows) —
// the server-side breakdown the loadgen -scrape report and /statusz
// publish.
func (s *Server) StageSummaries() []StageSummary {
	out := make([]StageSummary, 0, numStages+2)
	for st := stageID(0); st < numStages; st++ {
		var merged telemetry.Histogram
		for _, to := range s.obs.tiles {
			merged.Merge(&to.stages[st])
		}
		out = append(out, summarize(stageNames[st], &merged))
	}
	out = append(out, summarize("e2e", &s.obs.e2e))
	var sizes telemetry.Histogram
	for _, to := range s.obs.tiles {
		sizes.Merge(&to.batchSize)
	}
	out = append(out, summarize("batch_size", &sizes))
	return out
}

// BatchSizeBuckets returns the batch-size histogram merged across tiles.
// Under round-robin routing with preformed batches this snapshot is a
// pure function of the request list — the tile-count determinism test
// compares it between 1-tile and N-tile servers.
func (s *Server) BatchSizeBuckets() telemetry.HistogramSnapshot {
	var sizes telemetry.Histogram
	for _, to := range s.obs.tiles {
		sizes.Merge(&to.batchSize)
	}
	return sizes.Snapshot()
}

// MetricsSnapshot returns everything a /metrics scrape exposes: the
// exact counter snapshot plus the live gauges and stage histograms.
func (s *Server) MetricsSnapshot() (counters telemetry.Snapshot, gauges []telemetry.Sample, hists []telemetry.NamedHistogram) {
	return s.TelemetrySnapshot(), s.obs.reg.GaugeValues(), s.obs.reg.Histograms()
}
