package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"protoacc/internal/faults"
	"protoacc/internal/telemetry"
)

// Plain served traffic must populate every lifecycle stage histogram:
// queue wait, coalesce wait, batch build, execute, respond write, the
// end-to-end distribution, and the batch-size histogram.
func TestServeStageHistogramsPopulated(t *testing.T) {
	srv, err := NewServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	client := srv.InProc()
	if _, err := client.DoBatch(sampleRequests(DefaultCatalog(), 8)); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	srv.Close()
	byName := make(map[string]StageSummary)
	for _, s := range srv.StageSummaries() {
		byName[s.Stage] = s
	}
	for _, name := range append(StageNames(), "e2e", "batch_size") {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("StageSummaries missing %q", name)
		}
		if s.Count == 0 {
			t.Errorf("stage %s recorded no samples", name)
		}
		if s.P50NS > s.P99NS || s.P99NS > s.MaxNS {
			t.Errorf("stage %s quantiles out of order: p50=%d p99=%d max=%d", name, s.P50NS, s.P99NS, s.MaxNS)
		}
	}
}

// Under deterministic round-robin routing with preformed batches, batch
// composition is a pure function of the request list — so the aggregated
// batch-size histogram (the one deterministic histogram: it counts
// requests, not wall time) must be bucket-identical between a 1-tile and
// an N-tile server.
func TestServeBatchSizeHistogramDeterminism(t *testing.T) {
	reqs := sampleRequests(DefaultCatalog(), 8)
	run := func(tiles int) telemetry.HistogramSnapshot {
		opts := testOptions()
		opts.Tiles = tiles
		opts.Routing = RouteRoundRobin
		if tiles > 1 {
			opts.Workers = tiles
		}
		srv, err := NewServer(opts)
		if err != nil {
			t.Fatal(err)
		}
		client := srv.InProc()
		if _, err := client.DoBatch(append([]Request(nil), reqs...)); err != nil {
			srv.Close()
			t.Fatal(err)
		}
		srv.Close()
		return srv.BatchSizeBuckets()
	}
	a, b := run(1), run(4)
	if a.Count != b.Count || a.Sum != b.Sum || a.Max != b.Max {
		t.Fatalf("batch-size histograms diverge: 1-tile {count %d sum %d max %d}, 4-tile {count %d sum %d max %d}",
			a.Count, a.Sum, a.Max, b.Count, b.Sum, b.Max)
	}
	if len(a.Buckets) != len(b.Buckets) {
		t.Fatalf("bucket shapes differ: %d vs %d", len(a.Buckets), len(b.Buckets))
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			t.Errorf("bucket %d differs: 1-tile %+v 4-tile %+v", i, a.Buckets[i], b.Buckets[i])
		}
	}
}

// With 1-in-1 sampling every request must produce a completed span whose
// stage boundaries are monotone and whose placement annotations are
// in-range, and the span provenance counters must match the admitted
// request count exactly.
func TestServeSpanLifecycle(t *testing.T) {
	opts := testOptions()
	opts.SpanSampleN = 1
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	reqs := sampleRequests(DefaultCatalog(), 4)
	client := srv.InProc()
	resps, err := client.DoBatch(reqs)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	srv.Close()
	for i, resp := range resps {
		if resp.Status != StatusOK {
			t.Fatalf("request %d: status %v: %s", i, resp.Status, resp.Payload)
		}
	}
	spans := srv.Spans()
	if len(spans) != len(reqs) {
		t.Fatalf("got %d spans for %d requests at 1-in-1 sampling", len(spans), len(reqs))
	}
	for _, sp := range spans {
		if sp.Status != StatusOK {
			t.Errorf("span %d: status %v", sp.ID, sp.Status)
		}
		if sp.Tile < 0 || sp.Tile >= srv.Tiles() {
			t.Errorf("span %d: tile %d out of range", sp.ID, sp.Tile)
		}
		if sp.BatchSize < 1 {
			t.Errorf("span %d: batch size %d", sp.ID, sp.BatchSize)
		}
		bounds := []struct {
			name string
			at   time.Duration
		}{
			{"admit", sp.AdmitAt}, {"enqueue", sp.EnqueueAt}, {"dequeue", sp.DequeueAt},
			{"batch", sp.BatchAt}, {"exec_start", sp.ExecStartAt}, {"exec_end", sp.ExecEndAt},
			{"done", sp.DoneAt},
		}
		last := time.Duration(0)
		for _, b := range bounds {
			if b.at == 0 {
				t.Errorf("span %d: OK request never crossed %s", sp.ID, b.name)
				continue
			}
			if b.at < last {
				t.Errorf("span %d: %s at %v before previous boundary %v", sp.ID, b.name, b.at, last)
			}
			last = b.at
		}
	}
	snap := srv.TelemetrySnapshot()
	sampled, _ := snap.Get("serve/spans/sampled")
	completed, _ := snap.Get("serve/spans/completed")
	if sampled != float64(len(reqs)) || completed != float64(len(reqs)) {
		t.Errorf("span counters: sampled=%v completed=%v, want %d each", sampled, completed, len(reqs))
	}
	events := srv.SpanEvents()
	if len(events) < len(reqs) {
		t.Fatalf("only %d trace events from %d spans", len(events), len(spans))
	}
	var buf bytes.Buffer
	if err := telemetry.WritePerfetto(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("span Perfetto export is not valid JSON")
	}
}

// The admin endpoints must serve a valid Prometheus exposition with the
// stage histogram families present, a per-tile health report, a statusz
// snapshot that round-trips through its JSON schema (including the
// mid-run ?write=1 stats flush), the span trace, and pprof.
func TestAdminEndpoints(t *testing.T) {
	opts := testOptions()
	opts.SpanSampleN = 2
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := srv.InProc()
	if _, err := client.DoBatch(sampleRequests(DefaultCatalog(), 8)); err != nil {
		t.Fatal(err)
	}

	statsPath := filepath.Join(t.TempDir(), "stats.json")
	ts := httptest.NewServer(NewAdminHandler(srv, AdminOptions{
		Manifest: &telemetry.Manifest{Command: "obs-test", Parallelism: srv.Workers()},
		FlushStats: func() (string, error) {
			f, err := os.Create(statsPath)
			if err != nil {
				return "", err
			}
			defer f.Close()
			return statsPath, telemetry.WriteStatsJSON(f, nil, srv.TelemetrySnapshot())
		},
	}))
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, body
	}

	code, metrics := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := telemetry.ValidatePrometheus(bytes.NewReader(metrics)); err != nil {
		t.Errorf("/metrics exposition invalid: %v\n%s", err, metrics)
	}
	for _, want := range []string{
		"# TYPE protoacc_serve_batches counter",
		"# TYPE protoacc_serve_stage_e2e_ns histogram",
		`protoacc_serve_stage_queue_wait_ns_bucket{tile="0",le="`,
		`protoacc_serve_stage_execute_ns_count{tile="0"}`,
		"# TYPE protoacc_serve_live_uptime_seconds gauge",
		`protoacc_serve_live_queue_depth{tile="0"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, health := get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, health)
	}
	var hdoc struct {
		Status string       `json:"status"`
		Tiles  []TileHealth `json:"tiles"`
	}
	if err := json.Unmarshal(health, &hdoc); err != nil {
		t.Fatalf("/healthz decode: %v", err)
	}
	if hdoc.Status != "ok" || len(hdoc.Tiles) != srv.Tiles() {
		t.Errorf("/healthz = %+v, want ok with %d tiles", hdoc, srv.Tiles())
	}

	code, statusz := get("/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var doc Statusz
	if err := json.Unmarshal(statusz, &doc); err != nil {
		t.Fatalf("/statusz decode: %v", err)
	}
	if doc.Schema != StatuszSchema {
		t.Errorf("/statusz schema = %q", doc.Schema)
	}
	if doc.Build == nil || doc.Build.Command != "obs-test" {
		t.Errorf("/statusz build manifest = %+v", doc.Build)
	}
	if doc.Config.Tiles != srv.Tiles() || doc.Config.SpanSampleN != 2 {
		t.Errorf("/statusz config = %+v", doc.Config)
	}
	if len(doc.Stages) == 0 || doc.Counters["serve/batches"] == 0 {
		t.Errorf("/statusz stages/counters empty: %d stages, batches=%v", len(doc.Stages), doc.Counters["serve/batches"])
	}
	if doc.Spans.Sampled == 0 || doc.Spans.Completed == 0 {
		t.Errorf("/statusz span stats empty: %+v", doc.Spans)
	}

	code, flushed := get("/statusz?write=1")
	if code != http.StatusOK {
		t.Fatalf("/statusz?write=1 status %d: %s", code, flushed)
	}
	var fdoc Statusz
	if err := json.Unmarshal(flushed, &fdoc); err != nil {
		t.Fatalf("/statusz?write=1 decode: %v", err)
	}
	if fdoc.StatsWritten != statsPath {
		t.Errorf("stats_written = %q, want %q", fdoc.StatsWritten, statsPath)
	}
	f, err := os.Open(statsPath)
	if err != nil {
		t.Fatalf("flushed stats artifact: %v", err)
	}
	_, counters, err := telemetry.ReadStatsJSON(f)
	f.Close()
	if err != nil {
		t.Fatalf("flushed stats artifact unreadable: %v", err)
	}
	if counters["serve/batches"] == 0 {
		t.Error("flushed stats artifact has no serve/batches")
	}

	code, spans := get("/spans")
	if code != http.StatusOK {
		t.Fatalf("/spans status %d", code)
	}
	var tdoc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(spans, &tdoc); err != nil {
		t.Fatalf("/spans decode: %v", err)
	}
	if len(tdoc.TraceEvents) == 0 {
		t.Error("/spans exported no trace events despite sampling")
	}

	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", code)
	}

	// A handler with no stats writer must reject the flush, not panic.
	bare := httptest.NewServer(NewAdminHandler(srv, AdminOptions{}))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/statusz?write=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("/statusz?write=1 with no FlushStats: status %d, want 400", resp.StatusCode)
	}
}

// The determinism guard for the whole observability plane: a scraper
// hammering every admin endpoint (well above the 10Hz acceptance bar)
// while the server executes must change neither the responses nor the
// aggregated exact-mode counters relative to an unscraped run.
func TestAdminScrapeDeterminism(t *testing.T) {
	reqs := sampleRequests(DefaultCatalog(), 8)
	const rounds = 10
	run := func(scrape bool) ([]Response, map[string]float64) {
		opts := testOptions()
		opts.Routing = RouteRoundRobin
		srv, err := NewServer(opts)
		if err != nil {
			t.Fatal(err)
		}
		var ts *httptest.Server
		stop := make(chan struct{})
		var wg sync.WaitGroup
		if scrape {
			ts = httptest.NewServer(NewAdminHandler(srv, AdminOptions{}))
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, ep := range []string{"/metrics", "/statusz", "/healthz", "/spans"} {
						resp, err := http.Get(ts.URL + ep)
						if err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
					time.Sleep(5 * time.Millisecond)
				}
			}()
		}
		client := srv.InProc()
		var all []Response
		for r := 0; r < rounds; r++ {
			resps, err := client.DoBatch(append([]Request(nil), reqs...))
			if err != nil {
				srv.Close()
				t.Fatal(err)
			}
			all = append(all, resps...)
		}
		srv.Close()
		if scrape {
			close(stop)
			wg.Wait()
			ts.Close()
		}
		return all, srv.AggregatedCounters()
	}
	quiet, cq := run(false)
	scraped, cs := run(true)
	if len(quiet) != len(scraped) {
		t.Fatalf("response counts differ: quiet=%d scraped=%d", len(quiet), len(scraped))
	}
	for i := range quiet {
		if quiet[i].Status != scraped[i].Status || quiet[i].FellBack != scraped[i].FellBack {
			t.Errorf("response %d: status/fallback differ under scraping: %+v vs %+v", i, quiet[i], scraped[i])
		}
		if !bytes.Equal(quiet[i].Payload, scraped[i].Payload) {
			t.Errorf("response %d: payload bytes differ under scraping", i)
		}
		if quiet[i].Cycles != scraped[i].Cycles {
			t.Errorf("response %d: cycles differ under scraping: %v vs %v", i, quiet[i].Cycles, scraped[i].Cycles)
		}
	}
	if len(cq) != len(cs) {
		t.Fatalf("aggregated counter shapes differ: quiet=%d scraped=%d", len(cq), len(cs))
	}
	for name, vq := range cq {
		vs, ok := cs[name]
		if !ok {
			t.Errorf("counter %s missing from scraped run", name)
			continue
		}
		if vq != vs {
			t.Errorf("counter %s perturbed by scraping: quiet=%v scraped=%v", name, vq, vs)
		}
	}
}

// Health must flag the quarantined tile and only it, and a closed server
// must report closing.
func TestHealthReportsQuarantinedTile(t *testing.T) {
	opts := testOptions()
	opts.Tiles = 2
	opts.Routing = RouteRoundRobin
	opts.Workers = 2
	opts.Faults = faults.Config{Enabled: true, Seed: 9, Rate: 0.5}
	opts.FaultTiles = []int{1}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	client := srv.InProc()
	if _, err := client.DoBatch(sampleRequests(DefaultCatalog(), 8)); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	if srv.Closed() {
		t.Error("server reports closed while serving")
	}
	srv.Close()
	health := srv.Health()
	if len(health) != 2 {
		t.Fatalf("health entries = %d", len(health))
	}
	if !health[1].FaultInjected || !health[1].Degraded {
		t.Errorf("quarantined tile not flagged: %+v", health[1])
	}
	if health[0].FaultInjected {
		t.Errorf("healthy tile flagged fault-injected: %+v", health[0])
	}
	if !srv.Closed() {
		t.Error("server does not report closed after Close")
	}
}
