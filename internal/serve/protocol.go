package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"protoacc/internal/pb/wire"
)

// The wire protocol is deliberately minimal: every message is one or more
// frames — a 4-byte big-endian length followed by that many body bytes —
// and the bodies reuse the repo's own varint encoder. Requests and
// responses carry a correlation id, so a connection may pipeline:
// responses come back in completion order, not submission order (batching
// reorders).
//
//	request body:  version(1) op(1) id(uvarint) schema(uvarint len + bytes)
//	               timeout_us(uvarint) payload(rest)
//	response body: version(1) status(1) flags(1) id(uvarint)
//	               cycles(8, fixed64 float bits) payload(rest)
//
// Messages whose body exceeds one frame's capacity (chunkBody) are
// chunked HGum-style: a small header frame announces the total body
// length, then the body streams as fixed-capacity continuation frames.
// Interleaving is per-direction only — a writer holds its stream lock
// for the whole train — so one oversized message never monopolizes a
// frame slot beyond chunkBody bytes, and the reader can validate every
// continuation frame against the announced total before trusting it.
//
//	chunk header frame: chunkMagic(1) total_len(uvarint)
//	continuation frame: raw body bytes (chunkBody per frame, last short)
//
// A single-frame message is byte-identical to the pre-chunking protocol;
// the chunk header is distinguishable because every message body begins
// with protocolVersion (1), which chunkMagic (2) can never collide with.
const (
	// protocolVersion guards against skew between daemon and clients.
	protocolVersion = 1

	// chunkMagic is the first byte of a chunk header frame. Message
	// bodies always start with protocolVersion, so the two namespaces
	// cannot collide.
	chunkMagic = 2

	// chunkBody is one frame's body capacity: messages up to this size
	// travel as a single frame (bit-identical to the pre-chunking
	// protocol), larger ones are chunked.
	chunkBody = 64 << 10

	// maxFrame bounds any message body, single-frame or reassembled; a
	// peer announcing more is treated as malformed rather than trusted
	// with the allocation.
	maxFrame = 64 << 20

	// allocStep caps how much memory a length prefix can commit before
	// any body byte has actually arrived: readFrame grows its buffer in
	// steps of this size as data is read, so a corrupt or hostile prefix
	// costs at most one step, not the announced length.
	allocStep = 1 << 20

	flagFellBack = 1 << 0
)

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit %d", len(body), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame body of at most limit bytes.
// The allocation is committed incrementally (allocStep at a time) as body
// bytes actually arrive, so a corrupt length prefix produces a clean
// error — never an unbounded (or even limit-sized) up-front allocation.
func readFrame(r io.Reader, limit int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > limit {
		return nil, fmt.Errorf("serve: peer announced %d-byte frame (limit %d)", n, limit)
	}
	step := n
	if step > allocStep {
		step = allocStep
	}
	body := make([]byte, 0, step)
	for len(body) < n {
		want := n - len(body)
		if want > allocStep {
			want = allocStep
		}
		off := len(body)
		body = append(body, make([]byte, want)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return nil, err
		}
	}
	return body, nil
}

// writeMessage writes one protocol message, chunking bodies larger than
// chunkBody. Callers must hold their stream's write lock across the call:
// a chunk train is not interleavable. Returns whether the message was
// chunked (for telemetry).
func writeMessage(w io.Writer, body []byte) (chunked bool, err error) {
	if len(body) <= chunkBody {
		return false, writeFrame(w, body)
	}
	if len(body) > maxFrame {
		return false, fmt.Errorf("serve: message of %d bytes exceeds limit %d", len(body), maxFrame)
	}
	hdr := make([]byte, 0, 1+10)
	hdr = append(hdr, chunkMagic)
	hdr = wire.AppendVarint(hdr, uint64(len(body)))
	if err := writeFrame(w, hdr); err != nil {
		return true, err
	}
	for off := 0; off < len(body); off += chunkBody {
		end := off + chunkBody
		if end > len(body) {
			end = len(body)
		}
		if err := writeFrame(w, body[off:end]); err != nil {
			return true, err
		}
	}
	return true, nil
}

// readMessage reads one protocol message of at most limit body bytes,
// reassembling chunk trains. Every continuation frame is validated
// against the announced total — wrong-sized continuations, totals at or
// under the single-frame threshold, and totals over the limit are all
// clean protocol errors.
func readMessage(r io.Reader, limit int) (body []byte, chunked bool, err error) {
	if limit > maxFrame {
		limit = maxFrame
	}
	frame, err := readFrame(r, limit)
	if err != nil {
		return nil, false, err
	}
	if len(frame) == 0 || frame[0] != chunkMagic {
		return frame, false, nil
	}
	total64, n, err := wire.ReadVarint(frame[1:])
	if err != nil {
		return nil, true, fmt.Errorf("serve: bad chunk header length: %w", err)
	}
	if 1+n != len(frame) {
		return nil, true, fmt.Errorf("serve: chunk header carries %d trailing bytes", len(frame)-1-n)
	}
	if total64 > uint64(limit) {
		return nil, true, fmt.Errorf("serve: peer announced %d-byte chunked message (limit %d)", total64, limit)
	}
	total := int(total64)
	if total <= chunkBody {
		return nil, true, fmt.Errorf("serve: chunked message of %d bytes fits one frame (threshold %d)", total, chunkBody)
	}
	body = make([]byte, 0, allocStepOf(total))
	for len(body) < total {
		want := total - len(body)
		if want > chunkBody {
			want = chunkBody
		}
		cont, err := readFrame(r, chunkBody)
		if err != nil {
			return nil, true, err
		}
		if len(cont) != want {
			return nil, true, fmt.Errorf("serve: chunk continuation of %d bytes, want %d", len(cont), want)
		}
		body = append(body, cont...)
	}
	return body, true, nil
}

// allocStepOf bounds an initial buffer allocation to allocStep.
func allocStepOf(n int) int {
	if n > allocStep {
		return allocStep
	}
	return n
}

// appendRequest encodes req onto b.
func appendRequest(b []byte, req *Request) []byte {
	b = append(b, protocolVersion, byte(req.Op))
	b = wire.AppendVarint(b, req.ID)
	b = wire.AppendVarint(b, uint64(len(req.Schema)))
	b = append(b, req.Schema...)
	b = wire.AppendVarint(b, uint64(req.Timeout.Microseconds()))
	return append(b, req.Payload...)
}

// parseRequest decodes a request body.
func parseRequest(b []byte) (Request, error) {
	var req Request
	if len(b) < 2 {
		return req, fmt.Errorf("serve: truncated request header")
	}
	if b[0] != protocolVersion {
		return req, fmt.Errorf("serve: protocol version %d, want %d", b[0], protocolVersion)
	}
	if op := Op(b[1]); op != OpDeserialize && op != OpSerialize {
		return req, fmt.Errorf("serve: unknown op %d", b[1])
	}
	req.Op = Op(b[1])
	b = b[2:]
	id, n, err := wire.ReadVarint(b)
	if err != nil {
		return req, fmt.Errorf("serve: bad request id: %w", err)
	}
	req.ID = id
	b = b[n:]
	slen, n, err := wire.ReadVarint(b)
	if err != nil {
		return req, fmt.Errorf("serve: bad schema length: %w", err)
	}
	b = b[n:]
	if uint64(len(b)) < slen {
		return req, fmt.Errorf("serve: truncated schema name")
	}
	req.Schema = string(b[:slen])
	b = b[slen:]
	us, n, err := wire.ReadVarint(b)
	if err != nil {
		return req, fmt.Errorf("serve: bad timeout: %w", err)
	}
	req.Timeout = time.Duration(us) * time.Microsecond
	req.Payload = b[n:]
	return req, nil
}

// appendResponse encodes resp onto b.
func appendResponse(b []byte, resp *Response) []byte {
	var flags byte
	if resp.FellBack {
		flags |= flagFellBack
	}
	b = append(b, protocolVersion, byte(resp.Status), flags)
	b = wire.AppendVarint(b, resp.ID)
	var cy [8]byte
	binary.BigEndian.PutUint64(cy[:], math.Float64bits(resp.Cycles))
	b = append(b, cy[:]...)
	return append(b, resp.Payload...)
}

// parseResponse decodes a response body.
func parseResponse(b []byte) (Response, error) {
	var resp Response
	if len(b) < 3 {
		return resp, fmt.Errorf("serve: truncated response header")
	}
	if b[0] != protocolVersion {
		return resp, fmt.Errorf("serve: protocol version %d, want %d", b[0], protocolVersion)
	}
	resp.Status = Status(b[1])
	resp.FellBack = b[2]&flagFellBack != 0
	b = b[3:]
	id, n, err := wire.ReadVarint(b)
	if err != nil {
		return resp, fmt.Errorf("serve: bad response id: %w", err)
	}
	resp.ID = id
	b = b[n:]
	if len(b) < 8 {
		return resp, fmt.Errorf("serve: truncated response cycles")
	}
	resp.Cycles = math.Float64frombits(binary.BigEndian.Uint64(b[:8]))
	resp.Payload = b[8:]
	return resp, nil
}
