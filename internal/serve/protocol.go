package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"protoacc/internal/pb/wire"
)

// The wire protocol is deliberately minimal: every message is one frame —
// a 4-byte big-endian length followed by that many body bytes — and the
// bodies reuse the repo's own varint encoder. Requests and responses
// carry a correlation id, so a connection may pipeline: responses come
// back in completion order, not submission order (batching reorders).
//
//	request body:  version(1) op(1) id(uvarint) schema(uvarint len + bytes)
//	               timeout_us(uvarint) payload(rest)
//	response body: version(1) status(1) flags(1) id(uvarint)
//	               cycles(8, fixed64 float bits) payload(rest)

const (
	// protocolVersion guards against skew between daemon and clients.
	protocolVersion = 1

	// maxFrame bounds a frame body; a peer announcing more is treated as
	// malformed rather than trusted with the allocation.
	maxFrame = 64 << 20

	flagFellBack = 1 << 0
)

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit %d", len(body), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("serve: peer announced %d-byte frame (limit %d)", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// appendRequest encodes req onto b.
func appendRequest(b []byte, req *Request) []byte {
	b = append(b, protocolVersion, byte(req.Op))
	b = wire.AppendVarint(b, req.ID)
	b = wire.AppendVarint(b, uint64(len(req.Schema)))
	b = append(b, req.Schema...)
	b = wire.AppendVarint(b, uint64(req.Timeout.Microseconds()))
	return append(b, req.Payload...)
}

// parseRequest decodes a request body.
func parseRequest(b []byte) (Request, error) {
	var req Request
	if len(b) < 2 {
		return req, fmt.Errorf("serve: truncated request header")
	}
	if b[0] != protocolVersion {
		return req, fmt.Errorf("serve: protocol version %d, want %d", b[0], protocolVersion)
	}
	if op := Op(b[1]); op != OpDeserialize && op != OpSerialize {
		return req, fmt.Errorf("serve: unknown op %d", b[1])
	}
	req.Op = Op(b[1])
	b = b[2:]
	id, n, err := wire.ReadVarint(b)
	if err != nil {
		return req, fmt.Errorf("serve: bad request id: %w", err)
	}
	req.ID = id
	b = b[n:]
	slen, n, err := wire.ReadVarint(b)
	if err != nil {
		return req, fmt.Errorf("serve: bad schema length: %w", err)
	}
	b = b[n:]
	if uint64(len(b)) < slen {
		return req, fmt.Errorf("serve: truncated schema name")
	}
	req.Schema = string(b[:slen])
	b = b[slen:]
	us, n, err := wire.ReadVarint(b)
	if err != nil {
		return req, fmt.Errorf("serve: bad timeout: %w", err)
	}
	req.Timeout = time.Duration(us) * time.Microsecond
	req.Payload = b[n:]
	return req, nil
}

// appendResponse encodes resp onto b.
func appendResponse(b []byte, resp *Response) []byte {
	var flags byte
	if resp.FellBack {
		flags |= flagFellBack
	}
	b = append(b, protocolVersion, byte(resp.Status), flags)
	b = wire.AppendVarint(b, resp.ID)
	var cy [8]byte
	binary.BigEndian.PutUint64(cy[:], math.Float64bits(resp.Cycles))
	b = append(b, cy[:]...)
	return append(b, resp.Payload...)
}

// parseResponse decodes a response body.
func parseResponse(b []byte) (Response, error) {
	var resp Response
	if len(b) < 3 {
		return resp, fmt.Errorf("serve: truncated response header")
	}
	if b[0] != protocolVersion {
		return resp, fmt.Errorf("serve: protocol version %d, want %d", b[0], protocolVersion)
	}
	resp.Status = Status(b[1])
	resp.FellBack = b[2]&flagFellBack != 0
	b = b[3:]
	id, n, err := wire.ReadVarint(b)
	if err != nil {
		return resp, fmt.Errorf("serve: bad response id: %w", err)
	}
	resp.ID = id
	b = b[n:]
	if len(b) < 8 {
		return resp, fmt.Errorf("serve: truncated response cycles")
	}
	resp.Cycles = math.Float64frombits(binary.BigEndian.Uint64(b[:8]))
	resp.Payload = b[8:]
	return resp, nil
}
