package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"protoacc/internal/pb/codec"
	"protoacc/internal/pb/dynamic"
	"protoacc/internal/pb/schema"
	"protoacc/internal/pb/wire"
)

// frame prepends a length prefix to body.
func frame(body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	return append(hdr[:], body...)
}

// rawFrame builds a frame whose length prefix lies about the body.
func rawFrame(announce uint32, body []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], announce)
	return append(hdr[:], body...)
}

// A corrupt or hostile stream must produce a clean error from readMessage
// — never a hang, a huge trusted allocation, or a silently wrong body.
func TestReadMessageHostileInput(t *testing.T) {
	chunkHeader := func(total uint64) []byte {
		return frame(wire.AppendVarint([]byte{chunkMagic}, total))
	}
	cases := []struct {
		name    string
		input   []byte
		wantErr bool
		want    []byte
	}{
		{name: "empty frame", input: frame(nil), want: []byte{}},
		{name: "plain frame", input: frame([]byte{protocolVersion, 9, 9}), want: []byte{protocolVersion, 9, 9}},
		{name: "truncated header", input: []byte{0, 0}, wantErr: true},
		{name: "truncated body", input: rawFrame(10, []byte("abc")), wantErr: true},
		{name: "announce 4GiB", input: rawFrame(0xffffffff, nil), wantErr: true},
		{name: "announce over limit", input: rawFrame(maxFrame+1, nil), wantErr: true},
		{name: "chunk header truncated varint", input: frame([]byte{chunkMagic, 0x80}), wantErr: true},
		{name: "chunk header trailing bytes", input: frame(append(wire.AppendVarint([]byte{chunkMagic}, chunkBody+1), 0xee)), wantErr: true},
		{name: "chunk total over limit", input: chunkHeader(maxFrame + 1), wantErr: true},
		{name: "chunk total absurd", input: chunkHeader(1 << 60), wantErr: true},
		{name: "chunk total fits one frame", input: chunkHeader(chunkBody), wantErr: true},
		{name: "chunk total zero", input: chunkHeader(0), wantErr: true},
		{name: "chunk continuation truncated", input: append(chunkHeader(chunkBody+1), rawFrame(chunkBody, []byte("short"))...), wantErr: true},
		{
			name: "chunk continuation wrong size",
			input: append(chunkHeader(chunkBody+10),
				append(frame(make([]byte, 100)), frame(make([]byte, chunkBody))...)...),
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, _, err := readMessage(bytes.NewReader(tc.input), maxFrame)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("accepted hostile input, body %d bytes", len(body))
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(body, tc.want) {
				t.Fatalf("body %v, want %v", body, tc.want)
			}
		})
	}
}

// The caller-supplied limit must bound single frames and reassembled chunk
// trains alike, below the protocol-wide maxFrame.
func TestReadMessageCallerLimit(t *testing.T) {
	const limit = 1 << 10
	if _, _, err := readMessage(bytes.NewReader(frame(make([]byte, limit+1))), limit); err == nil {
		t.Error("single frame over the caller limit accepted")
	}
	hdr := frame(wire.AppendVarint([]byte{chunkMagic}, limit+chunkBody))
	if _, _, err := readMessage(bytes.NewReader(hdr), limit); err == nil {
		t.Error("chunk total over the caller limit accepted")
	}
	body, chunked, err := readMessage(bytes.NewReader(frame(make([]byte, limit))), limit)
	if err != nil || chunked || len(body) != limit {
		t.Errorf("at-limit frame rejected: %d bytes, chunked=%v, err=%v", len(body), chunked, err)
	}
}

// writeMessage/readMessage must round-trip every size class: empty,
// single-frame, the exact chunking boundary, and multi-chunk trains —
// with single-frame messages staying byte-identical to the pre-chunking
// wire format.
func TestMessageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, chunkBody - 1, chunkBody, chunkBody + 1, 2 * chunkBody, 3*chunkBody + 17} {
		body := make([]byte, n)
		rng.Read(body)
		if n > 0 {
			body[0] = protocolVersion // real messages always start with the version byte
		}
		var buf bytes.Buffer
		wroteChunked, err := writeMessage(&buf, body)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if wantChunked := n > chunkBody; wroteChunked != wantChunked {
			t.Errorf("size %d: chunked=%v, want %v", n, wroteChunked, wantChunked)
		}
		if !wroteChunked {
			// Single-frame messages are the legacy format, bit for bit.
			if !bytes.Equal(buf.Bytes(), frame(body)) {
				t.Errorf("size %d: single-frame encoding diverges from legacy framing", n)
			}
		}
		got, readChunked, err := readMessage(&buf, maxFrame)
		if err != nil {
			t.Fatalf("size %d: %v", n, err)
		}
		if readChunked != wroteChunked {
			t.Errorf("size %d: reader chunked=%v, writer chunked=%v", n, readChunked, wroteChunked)
		}
		if !bytes.Equal(got, body) {
			t.Errorf("size %d: body corrupted in transit", n)
		}
		if buf.Len() != 0 {
			t.Errorf("size %d: %d trailing bytes after message", n, buf.Len())
		}
	}
}

// dialRaw opens a bare TCP connection for speaking malformed bytes at a
// live server.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return nc
}

// waitCounter polls an aggregated counter until it reaches want (counting
// is asynchronous with the connection teardown the client observes).
func waitCounter(t *testing.T, srv *Server, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got := srv.AggregatedCounters()[name]
		if got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %v, want >= %v", name, got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A hostile length prefix or unparseable body must terminate only the
// offending connection — counted under serve/protocol/errors — while the
// server keeps serving well-formed clients.
func TestServeTCPHostileFrames(t *testing.T) {
	srv, addr := startTCP(t, testOptions())
	defer srv.Close()

	hostile := [][]byte{
		rawFrame(0xffffffff, nil),                       // 4GiB announcement
		rawFrame(uint32(srv.readLimit()+1), nil),        // just past the server's limit
		frame([]byte("this is not a protocol message")), // fails parseRequest
		frame(nil), // empty body
	}
	for i, raw := range hostile {
		nc := dialRaw(t, addr)
		if _, err := nc.Write(raw); err != nil {
			t.Fatalf("hostile write %d: %v", i, err)
		}
		// The server must hang up on us.
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		var one [1]byte
		if _, err := nc.Read(one[:]); err == nil {
			t.Errorf("hostile frame %d: server kept the connection open", i)
		}
		nc.Close()
		waitCounter(t, srv, "serve/protocol/errors", float64(i+1))
	}

	// A well-formed client on a fresh connection is unaffected.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	e := srv.Catalog().Lookup("varint")
	resp, err := conn.Do(Request{Op: OpDeserialize, Schema: "varint", Payload: e.SamplePayload(0)})
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("healthy client after hostile peers: %v %v", err, resp.Status)
	}
}

// bigCatalog hosts one schema whose sample payload exceeds chunkBody, so
// requests and responses must both cross the wire as chunk trains.
func bigCatalog(t *testing.T, payloadLen int) *Catalog {
	t.Helper()
	bigT := mustType("ServeBigString",
		&schema.Field{Name: "s", Number: 1, Kind: schema.KindString})
	m := dynamic.New(bigT)
	b := make([]byte, payloadLen)
	rng := rand.New(rand.NewSource(7))
	for i := range b {
		b[i] = byte(' ' + rng.Intn(95))
	}
	m.SetBytes(1, b)
	payload, err := codec.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) <= chunkBody {
		t.Fatalf("sample payload %d bytes does not exceed chunkBody %d", len(payload), chunkBody)
	}
	cat, err := NewCatalog(&Entry{Name: "big", Type: bigT, payloads: [][]byte{payload}})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

// Messages larger than one frame must survive the wire chunked — byte
// verified end to end, with the chunk counters accounting both directions.
func TestServeTCPChunkedMessages(t *testing.T) {
	opts := testOptions()
	opts.MaxPayload = 512 << 10
	opts.Catalog = bigCatalog(t, 200<<10)
	srv, addr := startTCP(t, opts)
	defer srv.Close()

	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	payload := srv.Catalog().Lookup("big").SamplePayload(0)
	for i, op := range []Op{OpDeserialize, OpSerialize} {
		resp, err := conn.Do(Request{Op: op, Schema: "big", Payload: payload})
		if err != nil {
			t.Fatalf("op %v: %v", op, err)
		}
		if resp.Status != StatusOK {
			t.Fatalf("op %v: status %v: %s", op, resp.Status, truncate(resp.Payload))
		}
		if !bytes.Equal(resp.Payload, payload) {
			t.Errorf("op %v: chunked response diverges from canonical payload", op)
		}
		waitCounter(t, srv, "serve/protocol/chunked_in", float64(i+1))
		waitCounter(t, srv, "serve/protocol/chunked_out", float64(i+1))
	}
	if n := srv.AggregatedCounters()["serve/protocol/errors"]; n != 0 {
		t.Errorf("chunked traffic counted %v protocol errors", n)
	}
}

func truncate(b []byte) string {
	if len(b) > 80 {
		b = b[:80]
	}
	return fmt.Sprintf("%q", b)
}
